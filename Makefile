# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-check experiments examples fuzz-smoke \
	profile-smoke vmspeed-smoke adversarial-smoke serve-smoke \
	schemes-smoke elim-smoke coverage verify clean

all: build

build:
	dune build

test:
	dune runtest

# Anything that reports host-time numbers runs under dune's release
# profile: the dev profile passes -opaque, which disables cross-module
# inlining and roughly halves VM throughput — dev-profile timings are
# not comparable to the committed BENCH_*.json artifacts.
RELEASE := --profile release

# full bechamel timing runs plus all paper artifacts (~5 min)
bench:
	dune exec $(RELEASE) bench/main.exe

# every table and figure at full workload sizes (~2 min)
experiments:
	dune exec $(RELEASE) bin/experiments.exe -- all

# schema validation of the committed machine-readable artifacts
# (BENCH_elim.json, BENCH_breakdown.json, BENCH_vmspeed.json): parses
# each file and checks the keys downstream tooling depends on,
# including both engines' rows and speedup summaries in vmspeed
bench-check:
	dune exec bin/experiments.exe -- bench-check

# bounded differential-fuzzing pass: fixed seeds, a few hundred
# programs, well under 30s — any finding fails the target
fuzz-smoke:
	dune exec bin/softbound_cli.exe -- fuzz --seed 1 --count 200
	dune exec bin/softbound_cli.exe -- fuzz --seed 20260805 --count 100

# engine-throughput artifact at tiny sizes: checks the JSON schema and
# that everything except the host-timing fields is deterministic
# run-to-run.  The second run fans out over 2 domains, so it also
# proves the parallel driver emits byte-identical simulated numbers.
# The committed full-size BENCH_vmspeed.json is preserved.
vmspeed-smoke:
	@cp -f BENCH_vmspeed.json /tmp/vmspeed.keep 2>/dev/null || true
	dune exec bin/experiments.exe -- vmspeed --quick > /dev/null
	@cp BENCH_vmspeed.json /tmp/vmspeed1.json
	dune exec bin/experiments.exe -- vmspeed --quick --jobs 2 > /dev/null
	@cp BENCH_vmspeed.json /tmp/vmspeed2.json
	@if [ -f /tmp/vmspeed.keep ]; then mv /tmp/vmspeed.keep BENCH_vmspeed.json; \
	  else rm -f BENCH_vmspeed.json; fi
	grep -q '"experiment": "vmspeed"' /tmp/vmspeed1.json
	grep -q '"baseline"' /tmp/vmspeed1.json
	grep -q '"sim_cycles"' /tmp/vmspeed1.json
	grep -q '"cycles_per_host_sec"' /tmp/vmspeed1.json
	grep -q '"speedup_vs_baseline"' /tmp/vmspeed1.json
	grep -q '"engine": "closure"' /tmp/vmspeed1.json
	grep -q '"engine": "decode"' /tmp/vmspeed1.json
	@grep -vE 'host_seconds|cycles_per_host_sec|speedup' /tmp/vmspeed1.json \
	  > /tmp/vmspeed1.stable
	@grep -vE 'host_seconds|cycles_per_host_sec|speedup' /tmp/vmspeed2.json \
	  > /tmp/vmspeed2.stable
	diff /tmp/vmspeed1.stable /tmp/vmspeed2.stable
	@echo "vmspeed-smoke: deterministic modulo host timing"

# adversarial robust-safety pass: fixed seed, a couple hundred
# attacker/protected pairs plus the committed regression seeds (the
# pre-fix wrapper bugs, which must report as caught).  Any escape fails
# the target.  The second run fans out over 2 domains and its report
# must be byte-identical — the campaign is jobs-independent.
adversarial-smoke:
	dune exec bin/softbound_cli.exe -- fuzz --adversarial --seed 1 \
	  --count 200 > /tmp/adv1.txt
	dune exec bin/softbound_cli.exe -- fuzz --adversarial --seed 1 \
	  --count 200 --jobs 2 > /tmp/adv2.txt
	diff /tmp/adv1.txt /tmp/adv2.txt
	grep -q 'regression seeds: caught' /tmp/adv1.txt
	@echo "adversarial-smoke: no escapes, jobs-independent"

# the checking service end to end, through the real binary: a fixed
# mixed job stream (ok runs, a trap, a baseline scheme, fuzz,
# adversarial, profile, an unknown type, a garbage line) served at
# --jobs 1 and --jobs 2.  Result rows are compared modulo the "ms"
# timing field and delivery order (completion order is nondeterministic
# under jobs>=2) — everything else must be byte-identical.
serve-smoke:
	@printf '%s\n' \
	  '{"id":1,"type":"run","source":"int main() { int a[4]; a[2] = 5; return a[2]; }"}' \
	  '{"id":2,"type":"run","source":"int main() { int a[4]; return a[9]; }"}' \
	  '{"id":3,"type":"run","source":"int main() { return 0; }","scheme":"unprotected"}' \
	  '{"id":4,"type":"fuzz","seed":7,"count":2}' \
	  '{"id":5,"type":"adversarial","seed":3,"count":1}' \
	  '{"id":6,"type":"profile","source":"int main() { int a[8]; int i; for (i = 0; i < 8; i = i + 1) a[i] = i; return a[7]; }"}' \
	  '{"id":7,"type":"bad-type"}' \
	  'garbage line' \
	  > /tmp/serve_jobs.ndjson
	dune exec bin/softbound_cli.exe -- serve < /tmp/serve_jobs.ndjson \
	  2>/dev/null | sed 's/,"ms":[0-9.eE+-]*//' | sort > /tmp/serve1.txt
	dune exec bin/softbound_cli.exe -- serve --jobs 2 --timeout-ms 60000 \
	  < /tmp/serve_jobs.ndjson 2>/dev/null \
	  | sed 's/,"ms":[0-9.eE+-]*//' | sort > /tmp/serve2.txt
	diff /tmp/serve1.txt /tmp/serve2.txt
	grep -q '"outcome":"exit 5"' /tmp/serve1.txt
	grep -q 'bounds violation' /tmp/serve1.txt
	grep -q '"scheme":"unprotected"' /tmp/serve1.txt
	grep -q '"error":"unknown job type' /tmp/serve1.txt
	grep -q 'malformed JSON' /tmp/serve1.txt
	grep -q '"type":"profile","ok":true' /tmp/serve1.txt
	@echo "serve-smoke: protocol stable, jobs-independent modulo timing"

# the N-scheme matrix end to end: the schemes experiment at quick sizes
# under --jobs 1 and --jobs 2 (the artifact is purely simulated, so the
# two runs must be byte-identical), schema spot checks including the
# completeness-gap cells, and a bounded N-scheme differential-oracle
# campaign — every scheme lock-step against the unprotected run, any
# unexplained divergence fails.  The committed full-size
# BENCH_schemes.json is preserved.
schemes-smoke:
	@cp -f BENCH_schemes.json /tmp/schemes.keep 2>/dev/null || true
	dune exec bin/experiments.exe -- schemes --quick > /dev/null
	@cp BENCH_schemes.json /tmp/schemes1.json
	dune exec bin/experiments.exe -- schemes --quick --jobs 2 > /dev/null
	@cp BENCH_schemes.json /tmp/schemes2.json
	@if [ -f /tmp/schemes.keep ]; then mv /tmp/schemes.keep BENCH_schemes.json; \
	  else rm -f BENCH_schemes.json; fi
	diff /tmp/schemes1.json /tmp/schemes2.json
	grep -q '"experiment": "schemes"' /tmp/schemes1.json
	grep -q '"attack": "sub-object-overflow"' /tmp/schemes1.json
	grep -q '"softbound-full-shadow": true' /tmp/schemes1.json
	grep -q '"cguard": false' /tmp/schemes1.json
	grep -q '"l4-pointer"' /tmp/schemes1.json
	dune exec bin/softbound_cli.exe -- fuzz --schemes --seed 1 --count 200
	@echo "schemes-smoke: matrix deterministic, oracle clean"

# check-widening smoke: the elim ablation at quick sizes must emit the
# widening columns, and the artifact must be byte-identical at --jobs 1
# and --jobs 2 (its numbers are purely simulated).  A fixed affine-loop
# program profiled through the real binary must report widened spans
# (checks_widened > 0) and identical simulated output with widening on
# and off.  The committed full-size BENCH_elim.json is preserved.
elim-smoke:
	@cp -f BENCH_elim.json /tmp/elim.keep 2>/dev/null || true
	dune exec bin/experiments.exe -- elim --quick > /dev/null
	@cp BENCH_elim.json /tmp/elim1.json
	dune exec bin/experiments.exe -- elim --quick --jobs 2 > /dev/null
	@cp BENCH_elim.json /tmp/elim2.json
	@if [ -f /tmp/elim.keep ]; then mv /tmp/elim.keep BENCH_elim.json; \
	  else rm -f BENCH_elim.json; fi
	diff /tmp/elim1.json /tmp/elim2.json
	grep -q '"checks_widened"' /tmp/elim1.json
	grep -q '"overhead_no_widen"' /tmp/elim1.json
	grep -q '"host_cpus"' /tmp/elim1.json
	@printf '%s\n' \
	  'int main(void) { int a[64]; int i; int s = 0;' \
	  'for (i = 0; i < 64; i = i + 1) a[i] = i;' \
	  'for (i = 0; i < 64; i = i + 1) s += a[i];' \
	  'printf("%d\n", s); return 0; }' \
	  > /tmp/affine_loop.c
	dune exec bin/softbound_cli.exe -- profile /tmp/affine_loop.c --json \
	  > /tmp/affine_prof.json
	grep -Eq '"checks_widened": [1-9]' /tmp/affine_prof.json
	dune exec bin/softbound_cli.exe -- run /tmp/affine_loop.c \
	  > /tmp/affine_on.txt
	dune exec bin/softbound_cli.exe -- run /tmp/affine_loop.c --no-widen \
	  > /tmp/affine_off.txt
	diff /tmp/affine_on.txt /tmp/affine_off.txt
	@echo "elim-smoke: widening active, jobs-independent, on/off identical"

# quick profiler pass over two kernels: exercises the observability
# layer end to end (site attribution, JSON export, trace ring)
profile-smoke:
	dune exec bin/softbound_cli.exe -- profile --workload treeadd --quick
	dune exec bin/softbound_cli.exe -- profile --workload go --quick --json \
	  > /dev/null

# line-coverage summary via bisect_ppx.  The instrumentation stanzas in
# lib/*/dune are inert unless activated, so this target degrades to a
# notice when bisect_ppx is not installed (it is not part of the
# baseline toolchain).
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  rm -f _coverage/*.coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect dune runtest --force \
	    --instrument-with bisect_ppx && \
	  bisect-ppx-report summary --per-file _coverage/*.coverage; \
	else \
	  echo "coverage: bisect_ppx not installed; skipping (opam install bisect_ppx)"; \
	fi

# what CI runs: build, the whole test suite, schema validation of the
# committed benchmark artifacts, a smoke pass of the check-elimination
# ablation (quick workload sizes), the profiler smoke run, and both
# fuzzing smoke campaigns (differential and adversarial robust-safety)
verify:
	dune build
	dune runtest
	$(MAKE) bench-check
	$(MAKE) elim-smoke
	$(MAKE) profile-smoke
	$(MAKE) vmspeed-smoke
	$(MAKE) serve-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) adversarial-smoke
	$(MAKE) schemes-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/daemon_hardening.exe
	dune exec examples/debugging_workflow.exe
	dune exec examples/custom_allocator.exe
	dune exec examples/scheme_tour.exe

clean:
	dune clean
