# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples fuzz-smoke verify clean

all: build

build:
	dune build

test:
	dune runtest

# full bechamel timing runs plus all paper artifacts (~5 min)
bench:
	dune exec bench/main.exe

# every table and figure at full workload sizes (~2 min)
experiments:
	dune exec bin/experiments.exe -- all

# bounded differential-fuzzing pass: fixed seeds, a few hundred
# programs, well under 30s — any finding fails the target
fuzz-smoke:
	dune exec bin/softbound_cli.exe -- fuzz --seed 1 --count 200
	dune exec bin/softbound_cli.exe -- fuzz --seed 20260805 --count 100

# what CI runs: build, the whole test suite, a smoke pass of the
# check-elimination ablation (quick workload sizes), and the
# differential-fuzzing smoke campaign
verify:
	dune build
	dune runtest
	dune exec bin/experiments.exe -- elim --quick
	$(MAKE) fuzz-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/daemon_hardening.exe
	dune exec examples/debugging_workflow.exe
	dune exec examples/custom_allocator.exe
	dune exec examples/scheme_tour.exe

clean:
	dune clean
