# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples fuzz-smoke profile-smoke \
	coverage verify clean

all: build

build:
	dune build

test:
	dune runtest

# full bechamel timing runs plus all paper artifacts (~5 min)
bench:
	dune exec bench/main.exe

# every table and figure at full workload sizes (~2 min)
experiments:
	dune exec bin/experiments.exe -- all

# bounded differential-fuzzing pass: fixed seeds, a few hundred
# programs, well under 30s — any finding fails the target
fuzz-smoke:
	dune exec bin/softbound_cli.exe -- fuzz --seed 1 --count 200
	dune exec bin/softbound_cli.exe -- fuzz --seed 20260805 --count 100

# quick profiler pass over two kernels: exercises the observability
# layer end to end (site attribution, JSON export, trace ring)
profile-smoke:
	dune exec bin/softbound_cli.exe -- profile --workload treeadd --quick
	dune exec bin/softbound_cli.exe -- profile --workload go --quick --json \
	  > /dev/null

# line-coverage summary via bisect_ppx.  The instrumentation stanzas in
# lib/*/dune are inert unless activated, so this target degrades to a
# notice when bisect_ppx is not installed (it is not part of the
# baseline toolchain).
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  rm -f _coverage/*.coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect dune runtest --force \
	    --instrument-with bisect_ppx && \
	  bisect-ppx-report summary --per-file _coverage/*.coverage; \
	else \
	  echo "coverage: bisect_ppx not installed; skipping (opam install bisect_ppx)"; \
	fi

# what CI runs: build, the whole test suite, a smoke pass of the
# check-elimination ablation (quick workload sizes), the profiler
# smoke run, and the differential-fuzzing smoke campaign
verify:
	dune build
	dune runtest
	dune exec bin/experiments.exe -- elim --quick
	$(MAKE) profile-smoke
	$(MAKE) fuzz-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/daemon_hardening.exe
	dune exec examples/debugging_workflow.exe
	dune exec examples/custom_allocator.exe
	dune exec examples/scheme_tour.exe

clean:
	dune clean
