(* Benchmark harness.

   Two layers:

   1. bechamel micro-benchmarks — one [Test.make] per paper artifact
      (Table 1/3/4, Figure 1/2 per configuration, the MSCC comparison,
      and the compilation pipeline itself), measuring the wall-clock cost
      of regenerating each result at reduced workload sizes;

   2. the paper's tables and figures themselves, regenerated at full
      workload sizes and printed after the timing runs — this is the
      output to compare against the paper (see EXPERIMENTS.md).

   Run with:  dune exec bench/main.exe
   (pass --tables-only to skip the bechamel timing runs) *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let compiled_workloads =
  lazy
    (List.map (fun w -> (w, Harness.Runner.compile_workload w)) Workloads.all)

let run_all_quick scheme () =
  List.iter
    (fun ((w : Workloads.workload), m) ->
      ignore (Harness.Runner.run ~argv:w.quick_args scheme m))
    (Lazy.force compiled_workloads)

let test_table1 =
  Test.make ~name:"table1: attribute probes"
    (Staged.stage (fun () -> ignore (Harness.Exp_table1.run ())))

let test_table3 =
  Test.make ~name:"table3: 18 attacks x 3 configs"
    (Staged.stage (fun () -> ignore (Harness.Exp_table3.run ())))

let test_table4 =
  Test.make ~name:"table4: bugbench x 5 tools"
    (Staged.stage (fun () -> ignore (Harness.Exp_table4.run ())))

let test_fig1 =
  Test.make ~name:"fig1: pointer-op census (quick)"
    (Staged.stage (fun () -> ignore (Harness.Exp_fig1.run ~quick:true ())))

let test_fig2_configs =
  Test.make_grouped ~name:"fig2 (quick)"
    [
      Test.make ~name:"baseline"
        (Staged.stage (run_all_quick Harness.Runner.Unprotected));
      Test.make ~name:"shadow/full"
        (Staged.stage
           (run_all_quick (Harness.Runner.Softbound Harness.Runner.sb_full_shadow)));
      Test.make ~name:"hash/full"
        (Staged.stage
           (run_all_quick (Harness.Runner.Softbound Harness.Runner.sb_full_hash)));
      Test.make ~name:"shadow/store"
        (Staged.stage
           (run_all_quick (Harness.Runner.Softbound Harness.Runner.sb_store_shadow)));
      Test.make ~name:"hash/store"
        (Staged.stage
           (run_all_quick (Harness.Runner.Softbound Harness.Runner.sb_store_hash)));
    ]

let test_mscc =
  Test.make ~name:"sec6.5: mscc-style (quick)"
    (Staged.stage (run_all_quick Harness.Runner.Mscc))

let test_elim =
  Test.make_grouped ~name:"elim (quick)"
    [
      Test.make ~name:"shadow/full elim-on"
        (Staged.stage
           (run_all_quick (Harness.Runner.Softbound Harness.Runner.sb_full_shadow)));
      Test.make ~name:"shadow/full elim-off"
        (Staged.stage
           (run_all_quick
              (Harness.Runner.Softbound
                 (Harness.Exp_elim.without_elim Harness.Runner.sb_full_shadow))));
    ]

let test_breakdown =
  Test.make ~name:"breakdown: obs attribution (quick)"
    (Staged.stage (fun () -> ignore (Harness.Exp_breakdown.run ~quick:true ())))

let test_ablations =
  Test.make ~name:"ablations: shrink/memcpy/clear/prune"
    (Staged.stage (fun () ->
         ignore (Harness.Exp_ablation.run_shrink ());
         ignore (Harness.Exp_ablation.run_memcpy ());
         ignore (Harness.Exp_ablation.run_clear_free ())))

let test_pipeline =
  Test.make_grouped ~name:"pipeline"
    [
      Test.make ~name:"compile treeadd"
        (Staged.stage (fun () ->
             ignore
               (Softbound.compile
                  (Option.get (Workloads.find "treeadd")).Workloads.source)));
      Test.make ~name:"instrument treeadd"
        (let m =
           Softbound.compile
             (Option.get (Workloads.find "treeadd")).Workloads.source
         in
         Staged.stage (fun () -> ignore (Softbound.instrument m)));
    ]

let all_tests =
  Test.make_grouped ~name:"softbound"
    [
      test_table1; test_table3; test_table4; test_fig1; test_fig2_configs;
      test_mscc; test_elim; test_breakdown; test_ablations; test_pipeline;
    ]

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-45s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 61 '-');
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      let t =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> est
        | _ -> nan
      in
      let pretty =
        if Float.is_nan t then "n/a"
        else if t > 1e9 then Printf.sprintf "%8.2f  s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
        else Printf.sprintf "%8.2f ns" t
      in
      Printf.printf "%-45s %15s\n" name pretty)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* The paper's artifacts at full size                                   *)
(* ------------------------------------------------------------------ *)

let print_artifacts () =
  print_endline "\n==================================================";
  print_endline "Paper artifacts (full workload sizes)";
  print_endline "==================================================\n";
  print_endline (Harness.Exp_table1.render (Harness.Exp_table1.run ()));
  print_endline (Harness.Exp_table3.render (Harness.Exp_table3.run ()));
  print_endline (Harness.Exp_table4.render (Harness.Exp_table4.run ()));
  print_endline (Harness.Exp_fig1.render (Harness.Exp_fig1.run ()));
  print_endline (Harness.Exp_fig2.render (Harness.Exp_fig2.run ()));
  print_endline (Harness.Exp_mscc.render (Harness.Exp_mscc.run ~quick:true ()));
  print_endline (Harness.Exp_memory.render (Harness.Exp_memory.run ()));
  print_endline (Harness.Exp_sweep.render (Harness.Exp_sweep.run ()));
  print_endline (Harness.Exp_ablation.render ());
  (* elimination ablation, plus the machine-readable per-kernel cycle
     record tracking the perf trajectory from PR to PR *)
  let elim_rows = Harness.Exp_elim.run () in
  print_endline (Harness.Exp_elim.render elim_rows);
  let oc = open_out "BENCH_elim.json" in
  output_string oc (Harness.Exp_elim.to_json elim_rows);
  close_out oc;
  print_endline "wrote BENCH_elim.json";
  (* per-site overhead attribution (check vs metadata vs wrapper vs
     residual), the observability layer's headline artifact *)
  let bd_rows = Harness.Exp_breakdown.run () in
  print_endline (Harness.Exp_breakdown.render bd_rows);
  let oc = open_out "BENCH_breakdown.json" in
  output_string oc (Harness.Exp_breakdown.to_json bd_rows);
  close_out oc;
  print_endline "wrote BENCH_breakdown.json";
  (* engine throughput vs the recorded pre-fast-path baseline; iters=2
     matches the committed artifact's convention *)
  let vs_rows = Harness.Exp_vmspeed.run ~iters:2 () in
  print_endline (Harness.Exp_vmspeed.render vs_rows);
  let oc = open_out "BENCH_vmspeed.json" in
  output_string oc (Harness.Exp_vmspeed.to_json ~quick:false ~iters:2 vs_rows);
  close_out oc;
  print_endline "wrote BENCH_vmspeed.json"

let () =
  let args = Array.to_list Sys.argv in
  if not (List.mem "--tables-only" args) then begin
    print_endline "bechamel timing runs (reduced workload sizes)";
    print_endline "=============================================";
    run_bechamel ()
  end;
  print_artifacts ()
