(* Formal-semantics tests (paper section 4): unit checks of the
   instrumented operational semantics, plus randomized checking of
   Preservation (4.1), Progress (4.2) and the agreement corollary over
   type-correct commands. *)

open Formal

(* A fixed typing context rich enough to exercise every rule: ints,
   pointers, pointer-to-pointer, and a recursive struct. *)
let node_fields = [ ("v", TInt); ("next", TPtr (PNamed "node")) ]
let tenv = [ ("node", node_fields) ]

let vars =
  [
    ("x", TInt);
    ("y", TInt);
    ("p", TPtr (PAtom TInt));
    ("q", TPtr (PAtom TInt));
    ("pp", TPtr (PAtom (TPtr (PAtom TInt))));
    ("n", TPtr (PNamed "node"));
  ]

let fresh_env () = initial_env ~limit:256 tenv vars

let tc name f = Alcotest.test_case name `Quick f

let expect_ok env c =
  match eval_cmd ~checked:true env c with
  | Ok env -> env
  | Abort -> Alcotest.fail "unexpected Abort"
  | OutOfMem -> Alcotest.fail "unexpected OutOfMem"
  | Stuck m -> Alcotest.fail ("stuck: " ^ m)

let expect_abort env c =
  match eval_cmd ~checked:true env c with
  | Abort -> ()
  | Ok _ -> Alcotest.fail "expected Abort, got Ok"
  | OutOfMem -> Alcotest.fail "expected Abort, got OutOfMem"
  | Stuck m -> Alcotest.fail ("stuck: " ^ m)

(* --------------------------------------------------------------- *)
(* Generators: type-directed random commands                        *)
(* --------------------------------------------------------------- *)

let gen_cmd : cmd QCheck.Gen.t =
  let open QCheck.Gen in
  let int_rhs =
    oneof
      [
        map (fun i -> Int i) (int_range (-8) 64);
        return (Lhs (Var "x"));
        return (Lhs (Var "y"));
        return (SizeOf TInt);
        return (Lhs (Arrow (Var "n", "v")));
        map2 (fun a b -> Add (a, b))
          (oneofl [ Int 1; Int 2; Lhs (Var "x") ])
          (oneofl [ Int 0; Int 3; Lhs (Var "y") ]);
        return (Cast (TInt, Lhs (Var "p")));
      ]
  in
  let intptr_rhs =
    oneof
      [
        return (AddrOf (Var "x"));
        return (AddrOf (Var "y"));
        return (Lhs (Var "p"));
        return (Lhs (Var "q"));
        return (Lhs (Deref (Var "pp")));
        map (fun n -> Cast (TPtr (PAtom TInt), Malloc (Int n)))
          (int_range 1 4);
        (* pointer arithmetic, possibly out of bounds *)
        map2
          (fun base off -> Add (base, Int off))
          (oneofl [ Lhs (Var "p"); AddrOf (Var "x") ])
          (int_range (-2) 4);
        (* a wild cast: int becomes pointer with null bounds *)
        map (fun i -> Cast (TPtr (PAtom TInt), Int i)) (int_range 0 64);
        (* cast from the node pointer: arbitrary but metadata-preserving *)
        return (Cast (TPtr (PAtom TInt), Lhs (Var "n")));
      ]
  in
  let nodeptr_rhs =
    oneof
      [
        return (Lhs (Var "n"));
        map (fun n -> Cast (TPtr (PNamed "node"), Malloc (Int n)))
          (int_range 1 3);
        return (Lhs (Arrow (Var "n", "next")));
        return (Cast (TPtr (PNamed "node"), Lhs (Var "p")));
      ]
  in
  let assign =
    oneof
      [
        map (fun r -> Assign (Var "x", r)) int_rhs;
        map (fun r -> Assign (Var "y", r)) int_rhs;
        map (fun r -> Assign (Var "p", r)) intptr_rhs;
        map (fun r -> Assign (Var "q", r)) intptr_rhs;
        map (fun r -> Assign (Deref (Var "p"), r)) int_rhs;
        map (fun r -> Assign (Deref (Var "q"), r)) int_rhs;
        map (fun r -> Assign (Var "pp", r))
          (oneofl [ AddrOf (Var "p"); AddrOf (Var "q") ]);
        map (fun r -> Assign (Deref (Var "pp"), r)) intptr_rhs;
        map (fun r -> Assign (Var "n", r)) nodeptr_rhs;
        map (fun r -> Assign (Arrow (Var "n", "v"), r)) int_rhs;
        map (fun r -> Assign (Arrow (Var "n", "next"), r)) nodeptr_rhs;
      ]
  in
  let rec seq depth =
    if depth = 0 then assign
    else
      frequency
        [ (3, assign); (2, map2 (fun a b -> Seq (a, b)) assign (seq (depth - 1))) ]
  in
  seq 8

let arb_cmd = QCheck.make gen_cmd

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:1000 arb_cmd (fun c ->
         let env = fresh_env () in
         QCheck.assume (type_cmd env c);
         f env c))

(* Attacker contexts for the robust properties: arbitrary writes across
   the whole address space, including unallocated addresses and the
   stack cells the protected command uses. *)
let gen_attack : Formal.attacker_step list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 0 12)
    (map2
       (fun aloc aval -> { Formal.aloc; aval })
       (int_range 0 300) (* beyond limit = 256: unallocated too *)
       (int_range (-64) 512))

let arb_cmd_attack = QCheck.make (QCheck.Gen.pair gen_cmd gen_attack)

let robust_prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:1000 arb_cmd_attack (fun (c, atk) ->
         let env = fresh_env () in
         QCheck.assume (type_cmd env c);
         f env atk c))

let suite =
  [
    (* --- unit semantics --- *)
    tc "assign int var" (fun () ->
        let env = expect_ok (fresh_env ()) (Assign (Var "x", Int 7)) in
        match eval_rhs ~checked:true env (Lhs (Var "x")) with
        | Ok (d, TInt, _) -> Alcotest.(check int) "x" 7 d.v
        | _ -> Alcotest.fail "bad read");
    tc "write through &x" (fun () ->
        let env =
          expect_ok (fresh_env ())
            (Seq
               ( Assign (Var "p", AddrOf (Var "x")),
                 Assign (Deref (Var "p"), Int 9) ))
        in
        match eval_rhs ~checked:true env (Lhs (Var "x")) with
        | Ok (d, _, _) -> Alcotest.(check int) "x" 9 d.v
        | _ -> Alcotest.fail "bad read");
    tc "null pointer dereference aborts" (fun () ->
        expect_abort (fresh_env ()) (Assign (Deref (Var "p"), Int 1)));
    tc "out-of-bounds pointer arithmetic aborts on deref" (fun () ->
        expect_abort (fresh_env ())
          (Seq
             ( Assign (Var "p", Add (AddrOf (Var "x"), Int 1)),
               Assign (Deref (Var "p"), Int 1) )));
    tc "malloc'd block is writable across its extent" (fun () ->
        let env =
          expect_ok (fresh_env ())
            (Seq
               ( Assign (Var "p", Cast (TPtr (PAtom TInt), Malloc (Int 3))),
                 Seq
                   ( Assign (Deref (Var "p"), Int 1),
                     Seq
                       ( Assign (Var "q", Add (Lhs (Var "p"), Int 2)),
                         Assign (Deref (Var "q"), Int 2) ) ) ))
        in
        Alcotest.(check bool) "wf" true (wf_env env));
    tc "one past malloc'd block aborts" (fun () ->
        expect_abort (fresh_env ())
          (Seq
             ( Assign (Var "p", Cast (TPtr (PAtom TInt), Malloc (Int 3))),
               Seq
                 ( Assign (Var "q", Add (Lhs (Var "p"), Int 3)),
                   Assign (Deref (Var "q"), Int 7) ) )));
    tc "int cast to pointer has null bounds and aborts" (fun () ->
        expect_abort (fresh_env ())
          (Seq
             ( Assign (Var "p", Cast (TPtr (PAtom TInt), Int 5)),
               Assign (Deref (Var "p"), Int 1) )));
    tc "wild pointer-to-pointer cast keeps metadata (section 5.2)" (fun () ->
        let env =
          expect_ok (fresh_env ())
            (Seq
               ( Assign (Var "n", Cast (TPtr (PNamed "node"), Malloc (Int 2))),
                 Seq
                   ( Assign (Var "p", Cast (TPtr (PAtom TInt), Lhs (Var "n"))),
                     Assign (Deref (Var "p"), Int 3) ) ))
        in
        Alcotest.(check bool) "wf" true (wf_env env));
    tc "recursive struct fields" (fun () ->
        let env =
          expect_ok (fresh_env ())
            (Seq
               ( Assign (Var "n", Cast (TPtr (PNamed "node"), Malloc (Int 2))),
                 Seq
                   ( Assign (Arrow (Var "n", "next"), Lhs (Var "n")),
                     Assign (Arrow (Var "n", "v"), Int 5) ) ))
        in
        match eval_rhs ~checked:true env (Lhs (Arrow (Var "n", "v"))) with
        | Ok (d, _, _) -> Alcotest.(check int) "v" 5 d.v
        | _ -> Alcotest.fail "bad read");
    tc "out of memory is OutOfMem, not Stuck" (fun () ->
        let env = initial_env ~limit:8 tenv [ ("p", TPtr (PAtom TInt)) ] in
        match
          eval_cmd ~checked:true env
            (Assign (Var "p", Cast (TPtr (PAtom TInt), Malloc (Int 100))))
        with
        | OutOfMem -> ()
        | _ -> Alcotest.fail "expected OutOfMem");
    tc "initial env is well-formed" (fun () ->
        Alcotest.(check bool) "wf" true (wf_env (fresh_env ())));
    tc "unchecked semantics gets stuck on a violation" (fun () ->
        match
          eval_cmd ~checked:false (fresh_env ())
            (Assign (Deref (Var "p"), Int 1))
        with
        | Stuck _ -> ()
        | _ -> Alcotest.fail "reference semantics should be undefined here");
    (* --- the theorems, randomized --- *)
    prop "theorem 4.1 (preservation)" (fun env c -> preservation_holds env c);
    prop "theorem 4.2 (progress)" (fun env c -> progress_holds env c);
    prop "corollary 4.1 (agreement with C semantics)" (fun env c ->
        agreement_holds env c);
    prop "well-formedness is invariant under evaluation" (fun env c ->
        match eval_cmd ~checked:true env c with
        | Ok env' -> wf_env env'
        | _ -> true);
    (* --- robust safety: theorems under attacker interference --- *)
    tc "attacker write to protected cell is confined" (fun () ->
        let env = fresh_env () in
        let addr, _ = List.assoc "x" env.stack in
        Alcotest.(check bool)
          "blocked" true
          (attacker_apply ~protected_locs:[ addr ] env
             { aloc = addr; aval = 99 }
          = None);
        Alcotest.(check bool)
          "integrity" true
          (robust_integrity_holds ~protected_locs:[ addr ] env
             [ { aloc = addr; aval = 99 }; { aloc = addr; aval = -1 } ]));
    tc "attacker write to unallocated address is confined" (fun () ->
        let env = fresh_env () in
        Alcotest.(check bool)
          "no effect" true
          (attacker_run env [ { aloc = 4000; aval = 7 } ] = env));
    tc "attacker stores carry null metadata" (fun () ->
        let env = fresh_env () in
        let addr, _ = List.assoc "p" env.stack in
        let env' = attacker_run env [ { aloc = addr; aval = 123 } ] in
        match read env' addr with
        | Some d ->
            Alcotest.(check int) "v" 123 d.v;
            Alcotest.(check int) "b" 0 d.b;
            Alcotest.(check int) "e" 0 d.e
        | None -> Alcotest.fail "cell vanished");
    tc "forged pointer from attacker aborts on deref" (fun () ->
        (* attacker plants an address in p's cell; the null metadata means
           the checked deref must abort, not reach x *)
        let env = fresh_env () in
        let px, _ = List.assoc "x" env.stack in
        let pp, _ = List.assoc "p" env.stack in
        let env' = attacker_run env [ { aloc = pp; aval = px } ] in
        expect_abort env' (Assign (Deref (Var "p"), Int 1)));
    robust_prop "robust preservation (wf + progress under interference)"
      (fun env atk c -> robust_preservation_holds env atk c);
    robust_prop "robust integrity of protected cells" (fun env atk _ ->
        let locs = List.map (fun (_, (a, _)) -> a) env.stack in
        (* protecting every stack cell: no attacker run touches them *)
        robust_integrity_holds ~protected_locs:locs env atk);
  ]
