(* Robust-safety adversarial harness tests.

   Three families:
   - wrapper regression pins: each libc wrapper whose string scan used to
     run unchecked past the argument's bounds now traps at the first
     out-of-bounds byte (and, dually, a bounded strncmp never scans past
     its limit);
   - memmove metadata: overlapping pointer-array moves preserve each
     slot's (base, bound) exactly as a copy through a fresh buffer
     would, both as a MiniC end-to-end check and as a state-level qcheck
     property over random sizes/shifts/facilities;
   - the campaign itself: deterministic generation, regression seeds
     with the expected verdicts, zero escapes over 500+ generated
     attacker/protected pairs, and jobs-independence of the report. *)

module Adv = Fuzz.Adversary
module St = Interp.State
module Mem = Machine.Memory

let opts = Softbound.Config.default

let hash_opts =
  { Softbound.Config.default with facility = Softbound.Config.Hash_table }

let run ?(o = opts) src =
  Softbound.run_protected ~opts:o (Softbound.compile src)

let detects ?(o = opts) name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run ~o src in
      if not (Softbound.detected r) then
        Alcotest.fail
          ("expected a bounds violation, got "
          ^ Interp.State.string_of_outcome r.outcome))

let clean ?(o = opts) name src =
  Alcotest.test_case name `Quick (fun () ->
      let m = Softbound.compile src in
      let un = Softbound.run_unprotected m in
      let pr = Softbound.run_protected ~opts:o m in
      (match (un.outcome, pr.outcome) with
      | Interp.State.Exit a, Interp.State.Exit b when a = b -> ()
      | a, b ->
          Alcotest.fail
            (Printf.sprintf "outcomes differ: %s vs %s"
               (Interp.State.string_of_outcome a)
               (Interp.State.string_of_outcome b)));
      Alcotest.(check string) "stdout agrees" un.stdout_text pr.stdout_text)

(* An 8-byte heap block filled with non-NUL bytes and no terminator:
   any wrapper that scans for the NUL must trap at the block's bound
   instead of wandering into adjacent memory. *)
let unterm body =
  "int main(void) { char *s = (char*)malloc(8); int i; \
   for (i = 0; i < 8; i++) s[i] = 'A'; " ^ body ^ " return 0; }"

(* Same, but digits, for the numeric-conversion wrappers. *)
let unterm_digits body =
  "int main(void) { char *s = (char*)malloc(8); int i; \
   for (i = 0; i < 8; i++) s[i] = '7'; " ^ body ^ " return 0; }"

let tc name f = Alcotest.test_case name `Quick f

(* ---------------------------------------------------------------- *)
(* State-level memmove-metadata property                              *)
(* ---------------------------------------------------------------- *)

(* Shared scaffold: a protected heap with [nslots] pointer slots, each
   holding a distinct malloc'd block with its metadata (built by
   {!Adv.setup}).  The property moves [len] slots by [k] within the
   array and compares every slot's value and peeked metadata against a
   second, identical state where the same move went through the
   attacker's scratch buffer (a fresh, non-overlapping staging area). *)
let memmove_equiv ~facility ~nslots ~k ~right () : string option =
  let p =
    {
      Adv.facility;
      ht_init = 8;
      hole = 32;
      sec = 32;
      nslots;
      bsz = 16;
    }
  in
  let secret = "S" in
  let len = (nslots - k) * 8 in
  let move ctx ~via_fresh =
    let src, dst =
      if right then (ctx.Adv.parr, ctx.Adv.parr + (8 * k))
      else (ctx.Adv.parr + (8 * k), ctx.Adv.parr)
    in
    let pm = (ctx.Adv.parr, ctx.Adv.parr + (8 * nslots)) in
    if via_fresh then begin
      let tmp = ctx.Adv.scratch in
      let tm = (tmp, tmp + Adv.scratch_sz) in
      ignore
        (Adv.wrapper ctx "memmove"
           [ (tmp, Some tm); (src, Some pm); (len, None) ]);
      ignore
        (Adv.wrapper ctx "memmove"
           [ (dst, Some pm); (tmp, Some tm); (len, None) ])
    end
    else
      ignore
        (Adv.wrapper ctx "memmove"
           [ (dst, Some pm); (src, Some pm); (len, None) ]);
    ctx
  in
  let a = move (Adv.setup p ~secret) ~via_fresh:false in
  let b = move (Adv.setup p ~secret) ~via_fresh:true in
  let bad = ref None in
  for i = 0 to nslots - 1 do
    if !bad = None then begin
      let addr_a = a.Adv.parr + (8 * i) and addr_b = b.Adv.parr + (8 * i) in
      let va = Mem.read_int a.Adv.st.St.mem addr_a 8
      and vb = Mem.read_int b.Adv.st.St.mem addr_b 8 in
      (* compare as offsets: the two states have identical layouts, so
         absolute addresses line up slot for slot *)
      if va - a.Adv.parr <> vb - b.Adv.parr then
        bad := Some (Printf.sprintf "slot %d: values differ" i)
      else
        let ba, ea = St.meta_peek a.Adv.st addr_a
        and bb, eb = St.meta_peek b.Adv.st addr_b in
        if ba - a.Adv.parr <> bb - b.Adv.parr || ea - a.Adv.parr <> eb - b.Adv.parr
        then
          bad :=
            Some
              (Printf.sprintf
                 "slot %d: metadata (0x%x,0x%x) vs fresh-buffer (0x%x,0x%x)"
                 i ba ea bb eb)
    end
  done;
  !bad

let memmove_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"overlapping memmove preserves metadata (vs fresh buffer)"
       QCheck.(
         quad (bool : bool arbitrary) (int_range 3 8) (int_range 1 7) bool)
       (fun (hash, nslots, k, right) ->
         let k = 1 + (k mod (nslots - 1)) in
         let facility = if hash then Adv.Hash else Adv.Shadow in
         match memmove_equiv ~facility ~nslots ~k ~right () with
         | None -> true
         | Some why -> QCheck.Test.fail_report why))

(* ---------------------------------------------------------------- *)
(* Suite                                                              *)
(* ---------------------------------------------------------------- *)

let suite =
  [
    (* --- satellite: unchecked-scan regression pins, one per wrapper --- *)
    detects "strlen traps on unterminated string"
      (unterm "long n = strlen(s);");
    detects "strcpy traps scanning unterminated source"
      (unterm "char *d = (char*)malloc(64); strcpy(d, s);");
    detects "strcmp traps on unterminated operand"
      (unterm "int c = strcmp(s, \"AAAA\");");
    detects "strncmp traps when limit exceeds the block"
      (unterm "int c = strncmp(s, \"AAAA\", 100);");
    detects "strchr traps scanning unterminated string"
      (unterm "char *c = strchr(s, 'Z');");
    detects "strrchr traps scanning unterminated string"
      (unterm "char *c = strrchr(s, 'Z');");
    detects "strstr traps on unterminated haystack"
      (unterm "char *c = strstr(s, \"ZQ\");");
    detects "strdup traps on unterminated source"
      (unterm "char *c = strdup(s);");
    detects "puts traps on unterminated string"
      (unterm "puts(s);");
    detects "atoi traps on unterminated digits"
      (unterm_digits "int v = atoi(s);");
    detects "atof traps on unterminated digits"
      (unterm_digits "double v = atof(s);");
    detects "strtol traps on unterminated digits"
      (unterm_digits "long v = strtol(s, (char**)0, 10);");
    (* --- satellite: strncmp must not scan past its limit --- *)
    clean "strncmp with small n never scans past the limit"
      "int main(void) { char *a = (char*)malloc(8); char *b = (char*)malloc(8); \
       int i; for (i = 0; i < 8; i++) { a[i] = 'A'; b[i] = 'A'; } \
       return strncmp(a, b, 4); }";
    clean ~o:hash_opts "strncmp small n, hash-table facility"
      "int main(void) { char *a = (char*)malloc(8); char *b = (char*)malloc(8); \
       int i; for (i = 0; i < 8; i++) { a[i] = 'A'; b[i] = 'B'; } \
       return strncmp(a, b, 0) == 0; }";
    (* --- satellite: overlapping memmove keeps pointer metadata --- *)
    clean "overlapping memmove shift then deref (shadow)"
      "int main(void) { long **a = (long**)malloc(6 * sizeof(long*)); int i; \
       for (i = 0; i < 6; i++) { long *q = (long*)malloc(sizeof(long)); \
       q[0] = i + 10; a[i] = q; } \
       memmove(a + 2, a, 4 * sizeof(long*)); \
       long s = 0; for (i = 0; i < 6; i++) { long *q = a[i]; s = s + q[0]; } \
       return s == 67; }"
      (* slots become [b0,b1,b0,b1,b2,b3]: 10+11+10+11+12+13 = 67 *);
    clean ~o:hash_opts "overlapping memmove shift then deref (hash)"
      "int main(void) { long **a = (long**)malloc(8 * sizeof(long*)); int i; \
       for (i = 0; i < 8; i++) { long *q = (long*)malloc(sizeof(long)); \
       q[0] = i; a[i] = q; } \
       memmove(a + 1, a, 7 * sizeof(long*)); \
       memmove(a, a + 2, 6 * sizeof(long*)); \
       long s = 0; for (i = 0; i < 8; i++) { long *q = a[i]; s = s + q[0]; } \
       return s == 28; }"
      (* after shift-right: 0,0,1..6; after shift-left: 1..6,5,6 = 28 *);
    memmove_prop;
    (* --- the adversarial campaign --- *)
    tc "scenario generation is deterministic" (fun () ->
        let a = Adv.scenario_of ~seed:5 ~index:3
        and b = Adv.scenario_of ~seed:5 ~index:3 in
        Alcotest.(check bool) "equal" true (a = b);
        let c = Adv.scenario_of ~seed:5 ~index:4 in
        Alcotest.(check bool) "distinct indices differ" true (a <> c));
    tc "regression seeds are caught or confined, never escaped" (fun () ->
        let r = Adv.run_campaign ~seed:0 ~count:0 () in
        Alcotest.(check bool) "regression_ok" true r.Adv.regression_ok;
        Alcotest.(check int) "escaped" 0 r.Adv.escaped;
        Alcotest.(check bool) "some caught" true (r.Adv.caught > 0));
    tc "robust safety holds over 500 generated attacker pairs" (fun () ->
        let jobs = min 4 (Parutil.available_jobs ()) in
        let r = Adv.run_campaign ~jobs ~seed:42 ~count:500 () in
        Alcotest.(check int) "escaped" 0 r.Adv.escaped;
        Alcotest.(check bool) "regression_ok" true r.Adv.regression_ok;
        Alcotest.(check bool) "cases ran" true (r.Adv.cases >= 500);
        (* the campaign must actually exercise every attack class *)
        List.iter
          (fun (cls, (ca, co, _)) ->
            Alcotest.(check bool) (cls ^ " exercised") true (ca + co > 0))
          r.Adv.per_class);
    tc "campaign report is jobs-independent" (fun () ->
        let a = Adv.run_campaign ~jobs:1 ~seed:9 ~count:25 ()
        and b = Adv.run_campaign ~jobs:2 ~seed:9 ~count:25 () in
        Alcotest.(check bool) "equal reports" true (a = b));
  ]
