(* SoftBound transformation and runtime tests.

   Three families:
   - detection: spatial violations of every flavour must abort;
   - compatibility: benign programs (including wild casts) must run
     unchanged, with output identical to the uninstrumented run;
   - mode/facility semantics: store-only skips read checks, both metadata
     facilities agree, design-choice toggles behave as documented. *)

let opts = Softbound.Config.default
let store_only = Softbound.Config.store_only

let hash_opts =
  { Softbound.Config.default with facility = Softbound.Config.Hash_table }

let run ?(o = opts) src =
  Softbound.run_protected ~opts:o (Softbound.compile src)

let detects ?(o = opts) name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run ~o src in
      if not (Softbound.detected r) then
        Alcotest.fail
          ("expected a bounds violation, got "
          ^ Interp.State.string_of_outcome r.outcome
          ^ "\n" ^ r.stdout_text))

let clean ?(o = opts) name src =
  Alcotest.test_case name `Quick (fun () ->
      let m = Softbound.compile src in
      let un = Softbound.run_unprotected m in
      let pr = Softbound.run_protected ~opts:o m in
      (match (un.outcome, pr.outcome) with
      | Interp.State.Exit a, Interp.State.Exit b when a = b -> ()
      | a, b ->
          Alcotest.fail
            (Printf.sprintf "outcomes differ: %s vs %s"
               (Interp.State.string_of_outcome a)
               (Interp.State.string_of_outcome b)));
      Alcotest.(check string) "stdout agrees" un.stdout_text pr.stdout_text)

let misses ?(o = opts) name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run ~o src in
      match r.outcome with
      | Interp.State.Exit _ -> ()
      | out ->
          Alcotest.fail
            ("expected a (missed) clean run, got "
            ^ Interp.State.string_of_outcome out))

let suite =
  [
    (* ---------------- detection ---------------- *)
    detects "heap write overflow"
      "int main(void) { int *p = (int*)malloc(4 * sizeof(int)); p[4] = 1; return 0; }";
    detects "heap read overflow"
      "int main(void) { int *p = (int*)malloc(4 * sizeof(int)); return p[4]; }";
    detects "heap underflow"
      "int main(void) { int *p = (int*)malloc(16); return p[-1]; }";
    detects "stack array overflow"
      "int main(void) { int a[4]; a[4] = 1; return 0; }";
    detects "stack array read overflow"
      "int s; int main(void) { int a[4]; int i; for (i = 0; i <= 4; i++) s += a[i]; return s; }";
    detects "global array overflow"
      "int g[8]; int main(void) { g[8] = 1; return 0; }";
    detects "sub-object overflow in struct (paper section 2.1)"
      "typedef struct { char str[8]; long guard; } node_t; \
       int main(void) { node_t n; char *p = n.str; p[8] = 'X'; return 0; }";
    detects "sub-object overflow on heap struct"
      "typedef struct { char str[8]; long guard; } node_t; \
       int main(void) { node_t *n = (node_t*)malloc(sizeof(node_t)); n->str[9] = 'X'; return 0; }";
    detects "strcpy overflow caught in wrapper"
      "int main(void) { char *d = (char*)malloc(4); strcpy(d, \"too long for it\"); return 0; }";
    detects "strcat overflow caught in wrapper"
      "int main(void) { char d[8]; strcpy(d, \"abcdef\"); strcat(d, \"ghi\"); return 0; }";
    detects "memcpy overflow caught once at start (section 5.2)"
      "int main(void) { char s[16]; char *d = (char*)malloc(8); memcpy(d, s, 16); return 0; }";
    detects "memset overflow"
      "int main(void) { char *d = (char*)malloc(8); memset(d, 0, 9); return 0; }";
    detects "sprintf overflow"
      {|int main(void) { char b[4]; sprintf(b, "%d", 123456); return 0; }|};
    detects "null pointer dereference (null bounds)"
      "int main(void) { int *p = NULL; return *p; }";
    detects "pointer manufactured from integer has null bounds (section 5.2)"
      "int main(void) { long *p = (long*)0x40000000; return (int)*p; }";
    detects "dereference past the whole object via cast"
      "int main(void) { char *p = (char*)malloc(6); int *ip = (int*)(p + 4); return *ip; }";
    detects "use of pointer loaded from memory keeps bounds"
      "int **cell; int main(void) { int *p = (int*)malloc(8); cell = &p; int *q = *cell; return q[2]; }";
    detects "bounds survive struct field store/load"
      "typedef struct { int *ptr; } box; \
       int main(void) { box b; b.ptr = (int*)malloc(8); int *q = b.ptr; return q[2]; }";
    (* casting through an integer deliberately loses bounds: the deref
       must abort with NULL bounds even though the address is valid
       (section 5.2, "Creating pointers from integers") *)
    detects "pointer laundered through an int aborts (conservative)"
      "int main(void) { int *p = (int*)malloc(8); long l = (long)p; int *q = (int*)l; return q[0]; }";
    detects "function pointer check rejects data pointers (section 5.2)"
      "int main(void) { int x = 5; void (*fp)(void) = (void(*)(void))&x; fp(); return 0; }";
    detects "function pointer check rejects corrupted values"
      "void safe(void) {} \
       int main(void) { void (*fp)(void); void (**cell)(void) = &fp; fp = safe; \
       *(long*)cell = 1234; fp(); return 0; }";
    detects "vararg over-read is caught (section 5.2)"
      "int take(int n, ...) { va_list ap; va_start(ap); int a = va_arg_int(ap); int b = va_arg_int(ap); return a + b; } \
       int main(void) { return take(1, 7); }";
    detects "interior pointer arithmetic past end"
      "int main(void) { int a[10]; int *p = &a[5]; return p[5]; }";
    detects "setbound can narrow a pointer"
      "int main(void) { char *p = (char*)malloc(16); setbound(p, 4); p[4] = 1; return 0; }";
    detects "one-past-the-end pointer may exist but not be dereferenced"
      "int main(void) { int a[4]; int *p = &a[4]; return *p; }";
    detects "static local arrays carry their own bounds"
      "int use(void) { static char b[8]; b[9] = 1; return 0; } \
       int main(void) { return use(); }";
    detects "read overflow through argv-independent loop"
      "int main(void) { char buf[8]; int i; int s = 0; for (i = 0; i < 16; i++) s += buf[i]; return s; }";
    (* ---------------- compatibility (no false positives) ------------- *)
    clean "in-bounds array walk"
      "int main(void) { int a[100]; int i; int s = 0; for (i = 0; i < 100; i++) a[i] = i; \
       for (i = 0; i < 100; i++) s += a[i]; printf(\"%d\\n\", s); return s == 4950; }";
    clean "one-past-the-end pointer as loop bound is legal"
      "int main(void) { int a[10]; int *p; int s = 0; for (p = a; p < a + 10; p++) *p = 1; \
       for (p = a; p < a + 10; p++) s += *p; return s == 10; }";
    clean "wild casts with correct use (section 5.2)"
      "typedef struct { int a; int b; } two; \
       int main(void) { two *t = (two*)malloc(sizeof(two)); long *l = (long*)t; *l = 0x0000000200000001L; \
       printf(\"%d %d\\n\", t->a, t->b); return t->a == 1 && t->b == 2; }";
    clean "union type punning"
      "union u { unsigned int i; unsigned char b[4]; }; \
       int main(void) { union u x; x.i = 0xdeadbeefu; printf(\"%x\\n\", x.b[0]); return x.b[0] == 0xef; }";
    clean "linked structures with interior pointers"
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t *h = NULL; int i; for (i = 0; i < 20; i++) { n_t *x = (n_t*)malloc(sizeof(n_t)); \
       x->v = i; x->next = h; h = x; } int s = 0; n_t *c; for (c = h; c; c = c->next) s += c->v; \
       printf(\"%d\\n\", s); return s == 190; }";
    clean "strings within bounds"
      "int main(void) { char buf[64]; strcpy(buf, \"hello\"); strcat(buf, \" world\"); \
       printf(\"%s %d\\n\", buf, (int)strlen(buf)); return 0; }";
    Alcotest.test_case "memcpy within bounds copies metadata for pointers"
      `Quick (fun () ->
        let r =
          run
            "typedef struct { int *p; int pad; } holder; \
             int main(void) { holder a; holder b; a.p = (int*)malloc(8); a.p[0] = 7; a.pad = 0; \
             memcpy(&b, &a, sizeof(holder)); return b.p[0] == 7; }"
        in
        match r.outcome with
        | Interp.State.Exit 1 -> ()
        | o -> Alcotest.fail (Interp.State.string_of_outcome o));
    clean "setjmp/longjmp under instrumentation"
      "jmp_buf jb; void hop(void) { longjmp(jb, 3); } \
       int main(void) { int v = setjmp(jb); if (v == 3) { printf(\"landed\\n\"); return 1; } hop(); return 0; }";
    clean "varargs printf with strings"
      {|int main(void) { char name[8]; strcpy(name, "bob"); printf("hi %s %d\n", name, 3); return 0; }|};
    clean "user varargs in bounds"
      "int sum(int n, ...) { va_list ap; int s = 0; int i; va_start(ap); for (i = 0; i < n; i++) s += va_arg_int(ap); return s; } \
       int main(void) { printf(\"%d\\n\", sum(3, 10, 20, 30)); return 0; }";
    clean "function pointers through tables"
      "int inc(int x) { return x + 1; } int dec(int x) { return x - 1; } \
       int main(void) { int (*ops[2])(int); ops[0] = inc; ops[1] = dec; \
       printf(\"%d\\n\", ops[0](5) + ops[1](5)); return 0; }";
    clean "free and reuse"
      "int main(void) { int i; for (i = 0; i < 50; i++) { char *p = (char*)malloc(32); p[31] = 1; free(p); } return 0; }";
    clean "realloc keeps metadata usable"
      "int main(void) { int *p = (int*)malloc(2 * sizeof(int)); p[0] = 5; \
       p = (int*)realloc(p, 64 * sizeof(int)); p[63] = 9; printf(\"%d %d\\n\", p[0], p[63]); return 0; }";
    clean "global pointers initialized statically (section 5.2)"
      "int data[4] = {1, 2, 3, 4}; int *gp = data; char *gs = \"text\"; \
       int main(void) { printf(\"%d %c\\n\", gp[3], gs[0]); return gp[3] == 4 && gs[0] == 't'; }";
    (* ---------------- modes and facilities ---------------- *)
    misses ~o:store_only "store-only misses read overflows"
      "int sink; int main(void) { int *p = (int*)malloc(8); sink = p[5]; return 0; }";
    detects ~o:store_only "store-only catches write overflows"
      "int main(void) { int *p = (int*)malloc(8); p[5] = 1; return 0; }";
    detects ~o:store_only "store-only catches strcpy overflow (it writes)"
      "int main(void) { char *d = (char*)malloc(4); strcpy(d, \"much too long\"); return 0; }";
    misses ~o:store_only "store-only misses printf %s over-read"
      "int main(void) { char b[4]; b[0] = 'a'; b[1] = 'b'; b[2] = 'c'; b[3] = 'd'; \
       char pad[8]; pad[0] = 0; printf(\"%s\\n\", b); return 0; }";
    detects ~o:hash_opts "hash-table facility detects like shadow space"
      "int main(void) { int *p = (int*)malloc(8); return p[9]; }";
    clean ~o:hash_opts "hash-table facility has no false positives"
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t *h = NULL; int i; for (i = 0; i < 40; i++) { n_t *x = (n_t*)malloc(sizeof(n_t)); \
       x->v = i; x->next = h; h = x; } int s = 0; while (h) { s += h->v; h = h->next; } \
       printf(\"%d\\n\", s); return 0; }";
    Alcotest.test_case "both facilities agree on every outcome" `Quick
      (fun () ->
        let progs =
          [
            "int main(void) { int a[4]; a[3] = 1; return a[3]; }";
            "int main(void) { int *p = (int*)malloc(8); return p[2]; }";
            "int main(void) { char b[8]; strcpy(b, \"1234567\"); return 0; }";
          ]
        in
        List.iter
          (fun src ->
            let m = Softbound.compile src in
            let a = Softbound.run_protected ~opts m in
            let b = Softbound.run_protected ~opts:hash_opts m in
            Alcotest.(check bool)
              "same detection" (Softbound.detected a) (Softbound.detected b))
          progs);
    (* ---------------- design-choice toggles ---------------- *)
    misses
      ~o:{ opts with Softbound.Config.shrink_bounds = false }
      "without shrinking, sub-object overflow is missed"
      "typedef struct { char str[8]; long guard; } node_t; int sink; \
       int main(void) { node_t n; char *p = n.str; n.guard = 1; sink = p[8]; return 0; }";
    Alcotest.test_case "metadata is cleared when a frame is reused" `Quick
      (fun () ->
        (* leak a pointer slot's address via a dangling frame: with stack
           metadata clearing the reloaded pointer has null bounds *)
        let src =
          "long *steal(void) { long local = 7; long *p = &local; long **pp = &p; return *pp; } \n\
           int use(long *stale) { return (int)*stale; } \n\
           int main(void) { long *s = steal(); return use(s); }"
        in
        (* this one is about temporal reuse; SoftBound only promises the
           spatial property, so we merely require no crash of the
           harness: either a detection or an exit is acceptable *)
        let r = run src in
        match r.outcome with
        | Interp.State.Exit _ | Interp.State.Trapped _ -> ());
    detects "qsort comparator receives per-element bounds"
      "int bad_cmp(void *a, void *b) { int *x = (int*)a; return x[0] + x[1]; } \
       int main(void) { int arr[4]; arr[0] = 1; arr[1] = 2; arr[2] = 0; arr[3] = 3; \
       qsort(arr, 4, sizeof(int), bad_cmp); return 0; }";
    detects "qsort checks the whole array extent up front"
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int *a = (int*)malloc(4 * sizeof(int)); \
       qsort(a, 8, sizeof(int), cmp); return 0; }";
    clean "qsort of a pointer array moves metadata with the elements"
      "int by_len(void *a, void *b) { return (int)strlen(*(char**)a) - (int)strlen(*(char**)b); } \
       int main(void) { char *w[4]; int i; \
       w[0] = \"kiwi\"; w[1] = \"fig\"; w[2] = \"banana\"; w[3] = \"apple\"; \
       qsort(w, 4, sizeof(char*), by_len); \
       for (i = 0; i < 4; i++) printf(\"%s \", w[i]); printf(\"\\n\"); return 0; }";
    clean "qsort and bsearch degenerate calls are no-ops"
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int a[2]; a[0] = 1; a[1] = 2; int k = 1; \
       qsort(a, 0, sizeof(int), cmp); qsort(a, 2, 0, cmp); \
       printf(\"%d\\n\", bsearch(&k, a, 0, sizeof(int), cmp) == NULL); return 0; }";
    clean "qsort and bsearch under instrumentation"
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int a[16]; int i; for (i = 0; i < 16; i++) a[i] = (i * 11 + 5) % 31; \
       qsort(a, 16, sizeof(int), cmp); \
       int k = a[7]; int *hit = (int*)bsearch(&k, a, 16, sizeof(int), cmp); \
       printf(\"%d %d\\n\", a[0] <= a[15], hit != NULL); return 0; }";
    detects "strtol's stored end pointer keeps the string's bounds"
      "int sink; int main(void) { char buf[8]; strcpy(buf, \"12\"); char *end; \
       strtol(buf, &end, 10); sink = end[20]; return 0; }";
    (* ---------------- future-work extension: fptr signatures -------- *)
    detects
      ~o:{ opts with Softbound.Config.fptr_signatures = true }
      "signature check catches cast between incompatible function pointers"
      "int takes_int(int x) { return x + 1; } \
       int main(void) { int (*fp)(char*) = (int(*)(char*))takes_int; \
       char b[4]; return fp(b); }";
    misses "without the extension the prototype accepts mismatched arity-compatible casts"
      "int takes_int(long x) { return (int)x; } \
       int main(void) { int (*fp)(long) = takes_int; return fp(7L) - 8; }";
    clean
      ~o:{ opts with Softbound.Config.fptr_signatures = true }
      "signature check passes matching indirect calls"
      "int add(int a, int b) { return a + b; } \
       int mul(int a, int b) { return a * b; } \
       int main(void) { int (*ops[2])(int, int); ops[0] = add; ops[1] = mul; \
       printf(\"%d\\n\", ops[0](2, 3) + ops[1](2, 3)); return 0; }";
    clean
      ~o:{ opts with Softbound.Config.fptr_signatures = true }
      "signature check passes pointer-taking indirect calls"
      "int first(char *s) { return s[0]; } \
       int main(void) { int (*fp)(char*) = first; char b[4]; b[0] = 65; \
       printf(\"%d\\n\", fp(b)); return 0; }";
    Alcotest.test_case "transform is rejected on instrumented input" `Quick
      (fun () ->
        let m =
          Softbound.compile
            "int main(void) { int a[2]; a[1] = 1; return a[1]; }"
        in
        let m1 = Softbound.instrument m in
        match Softbound.instrument m1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "double instrumentation should be rejected");
    Alcotest.test_case "instrumented module validates" `Quick (fun () ->
        let m =
          Softbound.compile
            "int f(int *p) { return p[0]; } int main(void) { int a[2]; a[0] = 3; return f(a); }"
        in
        Sbir.Ir.validate (Softbound.instrument m));
    Alcotest.test_case "function renaming and extra params (section 3.3)"
      `Quick (fun () ->
        let m =
          Softbound.compile
            "int f(char *s, int n) { return s[n]; } int main(void) { char b[4]; b[0] = 1; return f(b, 0); }"
        in
        let m' = Softbound.instrument m in
        match Sbir.Ir.find_func m' "_sb_f" with
        | None -> Alcotest.fail "expected _sb_f"
        | Some f ->
            (* char* s gains base+bound parameters: 2 + 2 = 4 *)
            Alcotest.(check int) "params" 4 (List.length f.Sbir.Ir.fparams));
    Alcotest.test_case "pointer-returning functions return triples" `Quick
      (fun () ->
        let m =
          Softbound.compile
            "char *id(char *s) { return s; } int main(void) { char b[2]; return id(b) == b; }"
        in
        let m' = Softbound.instrument m in
        let f = Option.get (Sbir.Ir.find_func m' "_sb_id") in
        Alcotest.(check int) "rets" 3 (List.length f.Sbir.Ir.frets));
    (* ---------------- string-wrapper bound checks ----------------
       The wrappers must bound their *scans*, not only the final copy:
       a length computed by reading past the source's bounds has
       already committed the violation.  A two-byte unterminated
       struct field makes the distinction observable, because the
       in-struct bytes after it are readable memory. *)
    detects "strcat scan stops at the source field's bound"
      "struct T { char b[2]; char tail[6]; }; \
       int main(void) { struct T t; t.b[0] = 'A'; t.b[1] = 'B'; t.tail[0] = 0; \
       char d[16]; d[0] = 0; strcat(d, t.b); return 0; }";
    detects "sprintf %s scan stops at the source field's bound"
      "struct T { char b[2]; char tail[6]; }; \
       int main(void) { struct T t; t.b[0] = 'A'; t.b[1] = 'B'; t.tail[0] = 0; \
       char d[16]; sprintf(d, \"%s\", t.b); return 0; }";
    clean "strncpy never scans past its byte budget"
      "struct T { char b[2]; char tail[6]; }; \
       int main(void) { struct T t; t.b[0] = 'A'; t.b[1] = 'B'; t.tail[0] = 0; \
       char d[8]; strncpy(d, t.b, 2); d[2] = 0; printf(\"%s\\n\", d); return 0; }";
    detects "strncat source scan is bounded too"
      "struct T { char b[2]; char tail[6]; }; \
       int main(void) { struct T t; t.b[0] = 'A'; t.b[1] = 'B'; t.tail[0] = 0; \
       char d[16]; d[0] = 0; strncat(d, t.b, 5); return 0; }";
    (* ---------------- longjmp and stack metadata ----------------
       The transform clears pointer-slot metadata before each return
       (section 5.2); longjmp skips those returns, so the VM must clear
       during the unwind or a later frame reusing the stack space
       observes stale bounds that validate a dead pointer. *)
    Alcotest.test_case "longjmp clears unwound frames' pointer metadata"
      `Quick (fun () ->
        let src =
          "jmp_buf jb; \
           void f(void) { long a[4]; long *ps[2]; ps[0] = a; ps[0][0] = 7; longjmp(jb, 1); } \
           long g(void) { long a[4]; long *ps[2]; return *ps[0]; } \
           int main(void) { if (setjmp(jb) == 0) { f(); } return (int)g(); }"
        in
        let m = Softbound.compile src in
        List.iter
          (fun o ->
            let r = Softbound.run_protected ~opts:o m in
            if not (Softbound.detected r) then
              Alcotest.fail
                (Softbound.Config.facility_name o.Softbound.Config.facility
                ^ ": expected the dead-frame pointer to trap, got "
                ^ Interp.State.string_of_outcome r.outcome))
          [ opts; hash_opts ]);
    Alcotest.test_case "longjmp leaves surviving metadata consistent" `Quick
      (fun () ->
        let src =
          "jmp_buf jb; long *gp; \
           void f(void) { long x[2]; x[0] = 1; longjmp(jb, 7); } \
           int main(void) { long buf[4]; long i; \
           for (i = 0; i < 4; i = i + 1) buf[i] = i; gp = buf; \
           if (setjmp(jb) == 0) f(); \
           long s = 0; for (i = 0; i < 4; i = i + 1) s += gp[i]; \
           printf(\"%ld\\n\", s); return (int)s; }"
        in
        let m = Softbound.compile src in
        let un = Softbound.run_unprotected m in
        List.iter
          (fun o ->
            let r = Softbound.run_protected ~opts:o m in
            (match (un.outcome, r.outcome) with
            | Interp.State.Exit a, Interp.State.Exit b when a = b -> ()
            | a, b ->
                Alcotest.fail
                  (Printf.sprintf "%s: outcomes differ: %s vs %s"
                     (Softbound.Config.facility_name
                        o.Softbound.Config.facility)
                     (Interp.State.string_of_outcome a)
                     (Interp.State.string_of_outcome b)));
            Alcotest.(check string) "stdout agrees" un.stdout_text
              r.stdout_text)
          [ opts; hash_opts ]);
    (* ---------------- metadata hash table growth ---------------- *)
    Alcotest.test_case "hash table resizes past its initial capacity" `Quick
      (fun () ->
        (* 512 pointer stores into a 64-entry table force several
           doublings; behavior and output must match the uninstrumented
           run, and metadata must survive each rehash *)
        let src =
          "long *tab[512]; \
           int main(void) { long i; \
           for (i = 0; i < 512; i = i + 1) { tab[i] = (long *)malloc(2 * sizeof(long)); *tab[i] = i; } \
           long acc = 0; \
           for (i = 0; i < 512; i = i + 1) acc += *tab[i]; \
           printf(\"%ld\\n\", acc); return 0; }"
        in
        let m = Softbound.compile src in
        let cfg = { Interp.State.default_config with ht_entries_init = 64 } in
        let un = Softbound.run_unprotected ~cfg m in
        let pr = Softbound.run_protected ~opts:hash_opts ~cfg m in
        (match (un.outcome, pr.outcome) with
        | Interp.State.Exit a, Interp.State.Exit b when a = b -> ()
        | a, b ->
            Alcotest.fail
              (Printf.sprintf "outcomes differ: %s vs %s"
                 (Interp.State.string_of_outcome a)
                 (Interp.State.string_of_outcome b)));
        Alcotest.(check string) "stdout agrees" un.stdout_text pr.stdout_text);
    Alcotest.test_case "bounds survive hash table growth" `Quick (fun () ->
        let src =
          "long *tab[512]; \
           int main(void) { long i; \
           for (i = 0; i < 512; i = i + 1) { tab[i] = (long *)malloc(2 * sizeof(long)); *tab[i] = i; } \
           *(tab[7] + 2) = 1; return 0; }"
        in
        let m = Softbound.compile src in
        let cfg = { Interp.State.default_config with ht_entries_init = 64 } in
        let r = Softbound.run_protected ~opts:hash_opts ~cfg m in
        if not (Softbound.detected r) then
          Alcotest.fail
            ("expected a bounds violation after rehash, got "
            ^ Interp.State.string_of_outcome r.outcome));
  ]
