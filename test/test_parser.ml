(* Parser unit tests: declarations, declarators, precedence, statements. *)

open Cminus

let parse src = Parser.parse_string src

let parses name src =
  Alcotest.test_case name `Quick (fun () -> ignore (parse src))

let parse_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | exception Parser.Parse_error _ -> ()
      | exception Ctypes.Type_error _ -> ()
      | _ -> Alcotest.fail "expected a parse error")

(** Find a global variable's declared type. *)
let gvar_ty src name =
  let p = parse src in
  let rec go = function
    | [] -> Alcotest.fail ("no global " ^ name)
    | Ast.Gvar g :: _ when g.gname = name -> g.gty
    | _ :: rest -> go rest
  in
  go p.defs

let check_ty name src var expected =
  Alcotest.test_case name `Quick (fun () ->
      let ty = gvar_ty src var in
      Alcotest.(check string)
        name
        (Ctypes.string_of_ty expected)
        (Ctypes.string_of_ty ty))

open Ctypes

let suite =
  [
    (* --- declarators --- *)
    check_ty "simple int" "int x;" "x" (Tint IInt);
    check_ty "pointer" "int *p;" "p" (Tptr (Tint IInt));
    check_ty "pointer to pointer" "char **pp;" "pp"
      (Tptr (Tptr (Tint IChar)));
    check_ty "array" "int a[10];" "a" (Tarray (Tint IInt, 10));
    check_ty "2d array" "int m[3][4];" "m"
      (Tarray (Tarray (Tint IInt, 4), 3));
    check_ty "array of pointers" "int *ap[5];" "ap"
      (Tarray (Tptr (Tint IInt), 5));
    check_ty "pointer to array" "int (*pa)[5];" "pa"
      (Tptr (Tarray (Tint IInt, 5)));
    check_ty "function pointer" "int (*f)(int, char);" "f"
      (Tptr (Tfunc { ret = Tint IInt;
                     params = [ Tint IInt; Tint IChar ];
                     variadic = false }));
    check_ty "variadic function pointer" "int (*f)(char*, ...);" "f"
      (Tptr (Tfunc { ret = Tint IInt;
                     params = [ Tptr (Tint IChar) ];
                     variadic = true }));
    check_ty "unsigned kinds" "unsigned long ul;" "ul" (Tint IULong);
    check_ty "short" "short s;" "s" (Tint IShort);
    check_ty "unsigned char" "unsigned char c;" "c" (Tint IUChar);
    check_ty "const ignored" "const int x;" "x" (Tint IInt);
    check_ty "array size from constant expr" "int a[4 * 2 + 1];" "a"
      (Tarray (Tint IInt, 9));
    check_ty "array size from sizeof" "char a[sizeof(long)];" "a"
      (Tarray (Tint IChar, 8));
    check_ty "array size from enum" "enum { N = 6 }; int a[N];" "a"
      (Tarray (Tint IInt, 6));
    check_ty "typedef use" "typedef unsigned int uint; uint x;" "x"
      (Tnamed "uint");
    (* --- struct/union parsing --- *)
    Alcotest.test_case "struct definition registers layout" `Quick (fun () ->
        let p = parse "struct s { char c; int i; char d; };" in
        let comp = Ctypes.find_comp p.penv ~is_struct:true "s" in
        Alcotest.(check int) "size" 12 comp.csize;
        Alcotest.(check int) "align" 4 comp.calign);
    Alcotest.test_case "union size is max field" `Quick (fun () ->
        let p = parse "union u { char c[5]; long l; };" in
        let comp = Ctypes.find_comp p.penv ~is_struct:false "u" in
        Alcotest.(check int) "size" 8 comp.csize);
    parses "self-referential struct"
      "struct node { int v; struct node *next; };";
    parses "anonymous struct typedef"
      "typedef struct { int a; int b; } pair_t; pair_t g;";
    parses "nested struct"
      "struct inner { int x; }; struct outer { struct inner i; int y; };";
    (* --- functions --- *)
    parses "function definition" "int add(int a, int b) { return a + b; }";
    parses "pointer-returning function" "char *dup(char *s) { return s; }";
    parses "void params" "int f(void) { return 0; }";
    parses "variadic definition" "int f(int n, ...) { return n; }";
    parses "prototype then definition"
      "int f(int); int f(int x) { return x; }";
    (* --- statements and expressions --- *)
    parses "for with declaration" "int f(void) { for (int i = 0; i < 3; i++) ; return 0; }";
    parses "do-while" "int f(void) { int i = 0; do { i++; } while (i < 3); return i; }";
    parses "switch with cases"
      "int f(int x) { switch (x) { case 1: return 1; case 2: case 3: return 23; default: return 0; } }";
    parses "ternary chain" "int f(int x) { return x ? 1 : x > 2 ? 3 : 4; }";
    parses "comma expression" "int f(void) { int x; x = (1, 2, 3); return x; }";
    parses "casts in expressions"
      "int f(void) { long l = (long)(int)'a'; return (int)l; }";
    parses "sizeof forms"
      "int f(void) { int a[3]; return sizeof(int) + sizeof a + sizeof(a[0]); }";
    parses "address and deref"
      "int f(void) { int x = 1; int *p = &x; return *p; }";
    parses "string initializer" "char s[6] = \"hello\";";
    parses "inferred array size" "int a[] = {1, 2, 3};";
    parses "trailing comma in init list" "int a[3] = {1, 2, 3,};";
    parses "struct initializer" "struct p { int x; int y; }; struct p g = {1, 2};";
    parse_fails "missing semicolon" "int x";
    parse_fails "unbalanced paren" "int f(void) { return (1; }";
    parse_fails "bad declarator" "int 5x;";
    parse_fails "case outside switch body" "int f(void) { case 1: return 0; }";
    Alcotest.test_case "enum values assigned sequentially" `Quick (fun () ->
        let p = parse "enum { A, B, C = 10, D };" in
        let v n = Hashtbl.find p.penv.enums n in
        Alcotest.(check int) "A" 0 (Int64.to_int (v "A"));
        Alcotest.(check int) "B" 1 (Int64.to_int (v "B"));
        Alcotest.(check int) "C" 10 (Int64.to_int (v "C"));
        Alcotest.(check int) "D" 11 (Int64.to_int (v "D")));
  ]
