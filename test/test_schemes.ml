(* N-scheme matrix tests.

   The completeness-gap matrix: the four fixed attack programs
   (Schemes.gap_attacks) run under every scheme on the Runner axis, and
   every Detected/survived cell is pinned exactly — SoftBound full
   checking is the only configuration besides store-only that sees the
   sub-object overflow, store-only is blind to the read attack, and the
   memcheck-like redzone checker misses stack and underflow attacks.
   If a scheme's coverage shifts, these tests force the diff to be
   reviewed, exactly like a golden file.

   The N-scheme differential oracle: a bounded seeded campaign over the
   full matrix must classify every divergence as a documented gap (zero
   findings), and a deliberately injected scheme bug (CGuard silently
   skipping read checks, behind a test hook) must be flagged as
   missed-detection.

   Golden/expect: profile JSON and trap traces for the three
   related-work schemes on the two fixed attack programs, pinned
   byte-for-byte under test/golden/ (regenerate with gen_golden). *)

module Gen = Fuzz.Gen
module Oracle = Fuzz.Oracle

let tc name f = Alcotest.test_case name `Quick f

(* ---- registry sanity ---- *)

let registry_tests =
  [
    tc "registry: names are distinct and findable" (fun () ->
        let names = Schemes.names () in
        Alcotest.(check int)
          "count" 7 (List.length names);
        Alcotest.(check int)
          "distinct"
          (List.length names)
          (List.length (List.sort_uniq compare names));
        List.iter
          (fun n ->
            match Schemes.find n with
            | Some e -> Alcotest.(check string) "roundtrip" n e.Schemes.sname
            | None -> Alcotest.fail ("find lost " ^ n))
          names);
    tc "registry: every scheme documents the sub-object gap" (fun () ->
        List.iter
          (fun e ->
            Alcotest.(check bool)
              (e.Schemes.sname ^ " misses sub-object")
              true e.Schemes.misses_sub_object)
          (Schemes.all ()));
    tc "registry: transform schemes use whole-object bounds" (fun () ->
        List.iter
          (fun e ->
            match e.Schemes.impl with
            | Schemes.Transform opts ->
                Alcotest.(check bool)
                  (e.Schemes.sname ^ " shrink_bounds off")
                  false opts.Softbound.Config.shrink_bounds
            | Schemes.Plugin _ -> ())
          (Schemes.all ()));
  ]

(* ---- the completeness-gap matrix, every cell pinned ---- *)

(* expected Detected cells per attack, in Exp_schemes.schemes order:
   [sb-full; sb-store; mscc; cguard; framer; l4-pointer; jones-kelly;
   memcheck-like; mudflap-like] *)
let expected_matrix =
  [
    (* only per-pointer bounds shrunk to the field see an overflow that
       stays inside the allocation (Table 4's sub-object row) *)
    ( "sub-object-overflow",
      [ true; true; false; false; false; false; false; false; false ] );
    (* a classic adjacent-block heap overflow: everyone sees it *)
    ( "adjacent-heap-overflow",
      [ true; true; true; true; true; true; true; true; true ] );
    (* underflow below the block: the memcheck-like checker only pads
       the far end of heap blocks with a redzone *)
    ( "heap-underflow",
      [ true; true; true; true; true; true; true; false; true ] );
    (* an out-of-bounds *read*: store-only checking skips it by design,
       and the heap-only redzone checker cannot see stack accesses *)
    ( "off-by-one-read",
      [ true; false; true; true; true; true; true; false; true ] );
  ]

let gap_matrix_tests =
  [
    tc "gap matrix: every cell is exactly as documented" (fun () ->
        List.iter
          (fun (attack, src) ->
            let m = Softbound.compile src in
            let expected =
              match List.assoc_opt attack expected_matrix with
              | Some cells -> cells
              | None -> Alcotest.fail ("no expectation for " ^ attack)
            in
            List.iter2
              (fun (sname, scheme) want ->
                let det =
                  Harness.Runner.detected
                    (Harness.Runner.verdict_of (Harness.Runner.run scheme m))
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s under %s" attack sname)
                  want det)
              Harness.Exp_schemes.schemes expected)
          Schemes.gap_attacks);
    tc "gap matrix: full SoftBound strictly dominates every other scheme"
      (fun () ->
        (* SoftBound full checking detects all four attacks, and every
           other scheme misses at least one it catches *)
        List.iter
          (fun (_, cells) ->
            Alcotest.(check bool) "sb-full detects" true (List.nth cells 0))
          expected_matrix;
        List.iteri
          (fun i (sname, _) ->
            if i > 0 then
              Alcotest.(check bool)
                (sname ^ " misses something sb-full catches")
                true
                (List.exists
                   (fun (_, cells) -> not (List.nth cells i))
                   expected_matrix))
          Harness.Exp_schemes.schemes);
    tc "gap matrix: surviving attacks still corrupt under no protection"
      (fun () ->
        (* sanity that the attacks are real violations: the adjacent
           heap overflow is detected by every scheme but runs to
           completion unprotected *)
        let src = List.assoc "adjacent-heap-overflow" Schemes.gap_attacks in
        let r =
          Harness.Runner.run Harness.Runner.Unprotected
            (Softbound.compile src)
        in
        match r.Interp.Vm.outcome with
        | Interp.State.Exit 0 -> ()
        | o ->
            Alcotest.fail
              ("unprotected run should survive: "
              ^ Interp.State.string_of_outcome o));
  ]

(* ---- golden: the related-work schemes on the fixed attacks ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden name actual =
  let expected = read_file (Filename.concat "golden" name) in
  Alcotest.(check string) name expected actual

let compile_golden name =
  Softbound.compile (read_file (Filename.concat "golden" name))

let scheme_opts =
  [
    ("cguard", Schemes.Cguard.options ());
    ("framer", Schemes.Framer.options ());
    ("l4-pointer", Schemes.L4_pointer.options ());
  ]

let golden_tests =
  List.concat_map
    (fun prog ->
      List.concat_map
        (fun (sname, opts) ->
          [
            tc
              (Printf.sprintf "golden: %s metrics JSON under %s" prog sname)
              (fun () ->
                let p =
                  Harness.Profile.profile ~label:(prog ^ ".c") ~opts
                    (compile_golden (prog ^ ".c"))
                in
                golden
                  (Printf.sprintf "%s.%s.profile.json" prog sname)
                  (Harness.Profile.to_json p));
            tc
              (Printf.sprintf "golden: %s trap trace under %s" prog sname)
              (fun () ->
                let cfg =
                  { Interp.State.default_config with
                    Interp.State.trace_depth = 16 }
                in
                let p =
                  Harness.Profile.profile ~label:(prog ^ ".c") ~opts ~cfg
                    ~with_baseline:false
                    (compile_golden (prog ^ ".c"))
                in
                golden
                  (Printf.sprintf "%s.%s.trace.txt" prog sname)
                  (Obs.dump_trace
                     p.Harness.Profile.result.Interp.Vm.obs));
          ])
        scheme_opts)
    [ "oob_write"; "oob_read" ]

(* ---- the N-scheme differential oracle ---- *)

let rd_program () =
  Cminus.Parser.parse_string
    "int main(void) { long a[4]; long i; for (i = 0; i < 4; i = i + 1) \
     a[i] = i; long x = a[6]; return (int)(x & 0); }"

let oracle_tests =
  [
    Alcotest.test_case "matrix campaign: zero unexplained divergences" `Slow
      (fun () ->
        let r =
          Fuzz.run_campaign ~matrix:true ~shrink:false ~seed:1 ~count:200 ()
        in
        (match r.Fuzz.findings with
        | [] -> ()
        | f :: _ ->
            Alcotest.fail
              (Printf.sprintf "unexplained divergence (%d total), first: %s"
                 (List.length r.Fuzz.findings)
                 (Fuzz.render_finding f)));
        Alcotest.(check bool) "matrix mode recorded" true r.Fuzz.matrix;
        Alcotest.(check int) "all cases ran" 200
          (r.Fuzz.tested + r.Fuzz.skipped);
        Alcotest.(check bool) "some cases injected violations" true
          (r.Fuzz.trap_cases > 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30
         ~name:"matrix oracle: random cases classify clean"
         QCheck.(int_range 5000 6000)
         (fun seed ->
           let r = Fuzz.Rng.split (Fuzz.Rng.create seed) 0 in
           let oob = Fuzz.Rng.chance r ~pct:40 in
           let case = Gen.generate r ~oob in
           match
             Oracle.check_matrix ~expect:case.Gen.expect
               ~sub_object:case.Gen.sub_object case.Gen.prog
           with
           | Oracle.Ok_ | Oracle.Skip _ -> true
           | Oracle.Bug f ->
               QCheck.Test.fail_reportf "%s: %s" f.Oracle.cls f.Oracle.detail));
    tc "matrix oracle: injected scheme bug is flagged" (fun () ->
        (* silently drop CGuard's read checks behind the test hook: the
           oracle must notice the missed detection on a read attack *)
        let prog = rd_program () in
        (match
           Oracle.check_matrix ~expect:Gen.Trap_read ~sub_object:false prog
         with
        | Oracle.Ok_ -> ()
        | Oracle.Bug f ->
            Alcotest.fail ("clean run flagged: " ^ f.Oracle.cls)
        | Oracle.Skip why -> Alcotest.fail ("skipped: " ^ why));
        Fun.protect
          ~finally:(fun () -> Schemes.Cguard.test_skip_read_checks := false)
          (fun () ->
            Schemes.Cguard.test_skip_read_checks := true;
            match
              Oracle.check_matrix ~expect:Gen.Trap_read ~sub_object:false
                prog
            with
            | Oracle.Bug f ->
                Alcotest.(check string)
                  "class" "missed-detection:cguard" f.Oracle.cls
            | Oracle.Ok_ ->
                Alcotest.fail "oracle accepted a scheme that skips checks"
            | Oracle.Skip why -> Alcotest.fail ("skipped: " ^ why)));
    tc "matrix oracle: sub-object trap by a gap scheme is a model violation"
      (fun () ->
        (* the other direction of the gap model: a whole-object scheme
           that traps on a sub-object attack contradicts its documented
           gap, and the oracle says so *)
        let sub_src = List.assoc "sub-object-overflow" Schemes.gap_attacks in
        let prog = Cminus.Parser.parse_string sub_src in
        match
          Oracle.check_matrix ~expect:Gen.Trap_write ~sub_object:true prog
        with
        | Oracle.Ok_ -> ()
        | Oracle.Bug f ->
            Alcotest.fail (f.Oracle.cls ^ ": " ^ f.Oracle.detail)
        | Oracle.Skip why -> Alcotest.fail ("skipped: " ^ why));
  ]

let suite = registry_tests @ gap_matrix_tests @ golden_tests @ oracle_tests
