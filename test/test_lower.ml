(* Lowering and inliner unit tests: IR structure properties and semantic
   preservation. *)

module Ir = Sbir.Ir

let compile_raw src = Sbir.Lower.compile src

let tc name f = Alcotest.test_case name `Quick f

let find_func m name = Option.get (Ir.find_func m name)

let insts_of (f : Ir.func) =
  Array.to_list f.Ir.fblocks |> List.concat_map (fun b -> b.Ir.insts)

let count_insts p f = List.length (List.filter p (insts_of f))

let suite =
  [
    tc "modules validate" (fun () ->
        Ir.validate
          (compile_raw
             "int g; int f(int x) { return x + g; } int main(void) { return f(1); }"));
    tc "register promotion: scalar locals produce no loads/stores" (fun () ->
        let m =
          compile_raw "int f(void) { int a = 1; int b = 2; int c; c = a + b; return c; }"
        in
        let f = find_func m "f" in
        Alcotest.(check int) "no memory ops" 0
          (count_insts
             (function Ir.Load _ | Ir.Store _ -> true | _ -> false)
             f);
        Alcotest.(check int) "no slots" 0 (Array.length f.Ir.fslots));
    tc "addressed locals get slots" (fun () ->
        let m = compile_raw "int f(void) { int a; int *p = &a; return *p; }" in
        let f = find_func m "f" in
        Alcotest.(check int) "one slot" 1 (Array.length f.Ir.fslots));
    tc "slot offsets follow declaration order" (fun () ->
        let m =
          compile_raw
            "int f(void) { char buf[16]; long tgt; long *p = &tgt; buf[0] = 1; *p = 2; return (int)tgt; }"
        in
        let f = find_func m "f" in
        let buf = f.Ir.fslots.(0) and tgt = f.Ir.fslots.(1) in
        Alcotest.(check string) "buf first" "buf"
          (String.sub buf.Ir.sl_name 0 3);
        Alcotest.(check bool) "tgt above buf" true
          (tgt.Ir.sl_offset >= buf.Ir.sl_offset + buf.Ir.sl_size));
    tc "field address carries shrink info" (fun () ->
        let m =
          compile_raw
            "struct s { char a[8]; long b; }; int f(struct s *p) { return (int)p->b; }"
        in
        let f = find_func m "f" in
        Alcotest.(check int) "one shrink gep" 1
          (count_insts
             (function Ir.Gep (_, _, _, Some 8) -> true | _ -> false)
             f));
    tc "memcpy-noptr hint on pointer-free operands" (fun () ->
        let m =
          compile_raw
            "int f(char *a, char *b) { memcpy(a, b, 4); return 0; }"
        in
        let f = find_func m "f" in
        Alcotest.(check int) "hinted" 1
          (count_insts
             (function
               | Ir.Call { hints; _ } -> List.mem "memcpy-noptr" hints
               | _ -> false)
             f));
    tc "no memcpy-noptr hint when pointee holds pointers" (fun () ->
        let m =
          compile_raw
            "int f(char **a, char **b) { memcpy((void*)a, (void*)b, 8); return 0; }"
        in
        let f = find_func m "f" in
        Alcotest.(check int) "unhinted" 0
          (count_insts
             (function
               | Ir.Call { hints; _ } -> List.mem "memcpy-noptr" hints
               | _ -> false)
             f));
    tc "free hint when pointee has pointers" (fun () ->
        let m =
          compile_raw
            "struct n { struct n *next; }; int f(struct n *p) { free(p); return 0; }"
        in
        let f = find_func m "f" in
        Alcotest.(check int) "free-withmeta" 1
          (count_insts
             (function
               | Ir.Call { hints; _ } -> List.mem "free-withmeta" hints
               | _ -> false)
             f));
    tc "variadic calls append va_ptr and va_count" (fun () ->
        let m = compile_raw "int main(void) { printf(\"%d\", 1); return 0; }" in
        let f = find_func m "main" in
        let nargs =
          List.find_map
            (function
              | Ir.Call { callee = Ir.Func "printf"; args; _ } ->
                  Some (List.length args)
              | _ -> None)
            (insts_of f)
        in
        match nargs with
        | Some n -> Alcotest.(check int) "fmt + va_ptr + count" 3 n
        | None -> Alcotest.fail "no printf call found");
    tc "string literals are interned" (fun () ->
        let m =
          compile_raw
            "int main(void) { puts(\"same\"); puts(\"same\"); puts(\"other\"); return 0; }"
        in
        let strs =
          List.filter
            (fun (g : Ir.global) -> String.length g.Ir.gname > 4
                                    && String.sub g.Ir.gname 0 4 = ".str")
            m.Ir.mglobals
        in
        Alcotest.(check int) "two distinct literals" 2 (List.length strs));
    tc "switch lowers to TSwitch" (fun () ->
        let m =
          compile_raw
            "int f(int x) { switch (x) { case 1: return 1; default: return 0; } }"
        in
        let f = find_func m "f" in
        let has_switch =
          Array.exists
            (fun b -> match b.Ir.term with Ir.TSwitch _ -> true | _ -> false)
            f.Ir.fblocks
        in
        Alcotest.(check bool) "tswitch" true has_switch);
    (* --- optimizer --- *)
    tc "optimizer folds constants and branches" (fun () ->
        let m =
          Sbir.Opt.run
            (compile_raw "int f(void) { int x = 2 * 3 + 4; if (1) return x; return 9; }")
        in
        let f = find_func m "f" in
        (* the constant condition folds: no conditional branches remain *)
        let brs =
          Array.to_list f.Ir.fblocks
          |> List.filter (fun b ->
                 match b.Ir.term with Ir.TBr _ -> true | _ -> false)
        in
        Alcotest.(check int) "no branches" 0 (List.length brs));
    tc "optimizer DCE removes unused pure temps" (fun () ->
        let raw = compile_raw "int f(int a) { int unused = a * 100; return a; }" in
        let m = Sbir.Opt.run raw in
        let f = find_func m "f" in
        Alcotest.(check int) "no multiplies" 0
          (count_insts
             (function Ir.Bin (_, Ir.Mul, _, _, _) -> true | _ -> false)
             f));
    tc "optimizer keeps loads even when dead" (fun () ->
        let m =
          Sbir.Opt.run
            (compile_raw
               "int g[4]; int f(void) { int dead = g[0]; return 7; }")
        in
        let f = find_func m "f" in
        Alcotest.(check int) "load survives" 1
          (count_insts (function Ir.Load _ -> true | _ -> false) f));
    tc "optimizer never devirtualizes calls" (fun () ->
        let m =
          Sbir.Opt.run
            (compile_raw
               "int id(int x) { return x; }                 int f(void) { int (*fp)(int) = id; return fp(3); }")
        in
        let f = find_func m "f" in
        Alcotest.(check int) "still an indirect call" 0
          (count_insts
             (function
               | Ir.Call { callee = Ir.Func "id"; _ } -> true
               | _ -> false)
             f));
    tc "optimized module runs identically" (fun () ->
        let src =
          {|int work(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * 2 + 1; return s; }
            int main(void) { printf("%d\n", work(25)); return work(10) % 100; }|}
        in
        let raw = Sbir.Lower.compile src in
        let opt = Sbir.Opt.run raw in
        Ir.validate opt;
        let a = Interp.Vm.run raw in
        let b = Interp.Vm.run opt in
        Alcotest.(check string) "stdout" a.stdout_text b.stdout_text;
        (match (a.outcome, b.outcome) with
        | Interp.State.Exit x, Interp.State.Exit y ->
            Alcotest.(check int) "exit" x y
        | _ -> Alcotest.fail "expected clean exits");
        Alcotest.(check bool) "fewer instructions executed" true
          (b.stats.Interp.State.insts <= a.stats.Interp.State.insts));
    (* --- inliner --- *)
    tc "inliner inlines a small leaf" (fun () ->
        let src =
          "int add(int a, int b) { return a + b; } \
           int main(void) { return add(1, 2) + add(3, 4); }"
        in
        let m = Sbir.Inline.run (compile_raw src) in
        let main = find_func m "main" in
        Alcotest.(check int) "no calls to add remain" 0
          (count_insts
             (function
               | Ir.Call { callee = Ir.Func "add"; _ } -> true
               | _ -> false)
             main));
    tc "inliner skips address-taken functions" (fun () ->
        let src =
          "int id(int x) { return x; } \
           int main(void) { int (*f)(int) = id; return id(1) + f(2); }"
        in
        let m = Sbir.Inline.run (compile_raw src) in
        Alcotest.(check bool) "id kept" true (Ir.find_func m "id" <> None);
        let main = find_func m "main" in
        Alcotest.(check bool) "direct call not inlined" true
          (count_insts
             (function
               | Ir.Call { callee = Ir.Func "id"; _ } -> true
               | _ -> false)
             main
          > 0));
    tc "inliner skips recursive functions" (fun () ->
        let src =
          "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); } \
           int main(void) { return fact(5); }"
        in
        let m = Sbir.Inline.run (compile_raw src) in
        let main = find_func m "main" in
        Alcotest.(check bool) "call remains" true
          (count_insts
             (function
               | Ir.Call { callee = Ir.Func "fact"; _ } -> true
               | _ -> false)
             main
          > 0));
    tc "inlined module validates and runs identically" (fun () ->
        let src =
          "int sq(int x) { return x * x; } \
           int pick(int a, int b) { return a > b ? a : b; } \
           int main(void) { int i; int s = 0; for (i = 0; i < 10; i++) s += pick(sq(i), i + 20); \
           printf(\"%d\\n\", s); return s % 251; }"
        in
        let raw = compile_raw src in
        let inl = Sbir.Inline.run raw in
        Ir.validate inl;
        let a = Interp.Vm.run raw in
        let b = Interp.Vm.run inl in
        Alcotest.(check string) "stdout" a.stdout_text b.stdout_text;
        match (a.outcome, b.outcome) with
        | Interp.State.Exit x, Interp.State.Exit y ->
            Alcotest.(check int) "exit" x y
        | _ -> Alcotest.fail "expected clean exits");
    tc "inlining composes with the SoftBound transform" (fun () ->
        let src =
          "int get(int *a, int i) { return a[i]; } \
           int main(void) { int v[4]; v[3] = 7; return get(v, 5); }"
        in
        let m = Sbir.Inline.run (compile_raw src) in
        let r = Softbound.run_protected m in
        Alcotest.(check bool) "still detected after inlining" true
          (Softbound.detected r));
  ]
