(* Machine substrate tests: sparse memory, heap allocator, cache,
   layout, plus qcheck model-based properties. *)

module Mem = Machine.Memory
module Heap = Machine.Heap
module Cache = Machine.Cache
module L = Machine.Layout

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    tc "byte roundtrip" (fun () ->
        let m = Mem.create () in
        Mem.write_byte m 0x1000_0000 0xab;
        Alcotest.(check int) "byte" 0xab (Mem.read_byte m 0x1000_0000));
    tc "untouched memory reads zero" (fun () ->
        let m = Mem.create () in
        Alcotest.(check int) "zero" 0 (Mem.read_int m 0x1234_5678 8));
    tc "little-endian encoding" (fun () ->
        let m = Mem.create () in
        Mem.write_int m 0x1000_0000 4 0x11223344;
        Alcotest.(check int) "lsb first" 0x44 (Mem.read_byte m 0x1000_0000);
        Alcotest.(check int) "msb last" 0x11 (Mem.read_byte m 0x1000_0003));
    tc "sign extension" (fun () ->
        Alcotest.(check int) "negative byte" (-1) (Mem.sign_extend 0xff 1);
        Alcotest.(check int) "positive byte" 127 (Mem.sign_extend 0x7f 1);
        Alcotest.(check int) "negative short" (-2) (Mem.sign_extend 0xfffe 2);
        Alcotest.(check int) "negative int" (-1)
          (Mem.sign_extend 0xffffffff 4));
    tc "f64 roundtrip" (fun () ->
        let m = Mem.create () in
        Mem.write_f64 m 0x1000_0000 3.14159;
        Alcotest.(check (float 1e-12)) "f64" 3.14159
          (Mem.read_f64 m 0x1000_0000));
    tc "f32 roundtrip loses precision consistently" (fun () ->
        let m = Mem.create () in
        Mem.write_f32 m 0x1000_0000 1.5;
        Alcotest.(check (float 1e-6)) "f32" 1.5 (Mem.read_f32 m 0x1000_0000));
    tc "cstring roundtrip" (fun () ->
        let m = Mem.create () in
        Mem.write_cstring m 0x1000_0000 "hello";
        Alcotest.(check string) "str" "hello"
          (Mem.read_cstring m 0x1000_0000));
    tc "blit handles overlap" (fun () ->
        let m = Mem.create () in
        Mem.write_cstring m 0x1000_0000 "abcdef";
        Mem.blit m ~src:0x1000_0000 ~dst:0x1000_0002 ~len:4;
        Alcotest.(check string) "overlapped" "ababcd"
          (Mem.read_cstring m 0x1000_0000));
    tc "cross-page access" (fun () ->
        let m = Mem.create () in
        let a = 0x1000_0000 + Mem.page_size - 4 in
        Mem.write_i64 m a 0x1122334455667788L;
        Alcotest.(check int64) "crosses page" 0x1122334455667788L
          (Mem.read_i64 m a));
    tc "validity: outside all segments faults" (fun () ->
        let m = Mem.create () in
        match Mem.check_program_access m 0x10 4 with
        | exception Mem.Segfault _ -> ()
        | () -> Alcotest.fail "expected segfault");
    tc "validity: globals after allocation" (fun () ->
        let m = Mem.create () in
        let a = Mem.alloc_global m ~size:64 ~align:8 in
        Mem.check_program_access m a 64);
    tc "stack watermark is monotonic" (fun () ->
        let m = Mem.create () in
        Mem.set_stack_low m (L.stack_top - 4096);
        Mem.set_stack_low m (L.stack_top - 1024);
        (* the deeper extent remains valid *)
        Mem.check_program_access m (L.stack_top - 4000) 8);
    (* --- heap --- *)
    tc "malloc returns 16-aligned, gapped blocks" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 10) in
        let b = Option.get (Heap.malloc h 10) in
        Alcotest.(check int) "align" 0 (a mod 16);
        Alcotest.(check int) "gap" 32 (b - a));
    tc "free then malloc reuses the block" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 32) in
        Heap.free h a;
        let b = Option.get (Heap.malloc h 16) in
        Alcotest.(check int) "reused" a b);
    tc "double free raises" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 8) in
        Heap.free h a;
        match Heap.free h a with
        | exception Heap.Bad_free _ -> ()
        | () -> Alcotest.fail "expected Bad_free");
    tc "free of wild pointer raises" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        match Heap.free h 0x4000_1234 with
        | exception Heap.Bad_free _ -> ()
        | () -> Alcotest.fail "expected Bad_free");
    tc "free of null is a no-op" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        Heap.free h 0);
    tc "realloc preserves contents" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 8) in
        Mem.write_cstring m a "hiya";
        let b = Option.get (Heap.realloc h a 64) in
        Alcotest.(check string) "kept" "hiya" (Mem.read_cstring m b));
    tc "live byte accounting" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 100) in
        let _ = Option.get (Heap.malloc h 50) in
        Alcotest.(check int) "live" 150 (Heap.live_bytes h);
        Heap.free h a;
        Alcotest.(check int) "after free" 50 (Heap.live_bytes h);
        Alcotest.(check int) "peak" 150 (Heap.peak_bytes h));
    tc "free returns the full capacity, not the last request" (fun () ->
        (* regression: the free list used to record the *requested* size
           of the dying block, so reusing a 100-byte region for a
           10-byte request shrank it permanently *)
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 100) in
        Heap.free h a;
        let b = Option.get (Heap.malloc h 10) in
        Alcotest.(check int) "head of the region reused" a b;
        Heap.free h b;
        (* every grabbed byte is back on the free list (as capacity or
           per-entry guard gap) — nothing shrank *)
        let free_cap =
          List.fold_left (fun s (_, c) -> s + c) 0 (Heap.free_regions h)
        in
        let entries = List.length (Heap.free_regions h) in
        Alcotest.(check int) "conserved"
          (Heap.grabbed_bytes h)
          (free_cap + (Heap.gap * entries));
        (* so a later medium request still fits in the original region *)
        let c = Option.get (Heap.malloc h 60) in
        Alcotest.(check bool) "reused the original region" true
          (c >= a && c < a + 112 + Heap.gap));
    tc "oversized free block is split, tail stays allocatable" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 256) in
        let grabbed = Heap.grabbed_bytes h in
        Heap.free h a;
        let b = Option.get (Heap.malloc h 16) in
        let c = Option.get (Heap.malloc h 100) in
        Alcotest.(check int) "head reused" a b;
        Alcotest.(check int) "tail carved right after head + gap"
          (a + 16 + Heap.gap) c;
        Alcotest.(check int) "no new segment bytes grabbed" grabbed
          (Heap.grabbed_bytes h);
        (* freeing the splinters returns every byte to the free list *)
        Heap.free h b;
        Heap.free h c;
        let free_cap =
          List.fold_left (fun s (_, cp) -> s + cp) 0 (Heap.free_regions h)
        in
        let entries = List.length (Heap.free_regions h) in
        Alcotest.(check int) "conserved" grabbed
          (free_cap + (Heap.gap * entries)));
    tc "realloc within capacity stays in place" (fun () ->
        let m = Mem.create () in
        let h = Heap.create m in
        let a = Option.get (Heap.malloc h 64) in
        let b = Option.get (Heap.realloc h a 32) in
        Alcotest.(check int) "shrink in place" a b;
        let c = Option.get (Heap.realloc h b 64) in
        Alcotest.(check int) "regrow within capacity in place" a c;
        Alcotest.(check int) "live bytes track the request" 64
          (Heap.live_bytes h));
    (* --- cache --- *)
    tc "cache: second access to a line hits" (fun () ->
        let c = Cache.create () in
        let miss = Cache.access c 0x1000 in
        let hit = Cache.access c 0x1020 in
        Alcotest.(check bool) "first misses" true (miss > 0);
        Alcotest.(check int) "same line hits" 0 hit);
    tc "cache: capacity eviction" (fun () ->
        let c = Cache.create () in
        (* touch far more lines than fit, then re-touch the first *)
        for i = 0 to 4096 do
          ignore (Cache.access c (i * 64))
        done;
        let penalty = Cache.access c 0 in
        Alcotest.(check bool) "evicted" true (penalty > 0));
    tc "cache: non-power-of-two geometries are rejected" (fun () ->
        (* regression: a float log2 rounded to the nearest bit count used
           to silently mis-map lines for these geometries *)
        let expect_invalid cfg =
          match Cache.create ~cfg () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        let d = Cache.default_config in
        expect_invalid { d with Cache.line_bytes = 48 };
        expect_invalid { d with Cache.size_bytes = 3000 };
        expect_invalid { d with Cache.assoc = 3 };
        expect_invalid
          { d with Cache.size_bytes = 256; assoc = 8; line_bytes = 64 });
    tc "cache: set indexing distinguishes lines, wraps at n_sets" (fun () ->
        (* direct-mapped, 16 sets of 64-byte lines: addresses one line
           apart go to different sets; 16 lines apart collide *)
        let cfg =
          {
            Cache.size_bytes = 1024;
            assoc = 1;
            line_bytes = 64;
            miss_penalty = 30;
          }
        in
        let c = Cache.create ~cfg () in
        ignore (Cache.access c 0);
        ignore (Cache.access c 64);
        Alcotest.(check int) "different sets: both resident" 0
          (Cache.access c 0 + Cache.access c 64);
        ignore (Cache.access c (16 * 64));
        Alcotest.(check bool) "same set 16 lines later: evicted" true
          (Cache.access c 0 > 0));
    tc "layout: function addresses recognizable" (fun () ->
        Alcotest.(check bool) "func addr" true
          (L.is_function_addr (L.func_addr 7));
        Alcotest.(check bool) "misaligned" false
          (L.is_function_addr (L.func_addr 7 + 1));
        Alcotest.(check int) "roundtrip" 7 (L.func_index (L.func_addr 7)));
    tc "layout: shadow mapping is injective on distinct words" (fun () ->
        let a = L.shadow_addr 0x1000_0000 in
        let b = L.shadow_addr 0x1000_0008 in
        Alcotest.(check int) "16 bytes apart" 16 (b - a));
    (* --- qcheck model tests --- *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "word fast paths match the byte-wise reference (unaligned, \
            page-straddling, untouched pages)"
         ~count:300
         (* each op: (write?, address selector, width selector, value).
            The selector folds to an offset that lands near the 4 KiB
            page boundary every fourth op, so 2/4/8-byte accesses
            straddle pages regularly — the case where the word path must
            fall back to the byte loop. *)
         QCheck.(
           list_of_size (Gen.int_range 1 60)
             (quad bool (int_bound 10_000) (int_bound 3)
                (int_bound max_int)))
         (fun ops ->
           let page = 4096 in
           let base = 0x1000_0000 in
           let off_of sel =
             if sel mod 4 = 0 then page - 1 - (sel mod 8) (* straddler *)
             else sel mod (2 * page)
           in
           (* m_fast sees read_int/write_int (word path when the access
              fits in one page); m_ref sees only read_byte/write_byte,
              the reference semantics the fast path must reproduce *)
           let m_fast = Mem.create () in
           let m_ref = Mem.create () in
           let write_ref a len v =
             let v = ref v in
             for i = 0 to len - 1 do
               Mem.write_byte m_ref (a + i) (!v land 0xff);
               v := !v asr 8
             done
           in
           let read_ref a len =
             let v = ref 0 in
             for i = len - 1 downto 0 do
               v := (!v lsl 8) lor Mem.read_byte m_ref (a + i)
             done;
             !v
           in
           List.for_all
             (fun (is_write, sel, wi, v) ->
               let a = base + off_of sel in
               let len = [| 1; 2; 4; 8 |].(wi) in
               if is_write then begin
                 Mem.write_int m_fast a len v;
                 write_ref a len v;
                 true
               end
               else Mem.read_int m_fast a len = read_ref a len)
             ops
           (* untouched pages: same answers AND same materialization —
              reads must never allocate a page on either side *)
           && Mem.read_int m_fast (base + (64 * page)) 8 = 0
           && Mem.read_int m_ref (base + (64 * page)) 8 = 0
           && Mem.resident_bytes m_fast = Mem.resident_bytes m_ref));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"i64 fast path matches the byte-wise reference" ~count:200
         QCheck.(pair (int_bound 10_000) (pair int int))
         (fun (sel, (lo, hi)) ->
           let page = 4096 in
           let a =
             0x1000_0000
             + if sel mod 3 = 0 then page - 1 - (sel mod 8) else sel
           in
           let v =
             Int64.logxor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 17)
           in
           let m_fast = Mem.create () in
           let m_ref = Mem.create () in
           Mem.write_i64 m_fast a v;
           (* byte-wise reference for the 64-bit path *)
           let r = ref v in
           for i = 0 to 7 do
             Mem.write_byte m_ref (a + i) (Int64.to_int (Int64.logand !r 0xffL));
             r := Int64.shift_right_logical !r 8
           done;
           let back = ref 0L in
           for i = 7 downto 0 do
             back :=
               Int64.logor
                 (Int64.shift_left !back 8)
                 (Int64.of_int (Mem.read_byte m_ref (a + i)))
           done;
           Mem.read_i64 m_fast a = !back
           && Mem.read_i64 m_fast a = v
           && Mem.resident_bytes m_fast = Mem.resident_bytes m_ref));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "flat shadow words: fast paths match byte-loop fallbacks on \
            value and residency (in-region, region-edge, unaligned)"
         ~count:300
         (* each op: (write?, 64-bit lane?, address selector, width
            selector, value).  The selector rotates through three
            address families: page-straddling program addresses, shadow
            addresses inside a flat region (unaligned), and shadow
            addresses straddling the globals/heap region edge — where
            the word path must hand off to the byte loop. *)
         QCheck.(
           list_of_size (Gen.int_range 1 60)
             (pair (triple bool bool (int_bound 100_000))
                (pair (int_bound 3) int)))
         (fun ops ->
           let page = Mem.page_size in
           let addr_of sel =
             match sel mod 3 with
             | 0 -> 0x1000_0000 + (page - 1 - (sel mod 8)) + (sel mod 7 * page)
             | 1 ->
                 (* inside the globals shadow region, deliberately
                    unaligned relative to the 16-byte metadata grain *)
                 L.shadow_addr (L.globals_base + (sel mod 4096)) + (sel mod 13)
             | _ ->
                 (* straddle [sr_limit] of the stack shadow region (its
                    backing store is anchored there, so the edge is
                    cheap to touch); addresses past the limit fall off
                    the flat path onto paged memory mid-access *)
                 L.shadow_base + (2 * L.stack_top) - 4 + (sel mod 8)
           in
           (* m_fast is driven through the word accessors (flat-region
              fast path for shadow addresses); m_slow through the
              exported byte-loop references.  Every read must agree on
              both memories, and materialization accounting must match
              at the end. *)
           let m_fast = Mem.create () in
           let m_slow = Mem.create () in
           List.for_all
             (fun ((is_write, is64, sel), (wi, v)) ->
               let a = addr_of sel in
               if is64 then
                 let v64 = Int64.of_int v in
                 if is_write then begin
                   Mem.write_i64 m_fast a v64;
                   Mem.write_i64_slow m_slow a v64;
                   true
                 end
                 else
                   let f = Mem.read_i64 m_fast a in
                   f = Mem.read_i64_slow m_slow a
                   && f = Mem.read_i64_slow m_fast a
               else
                 let len = [| 1; 2; 4; 8 |].(wi) in
                 if is_write then begin
                   Mem.write_int m_fast a len v;
                   Mem.write_int_slow m_slow a len v;
                   true
                 end
                 else
                   let f = Mem.read_int m_fast a len in
                   f = Mem.read_int_slow m_slow a len
                   && f = Mem.read_int_slow m_fast a len)
             ops
           && Mem.resident_bytes m_fast = Mem.resident_bytes m_slow));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"memory matches a Bytes model" ~count:100
         QCheck.(
           list (pair (int_bound 2000) (int_bound 255)))
         (fun writes ->
           let m = Mem.create () in
           let model = Bytes.make 2048 '\000' in
           let base = 0x1000_0000 in
           List.iter
             (fun (off, v) ->
               Mem.write_byte m (base + off) v;
               Bytes.set model off (Char.chr v))
             writes;
           List.for_all
             (fun (off, _) ->
               Mem.read_byte m (base + off) = Char.code (Bytes.get model off))
             writes));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int roundtrip at any width" ~count:300
         QCheck.(pair (int_bound 3) (int_bound 0x3fff_ffff))
         (fun (wi, v) ->
           let w = [| 1; 2; 4; 8 |].(wi) in
           let m = Mem.create () in
           Mem.write_int m 0x1000_0000 w v;
           let mask = if w >= 8 then v else v land ((1 lsl (w * 8)) - 1) in
           Mem.read_int m 0x1000_0000 w = mask));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"norm_int is idempotent" ~count:300
         QCheck.(pair (int_bound 6) int)
         (fun (ti, v) ->
           let t =
             [| Sbir.Ir.I8; Sbir.Ir.U8; Sbir.Ir.I16; Sbir.Ir.U16;
                Sbir.Ir.I32; Sbir.Ir.U32; Sbir.Ir.I64 |].(ti)
           in
           let n = Sbir.Ir.norm_int t v in
           Sbir.Ir.norm_int t n = n));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap: disjoint live blocks" ~count:100
         QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 200))
         (fun sizes ->
           let m = Mem.create () in
           let h = Heap.create m in
           let blocks =
             List.filter_map (fun s ->
                 Option.map (fun a -> (a, s)) (Heap.malloc h s))
               sizes
           in
           (* no two live blocks overlap *)
           let rec disjoint = function
             | [] -> true
             | (a, s) :: rest ->
                 List.for_all
                   (fun (a', s') -> a + s <= a' || a' + s' <= a)
                   rest
                 && disjoint rest
           in
           disjoint blocks));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "heap: capacity conservation over random malloc/free/realloc \
            traces"
         ~count:200
         (* each step: (op selector, size, victim selector) *)
         QCheck.(
           list_of_size (Gen.int_range 1 60)
             (triple (int_bound 5) (int_range 0 300) (int_bound 1000)))
         (fun trace ->
           let m = Mem.create () in
           let h = Heap.create m in
           let live = ref [] in
           let pick sel =
             match !live with
             | [] -> None
             | l -> Some (List.nth l (sel mod List.length l))
           in
           let invariant () =
             let lr = Heap.live_regions h and fr = Heap.free_regions h in
             let sum f l = List.fold_left (fun a x -> a + f x) 0 l in
             let accounted =
               sum (fun (_, _, cap) -> cap) lr
               + sum snd fr
               + (Heap.gap * (List.length lr + List.length fr))
             in
             (* exact conservation: every grabbed byte is a live
                capacity, a free capacity, or one block's guard gap *)
             Heap.grabbed_bytes h = accounted
             (* and no two regions (capacity + gap extents) overlap *)
             && begin
                  let extents =
                    List.map (fun (a, _, cap) -> (a, cap)) lr @ fr
                  in
                  let rec disjoint = function
                    | [] -> true
                    | (a, c) :: rest ->
                        List.for_all
                          (fun (a', c') ->
                            a + c + Heap.gap <= a'
                            || a' + c' + Heap.gap <= a)
                          rest
                        && disjoint rest
                  in
                  disjoint extents
                end
           in
           List.for_all
             (fun (op, size, sel) ->
               (match (op, pick sel) with
               | (0 | 1 | 2), _ ->
                   Option.iter
                     (fun a -> live := a :: !live)
                     (Heap.malloc h size)
               | 3, Some v ->
                   Heap.free h v;
                   live := List.filter (fun a -> a <> v) !live
               | _, Some v -> (
                   match Heap.realloc h v size with
                   | Some a' when a' <> v ->
                       live := a' :: List.filter (fun a -> a <> v) !live
                   | _ -> ())
               | _, None -> ());
               invariant ())
             trace));
  ]
