(* Observability-layer tests.

   Golden/expect: the metrics JSON and the trap-time trace dump for two
   fixed attack programs are pinned byte-for-byte under test/golden/.
   If an intentional cost-model or collector change shifts them,
   regenerate with the commands noted next to each file and review the
   diff — that review is the point of the golden test.

   Invariants: the collector is purely observational (identical
   simulated results with it off), attribution covers at least 95% of
   executed checks/metadata operations on every workload, and the
   harness performs exactly one transform per (program, elimination)
   pair however many configurations run. *)

module S = Interp.State

let tc name f = Alcotest.test_case name `Quick f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden name actual =
  let expected = read_file (Filename.concat "golden" name) in
  Alcotest.(check string) name expected actual

let compile_golden name =
  Softbound.compile (read_file (Filename.concat "golden" name))

(* ---- golden: metrics JSON ---- *)
(* regenerate: dune exec bin/softbound_cli.exe -- profile \
     test/golden/<name>.c --json > test/golden/<name>.profile.json *)

let profile_json name =
  let p = Harness.Profile.profile ~label:name (compile_golden name) in
  Harness.Profile.to_json p

(* ---- golden: trap-time trace dump ---- *)
(* regenerate: dune exec test/gen_golden.exe (see that file) *)

let trace_dump name =
  let cfg = { S.default_config with S.trace_depth = 16 } in
  let p =
    Harness.Profile.profile ~label:name ~cfg ~with_baseline:false
      (compile_golden name)
  in
  Obs.dump_trace p.Harness.Profile.result.Interp.Vm.obs

(* ---- invariance / attribution / cache ---- *)

let full_hash =
  { Softbound.Config.default with
    Softbound.Config.facility = Softbound.Config.Hash_table }

(* every purely-observational invariant must hold under both execution
   engines — the collector hooks sit on different code paths in the
   threaded-code and decoding engines *)
let engines = [ S.Eng_decode; S.Eng_closure ]

let same_simulation ?(engine = S.Eng_closure) src opts =
  let m = Softbound.compile src in
  let cfg_on = { S.default_config with S.engine } in
  let cfg_off = { cfg_on with S.obs_enabled = false } in
  let a = Softbound.run_protected ~opts ~cfg:cfg_on m in
  let b = Softbound.run_protected ~opts ~cfg:cfg_off m in
  Alcotest.(check string) "outcome"
    (S.string_of_outcome a.Interp.Vm.outcome)
    (S.string_of_outcome b.Interp.Vm.outcome);
  Alcotest.(check string) "stdout" a.Interp.Vm.stdout_text
    b.Interp.Vm.stdout_text;
  Alcotest.(check int) "cycles" a.Interp.Vm.stats.S.cycles
    b.Interp.Vm.stats.S.cycles;
  Alcotest.(check int) "insts" a.Interp.Vm.stats.S.insts
    b.Interp.Vm.stats.S.insts;
  Alcotest.(check int) "checks" a.Interp.Vm.stats.S.checks
    b.Interp.Vm.stats.S.checks;
  Alcotest.(check int) "cache hits" a.Interp.Vm.cache_hits
    b.Interp.Vm.cache_hits;
  Alcotest.(check int) "cache misses" a.Interp.Vm.cache_misses
    b.Interp.Vm.cache_misses

let loopy =
  "int main(void) { int a[64]; int *p = (int*)malloc(4); int i; \
   for (i = 0; i < 100; i++) { a[i % 64] = i; a[i % 64] += 3; \
   *p = *p + a[i % 64]; } printf(\"%d\\n\", *p); return 0; }"

let suite =
  [
    tc "golden: oob_write metrics JSON" (fun () ->
        golden "oob_write.profile.json" (profile_json "oob_write.c"));
    tc "golden: oob_read metrics JSON" (fun () ->
        golden "oob_read.profile.json" (profile_json "oob_read.c"));
    tc "golden: oob_write trap trace" (fun () ->
        golden "oob_write.trace.txt" (trace_dump "oob_write.c"));
    tc "golden: oob_read trap trace" (fun () ->
        golden "oob_read.trace.txt" (trace_dump "oob_read.c"));
    tc "metrics JSON is run-to-run deterministic" (fun () ->
        Alcotest.(check string)
          "two same-seed profiles"
          (profile_json "oob_read.c")
          (profile_json "oob_read.c"));
    tc "obs off: simulated results identical (shadow, both engines)"
      (fun () ->
        List.iter
          (fun engine ->
            same_simulation ~engine loopy Softbound.Config.default)
          engines);
    tc "obs off: simulated results identical (hash, both engines)" (fun () ->
        List.iter (fun engine -> same_simulation ~engine loopy full_hash)
          engines);
    tc "attribution: >=95% on every workload, both engines" (fun () ->
        List.iter
          (fun engine ->
            let cfg = { S.default_config with S.engine } in
            List.iter
              (fun (w : Workloads.workload) ->
                let p =
                  Harness.Profile.profile ~label:w.Workloads.name ~cfg
                    ~argv:w.Workloads.quick_args ~with_baseline:false
                    (Harness.Runner.compile_workload w)
                in
                let f = Harness.Profile.attributed_fraction p in
                if f < 0.95 then
                  Alcotest.failf
                    "%s [%s]: only %.2f%% of operations attributed"
                    w.Workloads.name (S.engine_name engine) (100.0 *. f))
              Workloads.all)
          engines);
    tc "transform cache: one transform per (program, elim) pair" (fun () ->
        (* a fresh module so nothing is cached yet *)
        let m = Softbound.compile loopy in
        let before = Harness.Runner.transforms_performed () in
        let sweep () =
          List.iter
            (fun (_, opts) ->
              ignore (Harness.Runner.run (Harness.Runner.Softbound opts) m))
            Harness.Exp_breakdown.configs
        in
        sweep ();
        let mid = Harness.Runner.transforms_performed () in
        (* 8 configurations = {full,store} x {shadow,hash} x {elim,no} —
           the facility is runtime-only, so only 4 distinct transforms *)
        Alcotest.(check int) "transforms for 8 configs" 4 (mid - before);
        sweep ();
        Alcotest.(check int) "second sweep fully cached" 0
          (Harness.Runner.transforms_performed () - mid));
    tc "site census: elim only removes sites, never renumbers" (fun () ->
        let m = Softbound.compile loopy in
        let on_m, on_n = Softbound.instrument_with_sites m in
        let off_m, off_n =
          Softbound.instrument_with_sites
            ~opts:
              { Softbound.Config.default with
                Softbound.Config.eliminate_checks = false }
            m
        in
        Alcotest.(check int) "assigned counts agree" off_n on_n;
        let ids mm =
          List.map (fun (s : Obs.site_info) -> s.Obs.si_id)
            (Obs.sites_of_modul mm)
        in
        let on_ids = ids on_m and off_ids = ids off_m in
        Alcotest.(check int) "elim-off keeps every site" off_n
          (List.length off_ids);
        List.iter
          (fun i ->
            if not (List.mem i off_ids) then
              Alcotest.failf "surviving site %d unknown to elim-off" i)
          on_ids;
        if List.length on_ids >= List.length off_ids then
          Alcotest.fail "elim removed nothing on a redundancy-rich program");
  ]
