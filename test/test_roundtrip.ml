(* Pretty-printer / parser round-trip.

   The fuzz generator builds ASTs directly, so its output exercises the
   printer on shapes no hand-written source covers.  For every
   generated program the printed form must parse, and printing the
   parse result must reproduce the text exactly — i.e. [program_string]
   is a fixpoint of [parse_string ∘ program_string].  (AST equality
   would be too strong: locations differ, and the parser is entitled to
   normalize literals; textual idempotence is the contract the fuzz
   harness and the golden tests actually rely on.) *)

module Gen = Fuzz.Gen

let tc name f = Alcotest.test_case name `Quick f

let roundtrip_one ~seed ~index =
  let case = Fuzz.case_of ~seed ~index in
  let src = Cminus.Pretty.program_string case.Gen.prog in
  let reparsed =
    try Cminus.Parser.parse_string src
    with
    | Cminus.Parser.Parse_error (m, l) ->
        Alcotest.failf
          "case %d/%d: printed program does not parse (%d:%d %s):\n%s" seed
          index l.Cminus.Lexer.line l.Cminus.Lexer.col m src
    | Cminus.Lexer.Lex_error (m, l) ->
        Alcotest.failf
          "case %d/%d: printed program does not lex (%d:%d %s):\n%s" seed
          index l.Cminus.Lexer.line l.Cminus.Lexer.col m src
  in
  let src' = Cminus.Pretty.program_string reparsed in
  if src <> src' then
    Alcotest.failf
      "case %d/%d: print is not a parse fixpoint.\n--- first print:\n%s\n\
       --- after re-parse:\n%s" seed index src src'

let suite =
  [
    tc "parse ∘ print is identity on 200 generated programs" (fun () ->
        (* two independent campaign seeds, 100 cases each *)
        for index = 0 to 99 do
          roundtrip_one ~seed:20090611 ~index;
          roundtrip_one ~seed:42 ~index
        done);
    tc "round-trip preserves compiled behaviour (spot check)" (fun () ->
        (* beyond textual identity: the reparsed program must compile
           and run to the same outcome as the original *)
        for index = 0 to 19 do
          let case = Fuzz.case_of ~seed:7 ~index in
          let src = Cminus.Pretty.program_string case.Gen.prog in
          let a = Softbound.run_unprotected (Softbound.compile src) in
          let b =
            Softbound.run_unprotected
              (Softbound.compile
                 (Cminus.Pretty.program_string
                    (Cminus.Parser.parse_string src)))
          in
          Alcotest.(check string)
            (Printf.sprintf "case %d stdout" index)
            a.Interp.Vm.stdout_text b.Interp.Vm.stdout_text;
          Alcotest.(check string)
            (Printf.sprintf "case %d outcome" index)
            (Interp.State.string_of_outcome a.Interp.Vm.outcome)
            (Interp.State.string_of_outcome b.Interp.Vm.outcome)
        done);
  ]
