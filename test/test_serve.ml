(* The serve daemon: protocol robustness, worker-pool behavior, and
   cache sharing across requests.

   Everything drives {!Harness.Serve.serve} through its [read]/[write]
   interface — the same code path the binary uses, minus the fd
   plumbing — so a hung daemon fails the suite instead of hanging a
   shell. *)

module Serve = Harness.Serve
module Proto = Harness.Proto
module Json = Harness.Json
module Pool = Parutil.Pool

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

(* ---- driving the daemon over in-memory lines ---- *)

let serve_lines ?(jobs = 1) ?default_timeout_ms (lines : string list) :
    Serve.stats * Json.t list =
  let rem = ref lines in
  let out = ref [] in
  let read () =
    match !rem with
    | [] -> None
    | l :: t ->
        rem := t;
        Some l
  in
  let write s = out := Json.parse s :: !out in
  let st = Serve.serve ~jobs ?default_timeout_ms ~read ~write () in
  (st, List.rev !out)

let job fields = Json.to_string (Json.Obj fields)

let run_job ?(id = Json.Str "j") src =
  job [ ("id", id); ("type", Json.Str "run"); ("source", Json.Str src) ]

let ok_of row =
  match Json.bool_field row "ok" with Some b -> b | None -> false

let str_of row k =
  match Json.str_field row k with Some s -> s | None -> ""

let find_row rows id =
  List.find_opt (fun r -> Json.field r "id" = Some id) rows

(* every response row must carry the protocol's envelope *)
let check_envelope rows =
  List.iter
    (fun r ->
      checkb "row has id" true (Json.field r "id" <> None);
      checkb "row has ok" true (Json.field r "ok" <> None);
      if ok_of r then
        checkb "ok row has ms" true (Json.field r "ms" <> None)
      else checkb "error row has error" true (Json.field r "error" <> None))
    rows

(* ---- protocol robustness ---- *)

let test_ok_run () =
  let st, rows = serve_lines [ run_job "int main() { return 41; }" ] in
  checki "accepted" 1 st.Serve.accepted;
  checki "completed" 1 st.Serve.completed;
  match rows with
  | [ row ] ->
      checkb "ok" true (ok_of row);
      check Alcotest.string "outcome" "exit 41" (str_of row "outcome");
      checkb "id echoed" true (Json.field row "id" = Some (Json.Str "j"))
  | _ -> Alcotest.fail "expected exactly one row"

let test_malformed_json () =
  let st, rows =
    serve_lines [ "this is not json"; run_job "int main() { return 0; }" ]
  in
  checki "rejected" 1 st.Serve.rejected;
  checki "completed" 1 st.Serve.completed;
  checki "two rows out" 2 (List.length rows);
  check_envelope rows;
  let bad = List.find (fun r -> not (ok_of r)) rows in
  checkb "null id on unparseable line" true
    (Json.field bad "id" = Some Json.Null)

let test_unknown_type () =
  let st, rows =
    serve_lines [ job [ ("id", Json.int 7); ("type", Json.Str "bogus") ] ]
  in
  checki "rejected" 1 st.Serve.rejected;
  match rows with
  | [ row ] ->
      checkb "error row" true (not (ok_of row));
      checkb "id echoed on reject" true (Json.field row "id" = Some (Json.Num 7.))
  | _ -> Alcotest.fail "expected exactly one row"

let test_missing_id () =
  let _, rows = serve_lines [ job [ ("type", Json.Str "run") ] ] in
  match rows with
  | [ row ] ->
      checkb "error row" true (not (ok_of row));
      checkb "null id" true (Json.field row "id" = Some Json.Null)
  | _ -> Alcotest.fail "expected exactly one row"

let test_oversized_payload () =
  let big = String.make (Proto.max_line_bytes + 100) 'x' in
  let st, rows =
    serve_lines [ big; run_job "int main() { return 0; }" ]
  in
  checki "rejected" 1 st.Serve.rejected;
  checki "daemon survived to run the next job" 1 st.Serve.completed;
  let bad = List.find (fun r -> not (ok_of r)) rows in
  checkb "oversized message" true
    (String.length (str_of bad "error") > 0
    && String.sub (str_of bad "error") 0 9 = "oversized")

let test_frontend_reject () =
  (* a program the compiler rejects must come back as an error row, not
     kill the worker *)
  let st, rows =
    serve_lines
      [
        run_job ~id:(Json.Str "bad") "int main( { syntax error";
        run_job ~id:(Json.Str "good") "int main() { return 3; }";
      ]
  in
  checki "both accepted" 2 st.Serve.accepted;
  checki "one completed" 1 st.Serve.completed;
  checki "one errored" 1 st.Serve.errored;
  let bad = Option.get (find_row rows (Json.Str "bad")) in
  checkb "frontend error row" true (not (ok_of bad));
  let good = Option.get (find_row rows (Json.Str "good")) in
  check Alcotest.string "good job unharmed" "exit 3" (str_of good "outcome")

let test_trapping_job () =
  (* an out-of-bounds program is a *successful* check: ok row, trap
     outcome *)
  let _, rows =
    serve_lines [ run_job "int main() { int a[3]; return a[9]; }" ]
  in
  match rows with
  | [ row ] ->
      checkb "ok row" true (ok_of row);
      checkb "bounds trap reported" true
        (String.length (str_of row "outcome") > 0
        && str_of row "outcome" <> "exit 0");
      checkb "no exit code on trap" true
        (Json.field row "exit_code" = Some Json.Null)
  | _ -> Alcotest.fail "expected exactly one row"

let test_timeout_job () =
  let t0 = Unix.gettimeofday () in
  let st, rows =
    serve_lines
      [
        job
          [
            ("id", Json.Str "spin");
            ("type", Json.Str "run");
            ("source", Json.Str "int main() { while (1) {} return 0; }");
            ("timeout_ms", Json.int 150);
          ];
      ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  checki "errored" 1 st.Serve.errored;
  checkb "daemon returned promptly" true (elapsed < 30.0);
  match rows with
  | [ row ] ->
      checkb "timeout error row" true (not (ok_of row));
      checkb "timeout message" true
        (String.length (str_of row "error") >= 7
        && String.sub (str_of row "error") 0 7 = "timeout")
  | _ -> Alcotest.fail "expected exactly one row"

let test_default_timeout () =
  (* the daemon-wide default applies when the job carries none *)
  let st, _ =
    serve_lines ~default_timeout_ms:150
      [ run_job "int main() { while (1) {} return 0; }" ]
  in
  checki "errored via default timeout" 1 st.Serve.errored

let test_campaign_cap () =
  let _, rows =
    serve_lines
      [
        job
          [
            ("id", Json.int 1);
            ("type", Json.Str "fuzz");
            ("count", Json.int 1_000_000);
          ];
      ]
  in
  match rows with
  | [ row ] -> checkb "capped" true (not (ok_of row))
  | _ -> Alcotest.fail "expected exactly one row"

(* ---- parallel dispatch ---- *)

let mixed_batch n =
  List.init n (fun i ->
      match i mod 5 with
      | 0 -> run_job ~id:(Json.int i) "int main() { return 7; }"
      | 1 -> run_job ~id:(Json.int i) "int main() { int a[2]; return a[5]; }"
      | 2 ->
          job
            [
              ("id", Json.int i);
              ("type", Json.Str "fuzz");
              ("seed", Json.int i);
              ("count", Json.int 1);
            ]
      | 3 -> job [ ("id", Json.int i); ("type", Json.Str "nope") ]
      | _ -> run_job ~id:(Json.int i) "int main() { return 1 + 1; }")

(* response rows modulo delivery order and timing: key fields only,
   sorted *)
let normalize rows =
  List.sort compare
    (List.map
       (fun r ->
         match r with
         | Json.Obj fields ->
             Json.Obj (List.filter (fun (k, _) -> k <> "ms") fields)
         | r -> r)
       rows)

let test_interleaved_jobs () =
  let n = 25 in
  let st, rows = serve_lines ~jobs:4 (mixed_batch n) in
  checki "every job answered" n (List.length rows);
  check_envelope rows;
  checki "accepted + rejected = n" n (st.Serve.accepted + st.Serve.rejected);
  (* every id 0..n-1 appears exactly once *)
  let ids =
    List.filter_map (fun r -> Json.int_field r "id") rows |> List.sort compare
  in
  check (Alcotest.list Alcotest.int) "ids" (List.init n Fun.id) ids

let test_jobs_width_equivalence () =
  let n = 20 in
  let _, seq = serve_lines ~jobs:1 (mixed_batch n) in
  let _, par = serve_lines ~jobs:4 (mixed_batch n) in
  checkb "jobs=1 and jobs=4 produce the same row set" true
    (normalize seq = normalize par)

(* ---- the worker pool itself ---- *)

let test_pool_backpressure () =
  (* cap 2: the producer cannot get more than cap jobs ahead of the
     consumer *)
  let in_queue_high = ref 0 in
  let emitted = ref 0 in
  let pool =
    Pool.create ~cap:2 ~jobs:1
      ~on_error:(fun _ -> -1)
      ~emit:(fun _ -> incr emitted)
      ()
  in
  for i = 1 to 20 do
    ignore (Pool.submit pool (fun () -> i));
    in_queue_high := max !in_queue_high (Pool.queued pool)
  done;
  checki "drained" 0 (Pool.shutdown pool);
  checki "all emitted" 20 !emitted;
  checkb "queue depth stayed within cap" true (!in_queue_high <= 2)

let test_pool_error_keeps_workers () =
  let emitted = ref [] in
  let pool =
    Pool.create ~cap:8 ~jobs:2
      ~on_error:(fun _ -> -1)
      ~emit:(fun r -> emitted := r :: !emitted)
      ()
  in
  for i = 1 to 10 do
    ignore
      (Pool.submit pool (fun () -> if i mod 3 = 0 then failwith "boom" else i))
  done;
  ignore (Pool.shutdown pool);
  checki "every job answered" 10 (List.length !emitted);
  checki "failures routed through on_error" 3
    (List.length (List.filter (fun r -> r = -1) !emitted))

let test_pool_shutdown_no_drain () =
  (* a slow first job holds the worker; the rest sit queued and are
     dropped by a non-draining shutdown *)
  let gate = Atomic.make false in
  let pool =
    Pool.create ~cap:16 ~jobs:1
      ~on_error:(fun _ -> ())
      ~emit:(fun () -> ())
      ()
  in
  ignore
    (Pool.submit pool (fun () ->
         while not (Atomic.get gate) do
           Domain.cpu_relax ()
         done));
  while Pool.queued pool > 0 do
    Domain.cpu_relax ()
  done;
  for _ = 1 to 5 do
    ignore (Pool.submit pool (fun () -> ()))
  done;
  Atomic.set gate true;
  let dropped = Pool.shutdown ~drain:false pool in
  checkb "some queued jobs dropped" true (dropped >= 0 && dropped <= 5);
  checkb "closed pool refuses work" false (Pool.submit pool (fun () -> ()))

(* ---- cache sharing across requests ---- *)

let test_source_cache_hits () =
  let src = "int main() { int q[4]; q[2] = 9; return q[2]; }" in
  let m1 = Harness.Runner.compile_source_cached src in
  let before = Harness.Runner.source_compiles_performed () in
  let m2 = Harness.Runner.compile_source_cached src in
  checki "second compile is a cache hit" before
    (Harness.Runner.source_compiles_performed ());
  checkb "same physical module" true (m1 == m2)

let test_serve_shares_transform_cache () =
  let src = "int main() { int z[6]; z[1] = 2; return z[1]; }" in
  (* first request warms every cache *)
  let _, _ = serve_lines [ run_job src ] in
  let compiles = Harness.Runner.source_compiles_performed () in
  let transforms = Harness.Runner.transforms_performed () in
  let st, rows = serve_lines [ run_job src; run_job src; run_job src ] in
  checki "all completed" 3 st.Serve.completed;
  List.iter
    (fun r -> check Alcotest.string "outcome" "exit 2" (str_of r "outcome"))
    rows;
  checki "no new source compiles across requests" compiles
    (Harness.Runner.source_compiles_performed ());
  checki "no new transforms across requests" transforms
    (Harness.Runner.transforms_performed ())

let suite =
  [
    Alcotest.test_case "run job round-trips" `Quick test_ok_run;
    Alcotest.test_case "malformed JSON -> error row, daemon lives" `Quick
      test_malformed_json;
    Alcotest.test_case "unknown type -> error row with id" `Quick
      test_unknown_type;
    Alcotest.test_case "missing id -> error row" `Quick test_missing_id;
    Alcotest.test_case "oversized payload rejected" `Quick
      test_oversized_payload;
    Alcotest.test_case "frontend-rejected source -> error row" `Quick
      test_frontend_reject;
    Alcotest.test_case "trapping program is an ok row" `Quick
      test_trapping_job;
    Alcotest.test_case "spinning job times out" `Quick test_timeout_job;
    Alcotest.test_case "daemon-wide default timeout applies" `Quick
      test_default_timeout;
    Alcotest.test_case "absurd campaign count rejected" `Quick
      test_campaign_cap;
    Alcotest.test_case "interleaved results under jobs=4" `Quick
      test_interleaved_jobs;
    Alcotest.test_case "jobs=1 and jobs=4 agree modulo order" `Quick
      test_jobs_width_equivalence;
    Alcotest.test_case "pool: bounded queue backpressure" `Quick
      test_pool_backpressure;
    Alcotest.test_case "pool: errors do not kill workers" `Quick
      test_pool_error_keeps_workers;
    Alcotest.test_case "pool: non-draining shutdown drops queue" `Quick
      test_pool_shutdown_no_drain;
    Alcotest.test_case "source compile cache hits on identical text" `Quick
      test_source_cache_hits;
    Alcotest.test_case "serve requests share compile+transform caches"
      `Quick test_serve_shares_transform_cache;
  ]
