(* Lexer unit tests. *)

open Cminus

let toks src =
  Array.to_list (Lexer.tokenize src)
  |> List.map (fun (l : Lexer.lexed) -> l.tok)
  |> List.filter (fun t -> t <> Token.EOF)

let check_toks name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = toks src in
      Alcotest.(check (list string))
        name
        (List.map Token.to_string expected)
        (List.map Token.to_string got))

let lex_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match Lexer.tokenize src with
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail "expected a lexer error")

let il v = Token.INT_LIT (Int64.of_int v, Ctypes.IInt)

let suite =
  [
    check_toks "keywords and idents" "int foo while whiled"
      [ Token.KW_INT; Token.IDENT "foo"; Token.KW_WHILE;
        Token.IDENT "whiled" ];
    check_toks "decimal literals" "0 42 123456" [ il 0; il 42; il 123456 ];
    check_toks "hex literals" "0x10 0xff"
      [ Token.INT_LIT (16L, Ctypes.IInt); Token.INT_LIT (255L, Ctypes.IInt) ];
    check_toks "long suffix" "42L 7l"
      [ Token.INT_LIT (42L, Ctypes.ILong); Token.INT_LIT (7L, Ctypes.ILong) ];
    check_toks "unsigned suffix" "42u"
      [ Token.INT_LIT (42L, Ctypes.IUInt) ];
    check_toks "float literals" "1.5 2.0e3 7e-2 3.5f"
      [ Token.FLOAT_LIT (1.5, Ctypes.FDouble);
        Token.FLOAT_LIT (2000.0, Ctypes.FDouble);
        Token.FLOAT_LIT (0.07, Ctypes.FDouble);
        Token.FLOAT_LIT (3.5, Ctypes.FFloat) ];
    check_toks "char literals" "'a' '\\n' '\\0' '\\x41'"
      [ Token.CHAR_LIT 'a'; Token.CHAR_LIT '\n'; Token.CHAR_LIT '\000';
        Token.CHAR_LIT 'A' ];
    check_toks "string with escapes" {|"hi\n"|} [ Token.STRING_LIT "hi\n" ];
    check_toks "adjacent string concatenation" {|"ab" "cd"|}
      [ Token.STRING_LIT "abcd" ];
    check_toks "operators longest match" "a+++b a<<=b a->b a...b"
      [ Token.IDENT "a"; Token.PLUSPLUS; Token.PLUS; Token.IDENT "b";
        Token.IDENT "a"; Token.SHLEQ; Token.IDENT "b";
        Token.IDENT "a"; Token.ARROW; Token.IDENT "b";
        Token.IDENT "a"; Token.ELLIPSIS; Token.IDENT "b" ];
    check_toks "comparison operators" "< <= > >= == != && || << >>"
      [ Token.LT; Token.LE; Token.GT; Token.GE; Token.EQEQ; Token.NE;
        Token.ANDAND; Token.OROR; Token.SHL; Token.SHR ];
    check_toks "compound assignments" "+= -= *= /= %= &= |= ^="
      [ Token.PLUSEQ; Token.MINUSEQ; Token.STAREQ; Token.SLASHEQ;
        Token.PERCENTEQ; Token.AMPEQ; Token.PIPEEQ; Token.CARETEQ ];
    check_toks "line comments" "a // comment\nb"
      [ Token.IDENT "a"; Token.IDENT "b" ];
    check_toks "block comments" "a /* x\ny */ b"
      [ Token.IDENT "a"; Token.IDENT "b" ];
    check_toks "preprocessor lines skipped" "#include <stdio.h>\nint x;"
      [ Token.KW_INT; Token.IDENT "x"; Token.SEMI ];
    check_toks "preprocessor with leading blanks" "  #define FOO 1\nint"
      [ Token.KW_INT ];
    lex_fails "unterminated comment" "a /* b";
    lex_fails "unterminated string" {|"abc|};
    lex_fails "unterminated char" "'a";
    lex_fails "stray character" "a $ b";
    Alcotest.test_case "line/column tracking" `Quick (fun () ->
        let lexed = Lexer.tokenize "int\n  foo;" in
        let foo = lexed.(1) in
        Alcotest.(check int) "line" 2 foo.loc.line;
        Alcotest.(check int) "col" 3 foo.loc.col);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"integer literals roundtrip" ~count:200
         QCheck.(int_bound 1_000_000_000)
         (fun n ->
           match toks (string_of_int n) with
           | [ Token.INT_LIT (v, Ctypes.IInt) ] -> Int64.to_int v = n
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"identifiers lex as single tokens" ~count:200
         QCheck.(string_gen_of_size (Gen.int_range 1 20) (Gen.char_range 'a' 'z'))
         (fun s ->
           QCheck.assume (not (List.mem_assoc s Token.keyword_table));
           match toks s with [ Token.IDENT s' ] -> s' = s | _ -> false));
  ]
