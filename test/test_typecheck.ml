(* Typechecker unit tests. *)

open Cminus

let check_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      ignore (Typecheck.program_of_string src))

let check_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.program_of_string src with
      | exception Typecheck.Error _ -> ()
      | exception Ctypes.Type_error _ -> ()
      | _ -> Alcotest.fail "expected a type error")

(** Type of the expression assigned to global [probe] in [src]. *)
let fundef src name =
  let p = Typecheck.program_of_string src in
  List.find (fun f -> f.Tast.tfname = name) p.Tast.tfuns

let suite =
  [
    check_ok "arithmetic conversions"
      "int f(void) { char c = 'a'; short s = 2; long l = c + s; double d = l + 1.5; return (int)d; }";
    check_ok "pointer arithmetic and comparison"
      "int f(int *p, int *q) { return p + 2 < q ? (int)(q - p) : 0; }";
    check_ok "void pointer compatibility"
      "int f(void) { void *v = malloc(4); int *p = v; return p != NULL; }";
    check_ok "function pointers assigned and called"
      "int g(int x) { return x; } int f(void) { int (*fp)(int) = g; return fp(3) + (*fp)(4); }";
    check_ok "array decay in calls"
      "int sum(int *a, int n) { return n ? a[0] : 0; } int f(void) { int a[3]; return sum(a, 3); }";
    check_ok "struct field chains"
      "struct in { int v; }; struct out { struct in i; struct in *pi; };\n\
       int f(struct out *o) { return o->i.v + o->pi->v; }";
    check_ok "union access"
      "union u { int i; char c[4]; }; int f(void) { union u x; x.i = 65; return x.c[0]; }";
    check_ok "string literal as char pointer"
      "int f(void) { char *s = \"hi\"; return s[0]; }";
    check_ok "conditional with null pointer"
      "int *f(int *p) { return p ? p : NULL; }";
    check_ok "variadic call promotions"
      "int f(void) { float fl = 1.5f; char c = 'x'; printf(\"%f %c\\n\", fl, c); return 0; }";
    check_ok "setbound accepted on pointer variable"
      "int f(void) { char *p = (char*)malloc(8); setbound(p, 8); return 0; }";
    check_ok "struct assignment"
      "struct p { int x; int y; }; int f(void) { struct p a; struct p b; a.x = 1; b = a; return b.x; }";
    check_ok "implicit int-to-pointer allowed (SoftBound gives null bounds)"
      "int f(void) { int *p = (int*)1234; return p == (int*)1234; }";
    check_fails "undefined variable" "int f(void) { return y; }";
    check_fails "undefined function" "int f(void) { return g(); }";
    check_fails "call with too few args"
      "int g(int a, int b) { return a; } int f(void) { return g(1); }";
    check_fails "call with too many args"
      "int g(int a) { return a; } int f(void) { return g(1, 2); }";
    check_fails "deref of non-pointer" "int f(int x) { return *x; }";
    check_fails "field of non-struct" "int f(int x) { return x.v; }";
    check_fails "unknown field"
      "struct s { int a; }; int f(struct s *p) { return p->b; }";
    check_fails "assign to array" "int f(void) { int a[3]; int b[3]; a = b; return 0; }";
    Alcotest.test_case "break outside loop fails in lowering" `Quick (fun () ->
        match Sbir.Lower.compile "int f(void) { break; return 0; }" with
        | exception Sbir.Lower.Error _ -> ()
        | _ -> Alcotest.fail "expected a lowering error");
    check_fails "struct params by value rejected"
      "struct s { int a; }; int f(struct s x) { return x.a; }";
    check_fails "struct return by value rejected"
      "struct s { int a; }; struct s f(void) { struct s x; return x; }";
    check_fails "va_start outside variadic function"
      "int f(int x) { va_list ap; va_start(ap); return x; }";
    check_ok "return expr from void function evaluates for effect"
      "int gcount; void f(void) { return (void)(gcount = 1); }";
    Alcotest.test_case "locals renamed uniquely across scopes" `Quick
      (fun () ->
        let f =
          fundef
            "int f(void) { int x = 1; { int x = 2; x++; } return x; }"
            "f"
        in
        Alcotest.(check int) "two locals" 2 (List.length f.Tast.tflocals));
    Alcotest.test_case "address-taken analysis" `Quick (fun () ->
        let f =
          fundef
            "int f(void) { int a = 1; int b = 2; int *p = &a; return *p + b; }"
            "f"
        in
        let find n =
          List.find
            (fun (l : Tast.local) ->
              String.length l.lname > String.length n
              && String.sub l.lname 0 (String.length n) = n)
            f.Tast.tflocals
        in
        Alcotest.(check bool) "a addressed" true (find "a").laddressed;
        Alcotest.(check bool) "b not addressed" false (find "b").laddressed);
    Alcotest.test_case "arrays always addressed" `Quick (fun () ->
        let f = fundef "int f(void) { int a[4]; return a[0]; }" "f" in
        Alcotest.(check bool) "array local addressed" true
          (List.hd f.Tast.tflocals).laddressed);
    Alcotest.test_case "sizeof does not evaluate its operand" `Quick
      (fun () ->
        (* would trap at runtime if the deref were evaluated *)
        let m =
          Softbound.compile
            "int main(void) { int *p = NULL; return (int)sizeof(*p) - 4; }"
        in
        match (Softbound.run_unprotected m).outcome with
        | Interp.State.Exit 0 -> ()
        | o -> Alcotest.fail (Interp.State.string_of_outcome o));
  ]
