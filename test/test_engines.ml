(* Differential engine suite: the closure-compiled threaded-code engine
   and the pre-decoded dispatch engine are two executions of the same
   semantics, so every observable of a run — outcome (including the
   trap site and bounds in its message), program stdout, the full
   simulated-cost statistics block, cache behavior, residency, heap
   accounting, and per-site observability attribution — must be
   bit-identical between them.  The suite drives both engines over a
   fixed corpus of 200 generated programs (OOB planting on, so a third
   of the corpus traps) plus the hand-written regression programs, under
   both the unprotected and full-checking pipelines. *)

module St = Interp.State
module Vm = Interp.Vm
module Gen = Fuzz.Gen
module Rng = Fuzz.Rng

(* Everything a run exposes, flattened to structurally comparable data.
   [Obs.per_site] and friends pin the attribution machinery: if an
   engine charged a check to the wrong site (or failed to charge it),
   the fingerprints diverge even when totals happen to agree. *)
let fingerprint (r : Vm.result) =
  let s = r.Vm.stats in
  ( ( St.string_of_outcome r.Vm.outcome,
      r.Vm.stdout_text,
      [
        s.St.insts; s.St.cycles; s.St.mem_reads; s.St.mem_writes;
        s.St.ptr_mem_ops; s.St.checks; s.St.meta_loads; s.St.meta_stores;
        s.St.ht_probes; s.St.ht_resizes; s.St.calls; s.St.max_frames;
        r.Vm.cache_hits; r.Vm.cache_misses; r.Vm.resident_bytes;
        r.Vm.heap_peak; r.Vm.heap_live;
      ] ),
    ( Obs.per_site r.Vm.obs,
      Obs.wrapper_stats r.Vm.obs,
      Obs.seg_stats r.Vm.obs,
      Obs.attribution r.Vm.obs ) )

let cfg_with engine = { St.default_config with St.engine; max_steps = 3_000_000 }

let run_both ?opts m =
  let run engine =
    let cfg = cfg_with engine in
    match opts with
    | None -> Softbound.run_unprotected ~cfg m
    | Some opts -> Softbound.run_protected ~opts ~cfg m
  in
  (run St.Eng_decode, run St.Eng_closure)

let check_same label ?opts m =
  let d, c = run_both ?opts m in
  let fd = fingerprint d and fc = fingerprint c in
  if fd <> fc then
    Alcotest.failf "%s: engines diverge\n  decode:  %s | %S\n  closure: %s | %S"
      label
      (St.string_of_outcome d.Vm.outcome)
      d.Vm.stdout_text
      (St.string_of_outcome c.Vm.outcome)
      c.Vm.stdout_text

(* hand-written programs covering shapes the generator rarely stresses:
   setjmp/longjmp unwinding, function pointers, varargs printf, and a
   guaranteed bounds trap whose site identity both engines must agree
   on *)
let regressions =
  [
    ( "oob trap site",
      "int main(void) { long a[4]; long i; for (i = 0; i <= 4; i = i + 1) \
       a[i] = i; printf(\"%ld\\n\", a[0]); return 0; }" );
    ( "function pointers",
      "long add(long a, long b) { return a + b; }\n\
       long sub(long a, long b) { return a - b; }\n\
       int main(void) { long (*f)(long, long) = add; long s = f(3, 4);\n\
       f = sub; s += f(10, 1); printf(\"%ld\\n\", s); return 0; }" );
    ( "setjmp unwinding",
      "#include <setjmp.h>\n\
       jmp_buf env;\n\
       void deep(int n) { if (n == 0) longjmp(env, 7); deep(n - 1); }\n\
       int main(void) { int r = setjmp(env);\n\
       if (r == 0) { deep(5); return 1; }\n\
       printf(\"%d\\n\", r); return 0; }" );
    ( "heap churn",
      "int main(void) { long i; long *p; long s = 0;\n\
       for (i = 1; i < 40; i = i + 1) { p = malloc(8 * i);\n\
       p[i - 1] = i; s += p[i - 1]; if (i % 3 == 0) free(p); }\n\
       printf(\"%ld\\n\", s); return 0; }" );
  ]

let fuzz_corpus_size = 200

let suite =
  [
    Alcotest.test_case "regressions: decode = closure (unprotected + full)"
      `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let m = Softbound.compile src in
            check_same (name ^ " [unprot]") m;
            check_same (name ^ " [full]") ~opts:Softbound.Config.default m)
          regressions);
    Alcotest.test_case
      (Printf.sprintf
         "fuzz corpus (%d programs, oob on): decode = closure on outcome, \
          stdout, stats, cache, residency, attribution"
         fuzz_corpus_size)
      `Quick
      (fun () ->
        let root = Rng.create 0xe7e1 in
        for i = 0 to fuzz_corpus_size - 1 do
          let r = Rng.split root i in
          let case = Gen.generate r ~oob:true in
          let src = Cminus.Pretty.program_string case.Gen.prog in
          let m = Softbound.compile src in
          let label = Printf.sprintf "fuzz #%d (%s)" i src in
          check_same (label ^ " [unprot]") m;
          check_same (label ^ " [full]") ~opts:Softbound.Config.default m
        done);
  ]
