(* Differential-fuzzing harness tests: the generator emits valid
   programs deterministically, the oracle classifies planted
   divergences, the shrinker minimizes while preserving the finding,
   and a bounded sweep over the real pipeline is clean. *)

module Gen = Fuzz.Gen
module Oracle = Fuzz.Oracle
module Rng = Fuzz.Rng

let gen_case seed =
  let r = Rng.split (Rng.create seed) 0 in
  let oob = Rng.chance r ~pct:30 in
  Gen.generate r ~oob

let program_text c = Cminus.Pretty.program_string c.Gen.prog

(* a hand-written case for oracle/shrinker tests: labelled Safe but
   actually reads out of bounds, so full checking diverges from the
   uninstrumented run by trapping — the "false-positive" class *)
let planted_divergence () =
  let prog =
    Cminus.Parser.parse_string
      "long pad0; long pad1;\n\
       long spin(long n) { long s = 0; long i; for (i = 0; i < n; i = i + \
       1) s += i; return s; }\n\
       int main(void) { long a[4]; long i; for (i = 0; i < 4; i = i + 1) \
       a[i] = i; long acc = spin(10); acc += a[5]; printf(\"%ld\\n\", acc); \
       return 0; }"
  in
  {
    Gen.prog;
    expect = Gen.Safe;
    note = "planted oob read labelled safe";
    sub_object = false;
  }

let stmt_count (p : Cminus.Ast.program) =
  let rec sc (s : Cminus.Ast.stmt) =
    1
    +
    match s.Cminus.Ast.sdesc with
    | Cminus.Ast.Sif (_, a, b) ->
        sc a + (match b with Some b -> sc b | None -> 0)
    | Cminus.Ast.Swhile (_, b) | Cminus.Ast.Sdo (b, _) -> sc b
    | Cminus.Ast.Sfor (_, _, _, b) -> sc b
    | Cminus.Ast.Sblock ss -> List.fold_left (fun a s -> a + sc s) 0 ss
    | Cminus.Ast.Sswitch (_, cs) ->
        List.fold_left
          (fun a c ->
            List.fold_left (fun a s -> a + sc s) a c.Cminus.Ast.cbody)
          0 cs
    | _ -> 0
  in
  List.fold_left
    (fun a d ->
      match d with
      | Cminus.Ast.Gfun f ->
          a + List.fold_left (fun a s -> a + sc s) 0 f.Cminus.Ast.fbody
      | _ -> a)
    0 p.Cminus.Ast.defs

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        List.iter
          (fun seed ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d" seed)
              (program_text (gen_case seed))
              (program_text (gen_case seed)))
          [ 1; 7; 1234 ]);
    Alcotest.test_case "distinct seeds give distinct programs" `Quick
      (fun () ->
        Alcotest.(check bool)
          "differ" true
          (program_text (gen_case 5) <> program_text (gen_case 6)));
    Alcotest.test_case "generated programs survive the frontend" `Quick
      (fun () ->
        for seed = 50 to 69 do
          let c = gen_case seed in
          let src = program_text c in
          match Softbound.compile src with
          | _ -> ()
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "seed %d rejected (%s):\n%s" seed
                   (Printexc.to_string e) src)
        done);
    Alcotest.test_case "differential sweep is clean" `Slow (fun () ->
        let r =
          Fuzz.run_campaign ~shrink:false ~seed:20260805 ~count:60 ()
        in
        (match r.Fuzz.findings with
        | [] -> ()
        | f :: _ ->
            Alcotest.fail
              (Printf.sprintf "divergence (%d total), first: %s"
                 (List.length r.Fuzz.findings)
                 (Fuzz.render_finding f)));
        Alcotest.(check int) "all cases ran" 60 (r.Fuzz.tested + r.Fuzz.skipped);
        Alcotest.(check bool) "some cases injected violations" true
          (r.Fuzz.trap_cases > 0));
    Alcotest.test_case "oracle classifies a planted divergence" `Quick
      (fun () ->
        let c = planted_divergence () in
        match Oracle.check ~expect:c.Gen.expect c.Gen.prog with
        | Oracle.Bug f ->
            Alcotest.(check string) "class" "false-positive" f.Oracle.cls
        | Oracle.Ok_ -> Alcotest.fail "oracle missed the planted oob read"
        | Oracle.Skip why -> Alcotest.fail ("skipped: " ^ why));
    Alcotest.test_case "oracle accepts the program once repaired" `Quick
      (fun () ->
        let prog =
          Cminus.Parser.parse_string
            "int main(void) { long a[4]; long i; for (i = 0; i < 4; i = i + \
             1) a[i] = i; printf(\"%ld\\n\", a[3]); return 0; }"
        in
        match Oracle.check ~expect:Gen.Safe prog with
        | Oracle.Ok_ -> ()
        | Oracle.Bug f ->
            Alcotest.fail (f.Oracle.cls ^ ": " ^ f.Oracle.detail)
        | Oracle.Skip why -> Alcotest.fail ("skipped: " ^ why));
    Alcotest.test_case "shrinker minimizes while preserving the class" `Slow
      (fun () ->
        let c = planted_divergence () in
        let small =
          Fuzz.Shrink.minimize ~expect:c.Gen.expect ~cls:"false-positive"
            c.Gen.prog
        in
        (match Oracle.check ~expect:c.Gen.expect small with
        | Oracle.Bug f ->
            Alcotest.(check string) "still same class" "false-positive"
              f.Oracle.cls
        | _ -> Alcotest.fail "shrunk program lost the finding");
        Alcotest.(check bool) "got smaller" true
          (stmt_count small < stmt_count c.Gen.prog);
        (* the irrelevant helper and globals must be gone *)
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        let txt = Cminus.Pretty.program_string small in
        Alcotest.(check bool) "helper removed" false (contains txt "spin"));
    Alcotest.test_case "oracle: store-only catches writes, skips reads"
      `Quick (fun () ->
        let wr =
          Cminus.Parser.parse_string
            "int main(void) { long a[4]; long i; for (i = 0; i < 4; i = i + \
             1) a[i] = i; a[6] = 1; return 0; }"
        in
        (match Oracle.check ~expect:Gen.Trap_write wr with
        | Oracle.Ok_ -> ()
        | Oracle.Bug f ->
            Alcotest.fail (f.Oracle.cls ^ ": " ^ f.Oracle.detail)
        | Oracle.Skip why -> Alcotest.fail why);
        let rd =
          Cminus.Parser.parse_string
            "int main(void) { long a[4]; long i; for (i = 0; i < 4; i = i + \
             1) a[i] = i; long x = a[6]; return (int)(x & 0); }"
        in
        match Oracle.check ~expect:Gen.Trap_read rd with
        | Oracle.Ok_ -> ()
        | Oracle.Bug f -> Alcotest.fail (f.Oracle.cls ^ ": " ^ f.Oracle.detail)
        | Oracle.Skip why -> Alcotest.fail why);
  ]
