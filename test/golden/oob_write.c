/* Fixed attack: stack-array overflow by one element on the write path.
   Golden inputs for the metrics-JSON and trap-trace expect tests —
   keep byte-stable, the expected outputs are pinned. */
int main(void) {
  int a[8];
  int i;
  for (i = 0; i < 8; i = i + 1) a[i] = i;
  a[8] = 123;
  return a[0];
}
