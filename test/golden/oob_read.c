/* Fixed attack: heap overread one element past a malloc'd buffer.
   Golden inputs for the metrics-JSON and trap-trace expect tests —
   keep byte-stable, the expected outputs are pinned. */
int main(void) {
  int *p = (int *)malloc(16);
  int i;
  for (i = 0; i < 4; i = i + 1) p[i] = i * 3;
  printf("%d\n", p[4]);
  return 0;
}
