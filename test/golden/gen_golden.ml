(* Regenerate the pinned expect files for the observability golden
   tests (test_obs.ml), after reviewing that a metrics/trace change is
   intentional:

     dune exec test/golden/gen_golden.exe

   Writes <name>.profile.json and <name>.trace.txt next to each fixed
   attack program.  The computations here must mirror test_obs.ml
   exactly — that is what makes the expected files reproducible. *)

module S = Interp.State

let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  Printf.printf "wrote %s\n" path

let compile name =
  Softbound.compile (read_file (Filename.concat dir (name ^ ".c")))

(* the related-work schemes pinned by test_schemes.ml: same two attack
   programs, instrumented with each scheme's option profile *)
let scheme_opts =
  [
    ("cguard", Schemes.Cguard.options ());
    ("framer", Schemes.Framer.options ());
    ("l4-pointer", Schemes.L4_pointer.options ());
  ]

let () =
  List.iter
    (fun name ->
      let m = compile name in
      let label = name ^ ".c" in
      let p = Harness.Profile.profile ~label m in
      write_file
        (Filename.concat dir (name ^ ".profile.json"))
        (Harness.Profile.to_json p);
      let cfg = { S.default_config with S.trace_depth = 16 } in
      let pt = Harness.Profile.profile ~label ~cfg ~with_baseline:false m in
      write_file
        (Filename.concat dir (name ^ ".trace.txt"))
        (Obs.dump_trace pt.Harness.Profile.result.Interp.Vm.obs);
      List.iter
        (fun (sname, opts) ->
          let ps = Harness.Profile.profile ~label ~opts m in
          write_file
            (Filename.concat dir
               (Printf.sprintf "%s.%s.profile.json" name sname))
            (Harness.Profile.to_json ps);
          let pst =
            Harness.Profile.profile ~label ~opts ~cfg ~with_baseline:false m
          in
          write_file
            (Filename.concat dir (Printf.sprintf "%s.%s.trace.txt" name sname))
            (Obs.dump_trace pst.Harness.Profile.result.Interp.Vm.obs))
        scheme_opts)
    [ "oob_write"; "oob_read" ]
