(* Redundant-check elimination (Elim) tests.

   The pass must be invisible except in the instruction stream: every
   program — safe or attacking — behaves identically with
   [eliminate_checks] on and off, while the static and dynamic check
   counts only ever go down.  Detection completeness is re-asserted over
   the whole Wilander/BugBench matrix with elimination explicitly on,
   in both full and store-only modes. *)

let on = Softbound.Config.default (* eliminate_checks defaults to true *)
let off = { on with Softbound.Config.eliminate_checks = false }
let store_on = Softbound.Config.store_only

let store_off =
  { store_on with Softbound.Config.eliminate_checks = false }

let hash_on =
  { on with Softbound.Config.facility = Softbound.Config.Hash_table }

let tc name f = Alcotest.test_case name `Quick f

let static_checks opts src =
  let m = Softbound.instrument ~opts (Softbound.compile src) in
  Hashtbl.fold
    (fun _ f acc -> acc + Softbound.Elim.count_checks f)
    m.Sbir.Ir.mfuncs 0

let static_metaloads opts src =
  let m = Softbound.instrument ~opts (Softbound.compile src) in
  Hashtbl.fold
    (fun _ f acc -> acc + Softbound.Elim.count_metaloads f)
    m.Sbir.Ir.mfuncs 0

let runs opts src =
  Softbound.run_protected ~opts (Softbound.compile src)

(* Read-modify-write accesses produce back-to-back identical checks
   (the load's and the store's), which the available-checks CSE merges;
   the loop-invariant metadata computation for [a] and [p] is hoisted
   to the preheader.  Exercises both halves of the pass. *)
let loopy =
  "int main(void) { int a[64]; int *p = (int*)malloc(4); int i; \
   for (i = 0; i < 100; i++) { a[i % 64] = i; a[i % 64] += 3; \
   *p = *p + a[i % 64]; } \
   printf(\"%d\\n\", *p); return 0; }"

(* Same outcome, same stdout, whatever the flag. *)
let agrees name src =
  tc name (fun () ->
      let a = runs on src and b = runs off src in
      (match (a.outcome, b.outcome) with
      | Interp.State.Exit x, Interp.State.Exit y when x = y -> ()
      | x, y ->
          Alcotest.fail
            (Printf.sprintf "outcomes differ: %s vs %s"
               (Interp.State.string_of_outcome x)
               (Interp.State.string_of_outcome y)));
      Alcotest.(check string) "stdout agrees" b.stdout_text a.stdout_text)

let suite =
  [
    (* ---------------- the pass actually fires ---------------- *)
    tc "static checks drop on a loopy program" (fun () ->
        let n_on = static_checks on loopy and n_off = static_checks off loopy in
        Alcotest.(check bool)
          (Printf.sprintf "fewer static checks (%d < %d)" n_on n_off)
          true (n_on < n_off));
    tc "static metadata lookups drop too" (fun () ->
        let n_on = static_metaloads on loopy
        and n_off = static_metaloads off loopy in
        Alcotest.(check bool)
          (Printf.sprintf "fewer static MetaLoads (%d <= %d)" n_on n_off)
          true (n_on <= n_off));
    tc "dynamic checks drop on a loopy program" (fun () ->
        let a = runs on loopy and b = runs off loopy in
        let ca = a.stats.Interp.State.checks
        and cb = b.stats.Interp.State.checks in
        Alcotest.(check bool)
          (Printf.sprintf "fewer dynamic checks (%d < %d)" ca cb)
          true (ca < cb);
        Alcotest.(check bool) "fewer cycles" true
          (a.stats.Interp.State.cycles < b.stats.Interp.State.cycles));
    tc "eliminated module still validates" (fun () ->
        Sbir.Ir.validate
          (Softbound.instrument ~opts:on (Softbound.compile loopy)));
    (* ---------------- behavioural equivalence ---------------- *)
    agrees "safe loop is untouched observationally" loopy;
    agrees "linked list build and sum"
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t *h = NULL; int i; for (i = 0; i < 30; i++) { \
       n_t *x = (n_t*)malloc(sizeof(n_t)); x->v = i; x->next = h; h = x; } \
       int s = 0; n_t *c; for (c = h; c; c = c->next) s += c->v; \
       printf(\"%d\\n\", s); return 0; }";
    agrees "early exit inside the loop (no zero-trip miscompile)"
      "int main(void) { int a[8]; int i; for (i = 0; i < 100; i++) { \
       if (i == 3) return 7; a[i] = i; } return 0; }";
    agrees "zero-trip loop over out-of-bounds body"
      "int main(void) { int a[4]; int i; int n = 0; \
       for (i = 0; i < n; i++) a[i + 100] = 1; printf(\"ok\\n\"); return 0; }";
    agrees "pointer redefinition in the loop kills availability"
      "int main(void) { int x = 1; int y = 2; int *p = &x; int i; int s = 0; \
       for (i = 0; i < 10; i++) { s += *p; p = (i % 2 == 0) ? &y : &x; } \
       printf(\"%d\\n\", s); return 0; }";
    (* ---------------- detection is preserved ---------------- *)
    tc "overflow in a hoisted-check loop still aborts" (fun () ->
        let src =
          "int main(void) { int a[8]; int i; int s = 0; \
           for (i = 0; i < 9; i++) s += a[i]; return s; }"
        in
        Alcotest.(check bool) "elim on detects" true
          (Softbound.detected (runs on src));
        Alcotest.(check bool) "elim off detects" true
          (Softbound.detected (runs off src)));
    tc "overflow on the last iteration only" (fun () ->
        let src =
          "int main(void) { int *p = (int*)malloc(16); int i; \
           for (i = 0; i <= 4; i++) p[i] = i; return 0; }"
        in
        Alcotest.(check bool) "detected" true
          (Softbound.detected (runs on src));
        Alcotest.(check bool) "hash facility too" true
          (Softbound.detected (runs hash_on src)));
    tc "store-only with elimination still catches writes" (fun () ->
        let src =
          "int main(void) { char *d = (char*)malloc(4); \
           strcpy(d, \"much too long\"); return 0; }"
        in
        Alcotest.(check bool) "detected" true
          (Softbound.detected (runs store_on src)));
    tc "all 18 attacks abort with elimination on (full + store-only)"
      (fun () ->
        List.iter
          (fun (a : Attacks.Wilander.attack) ->
            let label o =
              Printf.sprintf "attack %02d (%s): %s" a.id o a.technique
            in
            Alcotest.(check bool) (label "full") true
              (Softbound.detected (runs on a.source));
            Alcotest.(check bool)
              (label "store-only")
              true
              (Softbound.detected (runs store_on a.source)))
          Attacks.Wilander.all);
    tc "bugbench verdicts are unchanged by elimination" (fun () ->
        List.iter
          (fun (p : Attacks.Bugbench.program) ->
            let v o = Softbound.detected (runs o p.source) in
            Alcotest.(check bool) (p.name ^ " full") (v off) (v on);
            Alcotest.(check bool)
              (p.name ^ " store-only")
              (v store_off) (v store_on))
          Attacks.Bugbench.all);
    (* ---------------- qcheck properties ---------------- *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random in-bounds walks agree (outcome, stdout, check count)"
         ~count:30
         QCheck.(pair (int_range 1 40) (int_range 1 5))
         (fun (n, stride) ->
           let src =
             Printf.sprintf
               "int main(void) { int a[%d]; int i; int s = 0; \
                for (i = 0; i < %d; i += %d) a[i] = i; \
                for (i = 0; i < %d; i += %d) s += a[i]; \
                printf(\"%%d\\n\", s); return 0; }"
               n n stride n stride
           in
           let a = runs on src and b = runs off src in
           a.outcome = b.outcome
           && a.stdout_text = b.stdout_text
           && a.stats.Interp.State.checks <= b.stats.Interp.State.checks));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random overflows detected identically with elim on/off"
         ~count:30
         QCheck.(pair (int_range 1 32) (int_range 0 8))
         (fun (n, past) ->
           let src =
             Printf.sprintf
               "int main(void) { int a[%d]; int i; int s = 0; \
                for (i = 0; i <= %d; i++) s += a[i]; return s; }"
               n
               (n + past)
           in
           Softbound.detected (runs on src)
           && Softbound.detected (runs off src)));
  ]
