(* Redundant-check elimination (Elim) tests.

   The pass must be invisible except in the instruction stream: every
   program — safe or attacking — behaves identically with
   [eliminate_checks] on and off, while the static and dynamic check
   counts only ever go down.  Detection completeness is re-asserted over
   the whole Wilander/BugBench matrix with elimination explicitly on,
   in both full and store-only modes. *)

let on = Softbound.Config.default (* eliminate_checks defaults to true *)
let off = { on with Softbound.Config.eliminate_checks = false }
let store_on = Softbound.Config.store_only

let store_off =
  { store_on with Softbound.Config.eliminate_checks = false }

let hash_on =
  { on with Softbound.Config.facility = Softbound.Config.Hash_table }

let tc name f = Alcotest.test_case name `Quick f

let static_checks opts src =
  let m = Softbound.instrument ~opts (Softbound.compile src) in
  Hashtbl.fold
    (fun _ f acc -> acc + Softbound.Elim.count_checks f)
    m.Sbir.Ir.mfuncs 0

let static_metaloads opts src =
  let m = Softbound.instrument ~opts (Softbound.compile src) in
  Hashtbl.fold
    (fun _ f acc -> acc + Softbound.Elim.count_metaloads f)
    m.Sbir.Ir.mfuncs 0

let runs opts src =
  Softbound.run_protected ~opts (Softbound.compile src)

(* ---- induction-variable widening (Elim passes 1b/1c) helpers ---- *)

let no_widen = { on with Softbound.Config.widen_checks = false }

let fold_funcs opts src count =
  let m = Softbound.instrument ~opts (Softbound.compile src) in
  Hashtbl.fold (fun _ f acc -> acc + count f) m.Sbir.Ir.mfuncs 0

let widened src = fold_funcs on src Softbound.Elim.count_widened
let coalesced src = fold_funcs on src Softbound.Elim.count_coalesced

(* A legality-refusal case: the named loop shape must keep all its
   per-iteration checks (no span emitted anywhere in the program), and
   behave identically anyway. *)
let refuses name src =
  tc ("widening refused: " ^ name) (fun () ->
      Alcotest.(check int) "no spans emitted" 0 (widened src + coalesced src);
      let a = runs on src and b = runs no_widen src in
      Alcotest.(check string) "outcome agrees"
        (Interp.State.string_of_outcome b.outcome)
        (Interp.State.string_of_outcome a.outcome);
      Alcotest.(check string) "stdout agrees" b.stdout_text a.stdout_text)

(* The 500-program widening oracle: generated loop-heavy programs (the
   generator's affine scene plants canonical counted loops, and ~30% of
   cases carry an injected violation), run widen-on vs widen-off under
   a sampled engine x facility point.  Outcome, stdout, and the failing
   check's site id must be identical. *)
let obs_cfg =
  {
    Interp.State.default_config with
    Interp.State.obs_enabled = true;
    trace_depth = 1 lsl 12;
  }

let fail_site (r : Interp.Vm.result) =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Obs.E_check { site; ok = false; _ } -> Some site
      | _ -> acc)
    None
    (Obs.events r.Interp.Vm.obs)

let widen_agrees (index, eng, fac) =
  let engine =
    if eng then Interp.State.Eng_closure else Interp.State.Eng_decode
  in
  let facility =
    List.nth
      [
        Softbound.Config.Hash_table;
        Softbound.Config.Shadow_space;
        Softbound.Config.Obj_header;
        Softbound.Config.Frame_tag;
        Softbound.Config.Wide_inline;
      ]
      fac
  in
  let case = Fuzz.case_of ~seed:2027 ~index in
  let m =
    Softbound.compile (Cminus.Pretty.program_string case.Fuzz.Gen.prog)
  in
  let cfg = { obs_cfg with Interp.State.engine } in
  let run widen_checks =
    Softbound.run_protected
      ~opts:{ on with Softbound.Config.facility; widen_checks }
      ~cfg m
  in
  let a = run true and b = run false in
  Interp.State.string_of_outcome a.outcome
  = Interp.State.string_of_outcome b.outcome
  && a.stdout_text = b.stdout_text
  && fail_site a = fail_site b

(* Read-modify-write accesses produce back-to-back identical checks
   (the load's and the store's), which the available-checks CSE merges;
   the loop-invariant metadata computation for [a] and [p] is hoisted
   to the preheader.  Exercises both halves of the pass. *)
let loopy =
  "int main(void) { int a[64]; int *p = (int*)malloc(4); int i; \
   for (i = 0; i < 100; i++) { a[i % 64] = i; a[i % 64] += 3; \
   *p = *p + a[i % 64]; } \
   printf(\"%d\\n\", *p); return 0; }"

(* Same outcome, same stdout, whatever the flag. *)
let agrees name src =
  tc name (fun () ->
      let a = runs on src and b = runs off src in
      (match (a.outcome, b.outcome) with
      | Interp.State.Exit x, Interp.State.Exit y when x = y -> ()
      | x, y ->
          Alcotest.fail
            (Printf.sprintf "outcomes differ: %s vs %s"
               (Interp.State.string_of_outcome x)
               (Interp.State.string_of_outcome y)));
      Alcotest.(check string) "stdout agrees" b.stdout_text a.stdout_text)

let suite =
  [
    (* ---------------- the pass actually fires ---------------- *)
    tc "static checks drop on a loopy program" (fun () ->
        let n_on = static_checks on loopy and n_off = static_checks off loopy in
        Alcotest.(check bool)
          (Printf.sprintf "fewer static checks (%d < %d)" n_on n_off)
          true (n_on < n_off));
    tc "static metadata lookups drop too" (fun () ->
        let n_on = static_metaloads on loopy
        and n_off = static_metaloads off loopy in
        Alcotest.(check bool)
          (Printf.sprintf "fewer static MetaLoads (%d <= %d)" n_on n_off)
          true (n_on <= n_off));
    tc "dynamic checks drop on a loopy program" (fun () ->
        let a = runs on loopy and b = runs off loopy in
        let ca = a.stats.Interp.State.checks
        and cb = b.stats.Interp.State.checks in
        Alcotest.(check bool)
          (Printf.sprintf "fewer dynamic checks (%d < %d)" ca cb)
          true (ca < cb);
        Alcotest.(check bool) "fewer cycles" true
          (a.stats.Interp.State.cycles < b.stats.Interp.State.cycles));
    tc "eliminated module still validates" (fun () ->
        Sbir.Ir.validate
          (Softbound.instrument ~opts:on (Softbound.compile loopy)));
    (* ---------------- behavioural equivalence ---------------- *)
    agrees "safe loop is untouched observationally" loopy;
    agrees "linked list build and sum"
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t *h = NULL; int i; for (i = 0; i < 30; i++) { \
       n_t *x = (n_t*)malloc(sizeof(n_t)); x->v = i; x->next = h; h = x; } \
       int s = 0; n_t *c; for (c = h; c; c = c->next) s += c->v; \
       printf(\"%d\\n\", s); return 0; }";
    agrees "early exit inside the loop (no zero-trip miscompile)"
      "int main(void) { int a[8]; int i; for (i = 0; i < 100; i++) { \
       if (i == 3) return 7; a[i] = i; } return 0; }";
    agrees "zero-trip loop over out-of-bounds body"
      "int main(void) { int a[4]; int i; int n = 0; \
       for (i = 0; i < n; i++) a[i + 100] = 1; printf(\"ok\\n\"); return 0; }";
    agrees "pointer redefinition in the loop kills availability"
      "int main(void) { int x = 1; int y = 2; int *p = &x; int i; int s = 0; \
       for (i = 0; i < 10; i++) { s += *p; p = (i % 2 == 0) ? &y : &x; } \
       printf(\"%d\\n\", s); return 0; }";
    (* ---------------- detection is preserved ---------------- *)
    tc "overflow in a hoisted-check loop still aborts" (fun () ->
        let src =
          "int main(void) { int a[8]; int i; int s = 0; \
           for (i = 0; i < 9; i++) s += a[i]; return s; }"
        in
        Alcotest.(check bool) "elim on detects" true
          (Softbound.detected (runs on src));
        Alcotest.(check bool) "elim off detects" true
          (Softbound.detected (runs off src)));
    tc "overflow on the last iteration only" (fun () ->
        let src =
          "int main(void) { int *p = (int*)malloc(16); int i; \
           for (i = 0; i <= 4; i++) p[i] = i; return 0; }"
        in
        Alcotest.(check bool) "detected" true
          (Softbound.detected (runs on src));
        Alcotest.(check bool) "hash facility too" true
          (Softbound.detected (runs hash_on src)));
    tc "store-only with elimination still catches writes" (fun () ->
        let src =
          "int main(void) { char *d = (char*)malloc(4); \
           strcpy(d, \"much too long\"); return 0; }"
        in
        Alcotest.(check bool) "detected" true
          (Softbound.detected (runs store_on src)));
    tc "all 18 attacks abort with elimination on (full + store-only)"
      (fun () ->
        List.iter
          (fun (a : Attacks.Wilander.attack) ->
            let label o =
              Printf.sprintf "attack %02d (%s): %s" a.id o a.technique
            in
            Alcotest.(check bool) (label "full") true
              (Softbound.detected (runs on a.source));
            Alcotest.(check bool)
              (label "store-only")
              true
              (Softbound.detected (runs store_on a.source)))
          Attacks.Wilander.all);
    tc "bugbench verdicts are unchanged by elimination" (fun () ->
        List.iter
          (fun (p : Attacks.Bugbench.program) ->
            let v o = Softbound.detected (runs o p.source) in
            Alcotest.(check bool) (p.name ^ " full") (v off) (v on);
            Alcotest.(check bool)
              (p.name ^ " store-only")
              (v store_off) (v store_on))
          Attacks.Bugbench.all);
    (* ---------------- induction-variable widening ---------------- *)
    tc "widening fires on a canonical counted loop" (fun () ->
        let src =
          "int main(void) { int a[16]; int i; int s = 0; \
           for (i = 0; i < 16; i++) a[i] = i; \
           for (i = 0; i < 16; i++) s += a[i]; \
           printf(\"%d\\n\", s); return 0; }"
        in
        Alcotest.(check bool) "spans emitted" true (widened src > 0);
        let a = runs on src and b = runs no_widen src in
        Alcotest.(check string) "stdout agrees" b.stdout_text a.stdout_text;
        Alcotest.(check bool)
          (Printf.sprintf "fewer dynamic checks (%d < %d)"
             a.stats.Interp.State.checks b.stats.Interp.State.checks)
          true
          (a.stats.Interp.State.checks < b.stats.Interp.State.checks));
    tc "coalescing folds same-base consecutive checks" (fun () ->
        let src =
          "int main(void) { int a[8]; \
           a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4; \
           printf(\"%d\\n\", a[0] + a[3]); return 0; }"
        in
        Alcotest.(check bool) "checks coalesced" true (coalesced src > 0);
        let a = runs on src and b = runs no_widen src in
        Alcotest.(check string) "stdout agrees" b.stdout_text a.stdout_text);
    refuses "early break (trip count not exact)"
      "int main(void) { int a[8]; int i; int s = 0; \
       for (i = 0; i < 8; i++) { a[i] = i; if (i == 5) break; } \
       for (i = 0; i < 6; i++) { s += a[i]; if (s > 99) break; } \
       printf(\"%d\\n\", s); return 0; }";
    refuses "call inside the loop body"
      "int main(void) { int a[8]; int i; \
       for (i = 0; i < 8; i++) { a[i] = i; printf(\"%d \", a[i]); } \
       printf(\"\\n\"); return 0; }";
    refuses "unknown trip count (limit redefined in the loop)"
      "int main(void) { int a[8]; int i; int n = 6; int s = 0; \
       for (i = 0; i < n; i++) { a[i] = i; s += a[i]; if (i == 2) n = 4; } \
       printf(\"%d %d\\n\", s, n); return 0; }";
    refuses "negative stride (down-counting loop)"
      "int main(void) { int a[8]; int i; int s = 0; \
       for (i = 7; i >= 0; i = i - 1) a[i] = i; \
       for (i = 7; i >= 0; i = i - 1) s += a[i]; \
       printf(\"%d\\n\", s); return 0; }";
    tc "widened loop traps at the same point as unwidened" (fun () ->
        let src =
          "int main(void) { int a[8]; int i; \
           for (i = 0; i < 12; i++) a[i] = i; return 0; }"
        in
        let a = runs on src and b = runs no_widen src in
        Alcotest.(check string) "same trap message"
          (Interp.State.string_of_outcome b.outcome)
          (Interp.State.string_of_outcome a.outcome);
        Alcotest.(check bool) "detected" true (Softbound.detected a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "widen on/off agree (outcome, stdout, trap site; both engines, \
            all facilities)"
         ~count:500
         QCheck.(
           triple
             (make ~print:string_of_int Gen.(int_bound 249))
             bool (int_range 0 4))
         widen_agrees);
    (* ---------------- qcheck properties ---------------- *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random in-bounds walks agree (outcome, stdout, check count)"
         ~count:30
         QCheck.(pair (int_range 1 40) (int_range 1 5))
         (fun (n, stride) ->
           let src =
             Printf.sprintf
               "int main(void) { int a[%d]; int i; int s = 0; \
                for (i = 0; i < %d; i += %d) a[i] = i; \
                for (i = 0; i < %d; i += %d) s += a[i]; \
                printf(\"%%d\\n\", s); return 0; }"
               n n stride n stride
           in
           let a = runs on src and b = runs off src in
           a.outcome = b.outcome
           && a.stdout_text = b.stdout_text
           && a.stats.Interp.State.checks <= b.stats.Interp.State.checks));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random overflows detected identically with elim on/off"
         ~count:30
         QCheck.(pair (int_range 1 32) (int_range 0 8))
         (fun (n, past) ->
           let src =
             Printf.sprintf
               "int main(void) { int a[%d]; int i; int s = 0; \
                for (i = 0; i <= %d; i++) s += a[i]; return s; }"
               n
               (n + past)
           in
           Softbound.detected (runs on src)
           && Softbound.detected (runs off src)));
  ]
