(* Cross-cutting property tests over randomly generated MiniC programs:

   - compatibility: a safe random program behaves identically
     uninstrumented, SoftBound-instrumented (both facilities/modes), and
     inlined — the "no source change, no false positive" claim as a
     random property;
   - attack property: a random buffer size + a random overflowing index
     is always caught by full checking and, when it is a write, by
     store-only checking too. *)

(* A generator of small safe programs: a few global arrays, a loop that
   fills them in-bounds, arithmetic on the results, and a printf. *)
let gen_safe_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n1 = int_range 4 40 in
  let* n2 = int_range 4 40 in
  let* mul = int_range 1 9 in
  let* add = int_range 0 99 in
  let* use_heap = bool in
  let* walk_list = bool in
  let body_heap =
    Printf.sprintf
      "  int *h = (int*)malloc(%d * sizeof(int));\n\
      \  for (i = 0; i < %d; i++) h[i] = a[i %% %d] * %d;\n\
      \  for (i = 0; i < %d; i++) s += h[i];\n\
      \  free(h);\n"
      n2 n2 n1 mul n2
  in
  let body_list =
    Printf.sprintf
      "  node *head = NULL;\n\
      \  for (i = 0; i < %d; i++) { node *x = (node*)malloc(sizeof(node)); \
       x->v = i + %d; x->next = head; head = x; }\n\
      \  while (head) { s += head->v; head = head->next; }\n"
      n2 add
  in
  let src =
    Printf.sprintf
      "typedef struct node { int v; struct node *next; } node;\n\
       int a[%d];\n\
       int main(void) {\n\
      \  int i; int s = 0;\n\
      \  for (i = 0; i < %d; i++) a[i] = i * %d + %d;\n\
       %s%s\
      \  printf(\"s=%%d\\n\", s);\n\
      \  return s %% 200;\n\
       }\n"
      n1 n1 mul add
      (if use_heap then body_heap else "")
      (if walk_list then body_list else "")
  in
  return src

let arb_safe =
  QCheck.make ~print:(fun s -> s) gen_safe_program

(* Random out-of-bounds accesses. *)
let gen_oob : (string * bool) QCheck.Gen.t =
  let open QCheck.Gen in
  let* size = int_range 1 32 in
  let* past = int_range 0 16 in
  let idx = size + past in
  let* is_write = bool in
  let* on_heap = bool in
  let decl, name =
    if on_heap then
      (Printf.sprintf "  char *b = (char*)malloc(%d);\n" size, "b")
    else (Printf.sprintf "  char b[%d]; char *p = b;\n" size,
          "p")
  in
  let access =
    if is_write then Printf.sprintf "  %s[%d] = 1;\n" name idx
    else Printf.sprintf "  sink = %s[%d];\n" name idx
  in
  let src =
    "int sink;\nint main(void) {\n" ^ decl ^ access ^ "  return 0;\n}\n"
  in
  return (src, is_write)

let arb_oob = QCheck.make ~print:(fun (s, _) -> s) gen_oob

let outcomes_agree (a : Interp.Vm.result) (b : Interp.Vm.result) =
  a.stdout_text = b.stdout_text
  &&
  match (a.outcome, b.outcome) with
  | Interp.State.Exit x, Interp.State.Exit y -> x = y
  | _ -> false

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60
         ~name:"random safe programs: instrumentation never changes behaviour"
         arb_safe
         (fun src ->
           let m = Softbound.compile src in
           let base = Softbound.run_unprotected m in
           (match base.outcome with
           | Interp.State.Exit _ -> ()
           | o ->
               QCheck.Test.fail_report
                 ("generator produced an unsafe program: "
                 ^ Interp.State.string_of_outcome o));
           let full = Softbound.run_protected m in
           let hash =
             Softbound.run_protected
               ~opts:
                 { Softbound.Config.default with
                   facility = Softbound.Config.Hash_table }
               m
           in
           let store =
             Softbound.run_protected ~opts:Softbound.Config.store_only m
           in
           outcomes_agree base full && outcomes_agree base hash
           && outcomes_agree base store));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:80
         ~name:"random overflows: full checking always detects" arb_oob
         (fun (src, _) ->
           Softbound.detected
             (Softbound.run_protected (Softbound.compile src))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:80
         ~name:"random overflows: store-only detects exactly the writes"
         arb_oob
         (fun (src, is_write) ->
           let r =
             Softbound.run_protected ~opts:Softbound.Config.store_only
               (Softbound.compile src)
           in
           if is_write then Softbound.detected r
           else
             (* reads are missed by store-only, by design *)
             match r.outcome with
             | Interp.State.Exit _ -> true
             | _ -> Softbound.detected r = false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"random safe programs: inlining preserves behaviour" arb_safe
         (fun src ->
           let raw = Softbound.compile ~inline:false ~optimize:false src in
           let inl = Sbir.Inline.run raw in
           outcomes_agree (Interp.Vm.run raw) (Interp.Vm.run inl)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"random safe programs: optimization preserves behaviour"
         arb_safe
         (fun src ->
           let raw = Softbound.compile ~inline:false ~optimize:false src in
           let opt = Sbir.Opt.run raw in
           outcomes_agree (Interp.Vm.run raw) (Interp.Vm.run opt)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:
           "random overflows: detection is invariant under optimization+inlining"
         arb_oob
         (fun (src, _) ->
           let full = Softbound.compile src in
           let raw = Softbound.compile ~inline:false ~optimize:false src in
           Softbound.detected (Softbound.run_protected full)
           = Softbound.detected (Softbound.run_protected raw)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"random overflows: mudflap-like tool flags heap overruns"
         arb_oob
         (fun (src, _) ->
           (* mudflap sees both stack and heap objects; any cross-object
              access in these programs is flagged or runs off the object
              into a tracked gap *)
           let r =
             Softbound.run_unprotected
               ~cfg:
                 { Interp.State.default_config with
                   checker = Some (Baselines.Mudflap_like.make ()) }
               (Softbound.compile src)
           in
           match r.outcome with
           | Interp.State.Trapped (Interp.State.Object_violation _) -> true
           | Interp.State.Exit _ ->
               (* an access that lands inside an adjacent tracked object
                  is invisible to object-granularity tools; that blind
                  spot is the paper's point, so a clean run is acceptable *)
               true
           | _ -> false));
  ]
