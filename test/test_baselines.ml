(* Baseline-checker tests: each tool's strengths and characteristic blind
   spots, plus splay-tree model checking. *)

let run_ck mk src =
  let m = Softbound.compile src in
  Softbound.run_unprotected
    ~cfg:{ Interp.State.default_config with checker = Some (mk ()) }
    m

let detected (r : Interp.Vm.result) =
  match r.outcome with
  | Interp.State.Trapped (Interp.State.Object_violation _) -> true
  | _ -> false

let flags name mk src =
  Alcotest.test_case name `Quick (fun () ->
      if not (detected (run_ck mk src)) then
        Alcotest.fail "expected the checker to flag this program")

let passes name mk src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run_ck mk src in
      match r.outcome with
      | Interp.State.Exit _ -> ()
      | o -> Alcotest.fail (Interp.State.string_of_outcome o))

let heap_overflow =
  "int main(void) { char *p = (char*)malloc(8); p[10] = 1; return 0; }"

let stack_overflow_within_padding =
  "int emit(void) { char b[10]; double d = 0.0; b[10] = 1; return (int)d; } \
   int main(void) { return emit(); }"

let subobject_overflow =
  "typedef struct { char str[8]; long guard; } node_t; \
   int main(void) { node_t n; char *p = n.str; n.guard = 0; p[9] = 'x'; return (int)n.guard != 0; }"

let benign =
  "int main(void) { int a[50]; int i; int s = 0; \
   int *h = (int*)malloc(40 * sizeof(int)); \
   for (i = 0; i < 50; i++) a[i] = i; for (i = 0; i < 40; i++) h[i] = i; \
   for (i = 0; i < 40; i++) s += h[i] + a[i]; free(h); return s > 0; }"

let uaf =
  "int main(void) { int *p = (int*)malloc(8); free(p); return p[0]; }"

let suite =
  [
    (* --- Jones-Kelly style --- *)
    flags "JK flags cross-object pointer arithmetic" Baselines.Jones_kelly.make
      heap_overflow;
    passes "JK misses sub-object overflow (incompleteness, section 2.1)"
      Baselines.Jones_kelly.make subobject_overflow;
    passes "JK allows one-past-the-end" Baselines.Jones_kelly.make
      "int main(void) { int a[10]; int *p; for (p = a; p < a + 10; p++) *p = 1; return a[9]; }";
    passes "JK clean on benign program" Baselines.Jones_kelly.make benign;
    (* --- Memcheck style --- *)
    flags "Memcheck flags heap overrun (redzone)" Baselines.Memcheck_like.make
      heap_overflow;
    flags "Memcheck flags use-after-free" Baselines.Memcheck_like.make uaf;
    passes "Memcheck misses stack overflows (Table 4)"
      Baselines.Memcheck_like.make stack_overflow_within_padding;
    passes "Memcheck misses sub-object overflow" Baselines.Memcheck_like.make
      subobject_overflow;
    passes "Memcheck clean on benign program" Baselines.Memcheck_like.make
      benign;
    (* --- Mudflap style --- *)
    flags "Mudflap flags heap overrun" Baselines.Mudflap_like.make
      heap_overflow;
    flags "Mudflap flags stack overflow into padding"
      Baselines.Mudflap_like.make stack_overflow_within_padding;
    passes "Mudflap misses sub-object overflow" Baselines.Mudflap_like.make
      subobject_overflow;
    passes "Mudflap clean on benign program" Baselines.Mudflap_like.make
      benign;
    (* --- MSCC style --- *)
    Alcotest.test_case "MSCC catches whole-object overflow" `Quick (fun () ->
        let r = Baselines.Mscc.run (Softbound.compile heap_overflow) in
        Alcotest.(check bool) "detected" true (Softbound.detected r));
    Alcotest.test_case "MSCC misses sub-object overflow" `Quick (fun () ->
        let r = Baselines.Mscc.run (Softbound.compile subobject_overflow) in
        match r.outcome with
        | Interp.State.Exit _ -> ()
        | o -> Alcotest.fail (Interp.State.string_of_outcome o));
    (* --- splay tree --- *)
    Alcotest.test_case "splay: insert/find/remove" `Quick (fun () ->
        let t = Baselines.Splay.create () in
        ignore (Baselines.Splay.insert t ~base:100 ~size:10);
        ignore (Baselines.Splay.insert t ~base:300 ~size:20);
        ignore (Baselines.Splay.insert t ~base:200 ~size:5);
        Alcotest.(check (option (pair int int))) "in first"
          (Some (100, 10))
          (Baselines.Splay.find_containing t 105);
        Alcotest.(check (option (pair int int))) "boundary is outside" None
          (Baselines.Splay.find_containing t 110);
        Alcotest.(check (option (pair int int))) "in third"
          (Some (300, 20))
          (Baselines.Splay.find_containing t 319);
        ignore (Baselines.Splay.remove t ~base:100);
        Alcotest.(check (option (pair int int))) "removed" None
          (Baselines.Splay.find_containing t 105);
        Alcotest.(check int) "count" 2 (Baselines.Splay.size t));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"splay agrees with a Map model" ~count:200
         QCheck.(
           list
             (pair (int_bound 2)
                (pair (int_bound 50) (int_range 1 5))))
         (fun ops ->
           let t = Baselines.Splay.create () in
           let model = ref [] in
           List.iter
             (fun (op, (k, s)) ->
               let base = k * 10 in
               match op with
               | 0 ->
                   ignore (Baselines.Splay.insert t ~base ~size:s);
                   model := (base, s) :: List.remove_assoc base !model
               | 1 ->
                   ignore (Baselines.Splay.remove t ~base);
                   model := List.remove_assoc base !model
               | _ -> ())
             ops;
           (* containment queries agree on every probe point *)
           List.for_all
             (fun probe ->
               let expect =
                 List.find_opt
                   (fun (b, s) -> probe >= b && probe < b + s)
                   !model
               in
               Baselines.Splay.find_containing t probe = expect)
             (List.init 60 (fun i -> i * 9)))
      );
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"splay size tracks distinct keys" ~count:200
         QCheck.(list (int_bound 40))
         (fun keys ->
           let t = Baselines.Splay.create () in
           List.iter
             (fun k -> ignore (Baselines.Splay.insert t ~base:k ~size:1))
             keys;
           Baselines.Splay.size t = List.length (List.sort_uniq compare keys)));
  ]
