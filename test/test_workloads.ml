(* Workload integration tests: every benchmark runs cleanly in every
   protection configuration with identical output — the paper's "no false
   positives, no source modification" compatibility claim, measured. *)

let schemes : (string * Harness.Runner.scheme) list =
  [
    ("unprotected", Harness.Runner.Unprotected);
    ("sb-full-shadow", Harness.Runner.Softbound Harness.Runner.sb_full_shadow);
    ("sb-full-hash", Harness.Runner.Softbound Harness.Runner.sb_full_hash);
    ("sb-store-shadow", Harness.Runner.Softbound Harness.Runner.sb_store_shadow);
    ("mscc", Harness.Runner.Mscc);
    ("jones-kelly", Harness.Runner.Jones_kelly);
    ("memcheck", Harness.Runner.Memcheck);
    ("mudflap", Harness.Runner.Mudflap);
  ]

let suite =
  List.map
    (fun (w : Workloads.workload) ->
      Alcotest.test_case w.name `Quick (fun () ->
          let m = Harness.Runner.compile_workload w in
          let argv = w.quick_args in
          let reference = Harness.Runner.run ~argv Harness.Runner.Unprotected m in
          (match reference.outcome with
          | Interp.State.Exit 0 -> ()
          | o ->
              Alcotest.fail
                ("unprotected run failed: " ^ Interp.State.string_of_outcome o));
          List.iter
            (fun (name, scheme) ->
              let r = Harness.Runner.run ~argv scheme m in
              (match r.outcome with
              | Interp.State.Exit 0 -> ()
              | o ->
                  Alcotest.fail
                    (Printf.sprintf "%s under %s: %s" w.name name
                       (Interp.State.string_of_outcome o)));
              Alcotest.(check string)
                (w.name ^ " output under " ^ name)
                reference.stdout_text r.stdout_text)
            schemes))
    Workloads.all
  @ [
      Alcotest.test_case "pointer fractions match categories" `Quick
        (fun () ->
          let rows = Harness.Exp_fig1.run ~quick:true () in
          List.iter
            (fun (r : Harness.Exp_fig1.row) ->
              match r.workload.Workloads.name with
              | "go" | "lbm" | "hmmer" | "compress" | "ijpeg" ->
                  Alcotest.(check bool)
                    (r.workload.Workloads.name ^ " is scalar")
                    true (r.ptr_fraction < 0.05)
              | "treeadd" | "em3d" | "mst" | "perimeter" ->
                  Alcotest.(check bool)
                    (r.workload.Workloads.name ^ " is pointer-heavy")
                    true (r.ptr_fraction > 0.30)
              | _ -> ())
            rows);
      Alcotest.test_case "overheads ordered: full >= store, hash >= shadow"
        `Quick (fun () ->
          (* one representative from each side of Figure 2 *)
          List.iter
            (fun name ->
              let w = Option.get (Workloads.find name) in
              let row = Harness.Exp_fig2.run_one ~quick:true w in
              Alcotest.(check bool) (name ^ ": hash >= shadow") true
                (row.hash_full >= row.shadow_full -. 0.02);
              Alcotest.(check bool) (name ^ ": full >= store") true
                (row.shadow_full >= row.shadow_store -. 0.02))
            [ "compress"; "treeadd" ]);
      Alcotest.test_case "metadata ops track pointer ops" `Quick (fun () ->
          let w = Option.get (Workloads.find "treeadd") in
          let m = Harness.Runner.compile_workload w in
          let r =
            Harness.Runner.run ~argv:w.quick_args
              (Harness.Runner.Softbound Harness.Runner.sb_full_shadow)
              m
          in
          let s = r.stats in
          Alcotest.(check bool) "meta ops happen" true
            (s.Interp.State.meta_loads + s.Interp.State.meta_stores > 100));
      Alcotest.test_case "failing runs name the kernel and configuration"
        `Quick (fun () ->
          let m = Softbound.compile "int main(void) { return 3; }" in
          let r = Harness.Runner.run Harness.Runner.Unprotected m in
          match
            Harness.Runner.check_clean ~quick:true ~workload:"demo-kernel"
              ~scheme:"unprotected" r
          with
          | () -> Alcotest.fail "expected Workload_failed"
          | exception
              Harness.Runner.Workload_failed
                { workload = "demo-kernel"; scheme = "unprotected"; quick = true; outcome }
            -> Alcotest.(check string) "outcome recorded" "exit 3" outcome
          | exception e ->
              Alcotest.fail ("wrong exception: " ^ Printexc.to_string e));
    ]
