(* Attack-suite and BugBench integration tests: the Table 3 and Table 4
   claims, asserted programmatically. *)

let suite =
  List.map
    (fun (a : Attacks.Wilander.attack) ->
      Alcotest.test_case
        (Printf.sprintf "attack %02d: %s / %s" a.id a.technique a.target)
        `Quick
        (fun () ->
          let row = Harness.Exp_table3.run_one a in
          Alcotest.(check bool)
            "hijacks when unprotected" true row.hijacks_unprotected;
          Alcotest.(check bool) "full checking detects" true row.detected_full;
          Alcotest.(check bool)
            "store-only detects" true row.detected_store_only))
    Attacks.Wilander.all
  @ List.map
      (fun (p : Attacks.Bugbench.program) ->
        Alcotest.test_case ("bugbench " ^ p.name) `Quick (fun () ->
            let row = Harness.Exp_table4.run_one p in
            let v, m, s, f =
              match List.assoc_opt p.name Harness.Exp_table4.expected with
              | Some e -> e
              | None -> Alcotest.fail "program missing from Table 4"
            in
            Alcotest.(check bool) "runs silently when unprotected" true
              row.runs_clean_unprotected;
            Alcotest.(check bool) "valgrind-like verdict" v row.valgrind;
            Alcotest.(check bool) "mudflap-like verdict" m row.mudflap;
            Alcotest.(check bool) "sb store-only verdict" s row.sb_store;
            Alcotest.(check bool) "sb full verdict" f row.sb_full))
      Attacks.Bugbench.all
  @ [
      Alcotest.test_case "table 1 probes: SoftBound sweeps all attributes"
        `Quick (fun () ->
          let rows = Harness.Exp_table1.run () in
          let sb = List.find (fun r -> r.Harness.Exp_table1.scheme = "SoftBound") rows in
          let m = function
            | Harness.Exp_table1.Measured b -> b
            | Harness.Exp_table1.Literature b -> b
          in
          Alcotest.(check bool) "complete" true (m sb.complete_subfield);
          Alcotest.(check bool) "layout" true (m sb.layout_unchanged);
          Alcotest.(check bool) "casts" true (m sb.arbitrary_casts));
      Alcotest.test_case "table 1 probes: object table misses subfield"
        `Quick (fun () ->
          let rows = Harness.Exp_table1.run () in
          let jk =
            List.find
              (fun r ->
                r.Harness.Exp_table1.scheme = "JKRLDA-style (object table)")
              rows
          in
          match jk.complete_subfield with
          | Harness.Exp_table1.Measured b ->
              Alcotest.(check bool) "incomplete" false b
          | _ -> Alcotest.fail "expected a measured cell");
    ]
