(* End-to-end interpreter tests: MiniC programs whose exit code or output
   pins down C semantics (arithmetic, control flow, calls, memory). *)

let run ?(argv = []) ?(inputs = []) src =
  let m = Softbound.compile src in
  Softbound.run_unprotected
    ~cfg:{ Interp.State.default_config with argv; inputs }
    m

let exits name expected src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      match r.outcome with
      | Interp.State.Exit n -> Alcotest.(check int) name expected n
      | o ->
          Alcotest.fail
            (Interp.State.string_of_outcome o ^ "\n" ^ r.stdout_text))

let prints name expected src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      (match r.outcome with
      | Interp.State.Exit _ -> ()
      | o -> Alcotest.fail (Interp.State.string_of_outcome o));
      Alcotest.(check string) name expected r.stdout_text)

(* Pin an exit code under the closure and decode engines, unprotected
   and SoftBound-instrumented — four runs per case, so builtin-semantics
   fixes hold on every execution path (raw dispatch and _sb_ wrappers). *)
let both_engines name expected src =
  Alcotest.test_case name `Quick (fun () ->
      let m = Softbound.compile src in
      List.iter
        (fun engine ->
          let cfg = { Interp.State.default_config with engine } in
          List.iter
            (fun (tag, r) ->
              match (r : Interp.Vm.result).outcome with
              | Interp.State.Exit n ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s [%s, %s]" name
                       (Interp.State.engine_name engine) tag)
                    expected n
              | o ->
                  Alcotest.fail
                    (Interp.State.string_of_outcome o ^ "\n" ^ r.stdout_text))
            [
              ("unprotected", Softbound.run_unprotected ~cfg m);
              ("softbound", Softbound.run_protected ~cfg m);
            ])
        [ Interp.State.Eng_closure; Interp.State.Eng_decode ])

let traps name pred src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      match r.outcome with
      | Interp.State.Trapped t when pred t -> ()
      | o -> Alcotest.fail (Interp.State.string_of_outcome o))

let suite =
  [
    (* --- arithmetic semantics --- *)
    exits "signed division truncates toward zero" 1
      "int main(void) { return (-7) / 2 == -3 && (-7) % 2 == -1; }";
    exits "unsigned comparison" 1
      "int main(void) { unsigned int a = 0xffffffffu; return a > 5u; }";
    exits "int overflow wraps at 32 bits" 1
      "int main(void) { int x = 0x7fffffff; x = x + 1; return x < 0; }";
    exits "char is signed and widens" 1
      "int main(void) { char c = (char)200; return c < 0; }";
    exits "unsigned char stays positive" 200
      "int main(void) { unsigned char c = (unsigned char)200; return c; }";
    exits "shifts" 1
      "int main(void) { int a = 1 << 10; int b = -16 >> 2; unsigned int c = 0x80000000u >> 31; return a == 1024 && b == -4 && c == 1u; }";
    exits "bitwise operators" 1
      "int main(void) { return (0xf0 & 0x3c) == 0x30 && (0xf0 | 0x0f) == 0xff && (0xff ^ 0x0f) == 0xf0 && (~0) == -1; }";
    exits "float arithmetic and conversion" 1
      "int main(void) { double d = 7.0 / 2.0; int i = (int)d; float f = 0.5f; return i == 3 && d > 3.49 && d < 3.51 && f + f == 1.0; }";
    exits "negative float to int truncates toward zero" 1
      "int main(void) { double d = -2.7; return (int)d == -2; }";
    exits "integer promotion in mixed arithmetic" 1
      "int main(void) { char c = 100; char d = 100; int s = c + d; return s == 200; }";
    exits "long arithmetic" 1
      "int main(void) { long big = 1L << 40; return big / (1L << 20) == (1L << 20); }";
    exits "division by zero traps" 0
      "int main(void) { return 0; }"
    (* real div-by-zero test below via traps *);
    traps "division by zero is a runtime error"
      (function Interp.State.Runtime_error _ -> true | _ -> false)
      "int main(int argc, char **argv) { int z = argc - 1; return 5 / z; }";
    (* --- control flow --- *)
    exits "for/while/do loops" 55
      "int main(void) { int s = 0; int i; for (i = 1; i <= 5; i++) s += i; \
       int j = 6; while (j <= 8) { s += j; j++; } \
       int k = 9; do { s += k; k++; } while (k <= 10); return s; }";
    exits "break and continue" 25
      "int main(void) { int s = 0; int i; for (i = 0; i < 100; i++) { \
       if (i % 2 == 0) continue; if (i > 9) break; s += i; } return s; }";
    exits "switch with fallthrough" 6
      "int main(void) { int s = 0; switch (2) { case 1: s += 1; case 2: s += 2; case 3: s += 4; break; case 4: s += 8; } return s; }";
    exits "switch default" 7
      "int main(void) { switch (42) { case 1: return 1; default: return 7; } }";
    exits "nested loops with break" 9
      "int main(void) { int c = 0; int i; int j; for (i = 0; i < 3; i++) for (j = 0; j < 5; j++) { if (j == 3) break; c++; } return c; }";
    exits "short circuit evaluation" 1
      "int calls; int bump(void) { calls++; return 1; } \
       int main(void) { int r = 0 && bump(); int s = 1 || bump(); return r == 0 && s == 1 && calls == 0; }";
    exits "ternary" 42
      "int main(void) { int x = 5; return x > 3 ? 42 : 7; }";
    (* --- functions --- *)
    exits "recursion (fib)" 55
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }";
    exits "mutual recursion" 1
      "int is_odd(int n); int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); } \
       int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); } int main(void) { return is_even(10); }";
    exits "function pointer dispatch" 7
      "int add(int a, int b) { return a + b; } int mul(int a, int b) { return a * b; } \
       int apply(int (*op)(int, int), int a, int b) { return op(a, b); } \
       int main(void) { return apply(add, 3, 4) == 7 && apply(mul, 3, 4) == 12 ? 7 : 0; }";
    exits "function pointer array" 10
      "int inc(int x) { return x + 1; } int dbl(int x) { return x * 2; } \
       int main(void) { int (*ops[2])(int); ops[0] = inc; ops[1] = dbl; return ops[0](4) + ops[1](2) + 1; }";
    exits "user varargs" 10
      "int sum(int n, ...) { va_list ap; int s = 0; int i; va_start(ap); \
       for (i = 0; i < n; i++) s += va_arg_int(ap); va_end(ap); return s; } \
       int main(void) { return sum(4, 1, 2, 3, 4); }";
    exits "varargs with mixed types" 1
      "double avg(int n, ...) { va_list ap; double s = 0.0; int i; va_start(ap); \
       for (i = 0; i < n; i++) s += va_arg_double(ap); return s / (double)n; } \
       int main(void) { double a = avg(2, 1.0, 3.0); return a == 2.0; }";
    exits "setjmp/longjmp basic" 42
      "int main(void) { jmp_buf jb; int v = setjmp(jb); if (v == 42) return 42; longjmp(jb, 42); return 1; }";
    exits "longjmp unwinds nested calls" 7
      "jmp_buf jb; void deep(int n) { if (n == 0) longjmp(jb, 7); deep(n - 1); } \
       int main(void) { int v = setjmp(jb); if (v) return v; deep(5); return 0; }";
    exits "longjmp with zero becomes one" 1
      "int main(void) { jmp_buf jb; int v = setjmp(jb); if (v) return v; longjmp(jb, 0); return 9; }";
    (* --- memory --- *)
    exits "malloc and pointer writes" 99
      "int main(void) { int *p = (int*)malloc(10 * sizeof(int)); p[9] = 99; return p[9]; }";
    exits "calloc zeroes" 1
      "int main(void) { int *p = (int*)calloc(8, sizeof(int)); return p[5] == 0; }";
    exits "realloc grows preserving data" 7
      "int main(void) { int *p = (int*)malloc(2 * sizeof(int)); p[1] = 7; \
       p = (int*)realloc(p, 100 * sizeof(int)); p[99] = 1; return p[1]; }";
    exits "pointer difference" 5
      "int main(void) { int a[10]; int *p = &a[2]; int *q = &a[7]; return (int)(q - p); }";
    exits "negative indexing from interior pointer" 3
      "int main(void) { int a[10]; a[2] = 3; int *p = &a[5]; return p[-3]; }";
    exits "linked list" 15
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t *head = NULL; int i; for (i = 1; i <= 5; i++) { \
       n_t *x = (n_t*)malloc(sizeof(n_t)); x->v = i; x->next = head; head = x; } \
       int s = 0; while (head) { s += head->v; head = head->next; } return s; }";
    exits "struct copy by assignment" 3
      "struct p { int x; int y; }; int main(void) { struct p a; struct p b; a.x = 1; a.y = 2; b = a; a.x = 9; return b.x + b.y; }";
    exits "struct copy copies nested arrays" 1
      "struct s { int a[4]; }; int main(void) { struct s x; struct s y; x.a[3] = 5; y = x; x.a[3] = 0; return y.a[3] == 5; }";
    exits "union shares storage" 1
      "union u { int i; unsigned char b[4]; }; int main(void) { union u x; x.i = 0x01020304; return x.b[0] == 4 && x.b[3] == 1; }";
    exits "2d array indexing" 1
      "int main(void) { int m[3][4]; int i; int j; for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) m[i][j] = i * 10 + j; \
       return m[2][3] == 23 && m[0][0] == 0 && m[1][2] == 12; }";
    exits "global initializers" 1
      "int g = 42; int arr[4] = {1, 2, 3}; char *s = \"xyz\"; int *gp = &g; \
       int main(void) { return g == 42 && arr[2] == 3 && arr[3] == 0 && s[1] == 'y' && *gp == 42; }";
    exits "global struct initializer" 1
      "struct cfg { int a; char name[4]; int b; }; struct cfg c = {7, \"hi\", 9}; \
       int main(void) { return c.a == 7 && c.name[0] == 'h' && c.name[2] == 0 && c.b == 9; }";
    exits "local composite init zero-fills" 1
      "int main(void) { int a[8] = {1}; return a[0] == 1 && a[7] == 0; }";
    exits "string library" 1
      "int main(void) { char buf[32]; strcpy(buf, \"hello\"); strcat(buf, \" world\"); \
       return strlen(buf) == 11 && strcmp(buf, \"hello world\") == 0 && strncmp(buf, \"hello!\", 5) == 0 \
       && strchr(buf, 'w') == buf + 6 && memcmp(buf, \"hell\", 4) == 0; }";
    exits "memset and memcpy" 1
      "int main(void) { char a[8]; char b[8]; memset(a, 7, 8); memcpy(b, a, 8); return b[0] == 7 && b[7] == 7; }";
    exits "strdup allocates a copy" 1
      "int main(void) { char *s = strdup(\"abc\"); s[0] = 'x'; return strcmp(s, \"xbc\") == 0; }";
    exits "atoi/atol/atof" 1
      "int main(void) { return atoi(\"42\") == 42 && atol(\"-7\") == -7L && atof(\"2.5\") == 2.5; }";
    (* the conversion family parses the longest valid C prefix — not
       OCaml's whole-string syntax.  Pinned under both engines: these
       run through the checked _sb_ wrappers in protected builds too,
       via the engines' shared builtin dispatch. *)
    both_engines "atoi: trailing junk is ignored (C prefix rule)" 1
      "int main(void) { return atoi(\"42abc\") == 42 && atol(\"42abc\") == 42L; }";
    both_engines "atoi: 0x is not a decimal prefix" 1
      "int main(void) { return atoi(\"0x2A\") == 0 && atol(\"0x2A\") == 0L; }";
    both_engines "atoi: underscores are junk, not digit separators" 1
      "int main(void) { return atoi(\"1_000\") == 1 && atol(\"1_000\") == 1L; }";
    both_engines "atoi: leading whitespace then sign" 1
      "int main(void) { return atoi(\" \\t-42xyz\") == -42 && atoi(\"   \") == 0 \
       && atoi(\"\") == 0 && atoi(\"abc\") == 0 && atoi(\"+7 \") == 7; }";
    both_engines "atof: trailing junk and partial forms" 1
      "int main(void) { return atof(\"3.5x\") == 3.5 && atof(\"3.\") == 3.0 \
       && atof(\".5z\") == 0.5 && atof(\"-2.5e2junk\") == -250.0; }";
    both_engines "atof: junk-only, empty, and non-exponent e" 1
      "int main(void) { return atof(\"abc\") == 0.0 && atof(\"\") == 0.0 \
       && atof(\"1e\") == 1.0 && atof(\"1e+x\") == 1.0 && atof(\"0x10\") == 0.0 \
       && atof(\" \\t7junk\") == 7.0; }";
    Alcotest.test_case "sim_recv feeds input lines" `Quick (fun () ->
        let r =
          run ~inputs:[ "hello" ]
            "int main(void) { char buf[64]; int n = sim_recv(buf, 64); return n == 5 && strcmp(buf, \"hello\") == 0; }"
        in
        match r.outcome with
        | Interp.State.Exit 1 -> ()
        | o -> Alcotest.fail (Interp.State.string_of_outcome o));
    exits "qsort sorts with an interpreted comparator" 1
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = (i * 5 + 2) % 13; \
       qsort(a, 8, sizeof(int), cmp); \
       for (i = 1; i < 8; i++) if (a[i-1] > a[i]) return 0; return 1; }";
    exits "qsort handles duplicates and empty" 1
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int a[6]; int i; for (i = 0; i < 6; i++) a[i] = i % 2; \
       qsort(a, 6, sizeof(int), cmp); qsort(a, 0, sizeof(int), cmp); \
       return a[0] == 0 && a[5] == 1; }";
    exits "bsearch finds and misses" 1
      "int cmp(void *a, void *b) { return *(int*)a - *(int*)b; } \
       int main(void) { int a[5]; int i; for (i = 0; i < 5; i++) a[i] = i * 10; \
       int k = 30; int *hit = (int*)bsearch(&k, a, 5, sizeof(int), cmp); \
       int k2 = 31; int *miss = (int*)bsearch(&k2, a, 5, sizeof(int), cmp); \
       return hit != NULL && *hit == 30 && miss == NULL; }";
    exits "qsort of structs by field" 1
      "typedef struct { int key; int val; } rec; \
       int by_key(void *a, void *b) { return ((rec*)a)->key - ((rec*)b)->key; } \
       int main(void) { rec r[4]; int i; for (i = 0; i < 4; i++) { r[i].key = 9 - i; r[i].val = i; } \
       qsort(r, 4, sizeof(rec), by_key); \
       return r[0].key == 6 && r[0].val == 3 && r[3].key == 9 && r[3].val == 0; }";
    exits "strtol parses prefix and sets end pointer" 1
      "int main(void) { char *end; long v = strtol(\"42abc\", &end, 10); \
       long h = strtol(\"ff\", NULL, 16); \
       return v == 42 && strcmp(end, \"abc\") == 0 && h == 255; }";
    exits "ctype helpers" 1
      "int main(void) { return toupper('a') == 'A' && tolower('Z') == 'z' \
       && isdigit('5') && !isdigit('x') && isalpha('g') && isspace(' ') \
       && isupper('Q') && islower('q'); }";
    exits "strrchr finds the last occurrence" 1
      "int main(void) { char *s = \"a.b.c\"; char *p = strrchr(s, '.'); return p == s + 3; }";
    exits "memchr" 1
      "int main(void) { char b[8]; memset(b, 0, 8); b[5] = 7; \
       char *p = (char*)memchr(b, 7, 8); char *q = (char*)memchr(b, 9, 8); \
       return p == b + 5 && q == NULL; }";
    exits "static locals persist across calls" 1
      "int counter(void) { static int c = 10; c++; return c; } \
       int main(void) { counter(); counter(); return counter() == 13; }";
    exits "static locals are zero-initialized by default" 1
      "int probe(void) { static int z; static char buf[8]; return z == 0 && buf[7] == 0; } \
       int main(void) { return probe(); }";
    exits "static locals in different functions are distinct" 1
      "int f(void) { static int x = 1; return x++; } \
       int g(void) { static int x = 100; return x++; } \
       int main(void) { f(); g(); return f() == 2 && g() == 101; }";
    exits "static array survives return (unlike stack arrays)" 1
      "char *mk(void) { static char b[8]; strcpy(b, \"ok\"); return b; } \
       int main(void) { char *p = mk(); return strcmp(p, \"ok\") == 0; }";
    (* --- io / printf --- *)
    prints "printf conversions" "n=-42 u=7 x=ff c=A s=str f=1.500000 pct=%\n"
      {|int main(void) { printf("n=%d u=%u x=%x c=%c s=%s f=%f pct=%%\n", -42, 7u, 255, 'A', "str", 1.5); return 0; }|};
    prints "printf width and precision" "[  42] [3.14]\n"
      {|int main(void) { printf("[%4d] [%.2f]\n", 42, 3.14159); return 0; }|};
    prints "puts appends newline" "hello\n"
      {|int main(void) { puts("hello"); return 0; }|};
    prints "sprintf writes to buffer" "v=7!\n"
      {|int main(void) { char b[32]; sprintf(b, "v=%d", 7); printf("%s!\n", b); return 0; }|};
    prints "snprintf truncates" "abc\n"
      {|int main(void) { char b[4]; snprintf(b, 4, "%s", "abcdef"); printf("%s\n", b); return 0; }|};
    (* --- argv --- *)
    Alcotest.test_case "argv passing" `Quick (fun () ->
        let r =
          run ~argv:[ "13"; "xyz" ]
            "int main(int argc, char **argv) { return argc == 3 && atoi(argv[1]) == 13 && strcmp(argv[2], \"xyz\") == 0; }"
        in
        match r.outcome with
        | Interp.State.Exit 1 -> ()
        | o -> Alcotest.fail (Interp.State.string_of_outcome o));
    (* --- lvalue/expression subtleties --- *)
    exits "pre/post increment" 1
      "int main(void) { int x = 5; int a = x++; int b = ++x; return a == 5 && b == 7 && x == 7; }";
    exits "pointer increment walks elements" 1
      "int main(void) { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; int *p = a; p++; return *p == 2 && *(p + 1) == 3; }";
    exits "compound assignment on array element" 1
      "int main(void) { int a[3]; a[1] = 10; a[1] += 5; a[1] *= 2; a[1] >>= 1; return a[1] == 15; }";
    exits "compound assignment evaluates lvalue once" 1
      "int idx; int *slot(int *a) { idx++; return &a[1]; } \
       int main(void) { int a[3]; a[1] = 1; *slot(a) += 5; return idx == 1 && a[1] == 6; }";
    exits "comma operator" 7
      "int main(void) { int x = (1, 2, 7); return x; }";
    exits "assignment value" 1
      "int main(void) { int a; int b; a = b = 21; return a + b == 42; }";
    exits "address of global array element" 1
      "int g[10]; int main(void) { int *p = &g[4]; *p = 9; return g[4] == 9; }";
    exits "sizeof values" 1
      "struct s { char c; long l; }; int main(void) { return sizeof(char) == 1 && sizeof(short) == 2 \
       && sizeof(int) == 4 && sizeof(long) == 8 && sizeof(void*) == 8 && sizeof(struct s) == 16 \
       && sizeof(double) == 8 && sizeof(float) == 4; }";
    exits "exit builtin" 33
      "int main(void) { exit(33); return 0; }";
    exits "rand is deterministic with seed" 1
      "int main(void) { srand(5); int a = rand(); srand(5); int b = rand(); return a == b && a >= 0; }";
    (* --- torture: semantic corners --- *)
    exits "operator precedence corners" 1
      "int main(void) { return (2 + 3 * 4 == 14) && (1 << 2 + 1 == 8) && ((1 & 3) == 1) \
       && (4 | 1 ^ 1 == 4 | 0) && (-2 * -3 == 6) && (10 - 4 - 3 == 3); }";
    exits "nested ternary associates right" 2
      "int main(void) { int x = 1; return x == 0 ? 0 : x == 1 ? 2 : 3; }";
    exits "comma in for header" 1
      "int main(void) { int i; int j; int s = 0; \
       for (i = 0, j = 10; i < j; i++, j--) s++; return s == 5; }";
    exits "do-while with continue re-tests the condition" 4
      "int main(void) { int i = 0; int n = 0; \
       do { i++; if (i % 2) continue; n++; } while (i < 8); return n; }";
    exits "deep block shadowing" 6
      "int main(void) { int x = 1; { int x = 2; { int x = 3; x++; } x++; } x++; \
       { int x = 4; x++; } return x + 4; }";
    exits "char comparisons and arithmetic" 1
      "int main(void) { char a = 'z'; char b = 'a'; return a - b == 25 && 'A' < 'B' && '0' == 48; }";
    exits "unsigned division and modulo" 1
      "int main(void) { unsigned int a = 0xfffffff0u; return a / 16u == 0x0fffffffu && a % 7u == 2u; }";
    exits "variable shift amounts" 1
      "int main(void) { int n = 5; int x = 1; int i; for (i = 0; i < n; i++) x <<= 1; return x == 32; }";
    exits "struct inside union" 1
      "union u { struct { int a; int b; } s; long whole; }; \
       int main(void) { union u x; x.s.a = 1; x.s.b = 2; \
       return (x.whole & 0xffffffffL) == 1 && (x.whole >> 32) == 2; }";
    exits "array of structs" 1
      "struct pt { int x; int y; }; \
       int main(void) { struct pt ps[4]; int i; for (i = 0; i < 4; i++) { ps[i].x = i; ps[i].y = i * i; } \
       return ps[3].x == 3 && ps[3].y == 9 && ps[0].y == 0; }";
    exits "pointer to pointer mutation" 1
      "int main(void) { int a = 1; int b = 2; int *p = &a; int **pp = &p; \
       **pp = 9; *pp = &b; **pp = 8; return a == 9 && b == 8; }";
    exits "function pointer stored in struct field" 1
      "int twice(int x) { return 2 * x; } \
       struct ops { int (*apply)(int); int bias; }; \
       int main(void) { struct ops o; o.apply = twice; o.bias = 1; \
       return o.apply(10) + o.bias == 21; }";
    exits "enum values in arithmetic and switch" 1
      "enum { RED, GREEN = 5, BLUE }; \
       int main(void) { int c = BLUE; switch (c) { case GREEN + 1: return RED + 1; default: return 0; } }";
    exits "strncpy pads with zeros" 1
      "int main(void) { char b[8]; memset(b, 'x', 8); strncpy(b, \"ab\", 6); \
       return b[0] == 'a' && b[2] == 0 && b[5] == 0 && b[6] == 'x'; }";
    exits "strncat respects the limit" 1
      "int main(void) { char b[16]; strcpy(b, \"one\"); strncat(b, \"twothree\", 3); \
       return strcmp(b, \"onetwo\") == 0; }";
    exits "sizeof array parameter decays to pointer size" 1
      "long probe(int a[]) { return sizeof(a); } \
       int main(void) { int arr[32]; return probe(arr) == 8 && sizeof(arr) == 128; }";
    exits "negative modulo follows C semantics" 1
      "int main(void) { return (-9) % 4 == -1 && 9 % -4 == 1; }";
    exits "float equality after exact arithmetic" 1
      "int main(void) { double a = 0.25; double b = a + a + a + a; return b == 1.0 && 0.5f + 0.5f == 1.0f; }";
    exits "global initializer referencing earlier global" 1
      "int base[4] = {9, 8, 7, 6}; int *third = &base[2]; \
       int main(void) { return *third == 7; }";
    exits "chained assignment through array elements" 1
      "int main(void) { int a[3]; a[0] = a[1] = a[2] = 5; return a[0] + a[1] + a[2] == 15; }";
    exits "logical operators yield exactly 0 or 1" 1
      "int main(void) { int x = 42; return (x && 7) == 1 && (!x) == 0 && (!!x) == 1 && (0 || 99) == 1; }";
    exits "while loop over string characters" 1
      "int main(void) { char *s = \"hello world\"; int spaces = 0; \
       while (*s) { if (*s == ' ') spaces++; s++; } return spaces; }";
    exits "recursive struct copy preserves pointer fields" 1
      "typedef struct n { int v; struct n *next; } n_t; \
       int main(void) { n_t a; n_t b; n_t c; a.v = 1; a.next = &c; c.v = 3; c.next = NULL; \
       b = a; return b.next->v == 3; }";
    exits "unsigned char wraparound in loop" 1
      "int main(void) { unsigned char c = 250; int steps = 0; \
       while (c != 4) { c++; steps++; if (steps > 300) return 0; } return steps == 10; }";
    exits "hex and char escapes in strings" 1
      {|int main(void) { char *s = "aA	b"; return s[1] == 'A' && s[2] == 9 && strlen(s) == 4; }|};
    exits "conditional expression selects lvalue-read correctly" 7
      "int main(void) { int a = 3; int b = 4; return (a < b ? b : a) + a; }";
    (* --- faults --- *)
    traps "null dereference segfaults"
      (function Interp.State.Segfault _ -> true | _ -> false)
      "int main(void) { int *p = NULL; return *p; }";
    traps "wild pointer segfaults"
      (function Interp.State.Segfault _ -> true | _ -> false)
      "int main(void) { long *p = (long*)0x50; return (int)*p; }";
    traps "stack exhaustion is detected"
      (function
        | Interp.State.Runtime_error _ | Interp.State.Segfault _ -> true
        | _ -> false)
      "int boom(int n) { int pad[64]; pad[0] = n; return boom(n + 1) + pad[0]; } int main(void) { return boom(0); }";
    traps "abort builtin traps"
      (function Interp.State.Runtime_error _ -> true | _ -> false)
      "int main(void) { abort(); return 0; }";
    traps "assert failure traps"
      (function Interp.State.Runtime_error _ -> true | _ -> false)
      "int main(void) { assert(1 == 2); return 0; }";
  ]
