(* Parallel harness drivers: Parutil semantics, and the determinism
   contract — a parallel run's merged output equals the sequential
   run's, outcome for outcome, because results merge in input order and
   every unit of work is self-contained. *)

module P = Parutil

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    tc "parmap: results in input order, any jobs" (fun () ->
        let xs = List.init 23 Fun.id in
        let f x = (x * 7) + 1 in
        List.iter
          (fun jobs ->
            Alcotest.(check (list int))
              (Printf.sprintf "jobs=%d" jobs)
              (List.map f xs)
              (P.parmap ~jobs f xs))
          [ 1; 2; 3; 8; 64 ]);
    tc "parmap: jobs exceeding items is fine" (fun () ->
        Alcotest.(check (list int))
          "singleton" [ 42 ]
          (P.parmap ~jobs:8 (fun x -> x) [ 42 ]));
    tc "parmap: failures report identically at any jobs width" (fun () ->
        (* several items fail with distinct errors; every width must
           report the lowest-index failure, like the sequential run *)
        let f x = if x mod 3 = 1 then failwith (Printf.sprintf "boom-%d" x) else x in
        let xs = List.init 20 Fun.id in
        List.iter
          (fun jobs ->
            Alcotest.check_raises
              (Printf.sprintf "jobs=%d reports the index-1 failure" jobs)
              (Failure "boom-1")
              (fun () -> ignore (P.parmap ~jobs f xs)))
          [ 1; 2; 3; 8 ]);
    tc "parmap: failure determinism is repeatable under racing" (fun () ->
        (* jitter the work so different domains hit their failures in
           different wall-clock orders; the report must not move *)
        let f x =
          let spin = (x * 37) mod 11 in
          let acc = ref 0 in
          for i = 0 to spin * 1000 do acc := !acc + i done;
          ignore !acc;
          if x = 7 || x = 13 || x = 18 then failwith (Printf.sprintf "f%d" x)
          else x
        in
        let xs = List.init 24 Fun.id in
        for _ = 1 to 20 do
          Alcotest.check_raises "always the lowest index (7)" (Failure "f7")
            (fun () -> ignore (P.parmap ~jobs:4 f xs))
        done);
    tc "parmap: available_jobs is positive" (fun () ->
        Alcotest.(check bool) "positive" true (P.available_jobs () > 0));
    tc "fuzz campaign: jobs=3 report equals jobs=1, outcome for outcome"
      (fun () ->
        let run jobs =
          Fuzz.run_campaign ~shrink:false ~max_steps:200_000 ~jobs ~seed:11
            ~count:24 ()
        in
        let seq = run 1 and par = run 3 in
        Alcotest.(check int) "tested" seq.Fuzz.tested par.Fuzz.tested;
        Alcotest.(check int) "skipped" seq.Fuzz.skipped par.Fuzz.skipped;
        Alcotest.(check int) "trap cases" seq.Fuzz.trap_cases
          par.Fuzz.trap_cases;
        Alcotest.(check bool) "findings (order included)" true
          (seq.Fuzz.findings = par.Fuzz.findings);
        Alcotest.(check string) "rendered report" (Fuzz.render seq)
          (Fuzz.render par));
    tc "experiment rows: parallel fan-out equals sequential run" (fun () ->
        (* a slice of the elim matrix: enough to drive the shared
           transform/compile caches from several domains at once *)
        let ws =
          List.filter
            (fun w ->
              List.mem w.Workloads.name
                [ "compress"; "bisort"; "treeadd"; "mst" ])
            Workloads.all
        in
        let seq = List.map (Harness.Exp_elim.run_one ~quick:true) ws in
        let par =
          P.parmap ~jobs:4 (Harness.Exp_elim.run_one ~quick:true) ws
        in
        Alcotest.(check bool) "identical rows" true (seq = par));
  ]
