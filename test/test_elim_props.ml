(* Elimination soundness, stated over the site ids the transformation
   stamps before Elim runs (so numbering is identical with the pass on
   and off, and "elided" is literally the set difference).

   Static property: every check the pass removes is covered by a
   surviving check with the same pointer/base/bound operands and at
   least its width, either at a dominating position in the
   pre-elimination function or hoisted by the loop pass (detectable as
   a surviving identical check whose original position shares a natural
   loop with the elided one).

   Dynamic property: with the trace ring capturing every executed
   check, the elim-on run touches exactly the same set of
   (address, size) pairs as the elim-off run, and never checks any of
   them more often.  Together these are the "never weakens detection"
   claim of lib/core/elim.ml as executable properties. *)

module Ir = Sbir.Ir
module Dom = Sbir.Dom
module Gen = Fuzz.Gen

let no_elim =
  { Softbound.Config.default with Softbound.Config.eliminate_checks = false }

(* ---- static coverage ---- *)

type chk = {
  c_func : string;
  c_blk : int;
  c_idx : int;  (** instruction index within the block *)
  c_key : Ir.operand * Ir.operand * Ir.operand;  (** ptr, base, bound *)
  c_size : int;
}

(** All [Check] sites of an instrumented module, keyed by site id. *)
let check_sites (m : Ir.modul) : (int, chk) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Ir.iter_funcs m (fun f ->
      Array.iteri
        (fun bi b ->
          List.iteri
            (fun ii inst ->
              match inst with
              | Ir.Check (p, base, bound, size, site) when site > 0 ->
                  Hashtbl.replace tbl site
                    { c_func = f.Ir.fname; c_blk = bi; c_idx = ii;
                      c_key = (p, base, bound); c_size = size }
              | _ -> ())
            b.Ir.insts)
        f.Ir.fblocks);
  tbl

(** Site ids covered by a surviving widened/coalesced span check: the
    stamped site plus, for coalesced spans, every member's site.  A span
    subsumes its member checks by construction (the widening pass only
    emits it when the progression covers exactly the member addresses),
    so an elided [Check] whose id appears here is soundly covered. *)
let span_sites (m : Ir.modul) : (int, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  Ir.iter_funcs m (fun f ->
      Array.iter
        (fun b ->
          List.iter
            (fun inst ->
              match inst with
              | Ir.CheckSpan sp ->
                  Hashtbl.replace tbl sp.Ir.sp_site ();
                  Array.iter
                    (fun s -> Hashtbl.replace tbl s ())
                    sp.Ir.sp_sites
              | _ -> ())
            b.Ir.insts)
        f.Ir.fblocks);
  tbl

(** Does some surviving check cover the elided one?  [doms]/[loops] are
    computed over the function in the {e pre-elimination} module, where
    both instructions still exist at their original positions. *)
let covered ~doms ~loops ~(pre : (int, chk) Hashtbl.t) ~surviving
    (e : chk) : bool =
  Hashtbl.fold
    (fun site (c : chk) found ->
      found
      || (site > 0
         && Hashtbl.mem surviving site
         && c.c_func = e.c_func && c.c_key = e.c_key && c.c_size >= e.c_size
         && ((if c.c_blk = e.c_blk then c.c_idx < e.c_idx
              else Dom.dominates doms c.c_blk e.c_blk)
            || List.exists
                 (fun (l : Dom.loop) ->
                   l.Dom.body.(c.c_blk) && l.Dom.body.(e.c_blk))
                 loops)))
    pre false

let assert_static_sound src =
  let m = Softbound.compile src in
  let pre_m, _ = Softbound.instrument_with_sites ~opts:no_elim m in
  let post_m, _ = Softbound.instrument_with_sites m in
  let pre = check_sites pre_m and post = check_sites post_m in
  let spanned = span_sites post_m in
  (* site numbering is emission-order, before Elim: identical across
     the two instruments of the same module *)
  Ir.iter_funcs pre_m (fun f ->
      let doms = Dom.compute f in
      let loops = Dom.natural_loops doms in
      Hashtbl.iter
        (fun site (e : chk) ->
          if
            e.c_func = f.Ir.fname
            && (not (Hashtbl.mem post site))
            && not (Hashtbl.mem spanned site)
          then
            if not (covered ~doms ~loops ~pre ~surviving:post e) then
              Alcotest.failf
                "unsound elision: site %d (%s B%d#%d, width %d) has no \
                 covering surviving check"
                site e.c_func e.c_blk e.c_idx e.c_size)
        pre)

(* ---- dynamic coverage ---- *)

let trace_cfg =
  { Interp.State.default_config with Interp.State.trace_depth = 1 lsl 17 }

(** Multiset of (address, size) pairs hit by executed bounds checks. *)
let checked_addrs (r : Interp.Vm.result) : (int * int, int) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun ev ->
      match ev with
      | Obs.E_check { addr; size; _ } ->
          let k = (addr, size) in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | Obs.E_check_span { first; count; stride; width; _ } ->
          (* a widened span check covers the whole progression: expand
             it back into the per-element pairs the unwidened run emits
             as individual E_check events *)
          for k = 0 to count - 1 do
            let key = (first + (k * stride), width) in
            Hashtbl.replace tbl key
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
          done
      | _ -> ())
    (Obs.events r.Interp.Vm.obs);
  tbl

let assert_dynamic_sound src =
  let m = Softbound.compile src in
  let on = Softbound.run_protected ~cfg:trace_cfg m in
  let off = Softbound.run_protected ~opts:no_elim ~cfg:trace_cfg m in
  match (on.Interp.Vm.outcome, off.Interp.Vm.outcome) with
  | Interp.State.Exit a, Interp.State.Exit b ->
      if a <> b then Alcotest.failf "exit codes differ: %d vs %d" a b;
      let ha = checked_addrs on and hb = checked_addrs off in
      Hashtbl.iter
        (fun (addr, size) n ->
          match Hashtbl.find_opt hb (addr, size) with
          | None ->
              Alcotest.failf
                "elim-on checked (0x%x, %d) which elim-off never checked"
                addr size
          | Some n' when n > n' ->
              Alcotest.failf
                "elim-on checked (0x%x, %d) %d times, elim-off only %d"
                addr size n n'
          | Some _ -> ())
        ha;
      Hashtbl.iter
        (fun (addr, size) _ ->
          if not (Hashtbl.mem ha (addr, size)) then
            Alcotest.failf
              "elim-on never checked (0x%x, %d); coverage lost" addr size)
        hb
  | a, b ->
      (* trapping programs: both must agree; the address property only
         applies to the common prefix, which test_elim already pins via
         outcome/stdout agreement *)
      if
        Interp.State.string_of_outcome a <> Interp.State.string_of_outcome b
      then
        Alcotest.failf "outcomes differ: %s vs %s"
          (Interp.State.string_of_outcome a)
          (Interp.State.string_of_outcome b)

(* ---- sources: fixed regressions + the fuzz generator ---- *)

let fixed =
  [
    (* back-to-back identical checks + loop-invariant metadata *)
    "int main(void) { int a[64]; int *p = (int*)malloc(4); int i; \
     for (i = 0; i < 100; i++) { a[i % 64] = i; a[i % 64] += 3; \
     *p = *p + a[i % 64]; } printf(\"%d\\n\", *p); return 0; }";
    (* straight-line duplicate accesses *)
    "int main(void) { int a[8]; a[3] = 1; a[3] = a[3] + 1; a[3] += a[3]; \
     printf(\"%d\\n\", a[3]); return 0; }";
    (* checks under branches: only the dominating one may cover *)
    "int main(void) { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = i; \
     if (a[0]) a[1] = 9; else a[1] = 7; a[1] += a[0]; \
     printf(\"%d\\n\", a[1]); return 0; }";
  ]

let gen_src index =
  let case = Fuzz.case_of ~seed:1009 ~index in
  Cminus.Pretty.program_string case.Gen.prog

let arb_index = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 199)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    tc "static: elided checks covered (fixed programs)" (fun () ->
        List.iter assert_static_sound fixed);
    tc "dynamic: checked-address sets agree (fixed programs)" (fun () ->
        List.iter assert_dynamic_sound fixed);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60
         ~name:"static: elided checks covered (generated programs)"
         arb_index
         (fun index ->
           assert_static_sound (gen_src index);
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"dynamic: checked-address sets agree (generated programs)"
         arb_index
         (fun index ->
           assert_dynamic_sound (gen_src index);
           true));
  ]
