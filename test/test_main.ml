(* Test entry point: all suites. *)

let () =
  Alcotest.run "softbound"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("machine", Test_machine.suite);
      ("lower+inline", Test_lower.suite);
      ("interp", Test_interp.suite);
      ("softbound", Test_softbound.suite);
      ("elim", Test_elim.suite);
      ("elim-props", Test_elim_props.suite);
      ("obs", Test_obs.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("baselines", Test_baselines.suite);
      ("attacks", Test_attacks.suite);
      ("workloads", Test_workloads.suite);
      ("formal", Test_formal.suite);
      ("properties", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("schemes", Test_schemes.suite);
      ("engines", Test_engines.suite);
      ("adversary", Test_adversary.suite);
      ("parallel", Test_par.suite);
      ("serve", Test_serve.suite);
    ]
