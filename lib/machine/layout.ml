(* Address-space layout of the simulated 64-bit machine.

   Mirrors the paper's section 5.1: stack and heap confined to fixed
   slices of the virtual address space, with a large reserved region in
   the middle for the tag-less shadow space, so that shadow-space
   "collisions are guaranteed not to occur". *)

(** Code segment: function [i] gets address [code_base + i * 16].  The
    region is not backed by data pages; loads/stores into it fault. *)
let code_base = 0x0000_0100_0000

let code_slot = 16

(** Globals segment, grows upward as globals are laid out. *)
let globals_base = 0x0000_1000_0000

(** Heap segment, grows upward. *)
let heap_base = 0x0000_4000_0000

let heap_limit = 0x0004_0000_0000 (* 16 GiB of simulated heap *)

(** Stack: grows downward from [stack_top]. *)
let stack_top = 0x0010_0000_0000

let stack_limit = 0x000c_0000_0000 (* 16 GiB of simulated stack *)

(** Hash-table metadata facility lives here (24-byte entries). *)
let hashtable_base = 0x0100_0000_0000

(** Tag-less shadow space: pointer address [a] maps to
    [shadow_base + (a lsr 3) * 16] — 16 bytes of base+bound per
    pointer-aligned double-word.  Because every program-accessible
    address is below [stack_top], the mapping is collision-free. *)
let shadow_base = 0x0200_0000_0000

let shadow_addr a = shadow_base + ((a lsr 3) * 16)

let func_addr idx = code_base + (idx * code_slot)
let func_index addr = (addr - code_base) / code_slot

(* Segment classification, for per-segment cache accounting.  The
   enumeration is dense so observers can index arrays by
   [segment_index]. *)
type segment =
  | Seg_code
  | Seg_globals
  | Seg_heap
  | Seg_stack
  | Seg_hashtable
  | Seg_shadow
  | Seg_other

let segment_of a =
  if a >= shadow_base then Seg_shadow
  else if a >= hashtable_base then Seg_hashtable
  else if a >= stack_limit && a <= stack_top then Seg_stack
  else if a >= heap_base && a < heap_limit then Seg_heap
  else if a >= globals_base && a < heap_base then Seg_globals
  else if a >= code_base && a < globals_base then Seg_code
  else Seg_other

let segment_index = function
  | Seg_code -> 0
  | Seg_globals -> 1
  | Seg_heap -> 2
  | Seg_stack -> 3
  | Seg_hashtable -> 4
  | Seg_shadow -> 5
  | Seg_other -> 6

let n_segments = 7

let segment_name = function
  | Seg_code -> "code"
  | Seg_globals -> "globals"
  | Seg_heap -> "heap"
  | Seg_stack -> "stack"
  | Seg_hashtable -> "hashtable"
  | Seg_shadow -> "shadow"
  | Seg_other -> "other"

let segment_of_index = function
  | 0 -> Seg_code
  | 1 -> Seg_globals
  | 2 -> Seg_heap
  | 3 -> Seg_stack
  | 4 -> Seg_hashtable
  | 5 -> Seg_shadow
  | _ -> Seg_other

let in_code_segment a = a >= code_base && a < code_base + 0x0100_0000

let is_function_addr a =
  in_code_segment a && (a - code_base) mod code_slot = 0
