(* Address-space layout of the simulated 64-bit machine.

   Mirrors the paper's section 5.1: stack and heap confined to fixed
   slices of the virtual address space, with a large reserved region in
   the middle for the tag-less shadow space, so that shadow-space
   "collisions are guaranteed not to occur". *)

(** Code segment: function [i] gets address [code_base + i * 16].  The
    region is not backed by data pages; loads/stores into it fault. *)
let code_base = 0x0000_0100_0000

let code_slot = 16

(** Globals segment, grows upward as globals are laid out. *)
let globals_base = 0x0000_1000_0000

(** Heap segment, grows upward. *)
let heap_base = 0x0000_4000_0000

let heap_limit = 0x0004_0000_0000 (* 16 GiB of simulated heap *)

(** Stack: grows downward from [stack_top]. *)
let stack_top = 0x0010_0000_0000

let stack_limit = 0x000c_0000_0000 (* 16 GiB of simulated stack *)

(** Hash-table metadata facility lives here (24-byte entries). *)
let hashtable_base = 0x0100_0000_0000

(** Tag-less shadow space: pointer address [a] maps to
    [shadow_base + (a lsr 3) * 16] — 16 bytes of base+bound per
    pointer-aligned double-word.  Because every program-accessible
    address is below [stack_top], the mapping is collision-free. *)
let shadow_base = 0x0200_0000_0000

let shadow_addr a = shadow_base + ((a lsr 3) * 16)

let func_addr idx = code_base + (idx * code_slot)
let func_index addr = (addr - code_base) / code_slot

let in_code_segment a = a >= code_base && a < code_base + 0x0100_0000

let is_function_addr a =
  in_code_segment a && (a - code_base) mod code_slot = 0
