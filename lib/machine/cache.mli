(** A small set-associative cache simulator with LRU replacement.

    The paper attributes part of the hash-table metadata facility's
    overhead to additional memory pressure (section 6.3's cache-miss
    simulations).  Routing every simulated memory access — program data
    and metadata alike — through this model makes that effect emerge
    rather than being assumed. *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  miss_penalty : int;  (** extra cycles charged per miss *)
}

val default_config : config
(** 32 KiB, 8-way, 64-byte lines, 30-cycle miss penalty. *)

type t

val create : ?cfg:config -> unit -> t
(** Create a cache.  Raises [Invalid_argument] unless [line_bytes],
    [size_bytes] and [assoc] are all powers of two and the cache holds
    at least one full set — line indexing shifts and masks, so
    non-power-of-two geometries would silently mis-map addresses to
    lines. *)

val reset : t -> unit

val access : t -> int -> int
(** Access one address; returns the cycle penalty (0 on a hit). *)

val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
