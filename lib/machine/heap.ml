(* Heap allocator over the simulated heap segment.

   First-fit free list with a bump-pointer fallback.  Blocks are separated
   by a 16-byte guard gap — as in common production allocators the gap is
   plain unused (and, at segment granularity, accessible) memory, so a
   heap overflow silently scribbles into it unless a checker objects.
   Block bookkeeping lives on the OCaml side (queried by checkers and by
   free/realloc); the payload bytes live in simulated memory. *)

type block = { baddr : int; bsize : int; mutable live : bool }

type t = {
  mem : Memory.t;
  blocks : (int, block) Hashtbl.t;  (** payload address -> block *)
  mutable free_list : (int * int) list;  (** (addr, capacity) *)
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable total_allocs : int;
}

let gap = 16

let create mem =
  {
    mem;
    blocks = Hashtbl.create 256;
    free_list = [];
    live_bytes = 0;
    peak_bytes = 0;
    total_allocs = 0;
  }

let reset h =
  Hashtbl.reset h.blocks;
  h.free_list <- [];
  h.live_bytes <- 0;
  h.peak_bytes <- 0;
  h.total_allocs <- 0

let round_cap size = Memory.align_up (max size 1) 16

(** Allocate [size] bytes; returns the payload address, or [None] when the
    simulated heap is exhausted. *)
let malloc h size =
  if size < 0 then None
  else begin
    let cap = round_cap size in
    let addr =
      (* first fit *)
      let rec pick acc = function
        | [] -> None
        | (a, c) :: rest when c >= cap ->
            h.free_list <- List.rev_append acc rest;
            Some a
        | x :: rest -> pick (x :: acc) rest
      in
      match pick [] h.free_list with
      | Some a -> Some a
      | None -> Memory.heap_sbrk h.mem (cap + gap)
    in
    match addr with
    | None -> None
    | Some a ->
        Hashtbl.replace h.blocks a { baddr = a; bsize = size; live = true };
        h.live_bytes <- h.live_bytes + size;
        h.peak_bytes <- max h.peak_bytes h.live_bytes;
        h.total_allocs <- h.total_allocs + 1;
        Some a
  end

exception Bad_free of int

let free h addr =
  if addr = 0 then ()
  else
    match Hashtbl.find_opt h.blocks addr with
    | Some b when b.live ->
        b.live <- false;
        h.live_bytes <- h.live_bytes - b.bsize;
        h.free_list <- (b.baddr, round_cap b.bsize) :: h.free_list
    | Some _ -> raise (Bad_free addr) (* double free *)
    | None -> raise (Bad_free addr)

let realloc h addr size =
  if addr = 0 then malloc h size
  else
    match Hashtbl.find_opt h.blocks addr with
    | Some b when b.live -> (
        match malloc h size with
        | None -> None
        | Some a' ->
            Memory.blit h.mem ~src:addr ~dst:a' ~len:(min b.bsize size);
            free h addr;
            Some a')
    | _ -> raise (Bad_free addr)

(** Size of the live block at exactly [addr]. *)
let block_size h addr =
  match Hashtbl.find_opt h.blocks addr with
  | Some b when b.live -> Some b.bsize
  | _ -> None

(** The live block containing [addr], if any (linear in block count; used
    only by checker baselines, which keep their own indexes for speed). *)
let containing_block h addr =
  Hashtbl.fold
    (fun _ b acc ->
      if b.live && addr >= b.baddr && addr < b.baddr + b.bsize then Some b
      else acc)
    h.blocks None

let iter_live h f =
  Hashtbl.iter (fun _ b -> if b.live then f b.baddr b.bsize) h.blocks

let live_bytes h = h.live_bytes
let peak_bytes h = h.peak_bytes
let total_allocs h = h.total_allocs
