(* Heap allocator over the simulated heap segment.

   First-fit free list with a bump-pointer fallback.  Blocks are separated
   by a 16-byte guard gap — as in common production allocators the gap is
   plain unused (and, at segment granularity, accessible) memory, so a
   heap overflow silently scribbles into it unless a checker objects.
   Block bookkeeping lives on the OCaml side (queried by checkers and by
   free/realloc); the payload bytes live in simulated memory.

   A block's capacity [bcap] (what the allocator carved out for it) is
   tracked separately from its requested size [bsize]: a free-list block
   reused for a smaller request either splits — the tail, minus one guard
   gap, returns to the free list — or, when too small to split, is
   swallowed whole, and [free] returns the full capacity either way.
   (Conflating the two leaked [capacity - round_cap size] bytes per
   reuse, inflating resident-set and cache-pressure measurements on
   allocation-heavy workloads.)  The conservation invariant, checked by a
   property test over random malloc/free/realloc traces:

     grabbed_bytes = sum of live capacities + sum of free capacities
                     + gap * (live blocks + free-list entries)        *)

type block = {
  baddr : int;
  mutable bsize : int;  (** requested size; mutated by in-place realloc *)
  bcap : int;  (** capacity carved out of the segment, >= round_cap bsize *)
  mutable live : bool;
}

type t = {
  mem : Memory.t;
  blocks : (int, block) Hashtbl.t;  (** payload address -> block *)
  mutable free_list : (int * int) list;  (** (addr, capacity) *)
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable total_allocs : int;
  mutable grabbed_bytes : int;  (** total sbrk'ed, guard gaps included *)
}

let gap = 16

(* Smallest block worth carving off: a split's tail must hold a minimal
   16-byte block plus its own guard gap. *)
let min_split = 16

let create mem =
  {
    mem;
    blocks = Hashtbl.create 256;
    free_list = [];
    live_bytes = 0;
    peak_bytes = 0;
    total_allocs = 0;
    grabbed_bytes = 0;
  }

let reset h =
  Hashtbl.reset h.blocks;
  h.free_list <- [];
  h.live_bytes <- 0;
  h.peak_bytes <- 0;
  h.total_allocs <- 0;
  h.grabbed_bytes <- 0

let round_cap size = Memory.align_up (max size 1) 16

(** Allocate [size] bytes; returns the payload address, or [None] when the
    simulated heap is exhausted. *)
let malloc h size =
  if size < 0 then None
  else begin
    let cap = round_cap size in
    let found =
      (* first fit; split when the surplus can stand as its own block *)
      let rec pick acc = function
        | [] -> None
        | (a, c) :: rest when c >= cap ->
            if c >= cap + gap + min_split then begin
              h.free_list <-
                List.rev_append acc ((a + cap + gap, c - cap - gap) :: rest);
              Some (a, cap)
            end
            else begin
              h.free_list <- List.rev_append acc rest;
              Some (a, c)
            end
        | x :: rest -> pick (x :: acc) rest
      in
      match pick [] h.free_list with
      | Some _ as r -> r
      | None -> (
          match Memory.heap_sbrk h.mem (cap + gap) with
          | None -> None
          | Some a ->
              h.grabbed_bytes <- h.grabbed_bytes + cap + gap;
              Some (a, cap))
    in
    match found with
    | None -> None
    | Some (a, bcap) ->
        Hashtbl.replace h.blocks a { baddr = a; bsize = size; bcap; live = true };
        h.live_bytes <- h.live_bytes + size;
        h.peak_bytes <- max h.peak_bytes h.live_bytes;
        h.total_allocs <- h.total_allocs + 1;
        Some a
  end

exception Bad_free of int

let free h addr =
  if addr = 0 then ()
  else
    match Hashtbl.find_opt h.blocks addr with
    | Some b when b.live ->
        b.live <- false;
        h.live_bytes <- h.live_bytes - b.bsize;
        h.free_list <- (b.baddr, b.bcap) :: h.free_list
    | Some _ -> raise (Bad_free addr) (* double free *)
    | None -> raise (Bad_free addr)

let realloc h addr size =
  if addr = 0 then malloc h size
  else
    match Hashtbl.find_opt h.blocks addr with
    | Some b when b.live ->
        if size >= 0 && round_cap size <= b.bcap then begin
          (* grow or shrink in place within the block's capacity *)
          h.live_bytes <- h.live_bytes + size - b.bsize;
          h.peak_bytes <- max h.peak_bytes h.live_bytes;
          b.bsize <- size;
          Some addr
        end
        else begin
          match malloc h size with
          | None -> None
          | Some a' ->
              Memory.blit h.mem ~src:addr ~dst:a' ~len:(min b.bsize size);
              free h addr;
              Some a'
        end
    | _ -> raise (Bad_free addr)

(** Size of the live block at exactly [addr]. *)
let block_size h addr =
  match Hashtbl.find_opt h.blocks addr with
  | Some b when b.live -> Some b.bsize
  | _ -> None

(** The live block containing [addr], if any (linear in block count; used
    only by checker baselines, which keep their own indexes for speed). *)
let containing_block h addr =
  Hashtbl.fold
    (fun _ b acc ->
      if b.live && addr >= b.baddr && addr < b.baddr + b.bsize then Some b
      else acc)
    h.blocks None

let iter_live h f =
  Hashtbl.iter (fun _ b -> if b.live then f b.baddr b.bsize) h.blocks

let live_bytes h = h.live_bytes
let peak_bytes h = h.peak_bytes
let total_allocs h = h.total_allocs
let grabbed_bytes h = h.grabbed_bytes
let free_regions h = h.free_list

let live_regions h =
  Hashtbl.fold
    (fun _ b acc -> if b.live then (b.baddr, b.bsize, b.bcap) :: acc else acc)
    h.blocks []
