(** Heap allocator over the simulated heap segment.

    First-fit free list with a bump-pointer fallback.  Blocks are
    separated by a 16-byte guard gap; as in common production allocators
    the gap is plain unused (and, at segment granularity, accessible)
    memory, so a heap overflow silently scribbles into it unless a
    checker objects.  Block bookkeeping lives on the OCaml side (queried
    by the baseline checkers and by free/realloc); the payload bytes live
    in simulated memory.

    A block's capacity (what the allocator carved out for it) is tracked
    separately from the requested size, so reusing a large free block
    for a small request either splits it or, when swallowed whole,
    returns the full capacity on free — no bytes leak.  The conservation
    invariant, checked by a property test over random traces:

    {[ grabbed_bytes = sum of live capacities + sum of free capacities
                       + gap * (live blocks + free-list entries) ]} *)

type block = {
  baddr : int;
  mutable bsize : int;  (** requested size; mutated by in-place realloc *)
  bcap : int;  (** capacity carved out of the segment *)
  mutable live : bool;
}

type t

exception Bad_free of int  (** double free or free of a wild pointer *)

val gap : int
(** Guard gap between blocks, in bytes. *)

val create : Memory.t -> t
val reset : t -> unit

val malloc : t -> int -> int option
(** Allocate; returns the payload address, or [None] when the simulated
    heap is exhausted. *)

val free : t -> int -> unit
(** Free the live block at exactly this address; freeing [0] is a
    no-op; raises {!Bad_free} otherwise. *)

val realloc : t -> int -> int -> int option
(** Reallocate, preserving [min old_size new_size] bytes of contents;
    stays in place when the new size fits the block's capacity. *)

val block_size : t -> int -> int option
(** Size of the live block starting at exactly this address. *)

val containing_block : t -> int -> block option
(** The live block containing the address, if any (linear scan; the
    baseline checkers keep their own indexes for speed). *)

val iter_live : t -> (int -> int -> unit) -> unit
(** [iter_live h f] calls [f base size] for every live block. *)

val live_bytes : t -> int
val peak_bytes : t -> int
val total_allocs : t -> int

val grabbed_bytes : t -> int
(** Total bytes taken from the heap segment (guard gaps included). *)

val free_regions : t -> (int * int) list
(** Current free list as [(address, capacity)] pairs. *)

val live_regions : t -> (int * int * int) list
(** Live blocks as [(address, requested size, capacity)] triples. *)
