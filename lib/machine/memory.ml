(* Sparse paged byte-addressable memory.

   Pages (4 KiB) are materialized on first write; reads of untouched pages
   return zeroes without allocating, mirroring the paper's zero-initialized
   mmap'd shadow space with demand paging.

   Validity is segment-granular: an access outside every live segment is a
   simulated segmentation fault.  Within a segment, out-of-bounds accesses
   silently corrupt neighbouring data — exactly the behaviour that makes
   the attack suite (Table 3) and BugBench programs (Table 4) genuinely
   dangerous when run unprotected.

   Host-side performance: a small direct-mapped translation cache sits in
   front of the page hash table, and 2/4/8-byte accesses that do not
   straddle a page boundary go through [Bytes.get_int64_le]-family
   primitives instead of per-byte composition.  Both are invisible to the
   simulation — the page-materialization behaviour (and hence
   [resident_bytes]) and every value read or written are bit-identical to
   the byte-loop paths, which remain as the straddling fallback. *)

exception Segfault of int  (** address *)

let align_up x a = (x + a - 1) / a * a

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* translation cache: direct-mapped on the low page-index bits *)
let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(** Sentinel for "page not materialized"; compared with [==]. *)
let no_page = Bytes.create 0

(* --- flat shadow storage ---

   The tag-less shadow space maps program address [a] to
   [shadow_base + 2 * (a land lnot 7)] (16 metadata bytes per aligned
   double-word), so the shadow image of each program segment is a single
   contiguous address range twice the segment's size.  Backing those
   three ranges with growable flat [Bytes] regions bypasses page
   translation (and the TLB, whose slots shadow traffic would otherwise
   share with program pages) for every metadata load/store.

   The flat path is host-only: values read and written are bit-identical
   to the paged path, untouched bytes read as zero exactly like
   unmaterialized pages, and [resident_pages] stays exact because each
   region tracks which would-be pages a write has materialized (the
   region anchors are page-aligned, so region-relative pages partition
   the address space exactly like absolute pages).  Shadow addresses
   outside the three program segments' images — reachable only through
   observer-side probes — fall back to paged memory. *)

type sregion = {
  sr_base : int;  (** absolute shadow address of the region's start *)
  sr_limit : int;  (** one past the region's last byte *)
  sr_down : bool;
      (** stack image: the backing store is anchored at [sr_limit] and
          grows toward [sr_base], mirroring the stack itself *)
  mutable sr_data : Bytes.t;
  mutable sr_pages : Bytes.t;  (** materialization bitmap, 1 bit/page *)
  mutable sr_resident : int;  (** set bits in [sr_pages] *)
}

(* shadow images of the three program segments (globals and heap are
   contiguous in program space, but kept separate so the heap region's
   offsets — and hence its backing allocation — start at zero) *)
let sh_glob_base = Layout.shadow_base + (2 * Layout.globals_base)
let sh_glob_limit = Layout.shadow_base + (2 * Layout.heap_base)
let sh_heap_limit = Layout.shadow_base + (2 * Layout.heap_limit)
let sh_stack_base = Layout.shadow_base + (2 * Layout.stack_limit)
let sh_stack_limit = Layout.shadow_base + (2 * Layout.stack_top)

let sr_make ~base ~limit ~down =
  {
    sr_base = base;
    sr_limit = limit;
    sr_down = down;
    sr_data = Bytes.create 0;
    sr_pages = Bytes.create 0;
    sr_resident = 0;
  }

let sr_reset r =
  r.sr_data <- Bytes.create 0;
  r.sr_pages <- Bytes.create 0;
  r.sr_resident <- 0

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  tlb_tag : int array;  (** page index + 1; 0 = empty slot *)
  tlb_page : Bytes.t array;
  sregions : sregion array;  (** globals, heap, stack shadow images *)
  mutable globals_brk : int;
  mutable heap_brk : int;
  mutable stack_low : int;  (** lowest stack address currently in use *)
}

let create () =
  {
    pages = Hashtbl.create 1024;
    tlb_tag = Array.make tlb_size 0;
    tlb_page = Array.make tlb_size no_page;
    sregions =
      [|
        sr_make ~base:sh_glob_base ~limit:sh_glob_limit ~down:false;
        sr_make ~base:sh_glob_limit ~limit:sh_heap_limit ~down:false;
        sr_make ~base:sh_stack_base ~limit:sh_stack_limit ~down:true;
      |];
    globals_brk = Layout.globals_base;
    heap_brk = Layout.heap_base;
    stack_low = Layout.stack_top;
  }

let reset m =
  Hashtbl.reset m.pages;
  Array.fill m.tlb_tag 0 tlb_size 0;
  Array.fill m.tlb_page 0 tlb_size no_page;
  Array.iter sr_reset m.sregions;
  m.globals_brk <- Layout.globals_base;
  m.heap_brk <- Layout.heap_base;
  m.stack_low <- Layout.stack_top

(** Number of materialized pages — the simulated resident set.  Flat
    shadow regions count the pages the paged path would have
    materialized. *)
let resident_pages m =
  Hashtbl.length m.pages
  + m.sregions.(0).sr_resident
  + m.sregions.(1).sr_resident
  + m.sregions.(2).sr_resident

let resident_bytes m = resident_pages m * page_size

(* --- flat shadow access --- *)

(** Region index for a shadow address; -1 = outside every flat region
    (falls back to paged memory). *)
let sr_index a =
  if a >= sh_glob_base && a < sh_heap_limit then
    if a >= sh_glob_limit then 1 else 0
  else if a >= sh_stack_base && a < sh_stack_limit then 2
  else -1

(* The backing store of an up-region covers addresses
   [sr_base, sr_base + cap); the down-region's covers
   [sr_limit - cap, sr_limit).  [sr_pos] maps an address to its index in
   the current store (an index outside [0, cap) means "not covered yet":
   reads see zero, writes grow).  All region bounds are page-aligned, so
   the anchor-relative page ids used by the bitmap partition addresses
   exactly like the absolute page ids of the paged path. *)

let sr_pos r a =
  if r.sr_down then a - r.sr_limit + Bytes.length r.sr_data
  else a - r.sr_base

(** Grow [r]'s backing store (and page bitmap) until [sr_pos r a] is a
    valid index.  Doubling from 64 KiB keeps reallocation amortized;
    fresh bytes are zero, matching unmaterialized pages. *)
let sr_grow r a =
  let cap = Bytes.length r.sr_data in
  let need = if r.sr_down then r.sr_limit - a else a - r.sr_base + 1 in
  let cap' = ref (max 65536 (cap * 2)) in
  while !cap' < need do
    cap' := !cap' * 2
  done;
  let data = Bytes.make !cap' '\000' in
  if r.sr_down then Bytes.blit r.sr_data 0 data (!cap' - cap) cap
  else Bytes.blit r.sr_data 0 data 0 cap;
  r.sr_data <- data;
  let pcap = Bytes.length r.sr_pages in
  let pcap' = max 32 (!cap' lsr (page_bits + 3)) in
  if pcap' > pcap then begin
    let pages = Bytes.make pcap' '\000' in
    Bytes.blit r.sr_pages 0 pages 0 pcap;
    r.sr_pages <- pages
  end

(** Record that a write touched the page holding address [a] — exactly
    the page [page_for_write] would have materialized. *)
let sr_mark_page r a =
  let pidx =
    if r.sr_down then (r.sr_limit - 1 - a) lsr page_bits
    else (a - r.sr_base) lsr page_bits
  in
  let byte = pidx lsr 3 and bit = pidx land 7 in
  let b = Char.code (Bytes.get r.sr_pages byte) in
  if b land (1 lsl bit) = 0 then begin
    Bytes.set r.sr_pages byte (Char.chr (b lor (1 lsl bit)));
    r.sr_resident <- r.sr_resident + 1
  end

let sr_read_byte r a =
  let pos = sr_pos r a in
  if pos < 0 || pos >= Bytes.length r.sr_data then 0
  else Char.code (Bytes.unsafe_get r.sr_data pos)

let sr_write_byte r a v =
  let pos = sr_pos r a in
  let pos =
    if pos >= 0 && pos < Bytes.length r.sr_data then pos
    else begin
      sr_grow r a;
      sr_pos r a
    end
  in
  Bytes.unsafe_set r.sr_data pos (Char.unsafe_chr (v land 0xff));
  sr_mark_page r a

(** Segment-level validity for program accesses.  The metadata regions
    (hash table, shadow space) are only touched by the checker runtimes,
    which bypass this check. *)
let valid m a =
  (a >= Layout.globals_base && a < (m.globals_brk + page_size) land lnot page_mask)
  || (a >= Layout.heap_base && a < (m.heap_brk + page_size) land lnot page_mask)
  || (a >= m.stack_low && a < Layout.stack_top)

let check_program_access m a len =
  if not (valid m a && (len <= 1 || valid m (a + len - 1))) then
    raise (Segfault a)

(* Positions ascend with addresses in both orientations (the down-region
   mapping is [a - sr_limit + cap], still monotone), so little-endian
   word primitives apply to the flat store directly. *)

(** Read [len] <= 8 bytes at shadow address [a]; the whole range must lie
    inside region [r]. *)
let sr_read_word r a len =
  let pos = sr_pos r a in
  if pos >= 0 && pos + len <= Bytes.length r.sr_data then
    match len with
    | 8 -> Int64.to_int (Bytes.get_int64_le r.sr_data pos)
    | 1 -> Char.code (Bytes.unsafe_get r.sr_data pos)
    | 2 -> Bytes.get_uint16_le r.sr_data pos
    | 4 -> Int32.to_int (Bytes.get_int32_le r.sr_data pos) land 0xffffffff
    | _ ->
        let v = ref 0 in
        for i = len - 1 downto 0 do
          v := (!v lsl 8) lor Char.code (Bytes.unsafe_get r.sr_data (pos + i))
        done;
        !v
  else if pos + len <= 0 || pos >= Bytes.length r.sr_data then 0
  else begin
    (* partially covered: per-byte, uncovered bytes read as zero *)
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor sr_read_byte r (a + i)
    done;
    !v
  end

let sr_write_word r a len v =
  let pos = sr_pos r a in
  let pos =
    if pos >= 0 && pos + len <= Bytes.length r.sr_data then pos
    else begin
      (* growing to cover the extreme end covers the whole range: the
         other end is bounded by the region edge the store is anchored
         at *)
      sr_grow r (if r.sr_down then a else a + len - 1);
      sr_pos r a
    end
  in
  (match len with
  | 8 -> Bytes.set_int64_le r.sr_data pos (Int64.of_int v)
  | 1 -> Bytes.unsafe_set r.sr_data pos (Char.unsafe_chr (v land 0xff))
  | 2 -> Bytes.set_uint16_le r.sr_data pos (v land 0xffff)
  | 4 -> Bytes.set_int32_le r.sr_data pos (Int32.of_int v)
  | _ ->
      let v = ref v in
      for i = 0 to len - 1 do
        Bytes.unsafe_set r.sr_data (pos + i) (Char.unsafe_chr (!v land 0xff));
        v := !v asr 8
      done);
  sr_mark_page r a;
  if len > 1 then sr_mark_page r (a + len - 1)

(* --- page lookup --- *)

(** Page for a read: [no_page] when untouched (never materializes).
    Only present pages enter the translation cache, so a later write is
    guaranteed to see the slot as a miss and materialize normally. *)
let page_for_read m idx =
  let slot = idx land tlb_mask in
  if Array.unsafe_get m.tlb_tag slot = idx + 1 then
    Array.unsafe_get m.tlb_page slot
  else
    match Hashtbl.find_opt m.pages idx with
    | Some p ->
        Array.unsafe_set m.tlb_tag slot (idx + 1);
        Array.unsafe_set m.tlb_page slot p;
        p
    | None -> no_page

(** Page for a write: materializes on first touch. *)
let page_for_write m idx =
  let slot = idx land tlb_mask in
  if Array.unsafe_get m.tlb_tag slot = idx + 1 then
    Array.unsafe_get m.tlb_page slot
  else begin
    let p =
      match Hashtbl.find_opt m.pages idx with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.replace m.pages idx p;
          p
    in
    Array.unsafe_set m.tlb_tag slot (idx + 1);
    Array.unsafe_set m.tlb_page slot p;
    p
  end

(* --- raw byte access (no validity check) ---

   Every accessor first routes shadow-segment addresses to the flat
   regions; shadow addresses outside the three program-segment images
   (observer probes of nonsensical locations) stay on the paged path. *)

let read_byte m a =
  if a >= Layout.shadow_base && sr_index a >= 0 then
    sr_read_byte (Array.unsafe_get m.sregions (sr_index a)) a
  else
    let p = page_for_read m (a lsr page_bits) in
    if p == no_page then 0
    else Char.code (Bytes.unsafe_get p (a land page_mask))

let write_byte m a v =
  if a >= Layout.shadow_base && sr_index a >= 0 then
    sr_write_byte (Array.unsafe_get m.sregions (sr_index a)) a v
  else
    let p = page_for_write m (a lsr page_bits) in
    Bytes.unsafe_set p (a land page_mask) (Char.unsafe_chr (v land 0xff))

(* byte-loop fallbacks for accesses that straddle a page boundary (or
   have an irregular width); also the reference the fast paths must
   agree with, which the qcheck equivalence suite enforces *)

let read_int_slow m a len =
  let v = ref 0 in
  for i = len - 1 downto 0 do
    v := (!v lsl 8) lor read_byte m (a + i)
  done;
  !v

let write_int_slow m a len v =
  let v = ref v in
  for i = 0 to len - 1 do
    write_byte m (a + i) (!v land 0xff);
    v := !v asr 8
  done

(** Little-endian unsigned read of [len] (1, 2, 4 or 8) bytes. *)
let read_int m a len =
  if a >= Layout.shadow_base then begin
    let i = sr_index a in
    if i >= 0 then begin
      let r = Array.unsafe_get m.sregions i in
      if a + len <= r.sr_limit then sr_read_word r a len
      else read_int_slow m a len (* straddles a region edge *)
    end
    else read_int_slow m a len
  end
  else
  let off = a land page_mask in
  if off + len <= page_size then
    let p = page_for_read m (a lsr page_bits) in
    if p == no_page then 0
    else
      match len with
      | 1 -> Char.code (Bytes.unsafe_get p off)
      | 2 -> Bytes.get_uint16_le p off
      | 4 ->
          (* get_int32_le sign-extends; the byte-loop contract is an
             unsigned composition, so mask back down *)
          Int32.to_int (Bytes.get_int32_le p off) land 0xffffffff
      | 8 ->
          (* [to_int] truncates mod 2^63 — exactly what composing eight
             bytes with [lsl]/[lor] into a 63-bit int produces *)
          Int64.to_int (Bytes.get_int64_le p off)
      | _ -> read_int_slow m a len
  else read_int_slow m a len

let write_int m a len v =
  if a >= Layout.shadow_base then begin
    let i = sr_index a in
    if i >= 0 then begin
      let r = Array.unsafe_get m.sregions i in
      if a + len <= r.sr_limit then sr_write_word r a len v
      else write_int_slow m a len v
    end
    else write_int_slow m a len v
  end
  else
  let off = a land page_mask in
  if off + len <= page_size then
    let p = page_for_write m (a lsr page_bits) in
    match len with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xff))
    | 2 -> Bytes.set_uint16_le p off (v land 0xffff)
    | 4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | 8 ->
        (* of_int sign-extends 63→64 bits, matching the [asr]-driven
           byte loop's sign-extension of the top byte *)
        Bytes.set_int64_le p off (Int64.of_int v)
    | _ -> write_int_slow m a len v
  else write_int_slow m a len v

(** Sign-extend an unsigned [len]-byte value read by {!read_int}. *)
let sign_extend v len =
  if len >= 8 then v
  else
    let bits = len * 8 in
    let sign = 1 lsl (bits - 1) in
    if v land sign <> 0 then v - (1 lsl bits) else v

let read_i64_slow m a =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte m (a + i)))
  done;
  !v

let write_i64_slow m a (v : int64) =
  let v = ref v in
  for i = 0 to 7 do
    write_byte m (a + i) (Int64.to_int (Int64.logand !v 0xffL));
    v := Int64.shift_right_logical !v 8
  done

let read_i64 m a =
  if a >= Layout.shadow_base then begin
    let i = sr_index a in
    if i >= 0 then begin
      let r = Array.unsafe_get m.sregions i in
      let pos = sr_pos r a in
      if a + 8 <= r.sr_limit && pos >= 0 && pos + 8 <= Bytes.length r.sr_data
      then Bytes.get_int64_le r.sr_data pos
      else if a + 8 <= r.sr_limit && (pos + 8 <= 0 || pos >= Bytes.length r.sr_data)
      then 0L
      else read_i64_slow m a
    end
    else read_i64_slow m a
  end
  else
    let off = a land page_mask in
    if off + 8 <= page_size then
      let p = page_for_read m (a lsr page_bits) in
      if p == no_page then 0L else Bytes.get_int64_le p off
    else read_i64_slow m a

let write_i64 m a (v : int64) =
  if a >= Layout.shadow_base then begin
    let i = sr_index a in
    if i >= 0 then begin
      let r = Array.unsafe_get m.sregions i in
      if a + 8 <= r.sr_limit then begin
        let pos = sr_pos r a in
        let pos =
          if pos >= 0 && pos + 8 <= Bytes.length r.sr_data then pos
          else begin
            sr_grow r (if r.sr_down then a else a + 7);
            sr_pos r a
          end
        in
        Bytes.set_int64_le r.sr_data pos v;
        sr_mark_page r a;
        sr_mark_page r (a + 7)
      end
      else write_i64_slow m a v
    end
    else write_i64_slow m a v
  end
  else
    let off = a land page_mask in
    if off + 8 <= page_size then
      let p = page_for_write m (a lsr page_bits) in
      Bytes.set_int64_le p off v
    else write_i64_slow m a v

let read_f64 m a = Int64.float_of_bits (read_i64 m a)
let write_f64 m a v = write_i64 m a (Int64.bits_of_float v)

let read_f32 m a = Int32.float_of_bits (Int32.of_int (read_int m a 4))

let write_f32 m a v =
  write_int m a 4 (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)

(** Read a NUL-terminated string (capped at [max], default 1 MiB).
    Scans page-at-a-time: an untouched page is all zeroes, i.e. an
    immediate terminator. *)
let read_cstring ?(max = 1 lsl 20) m a =
  if a + max > Layout.shadow_base then begin
    (* byte-at-a-time via the routed accessor: coherent with the flat
       shadow store (observer-side probes only) *)
    let buf = Buffer.create 32 in
    let rec go i =
      if i >= max then Buffer.contents buf
      else
        match read_byte m (a + i) with
        | 0 -> Buffer.contents buf
        | c ->
            Buffer.add_char buf (Char.chr (c land 0xff));
            go (i + 1)
    in
    go 0
  end
  else
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let addr = a + i in
      let off = addr land page_mask in
      let p = page_for_read m (addr lsr page_bits) in
      if p == no_page then Buffer.contents buf
      else
        let avail = min (page_size - off) (max - i) in
        match Bytes.index_from_opt p off '\000' with
        | Some j when j < off + avail ->
            Buffer.add_subbytes buf p off (j - off);
            Buffer.contents buf
        | _ ->
            Buffer.add_subbytes buf p off avail;
            go (i + avail)
  in
  go 0

let write_string m a s =
  if a + String.length s > Layout.shadow_base then
    String.iteri (fun i c -> write_byte m (a + i) (Char.code c)) s
  else
  let len = String.length s in
  let rec go i =
    if i < len then begin
      let addr = a + i in
      let off = addr land page_mask in
      let p = page_for_write m (addr lsr page_bits) in
      let n = min (page_size - off) (len - i) in
      Bytes.blit_string s i p off n;
      go (i + n)
    end
  in
  go 0

let write_cstring m a s =
  write_string m a s;
  write_byte m (a + String.length s) 0

(** Overlap-safe copy (memmove semantics): gather the source into a
    scratch buffer page-chunk-wise, then scatter — correct for both
    copy directions, and only the destination pages materialize. *)
let blit m ~src ~dst ~len =
  if len > 0 && (src + len > Layout.shadow_base || dst + len > Layout.shadow_base)
  then begin
    (* routed per-byte copy, overlap-safe via the gather buffer *)
    let tmp = Bytes.init len (fun i -> Char.chr (read_byte m (src + i) land 0xff)) in
    Bytes.iteri (fun i c -> write_byte m (dst + i) (Char.code c)) tmp
  end
  else if len > 0 then begin
    let tmp = Bytes.make len '\000' in
    let i = ref 0 in
    while !i < len do
      let addr = src + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_read m (addr lsr page_bits) in
      if p != no_page then Bytes.blit p off tmp !i n;
      i := !i + n
    done;
    let i = ref 0 in
    while !i < len do
      let addr = dst + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_write m (addr lsr page_bits) in
      Bytes.blit tmp !i p off n;
      i := !i + n
    done
  end

let fill m a len v =
  if len > 0 && a + len > Layout.shadow_base then
    for i = 0 to len - 1 do
      write_byte m (a + i) v
    done
  else if len > 0 then begin
    let c = Char.chr (v land 0xff) in
    let i = ref 0 in
    while !i < len do
      let addr = a + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_write m (addr lsr page_bits) in
      Bytes.fill p off n c;
      i := !i + n
    done
  end

(* --- segment management --- *)

(** Allocate [size] bytes in the globals segment, aligned to [align]. *)
let alloc_global m ~size ~align =
  let a = align_up m.globals_brk align in
  m.globals_brk <- a + size;
  a

(** Grow the heap bump pointer (used by the heap allocator). *)
let heap_sbrk m size =
  let a = m.heap_brk in
  if a + size > Layout.heap_limit then None
  else begin
    m.heap_brk <- a + size;
    Some a
  end

(** Record stack growth.  The low watermark is monotonic: memory once made
    valid by stack growth stays readable (as on a real machine, where the
    pages below the deepest stack extent remain mapped). *)
let set_stack_low m sp =
  if sp < Layout.stack_limit then raise (Segfault sp);
  if sp < m.stack_low then m.stack_low <- sp
