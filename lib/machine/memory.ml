(* Sparse paged byte-addressable memory.

   Pages (4 KiB) are materialized on first write; reads of untouched pages
   return zeroes without allocating, mirroring the paper's zero-initialized
   mmap'd shadow space with demand paging.

   Validity is segment-granular: an access outside every live segment is a
   simulated segmentation fault.  Within a segment, out-of-bounds accesses
   silently corrupt neighbouring data — exactly the behaviour that makes
   the attack suite (Table 3) and BugBench programs (Table 4) genuinely
   dangerous when run unprotected. *)

exception Segfault of int  (** address *)

let align_up x a = (x + a - 1) / a * a

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable globals_brk : int;
  mutable heap_brk : int;
  mutable stack_low : int;  (** lowest stack address currently in use *)
}

let create () =
  {
    pages = Hashtbl.create 1024;
    globals_brk = Layout.globals_base;
    heap_brk = Layout.heap_base;
    stack_low = Layout.stack_top;
  }

let reset m =
  Hashtbl.reset m.pages;
  m.globals_brk <- Layout.globals_base;
  m.heap_brk <- Layout.heap_base;
  m.stack_low <- Layout.stack_top

(** Number of materialized pages — the simulated resident set. *)
let resident_pages m = Hashtbl.length m.pages

let resident_bytes m = resident_pages m * page_size

(** Segment-level validity for program accesses.  The metadata regions
    (hash table, shadow space) are only touched by the checker runtimes,
    which bypass this check. *)
let valid m a =
  (a >= Layout.globals_base && a < align_up (m.globals_brk + 1) page_size)
  || (a >= Layout.heap_base && a < align_up (m.heap_brk + 1) page_size)
  || (a >= m.stack_low && a < Layout.stack_top)

let check_program_access m a len =
  if not (valid m a && (len <= 1 || valid m (a + len - 1))) then
    raise (Segfault a)

(* --- raw byte access (no validity check) --- *)

let read_byte m a =
  match Hashtbl.find_opt m.pages (a lsr page_bits) with
  | None -> 0
  | Some page -> Char.code (Bytes.unsafe_get page (a land (page_size - 1)))

let write_byte m a v =
  let idx = a lsr page_bits in
  let page =
    match Hashtbl.find_opt m.pages idx with
    | Some p -> p
    | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.replace m.pages idx p;
        p
  in
  Bytes.unsafe_set page (a land (page_size - 1)) (Char.chr (v land 0xff))

(** Little-endian unsigned read of [len] (1, 2, 4 or 8) bytes. *)
let read_int m a len =
  let v = ref 0 in
  for i = len - 1 downto 0 do
    v := (!v lsl 8) lor read_byte m (a + i)
  done;
  !v

let write_int m a len v =
  let v = ref v in
  for i = 0 to len - 1 do
    write_byte m (a + i) (!v land 0xff);
    v := !v asr 8
  done

(** Sign-extend an unsigned [len]-byte value read by {!read_int}. *)
let sign_extend v len =
  if len >= 8 then v
  else
    let bits = len * 8 in
    let sign = 1 lsl (bits - 1) in
    if v land sign <> 0 then v - (1 lsl bits) else v

let read_i64 m a =
  (* 8-byte values: the top byte can set bit 63, which does not fit the
     positive range of OCaml's 63-bit int; all simulated addresses and
     sane integer values are below 2^62, so plain composition is safe,
     but we fold through Int64 to preserve wrap-around semantics. *)
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte m (a + i)))
  done;
  !v

let write_i64 m a (v : int64) =
  let v = ref v in
  for i = 0 to 7 do
    write_byte m (a + i) (Int64.to_int (Int64.logand !v 0xffL));
    v := Int64.shift_right_logical !v 8
  done

let read_f64 m a = Int64.float_of_bits (read_i64 m a)
let write_f64 m a v = write_i64 m a (Int64.bits_of_float v)

let read_f32 m a = Int32.float_of_bits (Int32.of_int (read_int m a 4))

let write_f32 m a v =
  write_int m a 4 (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)

(** Read a NUL-terminated string (capped at [max], default 1 MiB). *)
let read_cstring ?(max = 1 lsl 20) m a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = read_byte m (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

let write_string m a s =
  String.iteri (fun i c -> write_byte m (a + i) (Char.code c)) s

let write_cstring m a s =
  write_string m a s;
  write_byte m (a + String.length s) 0

let blit m ~src ~dst ~len =
  if dst <= src then
    for i = 0 to len - 1 do
      write_byte m (dst + i) (read_byte m (src + i))
    done
  else
    for i = len - 1 downto 0 do
      write_byte m (dst + i) (read_byte m (src + i))
    done

let fill m a len v =
  for i = 0 to len - 1 do
    write_byte m (a + i) v
  done

(* --- segment management --- *)

(** Allocate [size] bytes in the globals segment, aligned to [align]. *)
let alloc_global m ~size ~align =
  let a = align_up m.globals_brk align in
  m.globals_brk <- a + size;
  a

(** Grow the heap bump pointer (used by the heap allocator). *)
let heap_sbrk m size =
  let a = m.heap_brk in
  if a + size > Layout.heap_limit then None
  else begin
    m.heap_brk <- a + size;
    Some a
  end

(** Record stack growth.  The low watermark is monotonic: memory once made
    valid by stack growth stays readable (as on a real machine, where the
    pages below the deepest stack extent remain mapped). *)
let set_stack_low m sp =
  if sp < Layout.stack_limit then raise (Segfault sp);
  if sp < m.stack_low then m.stack_low <- sp
