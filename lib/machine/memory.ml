(* Sparse paged byte-addressable memory.

   Pages (4 KiB) are materialized on first write; reads of untouched pages
   return zeroes without allocating, mirroring the paper's zero-initialized
   mmap'd shadow space with demand paging.

   Validity is segment-granular: an access outside every live segment is a
   simulated segmentation fault.  Within a segment, out-of-bounds accesses
   silently corrupt neighbouring data — exactly the behaviour that makes
   the attack suite (Table 3) and BugBench programs (Table 4) genuinely
   dangerous when run unprotected.

   Host-side performance: a small direct-mapped translation cache sits in
   front of the page hash table, and 2/4/8-byte accesses that do not
   straddle a page boundary go through [Bytes.get_int64_le]-family
   primitives instead of per-byte composition.  Both are invisible to the
   simulation — the page-materialization behaviour (and hence
   [resident_bytes]) and every value read or written are bit-identical to
   the byte-loop paths, which remain as the straddling fallback. *)

exception Segfault of int  (** address *)

let align_up x a = (x + a - 1) / a * a

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* translation cache: direct-mapped on the low page-index bits *)
let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(** Sentinel for "page not materialized"; compared with [==]. *)
let no_page = Bytes.create 0

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  tlb_tag : int array;  (** page index + 1; 0 = empty slot *)
  tlb_page : Bytes.t array;
  mutable globals_brk : int;
  mutable heap_brk : int;
  mutable stack_low : int;  (** lowest stack address currently in use *)
}

let create () =
  {
    pages = Hashtbl.create 1024;
    tlb_tag = Array.make tlb_size 0;
    tlb_page = Array.make tlb_size no_page;
    globals_brk = Layout.globals_base;
    heap_brk = Layout.heap_base;
    stack_low = Layout.stack_top;
  }

let reset m =
  Hashtbl.reset m.pages;
  Array.fill m.tlb_tag 0 tlb_size 0;
  Array.fill m.tlb_page 0 tlb_size no_page;
  m.globals_brk <- Layout.globals_base;
  m.heap_brk <- Layout.heap_base;
  m.stack_low <- Layout.stack_top

(** Number of materialized pages — the simulated resident set. *)
let resident_pages m = Hashtbl.length m.pages

let resident_bytes m = resident_pages m * page_size

(** Segment-level validity for program accesses.  The metadata regions
    (hash table, shadow space) are only touched by the checker runtimes,
    which bypass this check. *)
let valid m a =
  (a >= Layout.globals_base && a < (m.globals_brk + page_size) land lnot page_mask)
  || (a >= Layout.heap_base && a < (m.heap_brk + page_size) land lnot page_mask)
  || (a >= m.stack_low && a < Layout.stack_top)

let check_program_access m a len =
  if not (valid m a && (len <= 1 || valid m (a + len - 1))) then
    raise (Segfault a)

(* --- page lookup --- *)

(** Page for a read: [no_page] when untouched (never materializes).
    Only present pages enter the translation cache, so a later write is
    guaranteed to see the slot as a miss and materialize normally. *)
let page_for_read m idx =
  let slot = idx land tlb_mask in
  if Array.unsafe_get m.tlb_tag slot = idx + 1 then
    Array.unsafe_get m.tlb_page slot
  else
    match Hashtbl.find_opt m.pages idx with
    | Some p ->
        Array.unsafe_set m.tlb_tag slot (idx + 1);
        Array.unsafe_set m.tlb_page slot p;
        p
    | None -> no_page

(** Page for a write: materializes on first touch. *)
let page_for_write m idx =
  let slot = idx land tlb_mask in
  if Array.unsafe_get m.tlb_tag slot = idx + 1 then
    Array.unsafe_get m.tlb_page slot
  else begin
    let p =
      match Hashtbl.find_opt m.pages idx with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.replace m.pages idx p;
          p
    in
    Array.unsafe_set m.tlb_tag slot (idx + 1);
    Array.unsafe_set m.tlb_page slot p;
    p
  end

(* --- raw byte access (no validity check) --- *)

let read_byte m a =
  let p = page_for_read m (a lsr page_bits) in
  if p == no_page then 0 else Char.code (Bytes.unsafe_get p (a land page_mask))

let write_byte m a v =
  let p = page_for_write m (a lsr page_bits) in
  Bytes.unsafe_set p (a land page_mask) (Char.unsafe_chr (v land 0xff))

(* byte-loop fallbacks for accesses that straddle a page boundary (or
   have an irregular width); also the reference the fast paths must
   agree with, which the qcheck equivalence suite enforces *)

let read_int_slow m a len =
  let v = ref 0 in
  for i = len - 1 downto 0 do
    v := (!v lsl 8) lor read_byte m (a + i)
  done;
  !v

let write_int_slow m a len v =
  let v = ref v in
  for i = 0 to len - 1 do
    write_byte m (a + i) (!v land 0xff);
    v := !v asr 8
  done

(** Little-endian unsigned read of [len] (1, 2, 4 or 8) bytes. *)
let read_int m a len =
  let off = a land page_mask in
  if off + len <= page_size then
    let p = page_for_read m (a lsr page_bits) in
    if p == no_page then 0
    else
      match len with
      | 1 -> Char.code (Bytes.unsafe_get p off)
      | 2 -> Bytes.get_uint16_le p off
      | 4 ->
          (* get_int32_le sign-extends; the byte-loop contract is an
             unsigned composition, so mask back down *)
          Int32.to_int (Bytes.get_int32_le p off) land 0xffffffff
      | 8 ->
          (* [to_int] truncates mod 2^63 — exactly what composing eight
             bytes with [lsl]/[lor] into a 63-bit int produces *)
          Int64.to_int (Bytes.get_int64_le p off)
      | _ -> read_int_slow m a len
  else read_int_slow m a len

let write_int m a len v =
  let off = a land page_mask in
  if off + len <= page_size then
    let p = page_for_write m (a lsr page_bits) in
    match len with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xff))
    | 2 -> Bytes.set_uint16_le p off (v land 0xffff)
    | 4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | 8 ->
        (* of_int sign-extends 63→64 bits, matching the [asr]-driven
           byte loop's sign-extension of the top byte *)
        Bytes.set_int64_le p off (Int64.of_int v)
    | _ -> write_int_slow m a len v
  else write_int_slow m a len v

(** Sign-extend an unsigned [len]-byte value read by {!read_int}. *)
let sign_extend v len =
  if len >= 8 then v
  else
    let bits = len * 8 in
    let sign = 1 lsl (bits - 1) in
    if v land sign <> 0 then v - (1 lsl bits) else v

let read_i64_slow m a =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte m (a + i)))
  done;
  !v

let write_i64_slow m a (v : int64) =
  let v = ref v in
  for i = 0 to 7 do
    write_byte m (a + i) (Int64.to_int (Int64.logand !v 0xffL));
    v := Int64.shift_right_logical !v 8
  done

let read_i64 m a =
  let off = a land page_mask in
  if off + 8 <= page_size then
    let p = page_for_read m (a lsr page_bits) in
    if p == no_page then 0L else Bytes.get_int64_le p off
  else read_i64_slow m a

let write_i64 m a (v : int64) =
  let off = a land page_mask in
  if off + 8 <= page_size then
    let p = page_for_write m (a lsr page_bits) in
    Bytes.set_int64_le p off v
  else write_i64_slow m a v

let read_f64 m a = Int64.float_of_bits (read_i64 m a)
let write_f64 m a v = write_i64 m a (Int64.bits_of_float v)

let read_f32 m a = Int32.float_of_bits (Int32.of_int (read_int m a 4))

let write_f32 m a v =
  write_int m a 4 (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)

(** Read a NUL-terminated string (capped at [max], default 1 MiB).
    Scans page-at-a-time: an untouched page is all zeroes, i.e. an
    immediate terminator. *)
let read_cstring ?(max = 1 lsl 20) m a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let addr = a + i in
      let off = addr land page_mask in
      let p = page_for_read m (addr lsr page_bits) in
      if p == no_page then Buffer.contents buf
      else
        let avail = min (page_size - off) (max - i) in
        match Bytes.index_from_opt p off '\000' with
        | Some j when j < off + avail ->
            Buffer.add_subbytes buf p off (j - off);
            Buffer.contents buf
        | _ ->
            Buffer.add_subbytes buf p off avail;
            go (i + avail)
  in
  go 0

let write_string m a s =
  let len = String.length s in
  let rec go i =
    if i < len then begin
      let addr = a + i in
      let off = addr land page_mask in
      let p = page_for_write m (addr lsr page_bits) in
      let n = min (page_size - off) (len - i) in
      Bytes.blit_string s i p off n;
      go (i + n)
    end
  in
  go 0

let write_cstring m a s =
  write_string m a s;
  write_byte m (a + String.length s) 0

(** Overlap-safe copy (memmove semantics): gather the source into a
    scratch buffer page-chunk-wise, then scatter — correct for both
    copy directions, and only the destination pages materialize. *)
let blit m ~src ~dst ~len =
  if len > 0 then begin
    let tmp = Bytes.make len '\000' in
    let i = ref 0 in
    while !i < len do
      let addr = src + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_read m (addr lsr page_bits) in
      if p != no_page then Bytes.blit p off tmp !i n;
      i := !i + n
    done;
    let i = ref 0 in
    while !i < len do
      let addr = dst + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_write m (addr lsr page_bits) in
      Bytes.blit tmp !i p off n;
      i := !i + n
    done
  end

let fill m a len v =
  if len > 0 then begin
    let c = Char.chr (v land 0xff) in
    let i = ref 0 in
    while !i < len do
      let addr = a + !i in
      let off = addr land page_mask in
      let n = min (page_size - off) (len - !i) in
      let p = page_for_write m (addr lsr page_bits) in
      Bytes.fill p off n c;
      i := !i + n
    done
  end

(* --- segment management --- *)

(** Allocate [size] bytes in the globals segment, aligned to [align]. *)
let alloc_global m ~size ~align =
  let a = align_up m.globals_brk align in
  m.globals_brk <- a + size;
  a

(** Grow the heap bump pointer (used by the heap allocator). *)
let heap_sbrk m size =
  let a = m.heap_brk in
  if a + size > Layout.heap_limit then None
  else begin
    m.heap_brk <- a + size;
    Some a
  end

(** Record stack growth.  The low watermark is monotonic: memory once made
    valid by stack growth stays readable (as on a real machine, where the
    pages below the deepest stack extent remain mapped). *)
let set_stack_low m sp =
  if sp < Layout.stack_limit then raise (Segfault sp);
  if sp < m.stack_low then m.stack_low <- sp
