(* x86-equivalent instruction-count cost model.

   The paper quantifies its metadata facilities in x86 instruction counts
   (section 5.1): "In the common case of no collisions, the [hash table]
   lookup is approximately nine x86 instructions ... A shadow space lookup
   is approximately five x86 instructions."  The dereference check is two
   compares and a branch.  These constants drive the simulated-cycle
   accounting in the interpreter, so Figure 2's overhead shape emerges
   from executed instructions rather than wall-clock noise. *)

let basic = 1 (* mov/add/and/or/shift/compare/branch *)
let mul = 3
let div = 20
let fdiv = 20
let fbasic = 2 (* fp add/sub/mul *)
let load = 1 (* plus cache penalty *)
let store = 1 (* plus cache penalty *)
let call = 2
let ret = 2
let alloca = 1

(** Bounds check: two compares + a fused branch, as inlined by the
    prototype. *)
let check = 2

(** Hash-table metadata lookup: "shift, mask, multiply, add, three loads,
    compare, and branch" — nine x86 instructions, one of them a multiply
    (3 cycles here) and the three loads serially dependent (the tag
    compare gates the base/bound fetches), giving ~16 cycle-equivalents
    on the modeled in-order pipeline. *)
let hash_lookup = 16

let hash_lookup_mem_ops = 3

(** Hash-table metadata update: same addressing arithmetic, three stores
    (tag, base, bound). *)
let hash_update = 14

let hash_update_mem_ops = 3

(** Collision probe: one extra compare+load+branch round per probe. *)
let hash_probe = 3

(** Shadow-space lookup: "shift, mask, add, and two loads" — five x86
    instructions whose two loads issue independently: ~6
    cycle-equivalents. *)
let shadow_lookup = 6

let shadow_lookup_mem_ops = 2
let shadow_update = 6
let shadow_update_mem_ops = 2

(** CGuard-style object-header lookup: the bounds live in a 16-byte
    header placed immediately before the object, so a metadata load is
    an add (header address) plus two loads that issue independently —
    cheaper than either SoftBound facility but tied to the object, not
    the pointer. *)
let header_lookup = 4

let header_lookup_mem_ops = 2

(** CGuard-style metadata "update" on a pointer store: the object tag
    travels in the pointer's spare bits, so propagating it is a single
    mask/or — no memory traffic. *)
let header_update = 1

(** FRAMER-style frame-tag decode: recover the frame header from the
    tagged pointer (shift, mask, add, compare for the small/large-frame
    split, then two loads from the header) — ~8 cycle-equivalents, the
    per-access price of keeping pointers one word wide. *)
let frame_lookup = 8

let frame_lookup_mem_ops = 2

(** FRAMER tag propagation on a pointer store: the tag rides in the
    pointer's top byte, one mask/or. *)
let frame_update = 1

(** L4-Pointer-style wide-pointer decode: base and bound are inline in
    the 128-bit pointer, so a metadata "lookup" is the extract of the
    upper half — one extra load adjacent to the pointer plus a shift. *)
let wide_lookup = 2

let wide_lookup_mem_ops = 1

(** Writing a wide pointer stores both halves: one extra store. *)
let wide_update = 2

let wide_update_mem_ops = 1

(** Cost of one libc runtime call's fixed overhead. *)
let libc_call = 4

(** Hardware transcendental/sqrt latency (x86 sqrtsd ~18 cycles). *)
let math_fn = 18

(** Per-byte cost of bulk memory routines (memcpy/strcpy etc.); real
    implementations move words, so charge a fraction per byte. *)
let per_byte_bulk_x8 = 2 (* 2 cycles per 8 bytes *)

let bulk_cost nbytes = ((nbytes + 7) / 8 * per_byte_bulk_x8) + libc_call
