(** Address-space layout of the simulated 64-bit machine.

    Mirrors the paper's section 5.1: stack and heap confined to fixed
    slices of the virtual address space, with a large reserved region in
    the middle for the tag-less shadow space, so that shadow-space
    collisions cannot occur. *)

val code_base : int
(** Code segment: function [i] gets address [code_base + i * code_slot].
    The region is not backed by data pages; loads/stores into it fault. *)

val code_slot : int

val globals_base : int
(** Globals segment, grows upward. *)

val heap_base : int
val heap_limit : int

val stack_top : int
(** The stack grows downward from here. *)

val stack_limit : int

val hashtable_base : int
(** Base of the hash-table metadata facility (24-byte entries). *)

val shadow_base : int
(** Tag-less shadow space: see {!shadow_addr}. *)

val shadow_addr : int -> int
(** [shadow_addr a = shadow_base + (a lsr 3) * 16] — 16 bytes of
    base+bound per pointer-aligned word.  Because every
    program-accessible address is below {!stack_top}, the mapping is
    collision-free. *)

val func_addr : int -> int
val func_index : int -> int
val in_code_segment : int -> bool
val is_function_addr : int -> bool

(** Segment classification of an address, for per-segment cache
    accounting in the observability layer. *)
type segment =
  | Seg_code
  | Seg_globals
  | Seg_heap
  | Seg_stack
  | Seg_hashtable
  | Seg_shadow
  | Seg_other

val segment_of : int -> segment

val segment_index : segment -> int
(** Dense index in [0, n_segments). *)

val n_segments : int
val segment_name : segment -> string
val segment_of_index : int -> segment
