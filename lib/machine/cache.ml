(* A small set-associative cache simulator with LRU replacement.

   The paper attributes part of the hash-table facility's overhead to
   "additional memory pressure ... contributing to the runtime overheads"
   (section 6.3, simulations of cache miss rates).  Routing every simulated
   memory access — program data and metadata alike — through this model
   makes that effect emerge rather than being assumed. *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  miss_penalty : int;  (** extra cycles charged per miss *)
}

let default_config =
  { size_bytes = 32 * 1024; assoc = 8; line_bytes = 64; miss_penalty = 30 }

type t = {
  cfg : config;
  n_sets : int;
  line_bits : int;
  (* tags.(set * assoc + way); -1 = invalid *)
  tags : int array;
  (* LRU stamps, monotone counter *)
  stamps : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Exact integer log2 of a power of two. *)
let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(cfg = default_config) () =
  (* Line indexing shifts and masks, so every geometry parameter must be
     a power of two; a float log2 rounded to the nearest integer
     silently mis-masked here for non-power-of-two line sizes, folding
     distinct lines together and overstating hit rates. *)
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg
      (Printf.sprintf "Cache.create: line_bytes %d is not a power of two"
         cfg.line_bytes);
  if not (is_pow2 cfg.size_bytes) then
    invalid_arg
      (Printf.sprintf "Cache.create: size_bytes %d is not a power of two"
         cfg.size_bytes);
  if not (is_pow2 cfg.assoc) then
    invalid_arg
      (Printf.sprintf "Cache.create: assoc %d is not a power of two" cfg.assoc);
  if cfg.size_bytes < cfg.line_bytes * cfg.assoc then
    invalid_arg
      (Printf.sprintf
         "Cache.create: size_bytes %d holds no full set (line_bytes %d x \
          assoc %d)"
         cfg.size_bytes cfg.line_bytes cfg.assoc);
  let n_lines = cfg.size_bytes / cfg.line_bytes in
  let n_sets = max 1 (n_lines / cfg.assoc) in
  let line_bits = log2 cfg.line_bytes in
  {
    cfg;
    n_sets;
    line_bits;
    tags = Array.make (n_sets * cfg.assoc) (-1);
    stamps = Array.make (n_sets * cfg.assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.stamps 0 (Array.length c.stamps) 0;
  c.clock <- 0;
  c.hits <- 0;
  c.misses <- 0

(** Access one address; returns the cycle penalty (0 on hit).
    This is the hottest function in the whole simulator (it runs for
    every simulated memory access, metadata probe and control-data
    touch), so the way scan is allocation-free and unchecked — indices
    are in bounds by construction of [tags]/[stamps]. *)
let access c addr =
  c.clock <- c.clock + 1;
  let line = addr lsr c.line_bits in
  let set = line land (c.n_sets - 1) in
  let assoc = c.cfg.assoc in
  let base = set * assoc in
  let tags = c.tags in
  let rec find w =
    if w >= assoc then -1
    else if Array.unsafe_get tags (base + w) = line then w
    else find (w + 1)
  in
  let w = find 0 in
  if w >= 0 then begin
    c.hits <- c.hits + 1;
    Array.unsafe_set c.stamps (base + w) c.clock;
    0
  end
  else begin
    c.misses <- c.misses + 1;
    (* evict LRU way *)
    let stamps = c.stamps in
    let victim = ref 0 in
    for w = 1 to assoc - 1 do
      if
        Array.unsafe_get stamps (base + w)
        < Array.unsafe_get stamps (base + !victim)
      then victim := w
    done;
    Array.unsafe_set tags (base + !victim) line;
    Array.unsafe_set stamps (base + !victim) c.clock;
    c.cfg.miss_penalty
  end

let hits c = c.hits
let misses c = c.misses

let miss_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.misses /. float_of_int total
