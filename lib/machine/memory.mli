(** Sparse paged byte-addressable memory for the simulated 64-bit machine.

    Pages (4 KiB) are materialized on first write; reads of untouched
    pages return zeroes without allocating — mirroring the paper's
    zero-initialized, demand-paged shadow space (section 5.1).

    Validity is segment-granular: an access outside every live segment
    raises {!Segfault}, while an out-of-bounds access *within* a segment
    silently corrupts neighbouring data — exactly the behaviour that
    makes the attack suite (Table 3) and the BugBench programs (Table 4)
    genuinely dangerous when run unprotected. *)

exception Segfault of int  (** faulting address *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to a multiple of [a]. *)

val page_bits : int
val page_size : int

type t

val create : unit -> t
val reset : t -> unit

val resident_pages : t -> int
(** Number of materialized pages — the simulated resident set. *)

val resident_bytes : t -> int

val valid : t -> int -> bool
(** Segment-level validity of an address for *program* accesses.  The
    metadata regions (hash table, shadow space) are only touched by the
    checker runtimes, which bypass this check. *)

val check_program_access : t -> int -> int -> unit
(** [check_program_access m addr len] raises {!Segfault} unless the
    first and last byte of the range lie in live segments. *)

(** {1 Raw byte access (no validity checks)} *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val read_int : t -> int -> int -> int
(** [read_int m addr len] : little-endian unsigned read of [len]
    (1, 2, 4 or 8) bytes. *)

val write_int : t -> int -> int -> int -> unit
(** [write_int m addr len v] : little-endian write of the low [len]
    bytes of [v] (two's complement for negative values). *)

val sign_extend : int -> int -> int
(** [sign_extend v len] sign-extends an unsigned [len]-byte value read
    by {!read_int}. *)

val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit

(** {2 Byte-loop reference paths}

    The word-granular accessors above take fast paths — direct
    multi-byte loads/stores within a page, and flat-region words in the
    shadow space — and fall back to these byte loops only for accesses
    that straddle a page or region edge.  The byte loops are the
    semantic reference: the qcheck equivalence suite asserts that fast
    and slow paths agree on values *and* on page materialization
    ({!resident_bytes}) for arbitrary access sequences. *)

val read_int_slow : t -> int -> int -> int
val write_int_slow : t -> int -> int -> int -> unit
val read_i64_slow : t -> int -> int64
val write_i64_slow : t -> int -> int64 -> unit

val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit

val read_cstring : ?max:int -> t -> int -> string
(** Read a NUL-terminated string (capped at [max], default 1 MiB). *)

val write_string : t -> int -> string -> unit
val write_cstring : t -> int -> string -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Overlap-safe byte copy (memmove semantics). *)

val fill : t -> int -> int -> int -> unit
(** [fill m addr len byte]. *)

(** {1 Segment management} *)

val alloc_global : t -> size:int -> align:int -> int
(** Allocate [size] bytes in the globals segment; returns the address. *)

val heap_sbrk : t -> int -> int option
(** Grow the heap bump pointer; [None] when the simulated heap limit is
    reached. *)

val set_stack_low : t -> int -> unit
(** Record stack growth.  The low watermark is monotonic: memory once
    made valid by stack growth stays readable, as on a real machine.
    Raises {!Segfault} past the stack limit. *)
