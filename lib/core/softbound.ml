(* Top-level SoftBound API: compile, transform, run.

   This is the library a downstream user programs against:

   {[
     let m = Softbound.compile source in
     match Softbound.run_protected m with
     | { outcome = Trapped (Bounds_violation _); _ } -> ...
   ]} *)

module Ir = Sbir.Ir

(* [softbound] is the library's root module; re-export the submodules. *)
module Config = Config
module Transform = Transform
module Elim = Elim

type mode = Config.mode = Full_checking | Store_only
type facility = Config.facility =
  | Hash_table
  | Shadow_space
  | Obj_header
  | Frame_tag
  | Wide_inline
type options = Config.options

let default_options = Config.default

(** Parse + typecheck + lower a MiniC source to IR.  By default the
    optimizer (constant folding, copy propagation, DCE) and the
    small-function inliner run afterwards, matching the paper's
    post-optimization instrumentation point (section 6.1); pass
    [~inline:false] and/or [~optimize:false] for the raw lowering. *)
let compile ?(inline = true) ?(optimize = true) (src : string) : Ir.modul =
  let m = Sbir.Lower.compile src in
  let m = if optimize then Sbir.Opt.run m else m in
  let m = if inline then Sbir.Inline.run m else m in
  if optimize && inline then Sbir.Opt.run m else m

(** Apply the SoftBound transformation. *)
let instrument ?(opts = Config.default) (m : Ir.modul) : Ir.modul =
  Transform.transform ~opts m

(** Like {!instrument}, also returning the number of instrumentation
    sites assigned (see {!Transform.transform_with_sites}). *)
let instrument_with_sites ?(opts = Config.default) (m : Ir.modul) :
    Ir.modul * int =
  Transform.transform_with_sites ~opts m

let facility_of = function
  | Config.Hash_table -> Interp.State.Hash_table
  | Config.Shadow_space -> Interp.State.Shadow_space
  | Config.Obj_header -> Interp.State.Obj_header
  | Config.Frame_tag -> Interp.State.Frame_tag
  | Config.Wide_inline -> Interp.State.Wide_inline

(** Run an *uninstrumented* module (the baseline the paper normalizes
    against). *)
let run_unprotected ?(cfg = Interp.State.default_config) (m : Ir.modul) :
    Interp.Vm.result =
  Interp.Engine.run ~cfg m

(** Instrument and run under SoftBound. *)
let run_protected ?(opts = Config.default)
    ?(cfg = Interp.State.default_config) (m : Ir.modul) : Interp.Vm.result =
  let m' = instrument ~opts m in
  let cfg =
    {
      cfg with
      Interp.State.meta = Some (facility_of opts.Config.facility);
      store_only = opts.Config.mode = Config.Store_only;
    }
  in
  Interp.Engine.run ~cfg m'

(** Convenience: compile a source and run it under SoftBound. *)
let check_source ?(opts = Config.default)
    ?(cfg = Interp.State.default_config) (src : string) : Interp.Vm.result =
  run_protected ~opts ~cfg (compile src)

(** Did the run abort with a SoftBound spatial-safety violation? *)
let detected (r : Interp.Vm.result) =
  match r.Interp.Vm.outcome with
  | Interp.State.Trapped (Interp.State.Bounds_violation _) -> true
  | _ -> false

(** Did the run demonstrate a successful control-flow hijack? *)
let hijacked (r : Interp.Vm.result) =
  match r.Interp.Vm.outcome with
  | Interp.State.Trapped (Interp.State.Hijack _) -> true
  | _ -> false

let exited_cleanly (r : Interp.Vm.result) =
  match r.Interp.Vm.outcome with Interp.State.Exit _ -> true | _ -> false
