(** Redundant-check elimination and metadata-lookup hoisting over
    SoftBound-instrumented IR — the redundancy half of the cleanup the
    paper gets by re-running LLVM's standard optimizers after the
    transformation (section 6.1); [Config.prune_liveness] is the
    liveness half.

    Sub-passes, in order: loop-invariant hoisting of metadata lookups,
    metadata propagation, and (when loop entry provably implies they
    execute) bounds checks into loop preheaders; induction-variable
    check {e widening}, which replaces the per-iteration checks of a
    counted loop whose addresses are affine in the induction variable
    ({!Sbir.Scev}) by one preheader [CheckSpan] over the whole
    progression; within-block {e coalescing} of same-base
    constant-offset checks ([a[i]] and [a[i+1]] share one span);
    within-block reuse of an earlier [MetaLoad] from the same address;
    and a forward available-checks dataflow that drops a [Check]
    reached by an identical dominating check of at least its width with
    no intervening redefinition.  Elimination never weakens detection:
    a dropped check is implied by one that already ran, a hoisted check
    aborts exactly when its first in-loop execution would have, and a
    span traps — at the same address, site and message — exactly when
    some covered original check would have (DESIGN.md section 12).

    Enabled by {!Config.options.eliminate_checks} (default on);
    disabling it reproduces the uncleaned instrumentation for the
    ablation experiment.  {!Config.options.widen_checks} (CLI
    [--no-widen]) gates the widening and coalescing sub-passes alone,
    for the ablation's control rows. *)

module Ir = Sbir.Ir

val elim_func : meta_floor:int -> ?widen:bool -> Ir.func -> Ir.func
(** Optimize one instrumented function.  [meta_floor] is the function's
    register count {e before} instrumentation: registers at or above it
    were introduced by the transformation, which is how the pass tells
    metadata propagation (hoisted eagerly) from program computation
    (hoisted only as a dependency of hoisted instrumentation, keeping
    the overhead comparison against the uninstrumented baseline fair). *)

val count_checks : Ir.func -> int
(** Static number of [Check]/[CheckFptr] instructions, for tests. *)

val count_metaloads : Ir.func -> int
(** Static number of [MetaLoad] instructions, for tests. *)

val count_widened : Ir.func -> int
(** Static number of loop-widened [CheckSpan] instructions (spans with
    no per-element site table). *)

val count_coalesced : Ir.func -> int
(** Static number of checks saved by in-block coalescing: for each
    multi-site span, its member count minus one. *)
