(** Redundant-check elimination and metadata-lookup hoisting over
    SoftBound-instrumented IR — the redundancy half of the cleanup the
    paper gets by re-running LLVM's standard optimizers after the
    transformation (section 6.1); [Config.prune_liveness] is the
    liveness half.

    Three sub-passes: loop-invariant hoisting of metadata lookups,
    metadata propagation, and (when loop entry provably implies they
    execute) bounds checks into loop preheaders; within-block reuse of
    an earlier [MetaLoad] from the same address; and a forward
    available-checks dataflow that drops a [Check] reached by an
    identical dominating check of at least its width with no intervening
    redefinition.  Elimination never weakens detection: a dropped check
    is implied by one that already ran, and a hoisted check aborts
    exactly when its first in-loop execution would have.

    Enabled by {!Config.options.eliminate_checks} (default on);
    disabling it reproduces the uncleaned instrumentation for the
    ablation experiment. *)

module Ir = Sbir.Ir

val elim_func : meta_floor:int -> Ir.func -> Ir.func
(** Optimize one instrumented function.  [meta_floor] is the function's
    register count {e before} instrumentation: registers at or above it
    were introduced by the transformation, which is how the pass tells
    metadata propagation (hoisted eagerly) from program computation
    (hoisted only as a dependency of hoisted instrumentation, keeping
    the overhead comparison against the uninstrumented baseline fair). *)

val count_checks : Ir.func -> int
(** Static number of [Check]/[CheckFptr] instructions, for tests. *)

val count_metaloads : Ir.func -> int
(** Static number of [MetaLoad] instructions, for tests. *)
