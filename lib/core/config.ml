(* Configuration of the SoftBound transformation and runtime. *)

(** Checking mode (paper section 1 and 6.3).

    [Full_checking] inserts a bounds check before every load and store —
    complete spatial-violation detection.  [Store_only] fully propagates
    all metadata but checks only memory writes — sufficient to stop
    security exploits (which need at least one out-of-bounds write) at a
    much lower overhead. *)
type mode = Full_checking | Store_only

(** Metadata organization.  [Hash_table] and [Shadow_space] are the
    paper's two organizations (section 5.1); the other three model the
    related-work schemes' metadata placements (see {!Schemes}):
    [Obj_header] a CGuard-style header just before the object,
    [Frame_tag] a FRAMER-style frame tag in the pointer's top byte,
    [Wide_inline] an L4-Pointer-style 128-bit wide pointer. *)
type facility =
  | Hash_table
  | Shadow_space
  | Obj_header
  | Frame_tag
  | Wide_inline

type options = {
  mode : mode;
  facility : facility;
  shrink_bounds : bool;
      (** narrow bounds when creating pointers to struct fields
          (section 3.1, "Shrinking Pointer Bounds"); turning this off
          reproduces the sub-object blindness of object-table tools *)
  memcpy_heuristic : bool;
      (** skip the metadata copy for memcpy calls whose static operand
          types are pointer-free (section 5.2, "Memcpy") *)
  clear_stack_meta : bool;
      (** zero the metadata of pointer-holding stack slots before
          returning (section 5.2, "Memory reuse and stale metadata") *)
  clear_free_meta : bool;
      (** zero the metadata of pointer-bearing heap blocks on free *)
  fptr_signatures : bool;
      (** the paper's future-work extension (section 5.2, "Function
          pointers"): dynamically check that the pointer/non-pointer
          signature of an indirect callee matches the call site, so casts
          between incompatible function-pointer types cannot manufacture
          improper base and bounds *)
  prune_liveness : bool;
      (** drop metadata that no check/call/return/store can observe —
          standing in for the paper's re-run of LLVM's optimizers over
          the instrumented code (section 6.1).  The MSCC-style baseline
          disables this (it eschews such whole-function cleanup). *)
  eliminate_checks : bool;
      (** run the redundant-check elimination / metadata-lookup
          hoisting pass ({!Elim}) over the instrumented code — the
          redundancy half of the section 6.1 optimizer re-run
          ([prune_liveness] is the liveness half).  Off reproduces the
          uncleaned instrumentation for the ablation experiment. *)
  widen_checks : bool;
      (** within {!Elim}, run the induction-variable check-widening and
          in-block coalescing sub-passes (SCEV-lite loop span checks).
          Off (CLI [--no-widen]) keeps hoisting/CSE but leaves every
          per-iteration check in place — the widening ablation's
          control configuration.  No effect when [eliminate_checks] is
          off. *)
}

let default =
  {
    mode = Full_checking;
    facility = Shadow_space;
    shrink_bounds = true;
    memcpy_heuristic = true;
    clear_stack_meta = true;
    clear_free_meta = true;
    fptr_signatures = false; (* matches the paper's prototype *)
    prune_liveness = true;
    eliminate_checks = true;
    widen_checks = true;
  }

let store_only = { default with mode = Store_only }

let facility_name = function
  | Hash_table -> "hash-table"
  | Shadow_space -> "shadow-space"
  | Obj_header -> "obj-header"
  | Frame_tag -> "frame-tag"
  | Wide_inline -> "wide-inline"

let mode_name = function
  | Full_checking -> "full"
  | Store_only -> "store-only"

(** Execution engine for the simulated machine, re-exported from
    {!Interp.State.engine} so harness code can name it without reaching
    into the interpreter.  Both engines produce bit-identical simulated
    outputs; [Eng_closure] (the default) runs threaded code compiled at
    load time, [Eng_decode] walks the pre-decoded instruction arrays and
    serves as the differential reference. *)
type engine = Interp.State.engine = Eng_decode | Eng_closure

let engine_name = Interp.State.engine_name
let engine_of_string = Interp.State.engine_of_string
