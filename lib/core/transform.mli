(** The SoftBound compile-time transformation (paper section 3).

    An IR-to-IR pass: renames every function to [_sb_<name>] with
    appended base/bound parameters for pointer parameters (pointer
    returns become triples), associates metadata registers with every
    pointer-valued virtual register, inserts bounds checks per the
    checking mode, rewrites call sites (wrappers for externals,
    function-pointer checks for indirect calls), narrows bounds at
    struct-field address creation, emits the global-metadata
    initializer, and clears stale metadata at returns and frees.

    See the implementation header for the full correspondence to the
    paper's sections. *)

module Ir = Sbir.Ir

val sb_prefix : string
val sb_name : string -> string
val global_init_name : string
(** Name of the synthesized initializer installing metadata for
    statically initialized pointer globals (section 5.2); the VM runs it
    before [main] when present. *)

val transform : ?opts:Config.options -> Ir.modul -> Ir.modul
(** Instrument a module.  Raises [Invalid_argument] if the module
    already contains instrumentation instructions. *)

val transform_with_sites : ?opts:Config.options -> Ir.modul -> Ir.modul * int
(** Like {!transform}, additionally returning the number of
    instrumentation sites assigned.  Site ids ([1..n], stamped on
    [Check]/[CheckFptr]/[MetaLoad]/[MetaStore]) are handed out in
    emission order before any elimination runs, so the numbering — and
    this count — is identical whether [eliminate_checks] is on or off;
    elided sites are exactly the assigned ids missing from the returned
    module. *)
