(* Redundant-check elimination and metadata-lookup hoisting over
   SoftBound-instrumented IR (paper section 6.1).

   The paper's prototype re-runs LLVM's standard optimizers after the
   SoftBound pass, which removes checks and metadata lookups that the
   instrumentation made redundant: two dereferences through the same
   pointer need only one bounds check, and a loop that reloads the same
   pointer every iteration needs only one metadata-space lookup.  The
   [prune_liveness] pre-pass in [Transform] stands in for the
   *liveness* part of that cleanup; this module stands in for the
   *redundancy* part (CGuard makes the same observation: most of the
   remaining headroom is provably-redundant spatial checks).

   Three sub-passes, in order:

   1. {b Loop hoisting.}  Using the dominator tree and natural loops
      from {!Sbir.Dom}, loop-invariant instrumentation — [MetaLoad]s
      whose address is invariant (and whose loop is free of metadata
      writers), the pure metadata-propagation instructions introduced by
      the transformation, and (under a stronger condition, below)
      [Check]/[CheckFptr] on invariant operands — is moved into the
      loop's preheader, created on demand.  A check executes a trap
      conditionally, so hoisting one is allowed only when loop entry
      already implies the check runs at least once: its block must
      dominate every latch and every exit-edge source, the loop must
      contain no in-loop return/unreachable terminator, and no call may
      sit on a path that reaches the check's block (a callee could
      terminate the program first).  This is precisely the "widen a
      per-iteration check on a loop-invariant pointer into one check
      per loop entry" rewrite.  Program (non-metadata) instructions are
      hoisted only when a hoisted root transitively needs them, so the
      instrumented/uninstrumented comparison stays fair: we never
      optimize the program itself more than its baseline.

   2. {b Local metadata-lookup CSE.}  Within a block, a second
      [MetaLoad] from the same address reuses the first lookup's
      registers (two 1-cycle moves instead of a 5- or 9-cycle
      metadata-space probe); invalidated by [MetaStore], calls,
      [SetBoundMark], and redefinition of any involved register.

   3. {b Check elimination.}  A forward available-checks dataflow
      (intersection over predecessors, iterated to a fixpoint over the
      reverse postorder — the non-SSA analogue of "a dominating
      identical check with no intervening redefinition"): a [Check] on
      (ptr, base, bound) is dropped when an available check on the same
      operand triple with width >= the required width reaches it, a
      [CheckFptr] when an identical one reaches it.  Facts die when any
      mentioned register is redefined.  Registers are the only state a
      check reads, so stores, calls and metadata writes do not kill
      facts.

   Soundness note: a dropped check is dominated by an identical check
   that either passed (so this one would pass: same register values,
   [w' >= w] implies [ptr + w <= bound]) or aborted (so this one is
   never reached).  Hoisted checks abort at loop entry exactly when the
   first in-loop execution would have aborted.  Detection is therefore
   unchanged — the test suite re-runs the full Wilander/BugBench
   matrix with elimination on to hold this to account. *)

module Ir = Sbir.Ir
module Dom = Sbir.Dom
module Scev = Sbir.Scev
open Ir

(* ------------------------------------------------------------------ *)
(* Instruction facts                                                    *)
(* ------------------------------------------------------------------ *)

let defs_of (i : inst) : reg list =
  match i with
  | Mov (r, _, _)
  | Bin (r, _, _, _, _)
  | Cmp (r, _, _, _, _)
  | Cast (r, _, _, _)
  | Load (r, _, _)
  | Gep (r, _, _, _)
  | Slotaddr (r, _) ->
      [ r ]
  | Call { rets; _ } -> rets
  | MetaLoad (r1, r2, _, _) -> [ r1; r2 ]
  | Store _ | SetBoundMark _ | Check _ | CheckFptr _ | MetaStore _
  | CheckSpan _ ->
      []

let ops_of (i : inst) : operand list =
  match i with
  | Mov (_, _, o) | Cast (_, _, _, o) | Load (_, _, o)
  | MetaLoad (_, _, o, _) ->
      [ o ]
  | Bin (_, _, _, a, b)
  | Cmp (_, _, _, a, b)
  | Store (_, a, b)
  | Gep (_, a, b, _)
  | SetBoundMark (a, b) ->
      [ a; b ]
  | Slotaddr _ -> []
  | Call { callee; args; _ } -> callee :: args
  | Check (p, b, e, _, _) | CheckFptr (p, b, e, _, _)
  | MetaStore (p, b, e, _) ->
      [ p; b; e ]
  | CheckSpan { sp_first; sp_count; sp_base; sp_bound; _ } ->
      [ sp_first; sp_count; sp_base; sp_bound ]

let term_ops (t : terminator) : operand list =
  match t with
  | TRet ops -> ops
  | TBr (c, _, _) -> [ c ]
  | TSwitch (v, _, _) -> [ v ]
  | TJmp _ | TUnreachable -> []

let reg_ops (ops : operand list) : reg list =
  List.filter_map (function Reg r -> Some r | _ -> None) ops

(** Pure register-writing instructions safe to execute speculatively
    (no memory access, no trap — [Div]/[Rem] can fault on zero). *)
let hoistable_pure = function
  | Mov _ | Cmp _ | Cast _ | Gep _ | Slotaddr _ -> true
  | Bin (_, (Div | Rem), _, _, _) -> false
  | Bin _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass 1: loop-invariant hoisting                                      *)
(* ------------------------------------------------------------------ *)

(* Positions are (block id, instruction index); a terminator "use"
   position is (block id, max_int) so it is dominated by every
   instruction of its own block. *)

type loop_ctx = {
  dom : Dom.t;
  loop : Dom.loop;
  def_count : (reg, int) Hashtbl.t;  (* defs within the loop *)
  def_pos : (reg, int * int) Hashtbl.t;  (* meaningful when count = 1 *)
  uses : (reg, (int * int) list) Hashtbl.t;  (* function-wide *)
  meta_clobbered : bool;  (* MetaStore / Call / SetBoundMark in loop *)
  has_stop : bool;  (* TRet / TUnreachable terminator in loop *)
  calls : (int * int) list;  (* in-loop call positions *)
}

let dcount ctx r = try Hashtbl.find ctx.def_count r with Not_found -> 0

let build_loop_ctx (f : func) (dom : Dom.t) (loop : Dom.loop) : loop_ctx =
  let def_count = Hashtbl.create 32 in
  let def_pos = Hashtbl.create 32 in
  let uses = Hashtbl.create 64 in
  let add_use r pos =
    Hashtbl.replace uses r
      (pos :: (try Hashtbl.find uses r with Not_found -> []))
  in
  let meta_clobbered = ref false in
  let has_stop = ref false in
  let calls = ref [] in
  Array.iteri
    (fun b blk ->
      List.iteri
        (fun i inst -> List.iter (fun r -> add_use r (b, i)) (reg_ops (ops_of inst)))
        blk.insts;
      List.iter (fun r -> add_use r (b, max_int)) (reg_ops (term_ops blk.term));
      if loop.Dom.body.(b) then begin
        (match blk.term with
        | TRet _ | TUnreachable -> has_stop := true
        | _ -> ());
        List.iteri
          (fun i inst ->
            (match inst with
            | MetaStore _ | SetBoundMark _ -> meta_clobbered := true
            | Call _ ->
                meta_clobbered := true;
                calls := (b, i) :: !calls
            | _ -> ());
            List.iter
              (fun r ->
                Hashtbl.replace def_count r
                  (1 + (try Hashtbl.find def_count r with Not_found -> 0));
                Hashtbl.replace def_pos r (b, i))
              (defs_of inst))
          blk.insts
      end)
    f.fblocks;
  {
    dom;
    loop;
    def_count;
    def_pos;
    uses;
    meta_clobbered = !meta_clobbered;
    has_stop = !has_stop;
    calls = !calls;
  }

(** Is position [q] strictly after [p] on every execution (same block
    later, or in a block [p]'s block strictly dominates)? *)
let dominated_by ctx ((b, i) : int * int) ((b', i') : int * int) : bool =
  if b = b' then i' > i else Dom.dominates ctx.dom b b'

(** All uses of [r], function-wide, lie inside the loop and after the
    defining position — so moving the single definition to the
    preheader changes no observable register value (in particular, a
    zero-trip loop entry leaves no reader of the speculatively computed
    value). *)
let uses_ok ctx r pos =
  List.for_all
    (fun (b', _ as q) -> ctx.loop.Dom.body.(b') && dominated_by ctx pos q)
    (try Hashtbl.find ctx.uses r with Not_found -> [])

(** The set of hoistable pure/[MetaLoad] definitions of the loop, as a
    growing fixpoint: an instruction joins once all its register
    operands are invariant (undefined in the loop, or defined once by an
    instruction already in the set — never by itself, which is how
    inductive updates like [r <- r + 1] are excluded). *)
let hoistable_defs (f : func) (ctx : loop_ctx) : ((int * int), inst) Hashtbl.t =
  let h = Hashtbl.create 16 in
  let invariant pos = function
    | Reg r -> (
        match dcount ctx r with
        | 0 -> true
        | 1 ->
            let dp = Hashtbl.find ctx.def_pos r in
            dp <> pos && Hashtbl.mem h dp
        | _ -> false)
    | _ -> true
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun b blk ->
        if ctx.loop.Dom.body.(b) && Dom.reachable ctx.dom b then
          List.iteri
            (fun i inst ->
              let pos = (b, i) in
              if not (Hashtbl.mem h pos) then
                let candidate =
                  hoistable_pure inst
                  ||
                  match inst with
                  | MetaLoad _ -> not ctx.meta_clobbered
                  | _ -> false
                in
                if
                  candidate
                  && List.for_all
                       (fun r -> dcount ctx r = 1 && uses_ok ctx r pos)
                       (defs_of inst)
                  && List.for_all (invariant pos) (ops_of inst)
                then begin
                  Hashtbl.add h pos inst;
                  changed := true
                end)
            blk.insts)
      f.fblocks
  done;
  h

(** Positions to move to the preheader: instrumentation roots plus the
    in-loop pure definitions they transitively need.  [meta_floor] is
    the register count of the function {e before} instrumentation, so a
    pure instruction writing only registers [>= meta_floor] is metadata
    propagation introduced by the transformation; pure program
    instructions are hoisted only as dependencies of a root. *)
let hoist_candidates (f : func) (ctx : loop_ctx) ~(meta_floor : int) :
    ((int * int) * inst) list =
  let h = hoistable_defs f ctx in
  let invariant pos = function
    | Reg r -> (
        match dcount ctx r with
        | 0 -> true
        | 1 ->
            let dp = Hashtbl.find ctx.def_pos r in
            dp <> pos && Hashtbl.mem h dp
        | _ -> false)
    | _ -> true
  in
  let loop = ctx.loop in
  let roots = ref [] in
  Array.iteri
    (fun b blk ->
      if loop.Dom.body.(b) && Dom.reachable ctx.dom b then
        List.iteri
          (fun i inst ->
            let pos = (b, i) in
            match inst with
            | Check _ | CheckFptr _ ->
                (* Sound only when loop entry implies this check runs:
                   see the module header. *)
                if
                  (not ctx.has_stop)
                  && List.for_all (invariant pos) (ops_of inst)
                  && List.for_all
                       (fun l -> Dom.dominates ctx.dom b l)
                       (loop.Dom.latches @ loop.Dom.exits)
                  && List.for_all
                       (fun (cb, ci) -> cb = b && ci > i)
                       ctx.calls
                then roots := (pos, inst) :: !roots
            | MetaLoad _ ->
                if Hashtbl.mem h pos then roots := (pos, inst) :: !roots
            | _ ->
                if
                  Hashtbl.mem h pos
                  && defs_of inst <> []
                  && List.for_all (fun r -> r >= meta_floor) (defs_of inst)
                then roots := (pos, inst) :: !roots)
          blk.insts)
    f.fblocks;
  let chosen = Hashtbl.create 16 in
  let rec need pos inst =
    if not (Hashtbl.mem chosen pos) then begin
      Hashtbl.add chosen pos inst;
      List.iter
        (fun r ->
          if dcount ctx r = 1 then
            let dp = Hashtbl.find ctx.def_pos r in
            if dp <> pos then
              match Hashtbl.find_opt h dp with
              | Some dinst -> need dp dinst
              | None -> ())
        (reg_ops (ops_of inst))
    end
  in
  List.iter (fun (pos, inst) -> need pos inst) !roots;
  Hashtbl.fold (fun pos inst acc -> (pos, inst) :: acc) chosen []

let map_targets (g : int -> int) (t : terminator) : terminator =
  match t with
  | TJmp t -> TJmp (g t)
  | TBr (c, t1, t2) -> TBr (c, g t1, g t2)
  | TSwitch (v, cases, d) ->
      TSwitch (v, List.map (fun (k, t) -> (k, g t)) cases, g d)
  | (TRet _ | TUnreachable) as t -> t

(** An existing preheader: the unique loop-outside predecessor of the
    header, provided the header is its only successor (so appending to
    it executes exactly once per loop entry). *)
let find_preheader (dom : Dom.t) (loop : Dom.loop) : int option =
  let outside =
    List.filter (fun p -> not loop.Dom.body.(p)) dom.Dom.preds.(loop.Dom.header)
  in
  match outside with
  | [ p ]
    when dom.Dom.succs.(p) = [ loop.Dom.header ] && Dom.reachable dom p ->
      Some p
  | _ -> None

(** Insert an empty preheader: every edge into the header from outside
    the loop is redirected through a fresh block that jumps to the
    header.  When the header is the (positional) entry block the new
    block must become the entry, so every block shifts up by one. *)
let insert_preheader (f : func) (loop : Dom.loop) : func =
  let h = loop.Dom.header in
  let n = Array.length f.fblocks in
  if h = 0 then
    let remap src t =
      if t = 0 then if loop.Dom.body.(src) then 1 else 0 else t + 1
    in
    let fblocks =
      Array.init (n + 1) (fun i ->
          if i = 0 then { insts = []; term = TJmp 1 }
          else
            let b = f.fblocks.(i - 1) in
            { b with term = map_targets (remap (i - 1)) b.term })
    in
    { f with fblocks }
  else
    let remap src t = if t = h && not loop.Dom.body.(src) then n else t in
    let fblocks =
      Array.init (n + 1) (fun i ->
          if i = n then { insts = []; term = TJmp h }
          else
            let b = f.fblocks.(i) in
            { b with term = map_targets (remap i) b.term })
    in
    { f with fblocks }

(** Move [chosen] to the end of block [pre], in dependency order: a
    definition dominates its uses, and dominators come strictly earlier
    in reverse postorder, so sorting by (RPO position, index) is a
    topological order of the moved instructions. *)
let apply_hoist (f : func) (dom : Dom.t) (pre : int)
    (chosen : ((int * int) * inst) list) : func =
  let sorted =
    List.sort
      (fun ((b1, i1), _) ((b2, i2), _) ->
        compare (dom.Dom.rpo_pos.(b1), i1) (dom.Dom.rpo_pos.(b2), i2))
      chosen
  in
  let moved = List.map snd sorted in
  let removed = Hashtbl.create 16 in
  List.iter (fun (pos, _) -> Hashtbl.replace removed pos ()) chosen;
  let fblocks =
    Array.mapi
      (fun b blk ->
        let insts =
          List.filteri (fun i _ -> not (Hashtbl.mem removed (b, i))) blk.insts
        in
        let insts = if b = pre then insts @ moved else insts in
        { blk with insts })
      f.fblocks
  in
  { f with fblocks }

(** One round: find the innermost loop with hoisting candidates and
    either hoist them (preheader present) or create its preheader (the
    next round hoists).  Returns [None] when no loop has candidates. *)
let hoist_round ~meta_floor (f : func) : func option =
  let dom = Dom.compute f in
  let loops = Dom.natural_loops dom in
  let rec try_loops = function
    | [] -> None
    | loop :: rest -> (
        let ctx = build_loop_ctx f dom loop in
        match hoist_candidates f ctx ~meta_floor with
        | [] -> try_loops rest
        | chosen -> (
            match find_preheader dom loop with
            | Some pre -> Some (apply_hoist f dom pre chosen)
            | None -> Some (insert_preheader f loop)))
  in
  try_loops loops

let hoist_loops ~meta_floor (f : func) : func =
  (* Each round either inserts one preheader or strictly shrinks some
     loop body; instructions re-hoist at most once per enclosing loop,
     so the budget is never the binding constraint in practice. *)
  let budget = ref (16 + (4 * Array.length f.fblocks)) in
  let f = ref f in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    match hoist_round ~meta_floor !f with
    | Some f' -> f := f'
    | None -> continue_ := false
  done;
  !f

(* ------------------------------------------------------------------ *)
(* Pass 1b: induction-variable check widening                           *)
(* ------------------------------------------------------------------ *)

(* A per-iteration [Check] whose address is affine in the loop's
   induction variable ([Scev.affine_addr]) is replaced by a single
   [CheckSpan] in the preheader covering the whole arithmetic
   progression.  Legality (beyond [Scev.analyze]'s loop-shape and
   no-observable-effects refusals): the check's block must dominate
   every latch (so the original runs exactly once per iteration), and
   the base/bound operands must be loop-invariant.  A check sitting in
   the header itself runs once more than the body — on the final,
   failing guard evaluation — so its span count is the trip count plus
   one.  The span's first-failing element is the program-order first
   failure (violations of an ascending progression form a prefix below
   base or a suffix above bound), so the trap address, site and message
   match the unwidened run's exactly; see DESIGN.md section 12 for the
   argument and the store-only-mode caveat. *)

let widen_one (f : func) (dom : Dom.t) (loops : Dom.loop list)
    (loop : Dom.loop) : func option =
  (* innermost loops only: a block of a multi-loop nest can execute
     many times per iteration of the outer loop, breaking the
     exactly-once-per-iteration accounting *)
  if
    List.exists
      (fun l' -> l' != loop && loop.Dom.body.(l'.Dom.header))
      loops
  then None
  else
    match Scev.analyze f dom loop with
    | None -> None
    | Some sc ->
        let cands = ref [] in
        Array.iteri
          (fun b blk ->
            if loop.Dom.body.(b) && Dom.reachable dom b then
              List.iteri
                (fun i inst ->
                  match inst with
                  | Check (p, base, bound, w, site)
                    when Scev.invariant_op sc base
                         && Scev.invariant_op sc bound
                         && List.for_all
                              (fun l -> Dom.dominates dom b l)
                              loop.Dom.latches -> (
                      match Scev.affine_addr sc (b, i) p with
                      | Some af ->
                          cands :=
                            ((b, i), (p, base, bound, w, site), af,
                             b = loop.Dom.header)
                            :: !cands
                      | None -> ())
                  | _ -> ())
                blk.insts)
          f.fblocks;
        let cands = List.rev !cands in
        if cands = [] then None
        else
          match find_preheader dom loop with
          | None -> Some (insert_preheader f loop)
          | Some pre ->
              let nregs = ref f.fnregs in
              let fresh () =
                let r = !nregs in
                incr nregs;
                r
              in
              let cnt_insts, cnt_op = Scev.emit_count sc ~fresh in
              let hdr_insts, hdr_op =
                if List.exists (fun (_, _, _, h) -> h) cands then
                  let hc = fresh () in
                  ([ Bin (hc, Add, I64, cnt_op, ImmI 1) ], Reg hc)
                else ([], cnt_op)
              in
              let spans =
                List.concat_map
                  (fun (_, (p, base, bound, w, site), af, in_header) ->
                    let chain, first = Scev.clone_chain sc ~fresh af p in
                    chain
                    @ [
                        CheckSpan
                          {
                            sp_first = first;
                            sp_count = (if in_header then hdr_op else cnt_op);
                            sp_stride = af.Scev.af_stride;
                            sp_width = w;
                            sp_base = base;
                            sp_bound = bound;
                            sp_site = site;
                            sp_sites = [||];
                          };
                      ])
                  cands
              in
              let removed = Hashtbl.create 8 in
              List.iter
                (fun (pos, _, _, _) -> Hashtbl.replace removed pos ())
                cands;
              let fblocks =
                Array.mapi
                  (fun b blk ->
                    let insts =
                      List.filteri
                        (fun i _ -> not (Hashtbl.mem removed (b, i)))
                        blk.insts
                    in
                    let insts =
                      if b = pre then insts @ cnt_insts @ hdr_insts @ spans
                      else insts
                    in
                    { blk with insts })
                  f.fblocks
              in
              Some { f with fblocks; fnregs = !nregs }

let widen_round (f : func) : func option =
  let dom = Dom.compute f in
  let loops = Dom.natural_loops dom in
  let rec go = function
    | [] -> None
    | loop :: rest -> (
        match widen_one f dom loops loop with
        | Some f' -> Some f'
        | None -> go rest)
  in
  go loops

let widen_loops (f : func) : func =
  (* Each round either inserts one preheader or removes every widenable
     check of one loop, so this terminates well inside the budget. *)
  let budget = ref (16 + (4 * Array.length f.fblocks)) in
  let f = ref f in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    match widen_round !f with
    | Some f' -> f := f'
    | None -> continue_ := false
  done;
  !f

(* ------------------------------------------------------------------ *)
(* Pass 1c: within-block check coalescing                               *)
(* ------------------------------------------------------------------ *)

(* Checks in one block on the same base/bound whose addresses are the
   same linear form at constant offsets with a uniform ascending gap —
   [a[i]] and [a[i+1]] — merge into one [CheckSpan] at the first
   check's position carrying every member's site id.  Addresses are
   compared by symbolic linear forms over versioned register leaves, so
   a redefinition of any involved register simply stops the match.  Any
   instruction that can trap or produce output between two members
   would make the merged check's earlier trap observable, so calls,
   register-divisor divisions and foreign checks close every open
   group (loads and stores between members are allowed and share the
   store-only-mode caveat of DESIGN.md section 12). *)

module Lin = struct
  type leaf =
    | LReg of reg * int  (** register at a definition version *)
    | LSlot of int  (** address of a frame slot — constant per call *)
    | LGlob of string
    | LGlobEnd of string
    | LFunc of string

  (* linear form: constant + sum of coefficient * leaf, leaves sorted *)
  type t = { terms : (leaf * int) list; k : int }

  let const k = { terms = []; k }
  let leaf l = { terms = [ (l, 1) ]; k = 0 }

  let add a b =
    let rec merge xs ys =
      match (xs, ys) with
      | [], l | l, [] -> l
      | (lx, cx) :: tx, (ly, cy) :: ty ->
          let c = compare lx ly in
          if c = 0 then
            if cx + cy = 0 then merge tx ty
            else (lx, cx + cy) :: merge tx ty
          else if c < 0 then (lx, cx) :: merge tx ys
          else (ly, cy) :: merge xs ty
    in
    { terms = merge a.terms b.terms; k = a.k + b.k }

  let scale s e =
    if s = 0 then const 0
    else { terms = List.map (fun (l, c) -> (l, c * s)) e.terms; k = e.k * s }

  let sub a b = add a (scale (-1) b)
end

let coalesce_block (blk : block) : block =
  let version : (reg, int) Hashtbl.t = Hashtbl.create 16 in
  let ver r = try Hashtbl.find version r with Not_found -> 0 in
  let bump r = Hashtbl.replace version r (ver r + 1) in
  (* current symbolic value of a register, at its current version *)
  let vals : (reg, Lin.t) Hashtbl.t = Hashtbl.create 16 in
  let expr_of (op : operand) : Lin.t option =
    match op with
    | ImmI c -> Some (Lin.const c)
    | ImmF _ -> None
    | Glob g -> Some (Lin.leaf (Lin.LGlob g))
    | GlobEnd g -> Some (Lin.leaf (Lin.LGlobEnd g))
    | Func g -> Some (Lin.leaf (Lin.LFunc g))
    | Reg r -> (
        match Hashtbl.find_opt vals r with
        | Some e -> Some e
        | None -> Some (Lin.leaf (Lin.LReg (r, ver r))))
  in
  (* value of a register being defined, before versions are bumped; only
     wide-typed arithmetic is tracked (narrow results truncate) *)
  let def_expr (inst : inst) : (reg * Lin.t option) option =
    let wide = function I64 | U64 | P -> true | _ -> false in
    match inst with
    | Mov (r, ty, o) -> Some (r, if wide ty then expr_of o else None)
    | Slotaddr (r, s) -> Some (r, Some (Lin.leaf (Lin.LSlot s)))
    | Gep (r, a, b, _) ->
        let e =
          match (expr_of a, expr_of b) with
          | Some ea, Some eb -> Some (Lin.add ea eb)
          | _ -> None
        in
        Some (r, e)
    | Cast (r, to_, from_, o) ->
        Some (r, if wide to_ && wide from_ then expr_of o else None)
    | Bin (r, op, ty, a, b) ->
        let e =
          if not (wide ty) then None
          else
            match (op, expr_of a, expr_of b) with
            | Add, Some ea, Some eb -> Some (Lin.add ea eb)
            | Sub, Some ea, Some eb -> Some (Lin.sub ea eb)
            | Mul, Some ea, Some { Lin.terms = []; k } ->
                Some (Lin.scale k ea)
            | Mul, Some { Lin.terms = []; k }, Some eb ->
                Some (Lin.scale k eb)
            | Shl, Some ea, Some { Lin.terms = []; k }
              when k >= 0 && k < 32 ->
                Some (Lin.scale (1 lsl k) ea)
            | _ -> None
        in
        Some (r, e)
    | _ -> None
  in
  let assign r e =
    bump r;
    match e with
    | Some e -> Hashtbl.replace vals r e
    | None -> Hashtbl.remove vals r
  in
  (* open coalescing groups *)
  let module G = struct
    type t = {
      key : Lin.t * Lin.t * int * (Lin.leaf * int) list;
      mutable members : (int * int * int) list;  (* (idx, const, site), rev *)
      mutable gap : int;  (* 0 until the second member fixes it *)
      first : span_check;  (* span template from the first member *)
    }
  end in
  let groups : G.t list ref = ref [] in
  (* rewrites: idx -> Some span (replace) / None (delete) *)
  let rewrites : (int, inst option) Hashtbl.t = Hashtbl.create 8 in
  let close (g : G.t) =
    match g.G.members with
    | (_ :: _ :: _) as members ->
        let members = List.rev members in
        let i0, _, _ = List.hd members in
        let sites = List.map (fun (_, _, s) -> s) members in
        Hashtbl.replace rewrites i0
          (Some
             (CheckSpan
                {
                  g.G.first with
                  sp_count = ImmI (List.length members);
                  sp_stride = g.G.gap;
                  sp_sites = Array.of_list sites;
                }));
        List.iter
          (fun (i, _, _) -> if i <> i0 then Hashtbl.replace rewrites i None)
          (List.tl members)
    | _ -> ()
  in
  let close_all () =
    List.iter close !groups;
    groups := []
  in
  List.iteri
    (fun idx inst ->
      match inst with
      | Check (p, base, bound, w, site) -> (
          (match (expr_of p, expr_of base, expr_of bound) with
          | None, _, _ | _, None, _ | _, _, None -> close_all ()
          | Some e, Some be, Some de -> (
              (* keyed on the symbolic values of base/bound (not their
                 register identity: straight-line accesses re-derive the
                 same slot/global address into fresh registers) *)
              let key = (be, de, w, e.Lin.terms) in
              let mine, others =
                List.partition (fun g -> g.G.key = key) !groups
              in
              (* a check is a potential trap: no foreign group may span
                 across it *)
              List.iter close others;
              match mine with
              | g :: _ -> (
                  let _, last_k, _ = List.hd g.G.members in
                  let d = e.Lin.k - last_k in
                  let extends =
                    d >= 1 && (g.G.gap = 0 || d = g.G.gap)
                  in
                  if extends then begin
                    g.G.gap <- d;
                    g.G.members <- (idx, e.Lin.k, site) :: g.G.members;
                    groups := [ g ]
                  end
                  else begin
                    close g;
                    groups :=
                      [
                        {
                          G.key;
                          members = [ (idx, e.Lin.k, site) ];
                          gap = 0;
                          first =
                            {
                              sp_first = p;
                              sp_count = ImmI 1;
                              sp_stride = 0;
                              sp_width = w;
                              sp_base = base;
                              sp_bound = bound;
                              sp_site = site;
                              sp_sites = [||];
                            };
                        };
                      ]
                  end)
              | [] ->
                  groups :=
                    [
                      {
                        G.key;
                        members = [ (idx, e.Lin.k, site) ];
                        gap = 0;
                        first =
                          {
                            sp_first = p;
                            sp_count = ImmI 1;
                            sp_stride = 0;
                            sp_width = w;
                            sp_base = base;
                            sp_bound = bound;
                            sp_site = site;
                            sp_sites = [||];
                          };
                      };
                    ]));
          ())
      | CheckFptr _ | CheckSpan _ -> close_all ()
      | Call { rets; _ } ->
          close_all ();
          List.iter (fun r -> assign r None) rets
      | Bin (_, (Div | Rem), _, _, d) ->
          (match d with ImmI c when c <> 0 -> () | _ -> close_all ());
          (match def_expr inst with
          | Some (r, e) -> assign r e
          | None -> ())
      | _ -> (
          match def_expr inst with
          | Some (r, e) -> assign r e
          | None -> List.iter (fun r -> assign r None) (defs_of inst)))
    blk.insts;
  close_all ();
  if Hashtbl.length rewrites = 0 then blk
  else
    let insts =
      List.mapi
        (fun i x ->
          match Hashtbl.find_opt rewrites i with
          | Some (Some span) -> Some span
          | Some None -> None
          | None -> Some x)
        blk.insts
      |> List.filter_map Fun.id
    in
    { blk with insts }

let coalesce_blocks (f : func) : func =
  { f with fblocks = Array.map coalesce_block f.fblocks }

(* ------------------------------------------------------------------ *)
(* Pass 2: within-block metadata-lookup CSE                             *)
(* ------------------------------------------------------------------ *)

let local_metaload_cse (f : func) : func =
  let rewrite blk =
    (* available lookups: address operand -> registers holding its
       base/bound, newest first *)
    let tbl = ref [] in
    let kill_reg r =
      tbl :=
        List.filter
          (fun (a, (b, e)) -> (not (equal_operand a (Reg r))) && b <> r && e <> r)
          !tbl
    in
    let rev =
      List.fold_left
        (fun acc inst ->
          match inst with
          | MetaLoad (rb, re, a, _) -> (
              match
                List.find_opt (fun (a0, _) -> equal_operand a0 a) !tbl
              with
              | Some (_, (b0, e0)) when b0 = rb && e0 = re ->
                  (* same destinations already hold this lookup *)
                  acc
              | Some (_, (b0, e0)) ->
                  kill_reg rb;
                  kill_reg re;
                  tbl := (a, (rb, re)) :: !tbl;
                  Mov (re, P, Reg e0) :: Mov (rb, P, Reg b0) :: acc
              | None ->
                  kill_reg rb;
                  kill_reg re;
                  tbl := (a, (rb, re)) :: !tbl;
                  inst :: acc)
          | MetaStore _ | Call _ | SetBoundMark _ ->
              tbl := [];
              inst :: acc
          | _ ->
              List.iter kill_reg (defs_of inst);
              inst :: acc)
        [] blk.insts
    in
    { blk with insts = List.rev rev }
  in
  { f with fblocks = Array.map rewrite f.fblocks }

(* ------------------------------------------------------------------ *)
(* Pass 3: available-checks dataflow and elimination                    *)
(* ------------------------------------------------------------------ *)

type fact =
  | FCheck of operand * operand * operand
  | FFptr of operand * operand * operand * int option

module FM = Map.Make (struct
  type t = fact

  let compare = Stdlib.compare
end)

let fact_mentions_reg r = function
  | FCheck (a, b, c) | FFptr (a, b, c, _) ->
      let m = equal_operand (Reg r) in
      m a || m b || m c

let kill_defs defs m =
  if defs = [] then m
  else
    FM.filter
      (fun k _ -> not (List.exists (fun r -> fact_mentions_reg r k) defs))
      m

let transfer_inst m inst =
  match inst with
  | Check (p, b, e, w, _) ->
      (* facts key on operands only: the site id names the instruction,
         it is not part of the checked predicate *)
      let key = FCheck (p, b, e) in
      let w' = match FM.find_opt key m with Some x -> max x w | None -> w in
      FM.add key w' m
  | CheckFptr (p, b, e, h, _) -> FM.add (FFptr (p, b, e, h)) 0 m
  | _ -> kill_defs (defs_of inst) m

(* Intersection meet: a fact is available with the weakest width any
   predecessor guarantees. *)
let meet a b =
  FM.merge
    (fun _ x y ->
      match (x, y) with Some x, Some y -> Some (min x y) | _ -> None)
    a b

let check_cse (f : func) : func =
  let dom = Dom.compute f in
  let n = Array.length f.fblocks in
  (* [None] is the optimistic top element (not yet computed); the meet
     ignores top predecessors, which is what makes back edges converge
     from above. *)
  let out = Array.make n None in
  let in_of b =
    if b = 0 then Some FM.empty
    else
      List.fold_left
        (fun acc p ->
          match out.(p) with
          | None -> acc
          | Some m -> (
              match acc with None -> Some m | Some a -> Some (meet a m)))
        None dom.Dom.preds.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        match in_of b with
        | None -> ()
        | Some m ->
            let m' = List.fold_left transfer_inst m f.fblocks.(b).insts in
            let same =
              match out.(b) with
              | Some prev -> FM.equal Int.equal prev m'
              | None -> false
            in
            if not same then begin
              out.(b) <- Some m';
              changed := true
            end)
      dom.Dom.rpo
  done;
  let rewrite b blk =
    match if Dom.reachable dom b then in_of b else None with
    | None -> blk
    | Some m0 ->
        let _, rev =
          List.fold_left
            (fun (m, acc) inst ->
              match inst with
              | Check (p, b_, e, w, _) -> (
                  match FM.find_opt (FCheck (p, b_, e)) m with
                  | Some w' when w' >= w -> (m, acc)
                  | _ -> (transfer_inst m inst, inst :: acc))
              | CheckFptr (p, b_, e, h, _) ->
                  if FM.mem (FFptr (p, b_, e, h)) m then (m, acc)
                  else (transfer_inst m inst, inst :: acc)
              | _ -> (transfer_inst m inst, inst :: acc))
            (m0, []) blk.insts
        in
        { blk with insts = List.rev rev }
  in
  { f with fblocks = Array.mapi rewrite f.fblocks }

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let elim_func ~(meta_floor : int) ?(widen = true) (f : func) : func =
  let f = hoist_loops ~meta_floor f in
  let f = if widen then widen_loops f else f in
  let f = if widen then coalesce_blocks f else f in
  let f = local_metaload_cse f in
  let f = check_cse f in
  f

(** Static instrumentation census, for tests and reporting. *)
let count_insts (p : inst -> bool) (f : func) : int =
  Array.fold_left
    (fun acc blk ->
      acc + List.length (List.filter p blk.insts))
    0 f.fblocks

let count_checks =
  count_insts (function Check _ | CheckFptr _ -> true | _ -> false)

let count_metaloads = count_insts (function MetaLoad _ -> true | _ -> false)

(** Loop-widened spans: one preheader check standing for a whole loop's
    per-iteration checks (empty [sp_sites]). *)
let count_widened =
  count_insts (function
    | CheckSpan { sp_sites; _ } -> Array.length sp_sites = 0
    | _ -> false)

(** Checks saved by in-block coalescing: members beyond the first of
    each multi-site span. *)
let count_coalesced (f : func) : int =
  Array.fold_left
    (fun acc blk ->
      List.fold_left
        (fun acc inst ->
          match inst with
          | CheckSpan { sp_sites; _ } -> acc + max 0 (Array.length sp_sites - 1)
          | _ -> acc)
        acc blk.insts)
    0 f.fblocks
