(* The SoftBound compile-time transformation (paper section 3).

   An IR-to-IR pass.  For every function it:

   1. renames the function to [_sb_<name>] and appends base/bound
      parameters for each pointer parameter (and extends pointer-returning
      functions to return a (pointer, base, bound) triple) — section 3.3;
   2. associates two metadata registers with every pointer-valued virtual
      register, propagating them through moves, pointer arithmetic
      ([Gep]), loads (disjoint-metadata-space lookup) and stores (space
      update) — sections 3.1 and 3.2;
   3. inserts a bounds [Check] before every load and store (full mode) or
      before stores only (store-only mode), skipping provably-safe direct
      accesses to scalar stack slots and scalar globals (the paper
      likewise exempts scalar locals / register spills);
   4. rewrites call sites: direct callees get the [_sb_] name, pointer
      arguments carry their metadata, indirect calls are preceded by the
      function-pointer check (base = bound = ptr, section 5.2);
   5. narrows bounds at struct-field address creation (section 3.1);
   6. emits the synthetic [__sb_global_init] that installs metadata for
      statically initialized pointer globals (section 5.2);
   7. clears stale metadata of pointer-holding stack slots on return and
      selects the metadata-clearing [free] wrapper for pointer-bearing
      heap types (section 5.2).

   A metadata-liveness pre-pass avoids materializing metadata that no
   check, call, return or pointer store can ever observe — the kind of
   cleanup the paper gets from re-running LLVM's optimizers over the
   instrumented code (section 6.1). *)

module Ir = Sbir.Ir
open Ir

let sb_prefix = "_sb_"
let sb_name n = sb_prefix ^ n
let global_init_name = "__sb_global_init"

(* ------------------------------------------------------------------ *)
(* Per-function transformation context                                  *)
(* ------------------------------------------------------------------ *)

type fctx = {
  opts : Config.options;
  defined : (string, unit) Hashtbl.t;  (** functions defined in the module *)
  mutable nregs : int;
  meta : (reg, reg * reg) Hashtbl.t;  (** pointer reg -> (base, bound) regs *)
  needed : bool array;  (** metadata-liveness, indexed by original reg *)
  slot_direct : bool array;
      (** regs that always hold a raw [Slotaddr] result (accesses through
          them are compile-time safe, like scalar locals) *)
  sites : int ref;
      (** module-wide instrumentation-site counter, shared across
          functions; ids are assigned in emission order {e before} any
          elimination runs, so the numbering is identical whether or not
          [eliminate_checks] is on — which is what lets observers
          compute "elided = assigned minus surviving" *)
}

let fresh ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let next_site ctx =
  incr ctx.sites;
  !(ctx.sites)

let meta_regs ctx r =
  match Hashtbl.find_opt ctx.meta r with
  | Some p -> p
  | None ->
      let rb = fresh ctx in
      let re = fresh ctx in
      Hashtbl.replace ctx.meta r (rb, re);
      (rb, re)

(** Metadata operands for a pointer-valued operand (section 3.1):
    globals get their static extent, function designators get the
    base = bound = ptr encoding, integer constants get null bounds. *)
let meta_of_operand ctx (o : operand) : operand * operand =
  match o with
  | Reg r ->
      let rb, re = meta_regs ctx r in
      (Reg rb, Reg re)
  | Glob g -> (Glob g, GlobEnd g)
  | GlobEnd g -> (GlobEnd g, GlobEnd g)
  | Func f -> (Func f, Func f)
  | ImmI _ | ImmF _ -> (ImmI 0, ImmI 0)

(* ------------------------------------------------------------------ *)
(* Pass 0: which registers always hold raw slot addresses?              *)
(* ------------------------------------------------------------------ *)

let compute_slot_direct (f : func) : bool array =
  let direct = Array.make (max 1 f.fnregs) false in
  let defined_other = Array.make (max 1 f.fnregs) false in
  Array.iter
    (fun b ->
      List.iter
        (fun inst ->
          match inst with
          | Slotaddr (r, _) -> direct.(r) <- true
          | Mov (r, _, _) | Bin (r, _, _, _, _) | Cmp (r, _, _, _, _)
          | Cast (r, _, _, _) | Load (r, _, _) | Gep (r, _, _, _) ->
              defined_other.(r) <- true
          | MetaLoad (r1, r2, _, _) ->
              defined_other.(r1) <- true;
              defined_other.(r2) <- true
          | Call { rets; _ } ->
              List.iter (fun r -> defined_other.(r) <- true) rets
          | Store _ | SetBoundMark _ | Check _ | CheckFptr _ | MetaStore _
          | CheckSpan _ ->
              ())
        b.insts)
    f.fblocks;
  Array.mapi (fun i d -> d && not defined_other.(i)) direct

(* ------------------------------------------------------------------ *)
(* Pass 1: metadata liveness                                            *)
(* ------------------------------------------------------------------ *)

(** Does this access get a bounds check?  Direct slot addresses and bare
    globals are compile-time safe. *)
let access_checked (slot_direct : bool array) (addr : operand) =
  match addr with
  | Reg r -> not slot_direct.(r)
  | Glob _ | GlobEnd _ -> false
  | Func _ -> true
  | ImmI _ | ImmF _ -> true

let compute_needed (opts : Config.options) (f : func)
    (slot_direct : bool array) : bool array =
  if not opts.Config.prune_liveness then Array.make (max 1 f.fnregs) true
  else
  let needed = Array.make (max 1 f.fnregs) false in
  let changed = ref true in
  let mark_track o =
    match o with
    | Reg r when not needed.(r) ->
        needed.(r) <- true;
        changed := true
    | _ -> ()
  in
  (* seed and propagate to fixpoint *)
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        List.iter
          (fun inst ->
            match inst with
            | Store (t, addr, v) ->
                (* pointer stores update the metadata space *)
                if t = P then mark_track v;
                (* checked accesses consume the address's metadata *)
                if access_checked slot_direct addr then mark_track addr
            | Load (_, _, addr) ->
                if
                  opts.Config.mode = Config.Full_checking
                  && access_checked slot_direct addr
                then mark_track addr
            | Call { callee; sg; args; _ } ->
                (match callee with
                | Func _ -> ()
                | o -> mark_track o (* function-pointer check *));
                List.iteri
                  (fun i a ->
                    match List.nth_opt sg.cargs i with
                    | Some P -> mark_track a
                    | _ -> ())
                  args
            | SetBoundMark _ -> ()
            | Mov (d, P, s) -> if needed.(d) then mark_track s
            | Gep (d, s, _, shrink) ->
                let independent =
                  shrink <> None && opts.Config.shrink_bounds
                in
                if needed.(d) && not independent then mark_track s
            | _ -> ())
          b.insts;
        match b.term with
        | TRet ops ->
            List.iteri
              (fun i o ->
                match List.nth_opt f.frets i with
                | Some P -> mark_track o
                | _ -> ())
              ops
        | _ -> ())
      f.fblocks
  done;
  needed

(* ------------------------------------------------------------------ *)
(* Pass 2: rewriting                                                    *)
(* ------------------------------------------------------------------ *)

(** Rewrite function-designator operands to their transformed names. *)
let rw_op (o : operand) : operand =
  match o with Func f -> Func (sb_name f) | o -> o

(** Emit metadata propagation for a pointer write to [dst] from source
    metadata operands. *)
let propagate ctx dst (bop, eop) acc =
  if dst < Array.length ctx.needed && not ctx.needed.(dst) then acc
  else begin
    let rb, re = meta_regs ctx dst in
    Mov (re, P, eop) :: Mov (rb, P, bop) :: acc
  end

let transform_inst ctx (f : func) (inst : inst) (acc : inst list) : inst list =
  let opts = ctx.opts in
  let full = opts.Config.mode = Config.Full_checking in
  (* function-designator operands must point at the transformed code —
     everywhere, including casts, comparisons and stored values; the
     [Call] case handles its own callee (wrapper-variant selection) *)
  let inst =
    match inst with Call _ -> inst | i -> map_inst_operands rw_op i
  in
  match inst with
  | Mov (r, P, s) ->
      let acc = Mov (r, P, s) :: acc in
      propagate ctx r (meta_of_operand ctx s) acc
  | Mov _ -> inst :: acc
  | Bin _ | Cmp _ -> inst :: acc
  | Cast (r, P, _, _) ->
      (* integer-to-pointer: null bounds (section 5.2) *)
      let acc = inst :: acc in
      propagate ctx r (ImmI 0, ImmI 0) acc
  | Cast _ -> inst :: acc
  | Slotaddr (r, s) ->
      let acc = inst :: acc in
      if ctx.needed.(r) then begin
        let size = f.fslots.(s).sl_size in
        let rb, re = meta_regs ctx r in
        Bin (re, Add, P, Reg r, ImmI size) :: Mov (rb, P, Reg r) :: acc
      end
      else acc
  | Gep (r, base, off, shrink) ->
      let acc = Gep (r, base, off, shrink) :: acc in
      if r < Array.length ctx.needed && not ctx.needed.(r) then acc
      else begin
        match shrink with
        | Some size when opts.Config.shrink_bounds ->
            (* pointer to a sub-object: bounds narrow to the field *)
            let rb, re = meta_regs ctx r in
            Bin (re, Add, P, Reg r, ImmI size) :: Mov (rb, P, Reg r) :: acc
        | _ -> propagate ctx r (meta_of_operand ctx base) acc
      end
  | Load (r, t, addr) ->
      let acc =
        if full && access_checked ctx.slot_direct addr then
          let b, e = meta_of_operand ctx addr in
          Check (addr, b, e, ity_size t, next_site ctx) :: acc
        else acc
      in
      let acc = Load (r, t, addr) :: acc in
      if t = P && ctx.needed.(r) then begin
        let rb, re = meta_regs ctx r in
        MetaLoad (rb, re, addr, next_site ctx) :: acc
      end
      else acc
  | Store (t, addr, v) ->
      let acc =
        if access_checked ctx.slot_direct addr then
          let b, e = meta_of_operand ctx addr in
          Check (addr, b, e, ity_size t, next_site ctx) :: acc
        else acc
      in
      let acc = Store (t, addr, v) :: acc in
      if t = P then begin
        let b, e = meta_of_operand ctx v in
        MetaStore (addr, b, e, next_site ctx) :: acc
      end
      else acc
  | SetBoundMark (addr, size) ->
      (* setbound(p, n): reload the pointer and install [p, p+n) *)
      let p = fresh ctx in
      let e = fresh ctx in
      MetaStore (addr, Reg p, Reg e, next_site ctx)
      :: Bin (e, Add, P, Reg p, size)
      :: Load (p, P, addr)
      :: acc
  | Call { rets; callee; sg; hints; args } ->
      (* metadata for each pointer argument, appended in order *)
      let extra =
        List.concat
          (List.mapi
             (fun i a ->
               match List.nth_opt sg.cargs i with
               | Some P ->
                   let b, e = meta_of_operand ctx (rw_op a) in
                   [ b; e ]
               | _ -> [])
             args)
      in
      let args = List.map rw_op args @ extra in
      let cargs = sg.cargs @ List.map (fun _ -> P) extra in
      (* pointer-returning calls yield a (ptr, base, bound) triple *)
      let rets, crets =
        match (rets, sg.crets) with
        | [ r ], [ P ] ->
            let rb, re = meta_regs ctx r in
            ([ r; rb; re ], [ P; P; P ])
        | rs, cs -> (rs, cs)
      in
      let sg = { cargs; crets; cvariadic = sg.cvariadic } in
      let acc, callee =
        match callee with
        | Func g ->
            let g =
              if Hashtbl.mem ctx.defined g then sb_name g
              else
                (* external/builtin: checked wrapper, with the memcpy and
                   free variants chosen from the lowering hints *)
                match g with
                | "memcpy" | "memmove"
                  when opts.Config.memcpy_heuristic
                       && List.mem "memcpy-noptr" hints ->
                    sb_name (g ^ "_nometa")
                | "free"
                  when opts.Config.clear_free_meta
                       && List.mem "free-withmeta" hints ->
                    sb_name "free_withmeta"
                | g -> sb_name g
            in
            (acc, Func g)
        | op ->
            let op = rw_op op in
            let b, e = meta_of_operand ctx op in
            let h =
              if opts.Config.fptr_signatures then Some (sig_hash sg)
              else None
            in
            (CheckFptr (op, b, e, h, next_site ctx) :: acc, op)
      in
      Call { rets; callee; sg; hints; args } :: acc
  | Check _ | CheckFptr _ | MetaLoad _ | MetaStore _ | CheckSpan _ ->
      (* idempotence guard: transforming already-transformed code is a
         programming error *)
      invalid_arg "Transform: module already instrumented"

(** Metadata-clearing sequence for pointer-holding stack slots, emitted
    before each return (section 5.2). *)
let clear_stack_meta ctx (f : func) : inst list =
  if not ctx.opts.Config.clear_stack_meta then []
  else
    List.concat
      (List.mapi
         (fun si (sl : slot) ->
           List.concat_map
             (fun off ->
               let a = fresh ctx in
               if off = 0 then
                 [
                   Slotaddr (a, si);
                   MetaStore (Reg a, ImmI 0, ImmI 0, next_site ctx);
                 ]
               else begin
                 let a2 = fresh ctx in
                 [
                   Slotaddr (a, si);
                   Gep (a2, Reg a, ImmI off, None);
                   MetaStore (Reg a2, ImmI 0, ImmI 0, next_site ctx);
                 ]
               end)
             sl.sl_ptr_offsets)
         (Array.to_list f.fslots))

let transform_term ctx (f : func) (term : terminator) :
    inst list * terminator =
  let term = map_term_operands rw_op term in
  match term with
  | TRet ops ->
      let clear = clear_stack_meta ctx f in
      let ops = List.map rw_op ops in
      let ops =
        match (ops, f.frets) with
        | [ p ], [ P ] ->
            let b, e = meta_of_operand ctx p in
            [ p; b; e ]
        | ops, _ -> ops
      in
      (clear, TRet ops)
  | t -> ([], t)

let transform_func (opts : Config.options) defined sites (f : func) : func =
  let slot_direct = compute_slot_direct f in
  let needed = compute_needed opts f slot_direct in
  let ctx =
    {
      opts;
      defined;
      nregs = f.fnregs;
      meta = Hashtbl.create 32;
      needed;
      slot_direct;
      sites;
    }
  in
  (* pointer parameters: their metadata arrives as appended parameters *)
  let meta_params =
    List.concat_map
      (fun (r, t) ->
        if t = P then begin
          let rb, re = meta_regs ctx r in
          [ (rb, P); (re, P) ]
        end
        else [])
      f.fparams
  in
  let fblocks =
    Array.map
      (fun b ->
        let insts =
          List.rev (List.fold_left (fun acc i -> transform_inst ctx f i acc)
                      [] b.insts)
        in
        let pre_ret, term = transform_term ctx f b.term in
        { insts = insts @ pre_ret; term })
      f.fblocks
  in
  let frets = match f.frets with [ P ] -> [ P; P; P ] | r -> r in
  {
    f with
    fname = sb_name f.fname;
    fparams = f.fparams @ meta_params;
    frets;
    fblocks;
    fnregs = ctx.nregs;
  }

(* ------------------------------------------------------------------ *)
(* Global metadata initializer (section 5.2, "Global variables")        *)
(* ------------------------------------------------------------------ *)

let build_global_init (m : modul) sites : func * global list =
  let nregs = ref 0 in
  let fresh () =
    let r = !nregs in
    incr nregs;
    r
  in
  let next_site () =
    incr sites;
    !sites
  in
  let insts = ref [] in
  let globals =
    List.map
      (fun g ->
        let ginit =
          List.map
            (fun (off, v) ->
              match v with
              | GFuncAddr fn ->
                  (* function pointers now point at the transformed code *)
                  (off, GFuncAddr (sb_name fn))
              | v -> (off, v))
            g.ginit
        in
        List.iter
          (fun (off, v) ->
            let meta =
              match v with
              | GAddr (tgt, _) -> Some (Glob tgt, GlobEnd tgt)
              | GFuncAddr fn -> Some (Func fn, Func fn)
              | _ -> None
            in
            match meta with
            | None -> ()
            | Some (b, e) ->
                let a = fresh () in
                insts :=
                  MetaStore (Reg a, b, e, next_site ())
                  :: Gep (a, Glob g.gname, ImmI off, None)
                  :: !insts)
          ginit;
        { g with ginit })
      m.mglobals
  in
  let f =
    {
      fname = global_init_name;
      fparams = [];
      frets = [];
      fvariadic = false;
      fva_regs = None;
      fslots = [||];
      fframe_size = 0;
      fblocks = [| { insts = List.rev !insts; term = TRet [] } |];
      fnregs = max 1 !nregs;
    }
  in
  (f, globals)

(* ------------------------------------------------------------------ *)
(* Module transformation                                                *)
(* ------------------------------------------------------------------ *)

(** Transform and also report how many instrumentation sites were
    assigned.  Site ids are handed out during emission — before the
    optional elimination pass prunes anything — so the count (and each
    surviving instruction's id) is identical across [eliminate_checks]
    settings; observers compute elided sites as assigned-minus-surviving. *)
let transform_with_sites ?(opts = Config.default) (m : modul) : modul * int =
  let defined = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace defined n ()) m.mfunc_order;
  let sites = ref 0 in
  let mfuncs = Hashtbl.create 64 in
  let mfunc_order =
    List.map
      (fun n ->
        let f0 = Hashtbl.find m.mfuncs n in
        let f = transform_func opts defined sites f0 in
        (* The register count before instrumentation separates metadata
           registers from program registers for the elimination pass. *)
        let f =
          if opts.Config.eliminate_checks then
            Elim.elim_func ~meta_floor:f0.fnregs
              ~widen:opts.Config.widen_checks f
          else f
        in
        Hashtbl.replace mfuncs f.fname f;
        f.fname)
      m.mfunc_order
  in
  let init_f, mglobals = build_global_init m sites in
  Hashtbl.replace mfuncs init_f.fname init_f;
  let m' =
    {
      mfuncs;
      mglobals;
      mfunc_order = mfunc_order @ [ init_f.fname ];
      mexterns = m.mexterns;
    }
  in
  validate m';
  (m', !sites)

let transform ?opts (m : modul) : modul = fst (transform_with_sites ?opts m)
