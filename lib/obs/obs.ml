(* Check-level observability: per-site counters, wrapper buckets,
   per-segment cache statistics, and a bounded event ring.

   The collector is purely observational — it never charges simulated
   cycles, so every simulated-cost result is bit-identical whether
   observability is enabled or not.  Cycle *attribution* works by
   difference: the interpreter snapshots its cycle counter around each
   safety-relevant operation and reports the delta here.

   Sites are the stable ids the SoftBound transformation stamps on
   [Check]/[CheckFptr]/[MetaLoad]/[MetaStore] at emission time, before
   any elimination runs; id 0 means "runtime-originated" (wrapper
   internals, allocator bookkeeping).  Operations at site 0 that execute
   inside a known wrapper are attributed to that wrapper's name, so the
   unattributable residue is only the VM's own bookkeeping. *)

module Ir = Sbir.Ir
module L = Machine.Layout

(* ------------------------------------------------------------------ *)
(* Operation kinds                                                      *)
(* ------------------------------------------------------------------ *)

type kind = KCheck | KCheckFptr | KMetaLoad | KMetaStore

let kind_index = function
  | KCheck -> 0
  | KCheckFptr -> 1
  | KMetaLoad -> 2
  | KMetaStore -> 3

let n_kinds = 4

let kind_name = function
  | KCheck -> "check"
  | KCheckFptr -> "check_fptr"
  | KMetaLoad -> "meta_load"
  | KMetaStore -> "meta_store"

let all_kinds = [ KCheck; KCheckFptr; KMetaLoad; KMetaStore ]

(* ------------------------------------------------------------------ *)
(* Static site table                                                    *)
(* ------------------------------------------------------------------ *)

type site_info = {
  si_id : int;
  si_kind : kind;
  si_func : string;
  si_block : int;
}

(** Scan an instrumented module for the instrumentation sites it still
    contains (after elimination, hoisted/CSEd sites are simply absent),
    ordered by site id. *)
let sites_of_modul (m : Ir.modul) : site_info list =
  let acc = ref [] in
  Ir.iter_funcs m (fun f ->
      Array.iteri
        (fun bi b ->
          List.iter
            (fun inst ->
              let add id k =
                if id > 0 then
                  acc :=
                    { si_id = id; si_kind = k; si_func = f.Ir.fname;
                      si_block = bi }
                    :: !acc
              in
              match inst with
              | Ir.Check (_, _, _, _, site) -> add site KCheck
              | Ir.CheckFptr (_, _, _, _, site) -> add site KCheckFptr
              | Ir.MetaLoad (_, _, _, site) -> add site KMetaLoad
              | Ir.MetaStore (_, _, _, site) -> add site KMetaStore
              | Ir.CheckSpan { Ir.sp_site; sp_sites; _ } ->
                  (* a widened span keeps its original site(s) alive in
                     the census: those accesses are still checked, just
                     by one widened instruction *)
                  if Array.length sp_sites = 0 then add sp_site KCheck
                  else Array.iter (fun s -> add s KCheck) sp_sites
              | _ -> ())
            b.Ir.insts)
        f.Ir.fblocks);
  List.sort (fun a b -> compare a.si_id b.si_id) !acc

(* ------------------------------------------------------------------ *)
(* Events (trace ring)                                                  *)
(* ------------------------------------------------------------------ *)

type event =
  | E_check of { site : int; addr : int; base : int; bound : int;
                 size : int; ok : bool }
  | E_check_span of { site : int; first : int; count : int; stride : int;
                      width : int; base : int; bound : int; ok : bool }
  | E_fptr_check of { site : int; addr : int; ok : bool }
  | E_meta_load of { site : int; addr : int; base : int; bound : int }
  | E_meta_store of { site : int; addr : int; base : int; bound : int }
  | E_wrapper of { name : string }
  | E_trap of { detail : string }

let string_of_event = function
  | E_check { site; addr; base; bound; size; ok } ->
      Printf.sprintf "check      site=%-4d ptr=0x%x size=%d in [0x%x,0x%x) %s"
        site addr size base bound
        (if ok then "ok" else "VIOLATION")
  | E_check_span { site; first; count; stride; width; base; bound; ok } ->
      Printf.sprintf
        "check.span site=%-4d first=0x%x count=%d stride=%d width=%d in \
         [0x%x,0x%x) %s"
        site first count stride width base bound
        (if ok then "ok" else "VIOLATION")
  | E_fptr_check { site; addr; ok } ->
      Printf.sprintf "check.fptr site=%-4d ptr=0x%x %s" site addr
        (if ok then "ok" else "VIOLATION")
  | E_meta_load { site; addr; base; bound } ->
      Printf.sprintf "meta.load  site=%-4d [0x%x] -> (0x%x, 0x%x)" site addr
        base bound
  | E_meta_store { site; addr; base; bound } ->
      Printf.sprintf "meta.store site=%-4d [0x%x] <- (0x%x, 0x%x)" site addr
        base bound
  | E_wrapper { name } -> Printf.sprintf "wrapper    %s" name
  | E_trap { detail } -> Printf.sprintf "TRAP       %s" detail

(* ------------------------------------------------------------------ *)
(* Collector                                                            *)
(* ------------------------------------------------------------------ *)

type wrapper_stat = { mutable w_count : int; mutable w_cycles : int }

type t = {
  enabled : bool;
  (* per-kind per-site tallies; arrays grow on demand, index = site id *)
  mutable counts : int array array;  (* [kind].[site] *)
  mutable cycles : int array array;
  wrappers : (string, wrapper_stat) Hashtbl.t;
  mutable in_wrapper : string option;
      (** name of the [_sb_] wrapper currently executing, if any; site-0
          operations inside it are attributed to the wrapper *)
  (* attribution tallies over every recorded check/meta operation *)
  mutable attr_site : int;
  mutable attr_wrapper : int;
  mutable attr_runtime : int;
  (* per-segment cache-sim accounting *)
  seg_hits : int array;
  seg_misses : int array;
  (* bounded event ring; capacity 0 disables tracing *)
  ring : event array;
  ring_cap : int;
  mutable ring_len : int;
  mutable ring_next : int;
}

let dummy_event = E_trap { detail = "" }

let create ?(enabled = true) ?(trace_depth = 0) () =
  {
    enabled;
    counts = Array.init n_kinds (fun _ -> Array.make 64 0);
    cycles = Array.init n_kinds (fun _ -> Array.make 64 0);
    wrappers = Hashtbl.create 32;
    in_wrapper = None;
    attr_site = 0;
    attr_wrapper = 0;
    attr_runtime = 0;
    seg_hits = Array.make L.n_segments 0;
    seg_misses = Array.make L.n_segments 0;
    ring = (if enabled && trace_depth > 0 then Array.make trace_depth dummy_event
            else [||]);
    ring_cap = (if enabled then max 0 trace_depth else 0);
    ring_len = 0;
    ring_next = 0;
  }

let disabled = create ~enabled:false ()

let ensure_site t site =
  let k0 = t.counts.(0) in
  if site >= Array.length k0 then begin
    let cap = ref (Array.length k0) in
    while site >= !cap do
      cap := !cap * 2
    done;
    let grow old =
      let a = Array.make !cap 0 in
      Array.blit old 0 a 0 (Array.length old);
      a
    in
    t.counts <- Array.map grow t.counts;
    t.cycles <- Array.map grow t.cycles
  end

let record_op t kind ~site ~cycles =
  if t.enabled then begin
    ensure_site t site;
    let k = kind_index kind in
    t.counts.(k).(site) <- t.counts.(k).(site) + 1;
    t.cycles.(k).(site) <- t.cycles.(k).(site) + cycles;
    if site > 0 then t.attr_site <- t.attr_site + 1
    else
      match t.in_wrapper with
      | Some _ -> t.attr_wrapper <- t.attr_wrapper + 1
      | None -> t.attr_runtime <- t.attr_runtime + 1
  end

let record_wrapper t name ~cycles =
  if t.enabled then begin
    let ws =
      match Hashtbl.find_opt t.wrappers name with
      | Some ws -> ws
      | None ->
          let ws = { w_count = 0; w_cycles = 0 } in
          Hashtbl.add t.wrappers name ws;
          ws
    in
    ws.w_count <- ws.w_count + 1;
    ws.w_cycles <- ws.w_cycles + cycles
  end

let set_wrapper t name =
  let prev = t.in_wrapper in
  if t.enabled then t.in_wrapper <- name;
  prev

let restore_wrapper t prev = if t.enabled then t.in_wrapper <- prev

let record_cache t seg ~hit =
  if t.enabled then begin
    let i = L.segment_index seg in
    if hit then t.seg_hits.(i) <- t.seg_hits.(i) + 1
    else t.seg_misses.(i) <- t.seg_misses.(i) + 1
  end

let trace_on t = t.ring_cap > 0

let trace_event t ev =
  if t.ring_cap > 0 then begin
    t.ring.(t.ring_next) <- ev;
    t.ring_next <- (t.ring_next + 1) mod t.ring_cap;
    if t.ring_len < t.ring_cap then t.ring_len <- t.ring_len + 1
  end

(** Ring contents, oldest first. *)
let events t : event list =
  let n = t.ring_len in
  List.init n (fun i ->
      t.ring.((t.ring_next - n + i + (2 * t.ring_cap)) mod t.ring_cap))

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let kind_count t k = Array.fold_left ( + ) 0 t.counts.(kind_index k)
let kind_cycles t k = Array.fold_left ( + ) 0 t.cycles.(kind_index k)
let site_count t k site =
  let a = t.counts.(kind_index k) in
  if site < Array.length a then a.(site) else 0
let site_cycles t k site =
  let a = t.cycles.(kind_index k) in
  if site < Array.length a then a.(site) else 0

(** Total count and cycle delta per executed site, over all kinds,
    sites with at least one event, ascending id.  Site 0 is included
    when runtime-originated events exist. *)
let per_site t : (int * int * int) list =
  let n = Array.length t.counts.(0) in
  let out = ref [] in
  for site = n - 1 downto 0 do
    let c = ref 0 and cy = ref 0 in
    for k = 0 to n_kinds - 1 do
      c := !c + t.counts.(k).(site);
      cy := !cy + t.cycles.(k).(site)
    done;
    if !c > 0 then out := (site, !c, !cy) :: !out
  done;
  !out

let wrapper_stats t : (string * int * int) list =
  Hashtbl.fold (fun n ws acc -> (n, ws.w_count, ws.w_cycles) :: acc)
    t.wrappers []
  |> List.sort compare

let wrapper_cycles t =
  Hashtbl.fold (fun _ ws acc -> acc + ws.w_cycles) t.wrappers 0

let attribution t = (t.attr_site, t.attr_wrapper, t.attr_runtime)

(** Fraction of recorded check/meta operations attributed to a
    transform-time site or a named wrapper context; 1.0 when none were
    recorded. *)
let attributed_fraction t =
  let total = t.attr_site + t.attr_wrapper + t.attr_runtime in
  if total = 0 then 1.0
  else float_of_int (t.attr_site + t.attr_wrapper) /. float_of_int total

let seg_stats t : (string * int * int) list =
  List.init L.n_segments (fun i ->
      (L.segment_name (L.segment_of_index i), t.seg_hits.(i),
       t.seg_misses.(i)))

(* ------------------------------------------------------------------ *)
(* Trace dump                                                           *)
(* ------------------------------------------------------------------ *)

let dump_trace t : string =
  let evs = events t in
  if evs = [] then "trace: empty (run with --trace=N to record events)\n"
  else begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "trace: last %d safety-relevant event%s (oldest first)\n"
         (List.length evs) (if List.length evs = 1 then "" else "s"));
    List.iter
      (fun ev ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (string_of_event ev);
        Buffer.add_char buf '\n')
      evs;
    Buffer.contents buf
  end
