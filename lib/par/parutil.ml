(* Deterministic fork/join parallelism over OCaml 5 domains.

   [parmap ~jobs f xs] evaluates [f] over [xs] on up to [jobs] domains
   and returns the results in input order, so a parallel driver's merged
   output is byte-identical to the sequential one whenever each [f x] is
   itself deterministic and independent.  Work is handed out through a
   single atomic cursor: the *assignment* of items to domains varies
   from run to run, but the result array is indexed by item, so ordering
   never does.

   [jobs <= 1] short-circuits to [List.map f] on the calling domain —
   the sequential path stays the plain one, with no spawn at all. *)

(** Persistent worker pool for long-running services (re-exported so
    library clients see it as [Parutil.Pool]). *)
module Pool = Pool

(** What the runtime considers a sensible upper bound for [~jobs]. *)
let available_jobs () = Domain.recommended_domain_count ()

let parmap ?(jobs = 1) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let out : 'b option array = Array.make n None in
    let next = Atomic.make 0 in
    (* Failures are recorded per item index, and the LOWEST-index one is
       re-raised after the join — exactly the failure a sequential run
       would hit first.  Recording whichever worker's exception won a
       compare-and-set race made a failing run's report depend on
       scheduling, violating the jobs-independence contract.

       The early stop keeps its soundness from the monotonic cursor: by
       the time any worker observes a failure at index j and sets
       [failed], every index below j has already been handed out, and
       the worker holding it finishes the item (recording its failure,
       if any) before it checks the flag — so the minimum recorded index
       equals the overall minimum failing index, every run. *)
    let failures : exn option array = Array.make n None in
    let failed = Atomic.make false in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | v -> out.(i) <- Some v
        | exception e ->
            failures.(i) <- Some e;
            Atomic.set failed true);
        if not (Atomic.get failed) then work ()
      end
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn work)
    in
    work ();
    List.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         out)
  end

(** [pariteri ~jobs f xs]: like {!parmap} but for effects that the
    caller sequences itself; [f] receives the item index. *)
let pariteri ?(jobs = 1) (f : int -> 'a -> unit) (xs : 'a list) : unit =
  ignore (parmap ~jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs))
