(* A persistent worker pool over OCaml 5 domains.

   {!Parutil.parmap} is fork/join: it spawns domains for one batch and
   tears them down.  A long-running service cannot afford that per
   request, so [Pool] keeps [jobs] worker domains alive for its whole
   lifetime and feeds them through one shared bounded queue — idle
   workers steal the next job the moment they finish their current one,
   so an expensive job never blocks the queue behind it, only its own
   worker.

   Contract:
   - [submit] enqueues a thunk and BLOCKS while the queue is at
     capacity — backpressure, so a fast producer (a client streaming
     10k jobs) cannot balloon the daemon's memory.
   - results stream in COMPLETION order through [emit], which the pool
     serializes: [emit] is never called concurrently with itself.
   - a raising job is routed through [on_error] and the pool keeps
     running; worker domains never die early.
   - [shutdown] closes the queue, lets the workers drain it (or drops
     what is still queued with [~drain:false]), and joins every domain.
     Idempotent. *)

type 'r t = {
  cap : int;  (** queue capacity; submit blocks at this depth *)
  emit : 'r -> unit;
  on_error : exn -> 'r;
  q : (unit -> 'r) Queue.t;
  mutable closed : bool;  (** no further submissions *)
  mutable dropped : int;  (** jobs discarded by a non-draining shutdown *)
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable workers : unit Domain.t list;
  emit_m : Mutex.t;
}

let rec worker (t : 'r t) : unit =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.m
  done;
  if Queue.is_empty t.q then begin
    (* closed and drained: let the next waiter see the same state *)
    Mutex.unlock t.m;
    Condition.broadcast t.not_empty
  end
  else begin
    let job = Queue.pop t.q in
    Mutex.unlock t.m;
    Condition.signal t.not_full;
    let r = try job () with e -> t.on_error e in
    Mutex.lock t.emit_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.emit_m)
      (fun () -> t.emit r);
    worker t
  end

let create ?(cap = 128) ~jobs ~(on_error : exn -> 'r) ~(emit : 'r -> unit) ()
    : 'r t =
  let t =
    {
      cap = max 1 cap;
      emit;
      on_error;
      q = Queue.create ();
      closed = false;
      dropped = 0;
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      workers = [];
      emit_m = Mutex.create ();
    }
  in
  t.workers <- List.init (max 1 jobs) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let width (t : 'r t) : int = List.length t.workers

(** [submit t job]: enqueue [job]; blocks while the queue is full.
    Returns [false] (without enqueueing) once the pool is shut down. *)
let submit (t : 'r t) (job : unit -> 'r) : bool =
  Mutex.lock t.m;
  let rec wait () =
    if t.closed then false
    else if Queue.length t.q >= t.cap then begin
      Condition.wait t.not_full t.m;
      wait ()
    end
    else begin
      Queue.push job t.q;
      true
    end
  in
  let accepted = wait () in
  Mutex.unlock t.m;
  if accepted then Condition.signal t.not_empty;
  accepted

(** Emit a result from the CALLING thread, serialized with worker
    emissions — for rows that bypass the queue (protocol errors answered
    inline) but must still interleave cleanly with streamed results. *)
let emit_now (t : 'r t) (r : 'r) : unit =
  Mutex.lock t.emit_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_m) (fun () -> t.emit r)

(** Jobs accepted but not yet handed to a worker. *)
let queued (t : 'r t) : int =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

(** Close the queue and join every worker.  [~drain:true] (the default)
    runs everything already accepted; [~drain:false] discards the
    still-queued jobs (counting them) and only waits for in-flight ones.
    Returns the number of discarded jobs. *)
let shutdown ?(drain = true) (t : 'r t) : int =
  Mutex.lock t.m;
  t.closed <- true;
  if not drain then begin
    t.dropped <- t.dropped + Queue.length t.q;
    Queue.clear t.q
  end;
  Mutex.unlock t.m;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.dropped
