(* Executable formalization of the paper's section 4.

   The paper mechanizes (in Coq) a non-standard operational semantics for
   a straight-line fragment of C — assignments over ints, pointers,
   named/anonymous structs, with &, *, field access, casts, sizeof and
   malloc — augments it with SoftBound's metadata propagation and bounds
   assertions, and proves Preservation and Progress with respect to a
   well-formedness invariant.

   Here the same development is rendered executable:
   - [eval_cmd ~checked:true] is the SoftBound-instrumented semantics:
     every value carries (base, bound) metadata, dereferences assert the
     bounds, and the result is [Ok]/[Abort]/[OutOfMem] — never [Stuck];
   - [eval_cmd ~checked:false] is the reference partial semantics: it has
     no assertions and becomes [Stuck] ("undefined") exactly when an
     unallocated address is touched;
   - [wf_env] is the paper's well-formedness predicate
       forall l d (b,e). read M l = d(b,e) =>
         b = 0  \/  (b <> 0 /\ forall i in [b,e). val M i
                    /\ minAddr <= b <= e < maxAddr);
   - Theorems 4.1 (Preservation) and 4.2 (Progress) and Corollary 4.1
     become the predicates [preservation_holds], [progress_holds] and
     [agreement_holds], checked over randomized well-typed commands by
     the property-based test suite.

   Memory is word-granular (sizeof int = sizeof ptr = 1, a struct spans
   one word per field): the proof's content is metadata propagation and
   checking, which is independent of byte-level layout (the byte-level
   machinery lives in the main library). *)

(* ------------------------------------------------------------------ *)
(* Syntax (paper section 4.1)                                          *)
(* ------------------------------------------------------------------ *)

type atype = TInt | TPtr of ptype

and ptype =
  | PAtom of atype
  | PStruct of (string * atype) list  (** anonymous struct *)
  | PNamed of string  (** named struct (permits recursion) *)
  | PVoid

type lhs =
  | Var of string
  | Deref of lhs
  | Field of lhs * string
  | Arrow of lhs * string

type rhs =
  | Int of int
  | Add of rhs * rhs
  | Lhs of lhs
  | AddrOf of lhs
  | Cast of atype * rhs
  | SizeOf of atype
  | Malloc of rhs

type cmd = Skip | Assign of lhs * rhs | Seq of cmd * cmd

(** Named-struct environment. *)
type tenv = (string * (string * atype) list) list

(* ------------------------------------------------------------------ *)
(* Machine state                                                       *)
(* ------------------------------------------------------------------ *)

module IMap = Map.Make (Int)

(** A stored value with its SoftBound metadata. *)
type mval = { v : int; b : int; e : int }

type env = {
  tenv : tenv;
  stack : (string * (int * atype)) list;  (** S: var -> (address, type) *)
  mem : mval IMap.t;  (** M: allocated addresses only *)
  brk : int;  (** next free address for malloc *)
  limit : int;  (** address-space size: malloc beyond this is OOM *)
}

let min_addr = 1

type 'a res = Ok of 'a | Abort | OutOfMem | Stuck of string

let ( let* ) r f =
  match r with
  | Ok x -> f x
  | Abort -> Abort
  | OutOfMem -> OutOfMem
  | Stuck m -> Stuck m

(* ------------------------------------------------------------------ *)
(* Types and layout                                                    *)
(* ------------------------------------------------------------------ *)

let fields_of (te : tenv) (p : ptype) : (string * atype) list option =
  match p with
  | PStruct fs -> Some fs
  | PNamed n -> List.assoc_opt n te
  | PAtom _ | PVoid -> None

let sizeof_atype (_ : atype) = 1

let sizeof_ptype (te : tenv) (p : ptype) : int =
  match p with
  | PAtom _ -> 1
  | PVoid -> 1
  | PStruct fs -> max 1 (List.length fs)
  | PNamed n -> (
      match List.assoc_opt n te with
      | Some fs -> max 1 (List.length fs)
      | None -> 1)

let field_offset (fs : (string * atype) list) (f : string) :
    (int * atype) option =
  let rec go i = function
    | [] -> None
    | (n, t) :: _ when n = f -> Some (i, t)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 fs

(* ------------------------------------------------------------------ *)
(* Typing (S |- c, section 4.3)                                        *)
(* ------------------------------------------------------------------ *)

let rec type_lhs (env : env) (l : lhs) : atype option =
  match l with
  | Var x -> Option.map snd (List.assoc_opt x env.stack)
  | Deref l -> (
      match type_lhs env l with
      | Some (TPtr (PAtom a)) -> Some a
      | Some (TPtr PVoid) -> None (* *void is ill-typed *)
      | Some (TPtr (PStruct _)) | Some (TPtr (PNamed _)) ->
          None (* struct lvalues are accessed by field *)
      | _ -> None)
  | Field _ ->
      (* struct-typed lvalues only occur behind pointers in this
         fragment; plain [lhs.id] is therefore never well-typed here and
         field access goes through [Arrow] *)
      None
  | Arrow (l, f) -> (
      match type_lhs env l with
      | Some (TPtr p) -> (
          match fields_of env.tenv p with
          | Some fs -> Option.map snd (field_offset fs f)
          | None -> None)
      | _ -> None)

let rec type_rhs (env : env) (r : rhs) : atype option =
  match r with
  | Int _ -> Some TInt
  | SizeOf _ -> Some TInt
  | Add (a, b) -> (
      match (type_rhs env a, type_rhs env b) with
      | Some TInt, Some TInt -> Some TInt
      | Some (TPtr p), Some TInt -> Some (TPtr p)
      | _ -> None)
  | Lhs l -> type_lhs env l
  | AddrOf l -> (
      match l with
      | Var x -> (
          match List.assoc_opt x env.stack with
          | Some (_, a) -> Some (TPtr (PAtom a))
          | None -> None)
      | Deref inner -> type_lhs env inner (* &*p : type of p *)
      | Field _ | Arrow _ -> (
          match type_lhs env l with
          | Some a -> Some (TPtr (PAtom a))
          | None -> None))
  | Cast (a, r) -> (
      match type_rhs env r with Some _ -> Some a | None -> None)
  | Malloc r -> (
      match type_rhs env r with
      | Some TInt -> Some (TPtr PVoid)
      | _ -> None)

let rec type_cmd (env : env) (c : cmd) : bool =
  match c with
  | Skip -> true
  | Seq (a, b) -> type_cmd env a && type_cmd env b
  | Assign (l, r) -> (
      match (type_lhs env l, type_rhs env r) with
      | Some TInt, Some TInt -> true
      | Some (TPtr _), Some (TPtr _) -> true
      | Some (TPtr _), Some TInt -> false
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Memory primitives (Table 2)                                         *)
(* ------------------------------------------------------------------ *)

let read (env : env) (l : int) : mval option = IMap.find_opt l env.mem

let write (env : env) (l : int) (d : mval) : env option =
  if IMap.mem l env.mem then Some { env with mem = IMap.add l d env.mem }
  else None

let malloc (env : env) (n : int) : (env * int) option =
  let n = max n 1 in
  if env.brk + n > env.limit then None
  else begin
    let mem = ref env.mem in
    for i = env.brk to env.brk + n - 1 do
      mem := IMap.add i { v = 0; b = 0; e = 0 } !mem
    done;
    Some ({ env with mem = !mem; brk = env.brk + n }, env.brk)
  end

let val_allocated env i = IMap.mem i env.mem

(* ------------------------------------------------------------------ *)
(* Well-formedness (section 4.3)                                       *)
(* ------------------------------------------------------------------ *)

let wf_mval (env : env) (d : mval) : bool =
  d.b = 0
  || (d.b <> 0
     && d.b <= d.e
     && min_addr <= d.b
     && d.e <= env.limit
     && (let ok = ref true in
         for i = d.b to d.e - 1 do
           if not (val_allocated env i) then ok := false
         done;
         !ok))

let wf_mem (env : env) : bool =
  IMap.for_all (fun _ d -> wf_mval env d) env.mem

let wf_stack (env : env) : bool =
  List.for_all (fun (_, (addr, _)) -> val_allocated env addr) env.stack

let wf_env (env : env) : bool = wf_mem env && wf_stack env

(* ------------------------------------------------------------------ *)
(* Operational semantics (section 4.2)                                 *)
(* ------------------------------------------------------------------ *)

(* LHS evaluation: (E, lhs) =>l (address, atype).  In checked mode the
   pointer-dereference rule asserts the metadata bounds; in unchecked
   mode the access is undefined (Stuck) if it would touch unallocated
   memory — the paper's partial reference semantics. *)

let rec eval_lhs ~checked (env : env) (l : lhs) : (int * atype) res =
  match l with
  | Var x -> (
      match List.assoc_opt x env.stack with
      | Some (addr, a) -> Ok (addr, a)
      | None -> Stuck ("unbound variable " ^ x))
  | Deref l -> (
      let* addr, a = eval_lhs ~checked env l in
      match a with
      | TPtr (PAtom pointee) -> (
          match read env addr with
          | None -> Stuck "deref: pointer cell not allocated"
          | Some d ->
              let size = sizeof_atype pointee in
              if checked then
                (* the paper's checked-dereference rule *)
                if d.b <= d.v && d.v + size <= d.e && d.b <> 0 then
                  Ok (d.v, pointee)
                else Abort
              else if val_allocated env d.v then Ok (d.v, pointee)
              else Stuck "deref: target unallocated (undefined behaviour)")
      | _ -> Stuck "deref of non-pointer lvalue")
  | Field (l, f) -> eval_field ~checked env l f ~through_ptr:false
  | Arrow (l, f) -> eval_field ~checked env l f ~through_ptr:true

and eval_field ~checked env l f ~through_ptr : (int * atype) res =
  (* l.f when the lvalue l denotes a struct-typed region is modelled via
     its pointer: field access goes through pointers (x->f), which is
     the metadata-interesting case. *)
  let* addr, a = eval_lhs ~checked env l in
  match a with
  | TPtr p -> (
      match fields_of env.tenv p with
      | None -> Stuck "field access on non-struct pointer"
      | Some fs -> (
          match field_offset fs f with
          | None -> Stuck ("no field " ^ f)
          | Some (off, fty) ->
              if through_ptr then (
                match read env addr with
                | None -> Stuck "arrow: pointer cell not allocated"
                | Some d ->
                    let size = List.length fs in
                    if checked then
                      if d.b <= d.v && d.v + size <= d.e && d.b <> 0 then
                        Ok (d.v + off, fty)
                      else Abort
                    else if
                      val_allocated env d.v
                      && val_allocated env (d.v + off)
                    then Ok (d.v + off, fty)
                    else Stuck "arrow: target unallocated")
              else Ok (addr + off, fty)))
  | TInt -> Stuck "field access on int"

(* RHS evaluation: (E, rhs) =>r ((value, metadata), atype, E'). *)

let rec eval_rhs ~checked (env : env) (r : rhs) : (mval * atype * env) res =
  match r with
  | Int i -> Ok ({ v = i; b = 0; e = 0 }, TInt, env)
  | SizeOf a -> Ok ({ v = sizeof_atype a; b = 0; e = 0 }, TInt, env)
  | Add (a, b) -> (
      let* va, ta, env = eval_rhs ~checked env a in
      let* vb, tb, env = eval_rhs ~checked env b in
      match (ta, tb) with
      | TInt, TInt -> Ok ({ v = va.v + vb.v; b = 0; e = 0 }, TInt, env)
      | TPtr p, TInt ->
          (* pointer arithmetic inherits the metadata (section 3.1) *)
          Ok ({ va with v = va.v + vb.v }, TPtr p, env)
      | _ -> Stuck "ill-typed addition")
  | Lhs l -> (
      let* addr, a = eval_lhs ~checked env l in
      match read env addr with
      | Some d -> Ok (d, a, env)
      | None -> Stuck "read of unallocated lvalue")
  | AddrOf l -> (
      match l with
      | Var x -> (
          match List.assoc_opt x env.stack with
          | Some (addr, a) ->
              (* base/bound: the variable's own cell *)
              Ok
                ( { v = addr; b = addr; e = addr + sizeof_atype a },
                  TPtr (PAtom a),
                  env )
          | None -> Stuck ("unbound variable " ^ x))
      | Deref inner ->
          (* &*p evaluates p *)
          let* d, a, env = eval_rhs ~checked env (Lhs inner) in
          Ok (d, a, env)
      | Field _ | Arrow _ ->
          let* addr, a = eval_lhs ~checked env l in
          (* field pointers inherit the *field's* extent: the formal
             fragment leaves sub-object bounds to the implementation, so
             we take the conservative single-cell bound *)
          Ok
            ( { v = addr; b = addr; e = addr + sizeof_atype a },
              TPtr (PAtom a),
              env ))
  | Cast (target, r) -> (
      let* d, src, env = eval_rhs ~checked env r in
      match (target, src) with
      | TInt, _ -> Ok ({ d with b = 0; e = 0 }, TInt, env)
      | TPtr p, TPtr _ ->
          (* pointer-to-pointer casts keep the metadata: this is what
             makes arbitrary casts safe (section 5.2) *)
          Ok (d, TPtr p, env)
      | TPtr p, TInt ->
          (* ints become pointers with null bounds *)
          Ok ({ d with b = 0; e = 0 }, TPtr p, env))
  | Malloc r -> (
      let* d, t, env = eval_rhs ~checked env r in
      match t with
      | TInt -> (
          if d.v <= 0 then Ok ({ v = 0; b = 0; e = 0 }, TPtr PVoid, env)
          else
            match malloc env d.v with
            | None -> OutOfMem
            | Some (env, p) ->
                Ok ({ v = p; b = p; e = p + d.v }, TPtr PVoid, env))
      | _ -> Stuck "malloc size not an int")

(* Commands. *)

let rec eval_cmd ~checked (env : env) (c : cmd) : env res =
  match c with
  | Skip -> Ok env
  | Seq (a, b) ->
      let* env = eval_cmd ~checked env a in
      eval_cmd ~checked env b
  | Assign (l, r) -> (
      let* d, _, env = eval_rhs ~checked env r in
      let* addr, lty = eval_lhs ~checked env l in
      (* ill-typed int := ptr would store bogus metadata; the type system
         rules it out, and we strip metadata on int-typed cells just as
         the instrumentation stores none *)
      let d = match lty with TInt -> { d with b = 0; e = 0 } | _ -> d in
      match write env addr d with
      | Some env -> Ok env
      | None -> Stuck "write to unallocated lvalue")

(* ------------------------------------------------------------------ *)
(* Theorem statements, as runtime-checkable predicates                  *)
(* ------------------------------------------------------------------ *)

(** Theorem 4.1 (Preservation): from a well-formed env, a well-typed
    command that evaluates to Ok yields a well-formed env. *)
let preservation_holds (env : env) (c : cmd) : bool =
  (not (wf_env env && type_cmd env c))
  ||
  match eval_cmd ~checked:true env c with
  | Ok env' -> wf_env env'
  | Abort | OutOfMem -> true
  | Stuck _ -> true (* progress covers this *)

(** Theorem 4.2 (Progress): from a well-formed env, a well-typed command
    evaluates to ok, OutOfMem or Abort — never gets stuck. *)
let progress_holds (env : env) (c : cmd) : bool =
  (not (wf_env env && type_cmd env c))
  ||
  match eval_cmd ~checked:true env c with
  | Ok _ | Abort | OutOfMem -> true
  | Stuck _ -> false

(** Corollary 4.1: if the instrumented program completes, the original
    (partial, unchecked) semantics completes too, with the same data. *)
let agreement_holds (env : env) (c : cmd) : bool =
  (not (wf_env env && type_cmd env c))
  ||
  match eval_cmd ~checked:true env c with
  | Ok env' -> (
      match eval_cmd ~checked:false env c with
      | Ok env'' ->
          IMap.equal (fun a b -> a.v = b.v) env'.mem env''.mem
      | _ -> false)
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Robust safety (secure-compilation view)                              *)
(* ------------------------------------------------------------------ *)

(* The closed-program theorems above assume the whole program is
   instrumented.  The robust variants drop that assumption: an attacker
   context interleaves arbitrary machine-level writes with the protected
   command's execution.  The attacker model matches the adversarial
   harness (lib/fuzz/adversary.ml): it can write any *value* to any
   allocated cell outside the protected set, but it stores raw words —
   it cannot forge the (base, bound) capability that would accompany a
   legitimate pointer store, so attacker-written cells carry null
   metadata.  That asymmetry is exactly why well-formedness is robust:
   wf_mval accepts b = 0 unconditionally, so no attacker write can
   manufacture a capability over memory it does not own. *)

type attacker_step = { aloc : int; aval : int }

let attacker_apply ?(protected_locs = []) (env : env) (s : attacker_step) :
    env option =
  if List.mem s.aloc protected_locs then None (* confined: write blocked *)
  else
    (* raw store: arbitrary value, null metadata (no capability forging) *)
    write env s.aloc { v = s.aval; b = 0; e = 0 }

(** Run an attacker context: blocked or unallocated writes are confined
    (no effect), everything else lands.  Total by construction — the
    attacker never gets stuck, it just fails to corrupt. *)
let attacker_run ?(protected_locs = []) (env : env)
    (steps : attacker_step list) : env =
  List.fold_left
    (fun env s ->
      match attacker_apply ~protected_locs env s with
      | Some env' -> env'
      | None -> env)
    env steps

(** Robust preservation: from a well-formed env, arbitrary attacker
    interference keeps the env well-formed, and the checked semantics of
    a well-typed protected command still enjoys preservation *and*
    progress afterwards — it completes, aborts, or runs out of memory,
    never gets stuck, and any [Ok] result is again well-formed.  This is
    the formal counterpart of the harness's "caught or confined"
    verdict: the attacker can perturb data, not the safety invariant. *)
let robust_preservation_holds ?(protected_locs = []) (env : env)
    (steps : attacker_step list) (c : cmd) : bool =
  (not (wf_env env && type_cmd env c))
  ||
  let env' = attacker_run ~protected_locs env steps in
  wf_env env'
  &&
  match eval_cmd ~checked:true env' c with
  | Ok env'' -> wf_env env''
  | Abort | OutOfMem -> true
  | Stuck _ -> false

(** Robust integrity: cells named as protected are bit-for-bit untouched
    by any attacker run — the confinement half of robust safety. *)
let robust_integrity_holds ?(protected_locs = []) (env : env)
    (steps : attacker_step list) : bool =
  let env' = attacker_run ~protected_locs env steps in
  List.for_all (fun l -> read env l = read env' l) protected_locs

(* ------------------------------------------------------------------ *)
(* Initial environments                                                 *)
(* ------------------------------------------------------------------ *)

(** Build a well-formed initial environment with the given variables
    stack-allocated (all cells zero-initialized, null metadata). *)
let initial_env ?(limit = 4096) (tenv : tenv) (vars : (string * atype) list) :
    env =
  let env =
    { tenv; stack = []; mem = IMap.empty; brk = min_addr; limit }
  in
  List.fold_left
    (fun env (x, a) ->
      match malloc env (sizeof_atype a) with
      | Some (env, addr) ->
          { env with stack = (x, (addr, a)) :: env.stack }
      | None -> invalid_arg "initial_env: limit too small")
    env vars
