(** Executable formalization of the paper's section 4.

    The paper mechanizes (in Coq) a non-standard operational semantics
    for a straight-line C fragment, augments it with SoftBound's metadata
    propagation and bounds assertions, and proves Preservation and
    Progress with respect to a well-formedness invariant.  This module
    renders the same development executable so the theorems become
    property-testable predicates (see the [formal] test suite).

    Memory is word-granular (sizeof int = sizeof ptr = 1; a struct spans
    one word per field): the proof's content is metadata propagation and
    checking, which is independent of byte-level layout. *)

(** {1 Syntax (section 4.1)} *)

type atype = TInt | TPtr of ptype

and ptype =
  | PAtom of atype
  | PStruct of (string * atype) list  (** anonymous struct *)
  | PNamed of string  (** named struct (permits recursion) *)
  | PVoid

type lhs =
  | Var of string
  | Deref of lhs
  | Field of lhs * string
      (** never well-typed in this fragment: struct lvalues only occur
          behind pointers, so field access goes through {!Arrow} *)
  | Arrow of lhs * string

type rhs =
  | Int of int
  | Add of rhs * rhs
  | Lhs of lhs
  | AddrOf of lhs
  | Cast of atype * rhs
  | SizeOf of atype
  | Malloc of rhs

type cmd = Skip | Assign of lhs * rhs | Seq of cmd * cmd

type tenv = (string * (string * atype) list) list
(** Named-struct environment. *)

(** {1 Machine state} *)

module IMap : Map.S with type key = int

type mval = { v : int; b : int; e : int }
(** A stored value with its SoftBound (base, bound) metadata. *)

type env = {
  tenv : tenv;
  stack : (string * (int * atype)) list;  (** S: var -> (address, type) *)
  mem : mval IMap.t;  (** M: allocated addresses only *)
  brk : int;
  limit : int;  (** address-space size: malloc beyond this is OutOfMem *)
}

val min_addr : int

type 'a res = Ok of 'a | Abort | OutOfMem | Stuck of string

(** {1 Layout and typing} *)

val fields_of : tenv -> ptype -> (string * atype) list option
val sizeof_atype : atype -> int
val sizeof_ptype : tenv -> ptype -> int
val field_offset : (string * atype) list -> string -> (int * atype) option

val type_lhs : env -> lhs -> atype option
val type_rhs : env -> rhs -> atype option
val type_cmd : env -> cmd -> bool
(** [S |- c] of section 4.3. *)

(** {1 Memory primitives (Table 2)} *)

val read : env -> int -> mval option
val write : env -> int -> mval -> env option
val malloc : env -> int -> (env * int) option
val val_allocated : env -> int -> bool

(** {1 Well-formedness (section 4.3)} *)

val wf_mval : env -> mval -> bool
(** The paper's per-value invariant: [b = 0], or [b <> 0] and every
    address in [\[b, e)] is allocated with
    [minAddr <= b <= e < maxAddr]. *)

val wf_mem : env -> bool
val wf_stack : env -> bool
val wf_env : env -> bool

(** {1 Operational semantics (section 4.2)} *)

val eval_lhs : checked:bool -> env -> lhs -> (int * atype) res
(** LHS evaluation to an (address, type) pair.  With [~checked:true]
    the pointer-dereference rule asserts the metadata bounds (the
    SoftBound-instrumented semantics, never [Stuck]); with
    [~checked:false] accesses to unallocated memory are undefined
    ([Stuck]) — the paper's partial reference semantics. *)

val eval_rhs : checked:bool -> env -> rhs -> (mval * atype * env) res
val eval_cmd : checked:bool -> env -> cmd -> env res

(** {1 Theorem statements, as runtime-checkable predicates} *)

val preservation_holds : env -> cmd -> bool
(** Theorem 4.1: from a well-formed env, a well-typed command that
    evaluates to [Ok] yields a well-formed env. *)

val progress_holds : env -> cmd -> bool
(** Theorem 4.2: from a well-formed env, a well-typed command evaluates
    to ok, [OutOfMem] or [Abort] — never gets stuck. *)

val agreement_holds : env -> cmd -> bool
(** Corollary 4.1: if the instrumented program completes, the unchecked
    reference semantics completes too, with the same data. *)

(** {1 Robust safety (secure-compilation view)} *)

type attacker_step = { aloc : int; aval : int }
(** One machine-level attacker write: value [aval] at address [aloc].
    Attacker stores carry null metadata — the attacker can forge
    pointers, not capabilities. *)

val attacker_apply :
  ?protected_locs:int list -> env -> attacker_step -> env option
(** Apply one attacker write.  [None] when the write is confined
    (protected cell or unallocated address). *)

val attacker_run : ?protected_locs:int list -> env -> attacker_step list -> env
(** Run an attacker context; confined writes have no effect.  Total —
    the attacker never gets stuck, it just fails to corrupt. *)

val robust_preservation_holds :
  ?protected_locs:int list -> env -> attacker_step list -> cmd -> bool
(** Robust counterpart of Theorems 4.1/4.2: arbitrary attacker
    interference preserves well-formedness, and the checked semantics of
    a well-typed command afterwards still completes, aborts or runs out
    of memory — never [Stuck] — with any [Ok] result well-formed. *)

val robust_integrity_holds :
  ?protected_locs:int list -> env -> attacker_step list -> bool
(** Cells named as protected are untouched by any attacker run. *)

(** {1 Initial environments} *)

val initial_env : ?limit:int -> tenv -> (string * atype) list -> env
(** A well-formed initial environment with the given variables
    stack-allocated (cells zero-initialized, null metadata). *)
