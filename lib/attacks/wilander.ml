(* The 18 synthetic attacks of Wilander & Kamkar (NDSS 2003), as evaluated
   in the paper's Table 3.

   Each attack is a MiniC program that genuinely corrupts control data in
   simulated memory.  Run unprotected, the program hijacks control flow
   (the VM reports [Hijack] — either the payload function executes, or
   the return-token / saved-frame-pointer / longjmp-buffer validation
   observes attacker-controlled values).  Run under SoftBound, every
   attack involves at least one out-of-bounds write, so both full and
   store-only checking abort with a bounds violation before the
   corruption lands.

   The programs rely on the simulator's deterministic frame layout
   (slots in declaration order growing upward, spilled parameters above
   locals, then saved frame pointer and return token) — just as the
   original suite relies on gcc's x86 stack layout.

   Common scaffolding:
   - [payload()] calls the [attack_success] builtin, which the VM turns
     into a [Hijack] trap: executing it is the proof of arbitrary code
     execution;
   - [safe()] is the function pointers legitimately point to. *)

type attack = {
  id : int;
  technique : string;  (** Table 3 row group *)
  target : string;  (** Table 3 row *)
  source : string;
}

let prologue =
  {|
void payload(void) { attack_success(); }
void safe(void) { }
|}

let mk id technique target body =
  { id; technique; target; source = prologue ^ body }

(* ------------------------------------------------------------------ *)
(* Group A: buffer overflow on the stack, all the way to the target.   *)
(* Frame of vuln(): buf at offset 0; with only buf (16 bytes) the       *)
(* saved frame pointer sits at buf+16 and the return token at buf+24.   *)
(* ------------------------------------------------------------------ *)

let stack_all_the_way =
  [
    mk 1 "Buffer overflow on stack all the way to the target"
      "Return address"
      {|
void vuln(void) {
  char buf[16];
  long *p = (long*)buf;
  int i;
  /* spray the payload address over saved bp and return token */
  for (i = 0; i < 4; i++) p[i] = (long)payload;
}
int main(void) { vuln(); return 0; }
|};
    mk 2 "Buffer overflow on stack all the way to the target"
      "Old base pointer"
      {|
long fake_frame[4];
void vuln(void) {
  char buf[16];
  long *p = (long*)buf;
  /* overwrite only the saved frame pointer with a fake frame */
  p[2] = (long)fake_frame;
}
int main(void) { vuln(); return 0; }
|};
    mk 3 "Buffer overflow on stack all the way to the target"
      "Function ptr local variable"
      {|
void vuln(void) {
  char buf[16];
  void (*fp)(void);
  void (**force)(void) = &fp;   /* keep fp in memory, above buf */
  long *p = (long*)buf;
  fp = safe;
  p[2] = (long)payload;          /* buf+16 = fp's slot */
  fp();
  force = force;
}
int main(void) { vuln(); return 0; }
|};
    mk 4 "Buffer overflow on stack all the way to the target"
      "Function ptr parameter"
      {|
void vuln(void (*fp)(void)) {
  char buf[16];
  void (**force)(void) = &fp;   /* spill the parameter above the locals */
  long *p = (long*)buf;
  p[2] = (long)payload;          /* buf+16 = spilled fp */
  fp();
  force = force;
}
int main(void) { vuln(safe); return 0; }
|};
    mk 5 "Buffer overflow on stack all the way to the target"
      "Longjmp buffer local variable"
      {|
void vuln(void) {
  char buf[16];
  jmp_buf jb;
  long *p = (long*)buf;
  if (setjmp(jb) == 0) {
    p[2] = (long)payload;        /* jb[0]: token */
    p[3] = (long)payload;        /* jb[1]: saved pc */
    longjmp(jb, 1);
  }
}
int main(void) { vuln(); return 0; }
|};
    mk 6 "Buffer overflow on stack all the way to the target"
      "Longjmp buffer function parameter"
      {|
/* the longjmp buffer lives in the caller's frame; the callee's overflow
   walks through its own frame (16B buf + 16B control) into it */
void vuln(long *jb) {
  char buf[16];
  long *p = (long*)buf;
  p[4] = (long)payload;          /* caller's jb[0] */
  p[5] = (long)payload;          /* caller's jb[1] */
}
int main(void) {
  jmp_buf jb;
  if (setjmp(jb) == 0) {
    vuln(jb);
    longjmp(jb, 1);
  }
  return 0;
}
|};
  ]

(* ------------------------------------------------------------------ *)
(* Group B: buffer overflow on heap / BSS / data, all the way.          *)
(* ------------------------------------------------------------------ *)

let heap_all_the_way =
  [
    mk 7 "Buffer overflow on heap/BSS/data all the way to the target"
      "Function pointer"
      {|
typedef struct { void (*fp)(void); } fobj;
int main(void) {
  char *buf = (char*)malloc(16);
  fobj *o = (fobj*)malloc(sizeof(fobj));
  long *p = (long*)buf;
  o->fp = safe;
  /* the allocator places o 32 bytes after buf (16B block + 16B gap) */
  p[4] = (long)payload;
  o->fp();
  return 0;
}
|};
    mk 8 "Buffer overflow on heap/BSS/data all the way to the target"
      "Longjmp buffer"
      {|
char gbuf[16];     /* data segment, laid out just before gjb */
jmp_buf gjb;
int main(void) {
  long *p = (long*)gbuf;
  if (setjmp(gjb) == 0) {
    p[2] = (long)payload;        /* gjb[0] */
    p[3] = (long)payload;        /* gjb[1] */
    longjmp(gjb, 1);
  }
  return 0;
}
|};
  ]

(* ------------------------------------------------------------------ *)
(* Group C: overflow a data pointer on the stack, then write through    *)
(* it into the target.                                                  *)
(* Frame of vuln(): buf 0..16, ptr slot 16..24 (kept in memory), then   *)
(* later slots / control data.                                          *)
(* ------------------------------------------------------------------ *)

let stack_pointer_redirect =
  [
    mk 9 "Buffer overflow of a pointer on stack and then pointing to target"
      "Return address"
      {|
long dummy;
void vuln(void) {
  char buf[16];
  long *ptr;
  long **force = &ptr;           /* ptr lives at buf+16 */
  ptr = &dummy;
  /* frame: buf(16) + ptr(8) -> frame size 32; token at buf+40 */
  ((long**)buf)[2] = (long*)(buf + 40);
  *ptr = (long)payload;          /* write through the corrupted pointer */
  force = force;
}
int main(void) { vuln(); return 0; }
|};
    mk 10 "Buffer overflow of a pointer on stack and then pointing to target"
      "Base pointer"
      {|
long dummy;
void vuln(void) {
  char buf[16];
  long *ptr;
  long **force = &ptr;
  ptr = &dummy;
  ((long**)buf)[2] = (long*)(buf + 32);   /* saved frame pointer */
  *ptr = (long)payload;
  force = force;
}
int main(void) { vuln(); return 0; }
|};
    mk 11 "Buffer overflow of a pointer on stack and then pointing to target"
      "Function pointer variable"
      {|
long dummy;
void vuln(void) {
  char buf[16];
  long *ptr;
  void (*fp)(void);
  long **force1 = &ptr;
  void (**force2)(void) = &fp;   /* fp at buf+24 */
  ptr = &dummy;
  fp = safe;
  ((long**)buf)[2] = (long*)(buf + 24);
  *ptr = (long)payload;
  fp();
  force1 = force1; force2 = force2;
}
int main(void) { vuln(); return 0; }
|};
    mk 12 "Buffer overflow of a pointer on stack and then pointing to target"
      "Function pointer parameter"
      {|
long dummy;
void vuln(void (*fp)(void)) {
  char buf[16];
  long *ptr;
  long **force1 = &ptr;
  void (**force2)(void) = &fp;   /* parameter spilled at buf+24 */
  ptr = &dummy;
  ((long**)buf)[2] = (long*)(buf + 24);
  *ptr = (long)payload;
  fp();
  force1 = force1; force2 = force2;
}
int main(void) { vuln(safe); return 0; }
|};
    mk 13 "Buffer overflow of a pointer on stack and then pointing to target"
      "Longjmp buffer variable"
      {|
long dummy;
void vuln(void) {
  char buf[16];
  long *ptr;
  jmp_buf jb;                    /* jb at buf+24 */
  long **force = &ptr;
  ptr = &dummy;
  if (setjmp(jb) == 0) {
    ((long**)buf)[2] = (long*)(buf + 24);
    ptr[0] = (long)payload;      /* jb[0] */
    ptr[1] = (long)payload;      /* jb[1] */
    longjmp(jb, 1);
  }
  force = force;
}
int main(void) { vuln(); return 0; }
|};
    mk 14 "Buffer overflow of a pointer on stack and then pointing to target"
      "Longjmp buffer function parameter"
      {|
/* craft a fake jmp_buf inside the buffer, then overflow the spilled
   jb parameter so it points at the fake */
void vuln(long *jb) {
  char buf[32];
  long **force = &jb;            /* jb parameter spilled at buf+32 */
  ((long*)buf)[0] = (long)payload;   /* fake token */
  ((long*)buf)[1] = (long)payload;   /* fake pc */
  ((long**)buf)[4] = (long*)buf;     /* overwrite the spilled parameter */
  longjmp(jb, 1);
  force = force;
}
int main(void) {
  jmp_buf jb;
  if (setjmp(jb) == 0) vuln(jb);
  return 0;
}
|};
  ]

(* ------------------------------------------------------------------ *)
(* Group D: overflow a data pointer on heap / BSS, then write through.  *)
(* ------------------------------------------------------------------ *)

let heap_pointer_redirect =
  [
    mk 15 "Buffer overflow of pointer on heap/BSS and then pointing to target"
      "Return address"
      {|
typedef struct { char buf[16]; long *ptr; } hobj;
long dummy;
void vuln(hobj *o) {
  char canary[8];
  long *p = (long*)o->buf;
  canary[0] = 'x';
  /* heap overflow inside the object corrupts o->ptr */
  p[2] = (long)(canary + 24);    /* frame 16 + control 8 -> token */
  *(o->ptr) = (long)payload;
}
int main(void) {
  hobj *o = (hobj*)malloc(sizeof(hobj));
  o->ptr = &dummy;
  vuln(o);
  return 0;
}
|};
    mk 16 "Buffer overflow of pointer on heap/BSS and then pointing to target"
      "Old base pointer"
      {|
typedef struct { char buf[16]; long *ptr; } hobj;
long dummy;
void vuln(hobj *o) {
  char canary[8];
  long *p = (long*)o->buf;
  canary[0] = 'x';
  p[2] = (long)(canary + 16);    /* saved frame pointer */
  *(o->ptr) = (long)payload;
}
int main(void) {
  hobj *o = (hobj*)malloc(sizeof(hobj));
  o->ptr = &dummy;
  vuln(o);
  return 0;
}
|};
    mk 17 "Buffer overflow of pointer on heap/BSS and then pointing to target"
      "Function pointer"
      {|
typedef struct { char buf[16]; long *ptr; } hobj;
long dummy;
void (*gfp)(void);
int main(void) {
  hobj *o = (hobj*)malloc(sizeof(hobj));
  long *p = (long*)o->buf;
  o->ptr = &dummy;
  gfp = safe;
  p[2] = (long)&gfp;             /* overflow o->buf into o->ptr */
  *(o->ptr) = (long)payload;
  gfp();
  return 0;
}
|};
    mk 18 "Buffer overflow of pointer on heap/BSS and then pointing to target"
      "Longjmp buffer"
      {|
typedef struct { char buf[16]; long *ptr; } hobj;
long dummy;
jmp_buf gjb;
int main(void) {
  hobj *o = (hobj*)malloc(sizeof(hobj));
  long *p = (long*)o->buf;
  o->ptr = &dummy;
  if (setjmp(gjb) == 0) {
    p[2] = (long)gjb;            /* overflow o->buf into o->ptr */
    o->ptr[0] = (long)payload;
    o->ptr[1] = (long)payload;
    longjmp(gjb, 1);
  }
  return 0;
}
|};
  ]

let all : attack list =
  stack_all_the_way @ heap_all_the_way @ stack_pointer_redirect
  @ heap_pointer_redirect
