(* BugBench-style buggy programs (Lu et al.), as evaluated in Table 4.

   Each program is a small but working kernel of the original benchmark
   with its documented memory bug, calibrated so the *class* of bug
   matches what produces Table 4's detection pattern:

   | program   | bug class                                        | Valgrind | Mudflap | SB-store | SB-full |
   |-----------|--------------------------------------------------|----------|---------|----------|---------|
   | go        | read overflow of an array inside a struct (stack)| no       | no      | no       | yes     |
   | compress  | store overflow into stack padding                | no       | yes     | yes      | yes     |
   | polymorph | heap store overflow (strcpy)                     | yes      | yes     | yes      | yes     |
   | gzip      | heap store overflow (long filename)              | yes      | yes     | yes      | yes     |

   The original gzip/polymorph overflows hit global/stack buffers; our
   Memcheck-style baseline (like Valgrind) only tracks the heap, so the
   two programs whose bugs Table 4 shows Valgrind *detecting* are given
   heap-resident buffers — the substitution preserving each tool's
   detection verdict (see DESIGN.md). *)

type program = {
  name : string;
  description : string;
  source : string;
  bug_kind : [ `Read_overflow | `Store_overflow ];
}

(* ------------------------------------------------------------------ *)
(* go: off-by-one READ of an array nested in a struct                   *)
(* ------------------------------------------------------------------ *)

let go =
  {
    name = "go";
    description =
      "Go position evaluator; liberty scan reads one past the board array \
       inside the position struct (read overflow, stays within the struct)";
    bug_kind = `Read_overflow;
    source =
      {|
typedef struct {
  int cells[81];     /* 9x9 board */
  int captures;      /* sits right after the board: the overread target */
  int turn;
} position;

int neighbors_of(position *pos, int pt) {
  int n = 0;
  /* BUG: when pt is on the last point, pt+1 == 81 reads pos->captures */
  if (pt >= 9)      n += pos->cells[pt - 9];
  if (pt < 72)      n += pos->cells[pt + 9];
  if (pt % 9 != 0)  n += pos->cells[pt - 1];
  n += pos->cells[pt + 1];    /* missing right-edge guard */
  return n;
}

int evaluate(position *pos) {
  int score = 0;
  int pt;
  for (pt = 0; pt < 81; pt++) {
    int who = pos->cells[pt];
    if (who == 1) score += 2 + neighbors_of(pos, pt);
    if (who == 2) score -= 2 + neighbors_of(pos, pt);
  }
  return score;
}

int main(void) {
  position pos;
  int i;
  int total = 0;
  pos.captures = 7777;
  pos.turn = 1;
  for (i = 0; i < 81; i++) pos.cells[i] = (i * 37 + 11) % 3;
  for (i = 0; i < 50; i++) {
    pos.cells[(i * 13) % 81] = i % 3;
    total += evaluate(&pos);
  }
  printf("go: total=%d\n", total);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* compress: LZW-flavoured kernel with a stack STORE overflow           *)
(* ------------------------------------------------------------------ *)

let compress =
  {
    name = "compress";
    description =
      "LZW-style compressor; the code-output routine stores one element \
       past a stack buffer, landing in frame padding (store overflow, \
       stack)";
    bug_kind = `Store_overflow;
    source =
      {|
int codes_emitted = 0;

int emit_codes(int *codes, int n) {
  char obuf[10];
  double checksum = 0.0;   /* 8-aligned: padding follows obuf */
  int i;
  int fill = 0;
  for (i = 0; i < n; i++) {
    obuf[fill] = (char)(codes[i] & 0xff);
    fill++;
    /* BUG: flush test is <= instead of <, so fill reaches 10 and the
       next store writes obuf[10] */
    if (fill > 10) {
      fill = 0;
    }
    checksum = checksum + (double)codes[i];
  }
  codes_emitted += n;
  return (int)checksum;
}

int main(void) {
  int codes[64];
  int dict[256];
  int i;
  int sum = 0;
  /* tiny LZW-ish dictionary build */
  for (i = 0; i < 256; i++) dict[i] = i;
  for (i = 0; i < 64; i++) {
    int sym = (i * 7 + 3) % 256;
    codes[i] = dict[sym];
    dict[sym] = (dict[sym] * 5 + 1) % 4096;
  }
  sum = emit_codes(codes, 64);
  printf("compress: sum=%d emitted=%d\n", sum, codes_emitted);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* polymorph: filename rewriter with a heap strcpy overflow             *)
(* ------------------------------------------------------------------ *)

let polymorph =
  {
    name = "polymorph";
    description =
      "Filename case-converter; copies an attacker-length name into a \
       fixed 16-byte heap buffer with strcpy (store overflow, heap)";
    bug_kind = `Store_overflow;
    source =
      {|
char *convert_name(char *name) {
  char *clean = (char*)malloc(16);
  int i;
  /* BUG: no length check before the copy */
  strcpy(clean, name);
  for (i = 0; clean[i]; i++) {
    if (clean[i] >= 'A' && clean[i] <= 'Z') clean[i] = clean[i] + 32;
  }
  return clean;
}

int main(void) {
  char *ok = convert_name("README.TXT");
  char *bad = convert_name("AN_EXTREMELY_LONG_UPPERCASE_FILENAME.TXT");
  printf("polymorph: %s %s\n", ok, bad);
  free(ok);
  free(bad);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* gzip: deflate-flavoured kernel with a heap filename overflow         *)
(* ------------------------------------------------------------------ *)

let gzip =
  {
    name = "gzip";
    description =
      "Deflate-style kernel; the output-name builder appends '.gz' to a \
       long input name in a fixed 24-byte heap buffer (store overflow, \
       heap)";
    bug_kind = `Store_overflow;
    source =
      {|
unsigned int window[128];

unsigned int fold(char *data, int n) {
  unsigned int h = 5381;
  int i;
  for (i = 0; i < n; i++) {
    h = ((h << 5) + h) ^ (unsigned int)data[i];
    window[h % 128] = h;
  }
  return h;
}

char *make_ofname(char *iname) {
  char *ofname = (char*)malloc(24);
  /* BUG: gzip's famous unchecked filename copy */
  strcpy(ofname, iname);
  strcat(ofname, ".gz");
  return ofname;
}

int main(void) {
  char payload_data[64];
  int i;
  unsigned int h;
  for (i = 0; i < 63; i++) payload_data[i] = (char)('a' + (i % 26));
  payload_data[63] = 0;
  h = fold(payload_data, 63);
  char *name = make_ofname("a_filename_that_is_much_too_long_for_the_buffer");
  printf("gzip: h=%u name=%s\n", h, name);
  return 0;
}
|};
  }

let all = [ go; compress; polymorph; gzip ]
