(** The 18 synthetic attacks of Wilander & Kamkar (NDSS 2003), as
    evaluated in the paper's Table 3.

    Each attack genuinely corrupts control data in simulated memory when
    run unprotected (the VM observes the hijack); under SoftBound every
    attack involves an out-of-bounds write and aborts in both full and
    store-only modes.  The programs rely on the simulator's deterministic
    frame layout, just as the original suite relies on gcc's x86 stack
    layout. *)

type attack = {
  id : int;  (** 1..18, in the paper's row order *)
  technique : string;  (** Table 3 row group *)
  target : string;  (** Table 3 row *)
  source : string;  (** MiniC program *)
}

val all : attack list
(** All 18 attacks, in Table 3 order. *)
