(** BugBench-style buggy programs (Lu et al.), as evaluated in Table 4.

    Small but working kernels of the original benchmarks with their
    documented memory bugs, calibrated so each bug's *class* matches the
    detection pattern of Table 4 (see DESIGN.md's substitution table for
    the heap-vs-stack calibration of gzip/polymorph). *)

type program = {
  name : string;
  description : string;
  source : string;  (** MiniC program; runs to completion unprotected *)
  bug_kind : [ `Read_overflow | `Store_overflow ];
}

val go : program
(** Read overflow of an array inside a struct — only complete checking
    sees it. *)

val compress : program
(** Store overflow into stack frame padding — invisible to heap-only
    tools. *)

val polymorph : program
(** Heap strcpy overflow — every tool class catches it. *)

val gzip : program
(** Heap filename overflow — every tool class catches it. *)

val all : program list
