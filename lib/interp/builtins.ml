(* Libc builtins and their SoftBound wrappers.

   The paper (section 5.2, "Separate compilation and library code")
   assumes library functions either get recompiled with SoftBound or are
   reached through checked wrapper functions.  Here every libc entry point
   has two faces:

   - the plain builtin ([strcpy], [malloc], ...): performs the operation
     over simulated memory with *no* checking — overflows silently corrupt
     neighbouring data, exactly like unprotected native code;
   - the wrapper ([_sb_strcpy], ...): receives base/bound metadata for
     every pointer argument (appended, in order, after the regular
     arguments), performs the bounds checks appropriate to the checking
     mode, maintains metadata (e.g. memcpy copies it, free clears it), and
     returns metadata alongside pointer results.

   The wrapper calling convention is derived mechanically from the
   builtin's C prototype, mirroring how the SoftBound transformation
   rewrites call sites. *)

module Ir = Sbir.Ir
open State
module Mem = Machine.Memory
module Cost = Machine.Cost
module C = Cminus.Ctypes

exception Exit_program of int

let dummy_env = C.create_env ()

(* ------------------------------------------------------------------ *)
(* Bulk-access helpers                                                  *)
(* ------------------------------------------------------------------ *)

(** Validity + checker + cache accounting for a byte range. *)
let range_access st addr len ~is_store =
  if len > 0 then begin
    checker_event st (Ev_access { addr; size = len; is_store });
    Mem.check_program_access st.mem addr len;
    let lines = ((len + 63) / 64) + 1 in
    for i = 0 to lines - 1 do
      cache_access st (addr + (i * 64))
    done;
    if is_store then st.stats.mem_writes <- st.stats.mem_writes + 1
    else st.stats.mem_reads <- st.stats.mem_reads + 1
  end

(* ------------------------------------------------------------------ *)
(* Wrapper context                                                      *)
(* ------------------------------------------------------------------ *)

type wctx = {
  st : t;
  checked : bool;
  fname : string;
  mutable meta : (int * int) list;  (** metadata pairs, in argument order *)
}

let pop_meta w =
  if not w.checked then (0, 0)
  else
    match w.meta with
    | m :: rest ->
        w.meta <- rest;
        m
    | [] -> raise (Trap (Runtime_error (w.fname ^ ": missing metadata args")))

(** Check a read of [size] bytes — skipped in store-only mode. *)
let check_read w ~ptr ~meta:(b, e) ~size =
  if w.checked && not w.st.cfg.store_only then
    sb_check w.st ~where:w.fname ~ptr ~base:b ~bound:e ~size

(** Check a write of [size] bytes — performed in both modes. *)
let check_write w ~ptr ~meta:(b, e) ~size =
  if w.checked then sb_check w.st ~where:w.fname ~ptr ~base:b ~bound:e ~size

(** strlen that validates each byte against the string's bounds before
    reading it, so an unterminated string traps at its first
    out-of-bounds byte instead of silently scanning adjacent memory.
    Looks at most [limit] bytes and never reads past the terminator. *)
let checked_strnlen w ~ptr ~meta limit =
  let st = w.st in
  let rec go i =
    if i >= limit then i
    else begin
      check_read w ~ptr:(ptr + i) ~meta ~size:1;
      Mem.check_program_access st.mem (ptr + i) 1;
      if Mem.read_byte st.mem (ptr + i) = 0 then i else go (i + 1)
    end
  in
  go 0

let checked_strlen w ~ptr ~meta =
  let cap = 1 lsl 20 in
  let len = checked_strnlen w ~ptr ~meta cap in
  if len >= cap then raise (Trap (Runtime_error "unterminated string"));
  len

(* ------------------------------------------------------------------ *)
(* Varargs access                                                       *)
(* ------------------------------------------------------------------ *)

(** Read vararg slot [i]; checked against the save area's bounds, which
    realizes the paper's vararg decode checking (section 5.2). *)
let va_slot w ~va_ptr ~va_meta i =
  let addr = va_ptr + (8 * i) in
  check_read w ~ptr:addr ~meta:va_meta ~size:8;
  range_access w.st addr 8 ~is_store:false;
  Mem.read_int w.st.mem addr 8

let va_slot_f64 w ~va_ptr ~va_meta i =
  let addr = va_ptr + (8 * i) in
  check_read w ~ptr:addr ~meta:va_meta ~size:8;
  range_access w.st addr 8 ~is_store:false;
  Mem.read_f64 w.st.mem addr

(** Metadata of the pointer stored in vararg slot [i] (a metadata-space
    lookup, like any pointer load). *)
let va_slot_meta w ~va_ptr i =
  if w.checked then meta_load w.st (va_ptr + (8 * i)) else (0, 0)

(* ------------------------------------------------------------------ *)
(* printf-style formatting                                              *)
(* ------------------------------------------------------------------ *)

(** Format [fmt_addr] with varargs, appending output via [put].  Returns
    the number of characters produced. *)
let format_into w ~put ~fmt ~fmt_meta ~va_ptr ~va_meta ~va_count =
  let st = w.st in
  let count = ref 0 in
  let emit c =
    put c;
    incr count
  in
  let emit_str s = String.iter emit s in
  let arg = ref 0 in
  let next_slot () =
    if !arg >= va_count && w.checked then
      raise
        (Trap
           (Bounds_violation
              {
                addr = va_ptr + (8 * !arg);
                base = fst va_meta;
                bound = snd va_meta;
                size = 8;
                where = w.fname ^ " (too many conversions for arguments)";
              }));
    let v = va_slot w ~va_ptr ~va_meta !arg in
    incr arg;
    v
  in
  let next_slot_f64 () =
    let v = va_slot_f64 w ~va_ptr ~va_meta !arg in
    incr arg;
    v
  in
  let i = ref 0 in
  let read_fmt_byte () =
    let a = fmt + !i in
    check_read w ~ptr:a ~meta:fmt_meta ~size:1;
    Mem.check_program_access st.mem a 1;
    Mem.read_byte st.mem a
  in
  let rec loop () =
    let c = read_fmt_byte () in
    if c = 0 then ()
    else begin
      incr i;
      if c <> Char.code '%' then emit (Char.chr c)
      else begin
        (* parse %[flags][width][.prec][l]conv *)
        let spec = Buffer.create 8 in
        Buffer.add_char spec '%';
        let rec scan () =
          let c = read_fmt_byte () in
          if c = 0 then '%'
          else begin
            incr i;
            let ch = Char.chr c in
            match ch with
            | '-' | '0' | '+' | ' ' | '.' | '0' .. '9' ->
                Buffer.add_char spec ch;
                scan ()
            | 'l' -> scan () (* length modifier: all ints are 64-bit here *)
            | c -> c
          end
        in
        let conv = scan () in
        let spec = Buffer.contents spec in
        let safe_int c v =
          try Printf.sprintf (Scanf.format_from_string (spec ^ String.make 1 c) "%d") v
          with _ -> string_of_int v
        in
        let safe_float c v =
          try Printf.sprintf (Scanf.format_from_string (spec ^ String.make 1 c) "%f") v
          with _ -> Printf.sprintf "%g" v
        in
        (match conv with
        | 'd' | 'i' -> emit_str (safe_int 'd' (next_slot ()))
        | 'u' -> emit_str (safe_int 'u' (next_slot ()))
        | 'x' -> emit_str (safe_int 'x' (next_slot ()))
        | 'p' -> emit_str (Printf.sprintf "0x%x" (next_slot ()))
        | 'c' -> emit (Char.chr (next_slot () land 0xff))
        | 'f' | 'e' | 'g' -> emit_str (safe_float conv (next_slot_f64 ()))
        | 's' ->
            let slot = !arg in
            let p = next_slot () in
            let meta = va_slot_meta w ~va_ptr slot in
            (* checked scan: an unterminated %s argument must trap at
               its bound, not print whatever follows in memory *)
            let len = checked_strlen w ~ptr:p ~meta in
            range_access st p (len + 1) ~is_store:false;
            emit_str (Mem.read_cstring st.mem p)
        | '%' -> emit '%'
        | c ->
            emit '%';
            emit c);
        ()
      end;
      if c <> 0 then loop ()
    end
  in
  loop ();
  charge st (Cost.bulk_cost !count);
  !count

(* ------------------------------------------------------------------ *)
(* The builtin implementations                                          *)
(* ------------------------------------------------------------------ *)

let vi v = VI v
let ret0 = []

(* ------------------------------------------------------------------ *)
(* C-style longest-valid-prefix numeric scanning                        *)
(* ------------------------------------------------------------------ *)

(* The conversion family (strtol, atoi, atol, atof) must parse the
   longest valid numeric *prefix* and ignore trailing junk — C
   semantics, not OCaml's whole-string [int_of_string], which returns 0
   for "42abc" and wrongly accepts OCaml-only syntax like "0x2A" (under
   base 10) and "1_000". *)

let is_c_space c = c = ' ' || (c >= '\t' && c <= '\r')

(** [scan_long ~base s] skips leading C whitespace and an optional
    sign, then consumes the longest run of digits valid in [base].
    Returns [(value, consumed)] where [consumed] is the number of bytes
    of [s] eaten including whitespace and sign — or 0 when no digit was
    found, matching strtol's endptr = nptr contract.  [base = 0] keeps
    this interpreter's historical reading (decimal). *)
let scan_long ?(base = 10) (s : string) : int * int =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_c_space s.[!i] do incr i done;
  let sign =
    if !i < n && s.[!i] = '-' then (incr i; -1)
    else if !i < n && s.[!i] = '+' then (incr i; 1)
    else 1
  in
  let base = if base = 0 then 10 else base in
  let digit c =
    if c >= '0' && c <= '9' then Char.code c - 48
    else if c >= 'a' && c <= 'z' then Char.code c - 87
    else if c >= 'A' && c <= 'Z' then Char.code c - 55
    else 99
  in
  let acc = ref 0 in
  let start = !i in
  while !i < n && digit s.[!i] < base do
    acc := (!acc * base) + digit s.[!i];
    incr i
  done;
  if !i = start then (0, 0) else (sign * !acc, !i)

(** [scan_double s]: C's strtod shape — whitespace, sign, digits, an
    optional fraction, an optional exponent (consumed only when it has
    at least one digit of its own).  Returns [(value, consumed)], with
    [consumed = 0] when no mantissa digit was found. *)
let scan_double (s : string) : float * int =
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n && is_c_space s.[!i] do incr i done;
  let mstart = !i in
  if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
  let int_digits = ref 0 in
  while !i < n && is_digit s.[!i] do incr int_digits; incr i done;
  let frac_digits = ref 0 in
  if !i < n && s.[!i] = '.' then begin
    let dot = !i in
    incr i;
    while !i < n && is_digit s.[!i] do incr frac_digits; incr i done;
    (* a bare "." after the integer part is still valid C ("3." = 3.0),
       but "." with no digits on either side is not a number at all *)
    if !int_digits = 0 && !frac_digits = 0 then i := dot
  end;
  if !int_digits = 0 && !frac_digits = 0 then (0.0, 0)
  else begin
    (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
       let e = !i in
       incr i;
       if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
       let exp_digits = ref 0 in
       while !i < n && is_digit s.[!i] do incr exp_digits; incr i done;
       if !exp_digits = 0 then i := e
     end);
    (* the consumed slice is built from validated characters only, so
       OCaml's float_of_string cannot reject it or read it differently *)
    (float_of_string (String.sub s mstart (!i - mstart)), !i)
  end

(** Names of all builtins (both plain and wrapper forms resolve here). *)
let table : (string, unit) Hashtbl.t = Hashtbl.create 128

let () =
  List.iter
    (fun (n, _) -> Hashtbl.replace table n ())
    Cminus.Builtins.functions

let is_builtin_name name =
  Hashtbl.mem table name
  || (String.length name > 4
     && String.sub name 0 4 = "_sb_"
     &&
     let base = String.sub name 4 (String.length name - 4) in
     let base =
       match base with
       | "free_withmeta" -> "free"
       | "memcpy_nometa" -> "memcpy"
       | "memmove_nometa" -> "memmove"
       | b -> b
     in
     Hashtbl.mem table base)

(** malloc and friends *)
let do_malloc w size : int * (int * int) =
  charge w.st Cost.libc_call;
  match Machine.Heap.malloc w.st.heap size with
  | None -> (0, (0, 0))
  | Some a ->
      checker_event w.st (Ev_alloc { base = a; size; kind = AHeap });
      (a, (a, a + size))

let clear_block_meta w addr size =
  (* paper section 5.2, "Memory reuse and stale metadata": clear the
     metadata of pointer-bearing heap blocks before free *)
  if w.checked then begin
    let slots = (size + 7) / 8 in
    for i = 0 to slots - 1 do
      meta_store w.st (addr + (8 * i)) 0 0
    done
  end

let do_free w ?(with_meta = false) ptr =
  charge w.st Cost.libc_call;
  if ptr <> 0 then begin
    (match Machine.Heap.block_size w.st.heap ptr with
    | Some size ->
        if with_meta then clear_block_meta w ptr size;
        checker_event w.st (Ev_free { base = ptr; size; kind = AHeap })
    | None -> ());
    try Machine.Heap.free w.st.heap ptr
    with Machine.Heap.Bad_free a -> raise (Trap (Bad_free a))
  end

let copy_meta_range w ~dst ~src ~len =
  (* copy metadata for every pointer-aligned slot covered by the copy;
     all source slots are snapshotted before the first store — memmove
     ranges may overlap, and an in-place forward copy would reread source
     slots the destination pass already overwrote (Mem.blit gets this
     right for the data; the metadata copy must match) *)
  if w.checked then begin
    let slots = len / 8 in
    let snap = Array.init slots (fun i -> meta_load w.st (src + (8 * i))) in
    Array.iteri (fun i (b, e) -> meta_store w.st (dst + (8 * i)) b e) snap
  end

(** Dispatch a builtin call.

    [checked] marks [_sb_]-prefixed wrapper calls; for those, [args] ends
    with the metadata pairs for each pointer argument (including the
    hidden [va_ptr] of variadic calls).  Returns the result values —
    including result metadata when a checked builtin returns a pointer. *)
let dispatch st ~(name : string) ~(args : value list) : value list =
  let checked, base_name =
    if String.length name > 4 && String.sub name 0 4 = "_sb_" then
      (true, String.sub name 4 (String.length name - 4))
    else (false, name)
  in
  let variant, base_name =
    match base_name with
    | "free_withmeta" -> (`Free_meta, "free")
    | "memcpy_nometa" -> (`No_meta, "memcpy")
    | "memmove_nometa" -> (`No_meta, "memmove")
    | b -> (`Plain, b)
  in
  let sg =
    match Hashtbl.find_opt st.builtins base_name with
    | Some sg -> sg
    | None -> (
        (* [st.builtins] is filled at module load; fall back to the
           prototype list for states created without the loader *)
        match List.assoc_opt base_name Cminus.Builtins.functions with
        | Some sg -> sg
        | None -> raise (Trap (Runtime_error ("unknown builtin " ^ name))))
  in
  (* split plain args from metadata args *)
  let n_fixed =
    List.length sg.C.params + if sg.C.variadic then 2 else 0
  in
  let plain = List.filteri (fun i _ -> i < n_fixed) args in
  let meta_vals = List.filteri (fun i _ -> i >= n_fixed) args in
  let rec pair = function
    | [] -> []
    | VI b :: VI e :: rest -> (b, e) :: pair rest
    | _ -> raise (Trap (Runtime_error (name ^ ": malformed metadata args")))
  in
  let w = { st; checked; fname = name; meta = pair meta_vals } in
  let plain_arr = Array.of_list plain in
  let int_args = Array.map as_int plain_arr in
  (* bind pointer-arg metadata in order *)
  let metas =
    List.map
      (fun ty ->
        match C.resolve dummy_env ty with
        | C.Tptr _ -> pop_meta w
        | _ -> (0, 0))
      (sg.C.params @ if sg.C.variadic then [ C.Tptr C.Tvoid; C.Tint C.ILong ]
                     else [])
    |> Array.of_list
  in
  let meta_of i = metas.(i) in
  let argi i = int_args.(i) in
  let argf i = as_float plain_arr.(i) in
  let ret_ptr v (b, e) = if checked then [ VI v; VI b; VI e ] else [ VI v ] in
  charge st Cost.libc_call;
  match base_name with
  (* ---- allocation ---- *)
  | "malloc" ->
      let p, m = do_malloc w (argi 0) in
      ret_ptr p m
  | "calloc" ->
      let n = argi 0 * argi 1 in
      let p, m = do_malloc w n in
      if p <> 0 then begin
        Mem.fill st.mem p n 0;
        charge st (Cost.bulk_cost n)
      end;
      ret_ptr p m
  | "realloc" ->
      charge st Cost.libc_call;
      let old = argi 0 and size = argi 1 in
      (* same containment discipline as free for the retiring pointer *)
      if old <> 0 then check_write w ~ptr:old ~meta:(meta_of 0) ~size:0;
      (try
         (* the old size must be read before [Heap.realloc] retires the
            block, or the checkers' free event is silently skipped *)
         let old_size =
           if old = 0 then None else Machine.Heap.block_size st.heap old
         in
         match Machine.Heap.realloc st.heap old size with
         | None -> ret_ptr 0 (0, 0)
         | Some a ->
             (match old_size with
             | Some osz ->
                 checker_event st (Ev_free { base = old; size = osz; kind = AHeap })
             | None -> ());
             checker_event st (Ev_alloc { base = a; size; kind = AHeap });
             (* metadata moves with the contents (already in place when
                the block was resized in place) *)
             (match old_size with
             | Some osz when w.checked && a <> old ->
                 copy_meta_range w ~dst:a ~src:old ~len:(min osz size)
             | _ -> ());
             ret_ptr a (a, a + size)
       with Machine.Heap.Bad_free a -> raise (Trap (Bad_free a)))
  | "free" ->
      let p = argi 0 in
      (* the pointer handed to free must sit within its own metadata
         bounds (size-0 containment check): a forged pointer carrying
         unrelated metadata cannot retire somebody else's live block *)
      if p <> 0 then check_write w ~ptr:p ~meta:(meta_of 0) ~size:0;
      do_free w ~with_meta:(variant = `Free_meta) p;
      ret0
  (* ---- memory ---- *)
  | "memcpy" | "memmove" ->
      let dst = argi 0 and src = argi 1 and len = argi 2 in
      (* "the source and targets of the memcpy are checked for bounds
         safety once at the start of the copy" (section 5.2) *)
      check_write w ~ptr:dst ~meta:(meta_of 0) ~size:len;
      check_read w ~ptr:src ~meta:(meta_of 1) ~size:len;
      range_access st src len ~is_store:false;
      range_access st dst len ~is_store:true;
      Mem.blit st.mem ~src ~dst ~len;
      charge st (Cost.bulk_cost len);
      if variant <> `No_meta then copy_meta_range w ~dst ~src ~len;
      ret_ptr dst (meta_of 0)
  | "memset" ->
      let dst = argi 0 and v = argi 1 and len = argi 2 in
      check_write w ~ptr:dst ~meta:(meta_of 0) ~size:len;
      range_access st dst len ~is_store:true;
      Mem.fill st.mem dst len v;
      charge st (Cost.bulk_cost len);
      ret_ptr dst (meta_of 0)
  | "memcmp" ->
      let a = argi 0 and b = argi 1 and len = argi 2 in
      check_read w ~ptr:a ~meta:(meta_of 0) ~size:len;
      check_read w ~ptr:b ~meta:(meta_of 1) ~size:len;
      range_access st a len ~is_store:false;
      range_access st b len ~is_store:false;
      charge st (Cost.bulk_cost len);
      let rec go i =
        if i >= len then 0
        else
          let x = Mem.read_byte st.mem (a + i)
          and y = Mem.read_byte st.mem (b + i) in
          if x <> y then compare x y else go (i + 1)
      in
      [ vi (go 0) ]
  (* ---- strings ---- *)
  | "strlen" ->
      let p = argi 0 in
      (* checked scan: an unterminated string traps at its bound instead
         of measuring whatever lies beyond it *)
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      charge st (Cost.bulk_cost len);
      [ vi len ]
  | "strcpy" ->
      let dst = argi 0 and src = argi 1 in
      let len = checked_strlen w ~ptr:src ~meta:(meta_of 1) in
      check_write w ~ptr:dst ~meta:(meta_of 0) ~size:(len + 1);
      range_access st src (len + 1) ~is_store:false;
      range_access st dst (len + 1) ~is_store:true;
      Mem.blit st.mem ~src ~dst ~len:(len + 1);
      charge st (Cost.bulk_cost (len + 1));
      ret_ptr dst (meta_of 0)
  | "strncpy" ->
      let dst = argi 0 and src = argi 1 and n = max (argi 2) 0 in
      (* bounded scan: strncpy reads min(strlen+1, n) source bytes and
         must not look past either [n] or the source's bounds — the old
         unbounded scan read past both, and the read check also missed
         the terminator byte when the string is shorter than [n] *)
      let len = checked_strnlen w ~ptr:src ~meta:(meta_of 1) n in
      if n > 0 then check_write w ~ptr:dst ~meta:(meta_of 0) ~size:n;
      range_access st src (min (len + 1) n) ~is_store:false;
      range_access st dst n ~is_store:true;
      Mem.blit st.mem ~src ~dst ~len;
      if len < n then Mem.fill st.mem (dst + len) (n - len) 0;
      charge st (Cost.bulk_cost n);
      ret_ptr dst (meta_of 0)
  | "strcat" ->
      let dst = argi 0 and src = argi 1 in
      (* the dst-prefix scan reads program memory, so it is checked:
         an unterminated dst traps at its bound instead of scanning
         whatever lies beyond it *)
      let dlen = checked_strlen w ~ptr:dst ~meta:(meta_of 0) in
      let slen = checked_strlen w ~ptr:src ~meta:(meta_of 1) in
      check_write w ~ptr:dst ~meta:(meta_of 0) ~size:(dlen + slen + 1);
      range_access st dst (dlen + 1) ~is_store:false;
      range_access st src (slen + 1) ~is_store:false;
      range_access st (dst + dlen) (slen + 1) ~is_store:true;
      Mem.blit st.mem ~src ~dst:(dst + dlen) ~len:(slen + 1);
      charge st (Cost.bulk_cost (dlen + slen + 1));
      ret_ptr dst (meta_of 0)
  | "strncat" ->
      let dst = argi 0 and src = argi 1 and n = max (argi 2) 0 in
      let dlen = checked_strlen w ~ptr:dst ~meta:(meta_of 0) in
      let slen = checked_strnlen w ~ptr:src ~meta:(meta_of 1) n in
      check_write w ~ptr:dst ~meta:(meta_of 0) ~size:(dlen + slen + 1);
      range_access st dst (dlen + 1) ~is_store:false;
      range_access st src (min (slen + 1) n) ~is_store:false;
      range_access st (dst + dlen) (slen + 1) ~is_store:true;
      Mem.blit st.mem ~src ~dst:(dst + dlen) ~len:slen;
      Mem.write_byte st.mem (dst + dlen + slen) 0;
      charge st (Cost.bulk_cost (dlen + slen + 1));
      ret_ptr dst (meta_of 0)
  | "strcmp" | "strncmp" ->
      let a = argi 0 and b = argi 1 in
      let limit = if base_name = "strncmp" then max (argi 2) 0 else max_int in
      (* bounded checked scans: neither operand is read past its bounds,
         and strncmp never looks past [limit] — a short compare over an
         unterminated buffer is well-defined, not a scan of what follows *)
      let scan ptr meta =
        if base_name = "strncmp" then checked_strnlen w ~ptr ~meta limit
        else checked_strlen w ~ptr ~meta
      in
      let la = scan a (meta_of 0) in
      let lb = scan b (meta_of 1) in
      range_access st a (min (la + 1) limit) ~is_store:false;
      range_access st b (min (lb + 1) limit) ~is_store:false;
      charge st (Cost.bulk_cost (min (la + 1) limit));
      let rec go i =
        if i >= limit then 0
        else
          let x = Mem.read_byte st.mem (a + i)
          and y = Mem.read_byte st.mem (b + i) in
          if x <> y then compare x y else if x = 0 then 0 else go (i + 1)
      in
      [ vi (go 0) ]
  | "strchr" ->
      let p = argi 0 and c = argi 1 land 0xff in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      charge st (Cost.bulk_cost len);
      let rec go i =
        if i > len then 0
        else if Mem.read_byte st.mem (p + i) = c then p + i
        else go (i + 1)
      in
      let r = go 0 in
      ret_ptr r (if r = 0 then (0, 0) else meta_of 0)
  | "strstr" ->
      let hay = argi 0 and needle = argi 1 in
      (* both operands get a checked scan before any byte is fetched *)
      let _ = checked_strlen w ~ptr:hay ~meta:(meta_of 0) in
      let _ = checked_strlen w ~ptr:needle ~meta:(meta_of 1) in
      let hs = Mem.read_cstring st.mem hay in
      let ns = Mem.read_cstring st.mem needle in
      range_access st hay (String.length hs + 1) ~is_store:false;
      charge st (Cost.bulk_cost (String.length hs));
      let r =
        if ns = "" then hay
        else begin
          let found = ref 0 in
          (try
             for i = 0 to String.length hs - String.length ns do
               if String.sub hs i (String.length ns) = ns then begin
                 found := hay + i;
                 raise Stdlib.Exit
               end
             done
           with Stdlib.Exit -> ());
          !found
        end
      in
      ret_ptr r (if r = 0 then (0, 0) else meta_of 0)
  | "strdup" ->
      let p = argi 0 in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      let a, m = do_malloc w (len + 1) in
      if a <> 0 then begin
        Mem.blit st.mem ~src:p ~dst:a ~len:(len + 1);
        charge st (Cost.bulk_cost (len + 1))
      end;
      ret_ptr a m
  (* ---- ctype ---- *)
  | "toupper" ->
      let c = argi 0 in
      [ vi (if c >= 97 && c <= 122 then c - 32 else c) ]
  | "tolower" ->
      let c = argi 0 in
      [ vi (if c >= 65 && c <= 90 then c + 32 else c) ]
  | "isdigit" -> [ vi (if argi 0 >= 48 && argi 0 <= 57 then 1 else 0) ]
  | "isalpha" ->
      let c = argi 0 in
      [ vi (if (c >= 65 && c <= 90) || (c >= 97 && c <= 122) then 1 else 0) ]
  | "isspace" ->
      let c = argi 0 in
      [ vi (if c = 32 || (c >= 9 && c <= 13) then 1 else 0) ]
  | "isupper" -> [ vi (if argi 0 >= 65 && argi 0 <= 90 then 1 else 0) ]
  | "islower" -> [ vi (if argi 0 >= 97 && argi 0 <= 122 then 1 else 0) ]
  | "strrchr" ->
      let p = argi 0 and c = argi 1 land 0xff in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      charge st (Cost.bulk_cost len);
      let r = ref 0 in
      for i = 0 to len do
        if Mem.read_byte st.mem (p + i) = c then r := p + i
      done;
      ret_ptr !r (if !r = 0 then (0, 0) else meta_of 0)
  | "memchr" ->
      let p = argi 0 and c = argi 1 land 0xff and n = argi 2 in
      check_read w ~ptr:p ~meta:(meta_of 0) ~size:n;
      range_access st p n ~is_store:false;
      charge st (Cost.bulk_cost n);
      let r = ref 0 in
      (try
         for i = 0 to n - 1 do
           if Mem.read_byte st.mem (p + i) = c then begin
             r := p + i;
             raise Stdlib.Exit
           end
         done
       with Stdlib.Exit -> ());
      ret_ptr !r (if !r = 0 then (0, 0) else meta_of 0)
  | "strtol" ->
      let p = argi 0 and endp = argi 1 and base = argi 2 in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      let s = Mem.read_cstring st.mem p in
      let v, consumed = scan_long ~base s in
      if endp <> 0 then begin
        let tail = p + consumed in
        check_write w ~ptr:endp ~meta:(meta_of 1) ~size:8;
        range_access st endp 8 ~is_store:true;
        Mem.write_int st.mem endp 8 tail;
        (* the stored end pointer derives from the input string: its
           metadata is the string's (a pointer store updates the table) *)
        if w.checked then
          meta_store st endp (fst (meta_of 0)) (snd (meta_of 0))
      end;
      [ vi v ]
  (* ---- conversion ---- *)
  | "atoi" | "atol" ->
      (* same longest-valid-prefix scan as strtol(s, NULL, 10):
         atoi("42abc") = 42, atoi("0x2A") = 0, atoi("1_000") = 1 *)
      let p = argi 0 in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      let s = Mem.read_cstring st.mem p in
      let v, _ = scan_long s in
      [ vi v ]
  | "atof" ->
      let p = argi 0 in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      let s = Mem.read_cstring st.mem p in
      let v, _ = scan_double s in
      [ VF v ]
  (* ---- io ---- *)
  | "printf" ->
      let fmt = argi 0 and va_ptr = argi 1 and va_count = argi 2 in
      let n =
        format_into w
          ~put:(fun c -> State.output_char st c)
          ~fmt ~fmt_meta:(meta_of 0) ~va_ptr ~va_meta:(meta_of 1) ~va_count
      in
      [ vi n ]
  | "sprintf" ->
      let dst = argi 0 and fmt = argi 1 in
      let va_ptr = argi 2 and va_count = argi 3 in
      let pos = ref 0 in
      let dmeta = meta_of 0 in
      let n =
        format_into w
          ~put:(fun c ->
            check_write w ~ptr:(dst + !pos) ~meta:dmeta ~size:1;
            Mem.check_program_access st.mem (dst + !pos) 1;
            Mem.write_byte st.mem (dst + !pos) (Char.code c);
            incr pos)
          ~fmt ~fmt_meta:(meta_of 1) ~va_ptr ~va_meta:(meta_of 2) ~va_count
      in
      check_write w ~ptr:(dst + !pos) ~meta:dmeta ~size:1;
      Mem.check_program_access st.mem (dst + !pos) 1;
      Mem.write_byte st.mem (dst + !pos) 0;
      range_access st dst (n + 1) ~is_store:true;
      [ vi n ]
  | "snprintf" ->
      let dst = argi 0 and cap = argi 1 and fmt = argi 2 in
      let va_ptr = argi 3 and va_count = argi 4 in
      let pos = ref 0 in
      let dmeta = meta_of 0 in
      let n =
        format_into w
          ~put:(fun c ->
            if !pos < cap - 1 then begin
              check_write w ~ptr:(dst + !pos) ~meta:dmeta ~size:1;
              Mem.check_program_access st.mem (dst + !pos) 1;
              Mem.write_byte st.mem (dst + !pos) (Char.code c);
              incr pos
            end)
          ~fmt ~fmt_meta:(meta_of 2) ~va_ptr ~va_meta:(meta_of 3) ~va_count
      in
      if cap > 0 then begin
        check_write w ~ptr:(dst + !pos) ~meta:dmeta ~size:1;
        Mem.check_program_access st.mem (dst + !pos) 1;
        Mem.write_byte st.mem (dst + !pos) 0
      end;
      [ vi n ]
  | "puts" ->
      let p = argi 0 in
      let len = checked_strlen w ~ptr:p ~meta:(meta_of 0) in
      range_access st p (len + 1) ~is_store:false;
      State.output_string st (Mem.read_cstring st.mem p);
      State.output_char st '\n';
      charge st (Cost.bulk_cost len);
      [ vi (len + 1) ]
  | "putchar" ->
      State.output_char st (Char.chr (argi 0 land 0xff));
      [ vi (argi 0) ]
  | "getchar" -> [ vi (-1) ]
  | "sim_recv" -> (
      let buf = argi 0 and cap = argi 1 in
      match State.next_input_line st with
      | None -> [ vi (-1) ]
      | Some line ->
          let n = min (String.length line) (max 0 (cap - 1)) in
          check_write w ~ptr:buf ~meta:(meta_of 0) ~size:(n + 1);
          range_access st buf (n + 1) ~is_store:true;
          Mem.write_string st.mem buf (String.sub line 0 n);
          Mem.write_byte st.mem (buf + n) 0;
          charge st (Cost.bulk_cost n);
          [ vi n ])
  | "sim_send" ->
      let buf = argi 0 and n = argi 1 in
      check_read w ~ptr:buf ~meta:(meta_of 0) ~size:n;
      range_access st buf n ~is_store:false;
      for i = 0 to n - 1 do
        State.output_char st (Char.chr (Mem.read_byte st.mem (buf + i)))
      done;
      charge st (Cost.bulk_cost n);
      [ vi n ]
  (* ---- misc ---- *)
  | "rand" -> [ vi (State.rand st) ]
  | "srand" ->
      State.srand st (argi 0);
      ret0
  | "exit" -> raise (Exit_program (argi 0))
  | "abort" -> raise (Trap (Runtime_error "abort() called"))
  | "assert" ->
      if argi 0 = 0 then raise (Trap (Runtime_error "assertion failed"));
      ret0
  | "abs" | "labs" -> [ vi (abs (argi 0)) ]
  (* ---- math (hardware latency, not a library-call cost) ---- *)
  | "sqrt" -> charge st Cost.math_fn; [ VF (sqrt (argf 0)) ]
  | "fabs" -> [ VF (Float.abs (argf 0)) ]
  | "pow" -> charge st (2 * Cost.math_fn); [ VF (Float.pow (argf 0) (argf 1)) ]
  | "sin" -> charge st (2 * Cost.math_fn); [ VF (sin (argf 0)) ]
  | "cos" -> charge st (2 * Cost.math_fn); [ VF (cos (argf 0)) ]
  | "exp" -> charge st (2 * Cost.math_fn); [ VF (exp (argf 0)) ]
  | "log" -> charge st (2 * Cost.math_fn); [ VF (log (argf 0)) ]
  | "floor" -> [ VF (Float.floor (argf 0)) ]
  | "ceil" -> [ VF (Float.ceil (argf 0)) ]
  | "attack_success" ->
      raise (Trap (Hijack "attack payload executed"))
  | "setbound" ->
      (* plain (untransformed) setbound is a no-op *)
      ret0
  | other ->
      raise (Trap (Runtime_error ("builtin not implemented: " ^ other)))
