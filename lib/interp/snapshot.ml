(* Integrity snapshots of a protected component's memory, heap blocks
   and pointer metadata.

   The adversarial robust-safety harness ({!Fuzz.Adversary}) captures a
   snapshot of everything the protected component owns — byte images of
   its buffers, its live heap blocks, and the (value, base, bound)
   triple of every pointer-holding slot — and re-captures after each
   attacker action.  A non-empty {!diff} is a trap-free corruption of
   protected state: exactly what robust safety forbids.

   All reads are observer-only: {!Machine.Memory.read_byte} and
   {!State.meta_peek} perform no accounting, no cache traffic and no
   observability events, so capturing a snapshot never perturbs the
   simulated run it is auditing. *)

module Mem = Machine.Memory
module Heap = Machine.Heap

type region = { r_name : string; r_addr : int; r_len : int }

type t = {
  images : (region * string) list;  (** raw byte images, in capture order *)
  slots : (int * int * (int * int)) list;
      (** pointer slot: address, stored value, metadata from the facility *)
  blocks : (int * int option) list;  (** heap block: address, live size *)
}

(** Raw byte image of [\[addr, addr+len)] — unmaterialized pages read
    as zero, like the machine itself. *)
let read_bytes (st : State.t) addr len =
  String.init len (fun i -> Char.chr (Mem.read_byte st.mem (addr + i) land 0xff))

let capture (st : State.t) ~(regions : region list) ~(slot_addrs : int list)
    ~(block_addrs : int list) : t =
  {
    images = List.map (fun r -> (r, read_bytes st r.r_addr r.r_len)) regions;
    slots =
      List.map
        (fun a -> (a, Mem.read_int st.mem a 8, State.meta_peek st a))
        slot_addrs;
    blocks = List.map (fun a -> (a, Heap.block_size st.heap a)) block_addrs;
  }

(** First byte at which two images differ, if any. *)
let first_mismatch (a : string) (b : string) : int option =
  let n = min (String.length a) (String.length b) in
  let rec go i =
    if i >= n then if String.length a = String.length b then None else Some n
    else if a.[i] <> b.[i] then Some i
    else go (i + 1)
  in
  go 0

(** Discrepancies between two snapshots taken with the same
    specification; empty means the protected state is intact. *)
let diff (before : t) (after : t) : string list =
  let out = ref [] in
  let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter2
    (fun (r, img0) (_, img1) ->
      match first_mismatch img0 img1 with
      | None -> ()
      | Some i ->
          say "region %s: byte %d changed (0x%02x -> 0x%02x)" r.r_name i
            (Char.code img0.[i]) (Char.code img1.[i]))
    before.images after.images;
  List.iter2
    (fun (a, v0, m0) (_, v1, m1) ->
      if v0 <> v1 then say "slot 0x%x: value 0x%x -> 0x%x" a v0 v1;
      if m0 <> m1 then
        say "slot 0x%x: metadata (0x%x,0x%x) -> (0x%x,0x%x)" a (fst m0)
          (snd m0) (fst m1) (snd m1))
    before.slots after.slots;
  List.iter2
    (fun (a, s0) (_, s1) ->
      if s0 <> s1 then
        let show = function None -> "dead" | Some s -> string_of_int s in
        say "block 0x%x: %s -> %s" a (show s0) (show s1))
    before.blocks after.blocks;
  List.rev !out
