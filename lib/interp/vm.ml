(* The IR interpreter.

   Frames live in simulated memory with the classic x86 shape — locals
   below a saved-frame-pointer word and a return token — so stack-smashing
   attacks genuinely corrupt control data, and hijacks are *observed*
   (via token/function-pointer validation at control transfers), not
   assumed.  Costs are charged per executed instruction from the
   {!Machine.Cost} model plus cache penalties, which is what the benchmark
   harness reports as simulated cycles. *)

module Ir = Sbir.Ir
open State
module Mem = Machine.Memory
module L = Machine.Layout
module Cost = Machine.Cost

(* ------------------------------------------------------------------ *)
(* Setup                                                                *)
(* ------------------------------------------------------------------ *)

(** A module function, pre-decoded at load: per-block instruction
    arrays (with [Glob]/[GlobEnd]/[Func] operands resolved to immediate
    addresses) and the parameter registers as an array. *)
type fentry = {
  fe_func : Ir.func;  (** the operand-resolved copy *)
  fe_code : Ir.inst array array;
  fe_params : Ir.reg array;
}

(** What a call target resolves to — computed once per distinct name
    instead of re-classifying (prefix tests, prototype-list walks) on
    every call.  The [bool] is the [_sb_] checked-wrapper flag. *)
type resolution =
  | RFunc of fentry
  | RSetjmp of bool
  | RLongjmp of bool
  | RQsort of bool
  | RBsearch of bool
  | RBuiltin of bool
  | RUndefined of bool

type loaded = {
  st : t;
  code : (string, Ir.inst array array) Hashtbl.t;
  resolved : (string, resolution) Hashtbl.t;
      (** module functions are installed at load; other names (builtins,
          wrappers, undefined) are classified on first call *)
  sig_hashes : (string, int option) Hashtbl.t;
      (** memoized {!callee_sig_hash} results *)
  mutable reenter : (loaded -> fentry -> value list -> value list) option;
      (** engine hook for re-entrant builtin-to-interpreted calls (qsort
          comparators): the active engine installs its own
          push-and-run-to-return here so comparators execute on the same
          engine as the rest of the program.  [None] falls back to the
          decoding engine's {!call_function}. *)
}

let build_code (f : Ir.func) : Ir.inst array array =
  Array.map (fun (b : Ir.block) -> Array.of_list b.Ir.insts) f.Ir.fblocks

(* --- pre-decode: resolve name-valued operands to addresses --- *)

(* Globals are laid out (and function indices assigned) before any code
   runs, so [Glob]/[GlobEnd]/[Func] operands can be folded to immediate
   addresses at load.  Names that don't resolve are left in place: they
   keep trapping lazily at evaluation time, exactly as before. *)
let resolve_operand st (o : Ir.operand) : Ir.operand =
  match o with
  | Ir.Glob g -> (
      match Hashtbl.find_opt st.globals g with
      | Some (a, _) -> Ir.ImmI a
      | None -> o)
  | Ir.GlobEnd g -> (
      match Hashtbl.find_opt st.globals g with
      | Some (a, s) -> Ir.ImmI (a + s)
      | None -> o)
  | Ir.Func f -> (
      match Hashtbl.find_opt st.func_index f with
      | Some i -> Ir.ImmI (L.func_addr i)
      | None -> o)
  | o -> o

let predecode_inst st (i : Ir.inst) : Ir.inst =
  match i with
  | Ir.Call ({ callee; args; _ } as c) ->
      (* a direct callee keeps its name — calls dispatch by name, not by
         code address *)
      let callee =
        match callee with Ir.Func _ as f -> f | op -> resolve_operand st op
      in
      Ir.Call { c with callee; args = List.map (resolve_operand st) args }
  | i -> Ir.map_inst_operands (resolve_operand st) i

let predecode_term st (t : Ir.terminator) : Ir.terminator =
  match t with
  | Ir.TRet ops -> Ir.TRet (List.map (resolve_operand st) ops)
  | Ir.TBr (c, t1, t2) -> Ir.TBr (resolve_operand st c, t1, t2)
  | Ir.TSwitch (v, cases, d) -> Ir.TSwitch (resolve_operand st v, cases, d)
  | (Ir.TJmp _ | Ir.TUnreachable) as t -> t

let predecode_func st (f : Ir.func) : Ir.func =
  {
    f with
    Ir.fblocks =
      Array.map
        (fun (b : Ir.block) ->
          {
            Ir.insts = List.map (predecode_inst st) b.Ir.insts;
            Ir.term = predecode_term st b.Ir.term;
          })
        f.Ir.fblocks;
  }

let create ?(cfg = default_config) (m : Ir.modul) : loaded =
  let mem = Mem.create () in
  let heap = Machine.Heap.create mem in
  let cache = Machine.Cache.create () in
  let func_names = Array.of_list m.Ir.mfunc_order in
  let func_index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace func_index n i) func_names;
  (* builtins get code addresses too (so &strcmp etc. are callable);
     append them after the defined functions *)
  let builtin_names =
    List.concat_map
      (fun (n, _) -> [ n; "_sb_" ^ n ])
      Cminus.Builtins.functions
    |> List.filter (fun n -> not (Hashtbl.mem func_index n))
  in
  let func_names = Array.append func_names (Array.of_list builtin_names) in
  Array.iteri (fun i n -> Hashtbl.replace func_index n i) func_names;
  (* round the requested initial hash-table capacity up to a power of
     two (the probe index masks with [ht_entries - 1]) *)
  let ht_entries0 =
    let rec up n = if n >= max 64 cfg.ht_entries_init then n else up (n * 2) in
    up 64
  in
  let st =
    {
      cfg;
      modul = m;
      mem;
      heap;
      cache;
      stats = mk_stats ();
      obs =
        Obs.create ~enabled:cfg.obs_enabled
          ~trace_depth:(if cfg.obs_enabled then cfg.trace_depth else 0) ();
      globals = Hashtbl.create 64;
      func_names;
      func_index;
      builtins = Hashtbl.create 64;
      sp = L.stack_top;
      frames = [];
      n_frames = 0;
      next_uid = 1;
      steps = 0;
      out = Buffer.create 4096;
      inputs = cfg.inputs;
      rand_state = 42;
      last_rets = [];
      jmp_bufs = Hashtbl.create 8;
      reg_pool = Array.make reg_pool_buckets [];
      ht_entries = ht_entries0;
      ht_live = 0;
      mc_site = Array.make mc_size (-1);
      mc_addr = Array.make mc_size 0;
      mc_disp = Array.make mc_size 0;
      mc_gen = Array.make mc_size 0;
    }
  in
  (* lay out globals: two passes (addresses first, then initializers,
     which may reference other globals' addresses) *)
  List.iter
    (fun (g : Ir.global) ->
      let addr = Mem.alloc_global mem ~size:g.Ir.gsize ~align:(max 1 g.Ir.galign) in
      Hashtbl.replace st.globals g.Ir.gname (addr, g.Ir.gsize))
    m.Ir.mglobals;
  List.iter
    (fun (g : Ir.global) ->
      let base, _ = Hashtbl.find st.globals g.Ir.gname in
      List.iter
        (fun (off, v) ->
          match v with
          | Ir.GInt (x, w) -> Mem.write_int mem (base + off) w x
          | Ir.GF32 f -> Mem.write_f32 mem (base + off) f
          | Ir.GF64 f -> Mem.write_f64 mem (base + off) f
          | Ir.GAddr (name, o) ->
              let a, _ = Hashtbl.find st.globals name in
              Mem.write_int mem (base + off) 8 (a + o)
          | Ir.GFuncAddr name -> (
              match Hashtbl.find_opt st.func_index name with
              | Some i -> Mem.write_int mem (base + off) 8 (L.func_addr i)
              | None -> ()))
        g.Ir.ginit)
    m.Ir.mglobals;
  (* checker sees the globals as objects *)
  List.iter
    (fun (g : Ir.global) ->
      let base, size = Hashtbl.find st.globals g.Ir.gname in
      checker_event st (Ev_alloc { base; size; kind = AGlobal }))
    m.Ir.mglobals;
  List.iter
    (fun (n, sg) -> Hashtbl.replace st.builtins n sg)
    Cminus.Builtins.functions;
  (* pre-decode every function now that globals and function indices are
     fixed *)
  let code = Hashtbl.create 64 in
  let resolved = Hashtbl.create 64 in
  Ir.iter_funcs m (fun f ->
      let pf = predecode_func st f in
      let fe =
        {
          fe_func = pf;
          fe_code = build_code pf;
          fe_params = Array.of_list (List.map fst pf.Ir.fparams);
        }
      in
      Hashtbl.replace code f.Ir.fname fe.fe_code;
      Hashtbl.replace resolved f.Ir.fname (RFunc fe));
  { st; code; resolved; sig_hashes = Hashtbl.create 64; reenter = None }

(* ------------------------------------------------------------------ *)
(* Operand evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let global_addr st name =
  match Hashtbl.find_opt st.globals name with
  | Some (a, _) -> a
  | None -> raise (Trap (Runtime_error ("unknown global " ^ name)))

let global_end st name =
  match Hashtbl.find_opt st.globals name with
  | Some (a, s) -> a + s
  | None -> raise (Trap (Runtime_error ("unknown global " ^ name)))

let func_addr_of st name =
  match Hashtbl.find_opt st.func_index name with
  | Some i -> L.func_addr i
  | None -> raise (Trap (Runtime_error ("unknown function " ^ name)))

let eval st fr (o : Ir.operand) : value =
  match o with
  | Ir.Reg r -> reg_value fr r
  | Ir.ImmI n -> VI n
  | Ir.ImmF f -> VF f
  | Ir.Glob g -> VI (global_addr st g)
  | Ir.GlobEnd g -> VI (global_end st g)
  | Ir.Func f -> VI (func_addr_of st f)

let eval_int st fr o =
  match o with
  | Ir.Reg r -> reg_int fr r
  | Ir.ImmI n -> n
  | o -> as_int (eval st fr o)

(* ------------------------------------------------------------------ *)
(* ALU                                                                  *)
(* ------------------------------------------------------------------ *)

(** Integer half of {!exec_bin}, unboxed: [t] must not be a float type.
    The threaded-code engine calls this directly for int-typed ALU ops
    with effect-free operands, avoiding the [value] boxing. *)
let exec_bin_int st (op : Ir.binop) (t : Ir.ity) (x : int) (y : int) : int =
  let signed = Ir.ity_signed t in
  let r =
    match op with
    | Ir.Add ->
        charge st Cost.basic;
        x + y
    | Ir.Sub ->
        charge st Cost.basic;
        x - y
    | Ir.Mul ->
        charge st Cost.mul;
        x * y
    | Ir.Div ->
        charge st Cost.div;
        if y = 0 then raise (Trap (Runtime_error "division by zero"));
        if signed then x / y
        else Ir.unsigned_view t x / Ir.unsigned_view t y
    | Ir.Rem ->
        charge st Cost.div;
        if y = 0 then raise (Trap (Runtime_error "modulo by zero"));
        if signed then x mod y
        else Ir.unsigned_view t x mod Ir.unsigned_view t y
    | Ir.And ->
        charge st Cost.basic;
        x land y
    | Ir.Or ->
        charge st Cost.basic;
        x lor y
    | Ir.Xor ->
        charge st Cost.basic;
        x lxor y
    | Ir.Shl ->
        charge st Cost.basic;
        x lsl (y land 63)
    | Ir.Shr ->
        charge st Cost.basic;
        if signed then x asr (y land 63)
        else Ir.unsigned_view t x lsr (y land 63)
  in
  Ir.norm_int t r

(** Float half of {!exec_bin}, unboxed. *)
let exec_bin_float st (op : Ir.binop) (x : float) (y : float) : float =
  match op with
  | Ir.Add ->
      charge st Cost.fbasic;
      x +. y
  | Ir.Sub ->
      charge st Cost.fbasic;
      x -. y
  | Ir.Mul ->
      charge st Cost.fbasic;
      x *. y
  | Ir.Div ->
      charge st Cost.fdiv;
      x /. y
  | _ -> raise (Trap (Runtime_error "float bitwise operation"))

let exec_bin st (op : Ir.binop) (t : Ir.ity) (a : value) (b : value) : value =
  if Ir.ity_is_float t then VF (exec_bin_float st op (as_float a) (as_float b))
  else VI (exec_bin_int st op t (as_int a) (as_int b))

(** Integer half of {!exec_cmp}, unboxed (returns 0 or 1): [t] must not
    be a float type. *)
let exec_cmp_int st (op : Ir.cmpop) (t : Ir.ity) (x : int) (y : int) : int =
  charge st Cost.basic;
  (* monomorphic compares: the polymorphic primitive is a C call per
     executed comparison *)
  let c =
    if Ir.ity_signed t then Int.compare x y
    else Int.compare (Ir.unsigned_view t x) (Ir.unsigned_view t y)
  in
  let r =
    match op with
    | Ir.Ceq -> c = 0
    | Ir.Cne -> c <> 0
    | Ir.Clt -> c < 0
    | Ir.Cle -> c <= 0
    | Ir.Cgt -> c > 0
    | Ir.Cge -> c >= 0
  in
  if r then 1 else 0

(** Float half of {!exec_cmp}, unboxed (returns 0 or 1). *)
let exec_cmp_float st (op : Ir.cmpop) (x : float) (y : float) : int =
  charge st Cost.basic;
  (* agrees with the int path's [Int.compare] shape on floats, NaN
     included *)
  let c = Float.compare x y in
  let r =
    match op with
    | Ir.Ceq -> c = 0
    | Ir.Cne -> c <> 0
    | Ir.Clt -> c < 0
    | Ir.Cle -> c <= 0
    | Ir.Cgt -> c > 0
    | Ir.Cge -> c >= 0
  in
  if r then 1 else 0

let exec_cmp st (op : Ir.cmpop) (t : Ir.ity) (a : value) (b : value) : value =
  if Ir.ity_is_float t then
    VI (exec_cmp_float st op (as_float a) (as_float b))
  else VI (exec_cmp_int st op t (as_int a) (as_int b))

let exec_cast st (to_ : Ir.ity) (from_ : Ir.ity) (v : value) : value =
  charge st Cost.basic;
  match (Ir.ity_is_float to_, Ir.ity_is_float from_) with
  | true, true ->
      let f = as_float v in
      (match to_ with
      | Ir.F32 -> VF (Int32.float_of_bits (Int32.bits_of_float f))
      | _ -> VF f)
  | true, false -> VF (float_of_int (as_int v))
  | false, true ->
      let f = as_float v in
      let i =
        if Float.is_nan f then 0
        else if f >= 4.611686018427388e18 then max_int
        else if f <= -4.611686018427388e18 then min_int
        else int_of_float f
      in
      VI (Ir.norm_int to_ i)
  | false, false -> VI (Ir.norm_int to_ (as_int v))

(* ------------------------------------------------------------------ *)
(* Memory access                                                        *)
(* ------------------------------------------------------------------ *)

let do_load st (t : Ir.ity) addr : value =
  let size = Ir.ity_size t in
  program_read st addr size;
  (match t with
  | Ir.P -> st.stats.ptr_mem_ops <- st.stats.ptr_mem_ops + 1
  | _ -> ());
  match t with
  | Ir.F64 -> VF (Mem.read_f64 st.mem addr)
  | Ir.F32 -> VF (Mem.read_f32 st.mem addr)
  | Ir.P -> VI (Mem.read_int st.mem addr 8)
  | t ->
      let raw = Mem.read_int st.mem addr (Ir.ity_size t) in
      VI
        (if Ir.ity_signed t then Mem.sign_extend raw (Ir.ity_size t) else raw)

(** [do_load] for a statically-known non-float [t]: same accounting and
    result bits, but returns the raw int so the threaded-code engine can
    store it without boxing. *)
let do_load_int st (t : Ir.ity) addr : int =
  let size = Ir.ity_size t in
  program_read st addr size;
  match t with
  | Ir.P ->
      st.stats.ptr_mem_ops <- st.stats.ptr_mem_ops + 1;
      Mem.read_int st.mem addr 8
  | t ->
      let raw = Mem.read_int st.mem addr (Ir.ity_size t) in
      if Ir.ity_signed t then Mem.sign_extend raw (Ir.ity_size t) else raw

(** [do_store] for a statically-known non-float [t], taking the raw
    int. *)
let do_store_int st (t : Ir.ity) addr (v : int) : unit =
  let size = Ir.ity_size t in
  program_write st addr size;
  (match t with
  | Ir.P -> st.stats.ptr_mem_ops <- st.stats.ptr_mem_ops + 1
  | _ -> ());
  Mem.write_int st.mem addr size v

(** [do_load] for a statically-known float [t], unboxed. *)
let do_load_float st (t : Ir.ity) addr : float =
  match t with
  | Ir.F64 ->
      program_read st addr 8;
      Mem.read_f64 st.mem addr
  | _ ->
      program_read st addr 4;
      Mem.read_f32 st.mem addr

(** [do_store] for a statically-known float [t], unboxed. *)
let do_store_float st (t : Ir.ity) addr (x : float) : unit =
  match t with
  | Ir.F64 ->
      program_write st addr 8;
      Mem.write_f64 st.mem addr x
  | _ ->
      program_write st addr 4;
      Mem.write_f32 st.mem addr x

let do_store st (t : Ir.ity) addr (v : value) : unit =
  match t with
  | Ir.F64 ->
      program_write st addr 8;
      Mem.write_f64 st.mem addr (as_float v)
  | Ir.F32 ->
      program_write st addr 4;
      Mem.write_f32 st.mem addr (as_float v)
  | t -> do_store_int st t addr (as_int v)

(* ------------------------------------------------------------------ *)
(* Frames                                                               *)
(* ------------------------------------------------------------------ *)

exception Program_exit of int

(** Assign returned values to the caller's receiving registers (extra
    values on either side are ignored, as before). *)
let assign_rets (fr : frame) (ret_regs : Ir.reg list) (out : value list) : unit =
  match (ret_regs, out) with
  | [], _ | _, [] -> ()
  | [ r ], v :: _ -> reg_set fr r v
  | rs, _ ->
      let rec go rs out =
        match (rs, out) with
        | r :: rs, v :: out ->
            reg_set fr r v;
            go rs out
        | _, _ -> ()
      in
      go rs out

let push_frame ld (fe : fentry) (args : value list) (ret_regs : Ir.reg list) =
  let st = ld.st in
  let f = fe.fe_func in
  st.stats.calls <- st.stats.calls + 1;
  charge st Cost.call;
  if st.n_frames > 100_000 then
    raise (Trap (Runtime_error "call stack overflow"));
  let fp = st.sp in
  let total = 16 + f.Ir.fframe_size in
  let new_sp = fp - total in
  (try Mem.set_stack_low st.mem new_sp
   with Mem.Segfault a -> raise (Trap (Segfault a)));
  let uid = st.next_uid in
  st.next_uid <- uid + 1;
  let token = ret_token_magic + uid in
  let saved_fp =
    match st.frames with [] -> L.stack_top | fr :: _ -> fr.fr_fp
  in
  (* the return token and saved frame pointer live in simulated memory,
     where an overflowing local buffer can reach them *)
  Mem.write_int st.mem (fp - 8) 8 token;
  Mem.write_int st.mem (fp - 16) 8 saved_fp;
  (* control-data traffic is charged (cache + ret/call cost) but not
     counted as program loads/stores: Figure 1's metric counts only the
     program's own memory operations *)
  cache_access st (fp - 8);
  cache_access st (fp - 16);
  let nregs = max 1 f.Ir.fnregs in
  let iregs, fregs, isf =
    if nregs < reg_pool_buckets then
      match st.reg_pool.(nregs) with
      | (ir, fg, sf) :: tl ->
          st.reg_pool.(nregs) <- tl;
          for i = 0 to nregs - 1 do
            Array.unsafe_set ir i 0
          done;
          Bytes.fill sf 0 nregs '\000';
          (ir, fg, sf)
      | [] -> (Array.make nregs 0, Array.make nregs 0.0, Bytes.make nregs '\000')
    else (Array.make nregs 0, Array.make nregs 0.0, Bytes.make nregs '\000')
  in
  let nparams = Array.length fe.fe_params in
  let nargs = List.length args in
  if nargs <> nparams then
    raise
      (Trap
         (Runtime_error
            (Printf.sprintf "%s: called with %d args, expects %d" f.Ir.fname
               nargs nparams)));
  let rec set_args i = function
    | [] -> ()
    | v :: tl ->
        let r = fe.fe_params.(i) in
        (match v with
        | VI n -> iregs.(r) <- n
        | VF x ->
            Bytes.set isf r '\001';
            fregs.(r) <- x);
        set_args (i + 1) tl
  in
  set_args 0 args;
  let fr =
    {
      fr_func = f;
      fr_code = fe.fe_code;
      fr_iregs = iregs;
      fr_fregs = fregs;
      fr_isf = isf;
      fr_block = 0;
      fr_inst = 0;
      fr_fp = fp;
      fr_uid = uid;
      fr_ret_regs = ret_regs;
      fr_expected_token = token;
      fr_expected_savedfp = saved_fp;
      fr_resume = No_resume;
    }
  in
  st.sp <- new_sp;
  st.frames <- fr :: st.frames;
  st.n_frames <- st.n_frames + 1;
  if st.n_frames > st.stats.max_frames then
    st.stats.max_frames <- st.n_frames;
  (* baseline checkers track each slot as an object *)
  if Option.is_some st.cfg.checker then
    Array.iter
      (fun sl ->
        checker_event st
          (Ev_alloc { base = slot_addr fr sl; size = sl.Ir.sl_size; kind = AStack }))
      f.Ir.fslots

let describe_code_value st v =
  if L.is_function_addr v then begin
    let idx = L.func_index v in
    if idx >= 0 && idx < Array.length st.func_names then
      Some st.func_names.(idx)
    else None
  end
  else None

let pop_frame ld (rets : value list) : unit =
  let st = ld.st in
  charge st Cost.ret;
  match st.frames with
  | [] -> raise (Trap (Runtime_error "return with no frame"))
  | fr :: rest ->
      (* control-data integrity: read the return token and saved frame
         pointer back from simulated memory *)
      let token = Mem.read_int st.mem (fr.fr_fp - 8) 8 in
      let savedfp = Mem.read_int st.mem (fr.fr_fp - 16) 8 in
      cache_access st (fr.fr_fp - 8);
      cache_access st (fr.fr_fp - 16);
      if token <> fr.fr_expected_token then begin
        match describe_code_value st token with
        | Some f ->
            raise
              (Trap
                 (Hijack
                    (Printf.sprintf
                       "return address overwritten; control transfers to %s"
                       f)))
        | None ->
            raise
              (Trap
                 (Hijack
                    (Printf.sprintf "return address corrupted (0x%x)" token)))
      end;
      if savedfp <> fr.fr_expected_savedfp then
        raise
          (Trap
             (Hijack
                (Printf.sprintf "saved frame pointer corrupted (0x%x)" savedfp)));
      if Option.is_some st.cfg.checker then
        Array.iter
          (fun sl ->
            checker_event st
              (Ev_free
                 { base = slot_addr fr sl; size = sl.Ir.sl_size; kind = AStack }))
          fr.fr_func.Ir.fslots;
      (* drop this frame's setjmp contexts (collect first, then remove:
         no mutation under iteration, and no per-return table copy) *)
      if Hashtbl.length st.jmp_bufs > 0 then begin
        let dead =
          Hashtbl.fold
            (fun uid ((f : frame), _, _, _) acc ->
              if f.fr_uid = fr.fr_uid then uid :: acc else acc)
            st.jmp_bufs []
        in
        List.iter (fun uid -> Hashtbl.remove st.jmp_bufs uid) dead
      end;
      st.sp <- fr.fr_fp;
      st.frames <- rest;
      st.n_frames <- st.n_frames - 1;
      st.last_rets <- rets;
      (* the frame is now unreachable (its setjmp contexts are gone):
         recycle its register file *)
      (let nregs = Array.length fr.fr_iregs in
       if nregs < reg_pool_buckets then
         st.reg_pool.(nregs) <-
           (fr.fr_iregs, fr.fr_fregs, fr.fr_isf) :: st.reg_pool.(nregs));
      (match rest with
      | [] ->
          let code = match rets with VI v :: _ -> v | _ -> 0 in
          raise (Program_exit code)
      | caller :: _ -> assign_rets caller fr.fr_ret_regs rets)

(* ------------------------------------------------------------------ *)
(* setjmp / longjmp                                                     *)
(* ------------------------------------------------------------------ *)

let exec_setjmp ld ~checked (args : value list) (ret_regs : Ir.reg list) =
  let st = ld.st in
  let fr = List.hd st.frames in
  let buf, meta =
    match args with
    | VI b :: rest -> (b, rest)
    | _ -> raise (Trap (Runtime_error "setjmp: bad arguments"))
  in
  (if checked then
     match meta with
     | [ VI b; VI e ] ->
         sb_check st ~where:"setjmp" ~ptr:buf ~base:b ~bound:e ~size:64
     | _ -> raise (Trap (Runtime_error "setjmp: missing metadata")));
  let uid = st.next_uid in
  st.next_uid <- uid + 1;
  let ret_reg =
    match ret_regs with r :: _ -> r | [] -> -1
  in
  (* resume point: the PC was pre-incremented, so it already denotes the
     instruction after this setjmp call *)
  Hashtbl.replace st.jmp_bufs uid (fr, fr.fr_block, fr.fr_inst, ret_reg);
  let token = jmp_token_magic + uid in
  let pc = func_addr_of st fr.fr_func.Ir.fname in
  program_write st buf 8;
  Mem.write_int st.mem buf 8 token;
  program_write st (buf + 8) 8;
  Mem.write_int st.mem (buf + 8) 8 pc;
  program_write st (buf + 16) 8;
  Mem.write_int st.mem (buf + 16) 8 fr.fr_fp;
  if ret_reg >= 0 then reg_set_int fr ret_reg 0

let exec_longjmp ld ~checked (args : value list) =
  let st = ld.st in
  let buf, v, meta =
    match args with
    | VI b :: v :: rest -> (b, as_int v, rest)
    | _ -> raise (Trap (Runtime_error "longjmp: bad arguments"))
  in
  (if checked then
     match meta with
     | [ VI b; VI e ] ->
         sb_check st ~where:"longjmp" ~ptr:buf ~base:b ~bound:e ~size:64
     | _ -> raise (Trap (Runtime_error "longjmp: missing metadata")));
  program_read st buf 8;
  let token = Mem.read_int st.mem buf 8 in
  program_read st (buf + 8) 8;
  let pc = Mem.read_int st.mem (buf + 8) 8 in
  let hijack_diagnosis () =
    match (describe_code_value st pc, describe_code_value st token) with
    | Some f, _ | _, Some f ->
        raise
          (Trap
             (Hijack
                (Printf.sprintf
                   "longjmp buffer overwritten; control transfers to %s" f)))
    | None, None ->
        raise
          (Trap (Hijack (Printf.sprintf "longjmp buffer corrupted (0x%x)" token)))
  in
  let uid = token - jmp_token_magic in
  match Hashtbl.find_opt st.jmp_bufs uid with
  | None -> hijack_diagnosis ()
  | Some (target, blk, inst, ret_reg) ->
      (* the stored pc must still denote the frame's own function *)
      if pc <> func_addr_of st target.fr_func.Ir.fname then hijack_diagnosis ();
      (* the target frame must still be live *)
      if not (List.exists (fun f -> f.fr_uid = target.fr_uid) st.frames) then
        hijack_diagnosis ();
      (* unwind *)
      let rec unwind () =
        match st.frames with
        | fr :: rest when fr.fr_uid <> target.fr_uid ->
            if Option.is_some st.cfg.checker then
              Array.iter
                (fun sl ->
                  checker_event st
                    (Ev_free
                       {
                         base = slot_addr fr sl;
                         size = sl.Ir.sl_size;
                         kind = AStack;
                       }))
                fr.fr_func.Ir.fslots;
            (* the transform clears pointer-slot metadata before each
               return (section 5.2), but longjmp skips those returns —
               clear here, or frames reusing this stack space observe
               stale bounds.  Probe first so untouched slots don't
               materialize metadata pages. *)
            if checked && st.cfg.meta <> None then
              Array.iter
                (fun sl ->
                  List.iter
                    (fun off ->
                      let a = slot_addr fr sl + off in
                      let b, e = meta_load st a in
                      if b <> 0 || e <> 0 then meta_store st a 0 0)
                    sl.Ir.sl_ptr_offsets)
                fr.fr_func.Ir.fslots;
            st.frames <- rest;
            st.n_frames <- st.n_frames - 1;
            unwind ()
        | _ -> ()
      in
      unwind ();
      st.sp <- target.fr_fp - 16 - target.fr_func.Ir.fframe_size;
      target.fr_block <- blk;
      target.fr_inst <- inst;
      if ret_reg >= 0 then
        reg_set_int target ret_reg (if v = 0 then 1 else v)

(* ------------------------------------------------------------------ *)
(* Calls                                                                *)
(* ------------------------------------------------------------------ *)

(* forward reference, tied after the step loop is defined: builtins like
   qsort call back into interpreted code *)
let call_function_fwd :
    (loaded -> fentry -> value list -> value list) ref =
  ref (fun _ _ _ -> failwith "call_function not initialized")

(** qsort/bsearch: the comparator is a function pointer into interpreted
    code, invoked re-entrantly for every comparison.  Under SoftBound the
    wrapper checks the array extent and the function pointer, and hands
    the comparator per-element bounds. *)
let exec_sortsearch ld ~checked ~is_bsearch (argvals : value list)
    (rets : Ir.reg list) : unit =
  let st = ld.st in
  charge st Cost.libc_call;
  let argarr = Array.of_list argvals in
  let ai i = as_int argarr.(i) in
  let key, base, n, size, cmp, key_meta, base_meta, cmp_meta =
    if is_bsearch then
      ( ai 0, ai 1, ai 2, ai 3, ai 4,
        (if checked then (ai 5, ai 6) else (0, 0)),
        (if checked then (ai 7, ai 8) else (0, 0)),
        if checked then (ai 9, ai 10) else (0, 0) )
    else
      ( 0, ai 0, ai 1, ai 2, ai 3, (0, 0),
        (if checked then (ai 4, ai 5) else (0, 0)),
        if checked then (ai 6, ai 7) else (0, 0) )
  in
  if size < 0 || n < 0 then
    raise (Trap (Runtime_error "qsort/bsearch: bad element size or count"));
  if checked then begin
    (* whole-extent check, like the memcpy wrapper (section 5.2) *)
    if n > 0 && size > 0 then
      sb_check st
        ~where:(if is_bsearch then "_sb_bsearch" else "_sb_qsort")
        ~ptr:base ~base:(fst base_meta) ~bound:(snd base_meta)
        ~size:(n * size);
    if is_bsearch then
      sb_check st ~where:"_sb_bsearch" ~ptr:key ~base:(fst key_meta)
        ~bound:(snd key_meta) ~size;
    (* function-pointer encoding check *)
    if not (fst cmp_meta = cmp && snd cmp_meta = cmp && L.is_function_addr cmp)
    then
      raise
        (Trap
           (Bounds_violation
              { addr = cmp; base = fst cmp_meta; bound = snd cmp_meta;
                size = 0; where = "qsort/bsearch (function pointer check)" }))
  end;
  let cmp_name =
    match describe_code_value st cmp with
    | Some name -> name
    | None ->
        raise
          (Trap
             (Runtime_error "qsort/bsearch: comparator is not a function"))
  in
  (* resolve the comparator once; _sb_-convention targets (transformed
     module functions and wrapper builtins alike) receive per-element
     bounds after the two element pointers *)
  let cmp_func =
    match Hashtbl.find_opt ld.resolved cmp_name with
    | Some (RFunc fe) -> Some fe
    | _ -> None
  in
  let wants_meta =
    match cmp_func with
    | Some fe -> Array.length fe.fe_params = 6
    | None -> String.length cmp_name > 4 && String.sub cmp_name 0 4 = "_sb_"
  in
  let qsort_depth = st.n_frames in
  (* snapshot the caller's identity and program point: a longjmp out of
     the comparator either pops frames below us or redirects the caller *)
  let caller_snapshot () =
    match st.frames with
    | fr :: _ -> (fr.fr_uid, fr.fr_block, fr.fr_inst)
    | [] -> (-1, -1, -1)
  in
  let snap0 = caller_snapshot () in
  let invoke a b =
    let args =
      if wants_meta then
        [ VI a; VI b; VI a; VI (a + size); VI b; VI (b + size) ]
      else [ VI a; VI b ]
    in
    let out =
      match cmp_func with
      | Some fe -> (
          match ld.reenter with
          | Some f -> f ld fe args
          | None -> !call_function_fwd ld fe args)
      | None -> Builtins.dispatch st ~name:cmp_name ~args
    in
    (* a longjmp out of the comparator would leave this sort running
       against an unwound (or redirected) stack; C calls that undefined,
       the VM makes it a clean trap *)
    if st.n_frames < qsort_depth || caller_snapshot () <> snap0 then
      raise
        (Trap (Runtime_error "longjmp out of a qsort/bsearch comparator"));
    match out with VI r :: _ -> r | _ -> 0
  in
  let elem i = base + (i * size) in
  if n = 0 || size = 0 then begin
    (* degenerate calls are no-ops (bsearch finds nothing) *)
    if is_bsearch then begin
      let out = if checked then [ VI 0; VI 0; VI 0 ] else [ VI 0 ] in
      assign_rets (List.hd st.frames) rets out
    end
  end
  else if is_bsearch then begin
    let lo = ref 0 and hi = ref (n - 1) and found = ref 0 in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = invoke key (elem mid) in
      if c = 0 then begin
        found := elem mid;
        lo := !hi + 1
      end
      else if c < 0 then hi := mid - 1
      else lo := mid + 1
    done;
    let out =
      if checked then
        [ VI !found;
          VI (if !found = 0 then 0 else fst base_meta);
          VI (if !found = 0 then 0 else snd base_meta) ]
      else [ VI !found ]
    in
    assign_rets (List.hd st.frames) rets out
  end
  else begin
    (* in-place quicksort over simulated memory; element swaps are real
       byte traffic *)
    let tmp = Bytes.create size in
    let swap i j =
      if i <> j then begin
        Builtins.range_access st (elem i) size ~is_store:true;
        Builtins.range_access st (elem j) size ~is_store:true;
        for k = 0 to size - 1 do
          Bytes.set tmp k (Char.chr (Mem.read_byte st.mem (elem i + k)))
        done;
        Mem.blit st.mem ~src:(elem j) ~dst:(elem i) ~len:size;
        for k = 0 to size - 1 do
          Mem.write_byte st.mem (elem j + k) (Char.code (Bytes.get tmp k))
        done;
        (* moving the bytes must move the metadata too, or sorting an
           array of pointers leaves stale bounds behind (the memcpy
           wrapper has the same obligation, section 5.2) *)
        if checked then
          for k = 0 to (size / 8) - 1 do
            let a = elem i + (8 * k) and b = elem j + (8 * k) in
            let ab, ae = meta_load st a in
            let bb, be = meta_load st b in
            meta_store st a bb be;
            meta_store st b ab ae
          done;
        charge st (Cost.bulk_cost (3 * size))
      end
    in
    let rec sort lo hi =
      if lo < hi then begin
        (* middle pivot, moved to the end *)
        swap ((lo + hi) / 2) hi;
        let p = ref lo in
        for i = lo to hi - 1 do
          if invoke (elem i) (elem hi) < 0 then begin
            swap i !p;
            incr p
          end
        done;
        swap !p hi;
        sort lo (!p - 1);
        sort (!p + 1) hi
      end
    in
    sort 0 (n - 1)
  end

let rec exec_call ld (fr : frame) ~rets ~callee ~args : unit =
  let st = ld.st in
  let argvals = List.map (eval st fr) args in
  match callee with
  | Ir.Func name -> dispatch_call ld ~name ~argvals ~rets
  | op -> (
      let v = eval_int st fr op in
      match describe_code_value st v with
      | Some name -> dispatch_call ld ~name ~argvals ~rets
      | None ->
          raise
            (Trap
               (Runtime_error
                  (Printf.sprintf "indirect call to non-function address 0x%x"
                     v))))

and resolve ld name : resolution =
  match Hashtbl.find_opt ld.resolved name with
  | Some r -> r
  | None ->
      (* module functions were installed at load, so this name is a
         builtin, a special, or undefined; classify once and memoize *)
      let checked = String.length name > 4 && String.sub name 0 4 = "_sb_" in
      let base =
        if checked then String.sub name 4 (String.length name - 4) else name
      in
      let r =
        match base with
        | "setjmp" -> RSetjmp checked
        | "longjmp" -> RLongjmp checked
        | "qsort" -> RQsort checked
        | "bsearch" -> RBsearch checked
        | _ ->
            if Builtins.is_builtin_name name then RBuiltin checked
            else RUndefined checked
      in
      Hashtbl.replace ld.resolved name r;
      r

and dispatch_call ld ~name ~argvals ~rets : unit =
  dispatch_resolved ld ~name ~argvals ~rets (resolve ld name)

(** Dispatch a call whose target classification is already in hand — the
    threaded-code compiler resolves direct callees once at compile time
    and jumps straight here from the call closure. *)
and dispatch_resolved ld ~name ~argvals ~rets (r : resolution) : unit =
  let st = ld.st in
  match r with
  | RFunc fe ->
      (* the caller's saved position already points past the call *)
      push_frame ld fe argvals rets
  | special ->
      let checked =
        match special with
        | RSetjmp c | RLongjmp c | RQsort c | RBsearch c | RBuiltin c
        | RUndefined c ->
            c
        | RFunc _ -> false
      in
      let go () =
        match special with
        | RSetjmp _ -> exec_setjmp ld ~checked argvals rets
        | RLongjmp _ -> exec_longjmp ld ~checked argvals
        | RQsort _ -> exec_sortsearch ld ~checked ~is_bsearch:false argvals rets
        | RBsearch _ ->
            exec_sortsearch ld ~checked ~is_bsearch:true argvals rets
        | RBuiltin _ ->
            let out =
              try Builtins.dispatch st ~name ~args:argvals
              with Builtins.Exit_program n -> raise (Program_exit n)
            in
            assign_rets (List.hd st.frames) rets out
        | RFunc _ | RUndefined _ ->
            raise (Trap (Runtime_error ("call to undefined function " ^ name)))
      in
      if checked && st.cfg.obs_enabled then begin
        (* attribute the wrapper's whole cycle delta (including its
           internal site-0 metadata traffic) to the wrapper by name; the
           context makes site-0 operations "wrapper-attributed" rather
           than unattributable *)
        let prev = Obs.set_wrapper st.obs (Some name) in
        let cy0 = st.stats.cycles in
        Fun.protect
          ~finally:(fun () ->
            Obs.restore_wrapper st.obs prev;
            Obs.record_wrapper st.obs name ~cycles:(st.stats.cycles - cy0);
            if Obs.trace_on st.obs then
              Obs.trace_event st.obs (Obs.E_wrapper { name }))
          go
      end
      else go ()

(* ------------------------------------------------------------------ *)
(* The step loop                                                        *)
(* ------------------------------------------------------------------ *)

(** Signature hash of a callable, for the dynamic function-pointer
    signature check.  Module functions hash their (transformed) parameter
    and return kinds; builtin wrappers hash the extended wrapper
    signature derived from the C prototype. *)
let callee_sig_hash_uncached ld (name : string) : int option =
  let st = ld.st in
  match Hashtbl.find_opt ld.resolved name with
  | Some (RFunc fe) ->
      let f = fe.fe_func in
      Some
        (Ir.sig_hash
           {
             Ir.cargs = List.map snd f.Ir.fparams;
             crets = f.Ir.frets;
             cvariadic = f.Ir.fvariadic;
           })
  | _ ->
      let checked = String.length name > 4 && String.sub name 0 4 = "_sb_" in
      let base =
        if checked then String.sub name 4 (String.length name - 4) else name
      in
      let base =
        match base with
        | "free_withmeta" -> "free"
        | "memcpy_nometa" -> "memcpy"
        | "memmove_nometa" -> "memmove"
        | b -> b
      in
      (match Hashtbl.find_opt st.builtins base with
      | None -> None
      | Some sg ->
          let dummy = Cminus.Ctypes.create_env () in
          let ity_of t =
            match Cminus.Ctypes.resolve dummy t with
            | Cminus.Ctypes.Tptr _ | Cminus.Ctypes.Tarray _
            | Cminus.Ctypes.Tfunc _ ->
                Ir.P
            | Cminus.Ctypes.Tfloat Cminus.Ctypes.FFloat -> Ir.F32
            | Cminus.Ctypes.Tfloat Cminus.Ctypes.FDouble -> Ir.F64
            | _ -> Ir.I64
          in
          let cargs = List.map ity_of sg.Cminus.Ctypes.params in
          let cargs =
            if sg.Cminus.Ctypes.variadic then cargs @ [ Ir.P; Ir.I64 ]
            else cargs
          in
          let cargs =
            if checked then
              cargs
              @ List.concat_map
                  (fun t -> if t = Ir.P then [ Ir.P; Ir.P ] else [])
                  cargs
            else cargs
          in
          let crets =
            match Cminus.Ctypes.resolve dummy sg.Cminus.Ctypes.ret with
            | Cminus.Ctypes.Tvoid -> []
            | t -> (
                match ity_of t with
                | Ir.P when checked -> [ Ir.P; Ir.P; Ir.P ]
                | t -> [ t ])
          in
          Some
            (Ir.sig_hash
               { Ir.cargs; crets; cvariadic = sg.Cminus.Ctypes.variadic }))

let callee_sig_hash ld (name : string) : int option =
  match Hashtbl.find_opt ld.sig_hashes name with
  | Some h -> h
  | None ->
      let h = callee_sig_hash_uncached ld name in
      Hashtbl.replace ld.sig_hashes name h;
      h

(** The [CheckFptr] dynamic check after operand evaluation, shared by
    both engines: function-pointer encoding check plus the optional
    signature-hash comparison.  [cy0] is the cycle count before the
    already-charged [Cost.check], for obs attribution. *)
let check_fptr ld ~fname ~site ~expected_sig ~cy0 pv bv ev : unit =
  let st = ld.st in
  let ok_addr = pv = bv && pv = ev && L.is_function_addr pv in
  (* the signature check only runs once the address check passed *)
  let sig_mismatch =
    if not ok_addr then None
    else
      match expected_sig with
      | None -> None
      | Some h -> (
          charge st Cost.check;
          match describe_code_value st pv with
          | Some name -> (
              match callee_sig_hash ld name with
              | Some h' when h' <> h -> Some name
              | _ -> None)
          | None -> None)
  in
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KCheckFptr ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs
        (Obs.E_fptr_check { site; addr = pv; ok = ok_addr && sig_mismatch = None })
  end;
  if not ok_addr then
    raise
      (Trap
         (Bounds_violation
            {
              addr = pv;
              base = bv;
              bound = ev;
              size = 0;
              where = fname ^ " (function pointer check)";
            }));
  match sig_mismatch with
  | None -> ()
  | Some name ->
      raise
        (Trap
           (Bounds_violation
              {
                addr = pv;
                base = bv;
                bound = ev;
                size = 0;
                where =
                  fname ^ " (function pointer signature mismatch: " ^ name
                  ^ ")";
              }))

let exec_inst ld (fr : frame) (inst : Ir.inst) : unit =
  let st = ld.st in
  match inst with
  | Ir.Mov (r, _, o) ->
      charge st Cost.basic;
      reg_set fr r (eval st fr o)
  | Ir.Bin (r, op, t, a, b) ->
      reg_set fr r (exec_bin st op t (eval st fr a) (eval st fr b))
  | Ir.Cmp (r, op, t, a, b) ->
      reg_set fr r (exec_cmp st op t (eval st fr a) (eval st fr b))
  | Ir.Cast (r, to_, from_, o) ->
      reg_set fr r (exec_cast st to_ from_ (eval st fr o))
  | Ir.Load (r, t, a) -> reg_set fr r (do_load st t (eval_int st fr a))
  | Ir.Store (t, a, v) -> do_store st t (eval_int st fr a) (eval st fr v)
  | Ir.Gep (r, base, off, _) ->
      charge st Cost.basic;
      let b = eval_int st fr base in
      let d = b + eval_int st fr off in
      (match st.cfg.checker with
      | Some _ -> checker_event st (Ev_ptr_arith { src = b; dst = d })
      | None -> ());
      reg_set_int fr r d
  | Ir.Slotaddr (r, s) ->
      charge st Cost.alloca;
      reg_set_int fr r (slot_addr fr fr.fr_func.Ir.fslots.(s))
  | Ir.Call { rets; callee; args; _ } ->
      (* the step loop advances the PC before executing, so the caller's
         stored position already points past this call *)
      exec_call ld fr ~rets ~callee ~args
  | Ir.SetBoundMark _ -> ()
  | Ir.Check (p, b, e, size, site) ->
      sb_check st ~site ~where:fr.fr_func.Ir.fname ~ptr:(eval_int st fr p)
        ~base:(eval_int st fr b) ~bound:(eval_int st fr e) ~size
  | Ir.CheckFptr (p, b, e, expected_sig, site) ->
      st.stats.checks <- st.stats.checks + 1;
      let cy0 = st.stats.cycles in
      charge st Cost.check;
      let pv = eval_int st fr p in
      let bv = eval_int st fr b in
      let ev = eval_int st fr e in
      check_fptr ld ~fname:fr.fr_func.Ir.fname ~site ~expected_sig ~cy0 pv bv
        ev
  | Ir.MetaLoad (rb, re, a, site) ->
      let b, e = meta_load st ~site (eval_int st fr a) in
      reg_set_int fr rb b;
      reg_set_int fr re e
  | Ir.MetaStore (a, b, e, site) ->
      meta_store st ~site (eval_int st fr a) (eval_int st fr b)
        (eval_int st fr e)
  | Ir.CheckSpan sp ->
      sb_check_span st ~site:sp.Ir.sp_site ~sites:sp.Ir.sp_sites
        ~where:fr.fr_func.Ir.fname
        ~first:(eval_int st fr sp.Ir.sp_first)
        ~count:(eval_int st fr sp.Ir.sp_count)
        ~stride:sp.Ir.sp_stride ~width:sp.Ir.sp_width
        ~base:(eval_int st fr sp.Ir.sp_base)
        ~bound:(eval_int st fr sp.Ir.sp_bound)

let exec_term ld (fr : frame) (term : Ir.terminator) : unit =
  let st = ld.st in
  match term with
  | Ir.TRet ops ->
      let vals = List.map (eval st fr) ops in
      pop_frame ld vals
  | Ir.TJmp t ->
      charge st Cost.basic;
      fr.fr_block <- t;
      fr.fr_inst <- 0
  | Ir.TBr (c, t1, t2) ->
      charge st Cost.basic;
      fr.fr_block <- (if eval_int st fr c <> 0 then t1 else t2);
      fr.fr_inst <- 0
  | Ir.TSwitch (v, cases, default) ->
      charge st (Cost.basic * 2);
      let x = eval_int st fr v in
      (* monomorphic scan — [List.assoc_opt] is a polymorphic-compare C
         call per executed case *)
      let rec find = function
        | [] -> default
        | (k, t) :: tl -> if (k : int) = x then t else find tl
      in
      fr.fr_block <- find cases;
      fr.fr_inst <- 0
  | Ir.TUnreachable ->
      raise (Trap (Runtime_error "unreachable executed (missing return?)"))

(** Execute one instruction (or terminator) of the top frame; [false]
    when no frames remain. *)
let step_once ld : bool =
  let st = ld.st in
  match st.frames with
  | [] -> false
  | fr :: _ ->
      st.steps <- st.steps + 1;
      if st.steps > st.cfg.max_steps then raise (Trap Step_limit);
      (match st.cfg.poll with
      | Some p when st.steps land poll_mask = 0 -> p ()
      | _ -> ());
      st.stats.insts <- st.stats.insts + 1;
      let insts = fr.fr_code.(fr.fr_block) in
      if fr.fr_inst < Array.length insts then begin
        (* pre-increment the PC, like real hardware: calls and longjmp
           then resume at the right place with no special-casing *)
        let i = insts.(fr.fr_inst) in
        fr.fr_inst <- fr.fr_inst + 1;
        exec_inst ld fr i
      end
      else exec_term ld fr fr.fr_func.Ir.fblocks.(fr.fr_block).Ir.term;
      true

(** Main execution loop.  Equivalent to [while step_once ld do () done]
    but with the top frame's instruction array hoisted: the inner loop
    runs the current basic block straight-line and drops back to the
    dispatcher on any control transfer (a call pushes a frame, a
    terminator rewrites [fr_block], a return pops), so the hoisted
    [insts]/[n] can never go stale.  Step accounting is performed by the
    same counters in the same order as {!step_once}. *)
let run_until_done ld : int =
  let st = ld.st in
  let max_steps = st.cfg.max_steps in
  let poll = st.cfg.poll in
  try
    let live = ref true in
    while !live do
      match st.frames with
      | [] -> live := false
      | fr :: _ ->
          let insts = Array.unsafe_get fr.fr_code fr.fr_block in
          let n = Array.length insts in
          let straight = ref true in
          while !straight do
            st.steps <- st.steps + 1;
            if st.steps > max_steps then raise (Trap Step_limit);
            (match poll with
            | Some p when st.steps land poll_mask = 0 -> p ()
            | _ -> ());
            st.stats.insts <- st.stats.insts + 1;
            let k = fr.fr_inst in
            if k < n then begin
              let i = Array.unsafe_get insts k in
              fr.fr_inst <- k + 1;
              (match i with Ir.Call _ -> straight := false | _ -> ());
              exec_inst ld fr i
            end
            else begin
              straight := false;
              exec_term ld fr
                (Array.unsafe_get fr.fr_func.Ir.fblocks fr.fr_block).Ir.term
            end
          done
    done;
    0
  with Program_exit n -> n

(** Re-entrant call from inside a builtin (e.g. a qsort comparator):
    push a frame for [f] and run until it returns, yielding its return
    values.  Traps and [Program_exit] propagate. *)
let call_function ld (fe : fentry) (args : value list) : value list =
  let st = ld.st in
  let depth = st.n_frames in
  push_frame ld fe args [];
  while st.n_frames > depth && step_once ld do
    ()
  done;
  st.last_rets

let () = call_function_fwd := call_function

(** Boundary call into a loaded module whose [main] already finished
    (the adversarial harness's calls into exported protected
    functions): like {!call_function}, except a return that empties the
    frame stack is an ordinary return, not program exit. *)
let call_boundary ld (fe : fentry) (args : value list) : value list =
  try call_function ld fe args with Program_exit _ -> ld.st.last_rets

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

(** Set up argv strings in the heap; returns (argc, argv, argv_bounds). *)
let setup_argv ld (argv : string list) : int * int * (int * int) =
  let st = ld.st in
  let n = List.length argv in
  let arr =
    match Machine.Heap.malloc st.heap (8 * max 1 n) with
    | Some a -> a
    | None -> raise (Trap Out_of_memory)
  in
  checker_event st (Ev_alloc { base = arr; size = 8 * max 1 n; kind = AHeap });
  List.iteri
    (fun i s ->
      let p =
        match Machine.Heap.malloc st.heap (String.length s + 1) with
        | Some p -> p
        | None -> raise (Trap Out_of_memory)
      in
      checker_event st
        (Ev_alloc { base = p; size = String.length s + 1; kind = AHeap });
      Mem.write_cstring st.mem p s;
      Mem.write_int st.mem (arr + (8 * i)) 8 p;
      (* transformed programs find argv[i] metadata in the table *)
      if st.cfg.meta <> None then
        meta_store st (arr + (8 * i)) p (p + String.length s + 1))
    argv;
  (n, arr, (arr, arr + (8 * n)))

type result = {
  outcome : outcome;
  stdout_text : string;
  stats : stats;
  cache_hits : int;
  cache_misses : int;
  resident_bytes : int;
  heap_peak : int;
  heap_live : int;
      (** bytes still allocated at exit — instrumentation must not
          change the program's allocation behavior, so differential
          runs compare this across configurations *)
  heap_allocs : int;
      (** lifetime heap allocation count — the per-object term of the
          related-work schemes' analytic metadata-footprint models *)
  obs : Obs.t;
      (** per-site observability counters and (optionally) the event
          ring; a disabled collector when the run had [obs_enabled]
          off *)
}

let finish ld outcome : result =
  let st = ld.st in
  (match outcome with
  | Trapped t when Obs.trace_on st.obs ->
      Obs.trace_event st.obs (Obs.E_trap { detail = string_of_trap t })
  | _ -> ());
  {
    outcome;
    stdout_text = Buffer.contents st.out;
    stats = st.stats;
    cache_hits = Machine.Cache.hits st.cache;
    cache_misses = Machine.Cache.misses st.cache;
    resident_bytes = Mem.resident_bytes st.mem;
    heap_peak = Machine.Heap.peak_bytes st.heap;
    heap_live = Machine.Heap.live_bytes st.heap;
    heap_allocs = Machine.Heap.total_allocs st.heap;
    obs = st.obs;
  }

(** Run the loaded module's global initializer and [main], returning the
    outcome.  Unlike {!run} this leaves the state open afterwards: the
    adversarial harness keeps driving boundary calls ({!call_function},
    builtin dispatches) against the very same [loaded] value. *)
let run_main ?(exec = run_until_done) ld : outcome =
  try
    (* transformed modules carry a synthetic global-metadata initializer *)
    (match Hashtbl.find_opt ld.resolved "__sb_global_init" with
    | Some (RFunc fe) ->
        push_frame ld fe [] [];
        ignore (exec ld)
    | _ -> ());
    let module_func name =
      match Hashtbl.find_opt ld.resolved name with
      | Some (RFunc fe) -> Some fe
      | _ -> None
    in
    let main =
      match module_func "_sb_main" with
      | Some fe -> fe
      | None -> (
          match module_func "main" with
          | Some fe -> fe
          | None -> raise (Trap (Runtime_error "no main function")))
    in
    let nparams = Array.length main.fe_params in
    let args =
      if nparams = 0 then []
      else begin
        let argc, argv, (ab, ae) =
          setup_argv ld ("prog" :: ld.st.cfg.argv)
        in
        if nparams >= 4 then
          (* transformed main: (argc, argv, argv_base, argv_bound) *)
          [ VI argc; VI argv; VI ab; VI ae ]
        else [ VI argc; VI argv ]
      end
    in
    push_frame ld main args [];
    let code = exec ld in
    Exit code
  with
  | Trap t -> Trapped t
  | Mem.Segfault a -> Trapped (Segfault a)
  | Program_exit n -> Exit n

(** Load and run a module to completion. *)
let run ?(cfg = default_config) (m : Ir.modul) : result =
  let ld = create ~cfg m in
  finish ld (run_main ld)
