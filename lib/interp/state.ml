(* Interpreter state: registers, frames in simulated memory, accounting,
   metadata facilities, and the checker-plugin interface used by the
   baseline tools (Jones–Kelly, Memcheck-style, Mudflap-style). *)

module Ir = Sbir.Ir
module L = Machine.Layout
module Mem = Machine.Memory
module Cost = Machine.Cost

type value = VI of int | VF of float

let as_int = function VI v -> v | VF f -> int_of_float f
let as_float = function VF f -> f | VI v -> float_of_int v

(* ------------------------------------------------------------------ *)
(* Traps and outcomes                                                   *)
(* ------------------------------------------------------------------ *)

type trap =
  | Bounds_violation of {
      addr : int;
      base : int;
      bound : int;
      size : int;
      where : string;
    }  (** raised by SoftBound's [Check]/wrappers: the enforced abort *)
  | Object_violation of { tool : string; addr : int; detail : string }
      (** raised by a baseline checker plugin *)
  | Hijack of string
      (** control flow was diverted by corrupted control data — i.e., an
          attack *succeeded* (Table 3's unprotected runs) *)
  | Segfault of int
  | Bad_free of int
  | Out_of_memory
  | Step_limit
  | Runtime_error of string

exception Trap of trap

type outcome = Exit of int | Trapped of trap

let string_of_trap = function
  | Bounds_violation { addr; base; bound; size; where } ->
      Printf.sprintf
        "SoftBound: bounds violation at %s: ptr=0x%x size=%d not within [0x%x, 0x%x)"
        where addr size base bound
  | Object_violation { tool; addr; detail } ->
      Printf.sprintf "%s: invalid access at 0x%x (%s)" tool addr detail
  | Hijack s -> "CONTROL-FLOW HIJACKED: " ^ s
  | Segfault a -> Printf.sprintf "segmentation fault at 0x%x" a
  | Bad_free a -> Printf.sprintf "invalid free of 0x%x" a
  | Out_of_memory -> "out of memory"
  | Step_limit -> "step limit exceeded"
  | Runtime_error s -> "runtime error: " ^ s

let string_of_outcome = function
  | Exit n -> Printf.sprintf "exit %d" n
  | Trapped t -> string_of_trap t

(* ------------------------------------------------------------------ *)
(* Checker plugins (baseline tools)                                     *)
(* ------------------------------------------------------------------ *)

type alloc_kind = AHeap | AStack | AGlobal

type event =
  | Ev_alloc of { base : int; size : int; kind : alloc_kind }
  | Ev_free of { base : int; size : int; kind : alloc_kind }
  | Ev_access of { addr : int; size : int; is_store : bool }
  | Ev_ptr_arith of { src : int; dst : int }

(** A baseline checker observes events.  [ck_handle] returns the cycle
    cost of the tool's bookkeeping for this event (e.g. the splay-tree
    path length for an object-table tool) plus [Some detail] if the event
    violates the tool's policy. *)
type checker = {
  ck_name : string;
  ck_handle : event -> int * string option;
}

(* ------------------------------------------------------------------ *)
(* Metadata facility (paper section 5.1)                                *)
(* ------------------------------------------------------------------ *)

(** The two SoftBound organizations from section 5.1, plus three
    related-work facilities modeled for the scheme matrix.  The three
    extras keep the shadow space as the physical backing store (the
    simulated program layout is unchanged, so their correctness is
    identical to [Shadow_space]); what differs is the charged cycle
    cost and the cache traffic pattern of each metadata operation:

    - [Obj_header] (CGuard): bounds live in a 16-byte header just
      before the object; a lookup derefs the header, an update is a
      tag move in the pointer's spare bits (no memory traffic).
    - [Frame_tag] (FRAMER): a tag in the pointer's top byte locates a
      frame header; lookups decode the tag then deref the header.
    - [Wide_inline] (L4 Pointer): base/bound ride inline in a 128-bit
      pointer; lookups/updates touch the word next to the pointer. *)
type meta_facility =
  | Hash_table
  | Shadow_space
  | Obj_header
  | Frame_tag
  | Wide_inline

(** Default number of hash-table entries (power of two) at startup.
    24-byte entries: tag, base, bound.  The table grows by doubling
    (with a full rehash) when it fills — see {!meta_store}. *)
let ht_default_entries = 1 lsl 21

let ht_entry_size = 24

(** Maximum linear-probe chain before an insertion triggers a resize.
    Because every successful insertion lands within this displacement of
    its home slot, lookups can soundly stop probing after the same
    bound. *)
let ht_max_probes = 64

(* ------------------------------------------------------------------ *)
(* Frames                                                               *)
(* ------------------------------------------------------------------ *)

(** Engine-private per-frame scratch.  The threaded-code engine caches
    the frame's compiled block chains here so re-entering a suspended
    frame (returns, longjmp) needs no hash lookup; the decoding engine
    leaves it at [No_resume].  An extensible variant keeps [state]
    independent of the compiler's types. *)
type resume = ..

type resume += No_resume

type frame = {
  fr_func : Ir.func;
  fr_code : Ir.inst array array;  (** per-block instruction arrays *)
  (* The register file is stored unboxed: parallel int/float payload
     arrays plus a one-byte-per-register tag ('\001' = the register
     currently holds a float).  Writing an integer result is then two
     plain stores — no [VI] allocation and no [caml_modify] write
     barrier, which together dominated the interpreters' host time when
     registers were a [value array]. *)
  fr_iregs : int array;
  fr_fregs : float array;
  fr_isf : Bytes.t;
  mutable fr_block : int;
  mutable fr_inst : int;
  fr_fp : int;  (** frame base (old sp); slots below fp-16 *)
  fr_uid : int;
  fr_ret_regs : Ir.reg list;  (** caller registers receiving our returns *)
  fr_expected_token : int;
  fr_expected_savedfp : int;
  mutable fr_resume : resume;
}

(* Register accessors.  The boxed [value] view is reconstructed on
   demand; the int/float views mirror [as_int]/[as_float] exactly
   (including the [int_of_float]/[float_of_int] coercions), so both
   engines observe the same register semantics as the old boxed file.
   The [u]-prefixed variants skip bounds checks — the threaded-code
   compiler validates every register index against the function's
   [fnregs] at compile time before emitting them; the decoding engine
   keeps the checked forms. *)

let[@inline] reg_value fr r =
  if Bytes.get fr.fr_isf r = '\000' then VI fr.fr_iregs.(r)
  else VF fr.fr_fregs.(r)

let[@inline] reg_int fr r =
  if Bytes.get fr.fr_isf r = '\000' then fr.fr_iregs.(r)
  else int_of_float fr.fr_fregs.(r)

let[@inline] reg_set fr r = function
  | VI n ->
      Bytes.set fr.fr_isf r '\000';
      fr.fr_iregs.(r) <- n
  | VF f ->
      Bytes.set fr.fr_isf r '\001';
      fr.fr_fregs.(r) <- f

let[@inline] reg_set_int fr r n =
  Bytes.set fr.fr_isf r '\000';
  fr.fr_iregs.(r) <- n

let[@inline] ureg_value fr r =
  if Bytes.unsafe_get fr.fr_isf r = '\000' then
    VI (Array.unsafe_get fr.fr_iregs r)
  else VF (Array.unsafe_get fr.fr_fregs r)

let[@inline] ureg_int fr r =
  if Bytes.unsafe_get fr.fr_isf r = '\000' then Array.unsafe_get fr.fr_iregs r
  else int_of_float (Array.unsafe_get fr.fr_fregs r)

let[@inline] ureg_float fr r =
  if Bytes.unsafe_get fr.fr_isf r = '\001' then Array.unsafe_get fr.fr_fregs r
  else float_of_int (Array.unsafe_get fr.fr_iregs r)

let[@inline] ureg_set fr r = function
  | VI n ->
      Bytes.unsafe_set fr.fr_isf r '\000';
      Array.unsafe_set fr.fr_iregs r n
  | VF f ->
      Bytes.unsafe_set fr.fr_isf r '\001';
      Array.unsafe_set fr.fr_fregs r f

let[@inline] ureg_set_int fr r n =
  Bytes.unsafe_set fr.fr_isf r '\000';
  Array.unsafe_set fr.fr_iregs r n

let[@inline] ureg_set_float fr r f =
  Bytes.unsafe_set fr.fr_isf r '\001';
  Array.unsafe_set fr.fr_fregs r f

let ret_token_magic = 0x5e7_0000_0000
let jmp_token_magic = 0x6a7_0000_0000

let slot_addr fr (sl : Ir.slot) =
  fr.fr_fp - 16 - fr.fr_func.Ir.fframe_size + sl.Ir.sl_offset

(* ------------------------------------------------------------------ *)
(* VM configuration and state                                           *)
(* ------------------------------------------------------------------ *)

(** Which execution engine runs the pre-decoded IR.  Both produce
    bit-identical simulated outputs (cycles, cache traffic, traps, obs
    attribution); they differ only in host throughput.  [Eng_closure]
    compiles each basic block to a chain of OCaml closures at load time
    (threaded code, no constructor dispatch); [Eng_decode] walks the
    instruction arrays and is kept as the differential reference. *)
type engine = Eng_decode | Eng_closure

let engine_name = function Eng_decode -> "decode" | Eng_closure -> "closure"

let engine_of_string = function
  | "decode" -> Some Eng_decode
  | "closure" -> Some Eng_closure
  | _ -> None

(** How often (in steps) an installed {!config.poll} hook runs: every
    step whose count masks to zero.  16K steps is well under a
    millisecond on either engine, fine-grained enough for per-job
    wall-clock timeouts while keeping the no-hook fast path to a single
    predictable branch. *)
let poll_mask = 16383

type config = {
  max_steps : int;
  engine : engine;
  meta : meta_facility option;
      (** [Some _] when running SoftBound-transformed code *)
  store_only : bool;
      (** store-only checking mode: runtime wrappers skip read checks
          (the transformation independently omits load checks) *)
  checker : checker option;
  use_cache : bool;
  obs_enabled : bool;
      (** collect per-site observability counters (never affects
          simulated cycle counts; disable with [--no-obs]) *)
  trace_depth : int;
      (** ring-buffer capacity for the last-N safety-relevant events
          ([--trace=N]); 0 disables tracing *)
  inputs : string list;  (** lines served by [sim_recv] *)
  argv : string list;
  poll : (unit -> unit) option;
      (** cooperative interruption hook, run every {!poll_mask}+1 steps
          by both engines.  It may raise to abort the run — the serve
          daemon uses it for per-job wall-clock deadlines and
          cancellation on shutdown.  Never affects simulated outputs:
          step/cycle accounting is identical with or without it. *)
  ht_entries_init : int;
      (** initial hash-table capacity (rounded up to a power of two);
          the table resizes itself past this, so small values only cost
          early rehashes — the fuzzer and the resize regression tests
          use them to exercise growth cheaply *)
}

let default_config =
  {
    max_steps = 200_000_000;
    engine = Eng_closure;
    meta = None;
    store_only = false;
    checker = None;
    use_cache = true;
    obs_enabled = true;
    trace_depth = 0;
    inputs = [];
    argv = [];
    poll = None;
    ht_entries_init = ht_default_entries;
  }

type stats = {
  mutable insts : int;
  mutable cycles : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable ptr_mem_ops : int;  (** loads/stores of pointer values *)
  mutable checks : int;
  mutable meta_loads : int;
  mutable meta_stores : int;
  mutable ht_probes : int;
  mutable ht_resizes : int;
  mutable calls : int;
  mutable max_frames : int;
  mutable ck_cycles : int;
      (** cycles charged by a plugged-in baseline checker's [ck_handle]
          — lets the breakdown attribute a plugin scheme's bookkeeping
          to the "check" bucket *)
}

let mk_stats () =
  {
    insts = 0;
    cycles = 0;
    mem_reads = 0;
    mem_writes = 0;
    ptr_mem_ops = 0;
    checks = 0;
    meta_loads = 0;
    meta_stores = 0;
    ht_probes = 0;
    ht_resizes = 0;
    calls = 0;
    max_frames = 0;
    ck_cycles = 0;
  }

type t = {
  cfg : config;
  modul : Ir.modul;
  mem : Mem.t;
  heap : Machine.Heap.t;
  cache : Machine.Cache.t;
  stats : stats;
  obs : Obs.t;
  globals : (string, int * int) Hashtbl.t;  (** name -> (addr, size) *)
  func_names : string array;  (** index -> name, for code addresses *)
  func_index : (string, int) Hashtbl.t;
  builtins : (string, Cminus.Ctypes.fsig) Hashtbl.t;
      (** C prototypes of the builtins, keyed by base name — built once
          at load so dispatch and signature hashing never walk the
          prototype association list *)
  mutable sp : int;
  mutable frames : frame list;
  mutable n_frames : int;
      (** [List.length frames], maintained incrementally — the depth
          checks on every call must not walk the frame list *)
  mutable next_uid : int;
  mutable steps : int;
  out : Buffer.t;
  mutable inputs : string list;
  mutable rand_state : int;
  mutable last_rets : value list;
      (** return values of the most recently popped frame — consumed by
          re-entrant builtin-to-interpreted calls (qsort comparators) *)
  jmp_bufs : (int, frame * int * int * Ir.reg) Hashtbl.t;
      (** live setjmp sites: uid -> (frame, resume block, resume inst,
          result register) *)
  reg_pool : (int array * float array * Bytes.t) list array;
      (** per-size free lists of popped frames' register files, reused
          by [push_frame] to keep [Array.make] (a C call plus minor-GC
          traffic) off the call path.  Sound because a popped frame is
          unreachable once its setjmp contexts are dropped; reused
          arrays are re-zeroed (the float lane lazily: the tag bytes
          are all '\000', so stale floats are unobservable). *)
  mutable ht_entries : int;
      (** current hash-table capacity (always a power of two) *)
  mutable ht_live : int;
      (** occupied hash-table slots; growth keeps this at most half of
          [ht_entries] so probe chains stay short *)
  mc_site : int array;
      (** per-site metadata-lookup inline cache, direct-mapped on the
          site id: the instrumentation site last served by this slot
          (-1 = empty) ... *)
  mc_addr : int array;  (** ... the pointer address it looked up ... *)
  mc_disp : int array;
      (** ... the probe displacement at which the tag matched ... *)
  mc_gen : int array;
      (** ... and the [ht_resizes] generation it was valid in.  A resize
          rehashes every entry, so a generation mismatch invalidates the
          cached displacement; between resizes tags never move or clear,
          so a verified hit can replay the probe walk without re-reading
          the intermediate tags. *)
}

(** Inline-cache size (power of two); sites hash in by their low bits. *)
let mc_size = 1024

(** Register files of up to this many registers are pooled. *)
let reg_pool_buckets = 64

(* ------------------------------------------------------------------ *)
(* Accounting helpers                                                   *)
(* ------------------------------------------------------------------ *)

let charge st c = st.stats.cycles <- st.stats.cycles + c

let cache_access st addr =
  if st.cfg.use_cache then begin
    let penalty = Machine.Cache.access st.cache addr in
    charge st penalty;
    if st.cfg.obs_enabled then
      Obs.record_cache st.obs (L.segment_of addr) ~hit:(penalty = 0)
  end

(** A program-level read of [size] bytes at [addr]: validity check,
    checker event, accounting. *)
let checker_event st ev =
  match st.cfg.checker with
  | Some ck -> (
      let cost, viol = ck.ck_handle ev in
      charge st cost;
      st.stats.ck_cycles <- st.stats.ck_cycles + cost;
      match viol with
      | Some detail ->
          let addr =
            match ev with
            | Ev_access { addr; _ } -> addr
            | Ev_alloc { base; _ } | Ev_free { base; _ } -> base
            | Ev_ptr_arith { dst; _ } -> dst
          in
          raise (Trap (Object_violation { tool = ck.ck_name; addr; detail }))
      | None -> ())
  | None -> ()

let program_read st addr size : unit =
  (match st.cfg.checker with
  | Some _ -> checker_event st (Ev_access { addr; size; is_store = false })
  | None -> ());
  Mem.check_program_access st.mem addr size;
  st.stats.mem_reads <- st.stats.mem_reads + 1;
  charge st Cost.load;
  cache_access st addr

let program_write st addr size : unit =
  (match st.cfg.checker with
  | Some _ -> checker_event st (Ev_access { addr; size; is_store = true })
  | None -> ());
  Mem.check_program_access st.mem addr size;
  st.stats.mem_writes <- st.stats.mem_writes + 1;
  charge st Cost.store;
  cache_access st addr

(* ------------------------------------------------------------------ *)
(* Metadata facility implementation                                     *)
(* ------------------------------------------------------------------ *)

(* Hash table: open addressing with linear probing over 24-byte
   (tag, base, bound) entries.  The tag is the pointer's address + 1 so
   that 0 means "empty" (simulated memory is zero-initialized).

   The table starts at [cfg.ht_entries_init] entries and doubles (with a
   full rehash) whenever an insertion would either exceed the
   [ht_max_probes] chain bound or push occupancy past 50% — it never
   reports "full".  Growth is capped only by the 1 TiB address-space
   region reserved for it in {!Machine.Layout}. *)

let ht_slot_addr st i =
  L.hashtable_base + (i land (st.ht_entries - 1)) * ht_entry_size

let ht_index st addr = (addr lsr 3) land (st.ht_entries - 1)

let ht_region_limit = L.shadow_base - L.hashtable_base

(* The three related-work facilities (CGuard header, FRAMER frame tag,
   L4 wide pointer) are *cost models* layered over the shadow space: the
   base/bound words are physically stored at [L.shadow_addr addr], so
   every lookup returns exactly what a shadow-space run would — what
   differs is the cycles charged and where the cache traffic lands.
   [cache_access] only consults the simulated cache (it never touches
   memory), so pointing it at a header/frame/wide-slot address models
   that facility's locality without perturbing program state. *)

let modeled_load st fac addr : int * int =
  let sa = L.shadow_addr addr in
  let mb = Mem.read_int st.mem sa 8 in
  let me = Mem.read_int st.mem (sa + 8) 8 in
  (match fac with
  | Obj_header ->
      (* CGuard: deref the 16-byte header just before the object the
         pointer's tag names; null metadata has no header to touch *)
      charge st Cost.header_lookup;
      if mb <> 0 then begin
        cache_access st (mb - 16);
        cache_access st (mb - 8)
      end
  | Frame_tag ->
      (* FRAMER: decode the top-byte tag, then deref the enclosing
         frame's header (the frame-aligned address below the base) *)
      charge st Cost.frame_lookup;
      if mb <> 0 then begin
        let fh = mb land lnot 15 in
        cache_access st fh;
        cache_access st (fh + 8)
      end
  | Wide_inline ->
      (* L4 Pointer: base/bound are the upper half of the 128-bit
         pointer, adjacent to the slot just loaded *)
      charge st Cost.wide_lookup;
      cache_access st (addr + 8)
  | Hash_table | Shadow_space -> assert false);
  (mb, me)

let modeled_store st fac addr base bound : unit =
  (match fac with
  | Obj_header ->
      (* the object tag travels in the pointer's spare bits: no extra
         memory traffic on a pointer store *)
      charge st Cost.header_update
  | Frame_tag -> charge st Cost.frame_update
  | Wide_inline ->
      (* storing a wide pointer writes the adjacent upper half too *)
      charge st Cost.wide_update;
      cache_access st (addr + 8)
  | Hash_table | Shadow_space -> assert false);
  let sa = L.shadow_addr addr in
  Mem.write_int st.mem sa 8 base;
  Mem.write_int st.mem (sa + 8) 8 bound

let meta_load ?(site = 0) st addr : int * int =
  st.stats.meta_loads <- st.stats.meta_loads + 1;
  let cy0 = st.stats.cycles in
  let (mb, me) as res =
    match st.cfg.meta with
  | None -> (0, 0)
  | Some Shadow_space ->
      let sa = L.shadow_addr addr in
      charge st Cost.shadow_lookup;
      cache_access st sa;
      cache_access st (sa + 8);
      (Mem.read_int st.mem sa 8, Mem.read_int st.mem (sa + 8) 8)
  | Some ((Obj_header | Frame_tag | Wide_inline) as fac) ->
      modeled_load st fac addr
  | Some Hash_table ->
      charge st Cost.hash_lookup;
      let tag = addr + 1 in
      let home = ht_index st addr in
      let mc = site land (mc_size - 1) in
      let rec probe i n =
        (* sound cutoff: insertion keeps every live entry within
           [ht_max_probes] of its home slot *)
        if n > ht_max_probes then (0, 0)
        else begin
          let ea = ht_slot_addr st i in
          cache_access st ea;
          let t = Mem.read_int st.mem ea 8 in
          if t = tag then begin
            cache_access st (ea + 8);
            cache_access st (ea + 16);
            (* only successful tag matches enter the inline cache: their
               displacement is stable until the next resize *)
            st.mc_site.(mc) <- site;
            st.mc_addr.(mc) <- addr;
            st.mc_disp.(mc) <- n;
            st.mc_gen.(mc) <- st.stats.ht_resizes;
            (Mem.read_int st.mem (ea + 8) 8, Mem.read_int st.mem (ea + 16) 8)
          end
          else if t = 0 then (0, 0)
          else begin
            st.stats.ht_probes <- st.stats.ht_probes + 1;
            charge st Cost.hash_probe;
            probe (i + 1) (n + 1)
          end
        end
      in
      if
        st.mc_site.(mc) = site
        && st.mc_addr.(mc) = addr
        && st.mc_gen.(mc) = st.stats.ht_resizes
        && Mem.read_int st.mem (ht_slot_addr st (home + st.mc_disp.(mc))) 8
           = tag
      then begin
        (* verified hit: the entry is still where it was, and (between
           resizes) the intermediate tags can't have changed — replay
           the probe walk's accounting without re-reading them.  The
           emitted cache/charge/probe sequence is identical to the full
           probe's, so simulated outputs don't move. *)
        let d = st.mc_disp.(mc) in
        for k = 0 to d - 1 do
          cache_access st (ht_slot_addr st (home + k));
          st.stats.ht_probes <- st.stats.ht_probes + 1;
          charge st Cost.hash_probe
        done;
        let ea = ht_slot_addr st (home + d) in
        cache_access st ea;
        cache_access st (ea + 8);
        cache_access st (ea + 16);
        (Mem.read_int st.mem (ea + 8) 8, Mem.read_int st.mem (ea + 16) 8)
      end
      else probe home 0
  in
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KMetaLoad ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs
        (Obs.E_meta_load { site; addr; base = mb; bound = me })
  end;
  res

(** Per-site inline-cache cell owned by the caller: the threaded-code
    engine preallocates one per instrumented site and threads it through
    the closure environment, replacing the direct-mapped [mc_*] arrays
    (no site hashing, no collisions).  [mcc_addr = min_int] is empty. *)
type meta_cell = { mutable mcc_addr : int; mutable mcc_disp : int }

let fresh_meta_cell () = { mcc_addr = min_int; mcc_disp = 0 }

(** [meta_load] against a caller-owned cell.  A hit is verified purely by
    re-reading the tag at the cached displacement: the insertion
    invariant (a live entry at displacement [d] implies slots
    [home..home+d-1] are occupied) plus the fact that tags never clear
    between resizes make the replayed accounting identical to the full
    probe's whenever the tag matches — no generation check needed, which
    also makes stale cells (cached compiled code reused across runs, or
    shared between domains) safe: a wrong cell can only miss, never
    mis-account.  Simulated outputs are bit-identical to [meta_load];
    only host-side hit rates differ. *)
let meta_load_cell ?(site = 0) st (cell : meta_cell) addr : int * int =
  st.stats.meta_loads <- st.stats.meta_loads + 1;
  let cy0 = st.stats.cycles in
  let (mb, me) as res =
    match st.cfg.meta with
    | None -> (0, 0)
    | Some Shadow_space ->
        let sa = L.shadow_addr addr in
        charge st Cost.shadow_lookup;
        cache_access st sa;
        cache_access st (sa + 8);
        (Mem.read_int st.mem sa 8, Mem.read_int st.mem (sa + 8) 8)
    | Some ((Obj_header | Frame_tag | Wide_inline) as fac) ->
        modeled_load st fac addr
    | Some Hash_table ->
        charge st Cost.hash_lookup;
        let tag = addr + 1 in
        let home = ht_index st addr in
        let rec probe i n =
          if n > ht_max_probes then (0, 0)
          else begin
            let ea = ht_slot_addr st i in
            cache_access st ea;
            let t = Mem.read_int st.mem ea 8 in
            if t = tag then begin
              cache_access st (ea + 8);
              cache_access st (ea + 16);
              cell.mcc_addr <- addr;
              cell.mcc_disp <- n;
              (Mem.read_int st.mem (ea + 8) 8, Mem.read_int st.mem (ea + 16) 8)
            end
            else if t = 0 then (0, 0)
            else begin
              st.stats.ht_probes <- st.stats.ht_probes + 1;
              charge st Cost.hash_probe;
              probe (i + 1) (n + 1)
            end
          end
        in
        if
          cell.mcc_addr = addr
          && Mem.read_int st.mem (ht_slot_addr st (home + cell.mcc_disp)) 8
             = tag
        then begin
          let d = cell.mcc_disp in
          for k = 0 to d - 1 do
            cache_access st (ht_slot_addr st (home + k));
            st.stats.ht_probes <- st.stats.ht_probes + 1;
            charge st Cost.hash_probe
          done;
          let ea = ht_slot_addr st (home + d) in
          cache_access st ea;
          cache_access st (ea + 8);
          cache_access st (ea + 16);
          (Mem.read_int st.mem (ea + 8) 8, Mem.read_int st.mem (ea + 16) 8)
        end
        else probe home 0
  in
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KMetaLoad ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs
        (Obs.E_meta_load { site; addr; base = mb; bound = me })
  end;
  res

(** Insert (or update/clear) one entry; grows the table instead of
    failing when the probe chain or the load factor is exhausted.
    [account] is false during rehash, whose cost is charged in bulk. *)
let rec ht_insert st ~addr ~base ~bound ~account : unit =
  let tag = addr + 1 in
  let rec probe i n =
    if n > ht_max_probes then begin
      ht_grow st;
      ht_insert st ~addr ~base ~bound ~account
    end
    else begin
      let ea = ht_slot_addr st i in
      if account then cache_access st ea;
      let t = Mem.read_int st.mem ea 8 in
      if t = tag || t = 0 then begin
        (* clearing an absent entry need not allocate one *)
        if not (t = 0 && base = 0 && bound = 0) then begin
          if account then begin
            cache_access st (ea + 8);
            cache_access st (ea + 16)
          end;
          Mem.write_int st.mem ea 8 tag;
          Mem.write_int st.mem (ea + 8) 8 base;
          Mem.write_int st.mem (ea + 16) 8 bound;
          if t = 0 then begin
            st.ht_live <- st.ht_live + 1;
            if 2 * st.ht_live > st.ht_entries then ht_grow st
          end
        end
      end
      else begin
        if account then begin
          st.stats.ht_probes <- st.stats.ht_probes + 1;
          charge st Cost.hash_probe
        end;
        probe (i + 1) (n + 1)
      end
    end
  in
  probe (ht_index st addr) 0

(** Double the table and rehash every live entry.  Entries cleared to
    (0, 0) are dropped — they are indistinguishable from absent ones —
    so rehashing also collects tombstone-like garbage. *)
and ht_grow st : unit =
  st.stats.ht_resizes <- st.stats.ht_resizes + 1;
  let old_entries = st.ht_entries in
  if old_entries * 2 * ht_entry_size > ht_region_limit then
    raise
      (Trap (Runtime_error "metadata hash table exceeds its address region"));
  let live = ref [] in
  for i = 0 to old_entries - 1 do
    let ea = L.hashtable_base + (i * ht_entry_size) in
    let t = Mem.read_int st.mem ea 8 in
    if t <> 0 then begin
      let b = Mem.read_int st.mem (ea + 8) 8 in
      let e = Mem.read_int st.mem (ea + 16) 8 in
      if b <> 0 || e <> 0 then live := (t - 1, b, e) :: !live;
      Mem.write_int st.mem ea 8 0;
      Mem.write_int st.mem (ea + 8) 8 0;
      Mem.write_int st.mem (ea + 16) 8 0
    end
  done;
  st.ht_entries <- old_entries * 2;
  st.ht_live <- 0;
  (* one sweep of reads plus re-writes; charged in bulk rather than per
     probe (a real runtime would remap rather than thrash the cache) *)
  charge st (Cost.bulk_cost (List.length !live * ht_entry_size * 2));
  List.iter
    (fun (addr, base, bound) ->
      ht_insert st ~addr ~base ~bound ~account:false)
    !live

let meta_store ?(site = 0) st addr base bound : unit =
  st.stats.meta_stores <- st.stats.meta_stores + 1;
  let cy0 = st.stats.cycles in
  (match st.cfg.meta with
  | None -> ()
  | Some Shadow_space ->
      let sa = L.shadow_addr addr in
      charge st Cost.shadow_update;
      cache_access st sa;
      cache_access st (sa + 8);
      Mem.write_int st.mem sa 8 base;
      Mem.write_int st.mem (sa + 8) 8 bound
  | Some ((Obj_header | Frame_tag | Wide_inline) as fac) ->
      modeled_store st fac addr base bound
  | Some Hash_table ->
      charge st Cost.hash_update;
      ht_insert st ~addr ~base ~bound ~account:true);
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KMetaStore ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs (Obs.E_meta_store { site; addr; base; bound })
  end

(** Observer-only metadata read: no cycle accounting, no cache traffic,
    no inline-cache updates and no observability events.  For harness-side
    integrity oracles (e.g. the adversarial robust-safety snapshots) that
    must inspect the facility without perturbing the simulated run. *)
let meta_peek st addr : int * int =
  match st.cfg.meta with
  | None -> (0, 0)
  | Some (Shadow_space | Obj_header | Frame_tag | Wide_inline) ->
      (* the modeled facilities are shadow-backed, so peeking reads the
         same words *)
      let sa = L.shadow_addr addr in
      (Mem.read_int st.mem sa 8, Mem.read_int st.mem (sa + 8) 8)
  | Some Hash_table ->
      let tag = addr + 1 in
      let rec probe i n =
        if n > ht_max_probes then (0, 0)
        else
          let ea = ht_slot_addr st i in
          let t = Mem.read_int st.mem ea 8 in
          if t = tag then
            (Mem.read_int st.mem (ea + 8) 8, Mem.read_int st.mem (ea + 16) 8)
          else if t = 0 then (0, 0)
          else probe (i + 1) (n + 1)
      in
      probe (ht_index st addr) 0

(* ------------------------------------------------------------------ *)
(* The SoftBound check (paper section 3.1)                              *)
(* ------------------------------------------------------------------ *)

let sb_check ?(site = 0) st ~where ~ptr ~base ~bound ~size =
  st.stats.checks <- st.stats.checks + 1;
  let cy0 = st.stats.cycles in
  charge st Cost.check;
  let ok = not (ptr < base || ptr + size > bound) in
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KCheck ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs
        (Obs.E_check { site; addr = ptr; base; bound; size; ok })
  end;
  if not ok then
    raise (Trap (Bounds_violation { addr = ptr; base; bound; size; where }))

(** Widened span check (Elim's [CheckSpan]): one check covering the
    arithmetic progression [first + k*stride], k in [0, count), each
    access [width] bytes.  Vacuously passes when [count <= 0].

    Because the addresses are an arithmetic progression and the legal
    region is an interval, the set of passing k is itself an interval —
    so the first failing k (which is exactly the first iteration whose
    per-iteration check would have trapped in the unwidened program) is
    computable in O(1).  The trap carries that element's address and the
    per-access width, making the report byte-identical to the unwidened
    run's.  Costs a single [Cost.check] however large the span — that is
    the entire point of the widening pass. *)
let sb_check_span ?(site = 0) ?(sites = [||]) st ~where ~first ~count ~stride
    ~width ~base ~bound =
  st.stats.checks <- st.stats.checks + 1;
  let cy0 = st.stats.cycles in
  charge st Cost.check;
  let fail_k =
    if count <= 0 then None
    else if first < base || first + width > bound then Some 0
    else if stride > 0 then
      (* k = 0 passes, so failures are only past the high end; the
         smallest failing k has k*stride > bound - width - first >= 0 *)
      let k = ((bound - width - first) / stride) + 1 in
      if k < count then Some k else None
    else if stride < 0 then
      (* descending: failures are only below base; first - base >= 0 *)
      let k = ((first - base) / -stride) + 1 in
      if k < count then Some k else None
    else None
  in
  let ok = fail_k = None in
  if st.cfg.obs_enabled then begin
    Obs.record_op st.obs Obs.KCheck ~site ~cycles:(st.stats.cycles - cy0);
    if Obs.trace_on st.obs then
      Obs.trace_event st.obs
        (Obs.E_check_span { site; first; count; stride; width; base; bound;
                            ok })
  end;
  match fail_k with
  | None -> ()
  | Some k ->
      let addr = first + (k * stride) in
      let fsite = if k < Array.length sites then sites.(k) else site in
      (* also trace the failing element as a plain check event, with its
         original per-access site: a trapping --trace dump then ends on
         the same line as the unwidened run's *)
      if st.cfg.obs_enabled && Obs.trace_on st.obs then
        Obs.trace_event st.obs
          (Obs.E_check
             { site = fsite; addr; base; bound; size = width; ok = false });
      raise (Trap (Bounds_violation { addr; base; bound; size = width; where }))

(* ------------------------------------------------------------------ *)
(* Output / input / random                                              *)
(* ------------------------------------------------------------------ *)

let output_string st s = Buffer.add_string st.out s
let output_char st c = Buffer.add_char st.out c

let next_input_line st =
  match st.inputs with
  | [] -> None
  | l :: rest ->
      st.inputs <- rest;
      Some l

(** Deterministic LCG so benchmark runs are reproducible. *)
let rand st =
  st.rand_state <- ((st.rand_state * 0x27bb2ee687b0b0fd) + 0x14057b7ef767814f) land max_int;
  (st.rand_state lsr 17) land 0x3fffffff

let srand st seed = st.rand_state <- seed
