(* Engine dispatch: both engines execute the same pre-decoded IR with
   bit-identical simulated outputs; [cfg.engine] selects which one runs
   it.  Harness code routes all executions through here so the
   [--engine] axis reaches every experiment, fuzzer, and profiler. *)

open State

(** {!Vm.run_main} on the configured engine, for callers that keep the
    loaded state open afterwards. *)
let run_main (ld : Vm.loaded) : outcome =
  match ld.Vm.st.cfg.engine with
  | Eng_decode -> Vm.run_main ld
  | Eng_closure -> Compile.run_main ld

(** Load and run a module to completion on the configured engine. *)
let run ?(cfg = default_config) (m : Sbir.Ir.modul) : Vm.result =
  match cfg.engine with
  | Eng_decode -> Vm.run ~cfg m
  | Eng_closure -> Compile.run ~cfg m
