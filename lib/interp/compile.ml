(* Threaded-code engine: a load-time compiler from each basic block of
   the pre-decoded IR to a chain of OCaml closures.

   Executing a block is a tail-call chain with no constructor dispatch:
   each closure captures its resolved operands, call-target resolution,
   and per-site metadata inline-cache cell as preallocated state, and
   ends by tail-calling the next closure (a 2-argument application,
   which the native compiler turns into a real jump through
   [caml_apply2]).  Control flow links blocks through a per-function
   join-point array resolved at compile time; the driver loop below
   re-enters a chain only at frame boundaries (calls that push a frame,
   returns, longjmp repositioning).

   Invariant: every simulated output — cycles, instruction counts,
   cache traffic, metadata probes, obs attribution, trap identity and
   ordering — is bit-identical to the decoding engine's
   ({!Vm.run_until_done}).  Each compiled closure performs the same
   accounting in the same order as the corresponding {!Vm.exec_inst}
   arm; the differential qcheck suite and the shared goldens pin this.

   The compiled artifact captures no per-run state: closures take the
   [(loaded, frame)] pair as arguments, and what they close over —
   pre-decoded [fentry] values, join-point arrays, constants, and the
   metadata cells — is either immutable or race-safe (a metadata cell
   can only produce a verified hit whose replayed accounting is
   identical to a full probe, see {!State.meta_load_cell}).  Artifacts
   are therefore cached in a module-keyed LRU and shared across runs,
   configurations, and domains. *)

module Ir = Sbir.Ir
open State
open Vm
module L = Machine.Layout
module Cost = Machine.Cost

(** A compiled instruction: execute it (and, inline, whatever follows it
    up to the next frame boundary) against the given run. *)
type k = Vm.loaded -> frame -> unit

(** Per-function compiled code: [chains.(b).(i)] enters block [b] at
    instruction index [i]; index [n] (one past the last instruction) is
    the terminator.  The extra entry points exist because frames suspend
    mid-block (calls, setjmp resume points) and the driver must re-enter
    at the frame's recorded [fr_block]/[fr_inst]. *)
type func_chains = k array array

(** Frame-cached pointer to the compiled chains, so resuming a suspended
    frame after every call return costs no hash lookup. *)
type resume += Chains of func_chains

type compiled = {
  c_modul : Ir.modul;  (** cache key, compared physically *)
  c_funcs : (string, func_chains) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Per-step accounting                                                  *)
(* ------------------------------------------------------------------ *)

(* identical counters in identical order to the decoding engine's step
   loop, so [Step_limit] fires at exactly the same instruction — and the
   poll hook observes the same step counts on both engines *)
let[@inline] tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.cfg.max_steps then raise (Trap Step_limit);
  (match st.cfg.poll with
  | Some p when st.steps land poll_mask = 0 -> p ()
  | _ -> ());
  st.stats.insts <- st.stats.insts + 1

(* ------------------------------------------------------------------ *)
(* Operand compilation                                                  *)
(* ------------------------------------------------------------------ *)

(* Pre-decode resolved every known [Glob]/[GlobEnd]/[Func] operand to an
   [ImmI]; a surviving name is unknown in this module and traps at
   evaluation time (never earlier), exactly as {!State.eval} does.  The
   globals and function tables are fixed after load, so compiling the
   trap is sound. *)

(* Every register index is validated against the function's register
   count here, at compile time, which makes the unchecked [ureg_*]
   accessors in the emitted closures sound: the frame's register arrays
   are allocated with exactly [max 1 fnregs] entries. *)
let vreg (f : Ir.func) (r : Ir.reg) : Ir.reg =
  if r < 0 || r >= max 1 f.Ir.fnregs then
    invalid_arg
      (Printf.sprintf "Compile: register %d out of range in %s" r f.Ir.fname);
  r

let ev_value (f : Ir.func) (o : Ir.operand) : frame -> value =
  match o with
  | Ir.Reg r ->
      let r = vreg f r in
      fun fr -> ureg_value fr r
  | Ir.ImmI n ->
      let v = VI n in
      fun _ -> v
  | Ir.ImmF x ->
      let v = VF x in
      fun _ -> v
  | Ir.Glob g | Ir.GlobEnd g ->
      fun _ -> raise (Trap (Runtime_error ("unknown global " ^ g)))
  | Ir.Func fn ->
      fun _ -> raise (Trap (Runtime_error ("unknown function " ^ fn)))

let ev_int (f : Ir.func) (o : Ir.operand) : frame -> int =
  match o with
  | Ir.Reg r ->
      let r = vreg f r in
      fun fr -> ureg_int fr r
  | Ir.ImmI n -> fun _ -> n
  | o ->
      let e = ev_value f o in
      fun fr -> as_int (e fr)

(** Operands whose evaluation can neither trap nor observe state other
    than the register file — the precondition for reordering or fusing
    their evaluation in specialized closures. *)
let pure_operand = function Ir.Reg _ | Ir.ImmI _ -> true | _ -> false

(** Pure operands seen through {!State.as_float}: [ImmF] also
    qualifies. *)
let pure_operand_f = function
  | Ir.Reg _ | Ir.ImmI _ | Ir.ImmF _ -> true
  | _ -> false

(* A pure operand splits into a (selector, immediate) pair: selector
   >= 0 names a validated register, selector < 0 selects the immediate.
   Fetching is then a well-predicted conditional branch inside the
   instruction closure instead of an indirect call through a shared
   closure body — the dominant dispatch cost once operands are the only
   per-instruction indirection left. *)

let pure_parts (f : Ir.func) (o : Ir.operand) : int * int =
  match o with
  | Ir.Reg r -> (vreg f r, 0)
  | Ir.ImmI n -> (-1, n)
  | _ -> invalid_arg "Compile.pure_parts: operand is not pure"

let[@inline] fetch fr sel imm = if sel >= 0 then ureg_int fr sel else imm

let pure_parts_f (f : Ir.func) (o : Ir.operand) : int * float =
  match o with
  | Ir.Reg r -> (vreg f r, 0.0)
  | Ir.ImmI n -> (-1, float_of_int n)
  | Ir.ImmF x -> (-1, x)
  | _ -> invalid_arg "Compile.pure_parts_f: operand is not pure"

let[@inline] fetchf fr sel imm = if sel >= 0 then ureg_float fr sel else imm

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                              *)
(* ------------------------------------------------------------------ *)

(** Compile one instruction at [(blk, idx)] of [f], given the closure
    for the rest of the block. *)
let compile_inst cld (c_funcs : (string, func_chains) Hashtbl.t) (f : Ir.func)
    ~blk ~idx (next : k) (inst : Ir.inst) : k =
  match inst with
  | Ir.Mov (r, _, Ir.Reg ra) ->
      (* register-to-register: copy both lanes and the tag — no box, no
         coercion branch *)
      let r = vreg f r in
      let ra = vreg f ra in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        Bytes.unsafe_set fr.fr_isf r (Bytes.unsafe_get fr.fr_isf ra);
        Array.unsafe_set fr.fr_iregs r (Array.unsafe_get fr.fr_iregs ra);
        Array.unsafe_set fr.fr_fregs r (Array.unsafe_get fr.fr_fregs ra);
        next ld fr
  | Ir.Mov (r, _, Ir.ImmI n) ->
      let r = vreg f r in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        ureg_set_int fr r n;
        next ld fr
  | Ir.Mov (r, _, Ir.ImmF x) ->
      let r = vreg f r in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        ureg_set_float fr r x;
        next ld fr
  | Ir.Mov (r, _, o) ->
      let r = vreg f r in
      let e = ev_value f o in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        ureg_set fr r (e fr);
        next ld fr
  | Ir.Bin (r, op, t, a, b)
    when (match t with Ir.I64 | Ir.U64 | Ir.P -> true | _ -> false)
         && pure_operand a && pure_operand b -> (
      (* word-width integer ALU ops: [norm_int] is the identity, the
         unsigned view is the identity, and the operands are effect-free
         — fuse evaluation, charge, and normalization *)
      let r = vreg f r in
      let sa, ja = pure_parts f a and sb, jb = pure_parts f b in
      let signed = Ir.ity_signed t in
      match op with
      | Ir.Add ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja + fetch fr sb jb);
            next ld fr
      | Ir.Sub ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja - fetch fr sb jb);
            next ld fr
      | Ir.Mul ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.mul;
            ureg_set_int fr r (fetch fr sa ja * fetch fr sb jb);
            next ld fr
      | Ir.And ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja land fetch fr sb jb);
            next ld fr
      | Ir.Or ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja lor fetch fr sb jb);
            next ld fr
      | Ir.Xor ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja lxor fetch fr sb jb);
            next ld fr
      | Ir.Shl ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja lsl (fetch fr sb jb land 63));
            next ld fr
      | Ir.Shr ->
          if signed then fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja asr (fetch fr sb jb land 63));
            next ld fr
          else fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (fetch fr sa ja lsr (fetch fr sb jb land 63));
            next ld fr
      | Ir.Div | Ir.Rem ->
          (* division traps on zero; delegate to the shared unboxed
             helper for the charge/trap sequence *)
          fun ld fr ->
            let st = ld.st in
            tick st;
            ureg_set_int fr r
              (Vm.exec_bin_int st op t (fetch fr sa ja) (fetch fr sb jb));
            next ld fr)
  | Ir.Bin (r, op, t, a, b)
    when (not (Ir.ity_is_float t)) && pure_operand a && pure_operand b ->
      (* narrow integer types: [norm_int]/unsigned views matter, so go
         through the unboxed ALU helper — still no operand closures and
         no boxing *)
      let r = vreg f r in
      let sa, ja = pure_parts f a and sb, jb = pure_parts f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_int fr r
          (Vm.exec_bin_int st op t (fetch fr sa ja) (fetch fr sb jb));
        next ld fr
  | Ir.Bin (r, op, t, a, b)
    when Ir.ity_is_float t && pure_operand_f a && pure_operand_f b ->
      let r = vreg f r in
      let sa, ja = pure_parts_f f a and sb, jb = pure_parts_f f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_float fr r
          (Vm.exec_bin_float st op (fetchf fr sa ja) (fetchf fr sb jb));
        next ld fr
  | Ir.Bin (r, op, t, a, b) ->
      let r = vreg f r in
      let ea = ev_value f a and eb = ev_value f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        (* mirror the decoding engine's right-to-left argument
           evaluation, so a trapping operand charges identically *)
        let vb = eb fr in
        let va = ea fr in
        ureg_set fr r (Vm.exec_bin st op t va vb);
        next ld fr
  | Ir.Cmp (r, op, t, a, b)
    when (match t with
         | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64 | Ir.U64 | Ir.P -> true
         | _ -> false)
         && pure_operand a && pure_operand b -> (
      (* signed types compare raw normalized values; for U64/P the
         unsigned view is the identity — either way a direct native
         comparison matches {!Vm.exec_cmp} *)
      let r = vreg f r in
      let sa, ja = pure_parts f a and sb, jb = pure_parts f b in
      match op with
      | Ir.Ceq ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (if fetch fr sa ja = fetch fr sb jb then 1 else 0);
            next ld fr
      | Ir.Cne ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r
              (if fetch fr sa ja <> fetch fr sb jb then 1 else 0);
            next ld fr
      | Ir.Clt ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (if fetch fr sa ja < fetch fr sb jb then 1 else 0);
            next ld fr
      | Ir.Cle ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r
              (if fetch fr sa ja <= fetch fr sb jb then 1 else 0);
            next ld fr
      | Ir.Cgt ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r (if fetch fr sa ja > fetch fr sb jb then 1 else 0);
            next ld fr
      | Ir.Cge ->
          fun ld fr ->
            let st = ld.st in
            tick st;
            charge st Cost.basic;
            ureg_set_int fr r
              (if fetch fr sa ja >= fetch fr sb jb then 1 else 0);
            next ld fr)
  | Ir.Cmp (r, op, t, a, b)
    when (not (Ir.ity_is_float t)) && pure_operand a && pure_operand b ->
      (* remaining (narrow unsigned) integer types: the shared unboxed
         helper applies the unsigned view *)
      let r = vreg f r in
      let sa, ja = pure_parts f a and sb, jb = pure_parts f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_int fr r
          (Vm.exec_cmp_int st op t (fetch fr sa ja) (fetch fr sb jb));
        next ld fr
  | Ir.Cmp (r, op, t, a, b)
    when Ir.ity_is_float t && pure_operand_f a && pure_operand_f b ->
      let r = vreg f r in
      let sa, ja = pure_parts_f f a and sb, jb = pure_parts_f f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_int fr r
          (Vm.exec_cmp_float st op (fetchf fr sa ja) (fetchf fr sb jb));
        next ld fr
  | Ir.Cmp (r, op, t, a, b) ->
      let r = vreg f r in
      let ea = ev_value f a and eb = ev_value f b in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let vb = eb fr in
        let va = ea fr in
        ureg_set fr r (Vm.exec_cmp st op t va vb);
        next ld fr
  | Ir.Cast (r, to_, from_, o)
    when (not (Ir.ity_is_float to_))
         && (not (Ir.ity_is_float from_))
         && pure_operand o ->
      (* int-to-int cast is charge + renormalize *)
      let r = vreg f r in
      let s, j = pure_parts f o in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        ureg_set_int fr r (Ir.norm_int to_ (fetch fr s j));
        next ld fr
  | Ir.Cast (r, to_, from_, o) ->
      let r = vreg f r in
      let e = ev_value f o in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set fr r (Vm.exec_cast st to_ from_ (e fr));
        next ld fr
  | Ir.Load (r, t, a) when (not (Ir.ity_is_float t)) && pure_operand a ->
      let r = vreg f r in
      let s, j = pure_parts f a in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_int fr r (Vm.do_load_int st t (fetch fr s j));
        next ld fr
  | Ir.Load (r, t, a) when Ir.ity_is_float t && pure_operand a ->
      let r = vreg f r in
      let s, j = pure_parts f a in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set_float fr r (Vm.do_load_float st t (fetch fr s j));
        next ld fr
  | Ir.Load (r, t, a) ->
      let r = vreg f r in
      let ia = ev_int f a in
      fun ld fr ->
        let st = ld.st in
        tick st;
        ureg_set fr r (Vm.do_load st t (ia fr));
        next ld fr
  | Ir.Store (t, a, v)
    when (not (Ir.ity_is_float t)) && pure_operand a && pure_operand v ->
      let sa, ja = pure_parts f a and sv, jv = pure_parts f v in
      fun ld fr ->
        let st = ld.st in
        tick st;
        Vm.do_store_int st t (fetch fr sa ja) (fetch fr sv jv);
        next ld fr
  | Ir.Store (t, a, v)
    when Ir.ity_is_float t && pure_operand a && pure_operand_f v ->
      let sa, ja = pure_parts f a and sv, jv = pure_parts_f f v in
      fun ld fr ->
        let st = ld.st in
        tick st;
        Vm.do_store_float st t (fetch fr sa ja) (fetchf fr sv jv);
        next ld fr
  | Ir.Store (t, a, v) ->
      let ia = ev_int f a and ev = ev_value f v in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let vv = ev fr in
        let addr = ia fr in
        Vm.do_store st t addr vv;
        next ld fr
  | Ir.Gep (r, base, off, _) when pure_operand base && pure_operand off ->
      let r = vreg f r in
      let sb, jb = pure_parts f base and so, jo = pure_parts f off in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        let b = fetch fr sb jb in
        let d = b + fetch fr so jo in
        (match st.cfg.checker with
        | Some _ -> checker_event st (Ev_ptr_arith { src = b; dst = d })
        | None -> ());
        ureg_set_int fr r d;
        next ld fr
  | Ir.Gep (r, base, off, _) ->
      let r = vreg f r in
      let ib = ev_int f base and io = ev_int f off in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        let b = ib fr in
        let d = b + io fr in
        (match st.cfg.checker with
        | Some _ -> checker_event st (Ev_ptr_arith { src = b; dst = d })
        | None -> ());
        ureg_set_int fr r d;
        next ld fr
  | Ir.Slotaddr (r, s) ->
      let r = vreg f r in
      (* the slot address is a per-function constant offset from the
         frame pointer *)
      let off = -16 - f.Ir.fframe_size + f.Ir.fslots.(s).Ir.sl_offset in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.alloca;
        ureg_set_int fr r (fr.fr_fp + off);
        next ld fr
  | Ir.SetBoundMark _ ->
      fun ld fr ->
        tick ld.st;
        next ld fr
  | Ir.Check (p, b, e, size, site)
    when pure_operand p && pure_operand b && pure_operand e ->
      let sp, jp = pure_parts f p in
      let sb, jb = pure_parts f b in
      let se, je = pure_parts f e in
      let where = f.Ir.fname in
      fun ld fr ->
        let st = ld.st in
        tick st;
        sb_check st ~site ~where ~ptr:(fetch fr sp jp) ~base:(fetch fr sb jb)
          ~bound:(fetch fr se je) ~size;
        next ld fr
  | Ir.Check (p, b, e, size, site) ->
      let ip = ev_int f p and ib = ev_int f b and ie = ev_int f e in
      let where = f.Ir.fname in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let bnd = ie fr in
        let bas = ib fr in
        let pv = ip fr in
        sb_check st ~site ~where ~ptr:pv ~base:bas ~bound:bnd ~size;
        next ld fr
  | Ir.CheckSpan sp ->
      let ifirst = ev_int f sp.Ir.sp_first in
      let icount = ev_int f sp.Ir.sp_count in
      let ibase = ev_int f sp.Ir.sp_base in
      let ibound = ev_int f sp.Ir.sp_bound in
      let stride = sp.Ir.sp_stride and width = sp.Ir.sp_width in
      let site = sp.Ir.sp_site and sites = sp.Ir.sp_sites in
      let where = f.Ir.fname in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let bound = ibound fr in
        let base = ibase fr in
        let count = icount fr in
        let first = ifirst fr in
        sb_check_span st ~site ~sites ~where ~first ~count ~stride ~width
          ~base ~bound;
        next ld fr
  | Ir.CheckFptr (p, b, e, expected_sig, site)
    when pure_operand p && pure_operand b && pure_operand e ->
      let sp, jp = pure_parts f p in
      let sb, jb = pure_parts f b in
      let se, je = pure_parts f e in
      let fname = f.Ir.fname in
      fun ld fr ->
        let st = ld.st in
        tick st;
        st.stats.checks <- st.stats.checks + 1;
        let cy0 = st.stats.cycles in
        charge st Cost.check;
        Vm.check_fptr ld ~fname ~site ~expected_sig ~cy0 (fetch fr sp jp)
          (fetch fr sb jb) (fetch fr se je);
        next ld fr
  | Ir.CheckFptr (p, b, e, expected_sig, site) ->
      let ip = ev_int f p and ib = ev_int f b and ie = ev_int f e in
      let fname = f.Ir.fname in
      fun ld fr ->
        let st = ld.st in
        tick st;
        st.stats.checks <- st.stats.checks + 1;
        let cy0 = st.stats.cycles in
        charge st Cost.check;
        let pv = ip fr in
        let bv = ib fr in
        let ev = ie fr in
        Vm.check_fptr ld ~fname ~site ~expected_sig ~cy0 pv bv ev;
        next ld fr
  | Ir.MetaLoad (rb, re, a, site) when pure_operand a ->
      let rb = vreg f rb and re = vreg f re in
      let sa, ja = pure_parts f a in
      (* the per-site inline cache lives in the closure environment *)
      let cell = fresh_meta_cell () in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let b, e = meta_load_cell ~site st cell (fetch fr sa ja) in
        ureg_set_int fr rb b;
        ureg_set_int fr re e;
        next ld fr
  | Ir.MetaLoad (rb, re, a, site) ->
      let rb = vreg f rb and re = vreg f re in
      let ia = ev_int f a in
      let cell = fresh_meta_cell () in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let b, e = meta_load_cell ~site st cell (ia fr) in
        ureg_set_int fr rb b;
        ureg_set_int fr re e;
        next ld fr
  | Ir.MetaStore (a, b, e, site)
    when pure_operand a && pure_operand b && pure_operand e ->
      let sa, ja = pure_parts f a in
      let sb, jb = pure_parts f b in
      let se, je = pure_parts f e in
      fun ld fr ->
        let st = ld.st in
        tick st;
        meta_store ~site st (fetch fr sa ja) (fetch fr sb jb) (fetch fr se je);
        next ld fr
  | Ir.MetaStore (a, b, e, site) ->
      let ia = ev_int f a and ib = ev_int f b and ie = ev_int f e in
      fun ld fr ->
        let st = ld.st in
        tick st;
        let ev = ie fr in
        let bv = ib fr in
        let av = ia fr in
        meta_store ~site st av bv ev;
        next ld fr
  | Ir.Call { rets; callee; args; _ } -> (
      let evs = List.map (ev_value f) args in
      (* unrolled argument evaluation: no [List.map] closure traffic on
         the common sub-4-arity calls *)
      let eval_args : frame -> value list =
        match evs with
        | [] -> fun _ -> []
        | [ e1 ] -> fun fr -> [ e1 fr ]
        | [ e1; e2 ] ->
            fun fr ->
              let v1 = e1 fr in
              let v2 = e2 fr in
              [ v1; v2 ]
        | [ e1; e2; e3 ] ->
            fun fr ->
              let v1 = e1 fr in
              let v2 = e2 fr in
              let v3 = e3 fr in
              [ v1; v2; v3 ]
        | evs -> fun fr -> List.map (fun e -> e fr) evs
      in
      let nexti = idx + 1 in
      (* after the dispatch: continue inline iff this very frame is
         still on top at the position just past the call.  A pushed
         frame, a longjmp elsewhere, or a popped frame all fail the
         test and bounce to the driver; a longjmp that lands exactly at
         [(blk, idx+1)] — a setjmp recorded there — passes it, and
         continuing inline is precisely the resume semantics. *)
      let finish ld fr =
        match ld.st.frames with
        | top :: _ when top == fr && fr.fr_block = blk && fr.fr_inst = nexti
          ->
            next ld fr
        | _ -> ()
      in
      match callee with
      | Ir.Func name -> (
          (* direct call: classify the target once, at compile time *)
          match Vm.resolve cld name with
          | Vm.RFunc fe ->
              (* interpreted target: push directly and seed the new
                 frame's chain pointer, so neither the dispatch
                 classification nor {!chains_for}'s name lookup runs per
                 call.  The callee's chains are memoized on first
                 execution ([c_funcs] is still being filled while this
                 closure is compiled). *)
              let chains_cell = ref ([||] : func_chains) in
              fun ld fr ->
                let st = ld.st in
                tick st;
                fr.fr_inst <- nexti;
                let argvals = eval_args fr in
                Vm.push_frame ld fe argvals rets;
                (match st.frames with
                | top :: _ ->
                    let ch = !chains_cell in
                    let ch =
                      if Array.length ch > 0 then ch
                      else begin
                        let c = Hashtbl.find c_funcs name in
                        chains_cell := c;
                        c
                      end
                    in
                    top.fr_resume <- Chains ch
                | [] -> ());
                finish ld fr
          | r ->
              fun ld fr ->
                let st = ld.st in
                tick st;
                fr.fr_inst <- nexti;
                let argvals = eval_args fr in
                Vm.dispatch_resolved ld ~name ~argvals ~rets r;
                finish ld fr)
      | op ->
          let ic = ev_int f op in
          fun ld fr ->
            let st = ld.st in
            tick st;
            fr.fr_inst <- nexti;
            let argvals = eval_args fr in
            let v = ic fr in
            (match Vm.describe_code_value st v with
            | Some name -> Vm.dispatch_call ld ~name ~argvals ~rets
            | None ->
                raise
                  (Trap
                     (Runtime_error
                        (Printf.sprintf
                           "indirect call to non-function address 0x%x" v))));
            finish ld fr)

(** Compile a terminator.  [entries.(t)] is the join-point array — the
    head closure of every block of this function, filled after all
    blocks are compiled, so forward branches resolve to closures without
    a compile-order constraint. *)
let compile_term (f : Ir.func) (entries : k array) (term : Ir.terminator) : k =
  match term with
  | Ir.TRet ops ->
      let evs = List.map (ev_value f) ops in
      fun ld fr ->
        tick ld.st;
        Vm.pop_frame ld (List.map (fun e -> e fr) evs)
        (* the frame changed: always bounce to the driver *)
  | Ir.TJmp t ->
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        fr.fr_block <- t;
        (Array.unsafe_get entries t) ld fr
  | Ir.TBr (c, t1, t2) when pure_operand c ->
      let s, j = pure_parts f c in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        let t = if fetch fr s j <> 0 then t1 else t2 in
        fr.fr_block <- t;
        (Array.unsafe_get entries t) ld fr
  | Ir.TBr (c, t1, t2) ->
      let ic = ev_int f c in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st Cost.basic;
        let t = if ic fr <> 0 then t1 else t2 in
        fr.fr_block <- t;
        (Array.unsafe_get entries t) ld fr
  | Ir.TSwitch (v, cases, default) ->
      let iv = ev_int f v in
      fun ld fr ->
        let st = ld.st in
        tick st;
        charge st (Cost.basic * 2);
        let x = iv fr in
        let rec find = function
          | [] -> default
          | (k, t) :: tl -> if (k : int) = x then t else find tl
        in
        let t = find cases in
        fr.fr_block <- t;
        (Array.unsafe_get entries t) ld fr
  | Ir.TUnreachable ->
      fun ld _ ->
        tick ld.st;
        raise (Trap (Runtime_error "unreachable executed (missing return?)"))

let dummy_k : k = fun _ _ -> assert false

let compile_func cld c_funcs (fe : Vm.fentry) : func_chains =
  let f = fe.Vm.fe_func in
  let nblocks = Array.length fe.Vm.fe_code in
  let entries = Array.make nblocks dummy_k in
  let chains =
    Array.init nblocks (fun b ->
        let insts = fe.Vm.fe_code.(b) in
        let n = Array.length insts in
        let arr = Array.make (n + 1) dummy_k in
        arr.(n) <- compile_term f entries f.Ir.fblocks.(b).Ir.term;
        (* fill backward so each closure captures its successor
           directly — the common case never touches an array *)
        for i = n - 1 downto 0 do
          arr.(i) <- compile_inst cld c_funcs f ~blk:b ~idx:i arr.(i + 1) insts.(i)
        done;
        arr)
  in
  Array.iteri (fun b chain -> entries.(b) <- chain.(0)) chains;
  chains

(* ------------------------------------------------------------------ *)
(* The driver                                                           *)
(* ------------------------------------------------------------------ *)

let chains_for comp (fr : frame) : func_chains =
  match fr.fr_resume with
  | Chains c -> c
  | _ ->
      let c = Hashtbl.find comp.c_funcs fr.fr_func.Ir.fname in
      fr.fr_resume <- Chains c;
      c

(** Run the top frame (and everything it calls) until the frame stack
    shrinks back to [depth].  A chain bounces back here only at frame
    boundaries; the loop then re-enters the new top frame at its
    recorded position. *)
let drive comp (ld : Vm.loaded) (depth : int) : unit =
  let st = ld.st in
  while st.n_frames > depth do
    match st.frames with
    | [] -> ()
    | fr :: _ ->
        let chains = chains_for comp fr in
        (Array.unsafe_get (Array.unsafe_get chains fr.fr_block) fr.fr_inst)
          ld fr
  done

(** Re-entrant call on this engine (installed as {!Vm.loaded.reenter}):
    qsort/bsearch comparators execute compiled chains, not the decode
    loop. *)
let reenter comp (ld : Vm.loaded) (fe : Vm.fentry) (args : value list) :
    value list =
  let st = ld.st in
  let depth = st.n_frames in
  Vm.push_frame ld fe args [];
  drive comp ld depth;
  st.last_rets

(* ------------------------------------------------------------------ *)
(* Compile cache                                                        *)
(* ------------------------------------------------------------------ *)

(* Compiled artifacts are pure with respect to the run (see the header
   comment), so they are cached per module and shared across runs,
   schemes, and domains.  Keyed by physical equality of the (immutable)
   module value — the same key discipline as Runner's transform cache,
   which this composes with: Runner memoizes the transformed module per
   (module, opts), and each distinct transformed module compiles once
   here. *)

let cache_capacity = 32
let cache_lock = Mutex.create ()
let cache : compiled list ref = ref []

let compiled_for (ld : Vm.loaded) : compiled =
  let m = ld.Vm.st.modul in
  Mutex.lock cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_lock)
    (fun () ->
      match List.find_opt (fun c -> c.c_modul == m) !cache with
      | Some c ->
          (* move to front *)
          cache := c :: List.filter (fun c' -> c' != c) !cache;
          c
      | None ->
          let c_funcs = Hashtbl.create 64 in
          (* snapshot first: compiling resolves callees, which memoizes
             into [ld.resolved] *)
          let fes =
            Hashtbl.fold
              (fun name r acc ->
                match r with Vm.RFunc fe -> (name, fe) :: acc | _ -> acc)
              ld.Vm.resolved []
          in
          List.iter
            (fun (name, fe) ->
              Hashtbl.replace c_funcs name (compile_func ld c_funcs fe))
            fes;
          let c = { c_modul = m; c_funcs } in
          cache := c :: !cache;
          (if List.length !cache > cache_capacity then
             match List.rev !cache with
             | last :: _ -> cache := List.filter (fun c' -> c' != last) !cache
             | [] -> ());
          c)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(** Attach the compiled code for [ld]'s module (compiling on first
    sight) and install the re-entry hook. *)
let attach (ld : Vm.loaded) : compiled =
  let comp = compiled_for ld in
  ld.Vm.reenter <- Some (fun ld fe args -> reenter comp ld fe args);
  comp

let run_to_completion comp (ld : Vm.loaded) : int =
  try
    drive comp ld 0;
    0
  with Vm.Program_exit n -> n

(** {!Vm.run_main} on the threaded-code engine. *)
let run_main (ld : Vm.loaded) : outcome =
  let comp = attach ld in
  Vm.run_main ~exec:(run_to_completion comp) ld

(** Load and run a module to completion on the threaded-code engine. *)
let run ?(cfg = default_config) (m : Ir.modul) : Vm.result =
  let ld = Vm.create ~cfg m in
  Vm.finish ld (run_main ld)
