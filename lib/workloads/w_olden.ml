(* Olden-style benchmark kernels (the white bars of Figure 1) plus the
   SPEC lisp interpreter [li].

   These are pointer-chasing programs — trees, lists and graphs built
   from heap cells — so a large fraction of their memory operations load
   or store pointer values.  Under SoftBound every one of those costs a
   disjoint-metadata-space access, which is exactly what pushes them to
   the right of Figure 1 and to the high-overhead end of Figure 2. *)

(* treeadd: build a binary tree, recursively sum it. *)
let treeadd =
  {|
typedef struct tnode {
  struct tnode *left;
  struct tnode *right;
  int value;
} tnode;

tnode *build(int depth) {
  tnode *n = (tnode*)malloc(sizeof(tnode));
  n->value = 1;
  if (depth > 1) {
    n->left = build(depth - 1);
    n->right = build(depth - 1);
  } else {
    n->left = NULL;
    n->right = NULL;
  }
  return n;
}

int treeadd(tnode *n) {
  if (n == NULL) return 0;
  return n->value + treeadd(n->left) + treeadd(n->right);
}

int main(int argc, char **argv) {
  int depth = 12;
  int passes = 6;
  int p;
  int total = 0;
  tnode *root;
  if (argc > 1) depth = atoi(argv[1]);
  root = build(depth);
  for (p = 0; p < passes; p++) total += treeadd(root);
  printf("treeadd: total=%d\n", total);
  return 0;
}
|}

(* em3d: bipartite graph; each node's value is recomputed from pointers
   to its neighbours' values. *)
let em3d =
  {|
typedef struct enode {
  double value;
  struct enode *next;
  struct enode **from_nodes;   /* array of pointers to the other half */
  int from_count;
  double coeff;
} enode;

enode *make_list(int n) {
  enode *head = NULL;
  int i;
  for (i = 0; i < n; i++) {
    enode *e = (enode*)malloc(sizeof(enode));
    e->value = (double)(i % 17) * 0.25 + 1.0;
    e->coeff = 0.49;
    e->from_count = 0;
    e->from_nodes = NULL;
    e->next = head;
    head = e;
  }
  return head;
}

enode *nth(enode *l, int k) {
  while (k > 0) { l = l->next; k--; }
  return l;
}

void wire(enode *dsts, enode *srcs, int n, int degree) {
  enode *e;
  int i = 0;
  for (e = dsts; e != NULL; e = e->next) {
    int d;
    e->from_nodes = (enode**)malloc(sizeof(enode*) * degree);
    e->from_count = degree;
    for (d = 0; d < degree; d++) {
      e->from_nodes[d] = nth(srcs, (i * 7 + d * 13) % n);
    }
    i++;
  }
}

void compute(enode *l) {
  enode *e;
  for (e = l; e != NULL; e = e->next) {
    double acc = e->value;
    int d;
    for (d = 0; d < e->from_count; d++) {
      acc -= e->coeff * e->from_nodes[d]->value;
    }
    e->value = acc;
  }
}

int main(int argc, char **argv) {
  int n = 160;
  int iters = 12;
  int degree = 4;
  int t;
  enode *hnodes;
  enode *enodes;
  double checksum = 0.0;
  enode *e;
  if (argc > 1) n = atoi(argv[1]);
  hnodes = make_list(n);
  enodes = make_list(n);
  wire(hnodes, enodes, n, degree);
  wire(enodes, hnodes, n, degree);
  for (t = 0; t < iters; t++) {
    compute(hnodes);
    compute(enodes);
  }
  for (e = hnodes; e != NULL; e = e->next) checksum += e->value;
  printf("em3d: checksum=%f\n", checksum);
  return 0;
}
|}

(* li: lisp interpreter kernel — cons cells, environments, eval/apply. *)
let li =
  {|
enum { T_NIL, T_NUM, T_SYM, T_CONS, T_PRIM };

typedef struct cell {
  int tag;
  int num;                 /* T_NUM value or T_SYM id or T_PRIM opcode */
  struct cell *car;
  struct cell *cdr;
} cell;

cell *nil_cell;
int cells_made;

cell *alloc_cell(int tag) {
  cell *c = (cell*)malloc(sizeof(cell));
  c->tag = tag;
  c->num = 0;
  c->car = NULL;
  c->cdr = NULL;
  cells_made++;
  return c;
}

cell *mknum(int v) { cell *c = alloc_cell(T_NUM); c->num = v; return c; }
cell *cons(cell *a, cell *d) {
  cell *c = alloc_cell(T_CONS);
  c->car = a;
  c->cdr = d;
  return c;
}

/* env: list of (symid . value) conses */
cell *env_lookup(cell *env, int sym) {
  cell *e;
  for (e = env; e->tag == T_CONS; e = e->cdr) {
    if (e->car->num == sym) return e->car->cdr;
  }
  return nil_cell;
}

cell *env_bind(cell *env, int sym, cell *v) {
  cell *pair = alloc_cell(T_CONS);
  pair->num = sym;       /* binding cells carry the symbol id inline */
  pair->cdr = v;
  return cons(pair, env);
}

cell *eval(cell *x, cell *env);

cell *eval_list_sum(cell *args, cell *env) {
  int acc = 0;
  cell *a;
  for (a = args; a->tag == T_CONS; a = a->cdr) {
    cell *v = eval(a->car, env);
    if (v->tag == T_NUM) acc += v->num;
  }
  return mknum(acc);
}

cell *eval(cell *x, cell *env) {
  if (x->tag == T_NUM) return x;
  if (x->tag == T_SYM) return env_lookup(env, x->num);
  if (x->tag == T_CONS) {
    cell *op = x->car;
    if (op->tag == T_PRIM) {
      if (op->num == 0) return eval_list_sum(x->cdr, env);
      if (op->num == 1) {             /* (if c a b) with c a number */
        cell *c = eval(x->cdr->car, env);
        if (c->tag == T_NUM && c->num != 0)
          return eval(x->cdr->cdr->car, env);
        return eval(x->cdr->cdr->cdr->car, env);
      }
    }
  }
  return nil_cell;
}

cell *mksym(int id) { cell *c = alloc_cell(T_SYM); c->num = id; return c; }
cell *mkprim(int op) { cell *c = alloc_cell(T_PRIM); c->num = op; return c; }

int main(int argc, char **argv) {
  int reps = 120;
  int r;
  int total = 0;
  cell *env;
  if (argc > 1) reps = atoi(argv[1]);
  nil_cell = alloc_cell(T_NIL);
  env = nil_cell;
  /* bind syms 0..29 to numbers; lookups of low ids walk the chain */
  for (r = 29; r >= 0; r--) env = env_bind(env, r, mknum(r * 3 + 1));
  for (r = 0; r < reps; r++) {
    /* (+ s0 s1 (if s2 (+ s3 s4) (+ s5 s6)) s7) */
    cell *inner1 = cons(mkprim(0), cons(mksym(3), cons(mksym(4), nil_cell)));
    cell *inner2 = cons(mkprim(0), cons(mksym(5), cons(mksym(6), nil_cell)));
    cell *iff;
    cell *expr;
    iff = cons(mkprim(1),
            cons(mksym(2),
              cons(inner1,
                cons(inner2, nil_cell))));
    expr = cons(mkprim(0),
             cons(mksym(0),
               cons(mksym(1),
                 cons(iff,
                   cons(mksym(7), nil_cell)))));
    {
      cell *v = eval(expr, env);
      if (v->tag == T_NUM) total += v->num;
    }
  }
  printf("li: total=%d cells=%d\n", total, cells_made);
  return 0;
}
|}

(* bisort: Olden's bitonic sort over a binary tree, with subtree swaps. *)
let bisort =
  {|
typedef struct bnode {
  int value;
  int visits;
  int depth_seen;
  struct bnode *left;
  struct bnode *right;
} bnode;

int seed;
int next_rand(void) { seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed; }

bnode *build(int depth) {
  bnode *n;
  if (depth == 0) return NULL;
  n = (bnode*)malloc(sizeof(bnode));
  n->value = next_rand() % 10000;
  n->visits = 0;
  n->depth_seen = depth;
  n->left = build(depth - 1);
  n->right = build(depth - 1);
  return n;
}

void swap_children(bnode *n) {
  bnode *t = n->left;
  n->left = n->right;
  n->right = t;
}

/* bimerge: enforce direction over a bitonic tree */
void bimerge(bnode *n, int up) {
  if (n == NULL) return;
  n->visits = n->visits + 1;
  n->depth_seen = n->depth_seen + (up ? 1 : -1);
  if (n->left != NULL) {
    int lv = n->left->value;
    int rv = n->right->value;
    if ((up && lv > rv) || (!up && lv < rv)) {
      int t = lv;
      n->left->value = rv;
      n->right->value = t;
      swap_children(n->left);
      swap_children(n->right);
    }
    bimerge(n->left, up);
    bimerge(n->right, up);
  }
}

void bisort(bnode *n, int up) {
  if (n == NULL) return;
  bisort(n->left, up);
  bisort(n->right, !up);
  bimerge(n, up);
}

int check_sum(bnode *n) {
  if (n == NULL) return 0;
  return n->value % 97 + check_sum(n->left) + check_sum(n->right);
}

int main(int argc, char **argv) {
  int depth = 10;
  bnode *root;
  int rounds = 4;
  int r;
  int total = 0;
  if (argc > 1) depth = atoi(argv[1]);
  seed = 91;
  root = build(depth);
  for (r = 0; r < rounds; r++) {
    bisort(root, r & 1);
    total += check_sum(root);
  }
  printf("bisort: total=%d\n", total);
  return 0;
}
|}

(* mst: Olden's minimum spanning tree — vertices with hash-bucketed
   adjacency lists, Prim-style growth. *)
let mst =
  {|
typedef struct edge {
  struct vertex *to;
  int weight;
  struct edge *next;
} edge;

typedef struct vertex {
  struct vertex *next;
  edge *adj[8];          /* hash buckets of adjacency lists */
  int key;
  int in_tree;
  int id;
} vertex;

vertex *graph;
int n_vertices;

vertex *find_vertex(int id) {
  vertex *v;
  for (v = graph; v != NULL; v = v->next)
    if (v->id == id) return v;
  return NULL;
}

void add_edge(vertex *a, vertex *b, int w) {
  edge *e = (edge*)malloc(sizeof(edge));
  int bucket = b->id & 7;
  e->to = b;
  e->weight = w;
  e->next = a->adj[bucket];
  a->adj[bucket] = e;
}

void build_graph(int n) {
  int i;
  graph = NULL;
  for (i = 0; i < n; i++) {
    vertex *v = (vertex*)malloc(sizeof(vertex));
    int b;
    for (b = 0; b < 8; b++) v->adj[b] = NULL;
    v->key = 1 << 29;
    v->in_tree = 0;
    v->id = i;
    v->next = graph;
    graph = v;
  }
  for (i = 0; i < n; i++) {
    vertex *a = find_vertex(i);
    int j;
    for (j = 1; j <= 3; j++) {
      vertex *b = find_vertex((i + j * 7 + (i * j) % 5) % n);
      if (b != NULL && b != a) {
        int w = 1 + ((i * 31 + j * 17) % 100);
        add_edge(a, b, w);
        add_edge(b, a, w);
      }
    }
  }
}

int prim(void) {
  int total = 0;
  int added = 1;
  vertex *v;
  graph->in_tree = 1;
  graph->key = 0;
  while (added) {
    vertex *best = NULL;
    added = 0;
    /* relax edges out of tree vertices */
    for (v = graph; v != NULL; v = v->next) {
      if (v->in_tree) {
        int b;
        for (b = 0; b < 8; b++) {
          edge *e;
          for (e = v->adj[b]; e != NULL; e = e->next) {
            if (!e->to->in_tree && e->weight < e->to->key)
              e->to->key = e->weight;
          }
        }
      }
    }
    for (v = graph; v != NULL; v = v->next) {
      if (!v->in_tree && v->key < (1 << 29)) {
        if (best == NULL || v->key < best->key) best = v;
      }
    }
    if (best != NULL) {
      best->in_tree = 1;
      total += best->key;
      added = 1;
    }
  }
  return total;
}

int main(int argc, char **argv) {
  int n = 96;
  if (argc > 1) n = atoi(argv[1]);
  build_graph(n);
  printf("mst: weight=%d\n", prim());
  return 0;
}
|}
