(* Registry of the 15 benchmark kernels evaluated in the paper
   (section 6.3: 7 SPEC + 8 Olden programs).

   The registry keeps the Figure 1 presentation order (sorted by the
   fraction of memory operations that move pointers, SPEC shaded dark in
   the paper's plot).  [scale_args] gives a reduced problem size for
   quick runs (unit tests); the default sizes are used for the Figure 1/2
   experiments. *)

(* re-export the kernel source modules *)
module W_spec = W_spec
module W_olden = W_olden
module W_olden2 = W_olden2

type category = Spec | Olden

type workload = {
  name : string;
  category : category;
  description : string;
  source : string;
  quick_args : string list;  (** smaller size for tests *)
}

let mk name category description source quick_args =
  { name; category; description; source; quick_args }

let all : workload list =
  [
    mk "go" Spec "Go position evaluator (integer arrays)" W_spec.go
      [ "8" ];
    mk "lbm" Spec "lattice-Boltzmann streaming over double grids" W_spec.lbm
      [ "6" ];
    mk "hmmer" Spec "profile-HMM Viterbi (integer DP matrices)" W_spec.hmmer
      [ "3" ];
    mk "compress" Spec "LZW compressor with open-addressing code table"
      W_spec.compress [ "4" ];
    mk "ijpeg" Spec "8x8 integer DCT + quantization" W_spec.ijpeg [ "3" ];
    mk "bh" Olden "Barnes-Hut N-body (quadtree + doubles)" W_olden2.bh
      [ "48" ];
    mk "tsp" Olden "closest-point tour over a city list" W_olden2.tsp
      [ "40" ];
    mk "libquantum" Spec "quantum register gate simulation" W_spec.libquantum
      [ "12" ];
    mk "perimeter" Olden "quadtree image perimeter" W_olden2.perimeter
      [ "4" ];
    mk "health" Olden "hospital hierarchy simulation (patient lists)"
      W_olden2.health [ "20" ];
    mk "bisort" Olden "bitonic sort over a binary tree" W_olden.bisort
      [ "7" ];
    mk "mst" Olden "minimum spanning tree (adjacency buckets)" W_olden.mst
      [ "32" ];
    mk "li" Spec "lisp interpreter kernel (cons cells, eval/apply)"
      W_olden.li [ "25" ];
    mk "em3d" Olden "electromagnetic bipartite graph relaxation" W_olden.em3d
      [ "48" ];
    mk "treeadd" Olden "binary tree build + recursive sum" W_olden.treeadd
      [ "8" ];
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let names = List.map (fun w -> w.name) all
