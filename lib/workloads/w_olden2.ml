(* Remaining Olden-style kernels: bh, tsp, perimeter, health. *)

(* bh: Barnes–Hut N-body — quadtree build, centre-of-mass pass, force
   walk.  A mix of double arithmetic and pointer chasing, which puts it
   between the scalar SPEC codes and the pure pointer chasers. *)
let bh =
  {|
typedef struct body {
  double x;
  double y;
  double mass;
  double fx;
  double fy;
  struct body *next;
} body;

typedef struct qnode {
  double cx;
  double cy;
  double half;
  double mass;
  double mx;
  double my;
  body *b;                  /* leaf payload */
  struct qnode *kid[4];
} qnode;

int seed;
int next_rand(void) { seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed; }
double frand(void) { return (double)(next_rand() % 10000) / 10000.0; }

qnode *new_node(double cx, double cy, double half) {
  qnode *q = (qnode*)malloc(sizeof(qnode));
  int i;
  q->cx = cx; q->cy = cy; q->half = half;
  q->mass = 0.0; q->mx = 0.0; q->my = 0.0;
  q->b = NULL;
  for (i = 0; i < 4; i++) q->kid[i] = NULL;
  return q;
}

int quadrant_of(qnode *q, body *b) {
  int qd = 0;
  if (b->x > q->cx) qd += 1;
  if (b->y > q->cy) qd += 2;
  return qd;
}

void insert_body(qnode *q, body *b, int depth) {
  if (depth > 12) return;
  if (q->b == NULL && q->kid[0] == NULL && q->kid[1] == NULL
      && q->kid[2] == NULL && q->kid[3] == NULL) {
    q->b = b;
    return;
  }
  if (q->b != NULL) {
    body *old = q->b;
    int qd = quadrant_of(q, old);
    double h = q->half / 2.0;
    q->b = NULL;
    if (q->kid[qd] == NULL)
      q->kid[qd] = new_node(q->cx + (qd & 1 ? h : -h),
                            q->cy + (qd & 2 ? h : -h), h);
    insert_body(q->kid[qd], old, depth + 1);
  }
  {
    int qd = quadrant_of(q, b);
    double h = q->half / 2.0;
    if (q->kid[qd] == NULL)
      q->kid[qd] = new_node(q->cx + (qd & 1 ? h : -h),
                            q->cy + (qd & 2 ? h : -h), h);
    insert_body(q->kid[qd], b, depth + 1);
  }
}

void centre_of_mass(qnode *q) {
  int i;
  if (q == NULL) return;
  if (q->b != NULL) {
    q->mass = q->b->mass;
    q->mx = q->b->x;
    q->my = q->b->y;
    return;
  }
  q->mass = 0.0; q->mx = 0.0; q->my = 0.0;
  for (i = 0; i < 4; i++) {
    qnode *k = q->kid[i];
    if (k != NULL) {
      centre_of_mass(k);
      q->mass += k->mass;
      q->mx += k->mx * k->mass;
      q->my += k->my * k->mass;
    }
  }
  if (q->mass > 0.0) { q->mx /= q->mass; q->my /= q->mass; }
}

void force_walk(qnode *q, body *b) {
  double dx;
  double dy;
  double d2;
  int i;
  if (q == NULL || q->mass == 0.0) return;
  dx = q->mx - b->x;
  dy = q->my - b->y;
  d2 = dx * dx + dy * dy + 0.01;
  if (q->b != NULL || q->half * q->half < 0.09 * d2) {
    double inv = q->mass / (d2 * sqrt(d2));
    b->fx += dx * inv;
    b->fy += dy * inv;
    return;
  }
  for (i = 0; i < 4; i++) force_walk(q->kid[i], b);
}

int main(int argc, char **argv) {
  int n = 256;
  int steps = 4;
  int s;
  int i;
  body *bodies;
  double checksum = 0.0;
  body *bl;
  if (argc > 1) n = atoi(argv[1]);
  seed = 17;
  bodies = NULL;
  for (i = 0; i < n; i++) {
    body *b = (body*)malloc(sizeof(body));
    b->x = frand(); b->y = frand();
    b->mass = 0.5 + frand();
    b->fx = 0.0; b->fy = 0.0;
    b->next = bodies;
    bodies = b;
  }
  for (s = 0; s < steps; s++) {
    qnode *root = new_node(0.5, 0.5, 0.5);
    for (bl = bodies; bl != NULL; bl = bl->next) insert_body(root, bl, 0);
    centre_of_mass(root);
    for (bl = bodies; bl != NULL; bl = bl->next) {
      bl->fx = 0.0; bl->fy = 0.0;
      force_walk(root, bl);
      bl->x += bl->fx * 0.0001;
      bl->y += bl->fy * 0.0001;
    }
  }
  for (bl = bodies; bl != NULL; bl = bl->next) checksum += bl->fx + bl->fy;
  printf("bh: checksum=%f\n", checksum);
  return 0;
}
|}

(* tsp: closest-point heuristic tour over a linked list of cities,
   Olden-style divide and merge. *)
let tsp =
  {|
typedef struct city {
  double x;
  double y;
  struct city *next;
  struct city *tour_next;
  int visited;
} city;

int seed;
int next_rand(void) { seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed; }
double frand(void) { return (double)(next_rand() % 10000) / 10000.0; }

double dist2(city *a, city *b) {
  double dx = a->x - b->x;
  double dy = a->y - b->y;
  return dx * dx + dy * dy;
}

city *make_cities(int n) {
  city *head = NULL;
  int i;
  for (i = 0; i < n; i++) {
    city *c = (city*)malloc(sizeof(city));
    c->x = frand();
    c->y = frand();
    c->next = head;
    c->tour_next = NULL;
    c->visited = 0;
    head = c;
  }
  return head;
}

double nearest_neighbour_tour(city *all) {
  city *cur = all;
  double total = 0.0;
  cur->visited = 1;
  for (;;) {
    city *best = NULL;
    double bestd = 1.0e30;
    city *c;
    for (c = all; c != NULL; c = c->next) {
      if (!c->visited) {
        double d = dist2(cur, c);
        if (d < bestd) { bestd = d; best = c; }
      }
    }
    if (best == NULL) break;
    best->visited = 1;
    cur->tour_next = best;
    total += sqrt(bestd);
    cur = best;
  }
  /* close the tour */
  total += sqrt(dist2(cur, all));
  cur->tour_next = all;
  return total;
}

/* 2-opt-ish improvement pass over the tour list */
double improve(city *start, double len) {
  city *a;
  int i = 0;
  for (a = start; i < 200 && a->tour_next != start; a = a->tour_next) {
    city *b = a->tour_next;
    city *c = b->tour_next;
    if (c != start && c != NULL && c->tour_next != NULL) {
      double before = sqrt(dist2(a, b)) + sqrt(dist2(b, c));
      double after = sqrt(dist2(a, c)) + sqrt(dist2(c, b));
      if (after < before) {
        a->tour_next = c;
        city *d = c->tour_next;
        c->tour_next = b;
        b->tour_next = d;
        len = len - before + after;
      }
    }
    i++;
  }
  return len;
}

int main(int argc, char **argv) {
  int n = 96;
  city *cities;
  double len;
  if (argc > 1) n = atoi(argv[1]);
  seed = 23;
  cities = make_cities(n);
  len = nearest_neighbour_tour(cities);
  {
    int pass;
    for (pass = 0; pass < 8; pass++) len = improve(cities, len);
  }
  printf("tsp: len=%f\n", len);
  return 0;
}
|}

(* perimeter: quadtree image representation; perimeter of the black
   region via neighbour finding through parent pointers. *)
let perimeter =
  {|
enum { WHITE, BLACK, GREY };

typedef struct qt {
  int colour;
  int level;
  struct qt *parent;
  struct qt *kid[4];      /* nw ne sw se */
} qt;

int seed;
int next_rand(void) { seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed; }

qt *build(int level, qt *parent) {
  qt *q = (qt*)malloc(sizeof(qt));
  int i;
  q->parent = parent;
  q->level = level;
  for (i = 0; i < 4; i++) q->kid[i] = NULL;
  if (level == 0) {
    q->colour = (next_rand() % 3 == 0) ? BLACK : WHITE;
  } else {
    int all_black = 1;
    int all_white = 1;
    for (i = 0; i < 4; i++) {
      q->kid[i] = build(level - 1, q);
      if (q->kid[i]->colour != BLACK) all_black = 0;
      if (q->kid[i]->colour != WHITE) all_white = 0;
    }
    if (all_black) q->colour = BLACK;
    else if (all_white) q->colour = WHITE;
    else q->colour = GREY;
  }
  return q;
}

int count_leaves(qt *q, int colour) {
  if (q == NULL) return 0;
  if (q->kid[0] == NULL) return q->colour == colour ? 1 : 0;
  return count_leaves(q->kid[0], colour) + count_leaves(q->kid[1], colour)
       + count_leaves(q->kid[2], colour) + count_leaves(q->kid[3], colour);
}

/* edge contribution of black leaves: 4 * side - 2 * shared black edges,
   approximated by sampling sibling adjacency through the parent chain */
int perimeter_of(qt *q) {
  int p = 0;
  int i;
  if (q == NULL) return 0;
  if (q->kid[0] == NULL) {
    if (q->colour == BLACK) {
      p = 4 + q->level - q->level;   /* side length cancels at unit leaves */
      if (q->parent != NULL) {
        for (i = 0; i < 4; i++) {
          qt *sib = q->parent->kid[i];
          if (sib != NULL && sib != q && sib->colour == BLACK) p--;
        }
      }
    }
    return p;
  }
  for (i = 0; i < 4; i++) p += perimeter_of(q->kid[i]);
  return p;
}

int main(int argc, char **argv) {
  int levels = 6;
  qt *root;
  int black;
  int per;
  if (argc > 1) levels = atoi(argv[1]);
  seed = 29;
  root = build(levels, NULL);
  black = count_leaves(root, BLACK);
  per = perimeter_of(root);
  printf("perimeter: black=%d perimeter=%d\n", black, per);
  return 0;
}
|}

(* health: Olden's hospital simulation — a tree of villages, each with
   waiting/assess/inside patient lists that patients migrate through. *)
let health =
  {|
typedef struct patient {
  int hosps_visited;
  int time_left;
  int id;
  struct patient *next;
} patient;

typedef struct village {
  struct village *kid[4];
  struct village *parent;
  patient *waiting;
  patient *assess;
  patient *inside;
  int label;
  int seed;
} village;

int global_seed;
int next_rand(void) {
  global_seed = (global_seed * 1103515245 + 12345) & 0x7fffffff;
  return global_seed;
}

int patients_made;
int patients_treated;

village *build(int level, village *parent, int label) {
  village *v;
  int i;
  if (level == 0) return NULL;
  v = (village*)malloc(sizeof(village));
  v->parent = parent;
  v->label = label;
  v->seed = label * 37 + 11;
  v->waiting = NULL;
  v->assess = NULL;
  v->inside = NULL;
  for (i = 0; i < 4; i++) v->kid[i] = build(level - 1, v, label * 4 + i + 1);
  return v;
}

patient *new_patient(int id) {
  patient *p = (patient*)malloc(sizeof(patient));
  p->hosps_visited = 0;
  p->time_left = 2 + id % 3;
  p->id = id;
  p->next = NULL;
  patients_made++;
  return p;
}

patient *list_pop(patient **l) {
  patient *p = *l;
  if (p != NULL) *l = p->next;
  return p;
}

void list_push(patient **l, patient *p) {
  p->next = *l;
  *l = p;
}

void simulate(village *v) {
  int i;
  patient *p;
  if (v == NULL) return;
  for (i = 0; i < 4; i++) simulate(v->kid[i]);
  /* maybe a new patient arrives at a leaf village */
  if (v->kid[0] == NULL && next_rand() % 3 == 0) {
    list_push(&v->waiting, new_patient(next_rand() % 1000));
  }
  /* assess one waiting patient */
  p = list_pop(&v->waiting);
  if (p != NULL) {
    p->hosps_visited++;
    if (next_rand() % 10 < 7 || v->parent == NULL) {
      list_push(&v->inside, p);       /* treat here */
    } else {
      list_push(&v->parent->waiting, p);  /* refer upward */
    }
  }
  /* advance treatment */
  p = v->inside;
  if (p != NULL) {
    p->time_left--;
    if (p->time_left <= 0) {
      v->inside = p->next;
      patients_treated++;
      free(p);
    }
  }
}

int main(int argc, char **argv) {
  int steps = 60;
  int levels = 4;
  village *top;
  int t;
  if (argc > 1) steps = atoi(argv[1]);
  global_seed = 43;
  top = build(levels, NULL, 0);
  for (t = 0; t < steps; t++) simulate(top);
  printf("health: made=%d treated=%d\n", patients_made, patients_treated);
  return 0;
}
|}
