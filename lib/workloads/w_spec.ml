(* SPEC-style benchmark kernels (the dark bars of Figure 1).

   These are scalar/array-dominated: few of their memory operations load
   or store pointer values, so SoftBound's metadata traffic is small and
   the residual overhead is dominated by the dereference checks — the
   left side of Figures 1 and 2.

   Every kernel accepts an optional scale argument (argv[1]). *)

(* go: 9x9 Go position evaluator — influence propagation and liberty
   counting over int arrays. *)
let go =
  {|
int board[81];
int influence[81];
int liberties[81];

int on_board(int pt) { return pt >= 0 && pt < 81; }

void propagate_influence(void) {
  int pt;
  int pass;
  for (pass = 0; pass < 4; pass++) {
    for (pt = 0; pt < 81; pt++) {
      int v = influence[pt];
      if (v != 0) {
        int decay = v / 2;
        if (pt >= 9) influence[pt - 9] += decay;
        if (pt < 72) influence[pt + 9] += decay;
        if (pt % 9 != 0) influence[pt - 1] += decay;
        if (pt % 9 != 8) influence[pt + 1] += decay;
      }
    }
  }
}

void count_liberties(void) {
  int pt;
  for (pt = 0; pt < 81; pt++) {
    int libs = 0;
    if (board[pt] != 0) {
      if (pt >= 9 && board[pt - 9] == 0) libs++;
      if (pt < 72 && board[pt + 9] == 0) libs++;
      if (pt % 9 != 0 && board[pt - 1] == 0) libs++;
      if (pt % 9 != 8 && board[pt + 1] == 0) libs++;
    }
    liberties[pt] = libs;
  }
}

int evaluate(void) {
  int score = 0;
  int pt;
  propagate_influence();
  count_liberties();
  for (pt = 0; pt < 81; pt++) {
    if (board[pt] == 1) score += 4 + liberties[pt] + influence[pt] / 8;
    if (board[pt] == 2) score -= 4 + liberties[pt] + influence[pt] / 8;
  }
  return score;
}

int main(int argc, char **argv) {
  int games = 60;
  int g;
  int total = 0;
  if (argc > 1) games = atoi(argv[1]);
  srand(7);
  for (g = 0; g < games; g++) {
    int mv;
    int pt;
    for (pt = 0; pt < 81; pt++) { board[pt] = 0; influence[pt] = 0; }
    for (mv = 0; mv < 40; mv++) {
      int at = rand() % 81;
      board[at] = 1 + (mv & 1);
      influence[at] = board[at] == 1 ? 64 : -64;
      total = (total + evaluate()) % 1000000;
    }
  }
  printf("go: total=%d\n", total);
  return 0;
}
|}

(* lbm: 1D-projected lattice-Boltzmann streaming/collision over double
   grids. *)
let lbm =
  {|
double grid_a[3000];
double grid_b[3000];

void collide_stream(double *src, double *dst, int n) {
  int i;
  for (i = 1; i < n - 1; i++) {
    double rho = src[i - 1] + src[i] + src[i + 1];
    double u = (src[i + 1] - src[i - 1]) / (rho + 1.0);
    double eq = rho / 3.0 * (1.0 + 3.0 * u + 4.5 * u * u);
    dst[i] = src[i] + 1.85 * (eq - src[i]) * 0.333;
  }
  dst[0] = dst[1];
  dst[n - 1] = dst[n - 2];
}

typedef struct { double *src; double *dst; } lattice;
lattice lat;

int main(int argc, char **argv) {
  int steps = 40;
  int n = 3000;
  int i;
  int t;
  double checksum = 0.0;
  if (argc > 1) steps = atoi(argv[1]);
  lat.src = grid_a;
  lat.dst = grid_b;
  for (i = 0; i < n; i++) grid_a[i] = 1.0 + (double)(i % 7) * 0.01;
  for (t = 0; t < steps; t++) {
    double *tmp;
    collide_stream(lat.src, lat.dst, n);
    tmp = lat.src; lat.src = lat.dst; lat.dst = tmp;
  }
  for (i = 0; i < n; i += 97) checksum += lat.src[i];
  printf("lbm: checksum=%f\n", checksum);
  return 0;
}
|}

(* hmmer: profile-HMM Viterbi over integer score matrices. *)
let hmmer =
  {|
int match_score[40][20];
int mmx[41][40];
int imx[41][40];
int dmx[41][40];

int max2(int a, int b) { return a > b ? a : b; }

int viterbi(int *seq, int len, int m) {
  int i;
  int k;
  for (k = 0; k < m; k++) { mmx[0][k] = -10000; imx[0][k] = -10000; dmx[0][k] = -10000; }
  mmx[0][0] = 0;
  for (i = 1; i <= len; i++) {
    int sym = seq[i - 1];
    for (k = 1; k < m; k++) {
      int sc = max2(mmx[i - 1][k - 1] - 11, imx[i - 1][k - 1] - 4);
      sc = max2(sc, dmx[i - 1][k - 1] - 7);
      mmx[i][k] = sc + match_score[k][sym];
      imx[i][k] = max2(mmx[i - 1][k] - 8, imx[i - 1][k] - 2);
      dmx[i][k] = max2(mmx[i][k - 1] - 10, dmx[i][k - 1] - 3);
    }
    mmx[i][0] = -10000; imx[i][0] = -10000; dmx[i][0] = -10000;
  }
  {
    int best = -10000;
    for (k = 0; k < m; k++) best = max2(best, mmx[len][k]);
    return best;
  }
}

int main(int argc, char **argv) {
  int reps = 12;
  int seq[40];
  int r;
  int k;
  int s;
  int total = 0;
  if (argc > 1) reps = atoi(argv[1]);
  srand(11);
  for (k = 0; k < 40; k++)
    for (s = 0; s < 20; s++)
      match_score[k][s] = (rand() % 13) - 4;
  for (r = 0; r < reps; r++) {
    int i;
    for (i = 0; i < 40; i++) seq[i] = rand() % 20;
    total += viterbi(seq, 40, 40);
  }
  printf("hmmer: total=%d\n", total);
  return 0;
}
|}

(* compress: LZW-style compressor with an open-addressing code table. *)
let compress =
  {|
int htab[4096];
int codetab[4096];
char inbuf[4096];
char outbuf[8192];

int compress_block(char *in, int n, char *out) {
  int next_code = 256;
  int prefix;
  int i;
  int outn = 0;
  int h;
  for (h = 0; h < 4096; h++) htab[h] = -1;
  prefix = (int)in[0] & 0xff;
  for (i = 1; i < n; i++) {
    int c = (int)in[i] & 0xff;
    int key = (prefix << 8) | c;
    int probe = ((key * 2654435) ^ (key >> 7)) & 4095;
    int found = -1;
    while (htab[probe] != -1) {
      if (htab[probe] == key) { found = codetab[probe]; break; }
      probe = (probe + 1) & 4095;
    }
    if (found >= 0) {
      prefix = found;
    } else {
      out[outn++] = (char)(prefix & 0xff);
      out[outn++] = (char)((prefix >> 8) & 0xff);
      if (next_code < 4096) {
        htab[probe] = key;
        codetab[probe] = next_code;
        next_code++;
      }
      prefix = c;
    }
  }
  out[outn++] = (char)(prefix & 0xff);
  return outn;
}

int main(int argc, char **argv) {
  int reps = 25;
  int r;
  int i;
  int total = 0;
  if (argc > 1) reps = atoi(argv[1]);
  srand(3);
  for (i = 0; i < 4096; i++)
    inbuf[i] = (char)('a' + (((i * i) >> 3) + rand() % 5) % 16);
  for (r = 0; r < reps; r++) total += compress_block(inbuf, 4096, outbuf);
  printf("compress: out=%d\n", total);
  return 0;
}
|}

(* ijpeg: 8x8 integer DCT, quantization and zig-zag over image blocks. *)
let ijpeg =
  {|
int image[64][64];
int quant[64];
int zigzag[64];

void dct8(int *vec) {
  int tmp[8];
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    int acc = 0;
    for (j = 0; j < 8; j++) {
      int c = (i == 0) ? 181 : 256 - (i * i * 3);
      acc += vec[j] * c / 256;
    }
    tmp[i] = acc;
  }
  for (i = 0; i < 8; i++) vec[i] = tmp[i];
}

int encode_block(int bx, int by) {
  int block[64];
  int x;
  int y;
  int i;
  int nz = 0;
  for (y = 0; y < 8; y++)
    for (x = 0; x < 8; x++)
      block[y * 8 + x] = image[by * 8 + y][bx * 8 + x] - 128;
  for (y = 0; y < 8; y++) dct8(&block[y * 8]);
  for (i = 0; i < 64; i++) {
    int q = block[zigzag[i]] / quant[i];
    if (q != 0) nz++;
    block[i] = q;
  }
  return nz;
}

int main(int argc, char **argv) {
  int frames = 15;
  int f;
  int x;
  int y;
  int i;
  int total = 0;
  if (argc > 1) frames = atoi(argv[1]);
  for (i = 0; i < 64; i++) { quant[i] = 1 + i / 4; zigzag[i] = (i * 37) % 64; }
  srand(5);
  for (f = 0; f < frames; f++) {
    for (y = 0; y < 64; y++)
      for (x = 0; x < 64; x++)
        image[y][x] = (x * y + f * 31 + rand() % 7) & 0xff;
    for (y = 0; y < 8; y++)
      for (x = 0; x < 8; x++)
        total += encode_block(x, y);
  }
  printf("ijpeg: nz=%d\n", total);
  return 0;
}
|}

(* libquantum: quantum register gate simulation.  The register is a
   heap object holding a pointer to its cell array, accessed as
   [qr->cells[i]] exactly like the original's [reg->node[i]] — which is
   what gives libquantum its mid-range pointer-operation fraction. *)
let libquantum =
  {|
typedef struct {
  long state;
  double amp_re;
  double amp_im;
} qcell;

typedef struct {
  qcell *cells;
  int size;
  int qubits;
} qreg;

qreg *qr;

qreg *new_register(int size, int qubits) {
  qreg *r = (qreg*)malloc(sizeof(qreg));
  int i;
  r->cells = (qcell*)malloc(sizeof(qcell) * size);
  r->size = size;
  r->qubits = qubits;
  for (i = 0; i < size; i++) {
    r->cells[i].state = i;
    r->cells[i].amp_re = 1.0 / 32.0;
    r->cells[i].amp_im = 0.0;
  }
  return r;
}

void sigma_x(qreg *r, int target) {
  int i;
  long mask = 1L << target;
  for (i = 0; i < r->size; i++) r->cells[i].state = r->cells[i].state ^ mask;
}

void controlled_not(qreg *r, int control, int target) {
  int i;
  long cmask = 1L << control;
  long tmask = 1L << target;
  for (i = 0; i < r->size; i++) {
    if (r->cells[i].state & cmask) r->cells[i].state = r->cells[i].state ^ tmask;
  }
}

void phase_kick(qreg *r, int target, double gamma) {
  int i;
  long mask = 1L << target;
  for (i = 0; i < r->size; i++) {
    qcell *c = &r->cells[i];
    if (c->state & mask) {
      double re = c->amp_re;
      double im = c->amp_im;
      c->amp_re = re * 0.995 - im * gamma;
      c->amp_im = im * 0.995 + re * gamma;
    }
  }
}

int main(int argc, char **argv) {
  int iters = 60;
  int i;
  int t;
  long checksum = 0;
  if (argc > 1) iters = atoi(argv[1]);
  qr = new_register(1024, 10);
  for (t = 0; t < iters; t++) {
    sigma_x(qr, t % 10);
    controlled_not(qr, t % 7, (t + 3) % 10);
    phase_kick(qr, (t + 1) % 10, 0.01);
  }
  for (i = 0; i < qr->size; i += 37) checksum += qr->cells[i].state;
  printf("libquantum: checksum=%ld\n", checksum);
  return 0;
}
|}
