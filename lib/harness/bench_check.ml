(* Validator for the committed machine-readable benchmark artifacts.

   The BENCH_*.json files are hand-emitted, so nothing guarantees they
   stay well-formed as the emitters evolve.  [run] parses each file
   with the shared {!Json} reader and checks the schema the downstream
   tooling relies on: the experiment tag, the presence of the per-row
   record arrays, the aggregate (geomean) fields, and — for the
   VM-throughput artifact — that both execution engines are recorded
   along with the baseline block and the speedup summary.  The serve
   artifact additionally pins the width matrix (jobs/sec and latency
   percentiles per domain count).  `make bench-check` (part of `make
   verify`) fails on any violation. *)

open Json

let parse = Json.parse
let field = Json.field

let errs : string list ref = ref []
let bad file msg = errs := Printf.sprintf "%s: %s" file msg :: !errs

let require file obj k =
  match field obj k with
  | Some v -> Some v
  | None -> bad file (Printf.sprintf "missing key %S" k); None

let require_rows file obj k =
  match require file obj k with
  | Some (List (_ :: _ as rows)) -> Some rows
  | Some (List []) -> bad file (Printf.sprintf "%S is empty" k); None
  | Some _ -> bad file (Printf.sprintf "%S is not an array" k); None
  | None -> None

let require_num file obj k =
  match require file obj k with
  | Some (Num _) -> ()
  | Some _ -> bad file (Printf.sprintf "%S is not a number" k)
  | None -> ()

let experiment_tag file obj expected =
  match require file obj "experiment" with
  | Some (Str s) when s = expected -> ()
  | Some (Str s) ->
      bad file (Printf.sprintf "experiment is %S, wanted %S" s expected)
  | Some _ -> bad file "experiment is not a string"
  | None -> ()

(* every row of a record array must carry the listed numeric fields *)
let rows_have file rows keys =
  List.iteri
    (fun i row ->
      List.iter
        (fun k ->
          match field row k with
          | Some (Num _) -> ()
          | Some _ ->
              bad file (Printf.sprintf "row %d: %S is not a number" i k)
          | None -> bad file (Printf.sprintf "row %d: missing %S" i k))
        keys)
    rows

let keys_num file ctx g keys =
  List.iter
    (fun k ->
      match field g k with
      | Some (Num _) -> ()
      | _ -> bad file (Printf.sprintf "%s.%s missing" ctx k))
    keys

let on_off file ctx g = keys_num file ctx g [ "on"; "off" ]

let check_elim file obj =
  experiment_tag file obj "elim-ablation";
  (match require file obj "geomean_overhead" with
  | Some geo ->
      List.iter
        (fun grp ->
          match field geo grp with
          | Some g ->
              keys_num file
                ("geomean_overhead." ^ grp)
                g
                [ "on"; "no_widen"; "off" ]
          | None -> bad file ("geomean_overhead missing " ^ grp))
        [ "shadow_full"; "hash_full"; "shadow_store"; "hash_store" ]
  | None -> ());
  match require_rows file obj "kernels" with
  | Some rows ->
      rows_have file rows
        [ "base_cycles"; "checks_widened"; "checks_coalesced" ];
      List.iteri
        (fun i row ->
          (match field row "checks" with
          | Some g ->
              keys_num file
                (Printf.sprintf "row %d: checks" i)
                g
                [ "on"; "no_widen"; "off" ]
          | None -> bad file (Printf.sprintf "row %d: missing checks" i));
          match field row "meta_loads" with
          | Some g -> on_off file (Printf.sprintf "row %d: meta_loads" i) g
          | None -> bad file (Printf.sprintf "row %d: missing meta_loads" i))
        rows;
      List.iteri
        (fun i row ->
          List.iter
            (fun grp ->
              match field row grp with
              | Some g ->
                  keys_num file
                    (Printf.sprintf "row %d: %s" i grp)
                    g
                    [
                      "on"; "no_widen"; "off"; "overhead_on";
                      "overhead_no_widen"; "overhead_off";
                    ]
              | None -> bad file (Printf.sprintf "row %d: missing %s" i grp))
            [ "shadow_full"; "hash_full"; "shadow_store"; "hash_store" ])
        rows
  | None -> ()

let check_breakdown file obj =
  experiment_tag file obj "overhead-breakdown";
  match require_rows file obj "workloads" with
  | Some rows ->
      rows_have file rows [ "base_cycles" ];
      List.iteri
        (fun i row ->
          match field row "configs" with
          | Some (Obj (_ :: _ as cfgs)) ->
              List.iter
                (fun (cname, c) ->
                  List.iter
                    (fun k ->
                      match field c k with
                      | Some (Num _) -> ()
                      | _ ->
                          bad file
                            (Printf.sprintf "row %d: configs.%s.%s missing" i
                               cname k))
                    [ "cycles"; "check"; "metadata"; "wrapper"; "residual" ])
                cfgs
          | _ -> bad file (Printf.sprintf "row %d: missing configs" i))
        rows
  | None -> ()

let check_vmspeed file obj =
  experiment_tag file obj "vmspeed";
  let engines = [ "closure"; "decode" ] in
  (* the engine axis itself *)
  (match require file obj "engines" with
  | Some (List names) ->
      let names =
        List.filter_map (function Str s -> Some s | _ -> None) names
      in
      List.iter
        (fun want ->
          if not (List.mem want names) then
            bad file (Printf.sprintf "engine %S not recorded" want))
        engines
  | Some _ -> bad file "engines is not an array"
  | None -> ());
  (* the recorded reference the speedups are measured against *)
  (match require file obj "baseline" with
  | Some b -> (
      match field b "rows" with
      | Some (List (_ :: _ as rows)) ->
          rows_have file rows [ "cycles_per_host_sec" ]
      | _ -> bad file "baseline has no rows")
  | None -> ());
  (* the current measurement: rows tagged by engine, plus geomeans *)
  (match require file obj "current" with
  | Some c -> (
      (match field c "geomean_cycles_per_host_sec" with
      | Some _ -> ()
      | None -> bad file "current has no geomean");
      match field c "rows" with
      | Some (List (_ :: _ as rows)) ->
          rows_have file rows
            [ "sim_cycles"; "cycles_per_host_sec"; "speedup_vs_baseline" ];
          List.iter
            (fun want ->
              let covered =
                List.exists
                  (fun r ->
                    match field r "engine" with
                    | Some (Str s) -> s = want
                    | _ -> false)
                  rows
              in
              if not covered then
                bad file (Printf.sprintf "no rows for engine %S" want))
            engines
      | _ -> bad file "current has no rows")
  | None -> ());
  (* per-engine overall speedup summary *)
  match require file obj "speedup_vs_baseline" with
  | Some sp ->
      List.iter
        (fun eng ->
          match field sp eng with
          | Some o -> (
              match field o "overall" with
              | Some (Num _) -> ()
              | _ -> bad file (eng ^ " speedup has no overall geomean"))
          | None -> bad file ("no speedup block for engine " ^ eng))
        engines
  | None -> ()

(* the sustained-load service benchmark: a row per worker-pool width,
   each carrying throughput and latency percentiles, plus the mix and
   loss accounting the acceptance criteria quote *)
let check_serve file obj =
  experiment_tag file obj "serve";
  (match require file obj "jobs_total" with
  | Some (Num _) -> ()
  | Some _ -> bad file "jobs_total is not a number"
  | None -> ());
  (match require file obj "mix" with
  | Some (Obj (_ :: _ as kinds)) ->
      List.iter
        (fun (k, v) ->
          match v with
          | Num _ -> ()
          | _ -> bad file (Printf.sprintf "mix.%s is not a number" k))
        kinds
  | Some _ -> bad file "mix is not an object"
  | None -> ());
  (match require_rows file obj "widths" with
  | Some rows ->
      rows_have file rows
        [
          "jobs"; "wall_seconds"; "jobs_per_sec"; "p50_ms"; "p99_ms";
          "errors"; "lost"; "duplicated";
        ]
  | None -> ());
  require_num file obj "speedup_max_vs_1"

(* the N-scheme matrix: a coverage block pinning the completeness-gap
   story (SoftBound full sees the sub-object overflow, the
   object-granularity schemes must not), plus per-workload per-scheme
   cost records with the attribution buckets *)
let check_schemes file obj =
  experiment_tag file obj "schemes";
  let bool_cell ctx det k =
    match field det k with
    | Some (Bool b) -> Some b
    | Some _ ->
        bad file (Printf.sprintf "%s.%s is not a bool" ctx k);
        None
    | None ->
        bad file (Printf.sprintf "%s: missing cell %s" ctx k);
        None
  in
  (match require_rows file obj "coverage" with
  | Some rows ->
      let cell attack k =
        List.find_map
          (fun row ->
            match (field row "attack", field row "detected") with
            | Some (Str a), Some det when a = attack ->
                bool_cell ("coverage." ^ attack) det k
            | _ -> None)
          rows
      in
      let expect attack k want =
        match cell attack k with
        | Some b when b = want -> ()
        | Some _ ->
            bad file
              (Printf.sprintf "coverage: %s/%s should be %b" attack k want)
        | None ->
            bad file (Printf.sprintf "coverage: no cell %s/%s" attack k)
      in
      (* SoftBound's completeness edge: full checking detects every
         attack class, including the intra-object one... *)
      List.iter
        (fun attack -> expect attack "softbound-full-shadow" true)
        [
          "sub-object-overflow"; "adjacent-heap-overflow"; "heap-underflow";
          "off-by-one-read";
        ];
      (* ...which every whole-object-bounds scheme must miss *)
      List.iter
        (fun k -> expect "sub-object-overflow" k false)
        [ "mscc"; "cguard"; "framer"; "l4-pointer"; "jones-kelly";
          "memcheck-like"; "mudflap-like" ];
      (* store-only checking is blind to the read attack by design *)
      expect "off-by-one-read" "softbound-store-shadow" false
  | None -> ());
  match require_rows file obj "workloads" with
  | Some rows ->
      rows_have file rows [ "base_cycles" ];
      List.iteri
        (fun i row ->
          match field row "schemes" with
          | Some (Obj (_ :: _ as srows)) ->
              List.iter
                (fun (sname, s) ->
                  List.iter
                    (fun k ->
                      match field s k with
                      | Some (Num _) -> ()
                      | _ ->
                          bad file
                            (Printf.sprintf "row %d: schemes.%s.%s missing" i
                               sname k))
                    [
                      "cycles"; "overhead"; "check"; "metadata"; "wrapper";
                      "residual";
                    ];
                  match field s "clean" with
                  | Some (Bool _) -> ()
                  | _ ->
                      bad file
                        (Printf.sprintf "row %d: schemes.%s.clean missing" i
                           sname))
                srows
          | _ -> bad file (Printf.sprintf "row %d: missing schemes" i))
        rows
  | None -> ()

(* the memory artifact: measured resident sets for the paper's two
   facilities plus the related-work schemes' analytic metadata bytes *)
let check_memory file obj =
  experiment_tag file obj "memory";
  match require_rows file obj "workloads" with
  | Some rows ->
      rows_have file rows
        [
          "base_resident"; "hash_resident"; "shadow_resident"; "heap_allocs";
          "cguard_meta_bytes"; "framer_meta_bytes"; "l4_ptr_meta_bytes";
        ]
  | None -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let targets =
  [
    ("BENCH_elim.json", check_elim);
    ("BENCH_breakdown.json", check_breakdown);
    ("BENCH_vmspeed.json", check_vmspeed);
    ("BENCH_serve.json", check_serve);
    ("BENCH_schemes.json", check_schemes);
    ("BENCH_memory.json", check_memory);
  ]

(** Validate every committed benchmark artifact; returns the report and
    whether all checks passed. *)
let run () : string * bool =
  errs := [];
  List.iter
    (fun (file, check) ->
      match read_file file with
      | exception Sys_error m -> bad file ("unreadable: " ^ m)
      | text -> (
          match parse text with
          | exception Bad m -> bad file ("malformed JSON: " ^ m)
          | obj ->
              (* every artifact records the host parallelism it was
                 produced with — the context for any wall-clock or
                 jobs-scaling figure in it *)
              require_num file obj "host_cpus";
              check file obj))
    targets;
  match List.rev !errs with
  | [] ->
      ( Printf.sprintf "bench-check: %d artifacts OK (%s)"
          (List.length targets)
          (String.concat ", " (List.map fst targets)),
        true )
  | es -> (String.concat "\n" es, false)
