(* Validator for the committed machine-readable benchmark artifacts.

   The BENCH_*.json files are hand-emitted (no JSON library in the
   tree), so nothing guarantees they stay well-formed as the emitters
   evolve.  [run] parses each file with a small recursive-descent JSON
   reader and checks the schema the downstream tooling relies on:
   the experiment tag, the presence of the per-row record arrays, the
   aggregate (geomean) fields, and — for the VM-throughput artifact —
   that both execution engines are recorded along with the baseline
   block and the speedup summary.  `make bench-check` (part of `make
   verify`) fails on any violation. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' -> (
          advance ();
          let c = peek () in
          advance ();
          match c with
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              (* keep the escape verbatim; key comparisons are ASCII *)
              Buffer.add_string b "\\u";
              go ()
          | c -> Buffer.add_char b c; go ())
      | '\255' -> fail "unterminated string"
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while is_num (peek ()) do advance () done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- schema checks --- *)

let field obj k =
  match obj with
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let errs : string list ref = ref []
let bad file msg = errs := Printf.sprintf "%s: %s" file msg :: !errs

let require file obj k =
  match field obj k with
  | Some v -> Some v
  | None -> bad file (Printf.sprintf "missing key %S" k); None

let require_rows file obj k =
  match require file obj k with
  | Some (List (_ :: _ as rows)) -> Some rows
  | Some (List []) -> bad file (Printf.sprintf "%S is empty" k); None
  | Some _ -> bad file (Printf.sprintf "%S is not an array" k); None
  | None -> None

let require_num file obj k =
  match require file obj k with
  | Some (Num _) -> ()
  | Some _ -> bad file (Printf.sprintf "%S is not a number" k)
  | None -> ()

let experiment_tag file obj expected =
  match require file obj "experiment" with
  | Some (Str s) when s = expected -> ()
  | Some (Str s) ->
      bad file (Printf.sprintf "experiment is %S, wanted %S" s expected)
  | Some _ -> bad file "experiment is not a string"
  | None -> ()

(* every row of a record array must carry the listed numeric fields *)
let rows_have file rows keys =
  List.iteri
    (fun i row ->
      List.iter
        (fun k ->
          match field row k with
          | Some (Num _) -> ()
          | Some _ ->
              bad file (Printf.sprintf "row %d: %S is not a number" i k)
          | None -> bad file (Printf.sprintf "row %d: missing %S" i k))
        keys)
    rows

let on_off file ctx g =
  List.iter
    (fun k ->
      match field g k with
      | Some (Num _) -> ()
      | _ -> bad file (Printf.sprintf "%s.%s missing" ctx k))
    [ "on"; "off" ]

let check_elim file obj =
  experiment_tag file obj "elim-ablation";
  (match require file obj "geomean_overhead" with
  | Some geo ->
      List.iter
        (fun grp ->
          match field geo grp with
          | Some g -> on_off file ("geomean_overhead." ^ grp) g
          | None -> bad file ("geomean_overhead missing " ^ grp))
        [ "shadow_full"; "hash_full"; "shadow_store"; "hash_store" ]
  | None -> ());
  match require_rows file obj "kernels" with
  | Some rows ->
      rows_have file rows [ "base_cycles" ];
      List.iteri
        (fun i row ->
          List.iter
            (fun k ->
              match field row k with
              | Some g -> on_off file (Printf.sprintf "row %d: %s" i k) g
              | None -> bad file (Printf.sprintf "row %d: missing %s" i k))
            [ "checks"; "meta_loads" ])
        rows;
      List.iteri
        (fun i row ->
          List.iter
            (fun grp ->
              match field row grp with
              | Some g ->
                  List.iter
                    (fun k ->
                      match field g k with
                      | Some (Num _) -> ()
                      | _ ->
                          bad file
                            (Printf.sprintf "row %d: %s.%s missing" i grp k))
                    [ "on"; "off"; "overhead_on"; "overhead_off" ]
              | None -> bad file (Printf.sprintf "row %d: missing %s" i grp))
            [ "shadow_full"; "hash_full"; "shadow_store"; "hash_store" ])
        rows
  | None -> ()

let check_breakdown file obj =
  experiment_tag file obj "overhead-breakdown";
  match require_rows file obj "workloads" with
  | Some rows ->
      rows_have file rows [ "base_cycles" ];
      List.iteri
        (fun i row ->
          match field row "configs" with
          | Some (Obj (_ :: _ as cfgs)) ->
              List.iter
                (fun (cname, c) ->
                  List.iter
                    (fun k ->
                      match field c k with
                      | Some (Num _) -> ()
                      | _ ->
                          bad file
                            (Printf.sprintf "row %d: configs.%s.%s missing" i
                               cname k))
                    [ "cycles"; "check"; "metadata"; "wrapper"; "residual" ])
                cfgs
          | _ -> bad file (Printf.sprintf "row %d: missing configs" i))
        rows
  | None -> ()

let check_vmspeed file obj =
  experiment_tag file obj "vmspeed";
  let engines = [ "closure"; "decode" ] in
  (* the engine axis itself *)
  (match require file obj "engines" with
  | Some (List names) ->
      let names =
        List.filter_map (function Str s -> Some s | _ -> None) names
      in
      List.iter
        (fun want ->
          if not (List.mem want names) then
            bad file (Printf.sprintf "engine %S not recorded" want))
        engines
  | Some _ -> bad file "engines is not an array"
  | None -> ());
  (* the recorded reference the speedups are measured against *)
  (match require file obj "baseline" with
  | Some b -> (
      match field b "rows" with
      | Some (List (_ :: _ as rows)) ->
          rows_have file rows [ "cycles_per_host_sec" ]
      | _ -> bad file "baseline has no rows")
  | None -> ());
  (* the current measurement: rows tagged by engine, plus geomeans *)
  (match require file obj "current" with
  | Some c -> (
      (match field c "geomean_cycles_per_host_sec" with
      | Some _ -> ()
      | None -> bad file "current has no geomean");
      match field c "rows" with
      | Some (List (_ :: _ as rows)) ->
          rows_have file rows
            [ "sim_cycles"; "cycles_per_host_sec"; "speedup_vs_baseline" ];
          List.iter
            (fun want ->
              let covered =
                List.exists
                  (fun r ->
                    match field r "engine" with
                    | Some (Str s) -> s = want
                    | _ -> false)
                  rows
              in
              if not covered then
                bad file (Printf.sprintf "no rows for engine %S" want))
            engines
      | _ -> bad file "current has no rows")
  | None -> ());
  (* per-engine overall speedup summary *)
  match require file obj "speedup_vs_baseline" with
  | Some sp ->
      List.iter
        (fun eng ->
          match field sp eng with
          | Some o -> (
              match field o "overall" with
              | Some (Num _) -> ()
              | _ -> bad file (eng ^ " speedup has no overall geomean"))
          | None -> bad file ("no speedup block for engine " ^ eng))
        engines
  | None -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let targets =
  [
    ("BENCH_elim.json", check_elim);
    ("BENCH_breakdown.json", check_breakdown);
    ("BENCH_vmspeed.json", check_vmspeed);
  ]

(** Validate every committed benchmark artifact; returns the report and
    whether all checks passed. *)
let run () : string * bool =
  errs := [];
  List.iter
    (fun (file, check) ->
      match read_file file with
      | exception Sys_error m -> bad file ("unreadable: " ^ m)
      | text -> (
          match parse text with
          | exception Bad m -> bad file ("malformed JSON: " ^ m)
          | obj -> check file obj))
    targets;
  match List.rev !errs with
  | [] ->
      ( Printf.sprintf "bench-check: %d artifacts OK (%s)"
          (List.length targets)
          (String.concat ", " (List.map fst targets)),
        true )
  | es -> (String.concat "\n" es, false)
