(* Parameter sweep: overhead as a function of problem size.

   Not a figure in the paper, but the paper's cache-miss discussion
   (section 6.3: "the additional memory pressure is contributing to the
   runtime overheads") predicts a size-dependent effect: once a
   benchmark's working set plus its metadata no longer fit the cache,
   the metadata traffic starts costing misses, not just instructions.
   This sweep makes that observable: treeadd's overhead grows with tree
   depth as the 16-bytes-per-pointer shadow entries push the working set
   past the 32 KiB L1, while compress (almost no metadata) stays flat. *)

type point = {
  param : int;
  base_cycles : int;
  overhead_full : float;
  base_miss_rate : float;
  full_miss_rate : float;
}

type sweep = { workload : string; points : point list }

let run_point (w : Workloads.workload) (param : int) : point =
  let m = Runner.compile_workload w in
  let argv = [ string_of_int param ] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let full = Runner.run ~argv (Runner.Softbound Runner.sb_full_shadow) m in
  let miss (r : Interp.Vm.result) =
    float_of_int r.cache_misses
    /. float_of_int (max 1 (r.cache_hits + r.cache_misses))
  in
  {
    param;
    base_cycles = base.stats.Interp.State.cycles;
    overhead_full = Runner.overhead full base;
    base_miss_rate = miss base;
    full_miss_rate = miss full;
  }

let sweeps : (string * int list) list =
  [ ("treeadd", [ 6; 8; 10; 12; 14 ]); ("compress", [ 2; 8; 16; 32 ]) ]

let run () : sweep list =
  List.map
    (fun (name, params) ->
      let w = Option.get (Workloads.find name) in
      { workload = name; points = List.map (run_point w) params })
    sweeps

let render (results : sweep list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Parameter sweep: full-checking overhead vs problem size\n\
     (cache pressure from metadata appears once the working set grows;\n\
     section 6.3's cache-miss observation)\n\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Texttable.render
           ~title:(Printf.sprintf "%s (param = scale argument)" s.workload)
           ~headers:
             [ "param"; "base Mcycles"; "overhead"; "base miss%"; "sb miss%" ]
           (List.map
              (fun p ->
                [
                  string_of_int p.param;
                  Printf.sprintf "%.2f" (float_of_int p.base_cycles /. 1e6);
                  Texttable.pct p.overhead_full;
                  Texttable.pct1 p.base_miss_rate;
                  Texttable.pct1 p.full_miss_rate;
                ])
              s.points));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
