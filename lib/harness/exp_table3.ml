(* Table 3: the Wilander attack suite under SoftBound full and store-only
   checking.

   For each of the 18 attacks we additionally run the program unprotected
   and require that it demonstrably hijacks control flow — otherwise the
   "detection" columns would be meaningless. *)

type row = {
  attack : Attacks.Wilander.attack;
  hijacks_unprotected : bool;
  detected_full : bool;
  detected_store_only : bool;
  (* extension beyond the paper's table: how the baseline tool classes
     fare on the same suite (Wilander reports public tools missing more
     than 50% of these attacks — section 6.2) *)
  detected_jk : bool;
  detected_memcheck : bool;
  detected_mudflap : bool;
}

let stopped verdict =
  (* a baseline "stops" an attack if it flags a violation; a hijack or
     clean exit means the attack went through *)
  Runner.detected verdict

let run_one (a : Attacks.Wilander.attack) : row =
  let m = Softbound.compile a.Attacks.Wilander.source in
  let v s = Runner.verdict_of (Runner.run s m) in
  {
    attack = a;
    hijacks_unprotected =
      (match v Runner.Unprotected with Runner.Hijacked _ -> true | _ -> false);
    detected_full = Runner.detected (v (Runner.Softbound Runner.sb_full_shadow));
    detected_store_only =
      Runner.detected (v (Runner.Softbound Runner.sb_store_shadow));
    detected_jk = stopped (v Runner.Jones_kelly);
    detected_memcheck = stopped (v Runner.Memcheck);
    detected_mudflap = stopped (v Runner.Mudflap);
  }

let run () : row list = List.map run_one Attacks.Wilander.all

let render (rows : row list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 3: Wilander attack suite — SoftBound detection\n";
  let last_group = ref "" in
  let table_rows =
    List.map
      (fun r ->
        let a = r.attack in
        let group =
          if a.Attacks.Wilander.technique = !last_group then ""
          else begin
            last_group := a.technique;
            a.technique
          end
        in
        ignore group;
        [
          string_of_int a.id;
          a.technique;
          a.target;
          (if r.hijacks_unprotected then "hijacked" else "NO-HIJACK?");
          Runner.yes_no r.detected_full;
          Runner.yes_no r.detected_store_only;
          Runner.yes_no r.detected_jk;
          Runner.yes_no r.detected_memcheck;
          Runner.yes_no r.detected_mudflap;
        ])
      rows
  in
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "#"; "technique"; "target"; "unprotected"; "full"; "store";
           "jk"; "memchk"; "mudflap" ]
       table_rows);
  let all_ok =
    List.for_all
      (fun r -> r.hijacks_unprotected && r.detected_full && r.detected_store_only)
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf
       "paper: all 18 detected in both modes  |  reproduced: %s\n"
       (if all_ok then "yes (18/18, all hijack when unprotected)"
        else "NO — see rows above"));
  let count f = List.length (List.filter f rows) in
  Buffer.add_string buf
    (Printf.sprintf
       "baseline tools (extension; Wilander reports public tools missing over \
half): jones-kelly %d/18, memcheck-like %d/18, mudflap-like %d/18\n"
       (count (fun r -> r.detected_jk))
       (count (fun r -> r.detected_memcheck))
       (count (fun r -> r.detected_mudflap)));
  Buffer.contents buf
