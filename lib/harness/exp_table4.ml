(* Table 4: BugBench programs under Valgrind-like, Mudflap-like and
   SoftBound (store-only / full) checking. *)

type row = {
  program : Attacks.Bugbench.program;
  valgrind : bool;
  mudflap : bool;
  sb_store : bool;
  sb_full : bool;
  runs_clean_unprotected : bool;
}

(* The paper's Table 4. *)
let expected = [
  ("go",        (false, false, false, true));
  ("compress",  (false, true,  true,  true));
  ("polymorph", (true,  true,  true,  true));
  ("gzip",      (true,  true,  true,  true));
]

let run_one (p : Attacks.Bugbench.program) : row =
  let m = Softbound.compile p.Attacks.Bugbench.source in
  let d s = Runner.detected (Runner.verdict_of (Runner.run s m)) in
  let un = Runner.verdict_of (Runner.run Runner.Unprotected m) in
  {
    program = p;
    valgrind = d Runner.Memcheck;
    mudflap = d Runner.Mudflap;
    sb_store = d (Runner.Softbound Runner.sb_store_shadow);
    sb_full = d (Runner.Softbound Runner.sb_full_shadow);
    runs_clean_unprotected =
      (match un with Runner.Clean _ -> true | _ -> false);
  }

let run () : row list = List.map run_one Attacks.Bugbench.all

let matches_paper (rows : row list) : bool =
  List.for_all
    (fun r ->
      match List.assoc_opt r.program.Attacks.Bugbench.name expected with
      | Some (v, m, s, f) ->
          r.valgrind = v && r.mudflap = m && r.sb_store = s && r.sb_full = f
      | None -> false)
    rows

let render (rows : row list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4: BugBench detection efficacy (vs. Valgrind- and Mudflap-style tools)\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "benchmark"; "valgrind"; "mudflap"; "sb-store"; "sb-full";
           "silent when unprotected" ]
       (List.map
          (fun r ->
            [
              r.program.Attacks.Bugbench.name;
              Runner.yes_no r.valgrind;
              Runner.yes_no r.mudflap;
              Runner.yes_no r.sb_store;
              Runner.yes_no r.sb_full;
              Runner.yes_no r.runs_clean_unprotected;
            ])
          rows));
  Buffer.add_string buf
    (Printf.sprintf "paper's detection pattern reproduced: %s\n"
       (Runner.yes_no (matches_paper rows)));
  Buffer.contents buf
