(* Sustained-load benchmark for the serve daemon ([BENCH_serve.json]).

   Drives {!Serve.serve} directly through its [read]/[write] interface —
   no process or socket in the way — with a deterministic mixed stream
   of jobs (mostly tiny run jobs against a handful of distinct programs,
   plus a steady trickle of fuzz, profile and adversarial campaigns),
   and measures, per worker width:

   - throughput: jobs completed per host second;
   - loaded latency: per-job enqueue-to-result-row wall time, reported
     as p50/p99.  The queue is bounded (backpressure), so this is
     queue-wait-plus-service under a saturated daemon, not bare service
     time;
   - integrity: error rows, lost ids, duplicated ids — all must be 0
     for the run to mean anything.

   Widths 1, 2 and all-cores are measured so the artifact records how
   the pool scales on the machine at hand.  On a single-core host the
   multi-domain rows measure scheduling overhead, not speedup — the
   [speedup_max_vs_1] field simply reports what happened. *)

type width_row = {
  jobs : int;  (** worker domains *)
  wall_seconds : float;
  jobs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  errors : int;  (** ok:false rows *)
  lost : int;  (** ids submitted but never answered *)
  duplicated : int;  (** ids answered more than once *)
}

(* ------------------------------------------------------------------ *)
(* The job stream                                                       *)
(* ------------------------------------------------------------------ *)

(* Distinct tiny programs so the run stream exercises the content-keyed
   compile/transform caches across several entries, not one hot slot. *)
let run_sources =
  [|
    "int main() { int a[8]; int i; for (i = 0; i < 8; i = i + 1) a[i] = i; \
     return a[5]; }";
    "int main() { int x; int *p; x = 3; p = &x; *p = *p + 4; return x; }";
    "int sum(int *v, int n) { int s; int i; s = 0; for (i = 0; i < n; i = i \
     + 1) s = s + v[i]; return s; } int main() { int a[6]; int i; for (i = \
     0; i < 6; i = i + 1) a[i] = i * 2; return sum(a, 6); }";
    "int main() { char s[16]; int i; for (i = 0; i < 15; i = i + 1) s[i] = \
     'a' + i; s[15] = 0; return s[3]; }";
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); \
     } int main() { return fib(12); }";
    "int main() { int m[4][4]; int i; int j; for (i = 0; i < 4; i = i + 1) \
     for (j = 0; j < 4; j = j + 1) m[i][j] = i * j; return m[3][3]; }";
  |]

let profile_source =
  "int main() { int a[32]; int i; int s; s = 0; for (i = 0; i < 32; i = i \
   + 1) a[i] = i; for (i = 0; i < 32; i = i + 1) s = s + a[i]; return s & \
   127; }"

type kind = K_run | K_fuzz | K_profile | K_adversarial

let kind_name = function
  | K_run -> "run"
  | K_fuzz -> "fuzz"
  | K_profile -> "profile"
  | K_adversarial -> "adversarial"

(* Deterministic mix, position-keyed: ~96.75% run, 2% fuzz, 1% profile,
   0.25% adversarial — small campaigns so one job costs milliseconds,
   not the seconds a CLI-sized campaign would. *)
let kind_of i =
  if i mod 400 = 399 then K_adversarial
  else if i mod 50 = 49 then K_fuzz
  else if i mod 100 = 73 then K_profile
  else K_run

let job_line i : string =
  let base = [ ("id", Json.int i) ] in
  let fields =
    match kind_of i with
    | K_run ->
        base
        @ [
            ("type", Json.Str "run");
            ("source", Json.Str run_sources.(i mod Array.length run_sources));
          ]
    | K_fuzz ->
        base
        @ [
            ("type", Json.Str "fuzz");
            ("seed", Json.int (1 + (i mod 7)));
            ("count", Json.int 1);
          ]
    | K_profile ->
        base
        @ [ ("type", Json.Str "profile"); ("source", Json.Str profile_source) ]
    | K_adversarial ->
        base
        @ [
            ("type", Json.Str "adversarial");
            ("seed", Json.int (1 + (i mod 3)));
            ("count", Json.int 1);
          ]
  in
  Json.to_string (Json.Obj fields)

let mix_counts total =
  let c = [ (K_run, ref 0); (K_fuzz, ref 0); (K_profile, ref 0);
            (K_adversarial, ref 0) ] in
  for i = 0 to total - 1 do
    incr (List.assoc (kind_of i) c)
  done;
  List.map (fun (k, r) -> (kind_name k, !r)) c

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let measure ~total ~jobs : width_row =
  let submit_t = Array.make total 0.0 in
  let done_t = Array.make total 0.0 in
  let seen = Array.make total 0 in
  let errors = ref 0 in
  let next = ref 0 in
  let read () =
    if !next >= total then None
    else begin
      let i = !next in
      incr next;
      submit_t.(i) <- now ();
      Some (job_line i)
    end
  in
  (* [write] runs under the pool's emit lock, so plain mutation is safe *)
  let write line =
    let t = now () in
    match Json.parse line with
    | exception Json.Bad _ -> incr errors
    | row ->
        (match Json.int_field row "id" with
        | Some i when i >= 0 && i < total ->
            seen.(i) <- seen.(i) + 1;
            done_t.(i) <- t
        | _ -> ());
        if Json.bool_field row "ok" <> Some true then incr errors
  in
  let t0 = now () in
  let _st = Serve.serve ~jobs ~cap:256 ~read ~write () in
  let wall = now () -. t0 in
  let lats = ref [] and lost = ref 0 and duplicated = ref 0 in
  for i = 0 to total - 1 do
    match seen.(i) with
    | 0 -> incr lost
    | k ->
        if k > 1 then incr duplicated;
        lats := ((done_t.(i) -. submit_t.(i)) *. 1000.0) :: !lats
  done;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  {
    jobs;
    wall_seconds = wall;
    jobs_per_sec = (if wall > 0.0 then float_of_int total /. wall else 0.0);
    p50_ms = percentile sorted 50.0;
    p99_ms = percentile sorted 99.0;
    errors = !errors;
    lost = !lost;
    duplicated = !duplicated;
  }

let widths () =
  List.sort_uniq compare [ 1; 2; Parutil.available_jobs () ]

let default_total = 10_000

let run ?(quick = false) ?total () : width_row list =
  let total =
    match total with Some t -> t | None -> if quick then 600 else default_total
  in
  (* warm the compile/transform/closure caches so the width rows compare
     scheduling, not first-touch compilation *)
  Array.iter
    (fun src ->
      ignore (Runner.run Runner.Unprotected (Runner.compile_source_cached src));
      ignore
        (Runner.run
           (Runner.Softbound Softbound.Config.default)
           (Runner.compile_source_cached src)))
    run_sources;
  ignore (Runner.compile_source_cached profile_source);
  List.map (fun jobs -> measure ~total ~jobs) (widths ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let speedup_max_vs_1 (rows : width_row list) : float =
  match rows with
  | [] -> 0.0
  | base :: _ ->
      let best =
        List.fold_left (fun a r -> max a r.jobs_per_sec) 0.0 rows
      in
      if base.jobs_per_sec > 0.0 then best /. base.jobs_per_sec else 0.0

let render ?total (rows : width_row list) : string =
  let total = Option.value total ~default:default_total in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "serve sustained load: %d mixed jobs (%s) per width\n" total
       (String.concat ", "
          (List.map
             (fun (k, n) -> Printf.sprintf "%s %d" k n)
             (mix_counts total))));
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "jobs"; "wall s"; "jobs/s"; "p50 ms"; "p99 ms"; "err"; "lost";
           "dup" ]
       (List.map
          (fun r ->
            [
              string_of_int r.jobs;
              Printf.sprintf "%.2f" r.wall_seconds;
              Printf.sprintf "%.0f" r.jobs_per_sec;
              Printf.sprintf "%.2f" r.p50_ms;
              Printf.sprintf "%.2f" r.p99_ms;
              string_of_int r.errors;
              string_of_int r.lost;
              string_of_int r.duplicated;
            ])
          rows));
  Buffer.add_string buf
    (Printf.sprintf "best width vs 1 worker: %.2fx (%d core%s available)\n"
       (speedup_max_vs_1 rows)
       (Parutil.available_jobs ())
       (if Parutil.available_jobs () = 1 then "" else "s"));
  Buffer.contents buf

(** Machine-readable artifact.  Host-timing-dependent values all sit on
    lines carrying one of the substrings [wall_seconds], [jobs_per_sec],
    [p50_ms], [p99_ms] or [speedup], so a determinism filter can strip
    them and compare the rest. *)
let to_json ?total (rows : width_row list) : string =
  let total = Option.value total ~default:default_total in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cpus\": %d,\n" (Parutil.available_jobs ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs_total\": %d,\n" total);
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Parutil.available_jobs ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"mix\": { %s },\n"
       (String.concat ", "
          (List.map
             (fun (k, n) -> Printf.sprintf "%S: %d" k n)
             (mix_counts total))));
  Buffer.add_string buf "  \"widths\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"jobs\": %d,\n\
           \      \"wall_seconds\": %.6f,\n\
           \      \"jobs_per_sec\": %.3f,\n\
           \      \"p50_ms\": %.3f,\n\
           \      \"p99_ms\": %.3f,\n\
           \      \"errors\": %d, \"lost\": %d, \"duplicated\": %d }%s\n"
           r.jobs r.wall_seconds r.jobs_per_sec r.p50_ms r.p99_ms r.errors
           r.lost r.duplicated
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_max_vs_1\": %.3f\n" (speedup_max_vs_1 rows));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
