(* VM throughput: simulated cycles executed per host wall-clock second.

   Every artifact in this repo is bottlenecked on the host speed of the
   IR interpreter, so the engine's throughput is tracked as a number
   ([BENCH_vmspeed.json]), not a claim.  Each row times [iters] complete
   runs of one kernel under one scheme on one engine — unprotected
   exercises the bare dispatch/memory fast path, softbound-full-hash
   additionally hammers the metadata hash table; the closure engine runs
   threaded code compiled at load time, the decode engine walks the
   pre-decoded instruction arrays — and reports simulated-cycles-per-
   host-second.  Simulated cycle counts are deterministic, engine-
   independent, and golden-checked elsewhere; only the host-seconds
   fields vary from run to run (the vmspeed smoke target compares
   everything *except* those).

   The recorded baseline below was measured with this same harness on
   the PR 4 engine (pre-decoded dispatch, word-granular memory — the
   commit this PR builds on), so the JSON carries both sides of the
   before/after comparison, and every current row additionally carries
   its own [speedup_vs_baseline] against the matching baseline row. *)

type row = {
  name : string;
  scheme : string;
  engine : string;
  sim_cycles : int;  (** cycles of one run — deterministic *)
  runs : int;  (** timed iterations behind [host_seconds] *)
  host_seconds : float;
}

let cps (r : row) : float =
  if r.host_seconds <= 0.0 then 0.0
  else float_of_int r.sim_cycles *. float_of_int r.runs /. r.host_seconds

let schemes : (string * Runner.scheme) list =
  [
    ("unprotected", Runner.Unprotected);
    ("softbound-full-hash", Runner.Softbound Runner.sb_full_hash);
  ]

let scheme_names = List.map fst schemes

let engines : (string * Softbound.Config.engine) list =
  [
    ("closure", Softbound.Config.Eng_closure);
    ("decode", Softbound.Config.Eng_decode);
  ]

let engine_names = List.map fst engines

(* ------------------------------------------------------------------ *)
(* Recorded baseline                                                    *)
(* ------------------------------------------------------------------ *)

(** Throughput of the PR 4 engine (pre-decoded dispatch, word-granular
    memory, direct-mapped metadata inline cache — before the
    threaded-code compiler and the flat shadow space), measured by this
    harness at full workload sizes, iters=2.  Units: simulated cycles
    per host second. *)
let baseline_label = "pre-decoded dispatch engine (PR 4), full args, iters=2"

let baseline : (string * string * float) list =
  [
    ("go", "unprotected", 8.376137e+07);
    ("go", "softbound-full-hash", 8.087095e+07);
    ("lbm", "unprotected", 8.926850e+07);
    ("lbm", "softbound-full-hash", 9.265726e+07);
    ("hmmer", "unprotected", 6.049091e+07);
    ("hmmer", "softbound-full-hash", 5.908649e+07);
    ("compress", "unprotected", 5.688519e+07);
    ("compress", "softbound-full-hash", 5.682227e+07);
    ("ijpeg", "unprotected", 9.910587e+07);
    ("ijpeg", "softbound-full-hash", 9.472003e+07);
    ("bh", "unprotected", 4.760601e+07);
    ("bh", "softbound-full-hash", 5.312291e+07);
    ("tsp", "unprotected", 6.064308e+07);
    ("tsp", "softbound-full-hash", 6.400811e+07);
    ("libquantum", "unprotected", 5.274694e+07);
    ("libquantum", "softbound-full-hash", 5.424285e+07);
    ("perimeter", "unprotected", 5.391860e+07);
    ("perimeter", "softbound-full-hash", 6.990481e+07);
    ("health", "unprotected", 4.026240e+07);
    ("health", "softbound-full-hash", 6.029398e+07);
    ("bisort", "unprotected", 3.519432e+07);
    ("bisort", "softbound-full-hash", 5.380921e+07);
    ("mst", "unprotected", 5.994314e+07);
    ("mst", "softbound-full-hash", 6.050445e+07);
    ("li", "unprotected", 3.298558e+07);
    ("li", "softbound-full-hash", 5.453920e+07);
    ("em3d", "unprotected", 5.035378e+07);
    ("em3d", "softbound-full-hash", 7.972125e+07);
    ("treeadd", "unprotected", 2.888976e+07);
    ("treeadd", "softbound-full-hash", 4.928997e+07);
  ]

let baseline_cps ~name ~scheme =
  List.find_map
    (fun (n, s, v) -> if n = name && s = scheme then Some v else None)
    baseline

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let measure_one ~quick ~iters (w : Workloads.workload)
    ((sname, scheme) : string * Runner.scheme)
    ((ename, eng) : string * Softbound.Config.engine) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let cfg = { Interp.State.default_config with engine = eng } in
  (* untimed warm run: fills the transform and closure-compile caches so
     the timed loop measures the interpreter, not the pipeline *)
  let r0 = Runner.run ~argv ~cfg scheme m in
  Runner.check_clean ~quick ~workload:w.Workloads.name
    ~scheme:(sname ^ "/" ^ ename) r0;
  let t0 = now () in
  for _ = 1 to iters do
    ignore (Runner.run ~argv ~cfg scheme m)
  done;
  let t1 = now () in
  {
    name = w.Workloads.name;
    scheme = sname;
    engine = ename;
    sim_cycles = r0.Interp.Vm.stats.Interp.State.cycles;
    runs = iters;
    host_seconds = t1 -. t0;
  }

let run ?(quick = false) ?(iters = 1) ?(jobs = 1) () : row list =
  let tasks =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun s -> List.map (fun e -> (w, s, e)) engines)
          schemes)
      Workloads.all
  in
  (* transform everything up front (serially) so parallel timing rows
     never serialize on the transform-cache mutex mid-measurement *)
  List.iter
    (fun (w, (_, scheme), _) ->
      match scheme with
      | Runner.Softbound opts ->
          ignore (Runner.instrument_cached ~opts (Runner.compile_workload w))
      | _ -> ignore (Runner.compile_workload w))
    tasks;
  Parutil.parmap ~jobs (fun (w, s, e) -> measure_one ~quick ~iters w s e) tasks

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)
(* ------------------------------------------------------------------ *)

let geomean = function
  | [] -> 0.0
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
        /. float_of_int (List.length xs))

let geomean_cps_of ~engine ~scheme (rows : row list) : float =
  geomean
    (List.filter_map
       (fun r ->
         if r.scheme = scheme && r.engine = engine then Some (cps r) else None)
       rows)

let geomean_cps_baseline ~scheme : float option =
  match List.filter (fun (_, s, _) -> s = scheme) baseline with
  | [] -> None
  | xs -> Some (geomean (List.map (fun (_, _, v) -> v) xs))

(** Per-row speedup over the matching recorded-baseline row. *)
let row_speedup (r : row) : float option =
  match baseline_cps ~name:r.name ~scheme:r.scheme with
  | Some b when b > 0.0 -> Some (cps r /. b)
  | _ -> None

(** Geomean speedup of one engine's rows over the recorded baseline for
    one scheme; [None] when no baseline is recorded. *)
let speedup_of ~engine ~scheme (rows : row list) : float option =
  match geomean_cps_baseline ~scheme with
  | None -> None
  | Some b when b <= 0.0 -> None
  | Some b -> Some (geomean_cps_of ~engine ~scheme rows /. b)

let overall_speedup ~engine (rows : row list) : float option =
  let per =
    List.filter_map (fun s -> speedup_of ~engine ~scheme:s rows) scheme_names
  in
  if List.length per <> List.length scheme_names then None
  else Some (geomean per)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let mcps x = Printf.sprintf "%.1f" (x /. 1e6)

let render (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "VM throughput: simulated Mcycles per host second (higher is faster)\n";
  let kernels =
    List.sort_uniq compare (List.map (fun r -> r.name) rows)
  in
  (* keep registry order, not alphabetical *)
  let kernels =
    List.filter (fun w -> List.mem w kernels) Workloads.names
  in
  List.iter
    (fun e ->
      if List.exists (fun r -> r.engine = e) rows then begin
        Buffer.add_string buf (Printf.sprintf "\nengine: %s\n" e);
        Buffer.add_string buf
          (Texttable.render
             ~headers:
               ([ "benchmark" ]
               @ List.concat_map (fun s -> [ s; "vs base" ]) scheme_names)
             (List.map
                (fun k ->
                  let cells =
                    List.concat_map
                      (fun s ->
                        match
                          List.find_opt
                            (fun r ->
                              r.name = k && r.scheme = s && r.engine = e)
                            rows
                        with
                        | None -> [ "-"; "-" ]
                        | Some r -> (
                            [ mcps (cps r) ]
                            @
                            match row_speedup r with
                            | Some x -> [ Printf.sprintf "%.2fx" x ]
                            | None -> [ "-" ]))
                      scheme_names
                  in
                  k :: cells)
                kernels));
        Buffer.add_string buf "geomean Mcycles/host-second:\n";
        List.iter
          (fun s ->
            Buffer.add_string buf
              (Printf.sprintf "  %-20s %s%s\n" s
                 (mcps (geomean_cps_of ~engine:e ~scheme:s rows))
                 (match speedup_of ~engine:e ~scheme:s rows with
                 | Some x -> Printf.sprintf "  (%.2fx vs recorded baseline)" x
                 | None -> "  (no recorded baseline)")))
          scheme_names;
        match overall_speedup ~engine:e rows with
        | Some x ->
            Buffer.add_string buf
              (Printf.sprintf
                 "overall geomean speedup vs baseline (%s): %.2fx\n" e x)
        | None -> ()
      end)
    engine_names;
  Buffer.contents buf

(** Machine-readable artifact ([BENCH_vmspeed.json]).  Host-timing
    dependent lines all carry one of the substrings [host_seconds],
    [cycles_per_host_sec] or [speedup], so the smoke target can strip
    them and byte-compare the rest across regenerations. *)
let to_json ?(quick = false) ?(iters = 1) (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"vmspeed\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cpus\": %d,\n" (Parutil.available_jobs ()));
  Buffer.add_string buf
    "  \"unit\": \"simulated cycles per host second\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick\": %b,\n  \"iters\": %d,\n" quick iters);
  Buffer.add_string buf
    (Printf.sprintf "  \"engines\": [%s],\n"
       (String.concat ", " (List.map (Printf.sprintf "%S") engine_names)));
  (* recorded baseline (constants — deterministic) *)
  (match baseline with
  | [] -> Buffer.add_string buf "  \"baseline\": null,\n"
  | b ->
      Buffer.add_string buf
        (Printf.sprintf "  \"baseline\": {\n    \"label\": %S,\n    \"rows\": [\n"
           baseline_label);
      List.iteri
        (fun i (n, s, v) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"name\": %S, \"scheme\": %S, \
                \"cycles_per_host_sec\": %.6e }%s\n"
               n s v
               (if i = List.length b - 1 then "" else ",")))
        b;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"geomean_cycles_per_host_sec\": { %s }\n  },\n"
           (String.concat ", "
              (List.map
                 (fun s ->
                   Printf.sprintf "%S: %.6e" s
                     (Option.value ~default:0.0 (geomean_cps_baseline ~scheme:s)))
                 scheme_names))));
  Buffer.add_string buf "  \"current\": {\n    \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"name\": %S, \"scheme\": %S, \"engine\": %S,\n\
           \        \"sim_cycles\": %d, \"runs\": %d,\n\
           \        \"host_seconds\": %.6f,\n\
           \        \"cycles_per_host_sec\": %.6e,\n\
           \        \"speedup_vs_baseline\": %s }%s\n"
           r.name r.scheme r.engine r.sim_cycles r.runs r.host_seconds (cps r)
           (match row_speedup r with
           | Some x -> Printf.sprintf "%.3f" x
           | None -> "null")
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf
    (* single line: the vmspeed-smoke determinism filter drops
       host-timing-dependent lines by substring, so every value derived
       from host time must sit on a line carrying its key *)
    (Printf.sprintf "    \"geomean_cycles_per_host_sec\": { %s }\n  },\n"
       (String.concat ", "
          (List.map
             (fun e ->
               Printf.sprintf "%S: { %s }" e
                 (String.concat ", "
                    (List.map
                       (fun s ->
                         Printf.sprintf "%S: %.6e" s
                           (geomean_cps_of ~engine:e ~scheme:s rows))
                       scheme_names)))
             engine_names)));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_vs_baseline\": { %s }\n"
       (String.concat ", "
          (List.map
             (fun e ->
               Printf.sprintf "%S: { %s }" e
                 (String.concat ", "
                    (List.map
                       (fun s ->
                         Printf.sprintf "%S: %.3f" s
                           (Option.value ~default:0.0
                              (speedup_of ~engine:e ~scheme:s rows)))
                       scheme_names
                    @ [
                        Printf.sprintf "\"overall\": %.3f"
                          (Option.value ~default:0.0
                             (overall_speedup ~engine:e rows));
                      ])))
             engine_names)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
