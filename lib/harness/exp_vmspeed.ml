(* VM throughput: simulated cycles executed per host wall-clock second.

   Every artifact in this repo is bottlenecked on the host speed of the
   IR interpreter, so the engine's throughput is tracked as a number
   ([BENCH_vmspeed.json]), not a claim.  Each row times [iters] complete
   runs of one kernel under one scheme — unprotected exercises the bare
   dispatch/memory fast path, softbound-full-hash additionally hammers
   the metadata hash table — and reports simulated-cycles-per-host-
   second.  Simulated cycle counts are deterministic and golden-checked
   elsewhere; only the host-seconds fields vary from run to run (the
   vmspeed smoke target compares everything *except* those).

   The recorded baseline below was measured with this same harness on
   the pre-fast-path engine (the commit this PR builds on), so the JSON
   carries both sides of the before/after comparison. *)

type row = {
  name : string;
  scheme : string;
  sim_cycles : int;  (** cycles of one run — deterministic *)
  runs : int;  (** timed iterations behind [host_seconds] *)
  host_seconds : float;
}

let cps (r : row) : float =
  if r.host_seconds <= 0.0 then 0.0
  else float_of_int r.sim_cycles *. float_of_int r.runs /. r.host_seconds

let schemes : (string * Runner.scheme) list =
  [
    ("unprotected", Runner.Unprotected);
    ("softbound-full-hash", Runner.Softbound Runner.sb_full_hash);
  ]

let scheme_names = List.map fst schemes

(* ------------------------------------------------------------------ *)
(* Recorded baseline                                                    *)
(* ------------------------------------------------------------------ *)

(** Throughput of the engine *before* the fast-path overhaul
    (word-granular memory, pre-decoded dispatch, metadata inline
    cache), measured by this harness at full workload sizes, iters=2.
    Units: simulated cycles per host second. *)
let baseline_label = "pre-fastpath engine (PR base), full args, iters=2"

let baseline : (string * string * float) list =
  [
    ("go", "unprotected", 4.814211e+07);
    ("go", "softbound-full-hash", 3.338369e+07);
    ("lbm", "unprotected", 2.923794e+07);
    ("lbm", "softbound-full-hash", 3.477493e+07);
    ("hmmer", "unprotected", 4.152148e+07);
    ("hmmer", "softbound-full-hash", 3.957738e+07);
    ("compress", "unprotected", 3.646018e+07);
    ("compress", "softbound-full-hash", 3.141164e+07);
    ("ijpeg", "unprotected", 5.278668e+07);
    ("ijpeg", "softbound-full-hash", 5.034386e+07);
    ("bh", "unprotected", 1.535936e+07);
    ("bh", "softbound-full-hash", 2.006577e+07);
    ("tsp", "unprotected", 2.010571e+07);
    ("tsp", "softbound-full-hash", 2.370609e+07);
    ("libquantum", "unprotected", 1.918444e+07);
    ("libquantum", "softbound-full-hash", 2.488246e+07);
    ("perimeter", "unprotected", 2.894477e+07);
    ("perimeter", "softbound-full-hash", 2.540638e+07);
    ("health", "unprotected", 1.177489e+07);
    ("health", "softbound-full-hash", 2.106450e+07);
    ("bisort", "unprotected", 1.106336e+07);
    ("bisort", "softbound-full-hash", 2.228283e+07);
    ("mst", "unprotected", 3.085636e+07);
    ("mst", "softbound-full-hash", 3.781222e+07);
    ("li", "unprotected", 1.550901e+07);
    ("li", "softbound-full-hash", 2.778647e+07);
    ("em3d", "unprotected", 2.134476e+07);
    ("em3d", "softbound-full-hash", 3.242380e+07);
    ("treeadd", "unprotected", 1.853101e+07);
    ("treeadd", "softbound-full-hash", 3.075227e+07);
  ]

let baseline_cps ~name ~scheme =
  List.find_map
    (fun (n, s, v) -> if n = name && s = scheme then Some v else None)
    baseline

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let measure_one ~quick ~iters (w : Workloads.workload)
    ((sname, scheme) : string * Runner.scheme) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  (* untimed warm run: fills the compile/transform caches so the timed
     loop measures the interpreter, not the pipeline *)
  let r0 = Runner.run ~argv scheme m in
  Runner.check_clean ~quick ~workload:w.Workloads.name ~scheme:sname r0;
  let t0 = now () in
  for _ = 1 to iters do
    ignore (Runner.run ~argv scheme m)
  done;
  let t1 = now () in
  {
    name = w.Workloads.name;
    scheme = sname;
    sim_cycles = r0.Interp.Vm.stats.Interp.State.cycles;
    runs = iters;
    host_seconds = t1 -. t0;
  }

let run ?(quick = false) ?(iters = 1) ?(jobs = 1) () : row list =
  let tasks =
    List.concat_map
      (fun w -> List.map (fun s -> (w, s)) schemes)
      Workloads.all
  in
  (* transform everything up front (serially) so parallel timing rows
     never serialize on the transform-cache mutex mid-measurement *)
  List.iter
    (fun (w, (_, scheme)) ->
      match scheme with
      | Runner.Softbound opts ->
          ignore (Runner.instrument_cached ~opts (Runner.compile_workload w))
      | _ -> ignore (Runner.compile_workload w))
    tasks;
  Parutil.parmap ~jobs (fun (w, s) -> measure_one ~quick ~iters w s) tasks

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)
(* ------------------------------------------------------------------ *)

let geomean = function
  | [] -> 0.0
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log (max 1e-9 x)) 0.0 xs
        /. float_of_int (List.length xs))

let geomean_cps_of ~scheme (rows : row list) : float =
  geomean
    (List.filter_map
       (fun r -> if r.scheme = scheme then Some (cps r) else None)
       rows)

let geomean_cps_baseline ~scheme : float option =
  match List.filter (fun (_, s, _) -> s = scheme) baseline with
  | [] -> None
  | xs -> Some (geomean (List.map (fun (_, _, v) -> v) xs))

(** Geomean speedup of [rows] over the recorded baseline for one
    scheme; [None] when no baseline is recorded. *)
let speedup_of ~scheme (rows : row list) : float option =
  match geomean_cps_baseline ~scheme with
  | None -> None
  | Some b when b <= 0.0 -> None
  | Some b -> Some (geomean_cps_of ~scheme rows /. b)

let overall_speedup (rows : row list) : float option =
  let per = List.filter_map (fun s -> speedup_of ~scheme:s rows) scheme_names in
  if List.length per <> List.length scheme_names then None
  else Some (geomean per)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let mcps x = Printf.sprintf "%.1f" (x /. 1e6)

let render (rows : row list) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "VM throughput: simulated Mcycles per host second (higher is faster)\n";
  let kernels =
    List.sort_uniq compare (List.map (fun r -> r.name) rows)
  in
  (* keep registry order, not alphabetical *)
  let kernels =
    List.filter (fun w -> List.mem w kernels) Workloads.names
  in
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         ([ "benchmark" ]
         @ List.concat_map
             (fun s -> [ s; "vs base" ])
             scheme_names)
       (List.map
          (fun k ->
            let cells =
              List.concat_map
                (fun s ->
                  match
                    List.find_opt (fun r -> r.name = k && r.scheme = s) rows
                  with
                  | None -> [ "-"; "-" ]
                  | Some r -> (
                      let c = cps r in
                      [ mcps c ]
                      @
                      match baseline_cps ~name:k ~scheme:s with
                      | Some b when b > 0.0 ->
                          [ Printf.sprintf "%.2fx" (c /. b) ]
                      | _ -> [ "-" ]))
                scheme_names
            in
            k :: cells)
          kernels));
  Buffer.add_string buf "\ngeomean Mcycles/host-second:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %s%s\n" s
           (mcps (geomean_cps_of ~scheme:s rows))
           (match speedup_of ~scheme:s rows with
           | Some x -> Printf.sprintf "  (%.2fx vs recorded baseline)" x
           | None -> "  (no recorded baseline)")))
    scheme_names;
  (match overall_speedup rows with
  | Some x ->
      Buffer.add_string buf
        (Printf.sprintf "\noverall geomean speedup vs baseline: %.2fx\n" x)
  | None -> ());
  Buffer.contents buf

(** Machine-readable artifact ([BENCH_vmspeed.json]).  Host-timing
    dependent lines all carry one of the substrings [host_seconds],
    [cycles_per_host_sec] or [speedup], so the smoke target can strip
    them and byte-compare the rest across regenerations. *)
let to_json ?(quick = false) ?(iters = 1) (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"vmspeed\",\n";
  Buffer.add_string buf
    "  \"unit\": \"simulated cycles per host second\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick\": %b,\n  \"iters\": %d,\n" quick iters);
  (* recorded baseline (constants — deterministic) *)
  (match baseline with
  | [] -> Buffer.add_string buf "  \"baseline\": null,\n"
  | b ->
      Buffer.add_string buf
        (Printf.sprintf "  \"baseline\": {\n    \"label\": %S,\n    \"rows\": [\n"
           baseline_label);
      List.iteri
        (fun i (n, s, v) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"name\": %S, \"scheme\": %S, \
                \"cycles_per_host_sec\": %.6e }%s\n"
               n s v
               (if i = List.length b - 1 then "" else ",")))
        b;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"geomean_cycles_per_host_sec\": { %s }\n  },\n"
           (String.concat ", "
              (List.map
                 (fun s ->
                   Printf.sprintf "%S: %.6e" s
                     (Option.value ~default:0.0 (geomean_cps_baseline ~scheme:s)))
                 scheme_names))));
  Buffer.add_string buf "  \"current\": {\n    \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"name\": %S, \"scheme\": %S,\n\
           \        \"sim_cycles\": %d, \"runs\": %d,\n\
           \        \"host_seconds\": %.6f,\n\
           \        \"cycles_per_host_sec\": %.6e }%s\n"
           r.name r.scheme r.sim_cycles r.runs r.host_seconds (cps r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"geomean_cycles_per_host_sec\": { %s }\n  },\n"
       (String.concat ", "
          (List.map
             (fun s ->
               Printf.sprintf "%S: %.6e" s (geomean_cps_of ~scheme:s rows))
             scheme_names)));
  (match overall_speedup rows with
  | None -> Buffer.add_string buf "  \"speedup_vs_baseline\": null\n"
  | Some overall ->
      Buffer.add_string buf
        (Printf.sprintf "  \"speedup_vs_baseline\": { %s, \"overall\": %.3f }\n"
           (String.concat ", "
              (List.map
                 (fun s ->
                   Printf.sprintf "%S: %.3f" s
                     (Option.value ~default:0.0 (speedup_of ~scheme:s rows)))
                 scheme_names))
           overall));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
