(* Single-run check-level profiling: instrument a module, run it with
   the observability collector on, and assemble a report attributing
   executed checks / metadata operations (and their cycle deltas) to
   transform-time site ids, wrapper calls, per-segment cache traffic,
   and the static site census (assigned / surviving / elided).

   The [softbound_cli profile] subcommand is a thin shell around this
   module. *)

module Ir = Sbir.Ir
module S = Interp.State

type t = {
  label : string;
  opts : Softbound.Config.options;
  sites_assigned : int;  (** ids handed out by the transformation *)
  sites : Obs.site_info list;  (** surviving sites, ascending id *)
  widened : int;
      (** static count of loop-widened span checks Elim emitted *)
  coalesced : int;
      (** static count of per-iteration checks folded into in-block
          coalesced spans (members beyond the first) *)
  base : Interp.Vm.result option;  (** unprotected baseline run *)
  result : Interp.Vm.result;  (** the instrumented run *)
}

let profile ?(label = "program") ?(opts = Softbound.Config.default)
    ?(cfg = S.default_config) ?(argv = []) ?(inputs = [])
    ?(with_baseline = true) (m : Ir.modul) : t =
  let m', sites_assigned = Runner.instrument_cached ~opts m in
  let cfg = { cfg with S.argv; inputs; obs_enabled = true } in
  let base = if with_baseline then Some (Interp.Engine.run ~cfg m) else None in
  let run_cfg =
    {
      cfg with
      S.meta = Some (Softbound.facility_of opts.Softbound.Config.facility);
      store_only = opts.Softbound.Config.mode = Softbound.Config.Store_only;
    }
  in
  let result = Interp.Engine.run ~cfg:run_cfg m' in
  let widened = ref 0 and coalesced = ref 0 in
  Ir.iter_funcs m' (fun f ->
      widened := !widened + Softbound.Elim.count_widened f;
      coalesced := !coalesced + Softbound.Elim.count_coalesced f);
  {
    label;
    opts;
    sites_assigned;
    sites = Obs.sites_of_modul m';
    widened = !widened;
    coalesced = !coalesced;
    base;
    result;
  }

(* ------------------------------------------------------------------ *)
(* Derived figures                                                      *)
(* ------------------------------------------------------------------ *)

(** Cycles recorded at transform-time sites of kind [k] — excludes the
    runtime-originated site-0 bucket, which the wrapper accounting
    already covers (so the breakdown partition does not double-count). *)
let site_kind_cycles (o : Obs.t) k =
  Obs.kind_cycles o k - Obs.site_cycles o k 0

let site_kind_count (o : Obs.t) k =
  Obs.kind_count o k - Obs.site_count o k 0

let check_cycles (p : t) =
  let o = p.result.Interp.Vm.obs in
  site_kind_cycles o Obs.KCheck + site_kind_cycles o Obs.KCheckFptr

let meta_cycles (p : t) =
  let o = p.result.Interp.Vm.obs in
  site_kind_cycles o Obs.KMetaLoad + site_kind_cycles o Obs.KMetaStore

let wrapper_cycles (p : t) = Obs.wrapper_cycles p.result.Interp.Vm.obs

let total_cycles (p : t) = p.result.Interp.Vm.stats.S.cycles

let base_cycles (p : t) =
  match p.base with
  | Some b -> Some b.Interp.Vm.stats.S.cycles
  | None -> None

(** Overhead cycles not attributed to checks, metadata operations, or
    wrappers: memory-system effects (cache pressure from metadata
    traffic on program accesses), metadata-propagation moves, and the
    extended calling convention.  Meaningless without a baseline. *)
let residual_cycles (p : t) =
  match base_cycles p with
  | None -> None
  | Some b ->
      Some
        (total_cycles p - b - check_cycles p - meta_cycles p
        - wrapper_cycles p)

let attributed_fraction (p : t) =
  Obs.attributed_fraction p.result.Interp.Vm.obs

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render ?(top = 10) (p : t) : string =
  let buf = Buffer.create 4096 in
  let o = p.result.Interp.Vm.obs in
  let st = p.result.Interp.Vm.stats in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "profile: %s  [%s/%s%s]\n" p.label
    (Softbound.Config.mode_name p.opts.Softbound.Config.mode)
    (Softbound.Config.facility_name p.opts.Softbound.Config.facility)
    (if p.opts.Softbound.Config.eliminate_checks then "" else ", no-elim");
  add "outcome: %s\n" (S.string_of_outcome p.result.Interp.Vm.outcome);
  (match base_cycles p with
  | Some b when b > 0 ->
      add "cycles: %d (baseline %d, overhead %s)\n" (total_cycles p) b
        (pct (float_of_int (total_cycles p - b) /. float_of_int b))
  | _ -> add "cycles: %d\n" (total_cycles p));
  let surviving = List.length p.sites in
  add "sites: %d assigned, %d surviving, %d elided by Elim\n"
    p.sites_assigned surviving
    (p.sites_assigned - surviving);
  if p.opts.Softbound.Config.eliminate_checks then
    add "widening: %d checks_widened, %d checks_coalesced\n" p.widened
      p.coalesced;
  add "\nper-kind dynamic counts (site-attributed + runtime):\n";
  List.iter
    (fun k ->
      add "  %-11s %10d ops  %12d cycles   (+ runtime: %d ops, %d cycles)\n"
        (Obs.kind_name k)
        (site_kind_count o k) (site_kind_cycles o k)
        (Obs.site_count o k 0) (Obs.site_cycles o k 0))
    Obs.all_kinds;
  let site_a, wrap_a, rt_a = Obs.attribution o in
  add
    "attribution: %d site / %d wrapper-context / %d runtime  (%s attributed)\n"
    site_a wrap_a rt_a
    (pct (attributed_fraction p));
  (* hottest sites *)
  let info =
    let h = Hashtbl.create 64 in
    List.iter (fun (si : Obs.site_info) -> Hashtbl.replace h si.Obs.si_id si)
      p.sites;
    h
  in
  let hot =
    Obs.per_site o
    |> List.filter (fun (s, _, _) -> s > 0)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    |> List.filteri (fun i _ -> i < top)
  in
  if hot <> [] then begin
    add "\nhottest sites (by attributed cycles):\n";
    List.iter
      (fun (s, c, cy) ->
        let where =
          match Hashtbl.find_opt info s with
          | Some si ->
              Printf.sprintf "%s B%d %s" si.Obs.si_func si.Obs.si_block
                (Obs.kind_name si.Obs.si_kind)
          | None -> "(elided?)"
        in
        add "  site %-5d %10d ops  %12d cycles   %s\n" s c cy where)
      hot
  end;
  let wr = Obs.wrapper_stats o in
  if wr <> [] then begin
    add "\nwrapper calls (inclusive cycle deltas):\n";
    List.iter
      (fun (n, c, cy) -> add "  %-24s %8d calls  %12d cycles\n" n c cy)
      wr
  end;
  add "\nmetadata table: %d probes, %d resizes\n" st.S.ht_probes
    st.S.ht_resizes;
  add "\ncache accesses by segment (hit/miss):\n";
  List.iter
    (fun (name, h, m) ->
      if h + m > 0 then
        add "  %-10s %12d / %-12d (%s hit)\n" name h m
          (pct (float_of_int h /. float_of_int (h + m))))
    (Obs.seg_stats o);
  (match residual_cycles p with
  | Some r ->
      add "\noverhead breakdown: check %d, metadata %d, wrapper %d, \
           residual %d cycles\n"
        (check_cycles p) (meta_cycles p) (wrapper_cycles p) r
  | None -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export                                                          *)
(* ------------------------------------------------------------------ *)

let to_json (p : t) : string =
  let buf = Buffer.create 4096 in
  let o = p.result.Interp.Vm.obs in
  let st = p.result.Interp.Vm.stats in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"profile\": \"%s\",\n" p.label;
  add "  \"mode\": \"%s\",\n  \"facility\": \"%s\",\n  \"elim\": %b,\n"
    (Softbound.Config.mode_name p.opts.Softbound.Config.mode)
    (Softbound.Config.facility_name p.opts.Softbound.Config.facility)
    p.opts.Softbound.Config.eliminate_checks;
  add "  \"outcome\": \"%s\",\n"
    (String.escaped (S.string_of_outcome p.result.Interp.Vm.outcome));
  add "  \"cycles\": %d,\n" (total_cycles p);
  (match base_cycles p with
  | Some b -> add "  \"base_cycles\": %d,\n" b
  | None -> ());
  let surviving = List.length p.sites in
  add
    "  \"sites\": { \"assigned\": %d, \"surviving\": %d, \"elided\": %d },\n"
    p.sites_assigned surviving
    (p.sites_assigned - surviving);
  add "  \"widening\": { \"checks_widened\": %d, \"checks_coalesced\": %d },\n"
    p.widened p.coalesced;
  add "  \"kinds\": {\n";
  List.iteri
    (fun i k ->
      add
        "    \"%s\": { \"ops\": %d, \"cycles\": %d, \"runtime_ops\": %d, \
         \"runtime_cycles\": %d }%s\n"
        (Obs.kind_name k) (site_kind_count o k) (site_kind_cycles o k)
        (Obs.site_count o k 0) (Obs.site_cycles o k 0)
        (if i = List.length Obs.all_kinds - 1 then "" else ","))
    Obs.all_kinds;
  add "  },\n";
  let site_a, wrap_a, rt_a = Obs.attribution o in
  add
    "  \"attribution\": { \"site\": %d, \"wrapper\": %d, \"runtime\": %d, \
     \"fraction\": %.4f },\n"
    site_a wrap_a rt_a (attributed_fraction p);
  add "  \"wrappers\": [";
  let wr = Obs.wrapper_stats o in
  List.iteri
    (fun i (n, c, cy) ->
      add "%s\n    { \"name\": \"%s\", \"calls\": %d, \"cycles\": %d }"
        (if i = 0 then "" else ",")
        n c cy)
    wr;
  add "%s],\n" (if wr = [] then "" else "\n  ");
  add "  \"hashtable\": { \"probes\": %d, \"resizes\": %d },\n" st.S.ht_probes
    st.S.ht_resizes;
  add "  \"cache_segments\": {\n";
  let segs = Obs.seg_stats o in
  List.iteri
    (fun i (name, h, m) ->
      add "    \"%s\": { \"hits\": %d, \"misses\": %d }%s\n" name h m
        (if i = List.length segs - 1 then "" else ","))
    segs;
  add "  },\n";
  add "  \"breakdown_cycles\": { \"check\": %d, \"metadata\": %d, \
       \"wrapper\": %d%s }\n"
    (check_cycles p) (meta_cycles p) (wrapper_cycles p)
    (match residual_cycles p with
    | Some r -> Printf.sprintf ", \"residual\": %d" r
    | None -> "");
  add "}\n";
  Buffer.contents buf
