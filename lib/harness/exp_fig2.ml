(* Figure 2: runtime overhead of the four SoftBound configurations
   (hash-table vs shadow-space metadata, complete vs store-only checks)
   over an uninstrumented baseline, per benchmark plus average.

   Absolute numbers come from the simulated-cycle model, so only the
   *shape* is compared to the paper: hash > shadow, complete > store-only,
   pointer-heavy (right side) >> scalar (left side), store-only below 15%
   for at least half of the benchmarks. *)

type row = {
  workload : Workloads.workload;
  base_cycles : int;
  hash_full : float;
  shadow_full : float;
  hash_store : float;
  shadow_store : float;
  cguard : float;
  framer : float;
  l4_pointer : float;
      (** related-work scheme columns (print-only context for the
          SoftBound shape checks; the committed scheme artifact is
          BENCH_schemes.json) *)
}

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let ovs scheme = Runner.overhead (Runner.run ~argv scheme m) base in
  let ov opts = ovs (Runner.Softbound opts) in
  {
    workload = w;
    base_cycles = base.stats.Interp.State.cycles;
    hash_full = ov Runner.sb_full_hash;
    shadow_full = ov Runner.sb_full_shadow;
    hash_store = ov Runner.sb_store_hash;
    shadow_store = ov Runner.sb_store_shadow;
    cguard = ovs Runner.Cguard;
    framer = ovs Runner.Framer;
    l4_pointer = ovs Runner.L4_pointer;
  }

let run ?(quick = false) () : row list =
  List.map (run_one ~quick) Workloads.all

let avg f rows =
  List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows)

let render (rows : row list) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 2: runtime overhead of SoftBound (simulated cycles vs uninstrumented)\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "benchmark"; "base Mcycles"; "hash/full"; "shadow/full";
           "hash/store"; "shadow/store"; "cguard"; "framer"; "l4-ptr" ]
       (List.map
          (fun r ->
            [
              r.workload.Workloads.name;
              Printf.sprintf "%.2f" (float_of_int r.base_cycles /. 1e6);
              Texttable.pct r.hash_full;
              Texttable.pct r.shadow_full;
              Texttable.pct r.hash_store;
              Texttable.pct r.shadow_store;
              Texttable.pct r.cguard;
              Texttable.pct r.framer;
              Texttable.pct r.l4_pointer;
            ])
          rows
       @ [
           [
             "average";
             "";
             Texttable.pct (avg (fun r -> r.hash_full) rows);
             Texttable.pct (avg (fun r -> r.shadow_full) rows);
             Texttable.pct (avg (fun r -> r.hash_store) rows);
             Texttable.pct (avg (fun r -> r.shadow_store) rows);
             Texttable.pct (avg (fun r -> r.cguard) rows);
             Texttable.pct (avg (fun r -> r.framer) rows);
             Texttable.pct (avg (fun r -> r.l4_pointer) rows);
           ];
         ]));
  (* shape checks against the paper *)
  let n = List.length rows in
  let store_below_15 =
    List.length (List.filter (fun r -> r.shadow_store < 0.15) rows)
  in
  let hash_ge_shadow =
    List.length (List.filter (fun r -> r.hash_full >= r.shadow_full -. 0.02) rows)
  in
  let full_ge_store =
    List.length
      (List.filter (fun r -> r.shadow_full >= r.shadow_store -. 0.02) rows)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\nshape vs paper:\n\
       \  hash-table >= shadow-space (full): %d/%d benchmarks\n\
       \  full >= store-only (shadow):       %d/%d benchmarks\n\
       \  store-only below 15%%:              %d/%d benchmarks (paper: more than half)\n\
       \  averages (paper: hash/full 127%%, shadow/full 79%%, shadow/store 32%%)\n\
       \    measured: hash/full %s, shadow/full %s, shadow/store %s\n"
       hash_ge_shadow n full_ge_store n store_below_15 n
       (Texttable.pct (avg (fun r -> r.hash_full) rows))
       (Texttable.pct (avg (fun r -> r.shadow_full) rows))
       (Texttable.pct (avg (fun r -> r.shadow_store) rows)));
  Buffer.contents buf
