(* `softbound_cli serve` — the checking service.

   A long-running daemon: line-delimited JSON jobs in, one JSON result
   row per job out, in COMPLETION order, each echoing the client's job
   id.  Jobs fan out over a persistent {!Pool} of worker domains; the
   reader thread applies backpressure by blocking on the pool's bounded
   queue, so a client streaming faster than the workers drain never
   balloons the daemon.

   Robustness contract (pinned by test/test_serve.ml): a malformed
   line, unknown job type, oversized payload, frontend-rejected
   program, or crashing job yields an [ok:false] error row — never a
   dead daemon, never a lost id.  Per-job wall-clock timeouts ride the
   VM's cooperative poll hook; a job past its deadline is abandoned at
   the next poll and answered with a timeout error row.

   All jobs share the Runner caches: the digest-keyed source compile
   cache and the content-keyed transform cache mean a thousand
   submissions of the same program cost one compile and one
   instrumentation, which is what makes tiny-job throughput a
   scheduling benchmark rather than a compiler benchmark. *)

module S = Interp.State
module Pool = Parutil.Pool

(** Raised by the poll hook when a job overruns its [timeout_ms]. *)
exception Deadline_exceeded

type stats = {
  accepted : int;  (** well-formed jobs handed to the pool *)
  rejected : int;  (** protocol errors answered inline *)
  completed : int;  (** ok rows emitted *)
  errored : int;  (** error rows emitted for accepted jobs *)
}

(* ------------------------------------------------------------------ *)
(* Row helpers                                                          *)
(* ------------------------------------------------------------------ *)

let truncate_output ?(limit = 65536) (s : string) : Json.t * bool =
  if String.length s <= limit then (Json.Str s, false)
  else (Json.Str (String.sub s 0 limit), true)

let error_row ~id ?jtype (msg : string) : Json.t =
  Json.Obj
    ([ ("id", id) ]
    @ (match jtype with Some t -> [ ("type", Json.Str t) ] | None -> [])
    @ [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

(* ------------------------------------------------------------------ *)
(* Job execution                                                        *)
(* ------------------------------------------------------------------ *)

let poll_of ~(timeout_ms : int option) : (unit -> unit) option =
  match timeout_ms with
  | None -> None
  | Some ms ->
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
      Some
        (fun () ->
          if Unix.gettimeofday () > deadline then raise Deadline_exceeded)

let exec_run (j : Proto.run_spec) ~poll : (string * Json.t) list =
  let m = Runner.compile_source_cached j.Proto.r_source in
  let cfg = { S.default_config with S.engine = j.Proto.r_engine; poll } in
  let r =
    Runner.run ~argv:j.Proto.r_argv ?max_steps:j.Proto.r_max_steps ~cfg
      j.Proto.r_scheme m
  in
  let out, truncated = truncate_output r.Interp.Vm.stdout_text in
  [
    ("scheme", Json.Str (Runner.scheme_name j.Proto.r_scheme));
    ("outcome", Json.Str (S.string_of_outcome r.Interp.Vm.outcome));
    ( "exit_code",
      match r.Interp.Vm.outcome with
      | S.Exit n -> Json.int n
      | S.Trapped _ -> Json.Null );
    ("stdout", out);
  ]
  @ (if truncated then [ ("stdout_truncated", Json.Bool true) ] else [])
  @ [
      ("cycles", Json.int r.Interp.Vm.stats.S.cycles);
      ("insts", Json.int r.Interp.Vm.stats.S.insts);
      ("checks", Json.int r.Interp.Vm.stats.S.checks);
    ]

let exec_fuzz (j : Proto.fuzz_spec) ~poll : (string * Json.t) list =
  let r =
    Fuzz.run_campaign ~shrink:j.Proto.f_shrink ?poll:(Option.map Fun.id poll)
      ~jobs:1 ~seed:j.Proto.f_seed ~count:j.Proto.f_count ()
  in
  let classes =
    List.sort_uniq compare
      (List.map (fun f -> f.Fuzz.cls) r.Fuzz.findings)
  in
  [
    ("seed", Json.int r.Fuzz.seed);
    ("count", Json.int r.Fuzz.count);
    ("tested", Json.int r.Fuzz.tested);
    ("skipped", Json.int r.Fuzz.skipped);
    ("injected", Json.int r.Fuzz.trap_cases);
    ("findings", Json.int (List.length r.Fuzz.findings));
    ("finding_classes", Json.List (List.map (fun c -> Json.Str c) classes));
  ]

let exec_profile (j : Proto.profile_spec) ~poll : (string * Json.t) list =
  let label, m, argv =
    match (j.Proto.p_workload, j.Proto.p_source) with
    | Some name, _ -> (
        match Workloads.find name with
        | Some w ->
            ( name,
              Runner.compile_workload w,
              if j.Proto.p_quick then w.Workloads.quick_args else [] )
        | None -> raise (Proto.Reject ("unknown workload " ^ name)))
    | None, Some src -> ("source", Runner.compile_source_cached src, [])
    | None, None -> raise (Proto.Reject "profile job needs source or workload")
  in
  let cfg = { S.default_config with S.poll } in
  let p = Profile.profile ~label ~cfg ~argv m in
  let base =
    match Profile.base_cycles p with Some b -> Json.int b | None -> Json.Null
  in
  [
    ("label", Json.Str label);
    ("cycles", Json.int (Profile.total_cycles p));
    ("base_cycles", base);
    ("check_cycles", Json.int (Profile.check_cycles p));
    ("meta_cycles", Json.int (Profile.meta_cycles p));
    ("wrapper_cycles", Json.int (Profile.wrapper_cycles p));
    ("outcome", Json.Str (S.string_of_outcome p.Profile.result.Interp.Vm.outcome));
  ]

let exec_adversarial (j : Proto.adv_spec) : (string * Json.t) list =
  let r =
    Fuzz.Adversary.run_campaign ~jobs:1 ~seed:j.Proto.a_seed
      ~count:j.Proto.a_count ()
  in
  [
    ("seed", Json.int r.Fuzz.Adversary.seed);
    ("count", Json.int r.Fuzz.Adversary.count);
    ("cases", Json.int r.Fuzz.Adversary.cases);
    ("skipped", Json.int r.Fuzz.Adversary.skipped);
    ("caught", Json.int r.Fuzz.Adversary.caught);
    ("confined", Json.int r.Fuzz.Adversary.confined);
    ("escaped", Json.int r.Fuzz.Adversary.escaped);
    ("regression_ok", Json.Bool r.Fuzz.Adversary.regression_ok);
  ]

(** Execute one validated job to a complete result row.  Never raises:
    every failure mode folds into an [ok:false] row. *)
let run_job ?(now = Unix.gettimeofday) (job : Proto.job) : Json.t =
  let t0 = now () in
  let finish fields =
    Json.Obj
      ([ ("id", job.Proto.id); ("type", Json.Str job.Proto.jtype) ]
      @ fields
      @ [ ("ms", Json.ms (now () -. t0)) ])
  in
  let poll = poll_of ~timeout_ms:job.Proto.timeout_ms in
  match
    match job.Proto.spec with
    | Proto.Run r -> exec_run r ~poll
    | Proto.Fuzz f -> exec_fuzz f ~poll
    | Proto.Profile p -> exec_profile p ~poll
    | Proto.Adversarial a -> exec_adversarial a
  with
  | fields -> finish (("ok", Json.Bool true) :: fields)
  | exception Deadline_exceeded ->
      finish
        [
          ("ok", Json.Bool false);
          ( "error",
            Json.Str
              (Printf.sprintf "timeout: exceeded %d ms"
                 (Option.value job.Proto.timeout_ms ~default:0)) );
        ]
  | exception e ->
      finish
        [ ("ok", Json.Bool false); ("error", Json.Str (Printexc.to_string e)) ]

(* ------------------------------------------------------------------ *)
(* The service loop                                                     *)
(* ------------------------------------------------------------------ *)

(** Run the daemon over abstract line I/O.  [read] returns [None] at
    end of input (EOF, or the caller's shutdown signal); [write]
    receives one complete result line (newline included) at a time,
    already serialized with every other write.  Returns the session's
    accounting once the queue has drained and the workers have
    joined. *)
let serve ?(jobs = 1) ?(cap = 128) ?default_timeout_ms
    ~(read : unit -> string option) ~(write : string -> unit) () : stats =
  let completed = Atomic.make 0 and errored = Atomic.make 0 in
  let accepted = ref 0 and rejected = ref 0 in
  let emit (row : Json.t) =
    (match Json.bool_field row "ok" with
    | Some true -> Atomic.incr completed
    | _ -> Atomic.incr errored);
    write (Json.to_string row ^ "\n")
  in
  let on_error e =
    (* a job closure that escapes run_job's net is a harness bug, but
       the daemon still answers *)
    error_row ~id:Json.Null ("internal error: " ^ Printexc.to_string e)
  in
  let pool = Pool.create ~cap ~jobs ~on_error ~emit () in
  let rec loop () =
    match read () with
    | None -> ()
    | Some line ->
        (match Proto.parse_job line with
        | Error (id, msg) ->
            incr rejected;
            Pool.emit_now pool (error_row ~id msg)
        | Ok job ->
            let job =
              match (job.Proto.timeout_ms, default_timeout_ms) with
              | None, Some _ -> { job with Proto.timeout_ms = default_timeout_ms }
              | _ -> job
            in
            incr accepted;
            ignore (Pool.submit pool (fun () -> run_job job)));
        loop ()
  in
  loop ();
  ignore (Pool.shutdown pool);
  {
    accepted = !accepted;
    rejected = !rejected;
    completed = Atomic.get completed;
    (* protocol-error rows also flow through [emit]; keep [errored] to
       accepted-but-failed jobs *)
    errored = Atomic.get errored - !rejected;
  }

(* ------------------------------------------------------------------ *)
(* File-descriptor plumbing for the CLI                                 *)
(* ------------------------------------------------------------------ *)

(** Incremental line reader over a raw fd.  Polls so [stop] (the SIGTERM
    flag) is honored even while no input arrives; a line longer than
    {!Proto.max_line_bytes} is truncated in memory (the excess is
    discarded as it streams in, never buffered) but still delivered
    over-limit so the protocol layer answers it with an oversized-request
    error row. *)
let read_lines ?(stop = fun () -> false) (fd : Unix.file_descr) :
    unit -> string option =
  let keep = Proto.max_line_bytes + 1 in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let pending : string Queue.t = Queue.create () in
  let eof = ref false in
  let flush_line () =
    Queue.push (Buffer.contents buf) pending;
    Buffer.clear buf
  in
  let rec refill () =
    if Queue.is_empty pending && not !eof then
      if stop () then eof := true
      else
        match Unix.select [ fd ] [] [] 0.25 with
        | [], _, _ -> refill ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                eof := true;
                if Buffer.length buf > 0 then flush_line ()
            | n ->
                for i = 0 to n - 1 do
                  match Bytes.get chunk i with
                  | '\n' -> flush_line ()
                  | c -> if Buffer.length buf < keep then Buffer.add_char buf c
                done;
                refill ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ())
  in
  fun () ->
    refill ();
    if Queue.is_empty pending then None else Some (Queue.pop pending)

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(** Listen on a Unix-domain socket and serve one client connection at a
    time until [stop ()] flips.  Connections share the process-global
    Runner caches; each gets its own pool (joined when it disconnects).
    A client that vanishes mid-stream only loses its own rows. *)
let serve_socket ?(jobs = 1) ?(cap = 128) ?default_timeout_ms
    ?(stop = fun () -> false) (path : string) : unit =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if not (stop ()) then (
          (match Unix.select [ sock ] [] [] 0.25 with
          | [], _, _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _ ->
              let conn, _ = Unix.accept sock in
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close conn with Unix.Unix_error _ -> ())
                (fun () ->
                  let read = read_lines ~stop conn in
                  let write s =
                    (* the client may already be gone; its rows just drop *)
                    try write_all conn s with Unix.Unix_error _ -> ()
                  in
                  ignore
                    (serve ~jobs ~cap ?default_timeout_ms ~read ~write ())));
          accept_loop ())
      in
      accept_loop ())
