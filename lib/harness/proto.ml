(* The serve wire protocol: one JSON object per line, request and
   response.

   Requests carry a client-chosen [id] (string or number, echoed back
   verbatim), a [type] selecting the job kind, and kind-specific
   fields.  Parsing is strict where it protects the daemon (unknown
   type, missing source, absurd counts are rejected with an error row)
   and lenient where it costs nothing (unknown extra keys are ignored,
   so clients can tag jobs freely).

   This module only VALIDATES — it never runs anything, so a malformed
   job can be rejected and answered while the worker pool keeps
   chewing on its queue. *)

type run_spec = {
  r_source : string;
  r_argv : string list;
  r_scheme : Runner.scheme;
  r_engine : Interp.State.engine;
  r_max_steps : int option;
}

type fuzz_spec = { f_seed : int; f_count : int; f_shrink : bool }

type profile_spec = {
  p_source : string option;
  p_workload : string option;
  p_quick : bool;
}

type adv_spec = { a_seed : int; a_count : int }

type spec =
  | Run of run_spec
  | Fuzz of fuzz_spec
  | Profile of profile_spec
  | Adversarial of adv_spec

type job = {
  id : Json.t;  (** echoed back verbatim: [Str] or [Num] *)
  jtype : string;
  spec : spec;
  timeout_ms : int option;  (** wall-clock execution budget *)
}

(** Hard ceiling on one request line.  A line past this is answered
    with an error row without even being parsed — the reader must not
    buffer unbounded client input. *)
let max_line_bytes = 1 lsl 20

(** Per-request campaign ceiling: fuzz/adversarial jobs are metered in
    cases; a service request asking for more than this belongs in a
    batch run, not a shared daemon. *)
let max_campaign_count = 10_000

let spec_names = [ "run"; "fuzz"; "profile"; "adversarial" ]

(* ------------------------------------------------------------------ *)
(* Field readers                                                        *)
(* ------------------------------------------------------------------ *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let opt_int v k =
  match Json.field v k with
  | None | Some Json.Null -> None
  | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> reject "field %S must be an integer" k

let opt_str v k =
  match Json.field v k with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> reject "field %S must be a string" k

let opt_bool v k =
  match Json.field v k with
  | None | Some Json.Null -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> reject "field %S must be a boolean" k

let str_list v k =
  match Json.field v k with
  | None | Some Json.Null -> []
  | Some (Json.List vs) ->
      List.map
        (function
          | Json.Str s -> s | _ -> reject "field %S must be a string array" k)
        vs
  | Some _ -> reject "field %S must be a string array" k

let campaign_count v ~default =
  let c = Option.value (opt_int v "count") ~default in
  if c < 1 then reject "count must be >= 1";
  if c > max_campaign_count then
    reject "count %d exceeds the per-request cap of %d" c max_campaign_count;
  c

(* ------------------------------------------------------------------ *)
(* Scheme / engine selection                                            *)
(* ------------------------------------------------------------------ *)

let scheme_of_fields v : Runner.scheme =
  let mode =
    match opt_str v "mode" with
    | None | Some "full" -> Softbound.Config.Full_checking
    | Some "store-only" -> Softbound.Config.Store_only
    | Some m -> reject "unknown mode %S (full|store-only)" m
  in
  let facility =
    match opt_str v "facility" with
    | None | Some "shadow" -> Softbound.Config.Shadow_space
    | Some "hash" -> Softbound.Config.Hash_table
    | Some f -> reject "unknown facility %S (shadow|hash)" f
  in
  let no_elim = Option.value (opt_bool v "no_elim") ~default:false in
  match opt_str v "scheme" with
  | None | Some "softbound" ->
      Runner.Softbound
        {
          Softbound.Config.default with
          mode;
          facility;
          eliminate_checks = not no_elim;
        }
  | Some "unprotected" -> Runner.Unprotected
  | Some "jones-kelly" -> Runner.Jones_kelly
  | Some "memcheck" -> Runner.Memcheck
  | Some "mudflap" -> Runner.Mudflap
  | Some "mscc" -> Runner.Mscc
  | Some s ->
      reject
        "unknown scheme %S (softbound|unprotected|jones-kelly|memcheck|mudflap|mscc)"
        s

let engine_of_fields v : Interp.State.engine =
  match opt_str v "engine" with
  | None -> Interp.State.default_config.Interp.State.engine
  | Some s -> (
      match Interp.State.engine_of_string s with
      | Some e -> e
      | None -> reject "unknown engine %S (closure|decode)" s)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                      *)
(* ------------------------------------------------------------------ *)

let spec_of v : string * spec =
  match opt_str v "type" with
  | None -> reject "missing field \"type\" (%s)" (String.concat "|" spec_names)
  | Some "run" ->
      let source =
        match opt_str v "source" with
        | Some s -> s
        | None -> reject "run job needs a \"source\" string"
      in
      ( "run",
        Run
          {
            r_source = source;
            r_argv = str_list v "argv";
            r_scheme = scheme_of_fields v;
            r_engine = engine_of_fields v;
            r_max_steps = opt_int v "max_steps";
          } )
  | Some "fuzz" ->
      ( "fuzz",
        Fuzz
          {
            f_seed = Option.value (opt_int v "seed") ~default:1;
            f_count = campaign_count v ~default:10;
            f_shrink = Option.value (opt_bool v "shrink") ~default:false;
          } )
  | Some "profile" ->
      let source = opt_str v "source" and workload = opt_str v "workload" in
      if source = None && workload = None then
        reject "profile job needs \"source\" or \"workload\"";
      ( "profile",
        Profile
          {
            p_source = source;
            p_workload = workload;
            p_quick = Option.value (opt_bool v "quick") ~default:true;
          } )
  | Some "adversarial" ->
      ( "adversarial",
        Adversarial
          {
            a_seed = Option.value (opt_int v "seed") ~default:1;
            a_count = campaign_count v ~default:5;
          } )
  | Some t ->
      reject "unknown job type %S (%s)" t (String.concat "|" spec_names)

(** Parse one request line.  [Error (id, msg)] carries whatever id
    could still be recovered (so the error row reaches the right job)
    — [Json.Null] when the line was not even an object. *)
let parse_job (line : string) : (job, Json.t * string) result =
  if String.length line > max_line_bytes then
    Error
      ( Json.Null,
        Printf.sprintf "oversized request: line exceeds the %d-byte limit"
          max_line_bytes )
  else
    match Json.parse line with
    | exception Json.Bad m -> Error (Json.Null, "malformed JSON: " ^ m)
    | v -> (
        let id =
          match Json.field v "id" with
          | Some (Json.Str _ as id) | Some (Json.Num _ as id) -> Some id
          | Some _ | None -> None
        in
        match id with
        | None -> Error (Json.Null, "missing or non-scalar \"id\"")
        | Some id -> (
            match
              let jtype, spec = spec_of v in
              let timeout_ms =
                match opt_int v "timeout_ms" with
                | Some t when t < 1 -> reject "timeout_ms must be >= 1"
                | t -> t
              in
              { id; jtype; spec; timeout_ms }
            with
            | job -> Ok job
            | exception Reject m -> Error (id, m)))
