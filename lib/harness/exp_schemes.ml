(* N-scheme cost/coverage matrix: every workload under every protection
   scheme — the two SoftBound reference configurations, the MSCC-style
   transform, the three related-work schemes (CGuard, FRAMER, L4
   Pointer), and the three plugin baselines — with the overhead of each
   run split into check/metadata/wrapper/residual buckets, plus the
   fixed completeness-gap attack suite's detection matrix.

   This is the experiment the ROADMAP's "multi-backend scheme matrix"
   item asks for: Figure 2's cost story and Table 4's coverage story
   over *approaches*, not just SoftBound's two metadata organizations.

   Emitted as [BENCH_schemes.json]; byte-deterministic (simulated
   cycles only, no host timing), so `--jobs N` runs emit identical
   artifacts. *)

module S = Interp.State

(** The matrix's scheme axis, in fixed report order. *)
let schemes : (string * Runner.scheme) list =
  [
    ("softbound-full-shadow", Runner.Softbound Runner.sb_full_shadow);
    ("softbound-store-shadow", Runner.Softbound Runner.sb_store_shadow);
    ("mscc", Runner.Mscc);
    ("cguard", Runner.Cguard);
    ("framer", Runner.Framer);
    ("l4-pointer", Runner.L4_pointer);
    ("jones-kelly", Runner.Jones_kelly);
    ("memcheck-like", Runner.Memcheck);
    ("mudflap-like", Runner.Mudflap);
  ]

type srow = {
  sname : string;
  cycles : int;
  clean : bool;  (** exited 0; a scheme incompatibility is recorded, not fatal *)
  outcome : string;
  check : int;
      (** site-attributed check cycles (transform schemes) plus the
          plugin checker's bookkeeping cycles (plugin schemes) *)
  meta : int;  (** site-attributed metadata load/store cycles *)
  wrapper : int;  (** wrapper-inclusive cycle deltas *)
  residual : int;  (** overhead minus the attributed buckets *)
}

type row = {
  workload : Workloads.workload;
  base_cycles : int;
  srows : srow list;
}

(** One attack of the gap suite: which schemes detect it. *)
type coverage = { attack : string; cells : (string * bool) list }

let srow_of ~sname ~base (r : Interp.Vm.result) : srow =
  let o = r.Interp.Vm.obs in
  let k = Profile.site_kind_cycles o in
  let stats = r.Interp.Vm.stats in
  let check = k Obs.KCheck + k Obs.KCheckFptr + stats.S.ck_cycles in
  let meta = k Obs.KMetaLoad + k Obs.KMetaStore in
  let wrapper = Obs.wrapper_cycles o in
  let cycles = stats.S.cycles in
  let clean =
    match r.Interp.Vm.outcome with S.Exit 0 -> true | _ -> false
  in
  {
    sname;
    cycles;
    clean;
    outcome = S.string_of_outcome r.Interp.Vm.outcome;
    check;
    meta;
    wrapper;
    residual = cycles - base - check - meta - wrapper;
  }

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let base_cycles = base.Interp.Vm.stats.S.cycles in
  let srows =
    List.map
      (fun (sname, scheme) ->
        srow_of ~sname ~base:base_cycles (Runner.run ~argv scheme m))
      schemes
  in
  { workload = w; base_cycles; srows }

(** Detection matrix over the fixed gap attacks; independent of
    [quick]/[jobs] (four tiny programs, run inline). *)
let run_coverage () : coverage list =
  List.map
    (fun (attack, src) ->
      let m = Softbound.compile src in
      let cells =
        List.map
          (fun (sname, scheme) ->
            (sname, Runner.detected (Runner.verdict_of (Runner.run scheme m))))
          schemes
      in
      { attack; cells })
    Schemes.gap_attacks

let run ?(quick = false) ?(jobs = 1) () : row list * coverage list =
  (* deterministic fan-out: see the note on {!Exp_elim.run} *)
  let rows = Parutil.parmap ~jobs (run_one ~quick) Workloads.all in
  (rows, run_coverage ())

let frac part whole =
  if whole <= 0 then 0.0 else float_of_int part /. float_of_int whole

let overhead_of ~base cycles =
  if base <= 0 then 0.0 else (float_of_int cycles /. float_of_int base) -. 1.0

let render ((rows, cov) : row list * coverage list) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "Scheme matrix: overhead and attribution per workload x scheme:\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "benchmark"; "scheme"; "overhead"; "check"; "metadata"; "wrapper";
           "residual"; "clean" ]
       (List.concat_map
          (fun r ->
            List.map
              (fun s ->
                let ov = s.cycles - r.base_cycles in
                [
                  r.workload.Workloads.name;
                  s.sname;
                  Texttable.pct (frac ov r.base_cycles);
                  Texttable.pct (frac s.check ov);
                  Texttable.pct (frac s.meta ov);
                  Texttable.pct (frac s.wrapper ov);
                  Texttable.pct (frac s.residual ov);
                  Runner.yes_no s.clean;
                ])
              r.srows)
          rows));
  Buffer.add_string buf "\nCompleteness-gap matrix (detected?):\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:("attack" :: List.map fst schemes)
       (List.map
          (fun c ->
            c.attack
            :: List.map (fun (_, det) -> Runner.yes_no det) c.cells)
          cov));
  (* geomean overhead per scheme over the workloads it runs cleanly on *)
  Buffer.add_string buf "\ngeomean overhead on clean workloads:\n";
  List.iter
    (fun (sname, _) ->
      let ovs =
        List.filter_map
          (fun r ->
            match List.find_opt (fun s -> s.sname = sname) r.srows with
            | Some s when s.clean ->
                Some (1.0 +. overhead_of ~base:r.base_cycles s.cycles)
            | _ -> None)
          rows
      in
      match ovs with
      | [] -> Buffer.add_string buf (Printf.sprintf "  %-24s (none)\n" sname)
      | _ ->
          let g =
            exp
              (List.fold_left (fun a x -> a +. log x) 0.0 ovs
              /. float_of_int (List.length ovs))
            -. 1.0
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-24s %5.1f%%  (%d/%d workloads clean)\n" sname
               (100.0 *. g) (List.length ovs) (List.length rows)))
    schemes;
  Buffer.contents buf

(** Machine-readable export ([BENCH_schemes.json]); key order and
    formatting fixed so two runs over the same workload set are
    byte-identical at any [--jobs] width. *)
let to_json ((rows, cov) : row list * coverage list) : string =
  let buf = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"experiment\": \"schemes\",\n";
  add "  \"host_cpus\": %d,\n" (Parutil.available_jobs ());
  add "  \"unit\": \"simulated cycles\",\n";
  add "  \"coverage\": [\n";
  List.iteri
    (fun i c ->
      add "    { \"attack\": \"%s\", \"detected\": { " c.attack;
      List.iteri
        (fun j (sname, det) ->
          add "\"%s\": %b%s" sname det
            (if j = List.length c.cells - 1 then "" else ", "))
        c.cells;
      add " } }%s\n" (if i = List.length cov - 1 then "" else ","))
    cov;
  add "  ],\n";
  add "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n      \"name\": \"%s\",\n      \"base_cycles\": %d,\n"
        r.workload.Workloads.name r.base_cycles;
      add "      \"schemes\": {\n";
      List.iteri
        (fun j s ->
          add
            "        \"%s\": { \"cycles\": %d, \"overhead\": %.4f, \
             \"clean\": %b, \"outcome\": \"%s\", \"check\": %d, \
             \"metadata\": %d, \"wrapper\": %d, \"residual\": %d }%s\n"
            s.sname s.cycles
            (overhead_of ~base:r.base_cycles s.cycles)
            s.clean s.outcome s.check s.meta s.wrapper s.residual
            (if j = List.length r.srows - 1 then "" else ","))
        r.srows;
      add "      }\n    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  Buffer.contents buf
