(* Ablation of the redundant-check elimination pass (Elim): every
   Figure 2 configuration — {hash-table, shadow-space} x {full,
   store-only} — run over the 15 kernels with [eliminate_checks] on and
   off, reporting per-benchmark and geometric-mean simulated-cycle
   overheads plus the dynamic check/metadata-lookup counts the pass
   removed.

   The acceptance bar: with elimination on, the geometric-mean overhead
   must drop versus off in at least the shadow/full configuration (the
   paper's headline config), with detection untouched — the test suite
   re-runs the Wilander/BugBench matrix under elimination separately. *)

type cell = {
  cycles_on : int;
  cycles_nw : int;  (** elimination on, check widening off (control) *)
  cycles_off : int;
  ov_on : float;  (** overhead vs uninstrumented, elimination on *)
  ov_nw : float;  (** overhead, elimination on but [widen_checks] off *)
  ov_off : float;  (** overhead vs uninstrumented, elimination off *)
}

type row = {
  workload : Workloads.workload;
  base_cycles : int;
  shadow_full : cell;
  hash_full : cell;
  shadow_store : cell;
  hash_store : cell;
  checks_on : int;  (** dynamic checks executed, shadow/full, elim on *)
  checks_nw : int;  (** same with the widening sub-passes disabled *)
  checks_off : int;
  metaloads_on : int;  (** dynamic metadata lookups, shadow/full, elim on *)
  metaloads_off : int;
  widened : int;  (** static loop-widened spans, shadow/full *)
  coalesced : int;  (** static checks folded into in-block spans *)
}

let without_elim o = { o with Softbound.Config.eliminate_checks = false }
let without_widen o = { o with Softbound.Config.widen_checks = false }

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let triple opts =
    let on = Runner.run ~argv (Runner.Softbound opts) m in
    let nw = Runner.run ~argv (Runner.Softbound (without_widen opts)) m in
    let off = Runner.run ~argv (Runner.Softbound (without_elim opts)) m in
    ( {
        cycles_on = on.stats.Interp.State.cycles;
        cycles_nw = nw.stats.Interp.State.cycles;
        cycles_off = off.stats.Interp.State.cycles;
        ov_on = Runner.overhead on base;
        ov_nw = Runner.overhead nw base;
        ov_off = Runner.overhead off base;
      },
      on,
      nw,
      off )
  in
  let shadow_full, sf_on, sf_nw, sf_off = triple Runner.sb_full_shadow in
  let hash_full, _, _, _ = triple Runner.sb_full_hash in
  let shadow_store, _, _, _ = triple Runner.sb_store_shadow in
  let hash_store, _, _, _ = triple Runner.sb_store_hash in
  let widened, coalesced =
    let mi, _ = Runner.instrument_cached ~opts:Runner.sb_full_shadow m in
    Hashtbl.fold
      (fun _ f (w, c) ->
        ( w + Softbound.Elim.count_widened f,
          c + Softbound.Elim.count_coalesced f ))
      mi.Sbir.Ir.mfuncs (0, 0)
  in
  {
    workload = w;
    base_cycles = base.stats.Interp.State.cycles;
    shadow_full;
    hash_full;
    shadow_store;
    hash_store;
    checks_on = sf_on.stats.Interp.State.checks;
    checks_nw = sf_nw.stats.Interp.State.checks;
    checks_off = sf_off.stats.Interp.State.checks;
    metaloads_on = sf_on.stats.Interp.State.meta_loads;
    metaloads_off = sf_off.stats.Interp.State.meta_loads;
    widened;
    coalesced;
  }

let run ?(quick = false) ?(jobs = 1) () : row list =
  (* rows come back in [Workloads.all] order regardless of [jobs], and
     each row's simulated numbers are per-VM — so the rendered table and
     JSON are byte-identical to a sequential run *)
  Parutil.parmap ~jobs (run_one ~quick) Workloads.all

(** Geometric mean of the cycle ratios (instrumented / base), reported
    as an overhead — the acceptance metric. *)
let geomean_ov (cell_of : row -> cell) (value : cell -> float)
    (rows : row list) : float =
  let log_sum =
    List.fold_left
      (fun acc r -> acc +. log (1.0 +. value (cell_of r)))
      0.0 rows
  in
  exp (log_sum /. float_of_int (List.length rows)) -. 1.0

let render (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Check-elimination ablation: simulated-cycle overhead with the Elim \
     pass on / off\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "benchmark"; "shadow/full on"; "no-widen"; "shadow/full off";
           "saved"; "checks on/nw/off"; "widened"; "coalesced" ]
       (List.map
          (fun r ->
            let c = r.shadow_full in
            [
              r.workload.Workloads.name;
              Texttable.pct c.ov_on;
              Texttable.pct c.ov_nw;
              Texttable.pct c.ov_off;
              Texttable.pct (c.ov_off -. c.ov_on);
              Printf.sprintf "%d/%d/%d" r.checks_on r.checks_nw r.checks_off;
              Printf.sprintf "%d" r.widened;
              Printf.sprintf "%d" r.coalesced;
            ])
          rows));
  let gm cell_of v = geomean_ov cell_of v rows in
  let line name cell_of =
    Printf.sprintf
      "  %-13s %s -> %s -> %s  (geomean overhead off -> no-widen -> on)\n"
      name
      (Texttable.pct (gm cell_of (fun c -> c.ov_off)))
      (Texttable.pct (gm cell_of (fun c -> c.ov_nw)))
      (Texttable.pct (gm cell_of (fun c -> c.ov_on)))
  in
  Buffer.add_string buf "\ngeometric-mean overheads across the 15 kernels:\n";
  Buffer.add_string buf (line "shadow/full" (fun r -> r.shadow_full));
  Buffer.add_string buf (line "hash/full" (fun r -> r.hash_full));
  Buffer.add_string buf (line "shadow/store" (fun r -> r.shadow_store));
  Buffer.add_string buf (line "hash/store" (fun r -> r.hash_store));
  let sf_off = gm (fun r -> r.shadow_full) (fun c -> c.ov_off) in
  let sf_on = gm (fun r -> r.shadow_full) (fun c -> c.ov_on) in
  Buffer.add_string buf
    (Printf.sprintf
       "\nacceptance (shadow/full): elimination %s the geomean overhead \
        (%s -> %s)\n"
       (if sf_on < sf_off then "LOWERS" else "DOES NOT LOWER")
       (Texttable.pct sf_off) (Texttable.pct sf_on));
  Buffer.contents buf

(** Machine-readable per-kernel cycles for the perf trajectory
    ([BENCH_elim.json]). *)
let to_json (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"elim-ablation\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cpus\": %d,\n" (Parutil.available_jobs ()));
  Buffer.add_string buf "  \"unit\": \"simulated cycles\",\n";
  Buffer.add_string buf "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      let cell name c =
        Printf.sprintf
          "      \"%s\": { \"on\": %d, \"no_widen\": %d, \"off\": %d, \
           \"overhead_on\": %.4f, \"overhead_no_widen\": %.4f, \
           \"overhead_off\": %.4f }"
          name c.cycles_on c.cycles_nw c.cycles_off c.ov_on c.ov_nw c.ov_off
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\n      \"name\": \"%s\",\n      \"base_cycles\": %d,\n\
            %s,\n%s,\n%s,\n%s,\n\
           \      \"checks\": { \"on\": %d, \"no_widen\": %d, \"off\": %d },\n\
           \      \"meta_loads\": { \"on\": %d, \"off\": %d },\n\
           \      \"checks_widened\": %d,\n\
           \      \"checks_coalesced\": %d\n    }%s\n"
           r.workload.Workloads.name r.base_cycles
           (cell "shadow_full" r.shadow_full)
           (cell "hash_full" r.hash_full)
           (cell "shadow_store" r.shadow_store)
           (cell "hash_store" r.hash_store)
           r.checks_on r.checks_nw r.checks_off r.metaloads_on r.metaloads_off
           r.widened r.coalesced
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  let geo cell_of =
    Printf.sprintf
      "{ \"on\": %.4f, \"no_widen\": %.4f, \"off\": %.4f }"
      (geomean_ov cell_of (fun c -> c.ov_on) rows)
      (geomean_ov cell_of (fun c -> c.ov_nw) rows)
      (geomean_ov cell_of (fun c -> c.ov_off) rows)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"geomean_overhead\": {\n\
       \    \"shadow_full\": %s,\n\
       \    \"hash_full\": %s,\n\
       \    \"shadow_store\": %s,\n\
       \    \"hash_store\": %s\n  }\n}\n"
       (geo (fun r -> r.shadow_full))
       (geo (fun r -> r.hash_full))
       (geo (fun r -> r.shadow_store))
       (geo (fun r -> r.hash_store)));
  Buffer.contents buf
