(* Paper-Figure-style overhead breakdown: for every workload and every
   SoftBound configuration (full/store-only × shadow/hash × elim
   on/off), split the instrumented run's overhead cycles into check
   cost, metadata-operation cost, wrapper cost, and the residual
   (memory-system pressure, metadata propagation, calling-convention
   growth) — the attribution the paper gives in prose for its 67%
   average and that CGuard/FRAMER use to motivate their designs.

   Emitted as [BENCH_breakdown.json]; byte-deterministic for a fixed
   seed/workload set because site assignment, the interpreter, and the
   collector are all deterministic. *)

module S = Interp.State

type split = {
  cname : string;  (** configuration label *)
  cycles : int;
  check : int;  (** site-attributed check + fptr-check cycle deltas *)
  meta : int;  (** site-attributed metadata load/store cycle deltas *)
  wrapper : int;  (** wrapper-inclusive cycle deltas *)
  residual : int;  (** overhead minus the attributed buckets *)
}

type row = {
  workload : Workloads.workload;
  base_cycles : int;
  splits : split list;
}

let without_elim o = { o with Softbound.Config.eliminate_checks = false }

(** The 8 configurations, in fixed report order. *)
let configs : (string * Softbound.Config.options) list =
  List.concat_map
    (fun (fname, opts) ->
      [ (fname ^ "-elim", opts); (fname ^ "-noelim", without_elim opts) ])
    [
      ("shadow-full", Runner.sb_full_shadow);
      ("hash-full", Runner.sb_full_hash);
      ("shadow-store", Runner.sb_store_shadow);
      ("hash-store", Runner.sb_store_hash);
    ]

let split_of ~cname ~base (r : Interp.Vm.result) : split =
  let o = r.Interp.Vm.obs in
  let k = Profile.site_kind_cycles o in
  let check = k Obs.KCheck + k Obs.KCheckFptr in
  let meta = k Obs.KMetaLoad + k Obs.KMetaStore in
  let wrapper = Obs.wrapper_cycles o in
  let cycles = r.Interp.Vm.stats.S.cycles in
  {
    cname;
    cycles;
    check;
    meta;
    wrapper;
    residual = cycles - base - check - meta - wrapper;
  }

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let base_cycles = base.Interp.Vm.stats.S.cycles in
  let splits =
    List.map
      (fun (cname, opts) ->
        let r = Runner.run ~argv (Runner.Softbound opts) m in
        Runner.check_clean ~quick ~workload:w.Workloads.name ~scheme:cname r;
        split_of ~cname ~base:base_cycles r)
      configs
  in
  { workload = w; base_cycles; splits }

let run ?(quick = false) ?(jobs = 1) () : row list =
  (* deterministic fan-out: see the note on {!Exp_elim.run} *)
  Parutil.parmap ~jobs (run_one ~quick) Workloads.all

let frac part whole =
  if whole <= 0 then 0.0 else float_of_int part /. float_of_int whole

let render (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Overhead breakdown per workload x configuration (fractions of \
     overhead cycles):\n";
  Buffer.add_string buf
    (Texttable.render
       ~headers:
         [ "benchmark"; "config"; "overhead"; "check"; "metadata"; "wrapper";
           "residual" ]
       (List.concat_map
          (fun r ->
            List.map
              (fun s ->
                let ov = s.cycles - r.base_cycles in
                [
                  r.workload.Workloads.name;
                  s.cname;
                  Texttable.pct (frac ov r.base_cycles);
                  Texttable.pct (frac s.check ov);
                  Texttable.pct (frac s.meta ov);
                  Texttable.pct (frac s.wrapper ov);
                  Texttable.pct (frac s.residual ov);
                ])
              r.splits)
          rows));
  (* headline aggregate: shadow/full with elimination, summed *)
  let agg name f =
    let tot =
      List.fold_left
        (fun acc r ->
          match
            List.find_opt (fun s -> s.cname = "shadow-full-elim") r.splits
          with
          | Some s -> acc + f s
          | None -> acc)
        0 rows
    in
    Printf.sprintf "  %-9s %d\n" name tot
  in
  Buffer.add_string buf
    "\naggregate cycles over all workloads (shadow/full, elim on):\n";
  Buffer.add_string buf (agg "check" (fun s -> s.check));
  Buffer.add_string buf (agg "metadata" (fun s -> s.meta));
  Buffer.add_string buf (agg "wrapper" (fun s -> s.wrapper));
  Buffer.add_string buf (agg "residual" (fun s -> s.residual));
  Buffer.contents buf

(** Machine-readable export ([BENCH_breakdown.json]); key order and
    formatting are fixed so two runs over the same workloads/seed are
    byte-identical. *)
let to_json (rows : row list) : string =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"experiment\": \"overhead-breakdown\",\n";
  add "  \"host_cpus\": %d,\n" (Parutil.available_jobs ());
  add "  \"unit\": \"simulated cycles\",\n";
  add "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n      \"name\": \"%s\",\n      \"base_cycles\": %d,\n"
        r.workload.Workloads.name r.base_cycles;
      add "      \"configs\": {\n";
      List.iteri
        (fun j s ->
          add
            "        \"%s\": { \"cycles\": %d, \"check\": %d, \"metadata\": \
             %d, \"wrapper\": %d, \"residual\": %d }%s\n"
            s.cname s.cycles s.check s.meta s.wrapper s.residual
            (if j = List.length r.splits - 1 then "" else ","))
        r.splits;
      add "      }\n    }%s\n" (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  add "  ]\n}\n";
  Buffer.contents buf
