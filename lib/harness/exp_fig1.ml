(* Figure 1: percentage of memory operations that load or store a pointer,
   per benchmark, in the paper's sorted presentation order (SPEC shaded
   dark in the original plot). *)

type row = {
  workload : Workloads.workload;
  ptr_fraction : float;
  mem_ops : int;
  insts : int;
}

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let r = Runner.run ~argv Runner.Unprotected m in
  Runner.check_clean ~quick ~workload:w.Workloads.name
    ~scheme:(Runner.scheme_name Runner.Unprotected)
    r;
  {
    workload = w;
    ptr_fraction = Runner.pointer_op_fraction r;
    mem_ops = r.stats.Interp.State.mem_reads + r.stats.Interp.State.mem_writes;
    insts = r.stats.Interp.State.insts;
  }

let run ?(quick = false) () : row list =
  List.map (run_one ~quick) Workloads.all

let bar frac =
  let width = int_of_float (frac *. 60.0) in
  String.make (max 0 width) '#'

(** Rank agreement between our measured order and the paper's x-axis
    order (the registry order): fraction of benchmark pairs ordered the
    same way (Kendall-style concordance). *)
let order_agreement (rows : row list) : float =
  let paper_rank w =
    let rec idx i = function
      | [] -> -1
      | x :: rest ->
          if x.Workloads.name = w.Workloads.name then i else idx (i + 1) rest
    in
    idx 0 Workloads.all
  in
  let rows = Array.of_list rows in
  let n = Array.length rows in
  let concordant = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      let dp = compare (paper_rank rows.(i).workload) (paper_rank rows.(j).workload) in
      let dm = compare rows.(i).ptr_fraction rows.(j).ptr_fraction in
      if dp * dm >= 0 then incr concordant
    done
  done;
  float_of_int !concordant /. float_of_int (max 1 !total)

let render (rows : row list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 1: frequency of pointer memory operations\n\
     (percentage of loads/stores that move a pointer value, sorted as in \
     the paper's plot; SPEC marked *)\n\n";
  let sorted_rows =
    List.sort (fun a b -> compare a.ptr_fraction b.ptr_fraction) rows
  in
  List.iter
    (fun r ->
      let w = r.workload in
      Buffer.add_string buf
        (Printf.sprintf "%c %-11s %5.1f%% |%s\n"
           (if w.Workloads.category = Workloads.Spec then '*' else ' ')
           w.Workloads.name
           (100.0 *. r.ptr_fraction)
           (bar r.ptr_fraction)))
    sorted_rows;
  let spec_low =
    List.for_all
      (fun r ->
        r.workload.Workloads.category <> Workloads.Spec
        || r.workload.Workloads.name = "li"
        || r.workload.Workloads.name = "libquantum"
        || r.ptr_fraction < 0.05)
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\npaper: five SPEC benchmarks below 5%% (here: %s); several Olden \
        benchmarks above 50%%; pairwise order agreement with the paper's \
        x-axis: %.0f%%\n"
       (Runner.yes_no spec_low)
       (100.0 *. order_agreement rows));
  Buffer.contents buf
