(* Fixed-width text table rendering for experiment output. *)

let render ?(title = "") ~headers (rows : string list list) : string =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  if title <> "" then Buffer.add_string buf (title ^ "\n");
  let pad i s =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s
  in
  let render_row row =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad row) ^ "\n")
  in
  render_row headers;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    ^ "\n");
  List.iter render_row rows;
  Buffer.contents buf

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let pct1 x = Printf.sprintf "%.1f%%" (100.0 *. x)
