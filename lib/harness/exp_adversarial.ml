(* Robust-safety campaign as an experiment target.

   Runs the adversarial harness ({!Fuzz.Adversary}) over generated
   attacker/protected pairs plus the committed regression seeds, and
   reports the caught/confined/escaped verdict counts per attack class.
   The acceptance bar mirrors the robust-safety claim: zero escapes —
   every attacker action is either trapped at a wrapper boundary
   (caught) or provably without effect on the protected component's
   heap, metadata, and observable behaviour (confined). *)

type t = { quick : bool; report : Fuzz.Adversary.report }

let seed = 2026

let run ?(quick = false) ?(jobs = 1) () : t =
  let count = if quick then 60 else 200 in
  { quick; report = Fuzz.Adversary.run_campaign ~jobs ~seed ~count () }

let render (t : t) : string =
  let r = t.report in
  let rows =
    List.map
      (fun (cls, (ca, co, es)) ->
        [ cls; string_of_int ca; string_of_int co; string_of_int es ])
      r.Fuzz.Adversary.per_class
  in
  let total =
    [
      "total";
      string_of_int r.Fuzz.Adversary.caught;
      string_of_int r.Fuzz.Adversary.confined;
      string_of_int r.Fuzz.Adversary.escaped;
    ]
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Texttable.render
       ~title:
         (Printf.sprintf
            "Adversarial robust-safety campaign (seed=%d, %d scenarios%s)"
            r.Fuzz.Adversary.seed r.Fuzz.Adversary.cases
            (if t.quick then ", quick" else ""))
       ~headers:[ "attack class"; "caught"; "confined"; "escaped" ]
       (rows @ [ total ]));
  Buffer.add_string b
    (Printf.sprintf "regression seeds: %s\n"
       (if r.Fuzz.Adversary.regression_ok then "caught (no escapes)"
        else "ESCAPED"));
  List.iter
    (fun (case, label, why) ->
      Buffer.add_string b (Printf.sprintf "ESCAPE %s %s: %s\n" case label why))
    r.Fuzz.Adversary.escapes;
  if r.Fuzz.Adversary.escaped = 0 && r.Fuzz.Adversary.regression_ok then
    Buffer.add_string b
      "robust safety holds: every attack was caught or confined\n";
  Buffer.contents b

let ok (t : t) : bool =
  t.report.Fuzz.Adversary.escaped = 0 && t.report.Fuzz.Adversary.regression_ok
