(* Memory-overhead companion to section 5.1: the hash table stores
   24-byte tagged entries only for live pointers, while the shadow space
   reserves 16 bytes per pointer-aligned word but materializes pages on
   demand.  We report the simulated resident set of each configuration
   relative to the uninstrumented run. *)

type row = {
  workload : Workloads.workload;
  base_resident : int;
  hash_resident : int;
  shadow_resident : int;
}

let run_one ?(quick = true) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let hash = Runner.run ~argv (Runner.Softbound Runner.sb_full_hash) m in
  let shadow = Runner.run ~argv (Runner.Softbound Runner.sb_full_shadow) m in
  {
    workload = w;
    base_resident = base.resident_bytes;
    hash_resident = hash.resident_bytes;
    shadow_resident = shadow.resident_bytes;
  }

let run ?(quick = true) () : row list =
  List.map (run_one ~quick) Workloads.all

let render (rows : row list) : string =
  Texttable.render
    ~title:
      "Metadata memory overhead (simulated resident KiB; section 5.1 \
       trade-off)"
    ~headers:[ "benchmark"; "base"; "hash-table"; "shadow-space" ]
    (List.map
       (fun r ->
         [
           r.workload.Workloads.name;
           Printf.sprintf "%d" (r.base_resident / 1024);
           Printf.sprintf "%d" (r.hash_resident / 1024);
           Printf.sprintf "%d" (r.shadow_resident / 1024);
         ])
       rows)
