(* Memory-overhead companion to section 5.1: the hash table stores
   24-byte tagged entries only for live pointers, while the shadow space
   reserves 16 bytes per pointer-aligned word but materializes pages on
   demand.  We report the simulated resident set of each configuration
   relative to the uninstrumented run.

   The related-work schemes keep their metadata in places the simulator
   models as cost (their lookups are charged and their header/slot
   addresses touch the cache) but does not separately materialize, so
   their footprints are reported analytically from each scheme's run,
   using the scheme's documented layout:

   - CGuard: a 16-byte header (base + size) immediately before every
     allocated object -> 16 bytes per lifetime heap allocation;
   - FRAMER: a one-word (8-byte) frame header per object, located via
     the tag in the pointer's top byte (the tag itself costs no
     memory) -> 8 bytes per lifetime heap allocation;
   - L4 Pointer: 128-bit wide pointers carry base/bound inline, so
     every pointer slot written to memory is 8 bytes wider.  Counted
     per metadata store, so rewritten slots are recounted: a dynamic
     upper bound on the widened-slot footprint. *)

type row = {
  workload : Workloads.workload;
  base_resident : int;
  hash_resident : int;
  shadow_resident : int;
  heap_allocs : int;  (** lifetime allocations (uninstrumented run) *)
  cguard_meta : int;  (** 16 B object header per allocation *)
  framer_meta : int;  (** 8 B frame header per allocation *)
  l4_ptr_meta : int;  (** 8 B widening per stored pointer slot *)
}

let run_one ?(quick = true) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  let hash = Runner.run ~argv (Runner.Softbound Runner.sb_full_hash) m in
  let shadow = Runner.run ~argv (Runner.Softbound Runner.sb_full_shadow) m in
  let cguard =
    Runner.run ~argv (Runner.Softbound (Schemes.Cguard.options ())) m
  in
  let framer =
    Runner.run ~argv (Runner.Softbound (Schemes.Framer.options ())) m
  in
  let l4 =
    Runner.run ~argv (Runner.Softbound (Schemes.L4_pointer.options ())) m
  in
  {
    workload = w;
    base_resident = base.resident_bytes;
    hash_resident = hash.resident_bytes;
    shadow_resident = shadow.resident_bytes;
    heap_allocs = base.heap_allocs;
    cguard_meta = 16 * cguard.heap_allocs;
    framer_meta = 8 * framer.heap_allocs;
    l4_ptr_meta = 8 * l4.stats.Interp.State.meta_stores;
  }

let run ?(quick = true) () : row list =
  List.map (run_one ~quick) Workloads.all

let render (rows : row list) : string =
  Texttable.render
    ~title:
      "Metadata memory overhead (simulated resident KiB; section 5.1 \
       trade-off; scheme columns are analytic bytes from the documented \
       layouts)"
    ~headers:
      [
        "benchmark"; "base"; "hash-table"; "shadow-space"; "allocs";
        "cguard B"; "framer B"; "l4-ptr B";
      ]
    (List.map
       (fun r ->
         [
           r.workload.Workloads.name;
           Printf.sprintf "%d" (r.base_resident / 1024);
           Printf.sprintf "%d" (r.hash_resident / 1024);
           Printf.sprintf "%d" (r.shadow_resident / 1024);
           Printf.sprintf "%d" r.heap_allocs;
           Printf.sprintf "%d" r.cguard_meta;
           Printf.sprintf "%d" r.framer_meta;
           Printf.sprintf "%d" r.l4_ptr_meta;
         ])
       rows)

(** Machine-readable record ([BENCH_memory.json], schema pinned by
    {!Bench_check}). *)
let to_json (rows : row list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"memory\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cpus\": %d,\n" (Parutil.available_jobs ()));
  Buffer.add_string buf "  \"unit\": \"bytes\",\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"base_resident\": %d, \
            \"hash_resident\": %d, \"shadow_resident\": %d, \
            \"heap_allocs\": %d, \"cguard_meta_bytes\": %d, \
            \"framer_meta_bytes\": %d, \"l4_ptr_meta_bytes\": %d }%s\n"
           r.workload.Workloads.name r.base_resident r.hash_resident
           r.shadow_resident r.heap_allocs r.cguard_meta r.framer_meta
           r.l4_ptr_meta
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
