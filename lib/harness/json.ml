(* Minimal JSON: a recursive-descent parser and a compact emitter.

   Grown out of the benchmark-artifact validator, this is now shared by
   every harness component that speaks JSON — [Bench_check] (reading
   the committed BENCH_*.json files), and the [serve] protocol (one
   request and one response object per line).  No external dependency:
   the toolchain image carries no JSON library, and the subset needed
   here — objects, arrays, strings, numbers, booleans, null — is small
   enough to keep in one file.

   The emitter is deterministic: keys print in the order the caller
   lists them, numbers print integral values without a fractional part,
   and strings escape exactly the control characters the parser
   understands — so a parse/print round trip of emitter output is the
   identity, which the serve smoke test relies on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' -> (
          advance ();
          let c = peek () in
          advance ();
          match c with
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              (* keep the escape verbatim; key comparisons are ASCII *)
              Buffer.add_string b "\\u";
              go ()
          | c -> Buffer.add_char b c; go ())
      | '\255' -> fail "unterminated string"
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while is_num (peek ()) do advance () done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_string (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            emit v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            emit v)
          kvs;
        Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let field (v : t) (k : string) : t option =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field v k =
  match field v k with Some (Str s) -> Some s | _ -> None

let num_field v k =
  match field v k with Some (Num f) -> Some f | _ -> None

let int_field v k = Option.map int_of_float (num_field v k)

let bool_field v k =
  match field v k with Some (Bool b) -> Some b | _ -> None

let list_field v k =
  match field v k with Some (List vs) -> Some vs | _ -> None

(** Convenience constructors for row emission. *)
let int (n : int) : t = Num (float_of_int n)

let ms (seconds : float) : t = Num (Float.round (seconds *. 1e6) /. 1e3)
