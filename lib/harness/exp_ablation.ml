(* Ablations of SoftBound's design decisions (DESIGN.md section 4).

   Each ablation toggles exactly one option and reports either the
   safety consequence (detection probes) or the cost consequence
   (cycle/memory deltas on the pointer-heavy benchmarks). *)

(* ------------------------------------------------------------------ *)
(* 1. Bounds shrinking: the sub-object overflow of section 2.1.         *)
(* ------------------------------------------------------------------ *)

let shrink_probe = Exp_table1.subobject_probe

type shrink_result = { with_shrink : bool; without_shrink : bool }

let run_shrink () : shrink_result =
  let m = Softbound.compile shrink_probe in
  let d opts =
    Runner.detected (Runner.verdict_of (Runner.run (Runner.Softbound opts) m))
  in
  {
    with_shrink = d Runner.sb_full_shadow;
    without_shrink =
      d { Runner.sb_full_shadow with Softbound.Config.shrink_bounds = false };
  }

(* ------------------------------------------------------------------ *)
(* 2. memcpy metadata heuristic: cost of always copying metadata on a   *)
(*    memcpy-heavy, pointer-free workload.                              *)
(* ------------------------------------------------------------------ *)

let memcpy_workload =
  {|
char src_buf[2048];
char dst_buf[2048];
int main(int argc, char **argv) {
  int reps = 120;
  int r;
  int i;
  long sum = 0;
  if (argc > 1) reps = atoi(argv[1]);
  for (i = 0; i < 2048; i++) src_buf[i] = (char)(i & 0x7f);
  for (r = 0; r < reps; r++) {
    memcpy(dst_buf, src_buf, 2048);
    sum += dst_buf[r % 2048];
  }
  printf("memcpy: sum=%ld\n", sum);
  return 0;
}
|}

type memcpy_result = {
  heuristic_overhead : float;
  always_copy_overhead : float;
  meta_ops_heuristic : int;
  meta_ops_always : int;
}

let run_memcpy () : memcpy_result =
  let m = Softbound.compile memcpy_workload in
  let base = Runner.run Runner.Unprotected m in
  let with_h = Runner.run (Runner.Softbound Runner.sb_full_shadow) m in
  let without =
    Runner.run
      (Runner.Softbound
         { Runner.sb_full_shadow with Softbound.Config.memcpy_heuristic = false })
      m
  in
  let meta (r : Interp.Vm.result) =
    r.stats.Interp.State.meta_loads + r.stats.Interp.State.meta_stores
  in
  {
    heuristic_overhead = Runner.overhead with_h base;
    always_copy_overhead = Runner.overhead without base;
    meta_ops_heuristic = meta with_h;
    meta_ops_always = meta without;
  }

(* ------------------------------------------------------------------ *)
(* 3. Metadata clearing on free: stale metadata from a previous         *)
(*    allocation must not vouch for a new object's pointer slots.       *)
(* ------------------------------------------------------------------ *)

(* A pointer-bearing block is freed; its storage is reused for an
   attacker-controllable buffer; a dangling-style reload of the old slot
   then dereferences whatever the buffer holds.  With clearing ON the
   reloaded pointer has null bounds and the dereference aborts.  With
   clearing OFF the stale metadata still matches the old object and the
   (reused, corrupted) pointer sails through. *)
let stale_meta_probe =
  {|
typedef struct { long *p; long pad; } holder;
long secret = 99;
int main(void) {
  holder *h = (holder*)malloc(sizeof(holder));
  long **alias;
  long *stale;
  h->p = &secret;
  alias = &h->p;        /* remembers the slot's address */
  free(h);
  /* reuse: same-size allocation lands on the same address */
  {
    long *fresh = (long*)malloc(sizeof(holder));
    fresh[0] = (long)&secret;   /* attacker-ish raw value, stored as data */
    /* reload through the old slot address: metadata for this slot is
       whatever free() left behind */
    stale = *alias;
    return (int)*stale;
  }
}
|}

type clear_result = { with_clearing : bool; without_clearing : bool }

let run_clear_free () : clear_result =
  let m = Softbound.compile stale_meta_probe in
  let d opts =
    Runner.detected (Runner.verdict_of (Runner.run (Runner.Softbound opts) m))
  in
  {
    with_clearing = d Runner.sb_full_shadow;
    without_clearing =
      d { Runner.sb_full_shadow with Softbound.Config.clear_free_meta = false };
  }

(* ------------------------------------------------------------------ *)
(* 4. Metadata liveness pruning: instruction-count cost of propagating   *)
(*    metadata nobody can observe.                                      *)
(* ------------------------------------------------------------------ *)

type prune_result = { pruned : float; unpruned : float }

let run_prune ?(quick = true) () : prune_result =
  (* mst loads many pointers whose metadata no check can observe, so the
     pruning effect is large there (treeadd, by contrast, passes every
     loaded pointer straight into a call, leaving nothing to prune) *)
  let w = Option.get (Workloads.find "mst") in
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  {
    pruned =
      Runner.overhead (Runner.run ~argv (Runner.Softbound Runner.sb_full_shadow) m) base;
    unpruned =
      Runner.overhead
        (Runner.run ~argv
           (Runner.Softbound
              { Runner.sb_full_shadow with Softbound.Config.prune_liveness = false })
           m)
        base;
  }

let render () : string =
  let s = run_shrink () in
  let mc = run_memcpy () in
  let cl = run_clear_free () in
  let pr = run_prune () in
  Printf.sprintf
    "Ablations of SoftBound design choices\n\
     1. bounds shrinking (section 3.1): sub-object overflow detected \
     with=%s without=%s (expected yes/no)\n\
     2. memcpy heuristic (section 5.2): overhead with heuristic %s \
     (meta ops %d) vs always-copy %s (meta ops %d)\n\
     3. free-time metadata clearing (section 5.2): stale-metadata reuse \
     detected with=%s without=%s (expected yes/no)\n\
     4. metadata liveness pruning: mst overhead pruned %s vs \
     unpruned %s\n"
    (Runner.yes_no s.with_shrink)
    (Runner.yes_no s.without_shrink)
    (Texttable.pct mc.heuristic_overhead)
    mc.meta_ops_heuristic
    (Texttable.pct mc.always_copy_overhead)
    mc.meta_ops_always
    (Runner.yes_no cl.with_clearing)
    (Runner.yes_no cl.without_clearing)
    (Texttable.pct pr.pruned)
    (Texttable.pct pr.unpruned)
