(* Section 6.5: performance comparison to the MSCC-style pointer-based
   scheme.  The paper reports MSCC at 17%-185% (avg 68%) for spatial-only
   checking, and cites `go` at 144% under MSCC vs 55% under SoftBound —
   SoftBound should come out consistently cheaper, with the gap widest on
   metadata-heavy programs. *)

type row = {
  workload : Workloads.workload;
  softbound : float;
  mscc : float;
}

let run_one ?(quick = false) (w : Workloads.workload) : row =
  let m = Runner.compile_workload w in
  let argv = if quick then w.Workloads.quick_args else [] in
  let base = Runner.run ~argv Runner.Unprotected m in
  {
    workload = w;
    softbound =
      Runner.overhead (Runner.run ~argv (Runner.Softbound Runner.sb_full_shadow) m) base;
    mscc = Runner.overhead (Runner.run ~argv Runner.Mscc m) base;
  }

let run ?(quick = false) () : row list =
  List.map (run_one ~quick) Workloads.all

let render (rows : row list) : string =
  let avg f =
    List.fold_left (fun a r -> a +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  Texttable.render
    ~title:"Section 6.5: SoftBound (full/shadow) vs MSCC-style overheads"
    ~headers:[ "benchmark"; "softbound"; "mscc-style"; "sb cheaper" ]
    (List.map
       (fun r ->
         [
           r.workload.Workloads.name;
           Texttable.pct r.softbound;
           Texttable.pct r.mscc;
           Runner.yes_no (r.softbound <= r.mscc +. 0.02);
         ])
       rows
    @ [ [ "average"; Texttable.pct (avg (fun r -> r.softbound));
          Texttable.pct (avg (fun r -> r.mscc)); "" ] ])
  ^ "paper: MSCC avg 68% (17-185%), e.g. go 144% vs SoftBound 55%\n"
