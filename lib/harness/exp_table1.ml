(* Table 1: qualitative comparison of approaches.

   For the schemes implemented in this repository (the Jones–Kelly-style
   object-table checker standing in for JKRLDA, the MSCC-style transform,
   and SoftBound) the attribute cells are *measured* by running probe
   programs; the SafeC and CCured rows are reproduced from the paper's
   table (those systems are not implemented here).

   Probes:
   - completeness (sub-object): overflow an array inside a struct — a
     complete scheme flags it;
   - arbitrary casts: wild-cast a buffer, manipulate it, cast back and
     use it correctly — a compatible scheme neither crashes nor
     false-positives, and still catches a real violation afterwards;
   - memory layout: the program asserts sizeof/field-offset identities
     that fat-pointer schemes would break — all our schemes keep layout. *)

let subobject_probe =
  {|
typedef struct { char str[8]; long guard; } node_t;
int main(void) {
  node_t n;
  char *p = n.str;
  int i;
  n.guard = 42;
  for (i = 0; i < 12; i++) p[i] = 'A';   /* overflows str into guard */
  return n.guard == 42 ? 1 : 0;
}
|}

let wild_cast_probe =
  {|
typedef struct { int a; int b; char tail[8]; } rec_t;
int main(void) {
  rec_t *r = (rec_t*)malloc(sizeof(rec_t));
  long *wild = (long*)r;            /* arbitrary cast */
  rec_t *back;
  wild[0] = 0x0000000700000003;     /* writes a and b at once */
  back = (rec_t*)wild;              /* cast back */
  back->tail[0] = 'x';              /* legal use */
  if (back->a != 3 || back->b != 7) return 1;
  back->tail[9] = 'y';              /* real violation: must be caught */
  return 0;
}
|}

(* the benign prefix of the wild-cast probe, used to rule out false
   positives separately from the must-catch tail violation *)
let wild_cast_benign_probe =
  {|
typedef struct { int a; int b; char tail[8]; } rec_t;
int main(void) {
  rec_t *r = (rec_t*)malloc(sizeof(rec_t));
  long *wild = (long*)r;
  rec_t *back;
  wild[0] = 0x0000000700000003;
  back = (rec_t*)wild;
  back->tail[0] = 'x';
  if (back->a != 3 || back->b != 7) return 1;
  return 0;
}
|}

let layout_probe =
  {|
typedef struct { char c; int i; char d; long l; } lay_t;
int main(void) {
  lay_t arr[3];
  char *base = (char*)&arr[0];
  char *second = (char*)&arr[1];
  if (sizeof(lay_t) != 24) return 1;
  if (second - base != 24) return 2;
  if ((char*)&arr[0].l - base != 16) return 3;
  return 0;
}
|}

type attr_result = Measured of bool | Literature of bool

type row = {
  scheme : string;
  no_src_change : attr_result;
  complete_subfield : attr_result;
  layout_unchanged : attr_result;
  arbitrary_casts : attr_result;
  dynamic_lib : attr_result;
}

let probe_scheme (s : Runner.scheme) =
  let run src = Runner.verdict_of (Runner.run s (Softbound.compile src)) in
  (* sub-object completeness: the overflow must be flagged *)
  let complete = Runner.detected (run subobject_probe) in
  (* arbitrary casts: the benign portion runs, the final violation is
     caught or at least nothing false-fires before it.  "supports casts"
     means: not (false positive / crash on the benign prefix).  Exit 1
     would mean the benign logic broke. *)
  let benign_ok =
    match run wild_cast_benign_probe with Runner.Clean 0 -> true | _ -> false
  in
  let casts =
    benign_ok
    &&
    match run wild_cast_probe with
    | Runner.Detected _ -> true (* caught the real tail violation *)
    | Runner.Clean 0 -> true (* ran fine but missed the tail violation *)
    | _ -> false
  in
  let layout =
    match run layout_probe with Runner.Clean 0 -> true | Runner.Detected _ -> true | _ -> false
  in
  (complete, casts, layout)

let run () : row list =
  let jk_complete, jk_casts, jk_layout = probe_scheme Runner.Jones_kelly in
  let mscc_complete, _, mscc_layout = probe_scheme Runner.Mscc in
  let sb_complete, sb_casts, sb_layout =
    probe_scheme (Runner.Softbound Runner.sb_full_shadow)
  in
  [
    {
      scheme = "SafeC [4] (paper)";
      no_src_change = Literature true;
      complete_subfield = Literature true;
      layout_unchanged = Literature false;
      arbitrary_casts = Literature true;
      dynamic_lib = Literature false;
    };
    {
      scheme = "JKRLDA-style (object table)";
      no_src_change = Measured true;
      complete_subfield = Measured jk_complete;
      layout_unchanged = Measured jk_layout;
      arbitrary_casts = Measured jk_casts;
      dynamic_lib = Literature true;
    };
    {
      scheme = "CCured Safe/Seq (paper)";
      no_src_change = Literature false;
      complete_subfield = Literature true;
      layout_unchanged = Literature false;
      arbitrary_casts = Literature false;
      dynamic_lib = Literature false;
    };
    {
      scheme = "CCured Wild (paper)";
      no_src_change = Literature true;
      complete_subfield = Literature true;
      layout_unchanged = Literature false;
      arbitrary_casts = Literature true;
      dynamic_lib = Literature false;
    };
    {
      scheme = "MSCC-style";
      no_src_change = Measured true;
      complete_subfield = Measured mscc_complete;
      layout_unchanged = Measured mscc_layout;
      arbitrary_casts = Literature false;
      dynamic_lib = Literature true;
    };
    {
      scheme = "SoftBound";
      no_src_change = Measured true;
      complete_subfield = Measured sb_complete;
      layout_unchanged = Measured sb_layout;
      arbitrary_casts = Measured sb_casts;
      dynamic_lib = Measured true;
    };
  ]

let cell = function
  | Measured b -> (if b then "Yes" else "No") ^ "*"
  | Literature b -> if b then "Yes" else "No"

let render (rows : row list) : string =
  Texttable.render
    ~title:
      "Table 1: comparison of approaches (* = measured by probe programs \
       in this reproduction; others from the paper)"
    ~headers:
      [ "scheme"; "no src change"; "complete (subfield)"; "layout kept";
        "arbitrary casts"; "dyn-link lib" ]
    (List.map
       (fun r ->
         [
           r.scheme;
           cell r.no_src_change;
           cell r.complete_subfield;
           cell r.layout_unchanged;
           cell r.arbitrary_casts;
           cell r.dynamic_lib;
         ])
       rows)
  ^ "expected: SoftBound is the only row with Yes in every column\n"
