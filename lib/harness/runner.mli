(** Shared pipeline driver for the experiments: run a compiled module
    under any protection scheme with uniform accounting. *)

module Ir = Sbir.Ir

(** A protection scheme: nothing, a SoftBound configuration, one of the
    baseline tools, or one of the related-work schemes from {!Schemes}
    (CGuard object headers, FRAMER frame tags, L4 wide pointers). *)
type scheme =
  | Unprotected
  | Softbound of Softbound.Config.options
  | Jones_kelly
  | Memcheck
  | Mudflap
  | Mscc
  | Cguard
  | Framer
  | L4_pointer

val scheme_name : scheme -> string

(** {1 The four SoftBound configurations of Figure 2} *)

val sb_full_shadow : Softbound.Config.options
val sb_full_hash : Softbound.Config.options
val sb_store_shadow : Softbound.Config.options
val sb_store_hash : Softbound.Config.options

val run :
  ?argv:string list ->
  ?inputs:string list ->
  ?max_steps:int ->
  ?cfg:Interp.State.config ->
  scheme ->
  Ir.modul ->
  Interp.Vm.result
(** Run a module under a scheme.  [cfg] supplies the non-scheme VM
    settings (observability, tracing, cache use); [argv]/[inputs]/
    [max_steps] override the corresponding [cfg] fields.  SoftBound
    schemes instrument through {!instrument_cached}. *)

val instrument_cached :
  ?opts:Softbound.Config.options -> Ir.modul -> Ir.modul * int
(** Transform-result cache, keyed by module CONTENT (a digest of the
    printed IR, memoized per physical value) and the transform-relevant
    options (the metadata facility is normalized away — shadow and hash
    runs share one transform).  Structurally identical modules hit the
    same entry even when compiled separately, which is what keeps the
    serve daemon from re-instrumenting every request.  Returns the
    instrumented module and its assigned-site count. *)

val transforms_performed : unit -> int
(** Process-wide count of actual (non-cached) transform runs — the
    regression hook for "the transform runs once per (program, elim)
    pair". *)

val compile_source_cached : string -> Ir.modul
(** Compile MiniC source through a digest-keyed LRU: identical text
    yields the identical (physically equal) module value, so repeated
    submissions share one compile, one transform, and one closure-engine
    compilation.  Frontend errors (lex/parse/type/lower) propagate to
    the caller and are never cached. *)

val source_compiles_performed : unit -> int
(** Process-wide count of actual (non-cached) source compiles — the
    cache-hit regression hook for {!compile_source_cached}. *)

exception
  Workload_failed of {
    workload : string;  (** which benchmark *)
    scheme : string;  (** which protection configuration *)
    quick : bool;  (** quick or full argument set *)
    outcome : string;  (** how it actually ended *)
  }
(** Raised (with a registered printer) when an experiment expected a
    clean exit and did not get one — replaces the old bare [failwith]
    that died without saying which kernel/config failed. *)

val check_clean :
  ?quick:bool ->
  workload:string ->
  scheme:string ->
  Interp.Vm.result ->
  unit
(** [check_clean ~workload ~scheme r] raises {!Workload_failed} unless
    [r] exited 0. *)

(** {1 Outcome classification for the detection tables} *)

type verdict =
  | Detected of string  (** the scheme reported a violation *)
  | Hijacked of string  (** the attack took control *)
  | Clean of int  (** normal exit *)
  | Crashed of string  (** other trap (segfault, runtime error, ...) *)

val verdict_of : Interp.Vm.result -> verdict
val detected : verdict -> bool
val yes_no : bool -> string

val overhead : Interp.Vm.result -> Interp.Vm.result -> float
(** [overhead r base]: simulated-cycle overhead of [r] relative to
    [base] (0.79 = 79%). *)

val compile_workload : Workloads.workload -> Ir.modul

val pointer_op_fraction : Interp.Vm.result -> float
(** Fraction of memory operations that moved pointer values — Figure 1's
    metric. *)
