(* Shared pipeline driver for the experiments: compile once, run a module
   under any of the named protection schemes, and summarize outcomes. *)

module Ir = Sbir.Ir

type scheme =
  | Unprotected
  | Softbound of Softbound.Config.options
  | Jones_kelly
  | Memcheck
  | Mudflap
  | Mscc

let scheme_name = function
  | Unprotected -> "unprotected"
  | Softbound o ->
      Printf.sprintf "softbound-%s-%s"
        (Softbound.Config.mode_name o.Softbound.Config.mode)
        (Softbound.Config.facility_name o.Softbound.Config.facility)
  | Jones_kelly -> "jones-kelly"
  | Memcheck -> "memcheck-like"
  | Mudflap -> "mudflap-like"
  | Mscc -> "mscc-like"

(* The four SoftBound configurations of Figure 2. *)
let sb_full_shadow = Softbound.Config.default

let sb_full_hash =
  { Softbound.Config.default with facility = Softbound.Config.Hash_table }

let sb_store_shadow = Softbound.Config.store_only

let sb_store_hash =
  { Softbound.Config.store_only with facility = Softbound.Config.Hash_table }

let run ?(argv = []) ?(inputs = []) ?(max_steps = 2_000_000_000)
    (scheme : scheme) (m : Ir.modul) : Interp.Vm.result =
  let base =
    { Interp.State.default_config with argv; inputs; max_steps }
  in
  match scheme with
  | Unprotected -> Softbound.run_unprotected ~cfg:base m
  | Softbound opts -> Softbound.run_protected ~opts ~cfg:base m
  | Mscc -> Baselines.Mscc.run ~cfg:base m
  | Jones_kelly ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Jones_kelly.make ()) }
        m
  | Memcheck ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Memcheck_like.make ()) }
        m
  | Mudflap ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Mudflap_like.make ()) }
        m

exception
  Workload_failed of {
    workload : string;
    scheme : string;
    quick : bool;
    outcome : string;
  }

let () =
  Printexc.register_printer (function
    | Workload_failed { workload; scheme; quick; outcome } ->
        Some
          (Printf.sprintf
             "workload %S under scheme %S (%s args) did not run cleanly: %s"
             workload scheme
             (if quick then "quick" else "full")
             outcome)
    | _ -> None)

let check_clean ?(quick = false) ~workload ~scheme (r : Interp.Vm.result) :
    unit =
  match r.Interp.Vm.outcome with
  | Interp.State.Exit 0 -> ()
  | o ->
      raise
        (Workload_failed
           {
             workload;
             scheme;
             quick;
             outcome = Interp.State.string_of_outcome o;
           })

(** Classify a run for detection tables. *)
type verdict =
  | Detected of string  (** the scheme reported a violation *)
  | Hijacked of string  (** the attack took control *)
  | Clean of int  (** normal exit *)
  | Crashed of string  (** other trap (segfault, runtime error, ...) *)

let verdict_of (r : Interp.Vm.result) : verdict =
  match r.outcome with
  | Interp.State.Exit n -> Clean n
  | Interp.State.Trapped (Interp.State.Bounds_violation _ as t) ->
      Detected (Interp.State.string_of_trap t)
  | Interp.State.Trapped (Interp.State.Object_violation _ as t) ->
      Detected (Interp.State.string_of_trap t)
  | Interp.State.Trapped (Interp.State.Hijack s) -> Hijacked s
  | Interp.State.Trapped t -> Crashed (Interp.State.string_of_trap t)

let detected = function Detected _ -> true | _ -> false
let yes_no b = if b then "yes" else "no"

(** Simulated-cycle overhead of [r] relative to baseline [b]. *)
let overhead (r : Interp.Vm.result) (b : Interp.Vm.result) : float =
  float_of_int r.stats.Interp.State.cycles
  /. float_of_int b.stats.Interp.State.cycles
  -. 1.0

let compile_workload (w : Workloads.workload) : Ir.modul =
  Softbound.compile w.Workloads.source

(** Fraction of memory operations that move pointer values (Figure 1's
    metric). *)
let pointer_op_fraction (r : Interp.Vm.result) : float =
  let s = r.stats in
  let total = s.Interp.State.mem_reads + s.Interp.State.mem_writes in
  if total = 0 then 0.0
  else float_of_int s.Interp.State.ptr_mem_ops /. float_of_int total
