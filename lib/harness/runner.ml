(* Shared pipeline driver for the experiments: compile once, run a module
   under any of the named protection schemes, and summarize outcomes. *)

module Ir = Sbir.Ir

type scheme =
  | Unprotected
  | Softbound of Softbound.Config.options
  | Jones_kelly
  | Memcheck
  | Mudflap
  | Mscc
  | Cguard
  | Framer
  | L4_pointer

let scheme_name = function
  | Unprotected -> "unprotected"
  | Softbound o ->
      Printf.sprintf "softbound-%s-%s"
        (Softbound.Config.mode_name o.Softbound.Config.mode)
        (Softbound.Config.facility_name o.Softbound.Config.facility)
  | Jones_kelly -> "jones-kelly"
  | Memcheck -> "memcheck-like"
  | Mudflap -> "mudflap-like"
  | Mscc -> "mscc-like"
  | Cguard -> "cguard"
  | Framer -> "framer"
  | L4_pointer -> "l4-pointer"

(* The four SoftBound configurations of Figure 2. *)
let sb_full_shadow = Softbound.Config.default

let sb_full_hash =
  { Softbound.Config.default with facility = Softbound.Config.Hash_table }

let sb_store_shadow = Softbound.Config.store_only

let sb_store_hash =
  { Softbound.Config.store_only with facility = Softbound.Config.Hash_table }

(* ------------------------------------------------------------------ *)
(* Transform cache                                                      *)
(* ------------------------------------------------------------------ *)

(* The metadata facility is a pure runtime choice — the transformation
   emits the same IR for shadow-space and hash-table runs — so the
   cache key normalizes it away: the 8 scheme configurations of the
   ablation matrix (full/store × shadow/hash × elim on/off) share 4
   transforms per program.

   Modules are keyed by CONTENT — a digest of the printed IR — with a
   physical-identity memo in front so the common case (the experiments
   compile once and re-run many schemes over the same value) never
   re-prints the module.  Pure physical keying was a bug: two compiles
   of identical source text (every serve request, repeated CLI calls in
   one process) produced structurally equal but physically distinct
   modules, and each one re-instrumented from scratch.  Options compare
   structurally, as before. *)

let transform_count = ref 0

(* The transform and compile caches below are the only mutable state
   shared between domains when a harness driver fans out (parallel fuzz
   evaluates self-contained cases and never lands here, but the
   parallel experiment runners do).  One lock serializes both: the
   transform itself runs under it, so a module/options pair is
   transformed exactly once no matter how many domains race to it, and
   [transforms_performed] counts the same work a sequential run does. *)
let cache_lock = Mutex.create ()

let with_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let transforms_performed () = with_lock (fun () -> !transform_count)

let norm_opts (o : Softbound.Config.options) =
  { o with Softbound.Config.facility = Softbound.Config.Shadow_space }

let cache_capacity = 32

(* physical value -> content digest, so the digest of a module the
   process keeps re-using is computed exactly once.  Bounded like the
   caches it fronts; entries beyond the cap age out FIFO. *)
let digest_memo_capacity = 64
let digest_memo : (Ir.modul * string) list ref = ref []

let module_digest (m : Ir.modul) : string =
  match List.find_opt (fun (m', _) -> m' == m) !digest_memo with
  | Some (_, d) -> d
  | None ->
      let d = Digest.string (Sbir.Pretty_ir.dump_module m) in
      let pruned =
        if List.length !digest_memo >= digest_memo_capacity then
          List.filteri (fun i _ -> i < digest_memo_capacity - 1) !digest_memo
        else !digest_memo
      in
      digest_memo := (m, d) :: pruned;
      d

let cache :
    ((string * Softbound.Config.options) * (Ir.modul * int)) list ref =
  ref []

let instrument_cached ?(opts = Softbound.Config.default) (m : Ir.modul) :
    Ir.modul * int =
  with_lock @@ fun () ->
  let key = (module_digest m, norm_opts opts) in
  let rec find acc = function
    | [] -> None
    | ((k', v) as e) :: rest when k' = key ->
        (* move the hit to the front (LRU) *)
        cache := e :: List.rev_append acc rest;
        Some v
    | e :: rest -> find (e :: acc) rest
  in
  match find [] !cache with
  | Some v -> v
  | None ->
      incr transform_count;
      let v = Softbound.instrument_with_sites ~opts m in
      let pruned =
        if List.length !cache >= cache_capacity then
          List.filteri (fun i _ -> i < cache_capacity - 1) !cache
        else !cache
      in
      cache := (key, v) :: pruned;
      v

let run ?(argv = []) ?(inputs = []) ?(max_steps = 2_000_000_000)
    ?(cfg = Interp.State.default_config) (scheme : scheme) (m : Ir.modul) :
    Interp.Vm.result =
  let base = { cfg with Interp.State.argv; inputs; max_steps } in
  let run_transform opts =
    let m', _sites = instrument_cached ~opts m in
    let cfg =
      {
        base with
        Interp.State.meta =
          Some (Softbound.facility_of opts.Softbound.Config.facility);
        store_only = opts.Softbound.Config.mode = Softbound.Config.Store_only;
      }
    in
    Interp.Engine.run ~cfg m'
  in
  match scheme with
  | Unprotected -> Softbound.run_unprotected ~cfg:base m
  | Softbound opts -> run_transform opts
  | Cguard -> run_transform (Schemes.Cguard.options ())
  | Framer -> run_transform (Schemes.Framer.options ())
  | L4_pointer -> run_transform (Schemes.L4_pointer.options ())
  | Mscc -> Baselines.Mscc.run ~cfg:base m
  | Jones_kelly ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Jones_kelly.make ()) }
        m
  | Memcheck ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Memcheck_like.make ()) }
        m
  | Mudflap ->
      Softbound.run_unprotected
        ~cfg:{ base with checker = Some (Baselines.Mudflap_like.make ()) }
        m

exception
  Workload_failed of {
    workload : string;
    scheme : string;
    quick : bool;
    outcome : string;
  }

let () =
  Printexc.register_printer (function
    | Workload_failed { workload; scheme; quick; outcome } ->
        Some
          (Printf.sprintf
             "workload %S under scheme %S (%s args) did not run cleanly: %s"
             workload scheme
             (if quick then "quick" else "full")
             outcome)
    | _ -> None)

let check_clean ?(quick = false) ~workload ~scheme (r : Interp.Vm.result) :
    unit =
  match r.Interp.Vm.outcome with
  | Interp.State.Exit 0 -> ()
  | o ->
      raise
        (Workload_failed
           {
             workload;
             scheme;
             quick;
             outcome = Interp.State.string_of_outcome o;
           })

(** Classify a run for detection tables. *)
type verdict =
  | Detected of string  (** the scheme reported a violation *)
  | Hijacked of string  (** the attack took control *)
  | Clean of int  (** normal exit *)
  | Crashed of string  (** other trap (segfault, runtime error, ...) *)

let verdict_of (r : Interp.Vm.result) : verdict =
  match r.outcome with
  | Interp.State.Exit n -> Clean n
  | Interp.State.Trapped (Interp.State.Bounds_violation _ as t) ->
      Detected (Interp.State.string_of_trap t)
  | Interp.State.Trapped (Interp.State.Object_violation _ as t) ->
      Detected (Interp.State.string_of_trap t)
  | Interp.State.Trapped (Interp.State.Hijack s) -> Hijacked s
  | Interp.State.Trapped t -> Crashed (Interp.State.string_of_trap t)

let detected = function Detected _ -> true | _ -> false
let yes_no b = if b then "yes" else "no"

(** Simulated-cycle overhead of [r] relative to baseline [b]. *)
let overhead (r : Interp.Vm.result) (b : Interp.Vm.result) : float =
  float_of_int r.stats.Interp.State.cycles
  /. float_of_int b.stats.Interp.State.cycles
  -. 1.0

(* Memoized per workload name: the experiments (fig1, fig2, elim,
   breakdown) each recompile the same kernels; one IR value per
   workload also makes the physical-equality transform cache effective
   across experiments within a process. *)
let compiled_workloads : (string, Ir.modul) Hashtbl.t = Hashtbl.create 16

let compile_workload (w : Workloads.workload) : Ir.modul =
  (* under [cache_lock]: parallel drivers must agree on ONE module value
     per workload, or the physical-equality transform cache above sees
     distinct modules and re-instruments per domain *)
  with_lock @@ fun () ->
  match Hashtbl.find_opt compiled_workloads w.Workloads.name with
  | Some m -> m
  | None ->
      let m = Softbound.compile w.Workloads.source in
      Hashtbl.add compiled_workloads w.Workloads.name m;
      m

(* Source text -> compiled module, keyed by content digest.  Returning
   the SAME module value for identical text is what lets every
   physical-identity fast path downstream (the digest memo above, the
   closure engine's compiled-module cache) hit when the serve daemon
   sees the same program again, request after request. *)
let source_cache_capacity = 64
let source_compile_count = ref 0
let source_cache : (string * Ir.modul) list ref = ref []

let compile_source_cached (src : string) : Ir.modul =
  with_lock @@ fun () ->
  let key = Digest.string src in
  let rec find acc = function
    | [] -> None
    | ((k', m) as e) :: rest when String.equal k' key ->
        source_cache := e :: List.rev_append acc rest;
        Some m
    | e :: rest -> find (e :: acc) rest
  in
  match find [] !source_cache with
  | Some m -> m
  | None ->
      incr source_compile_count;
      let m = Softbound.compile src in
      let pruned =
        if List.length !source_cache >= source_cache_capacity then
          List.filteri (fun i _ -> i < source_cache_capacity - 1) !source_cache
        else !source_cache
      in
      source_cache := (key, m) :: pruned;
      m

let source_compiles_performed () = with_lock (fun () -> !source_compile_count)

(** Fraction of memory operations that move pointer values (Figure 1's
    metric). *)
let pointer_op_fraction (r : Interp.Vm.result) : float =
  let s = r.stats in
  let total = s.Interp.State.mem_reads + s.Interp.State.mem_writes in
  if total = 0 then 0.0
  else float_of_int s.Interp.State.ptr_mem_ops /. float_of_int total
