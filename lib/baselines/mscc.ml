(* MSCC-style configuration (Xu, DuVarney & Sekar, FSE 2004) for the
   section 6.5 performance comparison.

   MSCC is a pointer-based source transformation, like SoftBound, but:
   - it keeps metadata in linked shadow structures rather than a flat
     shadow space — modelled by the hash-table facility (pointer-chasing
     lookups with tag checks);
   - in its best-performing configuration it loses sub-object overflow
     detection — modelled by disabling bounds shrinking;
   - it eschews whole-program analysis *and* the post-instrumentation
     cleanup SoftBound inherits from re-running LLVM's optimizers —
     modelled by disabling the metadata-liveness pruning, so every
     pointer's metadata is materialized and propagated whether or not a
     check can ever observe it;
   - it cannot handle arbitrary (wild) casts — reported as an attribute
     in the Table 1 probe, not modelled as a crash. *)

let options : Softbound.Config.options =
  {
    Softbound.Config.mode = Softbound.Config.Full_checking;
    facility = Softbound.Config.Hash_table;
    shrink_bounds = false;
    memcpy_heuristic = false;
    clear_stack_meta = true;
    clear_free_meta = true;
    fptr_signatures = false;
    prune_liveness = false;
    eliminate_checks = false;
    widen_checks = false;
  }

(** Run a module under the MSCC-style transformation. *)
let run ?(cfg = Interp.State.default_config) (m : Sbir.Ir.modul) :
    Interp.Vm.result =
  Softbound.run_protected ~opts:options ~cfg m
