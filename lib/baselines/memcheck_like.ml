(* Memcheck (Valgrind)-style checker (Table 4's "Valgrind" column).

   Tracks *heap* addressability only: accesses must land inside a live
   heap block; the guard gaps the allocator leaves between blocks act as
   red zones, and freed blocks stay poisoned until reused.

   The defining blind spot reproduced here (and visible in Table 4): no
   tracking of stack or global objects, so overflows there go unnoticed —
   "Valgrind does not detect overflows on the stack, leading to its
   failure to detect some of the bugs" (section 6.2). *)

open Interp.State

module IMap = Map.Make (Int)

type block = { bsize : int; blive : bool }

let make () : checker =
  let blocks = ref IMap.empty in
  let redzone = 16 in
  let handle = function
    | Ev_alloc { base; size; kind = AHeap } ->
        blocks := IMap.add base { bsize = size; blive = true } !blocks;
        (4, None)
    | Ev_free { base; kind = AHeap; _ } ->
        (match IMap.find_opt base !blocks with
        | Some b -> blocks := IMap.add base { b with blive = false } !blocks
        | None -> ());
        (4, None)
    | Ev_alloc _ | Ev_free _ -> (0, None) (* stack/globals: not tracked *)
    | Ev_ptr_arith _ -> (0, None) (* Memcheck does not check arithmetic *)
    | Ev_access { addr; size; _ } -> (
        (* only judge addresses inside the heap segment *)
        if
          addr < Machine.Layout.heap_base
          || addr >= Machine.Layout.heap_base + 0x0004_0000_0000
        then (1, None)
        else
          match IMap.find_last_opt (fun b -> b <= addr) !blocks with
          | None -> (2, None)
          | Some (base, b) ->
              if b.blive && addr + size <= base + b.bsize then (2, None)
              else if not b.blive && addr < base + b.bsize then
                ( 2,
                  Some
                    (Printf.sprintf "use of freed heap block at 0x%x" addr) )
              else if addr < base + b.bsize + redzone then
                ( 2,
                  Some
                    (Printf.sprintf
                       "heap block overrun: access [0x%x,+%d) runs %d bytes past block [0x%x,+%d)"
                       addr size
                       (addr + size - (base + b.bsize))
                       base b.bsize) )
              else (2, None))
  in
  { ck_name = "memcheck-like"; ck_handle = handle }
