(* GCC Mudflap-style checker (Table 4's "MudFlap" column).

   Mudflap instruments every dereference and validates it against a
   database of live objects — heap blocks, stack objects and globals
   alike (unlike Memcheck it does see the stack).  Like every
   object-granularity tool it cannot see *sub-object* overflows: an
   access that stays inside the enclosing object is fine by construction
   (section 2.1's array-inside-struct example).

   The object database here is a chunked hash index (Mudflap itself uses
   a lookup cache in front of a tree; the cost charged models a cache
   hit plus occasional deeper search). *)

open Interp.State

let chunk_bits = 6 (* 64-byte chunks *)

let make () : checker =
  (* chunk index -> (base, size) list of overlapping objects *)
  let index : (int, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
  let chunks_of base size =
    let lo = base lsr chunk_bits in
    let hi = (base + max 1 size - 1) lsr chunk_bits in
    (lo, hi)
  in
  let add base size =
    let lo, hi = chunks_of base size in
    for c = lo to hi do
      let cur = Option.value (Hashtbl.find_opt index c) ~default:[] in
      Hashtbl.replace index c ((base, size) :: cur)
    done
  in
  let del base size =
    let lo, hi = chunks_of base size in
    for c = lo to hi do
      match Hashtbl.find_opt index c with
      | None -> ()
      | Some l ->
          Hashtbl.replace index c
            (List.filter (fun (b, _) -> b <> base) l)
    done
  in
  let handle = function
    | Ev_alloc { base; size; _ } ->
        add base size;
        (3, None)
    | Ev_free { base; size; _ } ->
        del base size;
        (3, None)
    | Ev_ptr_arith _ -> (0, None)
    | Ev_access { addr; size; _ } ->
        let c = addr lsr chunk_bits in
        (* any object containing [addr] necessarily overlaps addr's chunk *)
        let candidates =
          Option.value (Hashtbl.find_opt index c) ~default:[]
        in
        let ok =
          List.exists
            (fun (b, s) -> addr >= b && addr + size <= b + s)
            candidates
        in
        let cost = 3 + (List.length candidates / 4) in
        if ok then (cost, None)
        else
          ( cost,
            Some
              (Printf.sprintf "access at 0x%x is not within any live object"
                 addr) )
  in
  { ck_name = "mudflap-like"; ck_handle = handle }
