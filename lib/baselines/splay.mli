(** A splay tree over half-open address intervals, keyed by base address.

    The data structure behind the object-table approaches' lookup (paper
    section 2.1: "the object-lookup table is often implemented as a splay
    tree, which can be a performance bottleneck").  Every operation
    reports the length of the access path it walked ({!last_path}); the
    Jones–Kelly baseline charges that as its bookkeeping cost, so the
    splay-tree bottleneck appears in simulated cycles exactly where the
    paper says it hurts. *)

type t

val create : unit -> t
val clear : t -> unit

val size : t -> int
(** Number of intervals currently stored. *)

val insert : t -> base:int -> size:int -> int
(** Insert (or resize) the interval starting at [base]; returns the
    access-path length walked. *)

val remove : t -> base:int -> int
(** Remove the interval at exactly [base] (no-op if absent); returns the
    access-path length. *)

val find_containing : t -> int -> (int * int) option
(** [find_containing t addr] is the [(base, size)] of the interval
    containing [addr], if any.  Splays, so repeated nearby queries are
    cheap. *)

val last_path : t -> int
(** Access-path length of the most recent operation. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** In-order fold over [(base, size)] pairs. *)
