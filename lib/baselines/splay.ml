(* A splay tree over half-open intervals, keyed by base address.

   This is the data structure the object-table approaches use for their
   object lookup (paper section 2.1: "the object-lookup table is often
   implemented as a splay tree, which can be a performance bottleneck").
   Each operation reports the length of the access path it walked; the
   Jones–Kelly baseline charges that as its bookkeeping cost, so the
   splay-tree bottleneck shows up in simulated cycles exactly where the
   paper says it hurts.

   Classic purely functional splay (zig / zig-zig / zig-zag), wrapped in
   a small mutable record. *)

type tree = Leaf | Node of tree * int * int * tree  (** l, base, size, r *)

type t = {
  mutable root : tree;
  mutable count : int;
  mutable last_path : int;
}

let create () = { root = Leaf; count = 0; last_path = 0 }

let clear t =
  t.root <- Leaf;
  t.count <- 0;
  t.last_path <- 0

let size t = t.count

(* Splay [k] to the root (or the last node on the search path if [k] is
   absent), counting visited nodes in [steps]. *)
let splay_tree (steps : int ref) (k : int) (tr : tree) : tree =
  let rec go t =
    match t with
    | Leaf -> Leaf
    | Node (l, kx, vx, r) -> (
        incr steps;
        if k = kx then t
        else if k < kx then
          match l with
          | Leaf -> t
          | Node (ll, ky, vy, lr) ->
              incr steps;
              if k = ky then Node (ll, ky, vy, Node (lr, kx, vx, r))
              else if k < ky then (
                match go ll with
                | Leaf -> Node (ll, ky, vy, Node (lr, kx, vx, r))
                | Node (a, kz, vz, b) ->
                    Node (a, kz, vz, Node (b, ky, vy, Node (lr, kx, vx, r))))
              else (
                match go lr with
                | Leaf -> Node (ll, ky, vy, Node (lr, kx, vx, r))
                | Node (a, kz, vz, b) ->
                    Node (Node (ll, ky, vy, a), kz, vz, Node (b, kx, vx, r)))
        else
          match r with
          | Leaf -> t
          | Node (rl, ky, vy, rr) ->
              incr steps;
              if k = ky then Node (Node (l, kx, vx, rl), ky, vy, rr)
              else if k > ky then (
                match go rr with
                | Leaf -> Node (Node (l, kx, vx, rl), ky, vy, rr)
                | Node (a, kz, vz, b) ->
                    Node (Node (Node (l, kx, vx, rl), ky, vy, a), kz, vz, b))
              else (
                match go rl with
                | Leaf -> Node (Node (l, kx, vx, rl), ky, vy, rr)
                | Node (a, kz, vz, b) ->
                    Node (Node (l, kx, vx, a), kz, vz, Node (b, ky, vy, rr))))
  in
  go tr

let splay t k =
  let steps = ref 0 in
  t.root <- splay_tree steps k t.root;
  t.last_path <- !steps

(** Insert (or resize) the interval starting at [base]; returns the path
    length walked. *)
let insert t ~base ~size =
  splay t base;
  (match t.root with
  | Leaf ->
      t.root <- Node (Leaf, base, size, Leaf);
      t.count <- t.count + 1
  | Node (l, k, _, r) when k = base -> t.root <- Node (l, k, size, r)
  | Node (l, k, v, r) ->
      if base < k then begin
        t.root <- Node (l, base, size, Node (Leaf, k, v, r));
        t.count <- t.count + 1
      end
      else begin
        t.root <- Node (Node (l, k, v, Leaf), base, size, r);
        t.count <- t.count + 1
      end);
  t.last_path

(** Remove the interval at exactly [base]; returns the path length. *)
let remove t ~base =
  splay t base;
  (match t.root with
  | Node (l, k, _, r) when k = base -> (
      match l with
      | Leaf ->
          t.root <- r;
          t.count <- t.count - 1
      | _ ->
          let steps = ref 0 in
          (* splay the max of [l] up, then hang [r] off it *)
          let l' = splay_tree steps max_int l in
          t.last_path <- t.last_path + !steps;
          (match l' with
          | Node (a, k', v', Leaf) -> t.root <- Node (a, k', v', r)
          | _ -> assert false);
          t.count <- t.count - 1)
  | _ -> ());
  t.last_path

(** The interval containing [addr], if any; returns ((base, size), path). *)
let find_containing t addr : (int * int) option =
  splay t addr;
  match t.root with
  | Leaf -> None
  | Node (l, k, v, _) ->
      if k <= addr then if addr < k + v then Some (k, v) else None
      else begin
        (* the candidate is the predecessor: max of the left subtree *)
        let rec max_of t path =
          match t with
          | Leaf -> (None, path)
          | Node (_, k, v, Leaf) -> (Some (k, v), path + 1)
          | Node (_, _, _, r) -> max_of r (path + 1)
        in
        let res, extra = max_of l 0 in
        t.last_path <- t.last_path + extra;
        match res with
        | Some (k, v) when addr < k + v -> Some (k, v)
        | _ -> None
      end

let last_path t = t.last_path

(** In-order fold, for tests. *)
let fold f t acc =
  let rec go tr acc =
    match tr with
    | Leaf -> acc
    | Node (l, k, v, r) -> go r (f k v (go l acc))
  in
  go t.root acc
