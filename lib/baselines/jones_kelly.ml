(* Jones & Kelly-style object-table bounds checker (paper section 2.1).

   Every allocation (heap block, stack slot, global) is registered in a
   splay tree.  Pointer *arithmetic* is checked: the result must stay
   within (or one past) the object containing the source pointer.
   Dereferences of addresses inside some live object pass.

   Characteristic strengths/weaknesses reproduced here:
   - no source changes, unchanged memory layout (it is a VM plugin);
   - the splay tree on the hot path is the performance bottleneck;
   - sub-object overflows are invisible: [&node.str] and [&node] are the
     same object, so an overflow within [node] is never flagged (the
     paper's motivating example). *)

open Interp.State

let make () : checker =
  let objects = Splay.create () in
  let handle = function
    | Ev_alloc { base; size; _ } ->
        let path = Splay.insert objects ~base ~size in
        (2 + (2 * path), None)
    | Ev_free { base; _ } ->
        let path = Splay.remove objects ~base in
        (2 + (2 * path), None)
    | Ev_ptr_arith { src; dst } -> (
        match Splay.find_containing objects src with
        | None ->
            (* source not derived from a tracked object (e.g. integer
               provenance): JK has nothing to say *)
            (2 + (2 * Splay.last_path objects), None)
        | Some (base, size) ->
            let cost = 2 + (2 * Splay.last_path objects) in
            (* one-past-the-end is legal C and JK pads objects to allow it *)
            if dst >= base && dst <= base + size then (cost, None)
            else
              ( cost,
                Some
                  (Printf.sprintf
                     "pointer arithmetic leaves object [0x%x,+%d): 0x%x" base
                     size dst) ))
    | Ev_access { addr; size; _ } -> (
        match Splay.find_containing objects addr with
        | Some (base, osize) ->
            let cost = 2 + (2 * Splay.last_path objects) in
            if addr + size <= base + osize then (cost, None)
            else
              ( cost,
                Some
                  (Printf.sprintf "access of %d bytes at 0x%x crosses object end"
                     size addr) )
        | None ->
            ( 2 + (2 * Splay.last_path objects),
              Some (Printf.sprintf "access to untracked address 0x%x" addr) ))
  in
  { ck_name = "jones-kelly"; ck_handle = handle }
