(* CGuard-style scheme: bounds in a header just before the object.

   CGuard (PAPERS.md) allocates every object with a 16-byte header
   holding the object's limits and checks each access against the
   header of the object the accessed pointer belongs to.  The pointer
   carries only an object tag (in spare bits), so the scheme's bounds
   are *object-granularity*: a pointer derived from a struct field
   still answers to the whole allocation's header, and intra-object
   (sub-object) overflows go unnoticed — the gap SoftBound's shrunk
   per-pointer bounds close (paper section 3.1, Table 4).

   Modeled here as the SoftBound transform with [shrink_bounds] off
   (whole-object bounds on every derived pointer) over the
   [Obj_header] runtime facility (header-deref cost and cache traffic
   on lookups, free tag propagation on pointer stores). *)

(** Test hook for the oracle's injected-bug regression: when set, the
    scheme silently skips read checks (degrading to store-only), which
    the N-scheme differential oracle must flag as an unexplained
    divergence.  Never set outside tests. *)
let test_skip_read_checks = ref false

let options () : Softbound.Config.options =
  {
    Softbound.Config.default with
    facility = Softbound.Config.Obj_header;
    shrink_bounds = false;
    mode =
      (if !test_skip_read_checks then Softbound.Config.Store_only
       else Softbound.Config.Full_checking);
  }

let name = "cguard"

let summary =
  "bounds in a 16-byte header before the object; object-granularity \
   (misses sub-object overflows)"
