(* FRAMER-style scheme: frame-tagged software capabilities.

   FRAMER (PAPERS.md) keeps pointers one machine word wide by encoding
   a tag in the otherwise-unused top byte; the tag locates the header
   of the power-of-two-aligned "frame" enclosing the object, and the
   header supplies the object's bounds.  Like every object-table
   scheme, the recovered bounds cover the whole allocation, so
   sub-object overflows are invisible (Table 4's gap); unlike a table,
   lookup is a tag decode plus one header dereference.

   Modeled as the SoftBound transform with [shrink_bounds] off over
   the [Frame_tag] facility (tag-decode + frame-header cost on
   lookups, one-instruction tag propagation on pointer stores). *)

let options () : Softbound.Config.options =
  {
    Softbound.Config.default with
    facility = Softbound.Config.Frame_tag;
    shrink_bounds = false;
  }

let name = "framer"

let summary =
  "frame tag in the pointer's top byte locates an object header; \
   object-granularity (misses sub-object overflows)"
