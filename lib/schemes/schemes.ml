(* Registry of protection schemes for the N-scheme matrix.

   One place that names every scheme the harness and the differential
   oracle iterate over, together with the machine-checkable half of its
   documented completeness gap.  Two implementation shapes:

   - [Transform]: the SoftBound instrumentation run with the scheme's
     option profile (its metadata facility and bounds granularity) —
     the transformed program checks itself.
   - [Plugin]: a baseline checker observing the *unprotected* module's
     allocation/access/arithmetic events ({!Interp.State.checker}).

   The [misses_sub_object] flag is the Table 4 story: whole-object
   bounds cannot see an overflow that stays inside the allocation, so
   the oracle *requires* those schemes to stay silent on sub-object
   attacks (a trap there means the model, or the scheme, is wrong).
   [guaranteed_detect] marks schemes whose detection of an injected
   out-of-bounds access is landing-independent (per-pointer provenance
   bounds travel with the pointer); plugin schemes' verdicts depend on
   where the stray access happens to land, so the oracle only holds
   them to agreeing with the unprotected run when they don't trap —
   their exact coverage cells are pinned by the fixed attack-matrix
   unit tests instead. *)

(* [schemes] is the library's root module; re-export the submodules. *)
module Cguard = Cguard
module Framer = Framer
module L4_pointer = L4_pointer

type impl =
  | Transform of Softbound.Config.options
  | Plugin of (unit -> Interp.State.checker)

type entry = {
  sname : string;
  impl : impl;
  misses_sub_object : bool;
      (** whole-object bounds: must NOT trap on intra-object overflows *)
  guaranteed_detect : bool;
      (** must trap on every injected non-sub-object OOB access *)
  summary : string;
}

(** Every matrix scheme beyond the SoftBound configurations themselves.
    A function because the CGuard entry reads its test hook at call
    time. *)
let all () : entry list =
  [
    {
      sname = Cguard.name;
      impl = Transform (Cguard.options ());
      misses_sub_object = true;
      guaranteed_detect = true;
      summary = Cguard.summary;
    };
    {
      sname = Framer.name;
      impl = Transform (Framer.options ());
      misses_sub_object = true;
      guaranteed_detect = true;
      summary = Framer.summary;
    };
    {
      sname = L4_pointer.name;
      impl = Transform (L4_pointer.options ());
      misses_sub_object = true;
      guaranteed_detect = true;
      summary = L4_pointer.summary;
    };
    {
      sname = "mscc";
      impl = Transform Baselines.Mscc.options;
      misses_sub_object = true;
      guaranteed_detect = true;
      summary =
        "MSCC-style pointer-chasing metadata (hash facility, no bounds \
         shrinking, no cleanup passes)";
    };
    {
      sname = "jones-kelly";
      impl = Plugin Baselines.Jones_kelly.make;
      misses_sub_object = true;
      guaranteed_detect = false;
      summary =
        "object-table (splay-tree) referent checking of pointer \
         arithmetic; detection depends on where the access lands";
    };
    {
      sname = "memcheck-like";
      impl = Plugin Baselines.Memcheck_like.make;
      misses_sub_object = true;
      guaranteed_detect = false;
      summary =
        "heap-only redzone addressability checking; stack and \
         in-bounds-of-another-block accesses pass";
    };
    {
      sname = "mudflap-like";
      impl = Plugin Baselines.Mudflap_like.make;
      misses_sub_object = true;
      guaranteed_detect = false;
      summary =
        "object-database access checking at object granularity; \
         accesses landing inside any live object pass";
    };
  ]

let find name = List.find_opt (fun e -> e.sname = name) (all ())
let names () = List.map (fun e -> e.sname) (all ())

(** Run [entry] on an uninstrumented module, producing the same
    [Vm.result] shape every other configuration produces.  Transform
    entries instrument and run; plugin entries run the module unchanged
    with the checker observing. *)
let run ?(cfg = Interp.State.default_config) (e : entry) (m : Sbir.Ir.modul)
    : Interp.Vm.result =
  match e.impl with
  | Transform opts -> Softbound.run_protected ~opts ~cfg m
  | Plugin mk ->
      Softbound.run_unprotected ~cfg:{ cfg with checker = Some (mk ()) } m

(** Did the run trap with this scheme's violation flavor?  Transform
    schemes raise SoftBound bounds violations; plugins raise
    object-table violations. *)
let detected (r : Interp.Vm.result) =
  match r.Interp.Vm.outcome with
  | Interp.State.Trapped (Interp.State.Bounds_violation _)
  | Interp.State.Trapped (Interp.State.Object_violation _) ->
      true
  | _ -> false

(** The fixed attack suite of the completeness-gap matrix (Table 4's
    axes): one attack per spatial-violation class, each a complete
    MiniC program whose only violation is the attack itself.  The
    coverage experiment and the gap-matrix unit tests both run every
    scheme over exactly these. *)
let gap_attacks : (string * string) list =
  [
    ( "sub-object-overflow",
      (* overflows the [str] field into the adjacent [guard] field of
         the same struct: inside the allocation, so only shrunken
         per-pointer bounds can see it *)
      "struct node { char str[8]; long guard; };\n\
       int main(void) {\n\
      \  struct node n;\n\
      \  char *p = n.str;\n\
      \  n.guard = 0;\n\
      \  p[9] = 'x';\n\
      \  return (int)n.guard != 0;\n\
       }\n" );
    ( "adjacent-heap-overflow",
      (* classic one-block heap overflow: writes past the end of a
         malloc'd block *)
      "int main(void) {\n\
      \  char *p = (char *)malloc(8);\n\
      \  p[0] = 1;\n\
      \  p[10] = 1;\n\
      \  free(p);\n\
      \  return 0;\n\
       }\n" );
    ( "heap-underflow",
      (* writes below the start of a malloc'd block *)
      "int main(void) {\n\
      \  char *p = (char *)malloc(8);\n\
      \  p[0] = 1;\n\
      \  p[-3] = 1;\n\
      \  free(p);\n\
      \  return 0;\n\
       }\n" );
    ( "off-by-one-read",
      (* reads one element past a stack array: no write, so store-only
         checking is blind to it by design *)
      "int main(void) {\n\
      \  int a[8];\n\
      \  int i;\n\
      \  for (i = 0; i < 8; i = i + 1) a[i] = i;\n\
      \  int x = a[8];\n\
      \  return x & 0;\n\
       }\n" );
  ]
