(* L4-Pointer-style scheme: 128-bit wide pointers, no hardware support.

   L4 Pointer (PAPERS.md) widens every pointer to 128 bits, carrying
   base and bound inline next to the address — the fat-pointer lineage
   (CCured, Cyclone) without hardware tags.  Metadata access is nearly
   free (the upper half sits beside the pointer), paid for with doubled
   pointer memory traffic and the layout incompatibility wide pointers
   are known for.  The inline bounds describe the allocation the
   pointer was derived from, whole-object granularity: the production
   schemes in this family do not narrow bounds on interior-pointer
   creation, so sub-object overflows pass (Table 4).

   Modeled as the SoftBound transform with [shrink_bounds] off over
   the [Wide_inline] facility (cheap lookups/updates whose cache
   traffic lands on the word adjacent to the pointer slot). *)

let options () : Softbound.Config.options =
  {
    Softbound.Config.default with
    facility = Softbound.Config.Wide_inline;
    shrink_bounds = false;
  }

let name = "l4-pointer"

let summary =
  "128-bit wide pointers with inline base/bound; whole-object bounds \
   (misses sub-object overflows), doubled pointer traffic"
