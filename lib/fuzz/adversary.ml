(* Adversarial robust-safety harness.

   The differential fuzzer ({!Fuzz}/{!Oracle}) cross-checks *closed*,
   safe-by-construction programs.  This harness checks the stronger,
   open-world property the ROADMAP calls robust safety (SecurePtrs /
   CheckedCBox, arXiv 2302.01811; the Checked C blame theorem, arXiv
   2201.13394): a SoftBound-protected MiniC component is linked with an
   *attacker* that runs unchecked, and no attacker action may induce a
   trap-free corruption of the protected component's heap or metadata,
   nor leak its secrets.  Every attack is classified:

   - [Caught]    — the action trapped at the checked boundary;
   - [Confined]  — the action completed, protected state is intact, and
                   the attacker's observations are secret-independent;
   - [Escaped]   — trap-free corruption, a secret-dependent observation
                   (a leak), or a trap raised *inside* protected code on
                   its own well-formed data (a blame violation).

   Attacker model.  The SoftBound transform renames every compiled
   function [_sb_*] and checks it fully, so a compiled "unchecked
   module" does not exist in this pipeline; instead the attacker is
   modeled directly at machine level, which over-approximates anything
   separate compilation could produce.  The attacker:

   - owns heap memory it allocated itself (an arena granule recycled
     from a block the protected component freed — giving it a buffer
     physically adjacent to protected data — plus a scratch buffer) and
     may write those bytes arbitrarily, including the allocator's guard
     gap beyond its bound (modeling in-module overflows that SoftBound
     deliberately does not police in unchecked code);
   - may aim raw stores at the metadata facility's backing region; the
     machine's segment isolation (metadata lives outside every
     program-valid segment, {!Machine.Layout}) must confine them;
   - may call checked wrappers and exported protected functions at the
     boundary.  Pointer arguments carry the metadata a correct interface
     shim would attach — the true bounds of the object the attacker
     *claims* to pass.  Forged-pointer attacks pass a protected address
     under the attacker's own capability; the attacker cannot forge the
     capability itself (metadata is produced by trusted code — the
     paper's section 5.2 wrapper discipline).

   The leak oracle is twin-run non-interference: every scenario runs
   twice with different protected secrets, and the attacker's
   per-action observations (return values, trap detail, output) must be
   identical.  The integrity oracle snapshots the protected heap via
   {!Interp.Snapshot} and additionally checks metadata *coherence*: each
   protected pointer slot's facility entry must stay the entry of the
   block the slot's value points into — which is exactly the invariant
   a metadata-aware memmove must preserve. *)

module St = Interp.State
module Vm = Interp.Vm
module Snapshot = Interp.Snapshot
module Builtins = Interp.Builtins
module Mem = Machine.Memory
module Heap = Machine.Heap
module L = Machine.Layout

(* ------------------------------------------------------------------ *)
(* Scenario space                                                       *)
(* ------------------------------------------------------------------ *)

type facility = Shadow | Hash

type params = {
  facility : facility;
  ht_init : int;  (** initial hash-table entries (exercises resize) *)
  hole : int;  (** freed-then-recycled granule size, multiple of 16 *)
  sec : int;  (** protected secret buffer size *)
  nslots : int;  (** protected pointer-array length *)
  bsz : int;  (** size of each block the array points to *)
}

type target = T_secret | T_parr | T_block of int | T_meta

type action =
  | A_fill of int list
      (** repaint arena + guard gap nonzero, then punch NULs at offsets *)
  | A_strlen
  | A_strcpy
  | A_strcmp
  | A_strncmp of int
  | A_strchr of int
  | A_strstr
  | A_strdup
  | A_puts
  | A_atoi
  | A_memmove of int * int * int  (** overlapping move inside the arena *)
  | A_forge_write of target
  | A_forge_free of target
  | A_meta_write  (** raw store aimed at the metadata backing region *)
  | A_shift of int  (** boundary call: protected overlapping memmove *)
  | A_rotget of int  (** boundary call: protected read API *)

type scenario = { name : string; sp : params; acts : action list }

let class_of = function
  | A_fill _ -> "raw"
  | A_strlen | A_strcpy | A_strcmp | A_strchr _ | A_strstr | A_strdup
  | A_puts | A_atoi ->
      "unterm-scan"
  | A_strncmp _ -> "limit-edge"
  | A_memmove _ | A_shift _ -> "memmove-overlap"
  | A_rotget _ -> "api"
  | A_forge_write _ | A_forge_free _ -> "forge"
  | A_meta_write -> "meta-store"

let classes =
  [ "raw"; "unterm-scan"; "limit-edge"; "memmove-overlap"; "api"; "forge";
    "meta-store" ]

let target_name = function
  | T_secret -> "secret"
  | T_parr -> "parr"
  | T_block i -> Printf.sprintf "block%d" i
  | T_meta -> "meta"

let label_of = function
  | A_fill [] -> "fill"
  | A_fill ks ->
      "fill/nul@" ^ String.concat "," (List.map string_of_int ks)
  | A_strlen -> "strlen"
  | A_strcpy -> "strcpy"
  | A_strcmp -> "strcmp"
  | A_strncmp n -> Printf.sprintf "strncmp[n=%d]" n
  | A_strchr c -> Printf.sprintf "strchr[%d]" c
  | A_strstr -> "strstr"
  | A_strdup -> "strdup"
  | A_puts -> "puts"
  | A_atoi -> "atoi"
  | A_memmove (d, s, l) -> Printf.sprintf "memmove[+%d,+%d,%d]" d s l
  | A_forge_write t -> "forge-write:" ^ target_name t
  | A_forge_free t -> "forge-free:" ^ target_name t
  | A_meta_write -> "meta-write"
  | A_shift k -> Printf.sprintf "shift[%d]" k
  | A_rotget i -> Printf.sprintf "rotget[%d]" i

(* ------------------------------------------------------------------ *)
(* The protected component                                              *)
(* ------------------------------------------------------------------ *)

(* A component with a secret buffer, a pointer array, and two exported
   entry points.  Allocation order matters: the hole granule comes
   first and is freed at the end of [main], so the attacker's first
   malloc of the same size recycles it and lands directly below the
   secret (one 16-byte allocator guard gap apart). *)
let protected_source (p : params) : string =
  let n = p.nslots in
  Printf.sprintf
    "long **parr;\n\
     char *psec;\n\
     char *phole;\n\
     long shift(long k) {\n\
    \  if (k < 0) { k = 0 - k; }\n\
    \  k = (k %% %d) + 1;\n\
    \  memmove(parr + k, parr, (%d - k) * 8);\n\
    \  return k;\n\
     }\n\
     long rotget(long i) {\n\
    \  if (i < 0) { i = 0 - i; }\n\
    \  i = i %% %d;\n\
    \  long *q = parr[i];\n\
    \  if (q == 0) { return 0 - 1; }\n\
    \  return q[0];\n\
     }\n\
     int main(void) {\n\
    \  phole = (char *)malloc(%d);\n\
    \  psec = (char *)malloc(%d);\n\
    \  sim_recv(psec, %d);\n\
    \  parr = (long **)malloc(%d);\n\
    \  long i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
    \    long *q = (long *)malloc(%d);\n\
    \    q[0] = i * 3 + 1;\n\
    \    parr[i] = q;\n\
    \  }\n\
    \  free(phole);\n\
    \  return 0;\n\
     }\n"
    (n - 1) n n p.hole p.sec p.sec (8 * n) n p.bsz

(* compile/instrument memoization: the parameter space is tiny, the
   campaign is not.  Guarded by a mutex — campaigns fan out over
   domains. *)
let memo_lock = Mutex.create ()
let compiled : (string, Sbir.Ir.modul) Hashtbl.t = Hashtbl.create 16
let instrumented : (string * facility, Sbir.Ir.modul) Hashtbl.t =
  Hashtbl.create 16

let memo tbl key f =
  Mutex.lock memo_lock;
  let hit = Hashtbl.find_opt tbl key in
  Mutex.unlock memo_lock;
  match hit with
  | Some v -> v
  | None ->
      let v = f () in
      Mutex.lock memo_lock;
      Hashtbl.replace tbl key v;
      Mutex.unlock memo_lock;
      v

let instrumented_module (p : params) : Sbir.Ir.modul =
  let src = protected_source p in
  let m = memo compiled src (fun () -> Softbound.compile src) in
  memo instrumented (src, p.facility) (fun () ->
      let opts =
        {
          Softbound.Config.default with
          Softbound.Config.facility =
            (match p.facility with
            | Shadow -> Softbound.Config.Shadow_space
            | Hash -> Softbound.Config.Hash_table);
        }
      in
      Softbound.instrument ~opts m)

(* ------------------------------------------------------------------ *)
(* One run of a scenario                                                *)
(* ------------------------------------------------------------------ *)

exception Skip_scenario of string

let gap = 16 (* Machine.Heap's inter-block guard gap *)

type ctx = {
  ld : Vm.loaded;
  st : St.t;
  p : params;
  arena : int;  (** recycled hole granule, physically below the secret *)
  scratch : int;  (** second attacker buffer *)
  psec : int;
  parr : int;
  blocks : int array;  (** original slot pointers, in slot order *)
  block_meta : (int, int * int) Hashtbl.t;  (** block addr -> its bounds *)
  model : int array;  (** expected slot values (updated on [A_shift]) *)
  sec_img : string;
}

let scratch_sz = 96
let needle_off = 80

let global_value ctx name =
  match Hashtbl.find_opt ctx.st.St.globals name with
  | Some (a, _) -> Mem.read_int ctx.st.St.mem a 8
  | None -> raise (Skip_scenario ("missing protected global " ^ name))

let setup (p : params) ~(secret : string) : ctx =
  let cfg =
    {
      St.default_config with
      St.meta =
        Some
          (match p.facility with
          | Shadow -> St.Shadow_space
          | Hash -> St.Hash_table);
      store_only = false;
      inputs = [ secret ];
      ht_entries_init =
        (match p.facility with
        | Hash -> p.ht_init
        | Shadow -> St.default_config.St.ht_entries_init);
      max_steps = 50_000_000;
    }
  in
  let ld = Vm.create ~cfg (instrumented_module p) in
  (match Vm.run_main ld with
  | St.Exit 0 -> ()
  | o -> raise (Skip_scenario ("protected main: " ^ St.string_of_outcome o)));
  let st = ld.Vm.st in
  let dummy =
    {
      ld;
      st;
      p;
      arena = 0;
      scratch = 0;
      psec = 0;
      parr = 0;
      blocks = [||];
      block_meta = Hashtbl.create 8;
      model = [||];
      sec_img = "";
    }
  in
  let psec = global_value dummy "psec" and parr = global_value dummy "parr" in
  let arena =
    match Heap.malloc st.St.heap p.hole with
    | Some a -> a
    | None -> raise (Skip_scenario "attacker arena alloc failed")
  in
  let scratch =
    match Heap.malloc st.St.heap scratch_sz with
    | Some a -> a
    | None -> raise (Skip_scenario "attacker scratch alloc failed")
  in
  (* the attack geometry the generator relies on: the arena is the
     recycled hole, sitting exactly one guard gap below the secret *)
  if arena + p.hole + gap <> psec then
    raise
      (Skip_scenario
         (Printf.sprintf "layout: arena=0x%x hole=%d psec=0x%x" arena p.hole
            psec));
  (* the attacker's needle / reference string *)
  Mem.write_byte st.St.mem (scratch + needle_off) (Char.code 'Z');
  Mem.write_byte st.St.mem (scratch + needle_off + 1) (Char.code 'Q');
  Mem.write_byte st.St.mem (scratch + needle_off + 2) 0;
  let blocks =
    Array.init p.nslots (fun i -> Mem.read_int st.St.mem (parr + (8 * i)) 8)
  in
  let block_meta = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      ignore i;
      Hashtbl.replace block_meta b (b, b + p.bsz))
    blocks;
  {
    ld;
    st;
    p;
    arena;
    scratch;
    psec;
    parr;
    blocks;
    block_meta;
    model = Array.copy blocks;
    sec_img = Snapshot.read_bytes st psec p.sec;
  }

(** Trap-free corruption check: secret bytes, live protected blocks,
    slot values against the model, and metadata coherence of every
    slot.  [None] = intact. *)
let integrity (ctx : ctx) : string option =
  let st = ctx.st in
  if Snapshot.read_bytes st ctx.psec ctx.p.sec <> ctx.sec_img then
    Some "secret bytes corrupted without a trap"
  else if Heap.block_size st.St.heap ctx.psec <> Some ctx.p.sec then
    Some "secret block retired without a trap"
  else if Heap.block_size st.St.heap ctx.parr <> Some (8 * ctx.p.nslots) then
    Some "pointer-array block retired without a trap"
  else
    let bad = ref None in
    Array.iteri
      (fun i b ->
        if !bad = None && Heap.block_size st.St.heap b <> Some ctx.p.bsz then
          bad := Some (Printf.sprintf "block %d retired without a trap" i))
      ctx.blocks;
    Array.iteri
      (fun i expected ->
        if !bad = None then begin
          let a = ctx.parr + (8 * i) in
          let v = Mem.read_int st.St.mem a 8 in
          if v <> expected then
            bad :=
              Some
                (Printf.sprintf "slot %d: value 0x%x, expected 0x%x" i v
                   expected)
          else if v <> 0 then
            let m = St.meta_peek st a in
            match Hashtbl.find_opt ctx.block_meta v with
            | Some bm when bm = m -> ()
            | Some (bb, be) ->
                let mb, me = m in
                bad :=
                  Some
                    (Printf.sprintf
                       "slot %d: metadata (0x%x,0x%x) incoherent with value \
                        0x%x (block bounds (0x%x,0x%x))"
                       i mb me v bb be)
            | None ->
                bad := Some (Printf.sprintf "slot %d: foreign pointer 0x%x" i v)
          end)
      ctx.model;
    !bad

(* --- boundary-call helpers --- *)

let vi v = St.VI v
let arena_meta ctx = (ctx.arena, ctx.arena + ctx.p.hole)
let scratch_meta ctx = (ctx.scratch, ctx.scratch + scratch_sz)

(** Call a checked wrapper the way a boundary shim would: plain args
    first, then the metadata pair of each pointer argument in order. *)
let wrapper ctx name (args : (int * (int * int) option) list) : St.value list =
  let plain = List.map (fun (v, _) -> vi v) args in
  let metas =
    List.concat_map
      (fun (_, m) -> match m with None -> [] | Some (b, e) -> [ vi b; vi e ])
      args
  in
  Builtins.dispatch ctx.st ~name:("_sb_" ^ name) ~args:(plain @ metas)

let call_protected ctx name (args : St.value list) : St.value list =
  match Hashtbl.find_opt ctx.ld.Vm.resolved ("_sb_" ^ name) with
  | Some (Vm.RFunc fe) -> Vm.call_boundary ctx.ld fe args
  | _ -> raise (Skip_scenario ("protected function missing: _sb_" ^ name))

let show_rets (rets : St.value list) : string =
  String.concat ","
    (List.map
       (function St.VI v -> string_of_int v | St.VF f -> string_of_float f)
       rets)

(** Execute one action, returning the attacker-visible observation.
    Raises [St.Trap] / [Mem.Segfault] when the machine stops it. *)
let perform (ctx : ctx) (a : action) : string =
  let st = ctx.st in
  let am = Some (arena_meta ctx) and sm = Some (scratch_meta ctx) in
  let needle = ctx.scratch + needle_off in
  let nm = Some (scratch_meta ctx) in
  let target_addr = function
    | T_secret -> ctx.psec
    | T_parr -> ctx.parr
    | T_block i -> ctx.blocks.(i mod ctx.p.nslots)
    | T_meta -> (
        match ctx.p.facility with
        | Hash -> L.hashtable_base
        | Shadow -> L.shadow_addr ctx.parr)
  in
  match a with
  | A_fill nuls ->
      (* raw writes confined to the attacker's own granule plus the
         allocator guard gap beyond it *)
      for i = 0 to ctx.p.hole + gap - 1 do
        Mem.write_byte st.St.mem (ctx.arena + i) 0x41
      done;
      List.iter
        (fun k ->
          Mem.write_byte st.St.mem (ctx.arena + (k mod (ctx.p.hole + gap))) 0)
        nuls;
      "filled"
  | A_strlen -> show_rets (wrapper ctx "strlen" [ (ctx.arena, am) ])
  | A_strcpy ->
      show_rets
        (wrapper ctx "strcpy" [ (ctx.scratch, sm); (ctx.arena, am) ])
  | A_strcmp ->
      show_rets (wrapper ctx "strcmp" [ (ctx.arena, am); (needle, nm) ])
  | A_strncmp n ->
      show_rets
        (wrapper ctx "strncmp"
           [ (ctx.arena, am); (needle, nm); (n, None) ])
  | A_strchr c ->
      show_rets (wrapper ctx "strchr" [ (ctx.arena, am); (c, None) ])
  | A_strstr ->
      show_rets (wrapper ctx "strstr" [ (ctx.arena, am); (needle, nm) ])
  | A_strdup ->
      (* observation is success/failure, not the fresh address (heap
         addresses are identical across twins anyway, but the secret
         must not decide whether the call survives) *)
      let rets = wrapper ctx "strdup" [ (ctx.arena, am) ] in
      (match rets with
      | St.VI 0 :: _ -> "dup:null"
      | _ -> "dup:ok")
  | A_puts ->
      let before = Buffer.length st.St.out in
      let rets = wrapper ctx "puts" [ (ctx.arena, am) ] in
      let written =
        Buffer.sub st.St.out before (Buffer.length st.St.out - before)
      in
      show_rets rets ^ ":" ^ written
  | A_atoi -> show_rets (wrapper ctx "atoi" [ (ctx.arena, am) ])
  | A_memmove (d, s, l) ->
      let cap = ctx.p.hole in
      let d = d mod cap and s = s mod cap in
      let l = min l (cap - max d s) in
      show_rets
        (wrapper ctx "memmove"
           [ (ctx.arena + d, am); (ctx.arena + s, am); (max l 0, None) ])
  | A_forge_write t ->
      show_rets
        (wrapper ctx "memset" [ (target_addr t, am); (0x5A, None); (8, None) ])
  | A_forge_free t ->
      show_rets (wrapper ctx "free" [ (target_addr t, am) ])
  | A_meta_write ->
      (* what a compiled store executes: segment validity, then the
         write — segment isolation must segfault it *)
      let addr =
        match ctx.p.facility with
        | Hash -> L.hashtable_base
        | Shadow -> L.shadow_addr ctx.parr
      in
      Mem.check_program_access st.St.mem addr 8;
      Mem.write_int st.St.mem addr 8 0;
      "meta overwritten"
  | A_shift k -> (
      let rets = call_protected ctx "shift" [ vi k ] in
      match rets with
      | [ St.VI k' ] when k' >= 1 && k' < ctx.p.nslots ->
          (* mirror the move in the slot model: new[j] = old[j-k'] for
             j >= k', lower slots unchanged *)
          let old = Array.copy ctx.model in
          for j = ctx.p.nslots - 1 downto k' do
            ctx.model.(j) <- old.(j - k')
          done;
          show_rets rets
      | _ -> "shift:" ^ show_rets rets)
  | A_rotget i -> show_rets (call_protected ctx "rotget" [ vi i ])

(* ------------------------------------------------------------------ *)
(* Verdicts                                                             *)
(* ------------------------------------------------------------------ *)

type verdict = V_caught | V_confined | V_escaped of string

type action_result = {
  cls : string;
  label : string;
  verdict : verdict;
  obs : string;
}

(** Boundary calls into exported protected functions are total by
    construction; if one traps, checked code was the source of the
    violation — the blame theorem's forbidden case. *)
let is_protected_api = function A_shift _ | A_rotget _ -> true | _ -> false

let run_action (ctx : ctx) (a : action) : action_result =
  let obs, trapped =
    try (perform ctx a, false) with
    | St.Trap t -> ("trap: " ^ St.string_of_trap t, true)
    | Mem.Segfault ad -> (Printf.sprintf "segfault at 0x%x" ad, true)
    | Builtins.Exit_program n -> (Printf.sprintf "exit %d" n, true)
  in
  let verdict =
    match integrity ctx with
    | Some why -> V_escaped why
    | None ->
        if trapped then
          if is_protected_api a then
            V_escaped ("protected code trapped on its own data: " ^ obs)
          else V_caught
        else V_confined
  in
  { cls = class_of a; label = label_of a; verdict; obs }

(* twin secrets: same allocation behavior, different content and
   different first-NUL position inside the secret buffer *)
let secret_long = String.concat "" (List.init 8 (fun _ -> "WXYZVWXYZV"))
let secret_short = "K"

(** Run a scenario under the twin-run non-interference oracle.  Raises
    {!Skip_scenario} if the protected component cannot be staged. *)
let eval_scenario (sc : scenario) : action_result list =
  let run secret =
    let ctx = setup sc.sp ~secret in
    List.map (run_action ctx) sc.acts
  in
  let ra = run secret_long in
  let rb = run secret_short in
  List.map2
    (fun x y ->
      match x.verdict with
      | V_escaped _ -> x
      | _ when x.obs <> y.obs ->
          {
            x with
            verdict =
              V_escaped
                (Printf.sprintf
                   "secret-dependent observation: %S vs %S" x.obs y.obs);
          }
      | _ -> x)
    ra rb

(* ------------------------------------------------------------------ *)
(* Generation                                                           *)
(* ------------------------------------------------------------------ *)

let gen_params (r : Rng.t) : params =
  {
    facility = (if Rng.bool r then Shadow else Hash);
    ht_init = Rng.pick r [ 8; 64 ];
    hole = Rng.pick r [ 32; 48; 64 ];
    sec = 16 * Rng.range r 2 4;
    nslots = Rng.pick r [ 4; 6; 8 ];
    bsz = Rng.pick r [ 16; 24; 32 ];
  }

let gen_action (r : Rng.t) (p : params) : action =
  Rng.weighted r
    [
      (2, A_fill (if Rng.bool r then [] else [ Rng.int r (p.hole + gap) ]));
      (2, A_strlen);
      (1, A_strcpy);
      (1, A_strcmp);
      (2, A_strncmp (Rng.pick r [ 2; 4; p.hole; p.hole + gap + p.sec + 8 ]));
      (1, A_strchr (Rng.pick r [ 0x41; 0x5A; 0 ]));
      (1, A_strstr);
      (1, A_strdup);
      (1, A_puts);
      (1, A_atoi);
      (1,
       A_memmove (Rng.int r 8, Rng.int r 8, Rng.range r 8 (p.hole - 8)));
      (2,
       A_forge_write
         (Rng.pick r [ T_secret; T_parr; T_block (Rng.int r p.nslots); T_meta ]));
      (1, A_forge_free (Rng.pick r [ T_secret; T_parr ]));
      (1, A_meta_write);
      (2, A_shift (Rng.range r 1 (2 * p.nslots)));
      (2, A_rotget (Rng.int r (2 * p.nslots)));
    ]

(** Scenario [index] of campaign [seed] — regenerable in isolation,
    like {!Fuzz.case_of}. *)
let scenario_of ~seed ~index : scenario =
  let r = Rng.split (Rng.create seed) index in
  let p = gen_params r in
  let n_acts = Rng.range r 4 8 in
  (* always open with a fill so the string layout is attacker-chosen *)
  let first =
    A_fill (if Rng.chance r ~pct:40 then [ Rng.int r p.hole ] else [])
  in
  let rest = List.init (n_acts - 1) (fun _ -> gen_action r p) in
  {
    name = Printf.sprintf "case-%d" index;
    sp = p;
    acts = first :: rest;
  }

(* ------------------------------------------------------------------ *)
(* Regression seeds: the wrapper bugs this PR fixes                     *)
(* ------------------------------------------------------------------ *)

(* Each of these fails against the pre-fix wrappers — the harness is
   the tool that rediscovers the bug — and must report zero escapes
   (every attack caught or confined) once fixed.  Kept fixed forever:
   they are the committed adversarial regression seeds. *)
let regressions : scenario list =
  let p =
    { facility = Shadow; ht_init = 64; hole = 32; sec = 48; nslots = 6;
      bsz = 24 }
  in
  [
    (* pre-fix: strlen/strcpy/puts scan an unterminated attacker string
       straight through the guard gap into the secret, and the trap's
       size leaks the secret's first-NUL position (twin divergence) *)
    { name = "unterm-scan"; sp = p;
      acts = [ A_fill []; A_strlen; A_strcpy; A_puts ] };
    (* pre-fix: strncmp's scan ignores its limit; with a limit larger
       than the arena the trap size is secret-dependent, and with a
       small limit the compare must stay confined with a
       secret-independent result *)
    { name = "strncmp-limit"; sp = p;
      acts = [ A_fill []; A_strncmp 4; A_strncmp 200 ] };
    (* pre-fix: the protected component's own overlapping memmove
       corrupts slot metadata (forward in-place copy), detected as
       metadata incoherence and as blame traps in [rotget] *)
    { name = "memmove-meta"; sp = { p with facility = Hash; ht_init = 8 };
      acts = [ A_shift 1; A_rotget 2; A_shift 2; A_rotget 5 ] };
    (* pre-fix (harness-discovered): free accepted a forged pointer and
       retired the protected secret's block trap-free *)
    { name = "forge-free"; sp = p;
      acts = [ A_forge_free T_secret; A_forge_free T_parr; A_rotget 1 ] };
  ]

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                      *)
(* ------------------------------------------------------------------ *)

type case_report = {
  c_name : string;
  c_skip : string option;
  c_results : action_result list;
}

type report = {
  seed : int;
  count : int;
  cases : int;  (** scenarios that ran to verdicts *)
  skipped : int;
  caught : int;
  confined : int;
  escaped : int;
  per_class : (string * (int * int * int)) list;
      (** class -> (caught, confined, escaped) *)
  escapes : (string * string * string) list;
      (** case name, action label, reason *)
  regression_ok : bool;  (** every regression seed free of escapes *)
}

let eval_named (sc : scenario) : case_report =
  match eval_scenario sc with
  | results -> { c_name = sc.name; c_skip = None; c_results = results }
  | exception Skip_scenario why ->
      { c_name = sc.name; c_skip = Some why; c_results = [] }
  | exception e ->
      (* a harness crash must surface as a failure, not vanish *)
      {
        c_name = sc.name;
        c_skip = None;
        c_results =
          [
            {
              cls = "harness";
              label = "exception";
              verdict = V_escaped (Printexc.to_string e);
              obs = "";
            };
          ];
      }

let eval_case ~seed index : case_report =
  eval_named (scenario_of ~seed ~index)

let run_campaign ?(jobs = 1) ~seed ~count () : report =
  let gen_reports =
    if jobs <= 1 then List.init count (eval_case ~seed)
    else Parutil.parmap ~jobs (eval_case ~seed) (List.init count Fun.id)
  in
  let reg_reports = List.map eval_named regressions in
  let all = reg_reports @ gen_reports in
  let caught = ref 0 and confined = ref 0 and escaped = ref 0 in
  let skipped = ref 0 and cases = ref 0 in
  let per_class = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace per_class c (0, 0, 0)) classes;
  let escapes = ref [] in
  List.iter
    (fun cr ->
      match cr.c_skip with
      | Some _ -> incr skipped
      | None ->
          incr cases;
          List.iter
            (fun ar ->
              let ca, co, es =
                Option.value
                  (Hashtbl.find_opt per_class ar.cls)
                  ~default:(0, 0, 0)
              in
              (match ar.verdict with
              | V_caught ->
                  incr caught;
                  Hashtbl.replace per_class ar.cls (ca + 1, co, es)
              | V_confined ->
                  incr confined;
                  Hashtbl.replace per_class ar.cls (ca, co + 1, es)
              | V_escaped why ->
                  incr escaped;
                  Hashtbl.replace per_class ar.cls (ca, co, es + 1);
                  escapes := (cr.c_name, ar.label, why) :: !escapes))
            cr.c_results)
    all;
  let regression_ok =
    List.for_all
      (fun cr ->
        cr.c_skip = None
        && List.for_all
             (fun ar ->
               match ar.verdict with V_escaped _ -> false | _ -> true)
             cr.c_results)
      reg_reports
  in
  {
    seed;
    count;
    cases = !cases;
    skipped = !skipped;
    caught = !caught;
    confined = !confined;
    escaped = !escaped;
    per_class =
      List.map
        (fun c ->
          (c, Option.value (Hashtbl.find_opt per_class c) ~default:(0, 0, 0)))
        classes;
    escapes = List.rev !escapes;
    regression_ok;
  }

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "adversarial: seed=%d count=%d cases=%d skipped=%d  caught=%d \
        confined=%d escaped=%d\n"
       r.seed r.count r.cases r.skipped r.caught r.confined r.escaped);
  Buffer.add_string b
    (Printf.sprintf "%-16s %8s %9s %8s\n" "attack class" "caught" "confined"
       "escaped");
  List.iter
    (fun (c, (ca, co, es)) ->
      Buffer.add_string b (Printf.sprintf "%-16s %8d %9d %8d\n" c ca co es))
    r.per_class;
  Buffer.add_string b
    (Printf.sprintf "regression seeds: %s\n"
       (if r.regression_ok then "caught (no escapes)" else "ESCAPED"));
  List.iter
    (fun (case, label, why) ->
      Buffer.add_string b
        (Printf.sprintf "ESCAPE %s %s: %s\n" case label why))
    r.escapes;
  Buffer.contents b
