(* Seeded random MiniC program generator.

   Programs are *safe by construction*: every variable is initialized
   before use, every index is masked or loop-bounded to its array's
   extent, every divisor is a nonzero literal, and string operations
   track exact buffer occupancy.  Under that invariant, any trap in an
   instrumented configuration — and any divergence from the
   uninstrumented run — is a pipeline bug (the paper's completeness
   property, section 4).

   With [~oob:true] the generator additionally plants one deliberate
   out-of-bounds access at a random straight-line point; then every
   full-checking configuration must abort there with a bounds
   violation, and the store-only configurations must as well when the
   access is a write.

   The generation is weighted toward the constructs the SoftBound
   transform has to get right: pointer arithmetic, casts between
   pointer views, structs (field-bounds shrinking), nested arrays,
   pointers stored in memory (metadata table/shadow traffic), string
   and heap builtins (wrapper checks and metadata propagation), and
   calls through function pointers. *)

module A = Cminus.Ast
module C = Cminus.Ctypes

type expect = Safe | Trap_read | Trap_write

type case = {
  prog : A.program;
  expect : expect;
  note : string;
  sub_object : bool;
      (** the injected violation stays inside its allocation (a struct
          field overflow): only shrunken per-pointer bounds can see it,
          and the N-scheme oracle requires object-granularity schemes
          to stay silent on it *)
}

(* ------------------------------------------------------------------ *)
(* AST shorthands                                                       *)
(* ------------------------------------------------------------------ *)

let nl = Cminus.Lexer.no_loc
let e d = { A.edesc = d; eloc = nl }
let stm d = { A.sdesc = d; sloc = nl }
let ei n = e (A.Eintlit (Int64.of_int n, C.IInt))
let id x = e (A.Eident x)
let bin op a b = e (A.Ebinop (op, a, b))
let asn l r = e (A.Eassign (None, l, r))
let opasn op l r = e (A.Eassign (Some op, l, r))
let idx a i = e (A.Eindex (a, i))
let fld a f = e (A.Efield (a, f))
let arrow a f = e (A.Earrow (a, f))
let deref a = e (A.Ederef a)
let addrof a = e (A.Eaddrof a)
let cast ty a = e (A.Ecast (ty, a))
let call f args = e (A.Ecall (id f, args))
let strlit s = e (A.Estrlit s)
let charlit c = e (A.Echarlit c)
let sexpr x = stm (A.Sexpr x)
let sblock ss = stm (A.Sblock ss)

let sdecl ty name init =
  stm
    (A.Sdecl
       [
         {
           A.dty = ty;
           dname = name;
           dinit = Option.map (fun x -> A.Iexpr x) init;
           dstatic = false;
           dloc = nl;
         };
       ])

(* for (i = lo; i < hi; i = i + 1) { body } *)
let sfor_count i lo hi body =
  stm
    (A.Sfor
       ( A.Fexpr (asn (id i) (ei lo)),
         Some (bin A.Blt (id i) hi),
         Some (asn (id i) (bin A.Badd (id i) (ei 1))),
         sblock body ))

let lng = C.Tint C.ILong
let intt = C.Tint C.IInt
let chr = C.Tint C.IChar
let dbl = C.Tfloat C.FDouble
let ptr t = C.Tptr t
let fsig2 = { C.ret = lng; params = [ lng; lng ]; variadic = false }
let acc_add ex = sexpr (opasn A.Badd (id "acc") ex)

(* largest power of two <= n (n >= 1) *)
let floor_pow2 n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  go 1

(* ------------------------------------------------------------------ *)
(* Generation context and scope tracking                                *)
(* ------------------------------------------------------------------ *)

type buf_info = { cap : int; mutable len : int }

type vinfo =
  | Int_v of C.ikind  (** initialized integer scalar *)
  | Arr_v of C.ty * int  (** scalar-element array; length is a power of two *)
  | Arr2_v of int * int  (** [long m[r][c]], both powers of two *)
  | Ptr_v of int  (** [long*] valid for at least this many elements *)
  | Bytes_v of int  (** [char*] view, capacity in bytes (power of two) *)
  | Ints_v of int  (** [int*] view, capacity in ints (power of two) *)
  | Parr_v of int * int
      (** [long *pa[len]]: all slots initialized; every stored pointer
          is valid for at least the second component elements *)
  | Buf_v of buf_info  (** char buffer, NUL-terminated, occupancy tracked *)
  | S0_v of int  (** struct S0 variable; its [b] field's length *)
  | S1_v of int  (** struct S1 variable; capacity of its [q] field *)
  | Fptr_v  (** pointer to [long -> long -> long], always a valid target *)

type vrec = { vn : string; vi : vinfo; born : int; mutable alive : bool }

type ctx = {
  r : Rng.t;
  env : C.env;
  mutable vars : vrec list;
  mutable scene : int;  (** index of the scene being generated; -1 = toplevel *)
  mutable nfresh : int;
  mutable helpers : string list;  (** generated [long f(long, long)] *)
  mutable phelpers : string list;  (** generated [long h(long *, long)] *)
  mutable gdefs_rev : A.gdef list;
  mutable s0_blen : int;
}

let fresh ctx p =
  let n = ctx.nfresh in
  ctx.nfresh <- n + 1;
  Printf.sprintf "%s%d" p n

let add_var ctx vn vi =
  ctx.vars <- { vn; vi; born = ctx.scene; alive = true } :: ctx.vars

let live_vars ctx f =
  List.filter_map
    (fun v -> if v.alive then f v else None)
    ctx.vars

let int_scalars ctx =
  live_vars ctx (fun v ->
      match v.vi with Int_v _ -> Some v.vn | _ -> None)

(* ------------------------------------------------------------------ *)
(* Safe integer expressions                                             *)
(* ------------------------------------------------------------------ *)

(* No dynamic divisors, shift amounts are small literals; everything
   else wraps deterministically in the simulated machine. *)
let rec int_expr ctx depth : A.expr =
  let r = ctx.r in
  if depth <= 0 || Rng.chance r ~pct:35 then begin
    let scal = int_scalars ctx in
    if scal <> [] && Rng.chance r ~pct:72 then id (Rng.pick r scal)
    else ei (Rng.range r (-99) 99)
  end
  else
    match Rng.int r 10 with
    | 0 | 1 -> bin A.Badd (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 2 -> bin A.Bsub (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 3 -> bin A.Bmul (int_expr ctx (depth - 1)) (ei (Rng.range r (-9) 9))
    | 4 ->
        bin
          (Rng.pick r [ A.Bband; A.Bbxor; A.Bbor ])
          (int_expr ctx (depth - 1))
          (int_expr ctx (depth - 1))
    | 5 ->
        bin
          (Rng.pick r [ A.Bshl; A.Bshr ])
          (int_expr ctx (depth - 1))
          (ei (Rng.range r 0 7))
    | 6 ->
        bin
          (Rng.pick r [ A.Bdiv; A.Bmod ])
          (int_expr ctx (depth - 1))
          (ei (Rng.pick r [ 3; 5; 7; 9; 17 ]))
    | 7 -> e (A.Eunop (Rng.pick r [ A.Uneg; A.Ubnot ], int_expr ctx (depth - 1)))
    | 8 -> cast (Rng.pick r [ lng; intt ]) (int_expr ctx (depth - 1))
    | _ ->
        e
          (A.Econd
             ( cond_expr ctx (depth - 1),
               int_expr ctx (depth - 1),
               int_expr ctx (depth - 1) ))

and cond_expr ctx depth : A.expr =
  let r = ctx.r in
  let cmp () =
    bin
      (Rng.pick r [ A.Blt; A.Bgt; A.Ble; A.Bge; A.Beq; A.Bne ])
      (int_expr ctx depth) (int_expr ctx depth)
  in
  if depth > 0 && Rng.chance r ~pct:25 then
    bin (Rng.pick r [ A.Bland; A.Blor ]) (cmp ()) (cmp ())
  else cmp ()

(* index expression masked to [0, n) for a power-of-two n *)
let masked ctx n = bin A.Bband (int_expr ctx 1) (ei (n - 1))

(* ------------------------------------------------------------------ *)
(* Scenes: each yields a straight-line-reachable statement chunk        *)
(* ------------------------------------------------------------------ *)

let scene_scalars ctx : A.stmt list =
  let r = ctx.r in
  let decls =
    List.concat
      (List.map
         (fun _ ->
           let k =
             Rng.weighted r
               [
                 (5, C.IInt);
                 (6, C.ILong);
                 (1, C.IUInt);
                 (1, C.IULong);
                 (1, C.IShort);
                 (1, C.IChar);
               ]
           in
           let name = fresh ctx "v" in
           let d = sdecl (C.Tint k) name (Some (int_expr ctx 2)) in
           add_var ctx name (Int_v k);
           [ d ])
         (List.init (Rng.range r 1 3) Fun.id))
  in
  let ops =
    List.map
      (fun _ ->
        let tgt = Rng.pick r (int_scalars ctx) in
        match Rng.int r 4 with
        | 0 -> sexpr (asn (id tgt) (int_expr ctx 3))
        | 1 ->
            sexpr
              (opasn
                 (Rng.pick r [ A.Badd; A.Bsub; A.Bbxor ])
                 (id tgt) (int_expr ctx 2))
        | 2 -> sexpr (e (A.Eincrdecr (Rng.bool r, Rng.bool r, id tgt)))
        | _ -> acc_add (int_expr ctx 2))
      (List.init (Rng.range r 1 4) Fun.id)
  in
  decls @ ops

(* declare + fully initialize a 1-D array; returns its statements *)
let scene_array ?(force_long = false) ctx : A.stmt list =
  let r = ctx.r in
  let len = Rng.pick r [ 4; 8; 16 ] in
  let ety =
    if force_long then lng else Rng.weighted r [ (6, lng); (4, intt) ]
  in
  let a = fresh ctx "a" in
  let i = fresh ctx "i" in
  let d1 = sdecl (C.Tarray (ety, len)) a None in
  let d2 = sdecl lng i (Some (ei 0)) in
  add_var ctx a (Arr_v (ety, len));
  add_var ctx i (Int_v C.ILong);
  let fill =
    sfor_count i 0 (ei len)
      [
        sexpr
          (asn
             (idx (id a) (id i))
             (bin A.Badd
                (bin A.Bmul (id i) (ei (Rng.range r 1 5)))
                (int_expr ctx 1)));
      ]
  in
  let reduce_body =
    if Rng.chance r ~pct:20 then
      [
        stm
          (A.Sif
             ( cond_expr ctx 1,
               sblock [ stm A.Scontinue ],
               None ));
        acc_add (idx (id a) (id i));
      ]
    else [ acc_add (idx (id a) (id i)) ]
  in
  let reduce = sfor_count i 0 (ei len) reduce_body in
  let extra =
    List.map
      (fun _ ->
        if Rng.bool r then acc_add (idx (id a) (masked ctx len))
        else sexpr (asn (idx (id a) (masked ctx len)) (int_expr ctx 2)))
      (List.init (Rng.int r 3) Fun.id)
  in
  let copy =
    (* memcpy into a same-typed array exercises the metadata-copy
       heuristic (pointer-free element types skip the metadata blit) *)
    let others =
      live_vars ctx (fun v ->
          match v.vi with
          | Arr_v (t, l) when t = ety && v.vn <> a -> Some (v.vn, l)
          | _ -> None)
    in
    if others <> [] && Rng.chance r ~pct:40 then begin
      let src, slen = Rng.pick r others in
      let n = min len slen in
      [
        sexpr
          (call "memcpy"
             [
               id a;
               id src;
               bin A.Bmul (ei n) (e (A.Esizeof_ty ety));
             ]);
      ]
    end
    else []
  in
  [ d1; d2; fill; reduce ] @ extra @ copy

let scene_array2 ctx : A.stmt list =
  let r = ctx.r in
  let rows = Rng.pick r [ 2; 4 ] and cols = Rng.pick r [ 4; 8 ] in
  let m = fresh ctx "m" in
  let i = fresh ctx "i" in
  let j = fresh ctx "j" in
  add_var ctx m (Arr2_v (rows, cols));
  add_var ctx i (Int_v C.ILong);
  add_var ctx j (Int_v C.ILong);
  [
    sdecl (C.Tarray (C.Tarray (lng, cols), rows)) m None;
    sdecl lng i (Some (ei 0));
    sdecl lng j (Some (ei 0));
    sfor_count i 0 (ei rows)
      [
        sfor_count j 0 (ei cols)
          [
            sexpr
              (asn
                 (idx (idx (id m) (id i)) (id j))
                 (bin A.Badd
                    (bin A.Bmul (id i) (ei cols))
                    (bin A.Badd (id j) (int_expr ctx 1))));
          ];
      ]
    ;
    sfor_count i 0 (ei rows)
      [
        sfor_count j 0 (ei cols)
          [ acc_add (idx (idx (id m) (id i)) (id j)) ];
      ];
    acc_add (idx (idx (id m) (masked ctx rows)) (masked ctx cols));
  ]

(* a long-array or live heap-pointer source usable as a pointer *)
let long_sources ctx =
  live_vars ctx (fun v ->
      match v.vi with
      | Arr_v (t, l) when t = lng -> Some (v.vn, l)
      | Ptr_v c when c >= 2 -> Some (v.vn, c)
      | _ -> None)

let rec scene_ptr_walk ctx : A.stmt list =
  let r = ctx.r in
  match long_sources ctx with
  | [] -> scene_array ~force_long:true ctx @ scene_ptr_walk ctx
  | cands ->
      let src, cap = Rng.pick r cands in
      let off = if Rng.chance r ~pct:30 then Rng.int r (cap / 2) else 0 in
      let pcap = cap - off in
      let p = fresh ctx "p" in
      let i = fresh ctx "i" in
      add_var ctx p (Ptr_v pcap);
      add_var ctx i (Int_v C.ILong);
      let d1 =
        sdecl (ptr lng) p
          (Some (if off = 0 then id src else bin A.Badd (id src) (ei off)))
      in
      let d2 = sdecl lng i (Some (ei 0)) in
      let walk =
        sfor_count i 0 (ei pcap)
          (if Rng.chance r ~pct:35 then
             [
               sexpr (opasn A.Badd (deref (bin A.Badd (id p) (id i))) (id i));
               acc_add (idx (id p) (id i));
             ]
           else [ acc_add (deref (bin A.Badd (id p) (id i))) ])
      in
      let pp_bit =
        if Rng.chance r ~pct:30 then begin
          let pp = fresh ctx "pp" in
          [
            sdecl (ptr (ptr lng)) pp (Some (addrof (id p)));
            acc_add
              (idx (deref (id pp)) (masked ctx (floor_pow2 pcap)));
          ]
        end
        else []
      in
      [ d1; d2; walk ] @ pp_bit

let rec scene_cast_view ctx : A.stmt list =
  let r = ctx.r in
  let arrs =
    live_vars ctx (fun v ->
        match v.vi with
        | Arr_v (t, l) when t = lng -> Some (v.vn, l)
        | _ -> None)
  in
  match arrs with
  | [] -> scene_array ~force_long:true ctx @ scene_cast_view ctx
  | cands ->
      let a, len = Rng.pick r cands in
      if Rng.bool r then begin
        let bytes = len * 8 in
        let c = fresh ctx "cv" in
        add_var ctx c (Bytes_v bytes);
        [
          sdecl (ptr chr) c (Some (cast (ptr chr) (id a)));
          sexpr
            (asn (idx (id c) (masked ctx bytes)) (cast chr (int_expr ctx 1)));
          acc_add (idx (id c) (masked ctx bytes));
        ]
      end
      else begin
        let words = len * 2 in
        let iv = fresh ctx "iv" in
        add_var ctx iv (Ints_v words);
        [
          sdecl (ptr intt) iv (Some (cast (ptr intt) (id a)));
          sexpr (asn (idx (id iv) (masked ctx words)) (int_expr ctx 1));
          acc_add (idx (id iv) (masked ctx words));
        ]
      end

let scene_struct ctx : A.stmt list =
  let r = ctx.r in
  let bl = ctx.s0_blen in
  let s = fresh ctx "s" in
  add_var ctx s (S0_v bl);
  let init_b =
    List.map
      (fun k -> sexpr (asn (idx (fld (id s) "b") (ei k)) (int_expr ctx 1)))
      (List.init bl Fun.id)
  in
  let uses =
    [
      acc_add (fld (id s) "a");
      acc_add (idx (fld (id s) "b") (masked ctx bl));
      acc_add (fld (id s) "c");
    ]
  in
  let via_ptr =
    if Rng.chance r ~pct:60 then begin
      let sp = fresh ctx "sp" in
      [
        sdecl (ptr (C.Tstruct "S0")) sp (Some (addrof (id s)));
        sexpr (asn (arrow (id sp) "a") (int_expr ctx 2));
        acc_add (idx (arrow (id sp) "b") (masked ctx bl));
      ]
    end
    else []
  in
  [
    sdecl (C.Tstruct "S0") s None;
    sexpr (asn (fld (id s) "a") (int_expr ctx 2));
  ]
  @ init_b
  @ [ sexpr (asn (fld (id s) "c") (charlit (Char.chr (97 + Rng.int r 26)))) ]
  @ uses @ via_ptr

let rec scene_s1 ctx : A.stmt list =
  let r = ctx.r in
  let arrs =
    live_vars ctx (fun v ->
        match v.vi with
        | Arr_v (t, l) when t = lng -> Some (v.vn, l)
        | _ -> None)
  in
  match arrs with
  | [] -> scene_array ~force_long:true ctx @ scene_s1 ctx
  | cands ->
      let a, cap = Rng.pick r cands in
      let t = fresh ctx "t" in
      add_var ctx t (S1_v cap);
      [
        sdecl (C.Tstruct "S1") t None;
        sexpr (asn (fld (id t) "q") (id a));
        sexpr (asn (fld (id t) "n") (ei cap));
        acc_add (idx (fld (id t) "q") (masked ctx cap));
        sexpr
          (asn (idx (fld (id t) "q") (masked ctx cap)) (int_expr ctx 2));
        acc_add (fld (id t) "n");
      ]

let scene_heap ctx : A.stmt list =
  let r = ctx.r in
  let k = Rng.pick r [ 4; 8; 16; 32 ] in
  let h = fresh ctx "h" in
  let i = fresh ctx "i" in
  let use_calloc = Rng.chance r ~pct:30 in
  let alloc =
    if use_calloc then
      cast (ptr lng) (call "calloc" [ ei k; e (A.Esizeof_ty lng) ])
    else
      cast (ptr lng)
        (call "malloc" [ bin A.Bmul (ei k) (e (A.Esizeof_ty lng)) ])
  in
  add_var ctx h (Ptr_v k);
  add_var ctx i (Int_v C.ILong);
  let fill =
    if use_calloc then []
    else
      [
        sfor_count i 0 (ei k)
          [
            sexpr
              (asn (idx (id h) (id i)) (bin A.Badd (id i) (int_expr ctx 1)));
          ];
      ]
  in
  let reduce = [ sfor_count i 0 (ei k) [ acc_add (idx (id h) (id i)) ] ] in
  let grow =
    if (not use_calloc) && Rng.chance r ~pct:30 then begin
      (* realloc: metadata must follow the (possibly moved) block *)
      let k2 = k * 2 in
      ctx.vars <-
        List.map
          (fun v -> if v.vn = h then { v with vi = Ptr_v k2 } else v)
          ctx.vars;
      [
        sexpr
          (asn (id h)
             (cast (ptr lng)
                (call "realloc"
                   [ id h; bin A.Bmul (ei k2) (e (A.Esizeof_ty lng)) ])));
        sfor_count i 0 (ei k2) [ sexpr (asn (idx (id h) (id i)) (id i)) ];
        sfor_count i 0 (ei k2) [ acc_add (idx (id h) (id i)) ];
      ]
    end
    else []
  in
  let release =
    if Rng.chance r ~pct:50 then begin
      List.iter (fun v -> if v.vn = h then v.alive <- false) ctx.vars;
      [ sexpr (call "free" [ id h ]) ]
    end
    else []
  in
  [ sdecl (ptr lng) h (Some alloc); sdecl lng i (Some (ei 0)) ]
  @ fill @ reduce @ grow @ release

let rand_word r n = String.init (Rng.range r 1 n) (fun _ -> Char.chr (97 + Rng.int r 26))

let scene_strings ctx : A.stmt list =
  let r = ctx.r in
  let cap = Rng.pick r [ 8; 16; 24; 32 ] in
  let b = fresh ctx "b" in
  let info = { cap; len = 0 } in
  add_var ctx b (Buf_v info);
  let first = rand_word r (min 6 (cap - 1)) in
  info.len <- String.length first;
  let others () =
    live_vars ctx (fun v ->
        match v.vi with
        | Buf_v o when v.vn <> b -> Some (v.vn, o)
        | _ -> None)
  in
  let op () =
    match Rng.int r 8 with
    | 0 ->
        let w = rand_word r (min 6 (cap - 1)) in
        info.len <- String.length w;
        [ sexpr (call "strcpy" [ id b; strlit w ]) ]
    | 1 ->
        let room = cap - 1 - info.len in
        if room >= 1 then begin
          let w = rand_word r (min 5 room) in
          info.len <- info.len + String.length w;
          [ sexpr (call "strcat" [ id b; strlit w ]) ]
        end
        else []
    | 2 -> (
        match others () with
        | [] -> []
        | cands ->
            let src, o = Rng.pick r cands in
            let n = Rng.range r 1 (cap - 1) in
            info.len <- min o.len n;
            (* strncpy may leave [b] unterminated when the source fills
               the budget; terminate explicitly like careful C does *)
            [
              sexpr (call "strncpy" [ id b; id src; ei n ]);
              sexpr (asn (idx (id b) (ei n)) (ei 0));
            ])
    | 3 ->
        let v = bin A.Bband (int_expr ctx 1) (ei 999) in
        let pre = rand_word r 3 in
        let need = String.length pre + 3 in
        if need <= cap - 1 then begin
          info.len <- need;
          [ sexpr (call "sprintf" [ id b; strlit (pre ^ "%ld"); v ]) ]
        end
        else []
    | 4 ->
        [ acc_add (cast lng (call "strlen" [ id b ])) ]
    | 5 -> (
        match others () with
        | [] -> [ sexpr (call "printf" [ strlit "s=%s\n"; id b ]) ]
        | cands ->
            let src, _ = Rng.pick r cands in
            [ acc_add (call "strcmp" [ id b; id src ]) ])
    | 6 ->
        [
          acc_add
            (bin A.Bne
               (call "strchr" [ id b; charlit (Char.chr (97 + Rng.int r 26)) ])
               (ei 0));
        ]
    | _ -> [ sexpr (call "printf" [ strlit "s=%s\n"; id b ]) ]
  in
  [ sdecl (C.Tarray (chr, cap)) b None; sexpr (call "strcpy" [ id b; strlit first ]) ]
  @ List.concat (List.map (fun _ -> op ()) (List.init (Rng.range r 2 5) Fun.id))

let scene_fptr ctx : A.stmt list =
  let r = ctx.r in
  match ctx.helpers with
  | [] -> [ acc_add (int_expr ctx 2) ]
  | hs ->
      let fp = fresh ctx "fp" in
      add_var ctx fp Fptr_v;
      let first = Rng.pick r hs in
      let reassign =
        if List.length hs >= 2 && Rng.chance r ~pct:60 then
          [
            stm
              (A.Sif
                 ( cond_expr ctx 1,
                   sblock [ sexpr (asn (id fp) (id (Rng.pick r hs))) ],
                   None ));
          ]
        else []
      in
      [ sdecl (ptr (C.Tfunc fsig2)) fp (Some (id first)) ]
      @ reassign
      @ [ acc_add (call fp [ int_expr ctx 2; int_expr ctx 2 ]) ]

let rec scene_helper_call ctx : A.stmt list =
  let r = ctx.r in
  match (ctx.phelpers, long_sources ctx) with
  | [], _ -> [ acc_add (int_expr ctx 2) ]
  | _, [] -> scene_array ~force_long:true ctx @ scene_helper_call ctx
  | hs, cands ->
      let h = Rng.pick r hs in
      let src, cap = Rng.pick r cands in
      let off = if Rng.chance r ~pct:25 then Rng.int r (cap / 2) else 0 in
      let arg = if off = 0 then id src else bin A.Badd (id src) (ei off) in
      [ acc_add (call h [ arg; ei (cap - off) ]) ]

let rec scene_parr ctx : A.stmt list =
  let r = ctx.r in
  let arrs =
    live_vars ctx (fun v ->
        match v.vi with
        | Arr_v (t, l) when t = lng -> Some (v.vn, l)
        | _ -> None)
  in
  match arrs with
  | [] -> scene_array ~force_long:true ctx @ scene_parr ctx
  | cands ->
      let len = 4 in
      let pa = fresh ctx "pa" in
      let slots =
        List.map
          (fun _ ->
            let a, cap = Rng.pick r cands in
            let off = if Rng.chance r ~pct:30 then Rng.int r (cap / 2) else 0 in
            ((if off = 0 then id a else bin A.Badd (id a) (ei off)), cap - off))
          (List.init len Fun.id)
      in
      let mincap = List.fold_left (fun m (_, c) -> min m c) max_int slots in
      let mask = floor_pow2 mincap in
      add_var ctx pa (Parr_v (len, mincap));
      let fills =
        List.mapi
          (fun k (src, _) -> sexpr (asn (idx (id pa) (ei k)) src))
          slots
      in
      let uses =
        [
          acc_add (idx (idx (id pa) (masked ctx len)) (masked ctx mask));
          sexpr
            (asn
               (idx (idx (id pa) (masked ctx len)) (masked ctx mask))
               (int_expr ctx 2));
        ]
      in
      let pp_bit =
        if Rng.chance r ~pct:30 then begin
          let pp = fresh ctx "qq" in
          [
            sdecl (ptr (ptr lng)) pp (Some (id pa));
            acc_add (idx (deref (id pp)) (masked ctx mask));
          ]
        end
        else []
      in
      (sdecl (C.Tarray (ptr lng, len)) pa None :: fills) @ uses @ pp_bit

let scene_switch ctx : A.stmt list =
  let r = ctx.r in
  let ncase = Rng.range r 2 4 in
  let cases =
    List.map
      (fun k ->
        {
          A.cvals = [ ei k ];
          cis_default = false;
          cbody = [ acc_add (int_expr ctx 2); stm A.Sbreak ];
        })
      (List.init ncase Fun.id)
    @ [
        {
          A.cvals = [];
          cis_default = true;
          cbody =
            [ sexpr (opasn A.Bbxor (id "acc") (int_expr ctx 1)); stm A.Sbreak ];
        };
      ]
  in
  [ stm (A.Sswitch (cast intt (bin A.Bband (int_expr ctx 2) (ei 7)), cases)) ]

let scene_while ctx : A.stmt list =
  let r = ctx.r in
  let w = fresh ctx "w" in
  add_var ctx w (Int_v C.ILong);
  let k = Rng.range r 2 9 in
  let body =
    [ acc_add (int_expr ctx 1); sexpr (asn (id w) (bin A.Badd (id w) (ei 1))) ]
  in
  if Rng.bool r then
    [ sdecl lng w (Some (ei 0)); stm (A.Swhile (bin A.Blt (id w) (ei k), sblock body)) ]
  else
    [ sdecl lng w (Some (ei 0)); stm (A.Sdo (sblock body, bin A.Blt (id w) (ei k))) ]

let scene_dbl ctx : A.stmt list =
  let r = ctx.r in
  let d = fresh ctx "d" in
  let lit = float_of_int (Rng.range r 1 9) /. 2.0 in
  [
    sdecl dbl d (Some (e (A.Efloatlit (lit, C.FDouble))));
    sexpr
      (asn (id d)
         (bin A.Badd
            (bin A.Bmul (id d) (e (A.Efloatlit (2.25, C.FDouble))))
            (cast dbl (bin A.Bband (int_expr ctx 1) (ei 255)))));
    acc_add (cast lng (id d));
  ]
  @ (if Rng.chance r ~pct:30 then
       [ sexpr (call "printf" [ strlit (d ^ "=%g\n"); id d ]) ]
     else [])

let scene_condacc ctx : A.stmt list =
  let r = ctx.r in
  let t = [ acc_add (int_expr ctx 2) ] in
  let f = [ sexpr (opasn A.Bbxor (id "acc") (int_expr ctx 2)) ] in
  if Rng.bool r then [ stm (A.Sif (cond_expr ctx 2, sblock t, Some (sblock f))) ]
  else [ stm (A.Sif (cond_expr ctx 2, sblock t, None)) ]

(* Counted loops with affine accesses, shaped for the induction-variable
   check-widening sub-pass (Elim passes 1b/1c).  Emits both the
   canonical widenable forms — up-counting unit/constant-stride loops
   over [a\[i\]], [a\[i+1\]] (in-block coalescing food) and pointer
   walks — and the legality-refusal shapes the pass must leave alone:
   early [break], a call in the loop body, and down-counting.  Safe by
   construction: every trip count is bounded by the array's extent. *)
let rec scene_affine ctx : A.stmt list =
  let r = ctx.r in
  let arrs =
    live_vars ctx (fun v ->
        match v.vi with Arr_v (t, l) -> Some (v.vn, t, l) | _ -> None)
  in
  match arrs with
  | [] -> scene_array ~force_long:true ctx @ scene_affine ctx
  | cands ->
      let a, _ety, len = Rng.pick r cands in
      let i = fresh ctx "i" in
      add_var ctx i (Int_v C.ILong);
      let di = sdecl lng i (Some (ei 0)) in
      (* for (i = lo; i <cmp> hi; i = i + step) { body } *)
      let sfor lo cmp hi step body =
        stm
          (A.Sfor
             ( A.Fexpr (asn (id i) (ei lo)),
               Some (bin cmp (id i) (ei hi)),
               Some (asn (id i) (bin A.Badd (id i) (ei step))),
               sblock body ))
      in
      let body =
        match Rng.int r 5 with
        | 0 ->
            (* widenable + coalescible: a[i] and a[i+1] share a base *)
            sfor 0 A.Blt (len - 1) 1
              [
                sexpr (asn (idx (id a) (id i)) (int_expr ctx 1));
                acc_add (idx (id a) (bin A.Badd (id i) (ei 1)));
              ]
        | 1 ->
            (* widenable: constant stride > 1 *)
            let step = Rng.pick r [ 2; 4 ] in
            sfor 0 A.Blt len step [ acc_add (idx (id a) (id i)) ]
        | 2 ->
            (* widenable: pointer walk with a store *)
            sfor 0 A.Blt len 1
              [ sexpr (opasn A.Badd (deref (bin A.Badd (id a) (id i))) (ei 1)) ]
        | 3 ->
            (* refusal: early break — trip count is not exact *)
            sfor 0 A.Blt len 1
              [
                acc_add (idx (id a) (id i));
                stm
                  (A.Sif
                     (cond_expr ctx 1, sblock [ stm A.Sbreak ], None));
              ]
        | _ ->
            (* refusal: down-counting (negative stride) *)
            sfor (len - 1) A.Bge 0 (-1) [ acc_add (idx (id a) (id i)) ]
      in
      let called =
        (* refusal: same loop shape but with a call in the body *)
        match ctx.helpers with
        | hs when hs <> [] && Rng.chance r ~pct:40 ->
            [
              sfor 0 A.Blt len 1
                [
                  acc_add
                    (call (Rng.pick r hs) [ idx (id a) (id i); ei 3 ]);
                ];
            ]
        | _ -> []
      in
      (di :: body :: called)

let gen_scene ctx : A.stmt list =
  let f =
    Rng.weighted ctx.r
      [
        (8, scene_scalars);
        (9, fun c -> scene_array c);
        (4, scene_array2);
        (8, scene_ptr_walk);
        (6, scene_cast_view);
        (7, scene_struct);
        (4, scene_s1);
        (8, scene_heap);
        (8, scene_strings);
        (5, scene_fptr);
        (5, scene_helper_call);
        (6, scene_parr);
        (3, scene_switch);
        (3, scene_while);
        (3, scene_dbl);
        (4, scene_condacc);
        (7, scene_affine);
      ]
  in
  f ctx

(* ------------------------------------------------------------------ *)
(* Helper functions (generated before main)                             *)
(* ------------------------------------------------------------------ *)

let gen_f_helper ctx : unit =
  let r = ctx.r in
  let name = fresh ctx "f" in
  let saved = ctx.vars in
  ctx.vars <- List.filter (fun v -> v.born < 0) ctx.vars;
  add_var ctx "x" (Int_v C.ILong);
  add_var ctx "y" (Int_v C.ILong);
  let t = fresh ctx "t" in
  let body0 = [ sdecl lng t (Some (int_expr ctx 2)) ] in
  add_var ctx t (Int_v C.ILong);
  let branch =
    if Rng.chance r ~pct:60 then
      [
        stm
          (A.Sif
             ( cond_expr ctx 1,
               sblock [ sexpr (asn (id t) (int_expr ctx 2)) ],
               Some (sblock [ sexpr (opasn A.Badd (id t) (int_expr ctx 2)) ]) ));
      ]
    else []
  in
  let garr =
    if Rng.chance r ~pct:50 then
      [ sexpr (opasn A.Badd (id t) (idx (id "g0") (masked ctx 8))) ]
    else []
  in
  let chain =
    match ctx.helpers with
    | prev :: _ when Rng.chance r ~pct:30 ->
        [
          sexpr
            (opasn A.Badd (id t)
               (call prev [ ei (Rng.range r 0 9); ei (Rng.range r 0 9) ]));
        ]
    | _ -> []
  in
  let ret = [ stm (A.Sreturn (Some (bin A.Badd (id t) (int_expr ctx 1)))) ] in
  ctx.vars <- saved;
  ctx.helpers <- ctx.helpers @ [ name ];
  ctx.gdefs_rev <-
    A.Gfun
      {
        A.fname = name;
        fret = lng;
        fparams = [ (lng, "x"); (lng, "y") ];
        fvariadic = false;
        fbody = body0 @ branch @ garr @ chain @ ret;
        floc = nl;
      }
    :: ctx.gdefs_rev

let gen_p_helper ctx : unit =
  let r = ctx.r in
  let name = fresh ctx "h" in
  let writes = Rng.chance r ~pct:40 in
  let loop_body =
    if writes then
      [
        sexpr (opasn A.Badd (idx (id "p") (id "i")) (id "i"));
        sexpr (opasn A.Badd (id "s") (idx (id "p") (id "i")));
      ]
    else [ sexpr (opasn A.Badd (id "s") (idx (id "p") (id "i"))) ]
  in
  ctx.phelpers <- ctx.phelpers @ [ name ];
  ctx.gdefs_rev <-
    A.Gfun
      {
        A.fname = name;
        fret = lng;
        fparams = [ (ptr lng, "p"); (lng, "n") ];
        fvariadic = false;
        fbody =
          [
            sdecl lng "s" (Some (ei 0));
            sdecl lng "i" (Some (ei 0));
            sfor_count "i" 0 (id "n") loop_body;
            stm (A.Sreturn (Some (id "s")));
          ];
        floc = nl;
      }
    :: ctx.gdefs_rev

(* ------------------------------------------------------------------ *)
(* Out-of-bounds injection                                              *)
(* ------------------------------------------------------------------ *)

type injection = {
  istmt : A.stmt;
  iexpect : expect;
  inote : string;
  isub_object : bool;
}

let targetable v =
  v.alive
  &&
  match v.vi with
  | Arr_v _ | Arr2_v _ | Ptr_v _ | Bytes_v _ | Ints_v _ | Parr_v _ | Buf_v _
  | S0_v _ | S1_v _ ->
      true
  | Int_v _ | Fptr_v -> false

(* Build one deliberate spatial violation against a variable born
   before scene [boundary].  The access sits in straight-line main code,
   so every full-checking run must reach and trap on it. *)
let build_injection ctx boundary : injection =
  let r = ctx.r in
  let cands =
    List.filter (fun v -> targetable v && v.born < boundary) ctx.vars
  in
  (* the fixed globals guarantee candidates exist *)
  let v = Rng.pick r cands in
  let d = Rng.int r 3 in
  let write = Rng.bool r in
  let mk ?(rd_cast = false) ?(sub = false) lv note =
    if write then
      {
        istmt = sexpr (asn lv (ei 7));
        iexpect = Trap_write;
        inote = Printf.sprintf "oob-write %s" note;
        isub_object = sub;
      }
    else
      {
        istmt = acc_add (if rd_cast then cast lng lv else lv);
        iexpect = Trap_read;
        inote = Printf.sprintf "oob-read %s" note;
        isub_object = sub;
      }
  in
  match v.vi with
  | Arr_v (_, l) ->
      if write && Rng.chance r ~pct:25 then
        mk
          (idx (id v.vn) (ei (-1 - Rng.int r 2)))
          (Printf.sprintf "%s[negative]" v.vn)
      else mk (idx (id v.vn) (ei (l + d))) (Printf.sprintf "%s[%d/%d]" v.vn (l + d) l)
  | Arr2_v (rows, cols) ->
      mk
        (idx (idx (id v.vn) (ei (rows - 1))) (ei (cols + d)))
        (Printf.sprintf "%s[%d][%d/%d]" v.vn (rows - 1) (cols + d) cols)
  | Ptr_v c ->
      mk
        (deref (bin A.Badd (id v.vn) (ei (c + d))))
        (Printf.sprintf "*(%s+%d/cap %d)" v.vn (c + d) c)
  | Bytes_v c ->
      mk (idx (id v.vn) (ei (c + d))) (Printf.sprintf "%s[%d/%d]" v.vn (c + d) c)
  | Ints_v c ->
      mk (idx (id v.vn) (ei (c + d))) (Printf.sprintf "%s[%d/%d]" v.vn (c + d) c)
  | Parr_v (l, _) ->
      mk ~rd_cast:true
        (idx (id v.vn) (ei (l + d)))
        (Printf.sprintf "%s[%d/%d] (pointer array)" v.vn (l + d) l)
  | Buf_v { cap; _ } ->
      if write && Rng.bool r then
        {
          istmt = sexpr (call "strcpy" [ id v.vn; strlit (String.make cap 'z') ]);
          iexpect = Trap_write;
          inote = Printf.sprintf "strcpy overflow into %s[%d]" v.vn cap;
          isub_object = false;
        }
      else
        mk (idx (id v.vn) (ei (cap + d))) (Printf.sprintf "%s[%d/%d]" v.vn (cap + d) cap)
  | S0_v bl ->
      (* one past the [b] field: still inside the struct object, so only
         shrunken (sub-object) bounds can catch it *)
      mk ~sub:true
        (idx (fld (id v.vn) "b") (ei (bl + Rng.int r 2)))
        (Printf.sprintf "%s.b[%d/%d] (field overflow)" v.vn bl bl)
  | S1_v c ->
      mk
        (idx (fld (id v.vn) "q") (ei (c + d)))
        (Printf.sprintf "%s.q[%d/cap %d]" v.vn (c + d) c)
  | Int_v _ | Fptr_v -> assert false

(* ------------------------------------------------------------------ *)
(* Whole-program assembly                                               *)
(* ------------------------------------------------------------------ *)

let generate (r : Rng.t) ~(oob : bool) : case =
  let env = C.create_env () in
  let ctx =
    {
      r;
      env;
      vars = [];
      scene = -1;
      nfresh = 0;
      helpers = [];
      phelpers = [];
      gdefs_rev = [];
      s0_blen = 0;
    }
  in
  (* composite types *)
  let blen = Rng.pick r [ 2; 4; 8 ] in
  ctx.s0_blen <- blen;
  let s0_fields =
    [ ("a", lng); ("b", C.Tarray (intt, blen)); ("c", chr) ]
    @ if Rng.bool r then [ ("d", dbl) ] else []
  in
  ignore (C.define_comp env ~is_struct:true "S0" s0_fields);
  ignore
    (C.define_comp env ~is_struct:true "S1"
       [ ("inner", C.Tstruct "S0"); ("q", ptr lng); ("n", lng) ]);
  (* fixed globals: always-available safe targets *)
  let gvar ty name init vi =
    ctx.gdefs_rev <-
      A.Gvar
        {
          gty = ty;
          gname = name;
          ginit = Option.map (fun x -> A.Iexpr x) init;
          gextern = false;
          gloc = nl;
        }
      :: ctx.gdefs_rev;
    ctx.vars <- { vn = name; vi; born = -1; alive = true } :: ctx.vars
  in
  gvar (C.Tarray (lng, 8)) "g0" None (Arr_v (lng, 8));
  gvar (C.Tarray (intt, 16)) "g1" None (Arr_v (intt, 16));
  gvar lng "gs0" (Some (ei (Rng.range r 1 50))) (Int_v C.ILong);
  gvar lng "gs1" (Some (ei (Rng.range r 1 50))) (Int_v C.ILong);
  (* helpers *)
  let nf = Rng.range r 2 3 in
  for _ = 1 to nf do
    gen_f_helper ctx
  done;
  gen_p_helper ctx;
  (* main body: scenes with checkpoints *)
  ctx.vars <- { vn = "acc"; vi = Int_v C.ILong; born = -1; alive = true } :: ctx.vars;
  let nscenes = Rng.range r 4 9 in
  let chunks = ref [] in
  for k = 0 to nscenes - 1 do
    ctx.scene <- k;
    let body = gen_scene ctx in
    let chk =
      if Rng.chance r ~pct:55 then
        [
          sexpr
            (call "printf"
               [ strlit (Printf.sprintf "c%d=%%ld\n" k); cast lng (id "acc") ]);
        ]
      else []
    in
    chunks := (body @ chk) :: !chunks
  done;
  let chunks = List.rev !chunks in
  (* candidates must be born before the insertion point, so draw the
     boundary first and use it for both placement and target choice *)
  let inj =
    if oob then
      let b = Rng.range r 1 nscenes in
      Some (b, build_injection ctx b)
    else None
  in
  let body =
    List.concat
      (List.mapi
         (fun k c ->
           match inj with
           | Some (b, i) when b = k + 1 -> c @ [ i.istmt ]
           | _ -> c)
         chunks)
  in
  let main_body =
    (sdecl lng "acc" (Some (ei (Rng.range r 0 9))) :: body)
    @ [
        sexpr (call "printf" [ strlit "end=%ld\n"; cast lng (id "acc") ]);
        stm (A.Sreturn (Some (cast intt (bin A.Bband (id "acc") (ei 63)))));
      ]
  in
  let main =
    A.Gfun
      {
        A.fname = "main";
        fret = intt;
        fparams = [];
        fvariadic = false;
        fbody = main_body;
        floc = nl;
      }
  in
  let prog = { A.defs = List.rev (main :: ctx.gdefs_rev); penv = env } in
  match inj with
  | None -> { prog; expect = Safe; note = "safe"; sub_object = false }
  | Some (_, i) ->
      { prog; expect = i.iexpect; note = i.inote; sub_object = i.isub_object }
