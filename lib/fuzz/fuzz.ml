(* Campaign driver: generate, cross-check, shrink, report.

   Program [k] of a campaign draws from [Rng.split root k], so any
   finding replays in isolation: the same seed and index always
   regenerate the same program. *)

(* [fuzz]'s root module: re-export the pieces. *)
module Rng = Rng
module Gen = Gen
module Oracle = Oracle
module Shrink = Shrink
module Adversary = Adversary

let expect_name = function
  | Gen.Safe -> "safe"
  | Gen.Trap_read -> "oob-read"
  | Gen.Trap_write -> "oob-write"

type finding_report = {
  index : int;  (** case number within the campaign *)
  note : string;  (** generator's description of the case *)
  expect : Gen.expect;
  cls : string;
  detail : string;
  source : string;  (** the program as generated *)
  shrunk : string option;  (** minimized reproducer, when shrinking ran *)
}

type report = {
  seed : int;
  count : int;
  matrix : bool;  (** ran under the N-scheme oracle *)
  tested : int;  (** cases that ran to a verdict *)
  skipped : int;  (** cases dropped for hitting resource limits *)
  trap_cases : int;  (** cases carrying an injected violation *)
  findings : finding_report list;
}

(** Regenerate case [index] of campaign [seed] (for replaying a
    reported finding). *)
let case_of ~seed ~index : Gen.case =
  let root = Rng.create seed in
  let r = Rng.split root index in
  let oob = Rng.chance r ~pct:30 in
  Gen.generate r ~oob

(** Per-case verdict, produced independently of every other case. *)
type outcome = O_tested | O_skipped | O_finding of finding_report

(** Evaluate case [k] to an outcome.  Self-contained: the case is
    regenerated from [seed]/[k] and the oracle builds fresh pipelines
    and VM states, so outcomes are independent of evaluation order —
    which is what lets a campaign fan out across domains.  With
    [~matrix:true] the case runs under {!Oracle.check_matrix} (the
    N-scheme oracle) instead of the seven-configuration {!Oracle.check}. *)
let eval_case ?(shrink = true) ?(matrix = false) ?max_steps ?poll
    ?(shrink_budget = 250) ~seed k : bool * outcome =
  let case = case_of ~seed ~index:k in
  let is_trap = case.Gen.expect <> Gen.Safe in
  let oracle prog =
    if matrix then
      Oracle.check_matrix ?max_steps ?poll ~expect:case.Gen.expect
        ~sub_object:case.Gen.sub_object prog
    else Oracle.check ?max_steps ?poll ~expect:case.Gen.expect prog
  in
  let verdict =
    try oracle case.Gen.prog
    with e ->
      Oracle.Bug
        {
          Oracle.cls = "harness-exception";
          detail = Printexc.to_string e;
          runs = [];
        }
  in
  let outcome =
    match verdict with
    | Oracle.Ok_ -> O_tested
    | Oracle.Skip _ -> O_skipped
    | Oracle.Bug f ->
        let source = Cminus.Pretty.program_string case.Gen.prog in
        let shrunk =
          if not shrink then None
          else
            let small =
              try
                Shrink.minimize ~oracle ?max_steps ~budget:shrink_budget
                  ~expect:case.Gen.expect ~cls:f.Oracle.cls case.Gen.prog
              with _ -> case.Gen.prog
            in
            Some (Cminus.Pretty.program_string small)
        in
        O_finding
          {
            index = k;
            note = case.Gen.note;
            expect = case.Gen.expect;
            cls = f.Oracle.cls;
            detail = f.Oracle.detail;
            source;
            shrunk;
          }
  in
  (is_trap, outcome)

let run_campaign ?(shrink = true) ?(matrix = false) ?max_steps ?poll
    ?(shrink_budget = 250) ?(progress = fun (_ : int) -> ()) ?(jobs = 1) ~seed
    ~count () : report =
  (* [jobs <= 1] runs inline on this domain; otherwise cases fan out via
     {!Parutil.parmap}, whose results come back in case order — so the
     fold below (and hence the report) is identical either way.
     [progress] only ticks on the sequential path: with workers racing
     through the queue there is no meaningful "current case". *)
  let outcomes =
    if jobs <= 1 then
      List.init count (fun k ->
          progress k;
          eval_case ~shrink ~matrix ?max_steps ?poll ~shrink_budget ~seed k)
    else
      Parutil.parmap ~jobs
        (eval_case ~shrink ~matrix ?max_steps ?poll ~shrink_budget ~seed)
        (List.init count Fun.id)
  in
  let tested = ref 0 and skipped = ref 0 and traps = ref 0 in
  let findings = ref [] in
  List.iter
    (fun (is_trap, outcome) ->
      if is_trap then incr traps;
      match outcome with
      | O_tested -> incr tested
      | O_skipped -> incr skipped
      | O_finding f ->
          incr tested;
          findings := f :: !findings)
    outcomes;
  {
    seed;
    count;
    matrix;
    tested = !tested;
    skipped = !skipped;
    trap_cases = !traps;
    findings = List.rev !findings;
  }

let render_finding (f : finding_report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "FINDING case=%d class=%s expect=%s (%s)\n  %s\n" f.index
       f.cls (expect_name f.expect) f.note f.detail);
  let body = Option.value f.shrunk ~default:f.source in
  Buffer.add_string b "  reproducer:\n";
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         Buffer.add_string b "    ";
         Buffer.add_string b line;
         Buffer.add_char b '\n');
  Buffer.contents b

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz%s: seed=%d count=%d tested=%d skipped=%d injected=%d findings=%d\n"
       (if r.matrix then " (N-scheme matrix)" else "")
       r.seed r.count r.tested r.skipped r.trap_cases (List.length r.findings));
  List.iter (fun f -> Buffer.add_string b (render_finding f)) r.findings;
  Buffer.contents b
