(* Campaign driver: generate, cross-check, shrink, report.

   Program [k] of a campaign draws from [Rng.split root k], so any
   finding replays in isolation: the same seed and index always
   regenerate the same program. *)

(* [fuzz]'s root module: re-export the pieces. *)
module Rng = Rng
module Gen = Gen
module Oracle = Oracle
module Shrink = Shrink

let expect_name = function
  | Gen.Safe -> "safe"
  | Gen.Trap_read -> "oob-read"
  | Gen.Trap_write -> "oob-write"

type finding_report = {
  index : int;  (** case number within the campaign *)
  note : string;  (** generator's description of the case *)
  expect : Gen.expect;
  cls : string;
  detail : string;
  source : string;  (** the program as generated *)
  shrunk : string option;  (** minimized reproducer, when shrinking ran *)
}

type report = {
  seed : int;
  count : int;
  tested : int;  (** cases that ran to a verdict *)
  skipped : int;  (** cases dropped for hitting resource limits *)
  trap_cases : int;  (** cases carrying an injected violation *)
  findings : finding_report list;
}

(** Regenerate case [index] of campaign [seed] (for replaying a
    reported finding). *)
let case_of ~seed ~index : Gen.case =
  let root = Rng.create seed in
  let r = Rng.split root index in
  let oob = Rng.chance r ~pct:30 in
  Gen.generate r ~oob

let run_campaign ?(shrink = true) ?max_steps ?(shrink_budget = 250)
    ?(progress = fun (_ : int) -> ()) ~seed ~count () : report =
  let tested = ref 0 and skipped = ref 0 and traps = ref 0 in
  let findings = ref [] in
  for k = 0 to count - 1 do
    progress k;
    let case = case_of ~seed ~index:k in
    if case.Gen.expect <> Gen.Safe then incr traps;
    let verdict =
      try Oracle.check ?max_steps ~expect:case.Gen.expect case.Gen.prog
      with e ->
        Oracle.Bug
          {
            Oracle.cls = "harness-exception";
            detail = Printexc.to_string e;
            runs = [];
          }
    in
    match verdict with
    | Oracle.Ok_ -> incr tested
    | Oracle.Skip _ -> incr skipped
    | Oracle.Bug f ->
        incr tested;
        let source = Cminus.Pretty.program_string case.Gen.prog in
        let shrunk =
          if not shrink then None
          else
            let small =
              try
                Shrink.minimize ?max_steps ~budget:shrink_budget
                  ~expect:case.Gen.expect ~cls:f.Oracle.cls case.Gen.prog
              with _ -> case.Gen.prog
            in
            Some (Cminus.Pretty.program_string small)
        in
        findings :=
          {
            index = k;
            note = case.Gen.note;
            expect = case.Gen.expect;
            cls = f.Oracle.cls;
            detail = f.Oracle.detail;
            source;
            shrunk;
          }
          :: !findings
  done;
  {
    seed;
    count;
    tested = !tested;
    skipped = !skipped;
    trap_cases = !traps;
    findings = List.rev !findings;
  }

let render_finding (f : finding_report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "FINDING case=%d class=%s expect=%s (%s)\n  %s\n" f.index
       f.cls (expect_name f.expect) f.note f.detail);
  let body = Option.value f.shrunk ~default:f.source in
  Buffer.add_string b "  reproducer:\n";
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         Buffer.add_string b "    ";
         Buffer.add_string b line;
         Buffer.add_char b '\n');
  Buffer.contents b

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz: seed=%d count=%d tested=%d skipped=%d injected=%d findings=%d\n"
       r.seed r.count r.tested r.skipped r.trap_cases (List.length r.findings));
  List.iter (fun f -> Buffer.add_string b (render_finding f)) r.findings;
  Buffer.contents b
