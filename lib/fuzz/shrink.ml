(* Greedy test-case minimizer.

   Given a program the oracle flagged, repeatedly try one-step
   simplifications — delete a global definition, delete a window of
   statements, replace a control-flow construct by its body — and keep
   any that still reproduces a finding of the *same class*.  Candidates
   that no longer compile are rejected automatically (the oracle
   classifies them as a different finding or none), so the edits don't
   need to preserve well-formedness themselves.

   Each candidate costs a full oracle evaluation (seven VM runs), so
   the search is bounded by an oracle-call budget rather than a size
   target. *)

module A = Cminus.Ast

let window_sizes = [ 8; 4; 2; 1 ]

let zero =
  { A.edesc = A.Eintlit (0L, Cminus.Ctypes.IInt); eloc = Cminus.Lexer.no_loc }

let is_zero_init = function
  | Some (A.Iexpr { A.edesc = A.Eintlit (0L, _); _ }) -> true
  | _ -> false

(* all lists obtained by deleting a window or simplifying one element *)
let rec list_variants (ss : A.stmt list) : A.stmt list list =
  let n = List.length ss in
  let windows =
    List.concat_map
      (fun w ->
        if w > n then []
        else
          List.init
            (n - w + 1)
            (fun i -> List.filteri (fun j _ -> j < i || j >= i + w) ss))
      window_sizes
  in
  let subs =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> List.mapi (fun j x -> if j = i then s' else x) ss)
             (stmt_variants s))
         ss)
  in
  windows @ subs

(* simpler statements that might preserve the failure *)
and stmt_variants (s : A.stmt) : A.stmt list =
  let mk d = { s with A.sdesc = d } in
  match s.A.sdesc with
  | A.Sif (c, t, None) ->
      t :: List.map (fun t' -> mk (A.Sif (c, t', None))) (stmt_variants t)
  | A.Sif (c, t, Some f) ->
      [ t; f; mk (A.Sif (c, t, None)) ]
      @ List.map (fun t' -> mk (A.Sif (c, t', Some f))) (stmt_variants t)
      @ List.map (fun f' -> mk (A.Sif (c, t, Some f'))) (stmt_variants f)
  | A.Swhile (c, b) ->
      b :: List.map (fun b' -> mk (A.Swhile (c, b'))) (stmt_variants b)
  | A.Sdo (b, c) ->
      b :: List.map (fun b' -> mk (A.Sdo (b', c))) (stmt_variants b)
  | A.Sfor (i, c, st, b) ->
      b :: List.map (fun b' -> mk (A.Sfor (i, c, st, b'))) (stmt_variants b)
  | A.Sblock [ one ] -> [ one ]
  | A.Sblock ss -> List.map (fun ss' -> mk (A.Sblock ss')) (list_variants ss)
  | A.Sdecl ds ->
      (* zeroing an initializer detaches the declaration from whatever
         computed it, letting that computation (often a whole helper
         function) be deleted in a later step *)
      List.concat
        (List.mapi
           (fun i d ->
             if d.A.dinit = None || is_zero_init d.A.dinit then []
             else
               [
                 mk
                   (A.Sdecl
                      (List.mapi
                         (fun j x ->
                           if j = i then
                             { x with A.dinit = Some (A.Iexpr zero) }
                           else x)
                         ds));
               ])
           ds)
  | _ -> []

let program_variants (p : A.program) : A.program list =
  let defs = p.A.defs in
  let removals =
    List.concat
      (List.mapi
         (fun i d ->
           match d with
           | A.Gfun f when f.A.fname = "main" -> []
           | _ -> [ { p with A.defs = List.filteri (fun j _ -> j <> i) defs } ])
         defs)
  in
  let body_edits =
    List.concat
      (List.mapi
         (fun i d ->
           match d with
           | A.Gfun f ->
               List.map
                 (fun body ->
                   {
                     p with
                     A.defs =
                       List.mapi
                         (fun j x ->
                           if j = i then A.Gfun { f with A.fbody = body } else x)
                         defs;
                   })
                 (list_variants f.A.fbody)
           | _ -> [])
         defs)
  in
  removals @ body_edits

(** Minimize [p] while the oracle keeps reporting class [cls] for the
    same expectation.  Returns the smallest program found within the
    oracle-call [budget].  [oracle] overrides the verdict function
    (default {!Oracle.check} with [expect]) — the matrix campaign
    passes {!Oracle.check_matrix} so per-scheme classes shrink under
    the oracle that found them. *)
let minimize ?(budget = 250) ?max_steps ?oracle ~(expect : Gen.expect)
    ~(cls : string) (p : A.program) : A.program =
  let verdict_of =
    match oracle with
    | Some f -> f
    | None -> fun prog -> Oracle.check ?max_steps ~expect prog
  in
  let budget = ref budget in
  let keeps prog =
    !budget > 0
    &&
    begin
      decr budget;
      match verdict_of prog with
      | Oracle.Bug f -> f.Oracle.cls = cls
      | Oracle.Ok_ | Oracle.Skip _ -> false
    end
  in
  let rec go p =
    if !budget <= 0 then p
    else
      match List.find_opt keeps (program_variants p) with
      | Some p' -> go p'
      | None -> p
  in
  go p
