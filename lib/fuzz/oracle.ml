(* Differential oracle: run one generated program in lock-step under
   every pipeline configuration and compare what should be identical.

   Seven runs per case:

   - [U]: uninstrumented.
   - Four full-checking runs crossing the metadata facility
     (shadow-space / hash-table) with the elimination pass (on / off).
   - Two store-only runs (shadow / hash).

   What must agree depends on what the generator promised:

   - The four full-checking runs must agree *exactly* — outcome string,
     program stdout, and live heap bytes at exit — with each other,
     always: neither the metadata facility nor check elimination may
     change observable behavior.  The two store-only runs likewise
     share one instrumented IR (the facility is a VM knob) and must
     agree with each other.
   - A [Safe] case additionally pins every instrumented run to the
     uninstrumented one: completeness says instrumentation never
     changes a correct program's behavior (paper section 4), and the
     heap-bytes comparison checks allocation conservation.
   - A [Trap_write] case must abort with a bounds violation in all six
     instrumented runs; a [Trap_read] only in the full-checking ones
     (store-only trades read checks away by design, section 3.5 — after
     the un-trapped read the store-only runs may legitimately diverge
     from [U], because they observe different stack leftovers). *)

module A = Cminus.Ast
module St = Interp.State
module Vm = Interp.Vm

type run_info = {
  tag : string;
  outcome : string;
  out : string;
  heap_live : int;
}

type finding = { cls : string; detail : string; runs : run_info list }

type verdict = Ok_ | Skip of string | Bug of finding

let full_configs : (string * Softbound.Config.options) list =
  let d = Softbound.Config.default in
  [
    ("F-shadow-elim", d);
    ("F-shadow-noelim", { d with eliminate_checks = false });
    ("F-hash-elim", { d with facility = Hash_table });
    ("F-hash-noelim", { d with facility = Hash_table; eliminate_checks = false });
  ]

let store_configs : (string * Softbound.Config.options) list =
  let s = Softbound.Config.store_only in
  [
    ("S-shadow", s);
    ("S-hash", { s with facility = Hash_table });
  ]

let info tag (r : Vm.result) =
  {
    tag;
    outcome = St.string_of_outcome r.Vm.outcome;
    out = r.Vm.stdout_text;
    heap_live = r.Vm.heap_live;
  }

let same a b = a.outcome = b.outcome && a.out = b.out && a.heap_live = b.heap_live

let is_bounds (r : Vm.result) =
  match r.Vm.outcome with St.Trapped (St.Bounds_violation _) -> true | _ -> false

let limited (r : Vm.result) =
  match r.Vm.outcome with
  | St.Trapped St.Step_limit | St.Trapped St.Out_of_memory -> true
  | _ -> false

let clip s = if String.length s <= 160 then s else String.sub s 0 160 ^ "..."

let describe i =
  Printf.sprintf "%s: %s | heap %d | out %S" i.tag i.outcome i.heap_live
    (clip i.out)

(* first pair in the group whose observations differ, if any *)
let disagreement = function
  | [] -> None
  | x :: rest ->
      List.find_opt (fun y -> not (same x y)) rest
      |> Option.map (fun y -> (x, y))

let frontend_error (f : unit -> 'a) : ('a, string) result =
  let at (l : Cminus.Lexer.loc) = Printf.sprintf "%d:%d" l.line l.col in
  try Ok (f ()) with
  | Cminus.Lexer.Lex_error (m, l) -> Error (Printf.sprintf "lex %s: %s" (at l) m)
  | Cminus.Parser.Parse_error (m, l) ->
      Error (Printf.sprintf "parse %s: %s" (at l) m)
  | Cminus.Typecheck.Error (m, l) ->
      Error (Printf.sprintf "typecheck %s: %s" (at l) m)
  | Cminus.Ctypes.Type_error m -> Error (Printf.sprintf "type: %s" m)
  | Sbir.Lower.Error m -> Error (Printf.sprintf "lower: %s" m)
  | Sbir.Ir.Invalid m -> Error (Printf.sprintf "ir: %s" m)

(* The fixed SoftBound-configuration half of the oracle, shared by
   {!check} and {!check_matrix}.  [extras] rides along only so its runs
   appear in the resource-limit skip and in every finding's [runs] —
   per-scheme classification happens in [check_matrix]. *)
let lockstep ~(expect : Gen.expect) ~u ~fulls ~stores ~extras : verdict =
  let all = ("U", u) :: (fulls @ stores @ extras) in
  let infos = List.map (fun (t, r) -> info t r) all in
  let ui = info "U" u in
  let fis = List.map (fun (t, r) -> info t r) fulls in
  let sis = List.map (fun (t, r) -> info t r) stores in
  let f0 = snd (List.hd fulls) in
  let s0 = snd (List.hd stores) in
  let bug cls detail = Bug { cls; detail; runs = infos } in
  if List.exists (fun (_, r) -> limited r) all then
    Skip
      (Printf.sprintf "resource limit: %s"
         (String.concat "; " (List.map describe infos)))
  else begin
    match (disagreement fis, disagreement sis) with
    | Some (a, b), _ ->
        bug "full-configs-disagree"
          (Printf.sprintf "%s / %s" (describe a) (describe b))
    | _, Some (a, b) ->
        bug "store-configs-disagree"
          (Printf.sprintf "%s / %s" (describe a) (describe b))
    | None, None -> (
        match expect with
        | Gen.Safe ->
            if not (same ui (List.hd fis)) then
              if is_bounds f0 then
                bug "false-positive"
                  (Printf.sprintf "%s / %s" (describe ui)
                     (describe (List.hd fis)))
              else
                bug "unsafe-divergence"
                  (Printf.sprintf "%s / %s" (describe ui)
                     (describe (List.hd fis)))
            else if not (same ui (List.hd sis)) then
              bug "store-divergence"
                (Printf.sprintf "%s / %s" (describe ui)
                   (describe (List.hd sis)))
            else Ok_
        | Gen.Trap_write ->
            if not (is_bounds f0) then
              bug "missed-detection"
                (Printf.sprintf "expected bounds trap on write; %s"
                   (describe (List.hd fis)))
            else if not (is_bounds s0) then
              bug "missed-detection-store"
                (Printf.sprintf "store-only must catch OOB writes; %s"
                   (describe (List.hd sis)))
            else Ok_
        | Gen.Trap_read ->
            if not (is_bounds f0) then
              bug "missed-detection"
                (Printf.sprintf "expected bounds trap on read; %s"
                   (describe (List.hd fis)))
            else Ok_)
  end

(** Print, compile, and cross-check one generated program. *)
let check ?(max_steps = 20_000_000) ?poll ~(expect : Gen.expect)
    (prog : A.program) : verdict =
  (* [poll] threads straight into every configuration's VM run, so a
     serve fuzz job's wall-clock deadline interrupts the oracle
     mid-campaign instead of waiting out the step budget *)
  let src = Cminus.Pretty.program_string prog in
  match frontend_error (fun () -> Softbound.compile src) with
  | Error msg -> Bug { cls = "frontend-reject"; detail = msg; runs = [] }
  | Ok m -> (
      let cfg = { St.default_config with St.max_steps; poll } in
      let attempt () =
        let u = Softbound.run_unprotected ~cfg m in
        let fulls =
          List.map
            (fun (tag, opts) -> (tag, Softbound.run_protected ~opts ~cfg m))
            full_configs
        in
        let stores =
          List.map
            (fun (tag, opts) -> (tag, Softbound.run_protected ~opts ~cfg m))
            store_configs
        in
        (u, fulls, stores)
      in
      match frontend_error attempt with
      | Error msg -> Bug { cls = "frontend-reject"; detail = msg; runs = [] }
      | Ok (u, fulls, stores) ->
          lockstep ~expect ~u ~fulls ~stores ~extras:[])

(** N-scheme lock-step oracle: {!check}'s seven configurations plus
    every registry scheme ({!Schemes.all}), with an explicit
    expected-divergence model.  Beyond {!check}'s requirements:

    - On a [Safe] case every scheme must neither trap (per-scheme
      ["false-positive:<name>"]) nor diverge from the uninstrumented
      run (["unsafe-divergence:<name>"]).
    - On an injected case with [~sub_object:false], schemes whose
      detection is landing-independent ([guaranteed_detect]: the
      transform schemes, whose per-pointer provenance bounds travel
      with the pointer) must trap — a silent run is
      ["missed-detection:<name>"].  Landing-dependent plugins may trap
      (documented coverage) or must match the uninstrumented run.
    - On a sub-object case ([~sub_object:true], an overflow that stays
      inside its allocation) every object-granularity scheme
      ([misses_sub_object]) must stay *silent* — a trap means the gap
      model, or the scheme, is wrong (["gap-model-violated:<name>"]) —
      and its run must match the uninstrumented one.  Only SoftBound's
      shrunken bounds catch these (Table 4).

    Any divergence outside this model is a real bug. *)
let check_matrix ?(max_steps = 20_000_000) ?poll ~(expect : Gen.expect)
    ~(sub_object : bool) (prog : A.program) : verdict =
  let src = Cminus.Pretty.program_string prog in
  match frontend_error (fun () -> Softbound.compile src) with
  | Error msg -> Bug { cls = "frontend-reject"; detail = msg; runs = [] }
  | Ok m -> (
      let cfg = { St.default_config with St.max_steps; poll } in
      let attempt () =
        let u = Softbound.run_unprotected ~cfg m in
        let run_opts (tag, opts) = (tag, Softbound.run_protected ~opts ~cfg m) in
        let fulls = List.map run_opts full_configs in
        let stores = List.map run_opts store_configs in
        let extras =
          List.map
            (fun (e : Schemes.entry) -> (e, Schemes.run ~cfg e m))
            (Schemes.all ())
        in
        (u, fulls, stores, extras)
      in
      match frontend_error attempt with
      | Error msg -> Bug { cls = "frontend-reject"; detail = msg; runs = [] }
      | Ok (u, fulls, stores, extras) ->
          let extra_runs =
            List.map (fun ((e : Schemes.entry), r) -> (e.Schemes.sname, r)) extras
          in
          match lockstep ~expect ~u ~fulls ~stores ~extras:extra_runs with
          | (Skip _ | Bug _) as v -> v
          | Ok_ ->
              let infos =
                List.map
                  (fun (t, r) -> info t r)
                  (("U", u) :: (fulls @ stores @ extra_runs))
              in
              let ui = info "U" u in
              let bug cls detail = Bug { cls; detail; runs = infos } in
              let rec go = function
                | [] -> Ok_
                | ((e : Schemes.entry), r) :: rest -> (
                    let name = e.Schemes.sname in
                    let i = info name r in
                    let det = Schemes.detected r in
                    match expect with
                    | Gen.Safe ->
                        if det then bug ("false-positive:" ^ name) (describe i)
                        else if not (same ui i) then
                          bug
                            ("unsafe-divergence:" ^ name)
                            (Printf.sprintf "%s / %s" (describe ui)
                               (describe i))
                        else go rest
                    | Gen.Trap_read | Gen.Trap_write ->
                        if sub_object && e.Schemes.misses_sub_object then
                          if det then
                            bug
                              ("gap-model-violated:" ^ name)
                              (Printf.sprintf
                                 "object-granularity scheme trapped on a \
                                  sub-object overflow; %s"
                                 (describe i))
                          else if not (same ui i) then
                            bug
                              ("unsafe-divergence:" ^ name)
                              (Printf.sprintf "%s / %s" (describe ui)
                                 (describe i))
                          else go rest
                        else if det then go rest
                        else if e.Schemes.guaranteed_detect then
                          bug
                            ("missed-detection:" ^ name)
                            (Printf.sprintf
                               "expected a trap on the injected OOB %s; %s"
                               (match expect with
                               | Gen.Trap_write -> "write"
                               | _ -> "read")
                               (describe i))
                        else if not (same ui i) then
                          bug
                            ("unsafe-divergence:" ^ name)
                            (Printf.sprintf "%s / %s" (describe ui)
                               (describe i))
                        else go rest)
              in
              go extras)
