(* Deterministic PRNG for the fuzzer: splitmix64.

   Every campaign is reproducible from [--seed]: program [k] of a
   campaign draws from a generator derived as [split (create seed) k],
   so a finding can be replayed in isolation without re-running the
   programs before it. *)

type t = { mutable s : int64 }

let create (seed : int) : t = { s = Int64.of_int seed }

let next (t : t) : int64 =
  let open Int64 in
  t.s <- add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** A fresh generator for stream [k] of this one (does not advance [t]).
    The stream index is spread across the word before mixing; deriving
    it additively would make nearby root seeds produce index-shifted
    copies of the same campaign. *)
let split (t : t) (k : int) : t =
  let d =
    { s = Int64.logxor t.s (Int64.mul (Int64.of_int k) 0xD1342543DE82EF95L) }
  in
  { s = next d }

(** 62 uniform non-negative bits. *)
let bits (t : t) : int = Int64.to_int (Int64.shift_right_logical (next t) 2)

(** Uniform in [0, n). *)
let int (t : t) (n : int) : int = if n <= 0 then 0 else bits t mod n

let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

(** True with probability [pct]%. *)
let chance (t : t) ~(pct : int) : bool = int t 100 < pct

let pick (t : t) (l : 'a list) : 'a = List.nth l (int t (List.length l))

(** Pick from [(weight, value)] pairs with probability proportional to
    weight. *)
let weighted (t : t) (xs : (int * 'a) list) : 'a =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 xs in
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | (w, x) :: rest -> if k < w then x else go (k - w) rest
  in
  go k xs

(** Uniform in [lo, hi] inclusive. *)
let range (t : t) (lo : int) (hi : int) : int = lo + int t (hi - lo + 1)
