(* IR optimizer: constant folding, local copy/constant propagation, and
   global dead-code elimination.

   The paper instruments code *after* LLVM's full optimization pipeline
   (section 6.1): register promotion and cleanup have already removed
   most redundant memory traffic, so SoftBound's overhead is measured
   against a tight baseline.  The inliner and lowering in this repository
   leave the same kind of residue LLVM's -O2 would fold away — parameter
   move chains, scaled-index multiplies by constants, branches on
   constants — and this pass plays the cleanup role.

   Scope is deliberately conservative:
   - constant folding evaluates Bin/Cmp/Cast over immediates (using the
     interpreter's own wrap-around rules via {!Ir.norm_int});
   - copy/constant propagation is per-block: a binding [dst -> src]
     created by [Mov] is usable until either register is redefined, and
     every binding dies at block end (registers are mutable and non-SSA);
   - DCE removes pure register-writing instructions (Mov, Bin, Cmp,
     Cast, Gep, Slotaddr) whose destination is never read anywhere in
     the function; loads are never removed (they can fault, and they are
     the quantity Figure 1 measures). *)

open Ir

(* ------------------------------------------------------------------ *)
(* Constant folding                                                     *)
(* ------------------------------------------------------------------ *)

let fold_bin (op : binop) (t : ity) (x : int) (y : int) : int option =
  if ity_is_float t then None
  else
    let signed = ity_signed t in
    let r =
      match op with
      | Add -> Some (x + y)
      | Sub -> Some (x - y)
      | Mul -> Some (x * y)
      | Div ->
          if y = 0 then None
          else if signed then Some (x / y)
          else Some (unsigned_view t x / unsigned_view t y)
      | Rem ->
          if y = 0 then None
          else if signed then Some (x mod y)
          else Some (unsigned_view t x mod unsigned_view t y)
      | And -> Some (x land y)
      | Or -> Some (x lor y)
      | Xor -> Some (x lxor y)
      | Shl -> Some (x lsl (y land 63))
      | Shr ->
          if signed then Some (x asr (y land 63))
          else Some (unsigned_view t x lsr (y land 63))
    in
    Option.map (norm_int t) r

let fold_cmp (op : cmpop) (t : ity) (x : int) (y : int) : int option =
  if ity_is_float t then None
  else begin
    let c =
      if ity_signed t then compare x y
      else compare (unsigned_view t x) (unsigned_view t y)
    in
    let r =
      match op with
      | Ceq -> c = 0
      | Cne -> c <> 0
      | Clt -> c < 0
      | Cle -> c <= 0
      | Cgt -> c > 0
      | Cge -> c >= 0
    in
    Some (if r then 1 else 0)
  end

let fold_cast (to_ : ity) (from_ : ity) (v : int) : int option =
  match (ity_is_float to_, ity_is_float from_) with
  | false, false -> Some (norm_int to_ v)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Local copy / constant propagation                                    *)
(* ------------------------------------------------------------------ *)

(** Per-block environment: register -> known operand (an immediate, a
    global address, or another register). *)
type penv = (reg, operand) Hashtbl.t

let kill (env : penv) (r : reg) =
  Hashtbl.remove env r;
  (* drop bindings whose *source* is r *)
  let stale =
    Hashtbl.fold
      (fun k v acc -> match v with Reg s when s = r -> k :: acc | _ -> acc)
      env []
  in
  List.iter (Hashtbl.remove env) stale

let subst (env : penv) (o : operand) : operand =
  match o with
  | Reg r -> ( match Hashtbl.find_opt env r with Some o' -> o' | None -> o)
  | o -> o

let dst_of = function
  | Mov (r, _, _)
  | Bin (r, _, _, _, _)
  | Cmp (r, _, _, _, _)
  | Cast (r, _, _, _)
  | Load (r, _, _)
  | Gep (r, _, _, _)
  | Slotaddr (r, _) ->
      [ r ]
  | MetaLoad (r1, r2, _, _) -> [ r1; r2 ]
  | Call { rets; _ } -> rets
  | Store _ | SetBoundMark _ | Check _ | CheckFptr _ | MetaStore _
  | CheckSpan _ ->
      []

let propagate_block (b : block) : block =
  let env : penv = Hashtbl.create 16 in
  let insts =
    List.map
      (fun inst ->
        (* substitute known values into operands — except a call's callee:
           devirtualizing an indirect call would erase the function-pointer
           check SoftBound inserts there (and let the inliner swallow the
           body), changing the protection surface *)
        let inst =
          match inst with
          | Call c -> Call { c with args = List.map (subst env) c.args }
          | i -> map_inst_operands (subst env) i
        in
        (* fold what became constant *)
        let inst =
          match inst with
          | Bin (r, op, t, ImmI x, ImmI y) -> (
              match fold_bin op t x y with
              | Some v -> Mov (r, t, ImmI v)
              | None -> inst)
          | Cmp (r, op, t, ImmI x, ImmI y) -> (
              match fold_cmp op t x y with
              | Some v -> Mov (r, I32, ImmI v)
              | None -> inst)
          | Cast (r, to_, from_, ImmI v) -> (
              match fold_cast to_ from_ v with
              | Some v -> Mov (r, to_, ImmI v)
              | None -> inst)
          | Gep (r, base, ImmI 0, None) ->
              (* no-op pointer arithmetic: a plain copy (the SoftBound
                 pass treats Mov and unshrunk Gep identically, so this
                 is metadata-neutral) *)
              Mov (r, P, base)
          | Bin (r, Add, t, x, ImmI 0) when not (ity_is_float t) ->
              Mov (r, t, x)
          | Bin (r, Mul, t, x, ImmI 1) when not (ity_is_float t) ->
              Mov (r, t, x)
          | i -> i
        in
        (* update the environment *)
        List.iter (kill env) (dst_of inst);
        (match inst with
        | Mov (r, _, ((ImmI _ | ImmF _ | Glob _ | GlobEnd _ | Func _) as v))
          ->
            Hashtbl.replace env r v
        | Mov (r, _, (Reg s as v)) when s <> r -> Hashtbl.replace env r v
        | _ -> ());
        inst)
      b.insts
  in
  let term = map_term_operands (subst env) b.term in
  (* fold constant branches *)
  let term =
    match term with
    | TBr (ImmI c, t1, t2) -> TJmp (if c <> 0 then t1 else t2)
    | TSwitch (ImmI v, cases, d) -> (
        match List.assoc_opt v cases with
        | Some t -> TJmp t
        | None -> TJmp d)
    | t -> t
  in
  { insts; term }

(* ------------------------------------------------------------------ *)
(* Global dead-code elimination                                         *)
(* ------------------------------------------------------------------ *)

(** Is this instruction removable when its destinations are dead?  Loads
    are kept (they can fault; they are also the Figure 1 metric). *)
let pure = function
  | Mov _ | Bin _ | Cmp _ | Cast _ | Gep _ | Slotaddr _ -> true
  | _ -> false

let dce (f : func) : func =
  let changed = ref true in
  let blocks = ref f.fblocks in
  while !changed do
    changed := false;
    let used = Array.make (max 1 f.fnregs) false in
    let use = function
      | Reg r -> if r < Array.length used then used.(r) <- true
      | _ -> ()
    in
    Array.iter
      (fun b ->
        List.iter
          (fun inst ->
            (* only *operand* occurrences count as uses *)
            match inst with
            | Mov (_, _, o) | Cast (_, _, _, o) | Load (_, _, o) ->
                use o
            | Bin (_, _, _, a, b) | Cmp (_, _, _, a, b) -> (use a; use b)
            | Gep (_, a, b, _) -> (use a; use b)
            | Slotaddr _ -> ()
            | Store (_, a, v) -> (use a; use v)
            | Call { callee; args; _ } ->
                use callee;
                List.iter use args
            | SetBoundMark (a, n) -> (use a; use n)
            | Check (p, b, e, _, _) -> (use p; use b; use e)
            | CheckFptr (p, b, e, _, _) -> (use p; use b; use e)
            | MetaLoad (_, _, a, _) -> use a
            | MetaStore (a, b, e, _) -> (use a; use b; use e)
            | CheckSpan { sp_first; sp_count; sp_base; sp_bound; _ } ->
                use sp_first; use sp_count; use sp_base; use sp_bound)
          b.insts;
        ignore
          (map_term_operands (fun o -> use o; o) b.term))
      !blocks;
    (* parameters and va registers are live by convention *)
    List.iter (fun (r, _) -> if r < Array.length used then used.(r) <- true)
      f.fparams;
    (match f.fva_regs with
    | Some (a, b) ->
        if a < Array.length used then used.(a) <- true;
        if b < Array.length used then used.(b) <- true
    | None -> ());
    blocks :=
      Array.map
        (fun b ->
          let insts =
            List.filter
              (fun inst ->
                let dead =
                  pure inst
                  && List.for_all
                       (fun r -> r >= Array.length used || not used.(r))
                       (dst_of inst)
                  && dst_of inst <> []
                in
                if dead then changed := true;
                not dead)
              b.insts
          in
          { b with insts })
        !blocks
  done;
  { f with fblocks = !blocks }

(* ------------------------------------------------------------------ *)
(* Unreachable-block elimination                                        *)
(* ------------------------------------------------------------------ *)

let targets_of = function
  | TRet _ | TUnreachable -> []
  | TJmp t -> [ t ]
  | TBr (_, a, b) -> [ a; b ]
  | TSwitch (_, cases, d) -> d :: List.map snd cases

(** Drop blocks unreachable from the entry (constant-branch folding
    creates them) and renumber the survivors. *)
let drop_unreachable (f : func) : func =
  let n = Array.length f.fblocks in
  if n = 0 then f
  else begin
    let reachable = Array.make n false in
    let rec visit i =
      if i >= 0 && i < n && not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit (targets_of f.fblocks.(i).term)
      end
    in
    visit 0;
    if Array.for_all Fun.id reachable then f
    else begin
      let remap = Array.make n (-1) in
      let next = ref 0 in
      Array.iteri
        (fun i r ->
          if r then begin
            remap.(i) <- !next;
            incr next
          end)
        reachable;
      let rt t = remap.(t) in
      let fblocks =
        Array.of_list
          (List.filteri
             (fun i _ -> reachable.(i))
             (Array.to_list f.fblocks))
        |> Array.map (fun b ->
               let term =
                 match b.term with
                 | TJmp t -> TJmp (rt t)
                 | TBr (c, a, b') -> TBr (c, rt a, rt b')
                 | TSwitch (v, cases, d) ->
                     TSwitch (v, List.map (fun (c, t) -> (c, rt t)) cases, rt d)
                 | t -> t
               in
               { b with term })
      in
      { f with fblocks }
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let optimize_func (f : func) : func =
  let f = { f with fblocks = Array.map propagate_block f.fblocks } in
  let f = drop_unreachable f in
  dce f

let run (m : modul) : modul =
  let m' = map_funcs m optimize_func in
  validate m';
  m'
