(* The intermediate representation.

   Modelled on the LLVM IR the SoftBound prototype instruments: a typed,
   load/store register machine with explicit address arithmetic ([Gep]) so
   that pointer provenance is visible to the transformation, an unbounded
   supply of virtual registers (so register-promoted scalars never touch
   simulated memory), and multi-value returns (so the paper's
   "three-element structure by value" for pointer-returning functions is
   direct).

   The SoftBound pass is IR-to-IR: it inserts [Check], [MetaLoad] and
   [MetaStore] instructions and rewrites calls; the uninstrumented program
   contains none of those, so the overhead measured by the interpreter is
   exactly the executed extra instructions plus their cache traffic. *)

(** Low-level value types.  Signedness is carried in the type, as the
    interpreter needs it for division, shifts, comparisons and widening. *)
type ity = I8 | U8 | I16 | U16 | I32 | U32 | I64 | U64 | F32 | F64 | P
[@@deriving show { with_path = false }, eq]

let ity_size = function
  | I8 | U8 -> 1
  | I16 | U16 -> 2
  | I32 | U32 -> 4
  | I64 | U64 -> 8
  | F32 -> 4
  | F64 -> 8
  | P -> 8

let ity_signed = function
  | I8 | I16 | I32 | I64 -> true
  | _ -> false

let ity_is_float = function F32 | F64 -> true | _ -> false

(** Normalize an OCaml int to the value range of an integer [ity]
    (two's-complement wrap-around).  8-byte types are represented with
    OCaml's 63-bit native int: simulated addresses and benchmark values
    stay far below 2^62, and the formal-semantics library covers the
    boundary cases abstractly. *)
let norm_int (t : ity) (v : int) : int =
  match t with
  | I8 -> (v land 0xff) - (if v land 0x80 <> 0 then 0x100 else 0)
  | U8 -> v land 0xff
  | I16 -> (v land 0xffff) - (if v land 0x8000 <> 0 then 0x10000 else 0)
  | U16 -> v land 0xffff
  | I32 ->
      (v land 0xffffffff) - (if v land 0x80000000 <> 0 then 0x100000000 else 0)
  | U32 -> v land 0xffffffff
  | I64 | U64 | P -> v
  | F32 | F64 -> invalid_arg "norm_int: float type"

(** Unsigned view of a normalized value, for unsigned compare/div/shr.
    For 8-byte types this is the identity (63-bit approximation). *)
let unsigned_view (t : ity) (v : int) : int =
  match t with
  | I8 | U8 -> v land 0xff
  | I16 | U16 -> v land 0xffff
  | I32 | U32 -> v land 0xffffffff
  | _ -> v

type reg = int [@@deriving show, eq]

type operand =
  | Reg of reg
  | ImmI of int  (** integer or pointer immediate *)
  | ImmF of float
  | Glob of string  (** runtime address of a global *)
  | GlobEnd of string  (** one-past-the-end address of a global *)
  | Func of string  (** code address of a function *)
[@@deriving show { with_path = false }, eq]

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
[@@deriving show { with_path = false }, eq]

type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge
[@@deriving show { with_path = false }, eq]

(** Call signature as seen at the call site. *)
type csig = {
  cargs : ity list;
  crets : ity list;
  cvariadic : bool;
}
[@@deriving show { with_path = false }, eq]

type inst =
  | Mov of reg * ity * operand
  | Bin of reg * binop * ity * operand * operand
  | Cmp of reg * cmpop * ity * operand * operand  (** result: I32 0/1 *)
  | Cast of reg * ity * ity * operand  (** dst ty, src ty *)
  | Load of reg * ity * operand  (** [Load (dst, ty, addr)] *)
  | Store of ity * operand * operand  (** [Store (ty, addr, value)] *)
  | Gep of reg * operand * operand * int option
      (** [Gep (dst, base, byte_off, shrink)]: pointer arithmetic.  The
          result inherits the metadata of [base] — unless [shrink] is
          [Some size], which marks creation of a pointer to a sub-object
          of [size] bytes (struct field selection); SoftBound then narrows
          the bounds to the field (paper section 3.1). *)
  | Slotaddr of reg * int  (** address of a frame slot *)
  | Call of {
      rets : reg list;
      callee : operand;
      sg : csig;
      hints : string list;
          (** call-site facts recorded by lowering for later passes; e.g.
              ["memcpy-noptr"] marks a memcpy whose operands' static types
              contain no pointers, enabling the paper's metadata-copy
              heuristic (section 5.2, "Memcpy") *)
      args : operand list;
          (** Calls to variadic functions follow the convention
              [fixed args..; va_ptr; va_count]: the caller spills promoted
              varargs (8 bytes each) into a frame slot with ordinary
              [Store] instructions — so pointer varargs get their metadata
              propagated by the ordinary table-update instrumentation —
              and passes that slot's address plus the slot count.  This
              realizes the paper's extra vararg parameters (section 5.2). *)
    }
  | SetBoundMark of operand * operand
      (** [(addr_of_pointer, size)] — no-op until the SoftBound pass
          rewrites it into a metadata update *)
  (* --- instructions inserted by the SoftBound transformation ---

     Each carries a trailing *site id*: a stable, per-module identifier
     assigned in emission order by the transformation, before any
     elimination runs.  Site ids key the observability layer's per-site
     counters and survive hoisting/CSE unchanged; id 0 is reserved for
     runtime-originated operations (wrapper internals, allocator
     bookkeeping). *)
  | Check of operand * operand * operand * int * int
      (** [Check (ptr, base, bound, access_size, site)]: abort unless
          [base <= ptr && ptr + size <= bound] *)
  | CheckFptr of operand * operand * operand * int option * int
      (** function-pointer call check: require [base = bound = ptr]
          (paper section 5.2, "Function pointers").  The optional hash is
          the paper's *future-work* extension: "encode the
          pointer/non-pointer signature of the function's arguments,
          allowing a dynamic check" — when present, the callee's
          signature kinds must hash to the same value. *)
  | MetaLoad of reg * reg * operand * int
      (** [(base_dst, bound_dst, addr, site)]: disjoint-metadata-space
          lookup for the pointer stored at [addr] *)
  | MetaStore of operand * operand * operand * int
      (** [(addr, base, bound, site)]: metadata-space update *)
  | CheckSpan of span_check
      (** Widened bounds check produced by the Elim pass (never by the
          transformation itself): one check covering a whole arithmetic
          progression of addresses.  Passes iff [sp_count <= 0] or every
          address [sp_first + k * sp_stride] for [k] in [0, sp_count)
          satisfies [sp_base <= a && a + sp_width <= sp_bound].  On
          failure it traps with the first failing element (in [k] order)
          so the report is identical to the unwidened per-iteration
          check's. *)
[@@deriving show { with_path = false }, eq]

and span_check = {
  sp_first : operand;  (** address of element 0 *)
  sp_count : operand;  (** number of elements; <= 0 is a vacuous pass *)
  sp_stride : int;  (** byte step between elements (may be negative) *)
  sp_width : int;  (** access size of each element *)
  sp_base : operand;
  sp_bound : operand;
  sp_site : int;
      (** site of the original [Check] (loop widening) or of the first
          coalesced check *)
  sp_sites : int array;
      (** non-empty only for in-block coalesced checks: the original
          site of element [k] is [sp_sites.(k)], so trap attribution
          still names the per-access site *)
}
[@@deriving show { with_path = false }, eq]

type terminator =
  | TRet of operand list
  | TJmp of int
  | TBr of operand * int * int  (** non-zero -> first target *)
  | TSwitch of operand * (int * int) list * int
      (** (value, target) cases, default *)
  | TUnreachable
[@@deriving show { with_path = false }, eq]

type block = { insts : inst list; term : terminator }
[@@deriving show { with_path = false }]

(** A stack-frame slot (a local that must live in simulated memory:
    address-taken scalars, arrays, structs, call-site vararg save areas). *)
type slot = {
  sl_name : string;
  sl_offset : int;  (** byte offset from the frame's slot area base *)
  sl_size : int;
  sl_ptr_offsets : int list;
      (** offsets (within the slot) that hold pointer values — consumed by
          the transformation's free-time metadata clearing (section 5.2) *)
}
[@@deriving show { with_path = false }]

type func = {
  fname : string;
  fparams : (reg * ity) list;
  frets : ity list;
  fvariadic : bool;
  fva_regs : (reg * reg) option;
      (** (va_ptr, va_count) hidden parameter registers of a variadic
          function *)
  fslots : slot array;
  fframe_size : int;
  fblocks : block array;
  fnregs : int;
}

(** Scalar initializer element of a global, at a byte offset. *)
type gval =
  | GInt of int * int  (** value, byte width *)
  | GF32 of float
  | GF64 of float
  | GAddr of string * int  (** address of global + byte offset *)
  | GFuncAddr of string
[@@deriving show { with_path = false }, eq]

type global = {
  gname : string;
  gsize : int;
  galign : int;
  ginit : (int * gval) list;
  gptr_offsets : int list;
      (** byte offsets holding pointers: transformed code installs their
          metadata in [__sb_global_init] (paper section 5.2) *)
}

type modul = {
  mfuncs : (string, func) Hashtbl.t;
  mglobals : global list;
  mfunc_order : string list;  (** definition order, for stable addresses *)
  mexterns : (string * csig) list;
}

let find_func m name = Hashtbl.find_opt m.mfuncs name

let iter_funcs m f =
  List.iter (fun n -> f (Hashtbl.find m.mfuncs n)) m.mfunc_order

(** Map every function of a module (used by transformations). *)
let map_funcs m f =
  let mfuncs = Hashtbl.create (Hashtbl.length m.mfuncs) in
  let mfunc_order =
    List.map
      (fun n ->
        let fn = f (Hashtbl.find m.mfuncs n) in
        Hashtbl.replace mfuncs fn.fname fn;
        fn.fname)
      m.mfunc_order
  in
  { m with mfuncs; mfunc_order }

(** Kind-class hash of a call signature, for the dynamic function-pointer
    signature check: pointers, floats and integers are distinguished (the
    property the paper cares about is pointer vs non-pointer, so that a
    mismatched call cannot manufacture improper base/bound values). *)
let sig_hash (sg : csig) : int =
  let kind = function P -> 2 | F32 | F64 -> 1 | _ -> 0 in
  let fold acc l = List.fold_left (fun a t -> (a * 31) + kind t + 1) acc l in
  fold (fold (if sg.cvariadic then 7 else 3) sg.cargs) sg.crets

(** Map every operand of an instruction. *)
let map_inst_operands (f : operand -> operand) (inst : inst) : inst =
  match inst with
  | Mov (r, t, o) -> Mov (r, t, f o)
  | Bin (r, op, t, a, b) -> Bin (r, op, t, f a, f b)
  | Cmp (r, op, t, a, b) -> Cmp (r, op, t, f a, f b)
  | Cast (r, to_, from_, o) -> Cast (r, to_, from_, f o)
  | Load (r, t, a) -> Load (r, t, f a)
  | Store (t, a, v) -> Store (t, f a, f v)
  | Gep (r, b, o, s) -> Gep (r, f b, f o, s)
  | Slotaddr _ -> inst
  | Call c -> Call { c with callee = f c.callee; args = List.map f c.args }
  | SetBoundMark (a, n) -> SetBoundMark (f a, f n)
  | Check (p, b, e, s, site) -> Check (f p, f b, f e, s, site)
  | CheckFptr (p, b, e, h, site) -> CheckFptr (f p, f b, f e, h, site)
  | MetaLoad (r1, r2, a, site) -> MetaLoad (r1, r2, f a, site)
  | MetaStore (a, b, e, site) -> MetaStore (f a, f b, f e, site)
  | CheckSpan sp ->
      CheckSpan
        {
          sp with
          sp_first = f sp.sp_first;
          sp_count = f sp.sp_count;
          sp_base = f sp.sp_base;
          sp_bound = f sp.sp_bound;
        }

let map_term_operands (f : operand -> operand) (t : terminator) : terminator =
  match t with
  | TRet ops -> TRet (List.map f ops)
  | TBr (c, a, b) -> TBr (f c, a, b)
  | TSwitch (v, cases, d) -> TSwitch (f v, cases, d)
  | (TJmp _ | TUnreachable) as t -> t

(* ------------------------------------------------------------------ *)
(* Well-formedness validation                                           *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

(** Check structural invariants: branch targets in range, registers
    defined before use is NOT required (registers are mutable), but
    register indexes and slot ids must be in range. *)
let validate_func (f : func) =
  let nblocks = Array.length f.fblocks in
  let check_target t =
    if t < 0 || t >= nblocks then
      raise (Invalid (Printf.sprintf "%s: branch target %d out of range"
                        f.fname t))
  in
  let check_reg r =
    if r < 0 || r >= f.fnregs then
      raise (Invalid (Printf.sprintf "%s: register %d out of range" f.fname r))
  in
  let check_op = function Reg r -> check_reg r | _ -> () in
  Array.iter
    (fun b ->
      List.iter
        (fun inst ->
          match inst with
          | Mov (r, _, o) | Cast (r, _, _, o) | Load (r, _, o) ->
              check_reg r;
              check_op o
          | Bin (r, _, _, a, b) | Cmp (r, _, _, a, b) ->
              check_reg r;
              check_op a;
              check_op b
          | Gep (r, a, b, _) ->
              check_reg r;
              check_op a;
              check_op b
          | Slotaddr (r, s) ->
              check_reg r;
              if s < 0 || s >= Array.length f.fslots then
                raise (Invalid (Printf.sprintf "%s: slot %d out of range"
                                  f.fname s))
          | Store (_, a, v) ->
              check_op a;
              check_op v
          | Call { rets; callee; args; _ } ->
              List.iter check_reg rets;
              check_op callee;
              List.iter check_op args
          | SetBoundMark (a, b) ->
              check_op a;
              check_op b
          | Check (p, b_, e, _, _) ->
              check_op p;
              check_op b_;
              check_op e
          | CheckFptr (p, b_, e, _, _) ->
              check_op p;
              check_op b_;
              check_op e
          | MetaLoad (r1, r2, a, _) ->
              check_reg r1;
              check_reg r2;
              check_op a
          | MetaStore (a, b_, e, _) ->
              check_op a;
              check_op b_;
              check_op e
          | CheckSpan { sp_first; sp_count; sp_base; sp_bound; _ } ->
              check_op sp_first;
              check_op sp_count;
              check_op sp_base;
              check_op sp_bound)
        b.insts;
      match b.term with
      | TRet ops -> List.iter check_op ops
      | TJmp t -> check_target t
      | TBr (c, t1, t2) ->
          check_op c;
          check_target t1;
          check_target t2
      | TSwitch (v, cases, d) ->
          check_op v;
          List.iter (fun (_, t) -> check_target t) cases;
          check_target d
      | TUnreachable -> ())
    f.fblocks

let validate m = iter_funcs m validate_func
