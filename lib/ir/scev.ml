(* SCEV-lite: affine scalar evolution over natural loops.

   The full scalar-evolution machinery of a production compiler reduces,
   for the loops our structured lowering emits, to a small core: find
   the loop's single induction variable from its header guard, classify
   registers as affine recurrences [{base, +stride}] in that variable,
   and bound the trip count from the guard.  That core is exactly what
   the check-widening sub-pass of [Elim] needs: a per-iteration bounds
   check on an address that is affine in the induction variable can be
   replaced by one preheader check over the whole arithmetic
   progression, provided the trip count is exact and the progression's
   first element and length can be materialized at loop entry.

   The analysis is deliberately conservative.  It recognizes loops of
   the shape the lowering produces —

     preheader:  iv <- init; ...
     header:     c <- cmp (lt|le) iv limit;  br c, body, exit
     body..:     ...;  iv <- iv + s  (s >= 1, executed once per
     latch:      jmp header           iteration, dominating every latch)

   — and refuses everything else: down-counting loops, multi-exit
   loops (early [break]), loops containing calls (a callee can write
   output or exit, so checking later iterations' addresses early would
   be observable), register-divisor divisions (which can trap between
   two widened iterations), and guards whose arithmetic could wrap
   (unsigned 32-bit induction variables are accepted only in the
   stride-1 strict-less-than form; signed 32-bit arithmetic relies on
   the C signed-overflow-is-UB assumption, documented in DESIGN.md).

   Addresses are classified by a positional expansion: expanding
   register [r] as read at position [pos] follows in-loop single
   definitions through value-preserving arithmetic down to loop
   invariants and the induction variable, yielding a static byte stride
   per iteration and the definition chain to clone — evaluated in the
   preheader, where the induction variable still holds its initial
   value, the cloned chain computes the progression's first address. *)

open Ir

type pos = int * int
(** (block id, instruction index) *)

type t = {
  sc_dom : Dom.t;
  sc_loop : Dom.loop;
  sc_iv : reg;  (** the induction variable *)
  sc_ty : ity;  (** type of the header guard comparison *)
  sc_stride : int;  (** IV units added per iteration, >= 1 *)
  sc_cle : bool;  (** guard is [iv <= limit] rather than [iv < limit] *)
  sc_limit : operand;  (** loop-invariant guard limit *)
  sc_inc_pos : pos;  (** position of the write to [sc_iv] *)
  sc_defs : (reg, pos * inst) Hashtbl.t;  (** single in-loop definitions *)
  sc_multi : (reg, unit) Hashtbl.t;  (** regs defined more than once *)
}

type affine = {
  af_stride : int;  (** byte delta per iteration, >= 1 *)
  af_chain : (pos * inst) list;
      (** in-loop definition chain of the address, in dependency order;
          cloned into the preheader it computes the first element *)
}

(* ------------------------------------------------------------------ *)
(* Loop scan                                                            *)
(* ------------------------------------------------------------------ *)

let defs_of (i : inst) : reg list =
  match i with
  | Mov (r, _, _) | Bin (r, _, _, _, _) | Cmp (r, _, _, _, _)
  | Cast (r, _, _, _) | Load (r, _, _) | Gep (r, _, _, _) | Slotaddr (r, _) ->
      [ r ]
  | Call { rets; _ } -> rets
  | MetaLoad (r1, r2, _, _) -> [ r1; r2 ]
  | Store _ | SetBoundMark _ | Check _ | CheckFptr _ | MetaStore _
  | CheckSpan _ ->
      []

(** Strictly-before on every execution: same block earlier, or the
    defining block strictly dominates the reading block.  (Transitive,
    which is what the chain-ordering argument in [affine_addr] needs.) *)
let precedes (d : Dom.t) ((b, i) : pos) ((b', i') : pos) : bool =
  if b = b' then i < i' else Dom.dominates d b b'

let dcount (t : t) (r : reg) : int =
  if Hashtbl.mem t.sc_multi r then 2
  else if Hashtbl.mem t.sc_defs r then 1
  else 0

(** Operand whose value cannot change while the loop runs. *)
let invariant_op (t : t) (op : operand) : bool =
  match op with Reg r -> dcount t r = 0 | _ -> true

(* ------------------------------------------------------------------ *)
(* Guard and induction-variable recognition                             *)
(* ------------------------------------------------------------------ *)

let negate_cmp = function
  | Ceq -> Cne | Cne -> Ceq
  | Clt -> Cge | Cge -> Clt
  | Cle -> Cgt | Cgt -> Cle

(** Wrap-safety of the guard arithmetic: 63-bit-native wide types never
    wrap in practice; I32 relies on signed-overflow UB; U32 is safe only
    when the variable steps by 1 up to a strict bound. *)
let guard_ty_ok ty ~stride ~cle =
  match ty with
  | I64 | U64 | P | I32 -> true
  | U32 -> stride = 1 && not cle
  | _ -> false

(** Recognize [iv]'s in-loop update and return its stride and the
    position of the write to [iv].  Two shapes, matching the lowering:
    a direct [iv <- iv + c], or the two-instruction [tmp <- iv + c;
    iv <- tmp] / [tmp <- gep iv, c; iv <- tmp] with both halves in the
    same block. *)
let recognize_update (t0 : (reg, pos * inst) Hashtbl.t)
    (multi : (reg, unit) Hashtbl.t) (iv : reg) : (int * pos) option =
  if Hashtbl.mem multi iv then None
  else
    match Hashtbl.find_opt t0 iv with
    | Some (pos, Bin (x, Add, _, Reg x', ImmI c)) when x = iv && x' = iv ->
        if c >= 1 then Some (c, pos) else None
    | Some ((mb, mi), Mov (x, _, Reg y)) when x = iv -> (
        if Hashtbl.mem multi y then None
        else
          match Hashtbl.find_opt t0 y with
          | Some (((db, di) as _dpos), Bin (y', Add, _, Reg x', ImmI c))
            when y' = y && x' = iv && db = mb && di < mi ->
              if c >= 1 then Some (c, (mb, mi)) else None
          | Some (((db, di) as _dpos), Gep (y', Reg x', ImmI c, None))
            when y' = y && x' = iv && db = mb && di < mi ->
              if c >= 1 then Some (c, (mb, mi)) else None
          | _ -> None)
    | _ -> None

(** Analyze one natural loop of [f].  [Some t] means the loop has the
    canonical counted shape and is free of the constructs that make
    early span checking observable (calls, register-divisor division,
    in-loop returns, extra exits); [None] refuses. *)
let analyze (f : func) (dom : Dom.t) (loop : Dom.loop) : t option =
  let ( let* ) = Option.bind in
  let body = loop.Dom.body in
  (* Single-exit through the header only: an early [break] adds an exit
     block and is refused here. *)
  let* () = if loop.Dom.exits = [ loop.Dom.header ] then Some () else None in
  (* Scan the body once: definition table, and the refusal triggers. *)
  let defs = Hashtbl.create 32 in
  let multi = Hashtbl.create 8 in
  let clean = ref true in
  Array.iteri
    (fun b blk ->
      if body.(b) && Dom.reachable dom b then begin
        (match blk.term with
        | TRet _ | TUnreachable -> clean := false
        | _ -> ());
        List.iteri
          (fun i inst ->
            (match inst with
            | Call _ -> clean := false
            | Bin (_, (Div | Rem), _, _, d) ->
                (* a zero register divisor would trap between widened
                   iterations; immediate divisors are checked statically *)
                (match d with ImmI c when c <> 0 -> () | _ -> clean := false)
            | _ -> ());
            List.iter
              (fun r ->
                if Hashtbl.mem defs r then Hashtbl.replace multi r ()
                else Hashtbl.replace defs r ((b, i), inst))
              (defs_of inst))
          blk.insts
      end)
    f.fblocks;
  let* () = if !clean then Some () else None in
  (* Header guard: a freshly computed comparison driving the sole
     conditional exit. *)
  let header = f.fblocks.(loop.Dom.header) in
  let* c, t1, t2 =
    match header.term with
    | TBr (Reg c, t1, t2) -> Some (c, t1, t2)
    | _ -> None
  in
  let* cmp, ty, a, b =
    match Hashtbl.find_opt defs c with
    | Some (((cb, _) as _cpos), Cmp (_, cmp, ty, a, b))
      when cb = loop.Dom.header && not (Hashtbl.mem multi c) ->
        Some (cmp, ty, a, b)
    | _ -> None
  in
  (* Normalize to continue-on-true. *)
  let* cmp =
    match (body.(t1), body.(t2)) with
    | true, false -> Some cmp
    | false, true -> Some (negate_cmp cmp)
    | _ -> None
  in
  (* Normalize to [iv (lt|le) limit] with the variable on the left. *)
  let varies = function Reg r -> Hashtbl.mem defs r | _ -> false in
  let* cle, iv_side, limit =
    match cmp with
    | Clt when varies a && not (varies b) -> Some (false, a, b)
    | Cle when varies a && not (varies b) -> Some (true, a, b)
    | Cgt when varies b && not (varies a) -> Some (false, b, a)
    | Cge when varies b && not (varies a) -> Some (true, b, a)
    | _ -> None
  in
  let* iv = match iv_side with Reg r -> Some r | _ -> None in
  let* stride, inc_pos = recognize_update defs multi iv in
  let* () = if guard_ty_ok ty ~stride ~cle then Some () else None in
  (* The update must run exactly once per iteration: its block has to
     dominate every latch (and, the loop being innermost when the
     widener uses this, a latch-dominating block runs once per pass). *)
  let* () =
    if List.for_all (fun l -> Dom.dominates dom (fst inc_pos) l)
         loop.Dom.latches
    then Some ()
    else None
  in
  Some
    {
      sc_dom = dom;
      sc_loop = loop;
      sc_iv = iv;
      sc_ty = ty;
      sc_stride = stride;
      sc_cle = cle;
      sc_limit = limit;
      sc_inc_pos = inc_pos;
      sc_defs = defs;
      sc_multi = multi;
    }

(* ------------------------------------------------------------------ *)
(* Positional affine expansion                                          *)
(* ------------------------------------------------------------------ *)

(* Coefficient tracking: expanding an operand yields its derivative
   with respect to the induction variable (in IV units) plus the chain
   of in-loop definitions it passes through.  Only value-preserving
   arithmetic may carry a non-zero coefficient; instructions whose
   register inputs are all invariant are admitted with coefficient 0
   regardless of operation (their cloned value is identical), except
   those that can trap or read memory. *)

(** May this instruction's clone run speculatively in the preheader?
    Pure register arithmetic only: no loads (the chain would then not be
    invariant anyway — a loaded register is a chain leaf only when
    defined outside the loop), no division, no side effects. *)
let cloneable = function
  | Bin (_, (Div | Rem), _, _, _) -> false
  | Mov _ | Bin _ | Cmp _ | Cast _ | Gep _ -> true
  | _ -> false

(** Types whose affine arithmetic cannot wrap in our 63-bit value model
    (I32 under the C signed-overflow-UB assumption). *)
let affine_ty_ok = function I32 | I64 | U64 | P -> true | _ -> false

exception Not_affine

let affine_addr (t : t) (pos : pos) (op : operand) : affine option =
  let dom = t.sc_dom in
  (* chain positions collected in discovery order; deduplicated and
     sorted for emission afterwards *)
  let chain : (pos, inst) Hashtbl.t = Hashtbl.create 8 in
  let rec coeff_op (o : operand) : int =
    match o with
    | Reg r -> coeff_reg r
    | ImmI _ | ImmF _ | Glob _ | GlobEnd _ | Func _ -> 0
  and coeff_reg (r : reg) : int =
    if r = t.sc_iv then 1
    else
      match dcount t r with
      | 0 -> 0 (* invariant leaf *)
      | 1 ->
          let ((dpos, inst) as def) = Hashtbl.find t.sc_defs r in
          (* the definition must run before the read point on every
             iteration's path, and after the argument-ordering theorem
             in the header comment, before the IV update too *)
          if not (precedes dom dpos pos) then raise Not_affine;
          if not (cloneable inst) then raise Not_affine;
          let k = coeff_inst inst in
          Hashtbl.replace chain dpos (snd def);
          k
      | _ -> raise Not_affine
  and coeff_inst (inst : inst) : int =
    match inst with
    | Mov (_, ty, o) ->
        let k = coeff_op o in
        if k <> 0 && not (affine_ty_ok ty) then raise Not_affine;
        k
    | Cast (_, to_, from_, o) ->
        let k = coeff_op o in
        if k = 0 then 0
        else if
          (* value-preserving widening only: sign-extension of a no-wrap
             I32, or moves among the wide 63-bit types *)
          (match to_ with I64 | U64 | P -> true | _ -> false)
          && match from_ with I32 | I64 | U64 | P -> true | _ -> false
        then k
        else raise Not_affine
    | Bin (_, bop, ty, a, b) -> (
        let ka = coeff_op a and kb = coeff_op b in
        if ka = 0 && kb = 0 then 0
        else if not (affine_ty_ok ty) then raise Not_affine
        else
          match bop with
          | Add -> ka + kb
          | Sub -> ka - kb
          | Mul -> (
              match (a, b) with
              | _, ImmI c when kb = 0 -> ka * c
              | ImmI c, _ when ka = 0 -> c * kb
              | _ -> raise Not_affine)
          | Shl -> (
              match b with
              | ImmI c when kb = 0 && c >= 0 && c < 32 -> ka * (1 lsl c)
              | _ -> raise Not_affine)
          | _ -> raise Not_affine)
    | Gep (_, base, off, _) ->
        (* byte-level pointer arithmetic; the shrink marker affects
           metadata, not the address value *)
        coeff_op base + coeff_op off
    | Cmp (_, _, _, a, b) ->
        if coeff_op a = 0 && coeff_op b = 0 then 0 else raise Not_affine
    | _ -> raise Not_affine
  in
  match
    (* the IV must still hold this iteration's value at [pos] *)
    if precedes dom t.sc_inc_pos pos then None
    else
      let k = coeff_op op in
      let stride_bytes = k * t.sc_stride in
      if stride_bytes < 1 then None (* invariant or down-counting address *)
      else
        let af_chain =
          Hashtbl.fold (fun p i acc -> (p, i) :: acc) chain []
          |> List.sort (fun ((b1, i1), _) ((b2, i2), _) ->
                 compare
                   (dom.Dom.rpo_pos.(b1), i1)
                   (dom.Dom.rpo_pos.(b2), i2))
        in
        Some { af_stride = stride_bytes; af_chain }
  with
  | exception Not_affine -> None
  | r -> r

(* ------------------------------------------------------------------ *)
(* Preheader materialization                                            *)
(* ------------------------------------------------------------------ *)

(** Instructions computing the loop's exact trip count at the preheader,
    where [sc_iv] still holds its initial value:
    [count = ceil((limit - iv0 (+1 if <=)) / stride)]; a non-positive
    result is the zero-trip case the span check passes vacuously. *)
let emit_count (t : t) ~(fresh : unit -> reg) : inst list * operand =
  let d = fresh () in
  let insts = ref [ Bin (d, Sub, I64, t.sc_limit, Reg t.sc_iv) ] in
  let last = ref d in
  if t.sc_cle then begin
    let d2 = fresh () in
    insts := Bin (d2, Add, I64, Reg !last, ImmI 1) :: !insts;
    last := d2
  end;
  if t.sc_stride > 1 then begin
    let d3 = fresh () in
    insts := Bin (d3, Add, I64, Reg !last, ImmI (t.sc_stride - 1)) :: !insts;
    let q = fresh () in
    insts := Bin (q, Div, I64, Reg d3, ImmI t.sc_stride) :: !insts;
    last := q
  end;
  (List.rev !insts, Reg !last)

(** Clone an affine chain into preheader instructions over fresh
    registers and rewrite [root] (the checked address operand) to read
    the clone.  Reads of the induction variable are left in place: at
    the preheader it holds the initial value, so the clone computes the
    progression's first element. *)
let clone_chain (_t : t) ~(fresh : unit -> reg) (af : affine)
    (root : operand) : inst list * operand =
  let map : (reg, reg) Hashtbl.t = Hashtbl.create 8 in
  let sub_op = function
    | Reg r as o -> (
        match Hashtbl.find_opt map r with
        | Some r' -> Reg r'
        | None -> o)
    | o -> o
  in
  let clone_def r =
    let r' = fresh () in
    Hashtbl.replace map r r';
    r'
  in
  let insts =
    List.map
      (fun (_, inst) ->
        let inst = map_inst_operands sub_op inst in
        match inst with
        | Mov (r, ty, o) -> Mov (clone_def r, ty, o)
        | Bin (r, op, ty, a, b) -> Bin (clone_def r, op, ty, a, b)
        | Cmp (r, op, ty, a, b) -> Cmp (clone_def r, op, ty, a, b)
        | Cast (r, to_, from_, o) -> Cast (clone_def r, to_, from_, o)
        | Gep (r, a, b, s) -> Gep (clone_def r, a, b, s)
        | _ -> assert false (* [cloneable] admits only the above *))
      af.af_chain
  in
  (insts, sub_op root)
